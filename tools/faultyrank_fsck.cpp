// faultyrank_fsck — command-line front end for the whole toolkit.
//
//   faultyrank_fsck create  <image> [--files N] [--osts K] [--seed S]
//       build a synthetic LANL-like cluster and save its snapshot
//   faultyrank_fsck inject  <image> --scenario <name|all> [--seed S]
//       load, inject one (or all eight) inconsistency scenario(s), save
//   faultyrank_fsck check   <image> [--repair] [--verbose] [--json]
//                           [--undo FILE]
//       run the FaultyRank pipeline on the snapshot; with --repair,
//       apply the recommended fixes and write the image back
//   faultyrank_fsck lfsck   <image> [--repair]
//       run the rule-based LFSCK baseline instead
//   faultyrank_fsck compare <image>
//       run both checkers against separate loads of the same image
//   faultyrank_fsck restore <image> --undo FILE
//       roll an image back to a pre-repair undo snapshot
//   faultyrank_fsck scenarios
//       list injectable scenario names
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "checker/checker.h"
#include "common/memory_tracker.h"
#include "core/report.h"
#include "faults/injector.h"
#include "lfsck/lfsck.h"
#include "pfs/persistence.h"
#include "workload/namespace_gen.h"

using namespace faultyrank;

namespace {

struct Args {
  std::vector<std::string> positional;
  std::uint64_t files = 5000;
  std::size_t osts = 8;
  std::uint64_t seed = 42;
  std::string scenario;
  bool repair = false;
  bool verbose = false;
  bool json = false;
  std::string undo_path;
};

std::optional<Args> parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string(argv[++i]);
    };
    if (arg == "--files") {
      const auto v = next();
      if (!v) return std::nullopt;
      args.files = std::strtoull(v->c_str(), nullptr, 10);
    } else if (arg == "--osts") {
      const auto v = next();
      if (!v) return std::nullopt;
      args.osts = std::strtoull(v->c_str(), nullptr, 10);
    } else if (arg == "--seed") {
      const auto v = next();
      if (!v) return std::nullopt;
      args.seed = std::strtoull(v->c_str(), nullptr, 10);
    } else if (arg == "--scenario") {
      const auto v = next();
      if (!v) return std::nullopt;
      args.scenario = *v;
    } else if (arg == "--repair") {
      args.repair = true;
    } else if (arg == "--verbose") {
      args.verbose = true;
    } else if (arg == "--json") {
      args.json = true;
    } else if (arg == "--undo") {
      const auto v = next();
      if (!v) return std::nullopt;
      args.undo_path = *v;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return std::nullopt;
    } else {
      args.positional.push_back(arg);
    }
  }
  return args;
}

int usage() {
  std::fprintf(stderr,
               "usage: faultyrank_fsck <create|inject|check|lfsck|compare|"
               "scenarios> <image> [flags]\n"
               "  create  --files N --osts K --seed S\n"
               "  inject  --scenario <name|all> --seed S\n"
               "  check   [--repair] [--verbose] [--json] [--undo FILE]\n"
               "  lfsck   [--repair]\n");
  return 2;
}

std::optional<Scenario> scenario_by_name(const std::string& name) {
  for (const Scenario scenario : kAllScenarios) {
    if (name == to_string(scenario)) return scenario;
  }
  return std::nullopt;
}

int cmd_create(const Args& args) {
  LustreCluster cluster(args.osts, StripePolicy{64 * 1024, -1});
  NamespaceConfig config;
  config.file_count = args.files;
  config.seed = args.seed;
  const NamespaceStats stats = populate_namespace(cluster, config);
  save_cluster(cluster, args.positional[1]);
  std::printf("created %s: %lu files, %lu dirs, %lu stripe objects on %zu "
              "OSTs\n",
              args.positional[1].c_str(),
              static_cast<unsigned long>(stats.files),
              static_cast<unsigned long>(stats.directories),
              static_cast<unsigned long>(stats.stripe_objects), args.osts);
  return 0;
}

int cmd_inject(const Args& args) {
  LustreCluster cluster = load_cluster(args.positional[1]);
  FaultInjector injector(cluster, args.seed);
  const auto inject_one = [&](Scenario scenario) {
    const GroundTruth truth = injector.inject(scenario);
    std::printf("injected %-36s victim=%s field=%s\n", to_string(scenario),
                truth.victim.to_string().c_str(),
                truth.id_field ? "id" : "property");
  };
  if (args.scenario == "all") {
    for (const Scenario scenario : kAllScenarios) inject_one(scenario);
  } else {
    const auto scenario = scenario_by_name(args.scenario);
    if (!scenario) {
      std::fprintf(stderr, "unknown scenario '%s' (try 'scenarios')\n",
                   args.scenario.c_str());
      return 2;
    }
    inject_one(*scenario);
  }
  save_cluster(cluster, args.positional[1]);
  return 0;
}

int cmd_check(const Args& args) {
  LustreCluster cluster = load_cluster(args.positional[1]);
  record_memory_phase("image loaded");
  ThreadPool pool;
  CheckerConfig config;
  config.pool = &pool;
  config.apply_repairs = args.repair;
  config.verify_after_repair = args.repair;
  config.capture_undo = args.repair && !args.undo_path.empty();
  const CheckerResult result = run_checker(cluster, config);
  record_memory_phase("check complete");
  if (!result.undo_image.empty()) {
    std::FILE* undo = std::fopen(args.undo_path.c_str(), "wb");
    if (undo == nullptr) {
      std::fprintf(stderr, "cannot write undo file %s\n",
                   args.undo_path.c_str());
      return 1;
    }
    std::fwrite(result.undo_image.data(), 1, result.undo_image.size(), undo);
    std::fclose(undo);
    if (!args.json) {
      std::printf("pre-repair undo image: %s (%zu bytes)\n",
                  args.undo_path.c_str(), result.undo_image.size());
    }
  }

  if (args.json) {
    std::fputs(render_json(result.report).c_str(), stdout);
    if (args.repair) save_cluster(cluster, args.positional[1]);
    return result.report.consistent() ||
                   (args.repair && result.verified_consistent)
               ? 0
               : 1;
  }

  std::printf("image: %lu MDS inodes, %lu OST objects\n",
              static_cast<unsigned long>(cluster.mdt_inodes_used()),
              static_cast<unsigned long>(cluster.total_ost_objects()));
  std::printf("graph: %lu vertices, %lu edges, %lu unpaired\n",
              static_cast<unsigned long>(result.vertices),
              static_cast<unsigned long>(result.edges),
              static_cast<unsigned long>(result.unpaired_edges));
  std::printf("timings: T_scan=%.2fs T_graph=%.2fs T_FR=%.3fs (simulated "
              "I/O + measured compute)\n",
              result.timings.t_scan_sim,
              result.timings.t_graph_sim + result.timings.t_graph_wall,
              result.timings.t_fr_wall);
  std::printf("findings: %zu\n", result.report.findings.size());
  for (const MemoryPhase& phase : memory_phases()) {
    char rss_buf[32], peak_buf[32];
    std::printf("memory: %-16s rss=%s peak=%s\n", phase.name.c_str(),
                format_bytes(phase.rss, rss_buf, sizeof(rss_buf)),
                format_bytes(phase.peak, peak_buf, sizeof(peak_buf)));
  }
  if (args.verbose) {
    std::fputs(render_text(result.report).c_str(), stdout);
  }
  if (args.repair) {
    std::printf("repairs applied: %zu; consistent after repair: %s\n",
                result.repairs_applied,
                result.verified_consistent ? "yes" : "NO");
    save_cluster(cluster, args.positional[1]);
  }
  return result.report.consistent() || (args.repair && result.verified_consistent)
             ? 0
             : 1;
}

int cmd_lfsck(const Args& args) {
  LustreCluster cluster = load_cluster(args.positional[1]);
  LfsckConfig config;
  config.repair = args.repair;
  const LfsckResult result = run_lfsck(cluster, config);
  std::printf("LFSCK: %zu events over %lu inodes (%lu RPCs), %.2fs "
              "simulated\n",
              result.events.size(),
              static_cast<unsigned long>(result.inodes_checked),
              static_cast<unsigned long>(result.rpcs_issued),
              result.sim_seconds);
  for (const LfsckEvent& event : result.events) {
    std::printf("  %-26s %s %s\n", to_string(event.kind),
                event.subject.to_string().c_str(), event.detail.c_str());
  }
  if (args.repair) save_cluster(cluster, args.positional[1]);
  return result.events.empty() ? 0 : 1;
}

int cmd_restore(const Args& args) {
  if (args.undo_path.empty()) {
    std::fprintf(stderr, "restore requires --undo FILE\n");
    return 2;
  }
  LustreCluster cluster = load_cluster(args.undo_path);
  save_cluster(cluster, args.positional[1]);
  std::printf("restored %s from %s\n", args.positional[1].c_str(),
              args.undo_path.c_str());
  return 0;
}

int cmd_compare(const Args& args) {
  std::printf("== FaultyRank ==\n");
  {
    LustreCluster cluster = load_cluster(args.positional[1]);
    ThreadPool pool;
    CheckerConfig config;
    config.pool = &pool;
    const CheckerResult result = run_checker(cluster, config);
    std::printf("findings=%zu total=%.2fs (T_scan=%.2f T_graph=%.2f "
                "T_FR=%.3f)\n",
                result.report.findings.size(), result.timings.total_sim(),
                result.timings.t_scan_sim,
                result.timings.t_graph_sim + result.timings.t_graph_wall,
                result.timings.t_fr_wall);
  }
  std::printf("== LFSCK baseline ==\n");
  {
    LustreCluster cluster = load_cluster(args.positional[1]);
    LfsckConfig config;
    config.repair = false;
    const LfsckResult result = run_lfsck(cluster, config);
    std::printf("events=%zu total=%.2fs\n", result.events.size(),
                result.sim_seconds);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse(argc, argv);
  if (!args || args->positional.empty()) return usage();
  const std::string& command = args->positional[0];

  if (command == "scenarios") {
    for (const Scenario scenario : kAllScenarios) {
      std::printf("%s\n", to_string(scenario));
    }
    return 0;
  }
  if (args->positional.size() < 2) return usage();

  try {
    if (command == "create") return cmd_create(*args);
    if (command == "inject") return cmd_inject(*args);
    if (command == "check") return cmd_check(*args);
    if (command == "lfsck") return cmd_lfsck(*args);
    if (command == "compare") return cmd_compare(*args);
    if (command == "restore") return cmd_restore(*args);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  return usage();
}
