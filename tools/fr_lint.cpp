// fr_lint — repo-specific lint pass over src/ and bench/ (ctest label
// `static`). Five house rules, each aimed at keeping the concurrency
// tooling honest:
//
//   mutex-needs-guards   Every mutex declaration (std::mutex,
//                        std::shared_mutex, or the annotated wrappers
//                        Mutex/SharedMutex) must have at least one
//                        FR_GUARDED_BY / FR_PT_GUARDED_BY / FR_REQUIRES
//                        / FR_ACQUIRE annotation naming it in the same
//                        file — a bare mutex is invisible to the
//                        thread-safety analysis.
//   no-raw-thread        No std::thread / std::jthread / std::async /
//                        pthread_create outside common/thread_pool.*:
//                        all parallelism goes through the pool so task
//                        groups, stealing and shutdown stay the only
//                        concurrency protocol.
//   no-c-random          No rand()/srand()/rand_r(): all experiment
//                        randomness must flow through common/random.h
//                        so runs are reproducible from a single seed.
//   no-iostream-in-lib   No #include <iostream> in library code
//                        (src/): iostream drags in static init order
//                        concerns and unsynchronized stream state;
//                        library code logs through common/logging.h.
//   no-unbounded-retry   A condition-driven loop (`while`, `for (;;)`,
//                        or a `for` whose header itself talks about
//                        retrying) whose region mentions retry/retries/
//                        backoff must also reference a bound —
//                        max_attempts, max_retries, attempt_limit,
//                        retry_budget, or a deadline. An unbounded
//                        retry loop spins forever against a server
//                        that stays down. Counted `for` loops are
//                        exempt: their trip count is the bound.
//   crash-point-required In PFS code (paths containing "pfs"), a
//                        function that performs two or more distinct
//                        metadata sub-updates (DIRENT insert/erase,
//                        LinkEA append, erase_if) must fire
//                        FR_CRASH_POINT between them (DESIGN.md §15):
//                        an uninstrumented multi-sub-update op is
//                        invisible to the crash-state enumerator, so
//                        its half-applied states are never tested.
//
// A line can opt out with a trailing `// fr_lint: allow(rule-id)`.
// Comments and string/char literals are stripped before matching by
// the shared fr_analysis scrubber (tools/analysis/tokenizer.cpp) —
// the same token stream fr_analyze uses — so documentation, and raw
// string literals in particular, do not trip the rules.
//
// Usage:
//   fr_lint [--json] <dir-or-file>...  lint; exit 1 on any violation
//   fr_lint --self-test <fixtures>     run against fixture files whose
//                                      `// EXPECT:` headers state which
//                                      rules must fire; exit 1 on
//                                      mismatch, on an unknown EXPECT
//                                      id, or when any rule id is not
//                                      covered by exactly one fixture
#include <algorithm>
#include <array>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/tokenizer.h"
#include "analysis/violation.h"

namespace fs = std::filesystem;

namespace {

using fr_analysis::Violation;

/// Every rule id fr_lint can emit; the self-test demands each appears
/// in exactly one fixture's EXPECT header.
constexpr std::array<const char*, 6> kLintRuleIds = {
    "mutex-needs-guards",  "no-raw-thread",      "no-c-random",
    "no-iostream-in-lib",  "no-unbounded-retry", "crash-point-required"};

struct FileContent {
  std::vector<std::string> raw;       // original lines
  std::vector<std::string> scrubbed;  // comments/literals blanked
};

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool line_allows(const std::string& raw_line, const std::string& rule) {
  const std::string marker = "fr_lint: allow(" + rule + ")";
  return raw_line.find(marker) != std::string::npos;
}

/// Matches a mutex declaration on a scrubbed line and returns the
/// declared name, or "" when the line declares none. Accepts
/// `[mutable|static] <mutex-type> name;` and the brace-initialized
/// `<mutex-type> name{...};` (the deadlock-detect label form) —
/// parameter lists and constructor calls (which contain '(') don't
/// count as declarations.
std::string mutex_decl_name(const std::string& line) {
  static const std::vector<std::string> kMutexTypes = {
      "std::mutex", "std::shared_mutex", "faultyrank::Mutex",
      "faultyrank::SharedMutex", "Mutex", "SharedMutex"};
  for (const auto& type : kMutexTypes) {
    std::size_t pos = line.find(type);
    while (pos != std::string::npos) {
      const bool left_ok = pos == 0 || (!is_ident_char(line[pos - 1]) &&
                                        line[pos - 1] != ':');
      const std::size_t end = pos + type.size();
      if (left_ok && end < line.size() && !is_ident_char(line[end]) &&
          line[end] != ':') {
        std::size_t i = end;
        while (i < line.size() &&
               std::isspace(static_cast<unsigned char>(line[i]))) {
          ++i;
        }
        std::string name;
        while (i < line.size() && is_ident_char(line[i])) {
          name += line[i++];
        }
        while (i < line.size() &&
               std::isspace(static_cast<unsigned char>(line[i]))) {
          ++i;
        }
        if (!name.empty() && i < line.size() && line[i] == '{') {
          int depth = 0;
          while (i < line.size()) {
            if (line[i] == '{') ++depth;
            if (line[i] == '}') {
              --depth;
              if (depth == 0) {
                ++i;
                break;
              }
            }
            ++i;
          }
          while (i < line.size() &&
                 std::isspace(static_cast<unsigned char>(line[i]))) {
            ++i;
          }
        }
        if (!name.empty() && i < line.size() && line[i] == ';') return name;
      }
      pos = line.find(type, pos + 1);
    }
  }
  return "";
}

/// True when the file contains an FR_* annotation whose argument names
/// `mutex_name` (possibly qualified, e.g. FR_GUARDED_BY(pool_.mutex_)).
bool has_annotation_for(const FileContent& content,
                        const std::string& mutex_name) {
  static const std::vector<std::string> kAnnotations = {
      "FR_GUARDED_BY(", "FR_PT_GUARDED_BY(", "FR_REQUIRES(",
      "FR_REQUIRES_SHARED(", "FR_ACQUIRE(", "FR_RELEASE(", "FR_EXCLUDES("};
  for (const std::string& line : content.scrubbed) {
    for (const auto& ann : kAnnotations) {
      std::size_t pos = line.find(ann);
      while (pos != std::string::npos) {
        const std::size_t open = pos + ann.size();
        const std::size_t close = line.find(')', open);
        if (close != std::string::npos) {
          const std::string arg = line.substr(open, close - open);
          // The trailing identifier of the argument must be the mutex.
          std::size_t tail = arg.size();
          while (tail > 0 && is_ident_char(arg[tail - 1])) --tail;
          if (arg.substr(tail) == mutex_name) return true;
        }
        pos = line.find(ann, pos + 1);
      }
    }
  }
  return false;
}

[[nodiscard]] std::string to_lower(const std::string& text) {
  std::string out = text;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool mentions_any(const std::string& lowered,
                  const std::vector<std::string>& tokens) {
  for (const auto& token : tokens) {
    if (lowered.find(token) != std::string::npos) return true;
  }
  return false;
}

/// no-unbounded-retry: for each condition-driven loop, delimit the loop
/// region (header parens, then the braced body or the single statement)
/// and demand that a region mentioning retry/backoff also mentions a
/// bound. Counted `for` loops are exempt — their trip count bounds them
/// — unless the for-header itself talks about retrying (a retry loop
/// spelled as `for`) or is the infinite `for (;;)`. Loop bodies are
/// capped at kMaxLoopLines — a "loop" that long has bigger problems
/// than this lint can name.
void check_unbounded_retry(const std::string& path, const FileContent& content,
                           std::vector<Violation>& out) {
  constexpr std::size_t kMaxLoopLines = 200;
  static const std::vector<std::string> kRetryTokens = {"retry", "backoff"};
  static const std::vector<std::string> kBoundTokens = {
      "max_attempts", "max_retries", "attempt_limit", "retry_budget",
      "deadline"};

  for (std::size_t n = 0; n < content.scrubbed.size(); ++n) {
    const std::string& line = content.scrubbed[n];
    std::size_t keyword_pos = std::string::npos;
    bool is_for = false;
    for (const char* keyword : {"while", "for"}) {
      const std::size_t len = std::string(keyword).size();
      std::size_t pos = line.find(keyword);
      while (pos != std::string::npos) {
        const bool left_ok = pos == 0 || !is_ident_char(line[pos - 1]);
        const std::size_t end = pos + len;
        const bool right_ok = end >= line.size() || !is_ident_char(line[end]);
        if (left_ok && right_ok) {
          if (pos < keyword_pos) {
            keyword_pos = pos;
            is_for = std::string(keyword) == "for";
          }
          break;
        }
        pos = line.find(keyword, pos + 1);
      }
    }
    if (keyword_pos == std::string::npos) continue;
    if (line_allows(content.raw[n], "no-unbounded-retry")) continue;

    // Walk characters from the keyword: first the parenthesized header,
    // then either a braced body (to matching close) or a single
    // statement (to the first ';').
    int paren_depth = 0;
    bool header_done = false;
    int brace_depth = 0;
    bool in_braces = false;
    std::string header;
    std::string region;
    std::size_t end_line = n;
    for (std::size_t m = n; m < content.scrubbed.size() &&
                            m < n + kMaxLoopLines && end_line == n;
         ++m) {
      const std::string& body = content.scrubbed[m];
      const std::size_t start = m == n ? keyword_pos : 0;
      region += body.substr(start) + "\n";
      bool done = false;
      for (std::size_t i = start; i < body.size(); ++i) {
        const char c = body[i];
        if (c == '(') ++paren_depth;
        if (c == ')') {
          --paren_depth;
          if (paren_depth == 0) header_done = true;
        }
        if (!header_done) {
          if (paren_depth > 0 && !(c == '(' && paren_depth == 1)) header += c;
          continue;
        }
        if (c == '{') {
          ++brace_depth;
          in_braces = true;
        }
        if (c == '}') {
          --brace_depth;
          if (in_braces && brace_depth == 0) done = true;
        }
        if (c == ';' && !in_braces && paren_depth == 0) done = true;
        if (done) break;
      }
      if (done) end_line = m + 1;  // exits the scan loop
    }

    const std::string lowered_header = to_lower(header);
    if (is_for) {
      // A counted for is bounded by construction; only the infinite
      // `for (;;)` and for-headers that themselves retry are suspect.
      std::string squeezed;
      for (char c : lowered_header) {
        if (!std::isspace(static_cast<unsigned char>(c))) squeezed += c;
      }
      const bool infinite = squeezed == ";;";
      if (!infinite && !mentions_any(lowered_header, kRetryTokens)) continue;
    }

    const std::string lowered = to_lower(region);
    if (!mentions_any(lowered, kRetryTokens)) continue;
    if (!mentions_any(lowered, kBoundTokens)) {
      out.push_back({path, n + 1, "no-unbounded-retry",
                     "retry/backoff loop without a visible bound — "
                     "reference max_attempts/max_retries/attempt_limit/"
                     "retry_budget or a deadline"});
    }
  }
}

/// crash-point-required: multi-sub-update namespace mutations in PFS
/// code must be instrumented with FR_CRASH_POINT so the crash-state
/// enumerator (faults/crash_states.h) can interrupt them between
/// sub-updates. Function regions are delimited by column-0 definition
/// lines (`Type Class::name(...)`); a region performing two or more
/// *distinct* mutation kinds with no crash point gets flagged at its
/// definition line. One mutation alone is atomic from the enumerator's
/// point of view and needs no instrumentation.
void check_crash_point_required(const std::string& path,
                                const FileContent& content,
                                std::vector<Violation>& out) {
  if (path.find("pfs") == std::string::npos) return;
  static const std::vector<std::string> kMutationTokens = {
      "dirents.push_back", "dirents.erase", "link_ea.push_back", "erase_if"};

  std::size_t region_start = std::string::npos;
  std::set<std::string> mutations;
  bool has_point = false;

  const auto flush = [&] {
    if (region_start != std::string::npos && mutations.size() >= 2 &&
        !has_point &&
        !line_allows(content.raw[region_start], "crash-point-required")) {
      out.push_back(
          {path, region_start + 1, "crash-point-required",
           "function applies " + std::to_string(mutations.size()) +
               " distinct metadata sub-updates with no FR_CRASH_POINT — "
               "instrument them so crash-state enumeration can interrupt "
               "the op"});
    }
    mutations.clear();
    has_point = false;
  };

  for (std::size_t n = 0; n < content.scrubbed.size(); ++n) {
    const std::string& line = content.scrubbed[n];
    const bool definition_start =
        !line.empty() && line[0] != ' ' && line[0] != '\t' &&
        line[0] != '#' && line[0] != '{' && line[0] != '}' &&
        line.find("::") != std::string::npos &&
        line.find('(') != std::string::npos;
    if (definition_start && line.find("::") < line.find('(')) {
      flush();
      region_start = n;
      continue;
    }
    if (region_start == std::string::npos) continue;
    if (line.find("FR_CRASH_POINT") != std::string::npos) has_point = true;
    for (const auto& token : kMutationTokens) {
      if (line.find(token) != std::string::npos &&
          !line_allows(content.raw[n], "crash-point-required")) {
        mutations.insert(token);
      }
    }
  }
  flush();
}

bool path_ends_with(const std::string& path, const std::string& suffix) {
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool path_contains_dir(const std::string& path, const std::string& dir) {
  return path.find("/" + dir + "/") != std::string::npos ||
         path.rfind(dir + "/", 0) == 0;
}

/// `is_library` — treat the file as library code (src/) for the
/// iostream rule; self-test forces it on.
std::vector<Violation> lint_file(const std::string& path,
                                 const FileContent& content, bool is_library) {
  std::vector<Violation> out;

  const bool mutex_wrapper_file = path_ends_with(path, "common/mutex.h");
  const bool pool_file = path_ends_with(path, "common/thread_pool.h") ||
                         path_ends_with(path, "common/thread_pool.cpp");

  for (std::size_t n = 0; n < content.scrubbed.size(); ++n) {
    const std::string& line = content.scrubbed[n];
    const std::string& raw = content.raw[n];

    // mutex-needs-guards — skipped in the wrapper layer itself, which
    // owns the raw std primitives the capabilities wrap.
    if (!mutex_wrapper_file) {
      const std::string name = mutex_decl_name(line);
      if (!name.empty() && !line_allows(raw, "mutex-needs-guards") &&
          !has_annotation_for(content, name)) {
        out.push_back({path, n + 1, "mutex-needs-guards",
                       "mutex '" + name +
                           "' guards no FR_GUARDED_BY-annotated field in "
                           "this file"});
      }
    }

    // no-raw-thread — the pool is the only place threads are born.
    if (!pool_file && !line_allows(raw, "no-raw-thread")) {
      static const std::vector<std::string> kThreadTokens = {
          "std::jthread", "std::async", "pthread_create"};
      for (const auto& token : kThreadTokens) {
        if (line.find(token) != std::string::npos) {
          out.push_back({path, n + 1, "no-raw-thread",
                         "'" + token + "' outside common/thread_pool — use "
                         "ThreadPool/TaskGroup"});
        }
      }
      std::size_t pos = line.find("std::thread");
      while (pos != std::string::npos) {
        const std::size_t end = pos + std::string("std::thread").size();
        // std::thread::hardware_concurrency() is a capability query,
        // not a thread spawn; scope-qualified uses stay legal.
        const bool scope_use = end + 1 < line.size() && line[end] == ':' &&
                               line[end + 1] == ':';
        const bool right_ok = end >= line.size() || !is_ident_char(line[end]);
        if (right_ok && !scope_use) {
          out.push_back({path, n + 1, "no-raw-thread",
                         "'std::thread' outside common/thread_pool — use "
                         "ThreadPool/TaskGroup"});
        }
        pos = line.find("std::thread", pos + 1);
      }
    }

    // no-c-random — reproducibility: common/random.h only.
    if (!line_allows(raw, "no-c-random")) {
      for (const std::string func : {"rand", "srand", "rand_r"}) {
        std::size_t pos = line.find(func);
        while (pos != std::string::npos) {
          std::size_t after = pos + func.size();
          std::size_t ws = after;
          while (ws < line.size() &&
                 std::isspace(static_cast<unsigned char>(line[ws]))) {
            ++ws;
          }
          const bool called = ws < line.size() && line[ws] == '(';
          const bool right_ok = after >= line.size() ||
                                !is_ident_char(line[after]);
          bool left_ok = pos == 0 || !is_ident_char(line[pos - 1]);
          if (!left_ok && pos >= 5 && line.compare(pos - 5, 5, "std::") == 0) {
            left_ok = true;  // std::rand is just as banned
          }
          if (called && right_ok && left_ok) {
            out.push_back({path, n + 1, "no-c-random",
                           "'" + func + "()' is banned — use the seeded "
                           "generators in common/random.h"});
          }
          pos = line.find(func, pos + 1);
        }
      }
    }

    // no-iostream-in-lib
    if (is_library && !line_allows(raw, "no-iostream-in-lib")) {
      std::string squeezed;
      for (char c : line) {
        if (!std::isspace(static_cast<unsigned char>(c))) squeezed += c;
      }
      if (squeezed.find("#include<iostream>") != std::string::npos) {
        out.push_back({path, n + 1, "no-iostream-in-lib",
                       "<iostream> in library code — log through "
                       "common/logging.h"});
      }
    }
  }

  // no-unbounded-retry works on loop regions, not single lines.
  check_unbounded_retry(path, content, out);
  // crash-point-required works on function regions in PFS code.
  check_crash_point_required(path, content, out);
  return out;
}

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

FileContent read_file(const fs::path& path) {
  FileContent content;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) content.raw.push_back(line);
  content.scrubbed = fr_analysis::scrub_lines(content.raw);
  return content;
}

std::vector<fs::path> collect(const std::vector<std::string>& roots) {
  std::vector<fs::path> files;
  for (const auto& root : roots) {
    if (fs::is_directory(root)) {
      for (const auto& entry : fs::recursive_directory_iterator(root)) {
        if (entry.is_regular_file() && lintable(entry.path()) &&
            entry.path().string().find("fr_lint_fixtures") ==
                std::string::npos) {
          files.push_back(entry.path());
        }
      }
    } else if (fs::is_regular_file(root)) {
      files.push_back(root);
    } else {
      std::fprintf(stderr, "fr_lint: no such path: %s\n", root.c_str());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

enum class Format { kText, kJson, kSarif };

int run_lint(const std::vector<std::string>& roots, Format format) {
  std::vector<Violation> violations;
  std::size_t file_count = 0;
  for (const fs::path& path : collect(roots)) {
    ++file_count;
    const std::string p = path.generic_string();
    const bool is_library = path_contains_dir(p, "src");
    const auto found = lint_file(p, read_file(path), is_library);
    violations.insert(violations.end(), found.begin(), found.end());
  }
  // Byte-stable output regardless of directory iteration order, so CI
  // diffs and the baseline workflow never see spurious churn.
  std::stable_sort(violations.begin(), violations.end(),
                   [](const Violation& a, const Violation& b) {
                     if (a.file != b.file) return a.file < b.file;
                     if (a.line != b.line) return a.line < b.line;
                     if (a.rule != b.rule) return a.rule < b.rule;
                     return a.message < b.message;
                   });
  // fr_lint rules are single-line pattern checks, so rule + file +
  // message is already a line-insensitive identity — synthesize it
  // here so SARIF consumers get usable partialFingerprints.
  for (Violation& v : violations) {
    if (v.fingerprint.empty()) {
      v.fingerprint = v.rule + "|" + v.file + "|" + v.message;
    }
  }
  if (format == Format::kJson) {
    fr_analysis::emit_json(stdout, violations);
  } else if (format == Format::kSarif) {
    fr_analysis::emit_sarif(stdout, "fr_lint", violations);
  } else {
    fr_analysis::emit_text(stderr, violations);
  }
  std::fprintf(stderr, "fr_lint: %zu file(s), %zu violation(s)\n", file_count,
               violations.size());
  return violations.empty() ? 0 : 1;
}

/// Fixture mode: every fixture states the rules it must trigger via
/// `// EXPECT: rule-id` header lines (`// EXPECT: clean` for none);
/// fixtures are linted as library code so every rule is live. An
/// EXPECT id outside kLintRuleIds fails (it would silently test
/// nothing), and every rule id must be expected by exactly one fixture
/// so a rule cannot lose its proof without the suite noticing.
int run_self_test(const std::string& fixtures_dir) {
  const std::set<std::string> known(kLintRuleIds.begin(), kLintRuleIds.end());
  int failures = 0;
  std::size_t checked = 0;
  std::map<std::string, std::size_t> expect_counts;
  for (const fs::path& path : [&] {
         std::vector<fs::path> files;
         for (const auto& entry : fs::directory_iterator(fixtures_dir)) {
           if (entry.is_regular_file() && lintable(entry.path())) {
             files.push_back(entry.path());
           }
         }
         std::sort(files.begin(), files.end());
         return files;
       }()) {
    ++checked;
    const FileContent content = read_file(path);
    std::set<std::string> expected;
    for (const std::string& raw : content.raw) {
      const std::string tag = "// EXPECT: ";
      const std::size_t pos = raw.find(tag);
      if (pos == std::string::npos) continue;
      const std::string rule = raw.substr(pos + tag.size());
      if (rule == "clean") continue;
      if (known.count(rule) == 0) {
        ++failures;
        std::fprintf(stderr,
                     "fr_lint self-test FAIL %s: unknown EXPECT id '%s'\n",
                     path.generic_string().c_str(), rule.c_str());
        continue;
      }
      expected.insert(rule);
      ++expect_counts[rule];
    }
    std::set<std::string> actual;
    for (const auto& v :
         lint_file(path.generic_string(), content, /*is_library=*/true)) {
      actual.insert(v.rule);
    }
    if (expected != actual) {
      ++failures;
      std::string want, got;
      for (const auto& r : expected) want += r + " ";
      for (const auto& r : actual) got += r + " ";
      std::fprintf(stderr,
                   "fr_lint self-test FAIL %s\n  expected: %s\n  got:      "
                   "%s\n",
                   path.generic_string().c_str(),
                   want.empty() ? "(clean)" : want.c_str(),
                   got.empty() ? "(clean)" : got.c_str());
    }
  }
  for (const char* rule : kLintRuleIds) {
    const std::size_t count = expect_counts[rule];
    if (count != 1) {
      ++failures;
      std::fprintf(stderr,
                   "fr_lint self-test FAIL: rule '%s' expected by %zu "
                   "fixture(s), want exactly 1\n",
                   rule, count);
    }
  }
  std::fprintf(stderr, "fr_lint self-test: %zu fixture(s), %d failure(s)\n",
               checked, failures);
  if (checked == 0) {
    std::fprintf(stderr, "fr_lint self-test: no fixtures found\n");
    return 1;
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  Format format = Format::kText;
  std::erase_if(args, [&](const std::string& arg) {
    if (arg == "--json") {
      format = Format::kJson;
      return true;
    }
    if (arg == "--sarif") {
      format = Format::kSarif;
      return true;
    }
    return false;
  });
  if (args.empty()) {
    std::fprintf(stderr,
                 "usage: fr_lint [--json|--sarif] <dir-or-file>...\n"
                 "       fr_lint --self-test <fixtures-dir>\n");
    return 2;
  }
  if (args[0] == "--self-test") {
    if (args.size() != 2) {
      std::fprintf(stderr, "fr_lint: --self-test takes one fixtures dir\n");
      return 2;
    }
    return run_self_test(args[1]);
  }
  return run_lint(args, format);
}
