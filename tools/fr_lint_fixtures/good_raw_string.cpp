// EXPECT: clean
// Raw string literals may contain anything — unbalanced quotes, banned
// spellings, fake code. The scrubber must blank the whole raw-string
// body (including across lines) so none of it reaches the rules.
#include <string>

std::string usage_text() {
  return R"HELP(
    Unpaired quote: " — and some banned-looking text:
      std::thread worker(run);
      std::srand(42); int x = rand();
      #include <iostream>
      while (true) { retry(); backoff(); }
  )HELP";
}

std::string delimiter_decoy() {
  // A close-paren + quote inside the body must not end the literal
  // early; only the exact )ID" sequence does.
  return R"ID(contains )" and )OTHER" but ends here)ID";
}
