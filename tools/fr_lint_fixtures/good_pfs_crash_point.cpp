// EXPECT: clean
// The same multi-sub-update shape as the bad fixture, properly
// instrumented: FR_CRASH_POINT fires before each sub-update, so the
// enumerator can materialize every crash prefix. A single-mutation
// function is atomic from the enumerator's point of view and needs no
// instrumentation either.

Fid LustreCluster::instrumented_link(const Fid& existing, const Fid& parent,
                                     const std::string& name) {
  Inode& file = mdt_inode_or_throw(existing, "link");
  Inode& dir = mdt_inode_or_throw(parent, "link parent");
  FR_CRASH_POINT("link", "linkea");
  file.link_ea.push_back({parent, name});
  FR_CRASH_POINT("link", "dirent");
  dir.dirents.push_back({name, existing, file.ino});
  return existing;
}

void LustreCluster::single_update(const Fid& parent, const std::string& name) {
  Inode& dir = mdt_inode_or_throw(parent, "touch parent");
  dir.dirents.push_back({name, Fid{}, 0});
}
