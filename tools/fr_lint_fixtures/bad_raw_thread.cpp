// EXPECT: no-raw-thread
// Spawning a thread outside common/thread_pool bypasses task groups,
// work stealing, and orderly shutdown.
#include <thread>

void fire_and_forget() {
  std::thread worker([] {});
  worker.detach();
}
