// EXPECT: no-iostream-in-lib
// Library code logs through common/logging.h; <iostream> drags in
// static-init ordering and unsynchronized stream state.
#pragma once

#include <iostream>

inline void report(int n) { std::cout << n << "\n"; }
