// EXPECT: no-unbounded-retry
//
// A while(true) retry loop with exponential backoff and no visible
// bound: if the server never comes back, this spins forever.
bool try_read();
void sleep_ms(int);

void fetch_with_retries() {
  int backoff_ms = 1;
  while (true) {
    if (try_read()) break;
    sleep_ms(backoff_ms);
    backoff_ms *= 2;
  }
}
