// EXPECT: clean
//
// Retry loops with a visible bound: a counted attempt loop that names
// max_attempts, and a while loop cut off by a deadline.
bool try_read();
void sleep_ms(int);
double now_seconds();

bool fetch_bounded(int max_attempts) {
  int backoff_ms = 1;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (try_read()) return true;
    sleep_ms(backoff_ms);
    backoff_ms *= 2;
  }
  return false;
}

bool fetch_while_bounded(int max_attempts) {
  int attempt = 0;
  int backoff_ms = 1;
  while (attempt < max_attempts) {
    if (try_read()) return true;
    sleep_ms(backoff_ms);
    backoff_ms *= 2;
    ++attempt;
  }
  return false;
}

bool fetch_until_deadline(double deadline_seconds) {
  while (now_seconds() < deadline_seconds) {
    if (try_read()) return true;
    sleep_ms(1);  // fixed backoff, bounded by the deadline above
  }
  return false;
}
