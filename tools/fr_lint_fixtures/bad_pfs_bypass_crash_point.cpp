// EXPECT: crash-point-required
// A namespace op in PFS code that rewires LinkEA and DIRENT state
// directly, with no FR_CRASH_POINT between the sub-updates: the
// crash-state enumerator can never interrupt it, so the half-applied
// states a server crash would leave behind are never tested.

Fid LustreCluster::sneaky_link(const Fid& existing, const Fid& parent,
                               const std::string& name) {
  Inode& file = mdt_inode_or_throw(existing, "link");
  Inode& dir = mdt_inode_or_throw(parent, "link parent");
  file.link_ea.push_back({parent, name});
  dir.dirents.push_back({name, existing, file.ino});
  return existing;
}
