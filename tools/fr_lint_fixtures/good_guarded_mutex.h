// EXPECT: clean
// The annotated-wrapper shape fr_lint wants: the mutex declaration is
// paired with FR_GUARDED_BY fields in the same file.
#pragma once

#include "common/annotations.h"
#include "common/mutex.h"

class GuardedCounter {
 public:
  void bump() {
    faultyrank::MutexLock lock(mutex_);
    ++count_;
  }

 private:
  mutable faultyrank::Mutex mutex_;
  int count_ FR_GUARDED_BY(mutex_) = 0;
};
