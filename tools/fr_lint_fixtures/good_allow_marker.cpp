// EXPECT: clean
// The explicit per-line escape hatch: a trailing
// `fr_lint: allow(rule-id)` comment suppresses exactly that rule.
#include <thread>

void legacy_interop() {
  std::thread t([] {});  // fr_lint: allow(no-raw-thread)
  t.join();
}
