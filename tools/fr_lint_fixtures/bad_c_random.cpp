// EXPECT: no-c-random
// rand() breaks run-to-run reproducibility; everything randomized must
// flow through the seeded generators in common/random.h.
#include <cstdlib>

int roll_dice() {
  std::srand(42);
  return std::rand() % 6;
}
