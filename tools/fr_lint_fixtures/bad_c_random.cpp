// EXPECT: no-c-random
// rand() breaks run-to-run reproducibility; everything randomized must
// flow through the seeded generators in common/random.h. The raw
// string below (with its unbalanced quote) precedes the violations: a
// line-based scrubber desyncs on it and goes blind for the rest of the
// file, so this fixture also proves detection survives raw strings.
#include <cstdlib>
#include <string>

const std::string kDiceDoc = R"(dice " rolling)";

int roll_dice() {
  std::srand(42);
  return std::rand() % 6;
}
