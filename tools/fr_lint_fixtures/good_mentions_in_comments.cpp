// EXPECT: clean
// Banned tokens inside comments and string literals must not trip the
// rules: std::thread, rand(), srand(), #include <iostream>.
const char* kDoc =
    "docs may say std::thread and rand() and #include <iostream> freely";

/* block comments too: std::jthread, srand(7), pthread_create(...) */

// hardware_concurrency is a query, not a spawn:
#include <thread>
inline unsigned cores() { return std::thread::hardware_concurrency(); }

// identifiers merely containing the banned names are fine:
inline int operand(int strand) { return strand; }
