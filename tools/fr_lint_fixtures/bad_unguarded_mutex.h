// EXPECT: mutex-needs-guards
// A mutex member with no FR_GUARDED_BY anywhere in the file: the
// thread-safety analysis has nothing to check, so fr_lint flags it.
#pragma once

#include <deque>
#include <mutex>

class UnguardedCounter {
 public:
  void bump() {
    std::lock_guard lock(mutex_);
    ++count_;
  }

 private:
  std::mutex mutex_;
  int count_ = 0;
};
