// fr_analyze — token-level cross-file analyzer for the invariants the
// single-file fr_lint pass structurally cannot see (DESIGN.md §11, §13):
//
//   * the global lock hierarchy (lock-order-cycle, plus the
//     call-chain-transitive variant fed by per-function summaries):
//     MutexLock nesting is extracted per translation unit, resolved
//     through the mutex symbol table + include graph, and merged into
//     one acquired-after graph; any cycle is a potential deadlock and
//     is reported with the full witness path;
//   * the sim-time discipline (sim-time): no real-time sources in
//     pipeline code outside common/sim_clock.* / common/timer.h;
//   * the bit-determinism contract (determinism-reduction and the
//     interprocedural determinism-taint): no captured floating-point
//     accumulation inside parallel_for lambdas, and no unordered-
//     container iteration feeding output/reduction sinks;
//   * blocking-under-lock: no wait/join/file-I/O reachable while a
//     scoped lock is held;
//   * guarded-by-coverage: every FR_GUARDED_BY field write sits on a
//     path that holds (or FR_REQUIRES) the guard.
//
// The static side is paired with a dynamic verifier: build with
// -DFAULTYRANK_DEADLOCK_DETECT=ON (the `deadlock` preset) and the
// annotated Mutex wrappers maintain per-thread held-lock stacks plus a
// global acquired-after edge set, aborting (or calling the test hook)
// with both stacks on an inversion. Statically this tool covers all
// code paths; dynamically the tests cover the paths they execute.
//
// PR 10 adds the wire-schema model (analysis/wire_schema.h): serdes
// writer/reader pairs are reconstructed into field sequences, compared
// for symmetry (serdes-asymmetry), scanned for unvalidated wire counts
// (unchecked-wire-count), and fingerprinted against the committed
// tools/analysis/wire_schemas.json (schema-drift — a schema change
// without a format-version bump fails the gate).
//
// Usage:
//   fr_analyze [--json|--sarif] [--baseline <f> | --write-baseline <f>]
//              [--schemas <f>] <dir-or-file>...
//                                            analyze; with --baseline,
//                                            exit 1 only on findings
//                                            missing from the baseline;
//                                            with --schemas, diff wire
//                                            schemas against <f> too
//   fr_analyze --write-schemas <f> <roots>   regenerate the committed
//                                            wire-schema fingerprints
//   fr_analyze --stats <roots>               corpus/findings/wall-time
//                                            stats as JSON on stdout
//   fr_analyze --self-test <fixtures-dir>    EXPECT-driven fixture check
//   fr_analyze --coverage [--baseline <f> | --write-baseline <f>] <roots>
//                                            annotation-coverage gate
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/baseline.h"
#include "analysis/call_graph.h"
#include "analysis/include_graph.h"
#include "analysis/lock_graph.h"
#include "analysis/passes.h"
#include "analysis/summaries.h"
#include "analysis/symbols.h"
#include "analysis/tokenizer.h"
#include "analysis/violation.h"
#include "analysis/wire_schema.h"

namespace fs = std::filesystem;
using namespace fr_analysis;

namespace {

bool analyzable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

std::vector<fs::path> collect(const std::vector<std::string>& roots,
                              bool include_fixtures) {
  std::vector<fs::path> files;
  for (const auto& root : roots) {
    if (fs::is_directory(root)) {
      for (const auto& entry : fs::recursive_directory_iterator(root)) {
        const std::string p = entry.path().generic_string();
        if (!entry.is_regular_file() || !analyzable(entry.path())) continue;
        if (!include_fixtures && p.find("_fixtures") != std::string::npos) {
          continue;
        }
        if (p.find("/build") != std::string::npos) continue;
        files.push_back(entry.path());
      }
    } else if (fs::is_regular_file(root)) {
      files.push_back(root);
    } else {
      std::fprintf(stderr, "fr_analyze: no such path: %s\n", root.c_str());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

struct Corpus {
  std::vector<SourceFile> files;
  IncludeGraph includes;
  SymbolTable symbols;
  LockGraph locks;
  CallGraph graph;
  Summaries summaries;
  WireModel wire;
};

Corpus load_corpus(const std::vector<fs::path>& paths) {
  Corpus corpus;
  corpus.files.reserve(paths.size());
  for (const fs::path& path : paths) {
    corpus.files.push_back(tokenize_file(path.generic_string()));
  }
  corpus.includes = IncludeGraph::build(corpus.files);
  corpus.symbols = SymbolTable::build(corpus.files, corpus.includes);
  corpus.locks =
      LockGraph::build(corpus.files, corpus.symbols, corpus.includes);
  corpus.graph = CallGraph::build(corpus.files, corpus.includes);
  corpus.summaries = Summaries::build(corpus.files, corpus.graph,
                                      corpus.symbols, corpus.includes);
  corpus.wire = WireModel::build(corpus.files, corpus.graph, corpus.includes);
  return corpus;
}

enum class Format { kText, kJson, kSarif };

int run_analyze(const std::vector<std::string>& roots, Format format,
                const std::string& baseline_path, bool update_baseline,
                const std::string& schemas_path) {
  const Corpus corpus = load_corpus(collect(roots, /*include_fixtures=*/false));
  PassOptions options;
  options.schemas_path = schemas_path;
  const std::vector<Violation> violations =
      run_all_passes(corpus.files, corpus.symbols, corpus.includes,
                     corpus.locks, corpus.graph, corpus.summaries, corpus.wire,
                     options);

  if (update_baseline) {
    std::FILE* out = std::fopen(baseline_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "fr_analyze: cannot write baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
    write_baseline(out, violations);
    std::fclose(out);
    std::fprintf(stderr, "fr_analyze: wrote %zu finding(s) to %s\n",
                 violations.size(), baseline_path.c_str());
    return 0;
  }

  std::vector<Violation> reported = violations;
  std::size_t tolerated = 0;
  std::size_t stale = 0;
  if (!baseline_path.empty()) {
    std::vector<BaselineEntry> baseline;
    if (!load_baseline(baseline_path, &baseline)) {
      std::fprintf(stderr, "fr_analyze: cannot read baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
    BaselineDiff diff = diff_baseline(violations, baseline);
    tolerated = violations.size() - diff.fresh.size();
    stale = diff.stale.size();
    for (const BaselineEntry& entry : diff.stale) {
      std::fprintf(stderr,
                   "fr_analyze: stale baseline entry (no longer found): "
                   "[%s] %s (%s) — prune it with --write-baseline\n",
                   entry.rule.c_str(), entry.fingerprint.c_str(),
                   entry.file.c_str());
    }
    reported = std::move(diff.fresh);
  }

  if (format == Format::kJson) {
    emit_json(stdout, reported);
  } else if (format == Format::kSarif) {
    emit_sarif(stdout, "fr_analyze", reported);
  } else {
    emit_text(stderr, reported);
  }
  std::fprintf(stderr,
               "fr_analyze: %zu file(s), %zu include edge(s), %zu mutex(es), "
               "%zu lock edge(s), %zu function(s), %zu wire pair(s), "
               "%zu violation(s) (%zu baselined, %zu stale)\n",
               corpus.files.size(), corpus.includes.edge_count(),
               corpus.symbols.mutexes().size(), corpus.locks.edges().size(),
               corpus.graph.functions().size(), corpus.wire.pairs().size(),
               reported.size(), tolerated, stale);
  return reported.empty() ? 0 : 1;
}

// ---------------------------------------------------------------------
// --write-schemas: regenerate the committed wire-schema fingerprints.
// Run after a deliberate format change (with its version bump) so the
// schema-drift gate re-anchors; the diff is reviewable line-per-format.
// ---------------------------------------------------------------------

int run_write_schemas(const std::vector<std::string>& roots,
                      const std::string& out_path) {
  // A fixtures directory named explicitly is a corpus in its own right
  // (the self-test diffs fixture schemas too).
  bool include_fixtures = false;
  for (const std::string& root : roots) {
    if (root.find("_fixtures") != std::string::npos) include_fixtures = true;
  }
  const Corpus corpus = load_corpus(collect(roots, include_fixtures));
  const std::vector<SchemaEntry> entries = corpus.wire.entries();
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "fr_analyze: cannot write schemas %s\n",
                 out_path.c_str());
    return 2;
  }
  write_schemas(out, entries);
  std::fclose(out);
  std::fprintf(stderr, "fr_analyze: wrote %zu schema(s) to %s\n",
               entries.size(), out_path.c_str());
  return 0;
}

// ---------------------------------------------------------------------
// --stats: corpus size, per-rule findings, and end-to-end wall time as
// one JSON object — committed as BENCH_analysis.json so analyzer cost
// gets a trajectory like the kernel benches.
// ---------------------------------------------------------------------

int run_stats(const std::vector<std::string>& roots,
              const std::string& schemas_path) {
  const auto start = std::chrono::steady_clock::now();
  const Corpus corpus = load_corpus(collect(roots, /*include_fixtures=*/false));
  PassOptions options;
  options.schemas_path = schemas_path;
  const std::vector<Violation> violations =
      run_all_passes(corpus.files, corpus.symbols, corpus.includes,
                     corpus.locks, corpus.graph, corpus.summaries, corpus.wire,
                     options);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::size_t tokens = 0;
  for (const SourceFile& file : corpus.files) tokens += file.tokens.size();
  std::map<std::string, std::size_t> by_rule;
  for (const char* rule : kAnalyzeRuleIds) by_rule[rule] = 0;
  for (const Violation& v : violations) ++by_rule[v.rule];

  std::printf("{\n");
  std::printf("  \"files\": %zu,\n", corpus.files.size());
  std::printf("  \"tokens\": %zu,\n", tokens);
  std::printf("  \"functions\": %zu,\n", corpus.graph.functions().size());
  std::printf("  \"wire_functions\": %zu,\n", corpus.wire.functions().size());
  std::printf("  \"wire_pairs\": %zu,\n", corpus.wire.pairs().size());
  std::printf("  \"wall_seconds\": %.3f,\n", wall);
  std::printf("  \"findings\": {");
  bool first = true;
  for (const auto& [rule, count] : by_rule) {
    std::printf("%s\n    \"%s\": %zu", first ? "" : ",", rule.c_str(), count);
    first = false;
  }
  std::printf("\n  }\n}\n");
  return 0;
}

// ---------------------------------------------------------------------
// --coverage: annotated-vs-bare wrapper mutexes per directory, plus the
// baseline regression gate (a previously annotated mutex must never
// lose its last FR_GUARDED_BY).
// ---------------------------------------------------------------------

std::string dir_of(const std::string& path) {
  const std::size_t cut = path.rfind('/');
  return cut == std::string::npos ? "." : path.substr(0, cut);
}

int run_coverage(const std::vector<std::string>& roots,
                 const std::string& baseline_path, bool write_baseline) {
  const Corpus corpus = load_corpus(collect(roots, /*include_fixtures=*/false));

  std::map<std::string, std::pair<std::size_t, std::size_t>> by_dir;
  std::vector<const MutexDecl*> annotated;
  for (const MutexDecl& decl : corpus.symbols.mutexes()) {
    if (!decl.wrapper) continue;  // std::mutex is invisible to the analysis
    auto& [ann, bare] = by_dir[dir_of(decl.file)];
    if (decl.guarded_refs > 0) {
      ++ann;
      annotated.push_back(&decl);
    } else {
      ++bare;
    }
  }

  std::fprintf(stderr, "%-40s %9s %5s\n", "directory", "annotated", "bare");
  for (const auto& [dir, counts] : by_dir) {
    std::fprintf(stderr, "%-40s %9zu %5zu\n", dir.c_str(), counts.first,
                 counts.second);
  }

  if (write_baseline) {
    std::ofstream out(baseline_path);
    out << "# fr_analyze annotation-coverage baseline — every wrapper mutex\n"
           "# below carries at least one FR_GUARDED_BY/FR_PT_GUARDED_BY.\n"
           "# Regenerate: fr_analyze --coverage --write-baseline <this-file> "
           "src\n";
    std::vector<std::string> ids;
    for (const MutexDecl* decl : annotated) ids.push_back(decl->id);
    std::sort(ids.begin(), ids.end());
    for (const std::string& id : ids) out << "annotated " << id << "\n";
    std::fprintf(stderr, "fr_analyze: wrote %zu baseline entr(ies) to %s\n",
                 ids.size(), baseline_path.c_str());
    return 0;
  }

  if (baseline_path.empty()) return 0;
  std::ifstream in(baseline_path);
  if (!in) {
    std::fprintf(stderr, "fr_analyze: cannot read baseline %s\n",
                 baseline_path.c_str());
    return 2;
  }
  std::size_t regressions = 0;
  std::string word;
  while (in >> word) {
    if (word == "#") {
      std::string rest;
      std::getline(in, rest);
      continue;
    }
    if (word != "annotated") {
      std::getline(in, word);
      continue;
    }
    std::string id;
    if (!(in >> id)) break;
    for (const MutexDecl& decl : corpus.symbols.mutexes()) {
      if (decl.id == id && decl.wrapper && decl.guarded_refs == 0) {
        ++regressions;
        std::fprintf(stderr,
                     "%s:%zu: [coverage] mutex '%s' lost its last "
                     "FR_GUARDED_BY — the thread-safety analysis no longer "
                     "checks anything against it\n",
                     decl.file.c_str(), decl.line, id.c_str());
      }
    }
  }
  std::fprintf(stderr, "fr_analyze coverage: %zu regression(s)\n", regressions);
  return regressions == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------
// --self-test: fixtures state the rules they must trigger via
// `// EXPECT: rule-id` headers (EXPECT: clean for none). The whole
// fixtures dir is analyzed as one corpus (the passes are cross-file),
// every EXPECT id must be a known rule, and every known rule must be
// expected by exactly one fixture — so adding a pass without a fixture,
// or a fixture for a renamed rule, fails loudly.
// ---------------------------------------------------------------------

int run_self_test(const std::string& fixtures_dir) {
  const std::vector<fs::path> paths =
      collect({fixtures_dir}, /*include_fixtures=*/true);
  if (paths.empty()) {
    std::fprintf(stderr, "fr_analyze self-test: no fixtures found\n");
    return 1;
  }
  const Corpus corpus = load_corpus(paths);
  PassOptions options;
  options.treat_all_as_src = true;
  // Fixture schemas, when committed, make the drift gate self-testable:
  // the schema-drift fixture's entry is deliberately mutated in there.
  const std::string fixture_schemas = fixtures_dir + "/wire_schemas.json";
  if (fs::is_regular_file(fixture_schemas)) {
    options.schemas_path = fixture_schemas;
  }
  const std::vector<Violation> violations =
      run_all_passes(corpus.files, corpus.symbols, corpus.includes,
                     corpus.locks, corpus.graph, corpus.summaries, corpus.wire,
                     options);

  const std::set<std::string> known(kAnalyzeRuleIds.begin(),
                                    kAnalyzeRuleIds.end());
  int failures = 0;
  std::map<std::string, std::size_t> expect_counts;

  std::map<std::string, std::set<std::string>> actual;
  for (const Violation& v : violations) actual[v.file].insert(v.rule);

  for (const SourceFile& file : corpus.files) {
    std::set<std::string> expected;
    for (const std::string& raw : file.raw) {
      const std::string tag = "// EXPECT: ";
      const std::size_t pos = raw.find(tag);
      if (pos == std::string::npos) continue;
      const std::string rule = raw.substr(pos + tag.size());
      if (rule == "clean") continue;
      if (known.count(rule) == 0) {
        ++failures;
        std::fprintf(stderr, "fr_analyze self-test FAIL %s: unknown EXPECT id "
                             "'%s'\n",
                     file.path.c_str(), rule.c_str());
        continue;
      }
      expected.insert(rule);
      ++expect_counts[rule];
    }
    const std::set<std::string>& got = actual[file.path];
    if (expected != got) {
      ++failures;
      std::string want_s, got_s;
      for (const auto& r : expected) want_s += r + " ";
      for (const auto& r : got) got_s += r + " ";
      std::fprintf(stderr,
                   "fr_analyze self-test FAIL %s\n  expected: %s\n  got:      "
                   "%s\n",
                   file.path.c_str(), want_s.empty() ? "(clean)" : want_s.c_str(),
                   got_s.empty() ? "(clean)" : got_s.c_str());
    }
  }

  for (const char* rule : kAnalyzeRuleIds) {
    const std::size_t count = expect_counts[rule];
    if (count != 1) {
      ++failures;
      std::fprintf(stderr,
                   "fr_analyze self-test FAIL: rule '%s' expected by %zu "
                   "fixture(s), want exactly 1\n",
                   rule, count);
    }
  }

  std::fprintf(stderr, "fr_analyze self-test: %zu fixture(s), %d failure(s)\n",
               corpus.files.size(), failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  Format format = Format::kText;
  bool coverage = false;
  bool stats = false;
  bool write_baseline = false;
  std::string baseline;
  std::string schemas;
  std::string write_schemas_path;
  std::string self_test_dir;
  std::vector<std::string> roots;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--json") {
      format = Format::kJson;
    } else if (arg == "--sarif") {
      format = Format::kSarif;
    } else if (arg == "--coverage") {
      coverage = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--schemas" || arg == "--write-schemas") {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "fr_analyze: %s takes a file argument\n",
                     arg.c_str());
        return 2;
      }
      if (arg == "--schemas") {
        schemas = args[++i];
      } else {
        write_schemas_path = args[++i];
      }
    } else if (arg == "--baseline" || arg == "--write-baseline") {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "fr_analyze: %s takes a file argument\n",
                     arg.c_str());
        return 2;
      }
      baseline = args[++i];
      write_baseline = arg == "--write-baseline";
    } else if (arg == "--self-test") {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "fr_analyze: --self-test takes a fixtures dir\n");
        return 2;
      }
      self_test_dir = args[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "fr_analyze: unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      roots.push_back(arg);
    }
  }

  if (!self_test_dir.empty()) return run_self_test(self_test_dir);
  if (roots.empty()) {
    std::fprintf(
        stderr,
        "usage: fr_analyze [--json|--sarif] [--baseline <file> | "
        "--write-baseline <file>] [--schemas <file>] <dir-or-file>...\n"
        "       fr_analyze --write-schemas <file> <roots>\n"
        "       fr_analyze --stats <roots>\n"
        "       fr_analyze --self-test <fixtures-dir>\n"
        "       fr_analyze --coverage [--baseline <file> | --write-baseline "
        "<file>] <roots>\n");
    return 2;
  }
  if (!write_schemas_path.empty()) {
    return run_write_schemas(roots, write_schemas_path);
  }
  if (stats) return run_stats(roots, schemas);
  if (coverage) return run_coverage(roots, baseline, write_baseline);
  return run_analyze(roots, format, baseline, write_baseline, schemas);
}
