// EXPECT: clean
//
// Control for schema_drift.cpp: the committed fixture schema entry for
// this pair matches what the extractor computes, so the drift gate
// stays quiet.
#include "serdes_like.h"

namespace fx {

constexpr std::uint32_t kFxfBlobVersion = 3;

void save_fxf_blob(ByteWriter& w, std::uint32_t fxf_checksum) {
  w.put(kFxfBlobVersion);
  w.put(fxf_checksum);
  w.put_bytes({});
}

void load_fxf_blob(ByteReader& r) {
  if (r.get<std::uint32_t>() != kFxfBlobVersion) {
    return;
  }
  const auto fxf_checksum = r.get<std::uint32_t>();
  (void)fxf_checksum;
  const auto fxf_body = r.get_bytes();
  (void)fxf_body;
}

}  // namespace fx
