// EXPECT: clean
// The CondVar protocol: cond_.wait(lock) parks the thread, but the
// wait *releases* the lock it is handed — the one held lock at the
// site is exempt, so this must not read as blocking-under-lock.
#include "interproc_locks.h"

struct FakeCond {
  void wait(fx::MutexLock&) {}
};

class Waiter {
 public:
  void park() {
    fx::MutexLock lock(mu_);
    while (!ready_flag_) cond_.wait(lock);
  }

 private:
  fx::Mutex mu_;
  bool ready_flag_ = false;
  FakeCond cond_;
};
