// EXPECT: clean
// Second half of the seeded inversion: acquires g_lock_b before
// g_lock_a, the reverse of lock_order_cycle_a.cpp. The resulting cycle
// is reported once, attributed to the file with the smallest witness
// edge (lock_order_cycle_a.cpp) — so this file expects no violation of
// its own even though it participates in the cycle.
#include "locks.h"

void transfer_b_then_a() {
  fx::MutexLock hold_b(fx::g_lock_b);
  fx::MutexLock hold_a(fx::g_lock_a);
}
