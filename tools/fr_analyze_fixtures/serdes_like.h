// EXPECT: clean
//
// Fixture stand-ins for the serdes stream types: the wire-schema
// extractor keys on the ByteWriter/ByteReader type names of parameters
// and locals, so these shells are all the serdes fixtures need.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fx {

class ByteWriter {
 public:
  template <typename T>
  void put(const T&) {}
  void put_string(const std::string&) {}
  void put_bytes(const std::vector<std::uint8_t>&) {}
};

class ByteReader {
 public:
  template <typename T>
  T get() {
    return T{};
  }
  std::string get_string() { return {}; }
  std::vector<std::uint8_t> get_bytes() { return {}; }
  std::uint64_t bounded_count(std::uint64_t n, std::uint64_t) { return n; }
  [[nodiscard]] std::uint64_t remaining() const { return 0; }
};

}  // namespace fx
