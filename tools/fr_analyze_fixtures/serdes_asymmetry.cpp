// EXPECT: serdes-asymmetry
//
// Two divergent writer/reader pairs. The header pair disagrees
// directly on a scalar width. The item helpers disagree too, and the
// save/load roots that splice them inherit that divergence — which the
// pass reports on the helper pair only (the roots' mismatch is
// suppressed as belonging to the nested pair).
#include "serdes_like.h"

namespace fx {

void put_fxa_header(ByteWriter& w, std::uint32_t fxa_flags) {
  w.put(fxa_flags);
  w.put(static_cast<std::uint8_t>(1));
}

void get_fxa_header(ByteReader& r) {
  const auto fxa_flags = r.get<std::uint64_t>();
  const auto fxa_marker = r.get<std::uint8_t>();
  (void)fxa_flags;
  (void)fxa_marker;
}

void put_fxa_item(ByteWriter& w, std::uint64_t fxa_item_id) {
  w.put(fxa_item_id);
  w.put(static_cast<std::uint16_t>(7));
}

void get_fxa_item(ByteReader& r) {
  const auto fxa_item_id = r.get<std::uint64_t>();
  const auto fxa_tag = r.get<std::uint32_t>();
  (void)fxa_item_id;
  (void)fxa_tag;
}

void save_fxa_items(ByteWriter& w) {
  w.put(static_cast<std::uint8_t>(2));
  put_fxa_item(w, 1);
  put_fxa_item(w, 2);
}

void load_fxa_items(ByteReader& r) {
  const auto fxa_count = r.get<std::uint8_t>();
  (void)fxa_count;
  get_fxa_item(r);
  get_fxa_item(r);
}

}  // namespace fx
