// EXPECT: guarded-by-coverage
// A guarded-field write with no path from any entry point holding the
// guard: bump_unsafe mutates count_ bare and nobody locks mu_ around
// it, so the obligation survives fixpoint to a root. bump_safe shows
// the discharged shape on the same field. (FR_GUARDED_BY is a macro in
// the real tree; the analyzer keys on the spelled annotation, so no
// define is needed here.)
#include "locks.h"

namespace fxg {

class Counter {
 public:
  void bump_safe() {
    fx::MutexLock lock(mu_);
    ++count_;
  }

  void bump_unsafe() { ++count_; }

 private:
  fx::Mutex mu_;
  int count_ FR_GUARDED_BY(mu_);
};

}  // namespace fxg
