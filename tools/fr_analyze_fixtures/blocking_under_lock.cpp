// EXPECT: blocking-under-lock
// File I/O reached through a callee while a scoped lock is held: the
// blocking fact (fopen/fclose in flush_side_log) propagates up the
// call summary, and the call site inside the critical section is the
// violation — every contender of g_b1 stalls behind a disk write.
#include <cstdio>

#include "interproc_locks.h"

inline void flush_side_log() {
  std::FILE* f = std::fopen("side.log", "a");
  if (f != nullptr) std::fclose(f);
}

inline void hold_and_flush() {
  fx::MutexLock lock(fxi::g_b1);
  flush_side_log();
}
