// EXPECT: clean
// A bare guarded-field write that IS safe: the only caller of touch()
// holds the guard at the call site, so the write obligation is
// discharged on the way up and never reaches a root unguarded.
#include "locks.h"

namespace fxh {

class Gauge {
 public:
  void refresh() {
    fx::MutexLock lock(gmu_);
    touch();
  }

 private:
  void touch() { level_ = level_ + 1; }

  fx::Mutex gmu_;
  int level_ FR_GUARDED_BY(gmu_);
};

}  // namespace fxh
