// EXPECT: clean
//
// A symmetric pair exercising every schema construct: a nested helper
// pair, a counted repeated group, a version check read in an if
// condition, and a presence-byte-gated optional segment.
#include <vector>

#include "serdes_like.h"

namespace fx {

constexpr std::uint32_t kFxbVersion = 2;

void put_fxb_point(ByteWriter& w, std::uint64_t fxb_a, std::uint32_t fxb_b) {
  w.put(fxb_a);
  w.put(fxb_b);
}

void get_fxb_point(ByteReader& r) {
  const auto fxb_a = r.get<std::uint64_t>();
  const auto fxb_b = r.get<std::uint32_t>();
  (void)fxb_a;
  (void)fxb_b;
}

void save_fxb_scene(ByteWriter& w, const std::vector<std::uint64_t>& fxb_ids,
                    bool fxb_annotated) {
  w.put(kFxbVersion);
  w.put(static_cast<std::uint32_t>(fxb_ids.size()));
  for (const std::uint64_t fxb_id : fxb_ids) {
    put_fxb_point(w, fxb_id, 0);
  }
  w.put(static_cast<std::uint8_t>(fxb_annotated ? 1 : 0));
  if (fxb_annotated) {
    w.put_string("legend");
  }
}

void load_fxb_scene(ByteReader& r) {
  if (r.get<std::uint32_t>() != kFxbVersion) {
    return;
  }
  const std::uint64_t fxb_count = r.bounded_count(r.get<std::uint32_t>(), 12);
  for (std::uint64_t i = 0; i < fxb_count; ++i) {
    get_fxb_point(r);
  }
  if (r.get<std::uint8_t>() != 0) {
    const auto fxb_legend = r.get_string();
    (void)fxb_legend;
  }
}

}  // namespace fx
