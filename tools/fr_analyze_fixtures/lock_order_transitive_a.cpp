// EXPECT: lock-order-cycle-transitive
// One half of a lock inversion that no single body exhibits: this TU
// acquires g_t1 and then *calls* a function (defined in
// lock_order_transitive_b.cpp) whose summary acquires g_t2. The other
// half holds g_t2 and calls back into a g_t1 acquirer. Neither TU has
// nested MutexLocks, so the direct lock-order pass is blind; only the
// call-chain-induced edges close the cycle. Attribution lands here
// because this file's witness edge sorts first.
#include "interproc_locks.h"

void take_second();

void first_then_second() {
  fx::MutexLock hold(fxi::g_t1);
  take_second();
}
