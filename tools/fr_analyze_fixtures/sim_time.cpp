// EXPECT: sim-time
// Real-time sources in pipeline code: each of these must be charged to
// SimClock instead so a scan replays identically across runs.
#include <chrono>
#include <thread>

long long pipeline_step() {
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const auto now = std::chrono::system_clock::now();
  return now.time_since_epoch().count();
}
