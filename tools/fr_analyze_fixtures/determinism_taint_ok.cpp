// EXPECT: clean
// Iterating an unordered container is fine when nothing order-
// sensitive consumes the visit order: integer addition commutes
// exactly, and nothing is emitted from the loop.
#include <unordered_map>

namespace fxu {

inline std::unordered_map<int, long> g_tally;

inline long total_tally() {
  long total = 0;
  for (const auto& kv : g_tally) total += kv.second;
  return total;
}

}  // namespace fxu
