// EXPECT: determinism-taint
// Hash-order iteration flowing into an output sink through a callee:
// the emit fact (Sink::put, matched by name) propagates into
// emit_weight's summary, so the range-for over the unordered map is a
// taint source feeding an order-sensitive sink — the emitted sequence
// changes with the hash seed.
#include <unordered_map>

struct Sink {
  void put(int) {}
};

namespace fxt {

inline Sink g_sink;
inline std::unordered_map<int, int> g_weights;

inline void emit_weight(int v) { g_sink.put(v); }

inline void snapshot_weights() {
  for (const auto& kv : g_weights) emit_weight(kv.second);
}

}  // namespace fxt
