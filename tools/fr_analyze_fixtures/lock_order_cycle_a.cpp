// EXPECT: lock-order-cycle
// One half of a seeded A-before-B / B-before-A inversion. The other
// half lives in lock_order_cycle_b.cpp; the cycle only exists when the
// analyzer merges acquisition orders across translation units. The
// violation is attributed to this file because its witness edge is the
// lexicographically smallest (see run_lock_order_pass).
#include "locks.h"

void transfer_a_then_b() {
  fx::MutexLock hold_a(fx::g_lock_a);
  fx::MutexLock hold_b(fx::g_lock_b);
}
