// EXPECT: clean
// The other half of the transitive inversion (see
// lock_order_transitive_a.cpp). Clean on its own: the cycle's witness
// is attributed to the a-side file, and nothing here nests locks
// directly.
#include "interproc_locks.h"

void take_second() {
  fx::MutexLock hold(fxi::g_t2);
}

void take_first() {
  fx::MutexLock hold(fxi::g_t1);
}

void second_then_first() {
  fx::MutexLock hold(fxi::g_t2);
  take_first();
}
