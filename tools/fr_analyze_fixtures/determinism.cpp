// EXPECT: determinism-reduction
// Floating-point accumulation into a captured variable inside a
// parallel_for lambda: the pool's scheduling decides the addition
// order, so the sum differs run-to-run and across pool sizes.
#include <cstddef>

struct FakePool {
  template <typename F>
  void parallel_for(std::size_t begin, std::size_t end, F&& body) {
    for (std::size_t i = begin; i < end; ++i) body(i);
  }
};

double racy_sum(FakePool& pool, const double* values, std::size_t n) {
  double total = 0.0;
  pool.parallel_for(0, n, [&](std::size_t i) {
    total += values[i];
  });
  return total;
}
