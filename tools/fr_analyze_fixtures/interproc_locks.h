// EXPECT: clean
// Shared declarations for the interprocedural fixtures: fresh global
// locks (distinct from fx::g_lock_a/g_lock_b so the direct-cycle
// fixtures and the transitive ones never entangle — the self-test
// analyzes the whole directory as one corpus).
#pragma once

#include "locks.h"

namespace fxi {

inline fx::Mutex g_t1;
inline fx::Mutex g_t2;
inline fx::Mutex g_b1;

}  // namespace fxi
