// EXPECT: clean
// Banned spellings inside a raw string literal — including an
// unbalanced quote that would desync a line-based scrubber — must not
// trip any pass: the tokenizer blanks raw-string contents before the
// passes ever see them.
#include <string>

std::string lint_documentation() {
  return R"DOC(
    The sim-time pass rejects sleep_for, system_clock::now() and raw
    time() calls in pipeline code. An unbalanced " quote and a fake
    parallel_for([&] { total += x; }) live here too, all inert.
  )DOC";
}
