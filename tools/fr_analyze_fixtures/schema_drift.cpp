// EXPECT: schema-drift
//
// This pair is symmetric and correctly versioned IN SOURCE — the drift
// comes from the committed fixture wire_schemas.json, whose entry for
// save_fxe_blob carries a deliberately mutated writer_schema with the
// same version string. That is exactly the state the gate exists for:
// the wire bytes changed but kFxeBlobVersion did not.
#include "serdes_like.h"

namespace fx {

constexpr std::uint32_t kFxeBlobVersion = 1;

void save_fxe_blob(ByteWriter& w, std::uint64_t fxe_payload) {
  w.put(kFxeBlobVersion);
  w.put(fxe_payload);
}

void load_fxe_blob(ByteReader& r) {
  if (r.get<std::uint32_t>() != kFxeBlobVersion) {
    return;
  }
  const auto fxe_payload = r.get<std::uint64_t>();
  (void)fxe_payload;
}

}  // namespace fx
