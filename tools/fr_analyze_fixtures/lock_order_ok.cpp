// EXPECT: clean
// Nested acquisition in a consistent global order (A before B in every
// function) plus the unlock-before-callback idiom from
// thread_pool.cpp — neither may produce a cycle.
#include "locks.h"

void consistent_order_one() {
  fx::MutexLock hold_a(fx::g_lock_a);
  fx::MutexLock hold_b(fx::g_lock_b);
}

void consistent_order_two() {
  fx::MutexLock hold_a(fx::g_lock_a);
  {
    fx::MutexLock hold_b(fx::g_lock_b);
  }
}

void unlock_before_nested() {
  fx::MutexLock hold_b(fx::g_lock_b);
  hold_b.unlock();
  // g_lock_b is no longer held here, so acquiring g_lock_a does NOT
  // create a b->a edge (this is the pool's run_task re-entry pattern).
  fx::MutexLock hold_a(fx::g_lock_a);
  hold_a.unlock();
  hold_b.lock();
}
