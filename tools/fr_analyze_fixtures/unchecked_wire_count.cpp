// EXPECT: unchecked-wire-count
//
// Wire-sourced counts reaching allocation-sized uses without a bound:
// a ByteReader count driving resize(), and a raw-FILE fread count
// driving a loop that reads per iteration.
#include <cstdio>
#include <vector>

#include "serdes_like.h"

namespace fx {

void load_fxc_table(ByteReader& r, std::vector<std::uint64_t>& fxc_out) {
  const auto fxc_n = r.get<std::uint32_t>();
  fxc_out.resize(fxc_n);
  for (std::uint64_t& fxc_slot : fxc_out) {
    fxc_slot = r.get<std::uint64_t>();
  }
}

void load_fxc_stream(std::FILE* fxc_f, ByteReader& r) {
  std::uint32_t fxc_m = 0;
  if (std::fread(&fxc_m, sizeof(fxc_m), 1, fxc_f) != 1) {
    return;
  }
  for (std::uint32_t i = 0; i < fxc_m; ++i) {
    const auto fxc_v = r.get<std::uint64_t>();
    (void)fxc_v;
  }
}

}  // namespace fx
