// EXPECT: clean
//
// The same allocation shapes as unchecked_wire_count.cpp, but bounded:
// once through ByteReader::bounded_count, once through an explicit
// comparison against the remaining input.
#include <vector>

#include "serdes_like.h"

namespace fx {

void load_fxd_table(ByteReader& r, std::vector<std::uint64_t>& fxd_out) {
  const std::uint64_t fxd_n = r.bounded_count(r.get<std::uint32_t>(), 8);
  fxd_out.resize(fxd_n);
  for (std::uint64_t& fxd_slot : fxd_out) {
    fxd_slot = r.get<std::uint64_t>();
  }
}

void load_fxd_checked(ByteReader& r, std::vector<std::uint64_t>& fxd_out) {
  const auto fxd_m = r.get<std::uint32_t>();
  if (fxd_m > r.remaining() / 8) {
    return;
  }
  fxd_out.reserve(fxd_m);
  for (std::uint32_t i = 0; i < fxd_m; ++i) {
    fxd_out.push_back(r.get<std::uint64_t>());
  }
}

}  // namespace fx
