// EXPECT: clean
// The blessed fixed-block reduction shape: a lambda-local accumulator
// drains into a disjoint indexed slot per block, and the final
// cross-block sum happens sequentially — bit-identical for any pool
// size. This is the pattern core/faultyrank.cpp's reduce_block_sum
// uses, and the determinism pass must not fire on it.
#include <cstddef>
#include <vector>

struct FakePool {
  template <typename F>
  void parallel_for(std::size_t begin, std::size_t end, F&& body) {
    for (std::size_t i = begin; i < end; ++i) body(i);
  }
};

double block_sum(FakePool& pool, const std::vector<double>& values,
                 std::size_t blocks) {
  std::vector<double> partial(blocks, 0.0);
  const std::size_t stride = values.size() / blocks + 1;
  pool.parallel_for(0, blocks, [&](std::size_t block) {
    double acc = 0.0;
    const std::size_t lo = block * stride;
    const std::size_t hi = lo + stride < values.size() ? lo + stride
                                                       : values.size();
    for (std::size_t i = lo; i < hi; ++i) acc += values[i];
    partial[block] = acc;
  });
  double total = 0.0;
  for (const double p : partial) total += p;
  return total;
}
