// EXPECT: clean
// Fixture-local stand-ins for the src/common/mutex.h wrappers: the
// analyzer keys on the spelled type names (Mutex / MutexLock), so these
// minimal shims give the lock-order fixtures real declarations for the
// symbol table to resolve without pulling repo headers into the
// fixture corpus.
#pragma once

namespace fx {

class Mutex {
 public:
  void lock() {}
  void unlock() {}
};

class MutexLock {
 public:
  explicit MutexLock(Mutex& m) : m_(m) { m_.lock(); }
  ~MutexLock() { m_.unlock(); }

 private:
  Mutex& m_;
};

inline Mutex g_lock_a;
inline Mutex g_lock_b;

}  // namespace fx
