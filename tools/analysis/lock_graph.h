// Static lock-order graph (DESIGN.md §11).
//
// Extracts intra-scope acquisition sequences from MutexLock/SharedLock
// nesting across all translation units: while lock A is held (an
// enclosing MutexLock whose scope is still open), constructing a
// MutexLock over B records the acquired-after edge A→B with the
// file:line of both acquisitions. The edges from every TU land in one
// global graph; any directed cycle is a potential deadlock and is
// reported with the full witness path. `lock.unlock()` / `lock.lock()`
// on a named MutexLock variable (the drop-the-lock-run-the-task
// pattern in the thread pool) updates the held set, so the stream-of-
// tokens view tracks what the scopes actually hold.
//
// Lock identity is instance-blind (every instance of a class shares
// its member mutex's identity) — the standard conservative
// approximation; see SymbolTable::resolve for the lookup order.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "analysis/include_graph.h"
#include "analysis/symbols.h"
#include "analysis/token.h"

namespace fr_analysis {

/// One acquired-after edge: `to` was acquired while `from` was held.
struct LockEdge {
  std::string from;  ///< resolved lock identity
  std::string to;
  std::string file;           ///< TU the nesting was seen in
  std::size_t from_line = 0;  ///< acquisition line of `from`
  std::size_t to_line = 0;    ///< acquisition line of `to`
};

/// A cycle through the global lock graph: edges[i].to == edges[i+1].from
/// and edges.back().to == edges.front().from.
struct LockCycle {
  std::vector<LockEdge> edges;
};

class LockGraph {
 public:
  [[nodiscard]] static LockGraph build(const std::vector<SourceFile>& files,
                                       const SymbolTable& symbols,
                                       const IncludeGraph& includes);

  [[nodiscard]] const std::vector<LockEdge>& edges() const noexcept {
    return edges_;
  }

  /// Elementary cycles, deduplicated by canonical rotation, in a
  /// deterministic order.
  [[nodiscard]] std::vector<LockCycle> find_cycles() const;

 private:
  std::vector<LockEdge> edges_;
  std::map<std::string, std::vector<std::size_t>> adjacency_;  // lock → edge idx
};

}  // namespace fr_analysis
