// Static lock-order graph (DESIGN.md §11, §13).
//
// Extracts intra-scope acquisition sequences from MutexLock/SharedLock
// nesting across all translation units: while lock A is held (an
// enclosing MutexLock whose scope is still open), constructing a
// MutexLock over B records the acquired-after edge A→B with the
// file:line of both acquisitions. The edges from every TU land in one
// global graph; any directed cycle is a potential deadlock and is
// reported with the full witness path. `lock.unlock()` / `lock.lock()`
// on a named MutexLock variable (the drop-the-lock-run-the-task
// pattern in the thread pool) updates the held set, so the stream-of-
// tokens view tracks what the scopes actually hold.
//
// The held-lock walk itself is exposed as LockWalker so the summaries
// layer (analysis/summaries.h) shares the exact same semantics when it
// asks "what is held at this call site / blocking primitive / guarded
// write" — one tracker, two consumers. Interprocedural passes extend
// the direct graph with call-chain-induced edges (LockEdge::via holds
// the witness chain) via LockGraph::from_edges.
//
// Lock identity is instance-blind (every instance of a class shares
// its member mutex's identity) — the standard conservative
// approximation; see SymbolTable::resolve for the lookup order.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "analysis/include_graph.h"
#include "analysis/scopes.h"
#include "analysis/symbols.h"
#include "analysis/token.h"

namespace fr_analysis {

/// One acquired-after edge: `to` was acquired while `from` was held.
/// Direct edges come from MutexLock nesting in one body; induced edges
/// (via != "") come from a call made under `from` reaching an
/// acquisition of `to` through the summarized call chain.
struct LockEdge {
  std::string from;  ///< resolved lock identity
  std::string to;
  std::string file;           ///< TU the nesting was seen in
  std::size_t from_line = 0;  ///< acquisition line of `from`
  std::size_t to_line = 0;    ///< acquisition line of `to` (call line
                              ///< for induced edges)
  std::string via;            ///< witness call chain, "" for direct edges
};

/// A cycle through the global lock graph: edges[i].to == edges[i+1].from
/// and edges.back().to == edges.front().from.
struct LockCycle {
  std::vector<LockEdge> edges;
};

/// A scoped-lock variable alive in the current function: `held` toggles
/// with explicit lock()/unlock() calls; `depth` is the scope depth of
/// the declaration (popped when its scope closes).
struct ActiveLock {
  std::string id;
  std::string var;
  std::size_t depth = 0;
  std::size_t line = 0;
  bool held = true;
};

/// Streams a file's tokens and maintains the set of active scoped
/// locks. Call advance(k) for every token index in order; query
/// active() *before* advancing past the token of interest (the state
/// at a token is the state as of its first character).
class LockWalker {
 public:
  LockWalker(const SourceFile& file, const SymbolTable& symbols,
             const IncludeGraph& includes)
      : file_(file), symbols_(symbols), includes_(includes) {}

  /// Consumes token k. When it opens a `MutexLock var(expr)` /
  /// `SharedLock var(expr)` acquisition, an acquired-after edge to
  /// every currently-held lock is appended to `edges` (when non-null)
  /// and the new lock joins the active set.
  void advance(std::size_t k, std::vector<LockEdge>* edges);

  /// Injects a pseudo-held lock (an FR_REQUIRES annotation on the
  /// function being walked): held for the rest of the current scope.
  void assume_held(const std::string& id, std::size_t line);

  [[nodiscard]] const std::vector<ActiveLock>& active() const noexcept {
    return active_;
  }
  [[nodiscard]] const ScopeTracker& scopes() const noexcept { return scopes_; }

 private:
  const SourceFile& file_;
  const SymbolTable& symbols_;
  const IncludeGraph& includes_;
  ScopeTracker scopes_;
  std::vector<ActiveLock> active_;
};

class LockGraph {
 public:
  [[nodiscard]] static LockGraph build(const std::vector<SourceFile>& files,
                                       const SymbolTable& symbols,
                                       const IncludeGraph& includes);

  /// A graph over an explicit edge list — how the transitive pass
  /// combines the direct edges with the call-chain-induced ones.
  [[nodiscard]] static LockGraph from_edges(std::vector<LockEdge> edges);

  [[nodiscard]] const std::vector<LockEdge>& edges() const noexcept {
    return edges_;
  }

  /// Elementary cycles, deduplicated by canonical rotation, in a
  /// deterministic order.
  [[nodiscard]] std::vector<LockCycle> find_cycles() const;

 private:
  void index_edges();

  std::vector<LockEdge> edges_;
  std::map<std::string, std::vector<std::size_t>> adjacency_;  // lock → edge idx
};

}  // namespace fr_analysis
