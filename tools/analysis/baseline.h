// Baseline-diff gate for fr_analyze (DESIGN.md §13).
//
// CI does not demand a violation-free tree — it demands no *new*
// violations. The committed baseline (tools/analysis/
// findings_baseline.json) lists the fingerprints of the findings the
// tree knowingly tolerates; a run with --baseline diffs its findings
// against that list as a multiset:
//
//   fresh   finding present in the run, absent from the baseline
//           → printed and the exit code is non-zero (the gate);
//   stale   baseline entry no finding matched → warned about so the
//           baseline gets pruned, but exit stays zero (fixing a
//           tolerated finding must never break CI).
//
// Fingerprints are line-insensitive (rule + the identities involved),
// so unrelated edits to a baselined file do not churn the gate.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/violation.h"

namespace fr_analysis {

/// One tolerated finding from the baseline file. `rule` and `file` are
/// informational (for the stale warning); identity is the fingerprint.
struct BaselineEntry {
  std::string fingerprint;
  std::string rule;
  std::string file;
};

struct BaselineDiff {
  std::vector<Violation> fresh;       ///< findings not in the baseline
  std::vector<BaselineEntry> stale;   ///< baseline entries nothing matched
};

/// Parses a baseline file previously produced by write_baseline (one
/// finding object per line). Returns false (and leaves `out` empty) on
/// unreadable files; a missing optional key is tolerated, a missing
/// fingerprint drops the entry.
[[nodiscard]] bool load_baseline(const std::string& path,
                                 std::vector<BaselineEntry>* out);

/// Multiset diff of the run's findings against the baseline: each
/// baseline fingerprint absorbs at most one finding with the same
/// fingerprint; leftovers on either side are fresh/stale.
[[nodiscard]] BaselineDiff diff_baseline(
    const std::vector<Violation>& findings,
    const std::vector<BaselineEntry>& baseline);

/// Writes the findings as a baseline file: a stable, reviewable JSON
/// document with exactly one finding object per line.
void write_baseline(std::FILE* out, const std::vector<Violation>& findings);

}  // namespace fr_analysis
