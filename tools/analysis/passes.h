// The three cross-file fr_analyze passes (DESIGN.md §11):
//
//   lock-order-cycle        Any directed cycle in the global MutexLock
//                           acquired-after graph, reported with the
//                           full witness path (file:line per edge).
//   sim-time                Real-time calls (sleep_*, system_clock /
//                           steady_clock::now, raw time()) in pipeline
//                           code (src/) outside the two blessed homes:
//                           common/sim_clock.* (virtual time) and
//                           common/timer.h (the bench stopwatch). Real
//                           time in the pipeline silently breaks the
//                           reproducible virtual-clock accounting.
//   determinism-reduction   Floating-point `+=`/`-=` into a captured
//                           variable (or std::accumulate) inside a
//                           parallel_for / parallel_for_ranges lambda:
//                           cross-thread accumulation orders float
//                           additions by scheduling, breaking the
//                           bit-identical-across-pool-sizes guarantee.
//                           Reductions go through the fixed-block
//                           helpers (reduce_block_sum/_max) or write
//                           disjoint indexed slots.
//
// A line can opt out with a trailing `// fr_analyze: allow(rule-id)`.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "analysis/include_graph.h"
#include "analysis/lock_graph.h"
#include "analysis/symbols.h"
#include "analysis/token.h"
#include "analysis/violation.h"

namespace fr_analysis {

/// Every rule id fr_analyze can emit (the fixture self-test demands
/// each appears in exactly one EXPECT header).
inline constexpr std::array<const char*, 3> kAnalyzeRuleIds = {
    "lock-order-cycle", "sim-time", "determinism-reduction"};

struct PassOptions {
  /// Self-test mode: treat every file as pipeline code (src/), so the
  /// sim-time pass is live on fixtures regardless of their path.
  bool treat_all_as_src = false;
};

[[nodiscard]] std::vector<Violation> run_lock_order_pass(
    const LockGraph& graph, const std::vector<SourceFile>& files);

[[nodiscard]] std::vector<Violation> run_sim_time_pass(
    const std::vector<SourceFile>& files, const PassOptions& options);

[[nodiscard]] std::vector<Violation> run_determinism_pass(
    const std::vector<SourceFile>& files);

/// All three passes over an analyzed corpus, sorted by (file, line).
[[nodiscard]] std::vector<Violation> run_all_passes(
    const std::vector<SourceFile>& files, const SymbolTable& symbols,
    const IncludeGraph& includes, const LockGraph& lock_graph,
    const PassOptions& options);

}  // namespace fr_analysis
