// The cross-file fr_analyze passes (DESIGN.md §11, §13).
//
// Intra-procedural (corpus-wide token view):
//
//   lock-order-cycle        Any directed cycle in the global MutexLock
//                           acquired-after graph, reported with the
//                           full witness path (file:line per edge).
//   sim-time                Real-time calls (sleep_*, system_clock /
//                           steady_clock::now, raw time()) in pipeline
//                           code (src/) outside the two blessed homes:
//                           common/sim_clock.* (virtual time) and
//                           common/timer.h (the bench stopwatch). Real
//                           time in the pipeline silently breaks the
//                           reproducible virtual-clock accounting.
//   determinism-reduction   Floating-point `+=`/`-=` into a captured
//                           variable (or std::accumulate) inside a
//                           parallel_for / parallel_for_ranges lambda:
//                           cross-thread accumulation orders float
//                           additions by scheduling, breaking the
//                           bit-identical-across-pool-sizes guarantee.
//                           Reductions go through the fixed-block
//                           helpers (reduce_block_sum/_max) or write
//                           disjoint indexed slots.
//
// Interprocedural (call-graph summaries, analysis/summaries.h):
//
//   lock-order-cycle-transitive
//                           A lock cycle that only closes through call
//                           chains: a call made under lock A reaching
//                           an acquisition of B in a callee induces the
//                           edge A→B. Reported with the full
//                           inter-function witness; cycles already
//                           visible to the direct pass are not
//                           re-reported.
//   blocking-under-lock     A blocking primitive (CondVar wait family,
//                           thread join, file I/O) reachable — directly
//                           or through summarized callees — while a
//                           scoped lock is held. The lock a
//                           `cv.wait(lock)` releases is exempt at that
//                           site.
//   determinism-taint       Iteration over an unordered container
//                           (hash order = address order = run order)
//                           flowing into an output or reduction sink:
//                           emitted bytes or float accumulation pick up
//                           the hash-seed ordering and runs stop being
//                           bit-identical.
//   guarded-by-coverage     A write to an FR_GUARDED_BY field on a path
//                           where no caller up to a root function holds
//                           the guard (FR_REQUIRES on a definition head
//                           counts as held).
//
// Wire-schema (reconstructed serdes model, analysis/wire_schema.h):
//
//   serdes-asymmetry        A paired writer/reader disagree on field
//                           kind, scalar width, or sequence length —
//                           reported with file:line witnesses on both
//                           sides of the first divergence.
//   unchecked-wire-count    A count read from the wire (ByteReader::get
//                           or raw fread) reaches resize()/reserve()/a
//                           loop bound without bounded_count or an
//                           explicit comparison first.
//   schema-drift            Computed schema fingerprints diverge from
//                           the committed tools/analysis/
//                           wire_schemas.json: a schema change without
//                           a format-version-constant bump in the
//                           writer's TU fails the gate.
//
// A line can opt out with a trailing `// fr_analyze: allow(rule-id)`.
// Every violation carries a line-insensitive fingerprint for the
// baseline gate (analysis/baseline.h).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "analysis/call_graph.h"
#include "analysis/include_graph.h"
#include "analysis/lock_graph.h"
#include "analysis/summaries.h"
#include "analysis/symbols.h"
#include "analysis/token.h"
#include "analysis/violation.h"
#include "analysis/wire_schema.h"

namespace fr_analysis {

/// Every rule id fr_analyze can emit (the fixture self-test demands
/// each appears in exactly one EXPECT header).
inline constexpr std::array<const char*, 10> kAnalyzeRuleIds = {
    "lock-order-cycle",    "sim-time",
    "determinism-reduction", "lock-order-cycle-transitive",
    "blocking-under-lock", "determinism-taint",
    "guarded-by-coverage", "serdes-asymmetry",
    "unchecked-wire-count", "schema-drift"};

struct PassOptions {
  /// Self-test mode: treat every file as pipeline code (src/), so the
  /// sim-time pass is live on fixtures regardless of their path.
  bool treat_all_as_src = false;
  /// Committed schema fingerprints to diff against. Empty disables the
  /// schema-drift pass (the other wire passes are always live).
  std::string schemas_path;
};

[[nodiscard]] std::vector<Violation> run_lock_order_pass(
    const LockGraph& graph, const std::vector<SourceFile>& files);

[[nodiscard]] std::vector<Violation> run_sim_time_pass(
    const std::vector<SourceFile>& files, const PassOptions& options);

[[nodiscard]] std::vector<Violation> run_determinism_pass(
    const std::vector<SourceFile>& files);

/// Cycles in direct ∪ call-chain-induced edges that need at least one
/// induced edge to close (everything else is the direct pass's job).
[[nodiscard]] std::vector<Violation> run_lock_order_transitive_pass(
    const LockGraph& direct, const Summaries& summaries,
    const std::vector<SourceFile>& files);

[[nodiscard]] std::vector<Violation> run_blocking_under_lock_pass(
    const Summaries& summaries, const std::vector<SourceFile>& files);

[[nodiscard]] std::vector<Violation> run_determinism_taint_pass(
    const std::vector<SourceFile>& files, const CallGraph& graph,
    const Summaries& summaries, const IncludeGraph& includes);

[[nodiscard]] std::vector<Violation> run_guarded_by_pass(
    const Summaries& summaries, const std::vector<SourceFile>& files);

/// First divergence of every paired writer/reader schema; divergences
/// owned by a nested helper pair are reported on the helper only.
[[nodiscard]] std::vector<Violation> run_serdes_asymmetry_pass(
    const WireModel& wire, const std::vector<SourceFile>& files);

/// Wire-sourced counts reaching allocation-sized uses unchecked.
[[nodiscard]] std::vector<Violation> run_unchecked_wire_count_pass(
    const WireModel& wire, const std::vector<SourceFile>& files);

/// Computed schemas vs the committed fingerprints at
/// options.schemas_path (no-op when the path is empty). Stale committed
/// entries whose pair no longer exists only warn on stderr, mirroring
/// the findings-baseline gate.
[[nodiscard]] std::vector<Violation> run_schema_drift_pass(
    const WireModel& wire, const std::vector<SourceFile>& files,
    const PassOptions& options);

/// All ten passes over an analyzed corpus, sorted by
/// (file, line, rule, message) — byte-stable across runs.
[[nodiscard]] std::vector<Violation> run_all_passes(
    const std::vector<SourceFile>& files, const SymbolTable& symbols,
    const IncludeGraph& includes, const LockGraph& lock_graph,
    const CallGraph& call_graph, const Summaries& summaries,
    const WireModel& wire, const PassOptions& options);

}  // namespace fr_analysis
