#include "analysis/summaries.h"

#include <algorithm>
#include <set>

#include "analysis/scopes.h"

namespace fr_analysis {

namespace {

bool is_punct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

// The wait family: member calls that park the calling thread on a
// condition. Always treated by name — every wrapper (CondVar,
// ThreadPool::wait, TaskGroup::wait) bottoms out in one of these
// spellings, and their bodies bottom out in std:: calls the corpus
// does not define.
const std::set<std::string>& wait_family() {
  static const std::set<std::string> kNames = {"wait", "wait_for",
                                               "wait_until"};
  return kNames;
}

/// Primitives that may block the calling thread: condition waits,
/// thread joins, and file I/O (a write to a cold NFS page can stall
/// arbitrarily long — exactly what must not happen under a hot lock).
const std::set<std::string>& blocking_names() {
  static const std::set<std::string> kNames = {
      "wait",   "wait_for", "wait_until", "join",     "fopen",  "fclose",
      "fread",  "fwrite",   "fgets",      "fputs",    "fputc",  "fprintf",
      "vfprintf", "fflush", "fscanf",     "fgetc",    "getline", "fseek",
  };
  return kNames;
}

/// Output-producing primitives — where determinism taint becomes
/// externally visible bytes. Matched by name even when the callee
/// resolves (ByteWriter::put's body is a memcpy; the name carries the
/// meaning).
const std::set<std::string>& emit_names() {
  static const std::set<std::string> kNames = {
      "put",   "put_string", "put_bytes", "fwrite",
      "fputs", "fputc",      "fprintf",   "vfprintf", "printf",
  };
  return kNames;
}

/// Member calls that mutate a container/field in place.
const std::set<std::string>& mutator_names() {
  static const std::set<std::string> kNames = {
      "push_back", "pop_back",  "push_front", "pop_front", "push",
      "pop",       "emplace",   "emplace_back", "emplace_front",
      "insert",    "erase",     "clear",      "resize",    "reserve",
      "assign",    "swap",      "store",
  };
  return kNames;
}

const std::set<std::string>& unordered_types() {
  static const std::set<std::string> kNames = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  return kNames;
}

bool is_write_op(const Token& t) {
  if (t.kind != TokKind::kPunct) return false;
  static const std::set<std::string> kOps = {"=",  "+=", "-=", "*=", "/=",
                                             "%=", "|=", "&=", "^=", "<<=",
                                             ">>=", "++", "--"};
  return kOps.count(t.text) > 0;
}

/// True when the declaration at this scope stack is a class member.
bool inside_class(const ScopeTracker& scopes) {
  for (const Scope& scope : scopes.stack()) {
    if (scope.kind == ScopeKind::kClass || !scope.class_context.empty()) {
      return true;
    }
  }
  return false;
}

std::string chain_step(const std::string& callee_id, const std::string& file,
                       std::size_t line) {
  return callee_id + " [" + file + ":" + std::to_string(line) + "]";
}

/// One call site with the lock state it was reached under.
struct CallRecord {
  CallSite call;
  std::vector<ActiveLock> held;  ///< held==true snapshot at the site
  std::string exempt;            ///< lock id a wait(lockvar) arg releases
};

/// Per-definition walk products.
struct DefWalk {
  const FunctionDef* def = nullptr;
  FunctionSummary direct;
  std::vector<CallRecord> calls;
};

std::string acquire_key(const AcquireFact& f) { return f.lock_id; }
std::string block_key(const BlockFact& f) {
  return f.what + "|" + f.file + ":" + std::to_string(f.line);
}
std::string emit_key(const EmitFact& f) {
  return f.what + "|" + f.file + ":" + std::to_string(f.line);
}
std::string write_key(const WriteFact& f) {
  return f.field_id + "|" + f.file + ":" + std::to_string(f.line);
}

/// Shared declaration-resolution order (mirrors SymbolTable::resolve):
/// enclosing class chain, then visible file-scope declarations, then a
/// unique visible member.
template <typename Decl>
std::string resolve_decl(const std::vector<Decl>& decls,
                         const std::string& name, const std::string& use_file,
                         const std::string& use_class_path,
                         const IncludeGraph& includes) {
  const std::set<std::string>& visible = includes.visible_from(use_file);
  const auto is_visible = [&](const Decl& d) {
    return d.file == use_file || visible.count(d.file) > 0;
  };

  std::string chain = use_class_path;
  while (!chain.empty()) {
    for (const Decl& d : decls) {
      if (d.name == name && d.class_path == chain && is_visible(d)) {
        return d.id;
      }
    }
    const std::size_t cut = chain.rfind("::");
    chain = cut == std::string::npos ? "" : chain.substr(0, cut);
  }

  const Decl* found = nullptr;
  for (const Decl& d : decls) {
    if (d.name == name && d.id == d.file + "::" + d.name && is_visible(d)) {
      if (found != nullptr && found->id != d.id) return "";
      found = &d;
    }
  }
  if (found != nullptr) return found->id;

  for (const Decl& d : decls) {
    if (d.name == name && is_visible(d)) {
      if (found != nullptr && found->id != d.id) return "";
      found = &d;
    }
  }
  return found != nullptr ? found->id : "";
}

}  // namespace

const FunctionSummary& Summaries::of(const std::string& id) const {
  static const FunctionSummary kEmpty;
  const auto it = by_id_.find(id);
  return it == by_id_.end() ? kEmpty : it->second;
}

std::string Summaries::resolve_unordered(const std::string& name,
                                         const std::string& use_file,
                                         const std::string& use_class_path,
                                         const IncludeGraph& includes) const {
  return resolve_decl(unordered_decls_, name, use_file, use_class_path,
                      includes);
}

Summaries Summaries::build(const std::vector<SourceFile>& files,
                           const CallGraph& graph, const SymbolTable& symbols,
                           const IncludeGraph& includes) {
  Summaries out;

  // ------------------------------------------------------------------
  // Pre-pass: FR_GUARDED_BY fields and unordered-container variables.
  // ------------------------------------------------------------------
  for (const SourceFile& file : files) {
    ScopeTracker scopes;
    const std::vector<Token>& toks = file.tokens;
    for (std::size_t k = 0; k < toks.size(); ++k) {
      // <field> FR_GUARDED_BY( ... <guard> )
      if (toks[k].kind == TokKind::kIdent && k + 2 < toks.size() &&
          toks[k + 1].kind == TokKind::kIdent &&
          toks[k + 1].text == "FR_GUARDED_BY" && is_punct(toks[k + 2], "(")) {
        int depth = 0;
        std::string guard;
        for (std::size_t m = k + 2; m < toks.size(); ++m) {
          if (is_punct(toks[m], "(")) ++depth;
          if (is_punct(toks[m], ")")) {
            --depth;
            if (depth == 0) break;
          }
          if (toks[m].kind == TokKind::kIdent) guard = toks[m].text;
        }
        const std::string guard_id = guard.empty()
                                         ? ""
                                         : symbols.resolve(guard, file.path,
                                                           scopes.class_path(),
                                                           includes);
        if (!guard_id.empty()) {
          GuardedField field;
          field.name = toks[k].text;
          field.class_path = scopes.class_path();
          field.guard_id = guard_id;
          field.file = file.path;
          field.line = toks[k].line;
          field.id = inside_class(scopes)
                         ? field.class_path + "::" + field.name
                         : field.file + "::" + field.name;
          if (!inside_class(scopes)) field.class_path.clear();
          out.guarded_fields_.push_back(std::move(field));
        }
      }

      // std::unordered_map< ... > <name> [;={,)]
      if (toks[k].kind == TokKind::kIdent &&
          unordered_types().count(toks[k].text) > 0 && k + 1 < toks.size() &&
          is_punct(toks[k + 1], "<")) {
        int depth = 0;
        std::size_t close = 0;
        for (std::size_t m = k + 1; m < toks.size() && m < k + 64; ++m) {
          if (is_punct(toks[m], "<")) ++depth;
          if (is_punct(toks[m], ">")) --depth;
          if (toks[m].kind == TokKind::kPunct && toks[m].text == ">>") {
            depth -= 2;
          }
          if (depth <= 0) {
            close = m;
            break;
          }
        }
        std::size_t n = close + 1;
        while (n < toks.size() &&
               (is_punct(toks[n], "&") || is_punct(toks[n], "*") ||
                is_punct(toks[n], "&&") ||
                (toks[n].kind == TokKind::kIdent &&
                 toks[n].text == "const"))) {
          ++n;
        }
        if (close != 0 && n + 1 < toks.size() &&
            toks[n].kind == TokKind::kIdent &&
            (is_punct(toks[n + 1], ";") || is_punct(toks[n + 1], "=") ||
             is_punct(toks[n + 1], "{") || is_punct(toks[n + 1], ",") ||
             is_punct(toks[n + 1], ")"))) {
          UnorderedDecl decl;
          decl.name = toks[n].text;
          decl.class_path = scopes.class_path();
          decl.file = file.path;
          decl.line = toks[n].line;
          decl.id = inside_class(scopes) ? decl.class_path + "::" + decl.name
                                         : decl.file + "::" + decl.name;
          if (!inside_class(scopes)) decl.class_path.clear();
          out.unordered_decls_.push_back(std::move(decl));
        }
      }

      scopes.advance(toks[k]);
    }
  }

  std::set<std::string> field_names;
  for (const GuardedField& f : out.guarded_fields_) field_names.insert(f.name);

  // ------------------------------------------------------------------
  // Walk every definition body under the shared LockWalker: direct
  // facts + the lock state at each call site.
  // ------------------------------------------------------------------
  std::vector<DefWalk> walks;
  walks.reserve(graph.functions().size());
  for (const FunctionDef& def : graph.functions()) {
    walks.push_back({&def, {}, {}});
  }

  for (const SourceFile& file : files) {
    // Defs of this file in body order, and call sites by token index
    // (inner definitions overwrite outer ones, so a call inside a
    // local-struct method is attributed to the innermost body).
    std::vector<DefWalk*> file_defs;
    std::map<std::size_t, const CallSite*> calls_at;
    for (DefWalk& w : walks) {
      if (w.def->file != file.path) continue;
      file_defs.push_back(&w);
      for (const CallSite& c : w.def->calls) calls_at[c.token_index] = &c;
    }
    std::sort(file_defs.begin(), file_defs.end(),
              [](const DefWalk* a, const DefWalk* b) {
                return a->def->body_begin < b->def->body_begin;
              });

    LockWalker walker(file, symbols, includes);
    std::vector<DefWalk*> stack;
    std::size_t next_def = 0;
    const std::vector<Token>& toks = file.tokens;

    for (std::size_t k = 0; k < toks.size(); ++k) {
      const bool entering =
          next_def < file_defs.size() &&
          file_defs[next_def]->def->body_begin == k;

      DefWalk* current = stack.empty() ? nullptr : stack.back();
      if (current != nullptr) {
        const auto call_it = calls_at.find(k);
        if (call_it != calls_at.end()) {
          const CallSite& call = *call_it->second;
          CallRecord rec;
          rec.call = call;
          for (const ActiveLock& lock : walker.active()) {
            if (lock.held) rec.held.push_back(lock);
          }
          // CondVar protocol: x.wait(lockvar) releases lockvar while
          // parked, so that lock does not count as held across it.
          if (call.member_call && wait_family().count(call.name) > 0 &&
              k + 1 < toks.size() && is_punct(toks[k + 1], "(")) {
            int depth = 0;
            for (std::size_t m = k + 1; m < toks.size() && rec.exempt.empty();
                 ++m) {
              if (is_punct(toks[m], "(")) ++depth;
              if (is_punct(toks[m], ")")) {
                --depth;
                if (depth == 0) break;
              }
              if (toks[m].kind != TokKind::kIdent) continue;
              for (const ActiveLock& lock : walker.active()) {
                if (!lock.var.empty() && lock.var == toks[m].text) {
                  rec.exempt = lock.id;
                  break;
                }
              }
            }
          }

          // Direct facts. Blocking primitives are recorded by name for
          // unresolved callees (and always for the wait family, whose
          // wrappers bottom out in std:: calls); emit primitives are
          // by-name unconditionally.
          const bool wait_call = wait_family().count(call.name) > 0;
          if (blocking_names().count(call.name) > 0 &&
              (call.callee_id.empty() || wait_call)) {
            BlockFact fact;
            fact.what = call.name;
            fact.released = rec.exempt;
            fact.file = file.path;
            fact.line = call.line;
            current->direct.blocks.emplace(block_key(fact), fact);
          }
          if (emit_names().count(call.name) > 0) {
            EmitFact fact;
            fact.what = call.name;
            fact.file = file.path;
            fact.line = call.line;
            current->direct.emits.emplace(emit_key(fact), fact);
          }
          current->calls.push_back(std::move(rec));
        }

        // Direct acquisition fact (the walker records the edge; the
        // summary records reachability).
        if ((toks[k].text == "MutexLock" || toks[k].text == "SharedLock") &&
            toks[k].kind == TokKind::kIdent && k + 2 < toks.size() &&
            toks[k + 1].kind == TokKind::kIdent && is_punct(toks[k + 2], "(")) {
          // Peek the resolution the walker is about to do by reusing
          // its result after advance — cheaper to duplicate the name
          // scan here.
          int depth = 0;
          std::string last_ident;
          for (std::size_t m = k + 2; m < toks.size(); ++m) {
            if (is_punct(toks[m], "(")) {
              ++depth;
              if (depth == 1) continue;
            }
            if (is_punct(toks[m], ")")) {
              --depth;
              if (depth == 0) break;
            }
            if (toks[m].kind == TokKind::kIdent) last_ident = toks[m].text;
          }
          if (!last_ident.empty()) {
            const std::string id =
                symbols.resolve(last_ident, file.path,
                                walker.scopes().class_path(), includes);
            if (!id.empty()) {
              AcquireFact fact;
              fact.lock_id = id;
              fact.file = file.path;
              fact.line = toks[k].line;
              current->direct.acquires.emplace(acquire_key(fact), fact);
            }
          }
        }

        // Guarded-field write outside the guard.
        if (toks[k].kind == TokKind::kIdent &&
            field_names.count(toks[k].text) > 0 && k + 1 < toks.size()) {
          bool written = is_write_op(toks[k + 1]);
          if (!written && k >= 1 &&
              (is_punct(toks[k - 1], "++") || is_punct(toks[k - 1], "--"))) {
            written = true;
          }
          if (!written && k + 3 < toks.size() &&
              (is_punct(toks[k + 1], ".") || is_punct(toks[k + 1], "->")) &&
              toks[k + 2].kind == TokKind::kIdent &&
              mutator_names().count(toks[k + 2].text) > 0 &&
              is_punct(toks[k + 3], "(")) {
            written = true;
          }
          // `==` is its own token, so `= ` here is a real assignment.
          if (written) {
            const std::string field_id = resolve_decl(
                out.guarded_fields_, toks[k].text, file.path,
                walker.scopes().class_path(), includes);
            const GuardedField* field = nullptr;
            for (const GuardedField& f : out.guarded_fields_) {
              if (f.id == field_id) {
                field = &f;
                break;
              }
            }
            if (field != nullptr) {
              bool guard_held = false;
              for (const ActiveLock& lock : walker.active()) {
                if (lock.held && lock.id == field->guard_id) {
                  guard_held = true;
                  break;
                }
              }
              if (!guard_held) {
                WriteFact fact;
                fact.field_id = field->id;
                fact.guard_id = field->guard_id;
                fact.file = file.path;
                fact.line = toks[k].line;
                current->direct.writes.emplace(write_key(fact), fact);
              }
            }
          }
        }
      }

      walker.advance(k, nullptr);

      if (entering) {
        DefWalk* opened = file_defs[next_def];
        ++next_def;
        stack.push_back(opened);
        // FR_REQUIRES on the definition head: the caller holds these
        // for the whole body. Injected after the body brace opened so
        // the pseudo-lock pops with the body scope.
        for (const std::string& arg : opened->def->requires_args) {
          const std::string id = symbols.resolve(
              arg, file.path, opened->def->class_path, includes);
          if (!id.empty()) walker.assume_held(id, opened->def->line);
        }
      }
      while (!stack.empty() && k + 1 >= stack.back()->def->body_end) {
        stack.pop_back();
      }
    }
  }

  // ------------------------------------------------------------------
  // Fixpoint: union facts caller-ward across resolved call sites.
  // ------------------------------------------------------------------
  std::map<std::string, std::vector<const DefWalk*>> defs_by_id;
  for (const DefWalk& w : walks) defs_by_id[w.def->id].push_back(&w);
  for (const DefWalk& w : walks) {
    FunctionSummary& sum = out.by_id_[w.def->id];
    for (const auto& [key, fact] : w.direct.acquires) {
      sum.acquires.emplace(key, fact);
    }
    for (const auto& [key, fact] : w.direct.blocks) {
      sum.blocks.emplace(key, fact);
    }
    for (const auto& [key, fact] : w.direct.emits) sum.emits.emplace(key, fact);
  }

  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& [id, defs] : defs_by_id) {
      FunctionSummary& sum = out.by_id_[id];
      for (const DefWalk* w : defs) {
        for (const CallRecord& rec : w->calls) {
          if (rec.call.callee_id.empty() || rec.call.callee_id == id) continue;
          const auto callee_it = out.by_id_.find(rec.call.callee_id);
          if (callee_it == out.by_id_.end()) continue;
          const FunctionSummary& callee = callee_it->second;
          const std::string step =
              chain_step(rec.call.callee_id, w->def->file, rec.call.line);
          for (const auto& [key, fact] : callee.acquires) {
            if (sum.acquires.count(key) > 0) continue;
            AcquireFact lifted = fact;
            lifted.path.insert(lifted.path.begin(), step);
            sum.acquires.emplace(key, std::move(lifted));
            changed = true;
          }
          for (const auto& [key, fact] : callee.blocks) {
            if (sum.blocks.count(key) > 0) continue;
            BlockFact lifted = fact;
            lifted.path.insert(lifted.path.begin(), step);
            sum.blocks.emplace(key, std::move(lifted));
            changed = true;
          }
          for (const auto& [key, fact] : callee.emits) {
            if (sum.emits.count(key) > 0) continue;
            EmitFact lifted = fact;
            lifted.path.insert(lifted.path.begin(), step);
            sum.emits.emplace(key, std::move(lifted));
            changed = true;
          }
        }
      }
    }
  }

  // Guarded writes: conditional propagation — a call site holding the
  // guard discharges the obligation; anything else lifts it.
  std::map<std::string, std::map<std::string, WriteFact>> pending;
  for (const DefWalk& w : walks) {
    for (const auto& [key, fact] : w.direct.writes) {
      pending[w.def->id].emplace(key, fact);
    }
  }
  changed = true;
  while (changed) {
    changed = false;
    for (auto& [id, defs] : defs_by_id) {
      for (const DefWalk* w : defs) {
        for (const CallRecord& rec : w->calls) {
          if (rec.call.callee_id.empty() || rec.call.callee_id == id) continue;
          const auto callee_it = pending.find(rec.call.callee_id);
          if (callee_it == pending.end()) continue;
          const std::string step =
              chain_step(rec.call.callee_id, w->def->file, rec.call.line);
          for (const auto& [key, fact] : callee_it->second) {
            bool discharged = false;
            for (const ActiveLock& lock : rec.held) {
              if (lock.id == fact.guard_id) {
                discharged = true;
                break;
              }
            }
            if (discharged) continue;
            auto& mine = pending[id];
            if (mine.count(key) > 0) continue;
            WriteFact lifted = fact;
            lifted.path.insert(lifted.path.begin(), step);
            mine.emplace(key, std::move(lifted));
            changed = true;
          }
        }
      }
    }
  }
  for (const auto& [id, facts] : pending) {
    FunctionSummary& sum = out.by_id_[id];
    for (const auto& [key, fact] : facts) sum.writes.emplace(key, fact);
  }

  // ------------------------------------------------------------------
  // Derived products.
  // ------------------------------------------------------------------
  std::set<std::string> has_callers;
  for (const DefWalk& w : walks) {
    for (const CallRecord& rec : w.calls) {
      if (!rec.call.callee_id.empty() && rec.call.callee_id != w.def->id) {
        has_callers.insert(rec.call.callee_id);
      }
    }
  }

  std::set<std::string> edge_seen;
  for (const DefWalk& w : walks) {
    for (const CallRecord& rec : w.calls) {
      if (rec.call.callee_id.empty() || rec.held.empty()) continue;
      const auto callee_it = out.by_id_.find(rec.call.callee_id);
      if (callee_it == out.by_id_.end()) continue;

      // Induced lock-order edges: held here → acquired somewhere down
      // the callee's call chain.
      for (const auto& [key, fact] : callee_it->second.acquires) {
        for (const ActiveLock& held : rec.held) {
          if (held.id == fact.lock_id) continue;
          const std::string dedup = held.id + "|" + fact.lock_id + "|" +
                                    w.def->file + "|" +
                                    std::to_string(held.line) + "|" +
                                    std::to_string(rec.call.line);
          if (!edge_seen.insert(dedup).second) continue;
          std::string via = chain_step(rec.call.callee_id, w.def->file,
                                       rec.call.line);
          for (const std::string& s : fact.path) via += " -> " + s;
          via += " acquires " + fact.lock_id + " at " + fact.file + ":" +
                 std::to_string(fact.line);
          out.induced_edges_.push_back({held.id, fact.lock_id, w.def->file,
                                        held.line, rec.call.line, via});
        }
      }
    }
  }

  // Blocking sites: one per call site at most. A direct (by-name)
  // primitive wins over the callee summary so a site never reports
  // twice.
  for (const DefWalk& w : walks) {
    for (const CallRecord& rec : w.calls) {
      std::vector<ActiveLock> held;
      for (const ActiveLock& lock : rec.held) {
        if (lock.id != rec.exempt) held.push_back(lock);
      }
      if (held.empty()) continue;

      const bool wait_call = wait_family().count(rec.call.name) > 0;
      const bool by_name =
          blocking_names().count(rec.call.name) > 0 &&
          (rec.call.callee_id.empty() || wait_call);
      if (by_name) {
        BlockingSite site;
        site.file = w.def->file;
        site.line = rec.call.line;
        site.function_id = w.def->id;
        site.held_id = held.back().id;
        site.held_line = held.back().line;
        site.what = rec.call.name;
        site.origin_file = w.def->file;
        site.origin_line = rec.call.line;
        out.blocking_sites_.push_back(std::move(site));
        continue;
      }
      if (rec.call.callee_id.empty()) continue;
      const auto callee_it = out.by_id_.find(rec.call.callee_id);
      if (callee_it == out.by_id_.end()) continue;
      for (const auto& [key, fact] : callee_it->second.blocks) {
        // The lock a condition wait releases does not block under
        // itself (instance-blind, like every lock identity here).
        const ActiveLock* pick = nullptr;
        for (const ActiveLock& lock : held) {
          if (lock.id != fact.released) pick = &lock;
        }
        if (pick == nullptr) continue;
        BlockingSite site;
        site.file = w.def->file;
        site.line = rec.call.line;
        site.function_id = w.def->id;
        site.held_id = pick->id;
        site.held_line = pick->line;
        site.what = fact.what;
        site.callee_id = rec.call.callee_id;
        site.origin_file = fact.file;
        site.origin_line = fact.line;
        site.path.push_back(
            chain_step(rec.call.callee_id, w.def->file, rec.call.line));
        site.path.insert(site.path.end(), fact.path.begin(), fact.path.end());
        out.blocking_sites_.push_back(std::move(site));
        break;
      }
    }
  }

  // Undischarged guarded writes surviving to a root function.
  std::set<std::string> reported_writes;
  for (const auto& [id, facts] : pending) {
    if (has_callers.count(id) > 0) continue;
    for (const auto& [key, fact] : facts) {
      if (!reported_writes.insert(key).second) continue;
      UnguardedWrite write;
      write.field_id = fact.field_id;
      write.guard_id = fact.guard_id;
      write.file = fact.file;
      write.line = fact.line;
      write.root_id = id;
      write.path = fact.path;
      out.unguarded_writes_.push_back(std::move(write));
    }
  }

  return out;
}

}  // namespace fr_analysis
