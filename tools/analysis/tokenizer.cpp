#include "analysis/tokenizer.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <fstream>
#include <sstream>
#include <utility>

namespace fr_analysis {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_digit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

/// Longest-match punctuator table; three-char entries first.
const std::array<const char*, 31> kPuncts = {
    "<<=", ">>=", "<=>", "->*", "...",                       // 3 chars
    "::", "->", "++", "--", "+=", "-=", "*=", "/=", "%=",    // 2 chars
    "&=", "|=", "^=", "<<", ">>", "<=", ">=", "==", "!=",
    "&&", "||", "##", ".*",
    nullptr, nullptr, nullptr, nullptr};  // padding (unused)

/// Scans one file's text into tokens + a blank mask (true = replace the
/// character with a space in the scrubbed view).
struct Scanner {
  const std::string& text;
  std::vector<Token> tokens;
  std::vector<bool> blank;
  std::size_t i = 0;
  std::size_t line = 1;

  explicit Scanner(const std::string& t) : text(t), blank(t.size(), false) {}

  [[nodiscard]] char at(std::size_t k) const {
    return k < text.size() ? text[k] : '\0';
  }

  void emit(TokKind kind, std::string tok_text, std::size_t tok_line) {
    tokens.push_back({kind, std::move(tok_text), tok_line});
  }

  void blank_at(std::size_t k) {
    if (k < text.size() && text[k] != '\n') blank[k] = true;
  }

  /// Consumes a normal string/char literal starting at the opening
  /// quote; contents blanked, delimiters kept. Unterminated literals
  /// stop at end of line (robustness over strictness).
  void scan_quoted(char quote) {
    const std::size_t start_line = line;
    std::string content;
    ++i;  // opening quote stays visible
    while (i < text.size() && text[i] != quote && text[i] != '\n') {
      if (text[i] == '\\' && i + 1 < text.size() && text[i + 1] != '\n') {
        content += text[i];
        blank_at(i);
        ++i;
      }
      content += text[i];
      blank_at(i);
      ++i;
    }
    if (i < text.size() && text[i] == quote) ++i;  // closing quote visible
    emit(quote == '"' ? TokKind::kString : TokKind::kChar, std::move(content),
         start_line);
  }

  /// Consumes a raw string literal starting at the opening quote (the
  /// `R`/prefix has been consumed by the caller). Everything between
  /// the quotes — delimiter, parens, content, embedded quotes and
  /// newlines — is blanked, so nothing inside can leak into the
  /// scrubbed view or the token stream.
  void scan_raw_string() {
    const std::size_t start_line = line;
    ++i;  // opening quote stays visible
    std::string delim;
    while (i < text.size() && text[i] != '(' && text[i] != '\n' &&
           delim.size() < 16) {
      delim += text[i];
      blank_at(i);
      ++i;
    }
    if (i < text.size() && text[i] == '(') {
      blank_at(i);
      ++i;
    }
    const std::string closer = ")" + delim + "\"";
    std::string content;
    while (i < text.size()) {
      if (text.compare(i, closer.size(), closer) == 0) {
        // Blank `)delim`, keep the closing quote visible.
        for (std::size_t k = 0; k + 1 < closer.size(); ++k) blank_at(i + k);
        i += closer.size();
        break;
      }
      if (text[i] == '\n') ++line;
      content += text[i];
      blank_at(i);
      ++i;
    }
    emit(TokKind::kString, std::move(content), start_line);
  }

  void run() {
    while (i < text.size()) {
      const char c = text[i];
      if (c == '\n') {
        ++line;
        ++i;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++i;
        continue;
      }
      if (c == '/' && at(i + 1) == '/') {
        while (i < text.size() && text[i] != '\n') {
          blank_at(i);
          ++i;
        }
        continue;
      }
      if (c == '/' && at(i + 1) == '*') {
        blank_at(i);
        blank_at(i + 1);
        i += 2;
        while (i < text.size()) {
          if (text[i] == '*' && at(i + 1) == '/') {
            blank_at(i);
            blank_at(i + 1);
            i += 2;
            break;
          }
          if (text[i] == '\n') ++line;
          blank_at(i);
          ++i;
        }
        continue;
      }
      if (is_ident_start(c)) {
        const std::size_t start = i;
        while (i < text.size() && is_ident_char(text[i])) ++i;
        const std::string ident = text.substr(start, i - start);
        // Encoding prefixes fuse with an adjacent literal: R"..." and
        // u8R"..." are raw strings, u8"..."/L'x' normal literals.
        if (at(i) == '"' &&
            (ident == "R" || ident == "u8R" || ident == "uR" ||
             ident == "UR" || ident == "LR")) {
          scan_raw_string();
          continue;
        }
        if ((at(i) == '"' || at(i) == '\'') &&
            (ident == "u8" || ident == "u" || ident == "U" || ident == "L")) {
          scan_quoted(text[i]);
          continue;
        }
        emit(TokKind::kIdent, ident, line);
        continue;
      }
      if (is_digit(c) || (c == '.' && is_digit(at(i + 1)))) {
        const std::size_t start = i;
        while (i < text.size()) {
          const char d = text[i];
          if (is_ident_char(d) || d == '.' || d == '\'') {
            ++i;
            continue;
          }
          // Exponent signs: 1e+9, 0x1p-3.
          if ((d == '+' || d == '-') && i > start) {
            const char prev = text[i - 1];
            if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
              ++i;
              continue;
            }
          }
          break;
        }
        emit(TokKind::kNumber, text.substr(start, i - start), line);
        continue;
      }
      if (c == '"' || c == '\'') {
        scan_quoted(c);
        continue;
      }
      // Punctuator: longest match first.
      bool matched = false;
      for (const char* p : kPuncts) {
        if (p == nullptr) continue;
        const std::size_t len = std::string(p).size();
        if (text.compare(i, len, p) == 0) {
          emit(TokKind::kPunct, p, line);
          i += len;
          matched = true;
          break;
        }
      }
      if (!matched) {
        emit(TokKind::kPunct, std::string(1, c), line);
        ++i;
      }
    }
  }
};

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (const char c : text) {
    if (c == '\n') {
      lines.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  // A trailing fragment (file without final newline) is still a line;
  // a file ending in '\n' contributes no extra empty line.
  if (!current.empty()) lines.push_back(std::move(current));
  return lines;
}

}  // namespace

SourceFile tokenize_text(std::string path, const std::string& text) {
  Scanner scanner(text);
  scanner.run();

  std::string scrubbed_text = text;
  for (std::size_t k = 0; k < scrubbed_text.size(); ++k) {
    if (scanner.blank[k]) scrubbed_text[k] = ' ';
  }

  SourceFile file;
  file.path = std::move(path);
  file.raw = split_lines(text);
  file.scrubbed = split_lines(scrubbed_text);
  file.scrubbed.resize(file.raw.size());  // keep the views line-aligned
  file.tokens = std::move(scanner.tokens);
  return file;
}

SourceFile tokenize_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return tokenize_text(path, buffer.str());
}

std::vector<std::string> scrub_lines(const std::vector<std::string>& raw) {
  std::string text;
  for (const std::string& line : raw) {
    text += line;
    text += '\n';
  }
  SourceFile file = tokenize_text("", text);
  file.scrubbed.resize(raw.size());
  return std::move(file.scrubbed);
}

}  // namespace fr_analysis
