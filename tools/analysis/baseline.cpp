#include "analysis/baseline.h"

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

namespace fr_analysis {

namespace {

/// Extracts the string value of `"key": "..."` from one line of the
/// baseline file, undoing the json_escape encoding. Empty when absent.
std::string extract_string(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  std::size_t at = line.find(needle);
  if (at == std::string::npos) return "";
  at += needle.size();
  while (at < line.size() && (line[at] == ' ' || line[at] == '\t')) ++at;
  if (at >= line.size() || line[at] != '"') return "";
  ++at;
  std::string out;
  while (at < line.size()) {
    const char c = line[at];
    if (c == '"') break;
    if (c == '\\' && at + 1 < line.size()) {
      const char esc = line[at + 1];
      if (esc == 'n') {
        out += '\n';
      } else if (esc == 't') {
        out += '\t';
      } else if (esc == 'u' && at + 5 < line.size()) {
        // json_escape only emits \u00XX for control bytes.
        out += static_cast<char>(
            std::stoi(line.substr(at + 2, 4), nullptr, 16));
        at += 4;
      } else {
        out += esc;  // \" and \\ (and anything else, literally)
      }
      at += 2;
      continue;
    }
    out += c;
    ++at;
  }
  return out;
}

}  // namespace

bool load_baseline(const std::string& path, std::vector<BaselineEntry>* out) {
  out->clear();
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    std::string fingerprint = extract_string(line, "fingerprint");
    if (fingerprint.empty()) continue;
    out->push_back({std::move(fingerprint), extract_string(line, "rule"),
                    extract_string(line, "file")});
  }
  return true;
}

BaselineDiff diff_baseline(const std::vector<Violation>& findings,
                           const std::vector<BaselineEntry>& baseline) {
  BaselineDiff diff;
  std::map<std::string, std::size_t> budget;
  for (const BaselineEntry& entry : baseline) ++budget[entry.fingerprint];

  for (const Violation& v : findings) {
    const auto it = budget.find(v.fingerprint);
    if (it != budget.end() && it->second > 0) {
      --it->second;
      continue;
    }
    diff.fresh.push_back(v);
  }
  // Stale = baseline entries with unspent budget, in file order.
  std::map<std::string, std::size_t> leftover;
  for (auto& [fingerprint, count] : budget) leftover[fingerprint] = count;
  for (const BaselineEntry& entry : baseline) {
    auto& count = leftover[entry.fingerprint];
    if (count == 0) continue;
    --count;
    diff.stale.push_back(entry);
  }
  return diff;
}

void write_baseline(std::FILE* out, const std::vector<Violation>& findings) {
  std::fprintf(out, "{\"findings\": [");
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Violation& v = findings[i];
    std::fprintf(out,
                 "%s\n  {\"fingerprint\": \"%s\", \"rule\": \"%s\", "
                 "\"file\": \"%s\", \"line\": %zu, \"message\": \"%s\"}",
                 i == 0 ? "" : ",", json_escape(v.fingerprint).c_str(),
                 json_escape(v.rule).c_str(), json_escape(v.file).c_str(),
                 v.line, json_escape(v.message).c_str());
  }
  std::fprintf(out, "\n]}\n");
}

}  // namespace fr_analysis
