// Brace/scope tracker over the token stream (DESIGN.md §11).
//
// Feeds on tokens in order and maintains the stack of open scopes:
// namespaces, class/struct bodies, and plain blocks. Out-of-line member
// definitions (`void ThreadPool::worker_loop() { ... }`) are recognized
// from the statement head, so symbol resolution inside a .cpp method
// body still knows which class an unqualified `mutex_` belongs to.
//
// This is a token-level approximation, not a C++ parser: templates,
// attribute soup, and macro tricks degrade it gracefully (a scope it
// cannot classify is just a block). The passes that build on it are
// heuristic lints, and every finding carries the file:line evidence to
// judge it by.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/token.h"

namespace fr_analysis {

enum class ScopeKind {
  kNamespace,
  kClass,  ///< class/struct body
  kBlock,  ///< function body, lambda, control flow, initializer, ...
};

struct Scope {
  ScopeKind kind = ScopeKind::kBlock;
  std::string name;           ///< namespace or class name ("" if anonymous)
  std::string class_context;  ///< for kBlock: class qualifier of an
                              ///< out-of-line member definition, else ""
};

class ScopeTracker {
 public:
  /// Processes one token. Call for every token of the file in order;
  /// query state *before* advancing past the token of interest (the
  /// scope of a token is the stack as of its first character).
  void advance(const Token& token);

  [[nodiscard]] const std::vector<Scope>& stack() const noexcept {
    return stack_;
  }

  /// Depth in braces (number of open scopes).
  [[nodiscard]] std::size_t depth() const noexcept { return stack_.size(); }

  /// Qualified class path enclosing the current position:
  /// namespace/class scope names joined with "::", plus the class
  /// context of an out-of-line member body. Empty at file scope.
  [[nodiscard]] std::string class_path() const;

  /// Like class_path() but namespaces only (for file-scope symbols).
  [[nodiscard]] std::string namespace_path() const;

 private:
  void open_scope();

  std::vector<Scope> stack_;
  std::vector<Token> head_;  ///< tokens since the last ; { or }
};

}  // namespace fr_analysis
