// Wire-schema extraction and serdes symmetry (DESIGN.md §16).
//
// Every wire format in this repo is a hand-written sequence of
// ByteWriter::put / ByteReader::get calls; nothing but discipline keeps
// a writer and its reader in byte-level agreement. This module
// reconstructs the schema both sides imply, mechanically:
//
//   * per function, the put<T>/put_string/put_bytes (writer) and
//     get<T>/get_string/get_bytes (reader) calls made on a recognized
//     ByteWriter/ByteReader variable become an ordered field list;
//   * a for/while loop whose body carries wire ops becomes a repeated
//     group (the count field stays a plain scalar immediately before
//     it, exactly as encoded);
//   * an if whose body carries wire ops becomes an optional segment
//     (version gates, presence bytes); gets in the condition itself are
//     plain fields (magic/version checks consume bytes either way);
//   * a call that passes the writer/reader variable through
//     (`put_fid(w, fid)`, `LdiskfsImage::deserialize(r)`) is resolved
//     through the interprocedural call graph and the callee's fields
//     are spliced in place, so nested encoders — a partial graph inside
//     a checkpoint — inline into root schemas.
//
// Writers and readers are then paired by class (X::serialize ↔
// X::deserialize) and naming convention (put_X↔get_X, serialize_X↔
// deserialize_X, write_X↔read_X, save_X↔load_X), same-file helpers
// first. The passes built on top (passes.h):
//
//   serdes-asymmetry      paired field sequences disagree in kind,
//                         scalar width, or arity — reported with
//                         file:line witnesses on both sides;
//   unchecked-wire-count  a count read from the wire (ByteReader::get
//                         or a raw fread) reaches resize()/reserve()/a
//                         loop bound without bounded_count or an
//                         explicit comparison first;
//   schema-drift          computed schemas are diffed against the
//                         committed fingerprints in
//                         tools/analysis/wire_schemas.json — a schema
//                         change without a format-version-constant bump
//                         fails the gate.
#pragma once

#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/call_graph.h"
#include "analysis/include_graph.h"
#include "analysis/token.h"

namespace fr_analysis {

enum class WireKind {
  kScalar,    ///< put<T>/get<T>; `type` is the canonical width code
  kString,    ///< put_string/get_string (u32 length prefix + bytes)
  kBytes,     ///< put_bytes/get_bytes (u64 length prefix + blob)
  kGroup,     ///< loop body repeated per a preceding count field
  kOptional,  ///< if-gated segment (presence byte, version gate)
  kCall,      ///< nested encoder call, spliced away by expansion
};

/// One field (or nested segment) of a reconstructed wire schema.
struct WireField {
  WireKind kind = WireKind::kScalar;
  /// Canonical scalar code (u8..u64, i8..i64, f32, f64); "?" when the
  /// width could not be inferred — "?" compares equal to anything.
  std::string type;
  std::string label;   ///< best-effort source name, for messages only
  std::string origin;  ///< id of the function whose body holds the op
  std::string file;
  std::size_t line = 0;
  /// kCall placeholders (before expansion).
  std::string call_name;
  std::string call_qualifier;
  bool member_call = false;
  bool call_writes = false;  ///< placeholder passes a writer (else reader)
  std::vector<WireField> children;  ///< kGroup/kOptional bodies
};

/// One function containing wire ops (directly or via pass-through
/// calls).
struct WireFn {
  std::string id;
  std::string name;
  std::string class_path;
  bool tu_local = false;
  std::string file;
  std::size_t line = 0;
  bool writes = false;  ///< any put op / writer pass-through
  bool reads = false;   ///< any get op / reader pass-through
  bool has_writer_param = false;
  bool has_reader_param = false;
  std::vector<WireField> raw;       ///< with kCall placeholders
  std::vector<WireField> expanded;  ///< placeholders spliced
};

/// A count that flowed from the wire (get<T>/fread) into an
/// allocation-sized use. `checked` uses are filtered out before this
/// struct is built — every instance is a finding candidate.
struct WireCountUse {
  std::string fn_id;
  std::string var;
  std::string source;  ///< "get" | "fread"
  std::string use;     ///< "resize" | "reserve" | "loop"
  std::string file;
  std::size_t line = 0;      ///< use site
  std::size_t def_line = 0;  ///< where the count was read
};

/// A matched writer/reader root. Indices into WireModel::functions().
struct WirePair {
  std::size_t writer = 0;
  std::size_t reader = 0;
};

/// First divergence between a pair's field sequences, with both
/// witnesses. `suppressed` marks a divergence that belongs to a nested
/// helper pair compared in its own right (reported there, not here).
struct WireMismatch {
  bool mismatch = false;
  bool suppressed = false;
  std::string detail;        ///< human sentence with both file:line sites
  std::string writer_file;
  std::size_t writer_line = 0;
  std::string reader_file;
  std::size_t reader_line = 0;
};

/// One committed schema fingerprint (tools/analysis/wire_schemas.json).
struct SchemaEntry {
  std::string format;         ///< pair key: the writer's function id
  std::string writer_id;
  std::string reader_id;
  std::string file;           ///< writer's defining file
  /// Every file-scope k*Version constant of the writer's TU, as
  /// "name=value" joined by space; "" when the TU declares none.
  std::string version;
  std::string writer_schema;  ///< canonical signature, see signature()
  std::string reader_schema;
};

class WireModel {
 public:
  [[nodiscard]] static WireModel build(const std::vector<SourceFile>& files,
                                       const CallGraph& graph,
                                       const IncludeGraph& includes);

  [[nodiscard]] const std::vector<WireFn>& functions() const noexcept {
    return fns_;
  }
  [[nodiscard]] const std::vector<WirePair>& pairs() const noexcept {
    return pairs_;
  }
  [[nodiscard]] const std::vector<WireCountUse>& unchecked_counts()
      const noexcept {
    return unchecked_;
  }

  /// Canonical flat signature of a field sequence: scalars by width
  /// code, str/bytes by tag, groups/optionals recursively. Stable
  /// across line edits — this is what wire_schemas.json commits.
  [[nodiscard]] static std::string signature(
      const std::vector<WireField>& fields);

  /// Schema fingerprints computed from this corpus, sorted by format.
  [[nodiscard]] std::vector<SchemaEntry> entries() const;

  /// Structural comparison of a pair's expanded sequences; stops at the
  /// first divergence. An optional segment on one side may absorb the
  /// same fields spelled unconditionally on the other (FRCP v1/v2
  /// version gates read old files whose writer always emits).
  [[nodiscard]] WireMismatch compare_pair(const WirePair& pair) const;

 private:
  std::vector<WireFn> fns_;
  std::vector<WirePair> pairs_;
  std::vector<WireCountUse> unchecked_;
  std::map<std::string, std::string> version_consts_;  // file → "k...=v ..."
  std::set<std::pair<std::string, std::string>> pair_ids_;  // (wid, rid)
};

/// Parses a wire_schemas.json previously produced by write_schemas.
/// Returns false (out untouched) when the file cannot be read.
[[nodiscard]] bool load_schemas(const std::string& path,
                                std::vector<SchemaEntry>* out);

/// Writes the entries as a stable, reviewable JSON document, one
/// schema object per line.
void write_schemas(std::FILE* out, const std::vector<SchemaEntry>& entries);

}  // namespace fr_analysis
