// Mutex symbol table (DESIGN.md §11).
//
// Collects every Mutex/SharedMutex (and raw std::mutex/shared_mutex)
// declaration in the corpus together with the thread-safety
// annotations that reference it (FR_GUARDED_BY / FR_PT_GUARDED_BY /
// FR_REQUIRES / FR_ACQUIRE / ...). The lock-order pass resolves
// MutexLock acquisition expressions against this table, and the
// annotation-coverage gate (`fr_analyze --coverage`) reports
// annotated-vs-bare counts per directory and detects mutexes that lost
// their last FR_GUARDED_BY relative to the committed baseline.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/include_graph.h"
#include "analysis/token.h"

namespace fr_analysis {

struct MutexDecl {
  /// Stable cross-file identity: "<namespace::class>::<name>" for
  /// members, "<decl-file>::<name>" for file-scope mutexes (so every TU
  /// including the same header agrees on the identity).
  std::string id;
  std::string name;        ///< declared identifier
  std::string type;        ///< "Mutex", "SharedMutex", "std::mutex", ...
  bool wrapper = false;    ///< annotated wrapper type (Mutex/SharedMutex)
  std::string class_path;  ///< enclosing namespace/class path ("" = file)
  std::string file;
  std::size_t line = 0;
  std::size_t guarded_refs = 0;  ///< FR_GUARDED_BY/FR_PT_GUARDED_BY naming it
  std::size_t other_refs = 0;    ///< FR_REQUIRES/FR_ACQUIRE/... naming it
};

class SymbolTable {
 public:
  [[nodiscard]] static SymbolTable build(const std::vector<SourceFile>& files,
                                         const IncludeGraph& includes);

  [[nodiscard]] const std::vector<MutexDecl>& mutexes() const noexcept {
    return mutexes_;
  }

  /// Resolves a lock name used at `use_file` inside `use_class_path` to
  /// a declaration identity. Lookup order mirrors the language: the
  /// enclosing class chain first, then file-scope declarations visible
  /// to the TU, then a unique TU-visible member match. Returns "" when
  /// nothing (or nothing unambiguous) matches.
  [[nodiscard]] std::string resolve(const std::string& name,
                                    const std::string& use_file,
                                    const std::string& use_class_path,
                                    const IncludeGraph& includes) const;

 private:
  std::vector<MutexDecl> mutexes_;
};

}  // namespace fr_analysis
