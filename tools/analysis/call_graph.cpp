#include "analysis/call_graph.h"

#include <algorithm>
#include <set>

#include "analysis/scopes.h"

namespace fr_analysis {

namespace {

bool is_punct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

const std::set<std::string>& control_keywords() {
  static const std::set<std::string> kWords = {
      "if",     "for",    "while",   "switch", "catch",  "return",
      "sizeof", "alignof", "decltype", "new",   "delete", "throw",
      "static_assert", "assert",
  };
  return kWords;
}

const std::set<std::string>& cast_keywords() {
  static const std::set<std::string> kWords = {
      "static_cast", "dynamic_cast", "reinterpret_cast", "const_cast",
  };
  return kWords;
}

/// Finds the token index just past the matching closer for the opener
/// at `open`. Returns toks.size() when unbalanced.
std::size_t skip_balanced(const std::vector<Token>& toks, std::size_t open,
                          const char* open_text, const char* close_text) {
  int depth = 0;
  for (std::size_t m = open; m < toks.size(); ++m) {
    if (is_punct(toks[m], open_text)) ++depth;
    if (is_punct(toks[m], close_text)) {
      --depth;
      if (depth == 0) return m + 1;
    }
  }
  return toks.size();
}

/// Classifies a statement head as a function definition and extracts
/// the function name. The head must contain a top-level parameter list
/// `name ( ... )` with an identifier name that is not a control
/// keyword, must not be an assignment (lambdas, brace-initialized
/// variables), and must not open a namespace/class/enum body.
bool head_is_function(const std::vector<Token>& head, std::string& name) {
  // A real definition head closes its parameter list before the body
  // brace; an open paren at the brace means the '{' starts an inline
  // lambda argument (`pool.submit([&] {`), not a function body.
  int balance = 0;
  for (const Token& t : head) {
    if (is_punct(t, "(")) ++balance;
    if (is_punct(t, ")")) --balance;
  }
  if (balance != 0) return false;

  int paren = -1;
  for (std::size_t k = 0; k < head.size(); ++k) {
    const Token& t = head[k];
    if (t.kind == TokKind::kIdent &&
        (t.text == "namespace" || t.text == "class" || t.text == "struct" ||
         t.text == "enum" || t.text == "union")) {
      // `struct X {` opens a type body, and `struct X f() {` does not
      // occur in this codebase's style; returning a class type by
      // elaborated specifier would be misread, which is acceptable.
      return false;
    }
    if (is_punct(t, "=")) return false;  // initializer (incl. lambdas)
    if (is_punct(t, "(")) {
      paren = static_cast<int>(k);
      break;
    }
  }
  if (paren <= 0) return false;
  const Token& fn = head[static_cast<std::size_t>(paren - 1)];
  if (fn.kind != TokKind::kIdent) return false;  // operator(), casts, ...
  if (control_keywords().count(fn.text) > 0) return false;
  name = fn.text;
  // Destructor: `~Name` — keep the name, identity-wise the dtor shares
  // the class's call namespace rarely matters (nobody calls ~X()).
  return true;
}

/// Trailing-identifier arguments of FR_REQUIRES / FR_REQUIRES_SHARED
/// spelled in a definition head (annotations sit between the parameter
/// list and the body brace, so the head contains them whole).
std::vector<std::string> requires_args_of(const std::vector<Token>& head) {
  std::vector<std::string> out;
  for (std::size_t k = 0; k + 1 < head.size(); ++k) {
    if (head[k].kind != TokKind::kIdent ||
        (head[k].text != "FR_REQUIRES" &&
         head[k].text != "FR_REQUIRES_SHARED") ||
        !is_punct(head[k + 1], "(")) {
      continue;
    }
    int depth = 0;
    std::string last_ident;
    for (std::size_t m = k + 1; m < head.size(); ++m) {
      if (is_punct(head[m], "(")) ++depth;
      if (is_punct(head[m], ")")) {
        --depth;
        if (depth == 0) break;
      }
      if (head[m].kind == TokKind::kIdent) last_ident = head[m].text;
    }
    if (!last_ident.empty()) out.push_back(std::move(last_ident));
  }
  return out;
}

/// True when any enclosing namespace scope is anonymous.
bool in_anonymous_namespace(const ScopeTracker& scopes) {
  for (const Scope& scope : scopes.stack()) {
    if (scope.kind == ScopeKind::kNamespace && scope.name.empty()) return true;
  }
  return false;
}

/// Extracts call sites from the body range (body_begin, body_end) of
/// `file` into `def.calls`.
void extract_calls(const SourceFile& file, FunctionDef& def) {
  const std::vector<Token>& toks = file.tokens;
  for (std::size_t k = def.body_begin + 1; k + 1 < def.body_end; ++k) {
    const Token& t = toks[k];
    if (t.kind != TokKind::kIdent || !is_punct(toks[k + 1], "(")) continue;
    if (control_keywords().count(t.text) > 0) continue;
    if (cast_keywords().count(t.text) > 0) continue;
    CallSite call;
    call.name = t.text;
    call.token_index = k;
    call.line = t.line;
    // Walk any qualifier chain backwards: `A::B::name(` → "A::B".
    std::size_t q = k;
    while (q >= 2 && is_punct(toks[q - 1], "::") &&
           toks[q - 2].kind == TokKind::kIdent) {
      call.qualifier = call.qualifier.empty()
                           ? toks[q - 2].text
                           : toks[q - 2].text + "::" + call.qualifier;
      q -= 2;
    }
    if (q >= 1 && (is_punct(toks[q - 1], ".") || is_punct(toks[q - 1], "->"))) {
      call.member_call = true;
    }
    def.calls.push_back(std::move(call));
  }
}

}  // namespace

CallGraph CallGraph::build(const std::vector<SourceFile>& files,
                           const IncludeGraph& includes) {
  CallGraph graph;

  for (const SourceFile& file : files) {
    ScopeTracker scopes;
    const std::vector<Token>& toks = file.tokens;
    std::vector<Token> head;
    for (std::size_t k = 0; k < toks.size(); ++k) {
      const Token& t = toks[k];
      if (is_punct(t, "{")) {
        std::string name;
        if (head_is_function(head, name)) {
          FunctionDef def;
          def.name = name;
          // member_definition_context is folded into class_path() once
          // the block scope opens; compute the path the body will see
          // by advancing a *copy* of the tracker past this brace.
          ScopeTracker body_scopes = scopes;
          body_scopes.advance(t);
          def.class_path = body_scopes.class_path();
          def.tu_local = in_anonymous_namespace(scopes);
          def.file = file.path;
          def.line = t.line;
          def.body_begin = k;
          def.body_end = skip_balanced(toks, k, "{", "}");
          def.id = def.class_path.empty() ? def.name
                                          : def.class_path + "::" + def.name;
          if (def.tu_local) def.id = def.file + "::" + def.id;
          def.requires_args = requires_args_of(head);
          extract_calls(file, def);
          graph.functions_.push_back(std::move(def));
        }
        head.clear();
      } else if (is_punct(t, "}") || is_punct(t, ";")) {
        head.clear();
      } else {
        head.push_back(t);
        if (head.size() > 256) head.erase(head.begin());
      }
      scopes.advance(t);
    }
  }

  for (std::size_t i = 0; i < graph.functions_.size(); ++i) {
    const FunctionDef& def = graph.functions_[i];
    graph.by_id_[def.id].push_back(i);
    graph.by_name_[def.name].push_back(i);
    graph.by_file_[def.file].push_back(i);
  }

  // Resolve every call site now that all definitions are indexed.
  for (FunctionDef& def : graph.functions_) {
    for (CallSite& call : def.calls) {
      call.callee_id = graph.resolve(call.name, call.qualifier,
                                     call.member_call, def.file,
                                     def.class_path, includes);
    }
  }
  return graph;
}

std::vector<const FunctionDef*> CallGraph::defs_of(
    const std::string& id) const {
  std::vector<const FunctionDef*> out;
  const auto it = by_id_.find(id);
  if (it == by_id_.end()) return out;
  for (const std::size_t i : it->second) out.push_back(&functions_[i]);
  return out;
}

std::string CallGraph::resolve(const std::string& name,
                               const std::string& qualifier, bool member_call,
                               const std::string& use_file,
                               const std::string& use_class_path,
                               const IncludeGraph& includes) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) return "";
  const std::set<std::string>& visible = includes.visible_from(use_file);
  const auto is_visible = [&](const FunctionDef& d) {
    if (d.tu_local) return d.file == use_file;
    return d.file == use_file || visible.count(d.file) > 0;
  };

  // Qualified call: match ids ending in "qualifier::name", visible
  // first, then a unique corpus-wide candidate.
  if (!qualifier.empty()) {
    const std::string suffix = qualifier + "::" + name;
    const FunctionDef* found = nullptr;
    for (int pass = 0; pass < 2; ++pass) {
      for (const std::size_t i : it->second) {
        const FunctionDef& d = functions_[i];
        if (pass == 0 && !is_visible(d)) continue;
        if (d.id.size() < suffix.size() ||
            d.id.compare(d.id.size() - suffix.size(), suffix.size(),
                         suffix) != 0) {
          continue;
        }
        if (found != nullptr && found->id != d.id) return "";  // ambiguous
        found = &d;
      }
      if (found != nullptr) return found->id;
    }
    return "";
  }

  // 1. Enclosing class chain, innermost first (shadowing).
  if (!member_call) {
    std::string chain = use_class_path;
    while (!chain.empty()) {
      for (const std::size_t i : it->second) {
        const FunctionDef& d = functions_[i];
        if (d.class_path == chain && is_visible(d)) return d.id;
      }
      const std::size_t cut = chain.rfind("::");
      chain = cut == std::string::npos ? "" : chain.substr(0, cut);
    }
  }

  // 2. Visible candidates; member calls restrict to methods (a class
  // path deeper than a pure namespace chain — heuristically, any
  // definition whose class_path is non-empty).
  const FunctionDef* found = nullptr;
  for (const std::size_t i : it->second) {
    const FunctionDef& d = functions_[i];
    if (member_call && d.class_path.empty()) continue;
    if (!is_visible(d)) continue;
    if (found != nullptr && found->id != d.id) return "";  // ambiguous
    found = &d;
  }
  if (found != nullptr) return found->id;

  // 3. Unique corpus-wide candidate (definition in a .cpp the caller
  // only sees a declaration of). TU-local definitions never match here.
  for (const std::size_t i : it->second) {
    const FunctionDef& d = functions_[i];
    if (d.tu_local) continue;
    if (member_call && d.class_path.empty()) continue;
    if (found != nullptr && found->id != d.id) return "";  // ambiguous
    found = &d;
  }
  return found != nullptr ? found->id : "";
}

const FunctionDef* CallGraph::enclosing(const std::string& file,
                                        std::size_t k) const {
  const auto it = by_file_.find(file);
  if (it == by_file_.end()) return nullptr;
  const FunctionDef* best = nullptr;
  for (const std::size_t i : it->second) {
    const FunctionDef& d = functions_[i];
    if (d.body_begin < k && k < d.body_end) {
      if (best == nullptr || d.body_begin > best->body_begin) best = &d;
    }
  }
  return best;
}

}  // namespace fr_analysis
