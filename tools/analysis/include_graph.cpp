#include "analysis/include_graph.h"

#include <functional>

namespace fr_analysis {

namespace {

/// True when `path` ends with `suffix` at a path-component boundary
/// ("src/common/mutex.h" matches "common/mutex.h" but not "on/mutex.h").
bool suffix_component_match(const std::string& path, const std::string& suffix) {
  if (path.size() < suffix.size()) return false;
  if (path.compare(path.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  return path.size() == suffix.size() ||
         path[path.size() - suffix.size() - 1] == '/';
}

}  // namespace

IncludeGraph IncludeGraph::build(const std::vector<SourceFile>& files) {
  IncludeGraph graph;
  for (const SourceFile& file : files) {
    std::vector<std::string>& direct = graph.direct_[file.path];
    const std::vector<Token>& toks = file.tokens;
    for (std::size_t k = 0; k + 2 < toks.size(); ++k) {
      if (toks[k].kind == TokKind::kPunct && toks[k].text == "#" &&
          toks[k + 1].kind == TokKind::kIdent &&
          toks[k + 1].text == "include" &&
          toks[k + 2].kind == TokKind::kString) {
        const std::string& spec = toks[k + 2].text;
        // Resolve within the corpus by suffix; ambiguity (two files
        // matching the same spec) picks the shortest path, which in
        // this repo layout is the unique src/-rooted one.
        const SourceFile* best = nullptr;
        for (const SourceFile& candidate : files) {
          if (&candidate == &file) continue;
          if (suffix_component_match(candidate.path, spec)) {
            if (best == nullptr || candidate.path.size() < best->path.size()) {
              best = &candidate;
            }
          }
        }
        if (best != nullptr) {
          direct.push_back(best->path);
          ++graph.edges_;
        }
      }
    }
  }

  // Transitive closure per file (corpora are a few hundred files; a
  // simple DFS per root is fine and keeps the code obvious).
  for (const SourceFile& file : files) {
    std::set<std::string>& visible = graph.visible_[file.path];
    std::vector<std::string> work{file.path};
    while (!work.empty()) {
      const std::string current = work.back();
      work.pop_back();
      if (!visible.insert(current).second) continue;
      const auto it = graph.direct_.find(current);
      if (it == graph.direct_.end()) continue;
      for (const std::string& next : it->second) work.push_back(next);
    }
  }
  return graph;
}

const std::vector<std::string>& IncludeGraph::includes_of(
    const std::string& path) const {
  static const std::vector<std::string> kEmpty;
  const auto it = direct_.find(path);
  return it == direct_.end() ? kEmpty : it->second;
}

const std::set<std::string>& IncludeGraph::visible_from(
    const std::string& path) const {
  static const std::set<std::string> kEmpty;
  const auto it = visible_.find(path);
  return it == visible_.end() ? kEmpty : it->second;
}

}  // namespace fr_analysis
