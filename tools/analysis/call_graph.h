// Cross-TU call graph (DESIGN.md §13).
//
// Recognizes function definitions from statement heads (the same
// token-level discipline ScopeTracker uses for out-of-line members) and
// extracts every call site inside each body. Call names are resolved to
// definition identities the way the compiler would see them, tracked
// through the quoted-include graph:
//
//   1. methods of the enclosing class chain, innermost first (a member
//      `helper()` shadows a free `helper()`);
//   2. free functions whose defining file is visible from the calling
//      TU;
//   3. a unique corpus-wide candidate — this is what lets a call in
//      checker.cpp resolve to a definition living in aggregator.cpp
//      that only a header *declares* (declarations are not tracked at
//      token level, so unique-name fallback stands in for them).
//
// Overloads are instance-blind: every overload of `Class::method`
// shares one identity, the standard conservative approximation for a
// token-level analyzer. Functions defined inside an anonymous
// namespace are TU-local — their identity is prefixed with the file so
// two .cpp files each defining a static `is_punct` never merge.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "analysis/include_graph.h"
#include "analysis/token.h"

namespace fr_analysis {

/// One call site inside a function body.
struct CallSite {
  std::string name;        ///< called identifier as spelled (last segment)
  std::string qualifier;   ///< explicit `A::B` qualifier, "" if none
  bool member_call = false;  ///< `obj.name(...)` / `obj->name(...)`
  std::string callee_id;   ///< resolved definition identity, "" = external
  std::size_t token_index = 0;  ///< index of `name` in the file's tokens
  std::size_t line = 0;
};

/// One function definition (one body; overloads repeat the same id).
struct FunctionDef {
  std::string id;          ///< qualified identity (see header comment)
  std::string name;        ///< unqualified name
  std::string class_path;  ///< enclosing namespace/class path at the body
  bool tu_local = false;   ///< anonymous-namespace definition
  std::string file;
  std::size_t line = 0;        ///< line of the body-opening brace
  std::size_t body_begin = 0;  ///< token index of '{'
  std::size_t body_end = 0;    ///< one past the matching '}'
  std::vector<CallSite> calls;
  /// Trailing-identifier arguments of FR_REQUIRES/FR_REQUIRES_SHARED
  /// annotations spelled on this definition's head — the summaries
  /// layer treats those locks as held for the whole body.
  std::vector<std::string> requires_args;
};

class CallGraph {
 public:
  [[nodiscard]] static CallGraph build(const std::vector<SourceFile>& files,
                                       const IncludeGraph& includes);

  [[nodiscard]] const std::vector<FunctionDef>& functions() const noexcept {
    return functions_;
  }

  /// All definitions sharing `id` (overloads / re-definitions across
  /// the corpus). Empty when unknown.
  [[nodiscard]] std::vector<const FunctionDef*> defs_of(
      const std::string& id) const;

  /// Resolves a call by `name` made from `use_file` inside
  /// `use_class_path`; see the header comment for the lookup order.
  /// `member_call` restricts candidates to methods; a non-empty
  /// `qualifier` restricts to ids ending in "qualifier::name".
  [[nodiscard]] std::string resolve(const std::string& name,
                                    const std::string& qualifier,
                                    bool member_call,
                                    const std::string& use_file,
                                    const std::string& use_class_path,
                                    const IncludeGraph& includes) const;

  /// The innermost definition whose body contains token `k` of `file`
  /// (bodies never interleave, so "innermost" is just the match with
  /// the largest body_begin). nullptr at file scope.
  [[nodiscard]] const FunctionDef* enclosing(const std::string& file,
                                             std::size_t k) const;

 private:
  std::vector<FunctionDef> functions_;
  std::map<std::string, std::vector<std::size_t>> by_id_;    // id → indices
  std::map<std::string, std::vector<std::size_t>> by_name_;  // name → indices
  std::map<std::string, std::vector<std::size_t>> by_file_;  // file → indices
};

}  // namespace fr_analysis
