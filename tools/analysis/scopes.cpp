#include "analysis/scopes.h"

#include <algorithm>

namespace fr_analysis {

namespace {

bool is_punct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

bool is_ident(const Token& t, const char* text) {
  return t.kind == TokKind::kIdent && t.text == text;
}

/// Extracts the class qualifier of an out-of-line member definition
/// from a statement head, e.g. `void ThreadPool::worker_loop ( ... )`
/// → "ThreadPool" and `Csr Csr::A::b(...)` → "Csr::A". Returns "" when
/// the head is not shaped like a qualified function definition.
std::string member_definition_context(const std::vector<Token>& head) {
  // Find the first top-level '(' — the parameter list. Angle brackets
  // are not tracked (template params rarely contain parens; when they
  // do the head just fails to classify, which is safe).
  std::size_t paren = head.size();
  for (std::size_t k = 0; k < head.size(); ++k) {
    if (is_punct(head[k], "(")) {
      paren = k;
      break;
    }
  }
  if (paren == head.size() || paren == 0) return "";
  // Walk back over the function name: ident or ~ident (destructor) or
  // an operator spelling; then collect the `ident ::` qualifier chain.
  std::size_t k = paren - 1;
  if (head[k].kind != TokKind::kIdent) return "";
  if (k == 0) return "";
  if (is_punct(head[k - 1], "~")) {
    if (k < 2) return "";
    k -= 2;
  } else {
    k -= 1;
  }
  std::string context;
  while (k >= 1 && is_punct(head[k], "::") &&
         head[k - 1].kind == TokKind::kIdent) {
    context = context.empty() ? head[k - 1].text
                              : head[k - 1].text + "::" + context;
    if (k < 2) break;
    k -= 2;
  }
  return context;
}

}  // namespace

void ScopeTracker::open_scope() {
  Scope scope;
  // Classify from the statement head. `namespace`/`class`/`struct`
  // whose body this brace opens; everything else is a block.
  for (std::size_t k = 0; k < head_.size(); ++k) {
    if (is_ident(head_[k], "namespace")) {
      scope.kind = ScopeKind::kNamespace;
      // `namespace a::b {` nests textually; record the joined name.
      std::string name;
      for (std::size_t m = k + 1; m < head_.size(); ++m) {
        if (head_[m].kind == TokKind::kIdent) {
          name += (name.empty() ? "" : "::") + head_[m].text;
        } else if (!is_punct(head_[m], "::")) {
          break;
        }
      }
      scope.name = name;
      stack_.push_back(std::move(scope));
      return;
    }
    if ((is_ident(head_[k], "class") || is_ident(head_[k], "struct")) &&
        !std::any_of(head_.begin(), head_.begin() + static_cast<long>(k),
                     [](const Token& t) { return is_ident(t, "enum"); })) {
      // `class X final : public Y {` — the name is the first identifier
      // after the keyword (skipping attributes is not worth the code;
      // `[[...]]` tokens are punctuation and get skipped naturally).
      for (std::size_t m = k + 1; m < head_.size(); ++m) {
        if (head_[m].kind == TokKind::kIdent && head_[m].text != "final" &&
            head_[m].text != "alignas") {
          scope.kind = ScopeKind::kClass;
          scope.name = head_[m].text;
          break;
        }
        if (is_punct(head_[m], ":") || is_punct(head_[m], "{")) break;
      }
      if (scope.kind == ScopeKind::kClass) {
        stack_.push_back(std::move(scope));
        return;
      }
      break;  // `class {` anonymous / unparseable: fall through to block
    }
  }
  scope.kind = ScopeKind::kBlock;
  scope.class_context = member_definition_context(head_);
  stack_.push_back(std::move(scope));
}

void ScopeTracker::advance(const Token& token) {
  if (is_punct(token, "{")) {
    open_scope();
    head_.clear();
    return;
  }
  if (is_punct(token, "}")) {
    if (!stack_.empty()) stack_.pop_back();
    head_.clear();
    return;
  }
  if (is_punct(token, ";")) {
    head_.clear();
    return;
  }
  head_.push_back(token);
  // Statement heads never legitimately grow huge; cap so a pathological
  // file cannot make this quadratic.
  if (head_.size() > 256) head_.erase(head_.begin());
}

std::string ScopeTracker::class_path() const {
  std::string path;
  for (const Scope& scope : stack_) {
    if (scope.kind == ScopeKind::kNamespace || scope.kind == ScopeKind::kClass) {
      if (!scope.name.empty()) {
        path += (path.empty() ? "" : "::") + scope.name;
      }
    } else if (!scope.class_context.empty()) {
      path += (path.empty() ? "" : "::") + scope.class_context;
    }
  }
  return path;
}

std::string ScopeTracker::namespace_path() const {
  std::string path;
  for (const Scope& scope : stack_) {
    if (scope.kind == ScopeKind::kNamespace && !scope.name.empty()) {
      path += (path.empty() ? "" : "::") + scope.name;
    }
  }
  return path;
}

}  // namespace fr_analysis
