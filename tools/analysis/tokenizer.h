// Tokenizer with file/line provenance — the single lexing pass every
// fr_lint/fr_analyze rule builds on (DESIGN.md §11).
//
// One scan produces both views of a file:
//   * the token stream (comments dropped, literal *contents* kept in
//     Token::text so the include-graph walker can read include paths),
//   * the scrubbed line view (comments and literal contents blanked
//     with spaces, line lengths stable) for the line-oriented fr_lint
//     rules.
// Raw string literals (R"delim( ... )delim", any encoding prefix) are
// handled here, so a quote or banned token inside one can no longer
// corrupt scrubbing for the rest of the file.
#pragma once

#include <string>
#include <vector>

#include "analysis/token.h"

namespace fr_analysis {

/// Tokenizes `text` (the full file contents) under the given path.
[[nodiscard]] SourceFile tokenize_text(std::string path, const std::string& text);

/// Reads and tokenizes a file from disk. Missing/unreadable files come
/// back with empty contents (the driver reports them).
[[nodiscard]] SourceFile tokenize_file(const std::string& path);

/// The scrub used by fr_lint's line rules: comments and string/char
/// literal contents blanked with spaces (raw-string aware), line
/// lengths and offsets preserved.
[[nodiscard]] std::vector<std::string> scrub_lines(
    const std::vector<std::string>& raw);

}  // namespace fr_analysis
