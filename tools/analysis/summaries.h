// Per-function summaries propagated to fixpoint over the call graph
// (DESIGN.md §13).
//
// For every function definition the builder walks the body once with
// the shared LockWalker and records four kinds of *direct* facts:
//
//   acquires   MutexLock/SharedLock constructions, resolved to mutex
//              identities through the symbol table;
//   blocks     blocking primitives — wait-family member calls
//              (CondVar::wait and friends), file I/O (fopen/fputs/
//              fwrite/...), thread joins. A `x.wait(lockvar)` whose
//              argument names an active scoped lock records which lock
//              the wait releases, so the CondVar protocol (wait drops
//              the lock it is given) never reads as self-blocking;
//   emits      output-producing primitives (ByteWriter::put and the
//              stdio writers) — the sinks determinism taint flows to.
//              Applied by name even for resolved callees: the writer's
//              body is just a memcpy, the *name* carries the meaning;
//   writes     assignments/mutations of FR_GUARDED_BY fields on paths
//              where the guard is not held (FR_REQUIRES on the
//              definition head counts as held).
//
// Facts then propagate caller-ward to a fixpoint: the summary of F is
// the union of its direct facts and the facts of everything F can
// reach, each fact carrying the witness call chain back to its origin
// ("callee [file:line]" steps, outermost call first). The lattice is
// a finite powerset (facts are keyed by their origin site), merges are
// set union, so the worklist terminates — recursion and mutual
// recursion just stop adding new keys. Guarded-write facts are the one
// conditional edge: they propagate only through call sites where the
// caller does NOT hold the guard (a caller that holds it discharges
// the obligation), and surface as findings only when they survive to a
// root (a function no analyzed call site reaches).
//
// On top of the fixpoint the builder derives the products the
// interprocedural passes consume directly: call-chain-induced lock
// edges, blocking-under-lock sites, and undischarged guarded writes.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "analysis/call_graph.h"
#include "analysis/include_graph.h"
#include "analysis/lock_graph.h"
#include "analysis/symbols.h"
#include "analysis/token.h"

namespace fr_analysis {

/// A lock acquisition reachable from a function.
struct AcquireFact {
  std::string lock_id;
  std::string file;  ///< acquisition site
  std::size_t line = 0;
  std::vector<std::string> path;  ///< call chain to origin, "" = direct
};

/// A blocking primitive reachable from a function.
struct BlockFact {
  std::string what;      ///< primitive name ("wait", "fopen", ...)
  std::string released;  ///< lock id a wait(lockvar) releases, "" if none
  std::string file;      ///< primitive site
  std::size_t line = 0;
  std::vector<std::string> path;
};

/// An output-producing primitive reachable from a function.
struct EmitFact {
  std::string what;
  std::string file;
  std::size_t line = 0;
  std::vector<std::string> path;
};

/// A guarded-field write not yet discharged by any caller's lock.
struct WriteFact {
  std::string field_id;
  std::string guard_id;
  std::string file;  ///< write site
  std::size_t line = 0;
  std::vector<std::string> path;
};

/// Fixpoint summary of one function identity (facts keyed by origin
/// site so merges are idempotent set unions).
struct FunctionSummary {
  std::map<std::string, AcquireFact> acquires;
  std::map<std::string, BlockFact> blocks;
  std::map<std::string, EmitFact> emits;
  std::map<std::string, WriteFact> writes;
};

/// An FR_GUARDED_BY-annotated field: "<class>::<name>" for members,
/// "<file>::<name>" for file-scope variables.
struct GuardedField {
  std::string id;
  std::string name;
  std::string class_path;  ///< "" for file scope
  std::string guard_id;    ///< resolved mutex identity
  std::string file;
  std::size_t line = 0;
};

/// A variable of unordered-container type (std::unordered_map/set and
/// the multi variants), same identity scheme as GuardedField.
struct UnorderedDecl {
  std::string id;
  std::string name;
  std::string class_path;
  std::string file;
  std::size_t line = 0;
};

/// A site where something may block while a scoped lock is held.
struct BlockingSite {
  std::string file;  ///< the call / primitive site
  std::size_t line = 0;
  std::string function_id;  ///< enclosing function
  std::string held_id;      ///< the (innermost) lock held across it
  std::size_t held_line = 0;
  std::string what;       ///< blocking primitive
  std::string callee_id;  ///< summarized callee, "" for a direct primitive
  std::string origin_file;  ///< where the primitive actually lives
  std::size_t origin_line = 0;
  std::vector<std::string> path;  ///< witness chain into the callee
};

/// A guarded-field write that survived fixpoint to a root function.
struct UnguardedWrite {
  std::string field_id;
  std::string guard_id;
  std::string file;  ///< the write site
  std::size_t line = 0;
  std::string root_id;            ///< entry function the path starts at
  std::vector<std::string> path;  ///< chain from root down to the write
};

class Summaries {
 public:
  [[nodiscard]] static Summaries build(const std::vector<SourceFile>& files,
                                       const CallGraph& graph,
                                       const SymbolTable& symbols,
                                       const IncludeGraph& includes);

  /// Fixpoint summary for a function identity (empty summary when the
  /// id is unknown).
  [[nodiscard]] const FunctionSummary& of(const std::string& id) const;

  [[nodiscard]] const std::vector<GuardedField>& guarded_fields()
      const noexcept {
    return guarded_fields_;
  }
  [[nodiscard]] const std::vector<UnorderedDecl>& unordered_decls()
      const noexcept {
    return unordered_decls_;
  }

  /// Resolves a container name used at `use_file` inside
  /// `use_class_path` against the unordered-container declarations
  /// (same lookup order as SymbolTable::resolve). "" when unknown.
  [[nodiscard]] std::string resolve_unordered(
      const std::string& name, const std::string& use_file,
      const std::string& use_class_path, const IncludeGraph& includes) const;

  /// Lock-order edges induced through call chains: a call made while
  /// `from` is held reaching an acquisition of `to` in the callee's
  /// summary. LockEdge::via carries the witness chain.
  [[nodiscard]] const std::vector<LockEdge>& induced_edges() const noexcept {
    return induced_edges_;
  }

  [[nodiscard]] const std::vector<BlockingSite>& blocking_sites()
      const noexcept {
    return blocking_sites_;
  }

  [[nodiscard]] const std::vector<UnguardedWrite>& unguarded_writes()
      const noexcept {
    return unguarded_writes_;
  }

 private:
  std::map<std::string, FunctionSummary> by_id_;
  std::vector<GuardedField> guarded_fields_;
  std::vector<UnorderedDecl> unordered_decls_;
  std::vector<LockEdge> induced_edges_;
  std::vector<BlockingSite> blocking_sites_;
  std::vector<UnguardedWrite> unguarded_writes_;
};

}  // namespace fr_analysis
