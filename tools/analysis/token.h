// Token model for the fr_analysis library (DESIGN.md §11).
//
// The analyzers in tools/analysis work on a comment-free token stream
// with per-token file/line provenance, not on raw text: every pass that
// reports a violation can point at the exact acquisition, clock call,
// or accumulation it saw, and no pass can be fooled by banned spellings
// inside comments or string literals (including multi-line raw
// strings, which the old line-based fr_lint scrubber mishandled).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace fr_analysis {

enum class TokKind {
  kIdent,   ///< identifier or keyword
  kNumber,  ///< numeric literal (integer/float, separators kept)
  kString,  ///< string literal; text holds the *content* (un-delimited)
  kChar,    ///< character literal; text holds the content
  kPunct,   ///< operator/punctuator, longest-match ("::", "+=", ...)
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  std::size_t line = 0;  ///< 1-based line of the token's first character
};

/// One tokenized source file. `raw` keeps the original lines (needed
/// for `allow(...)` suppression markers and EXPECT headers); `scrubbed`
/// is the raw-string-aware blanked view line-based rules match against
/// (comment bodies and literal contents replaced by spaces, line
/// lengths preserved).
struct SourceFile {
  std::string path;  ///< generic (forward-slash) path as given
  std::vector<std::string> raw;
  std::vector<std::string> scrubbed;
  std::vector<Token> tokens;
};

}  // namespace fr_analysis
