#include "analysis/passes.h"

#include <algorithm>
#include <cstdio>
#include <iterator>
#include <map>
#include <set>

namespace fr_analysis {

namespace {

bool is_punct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

bool path_contains_dir(const std::string& path, const std::string& dir) {
  return path.find("/" + dir + "/") != std::string::npos ||
         path.rfind(dir + "/", 0) == 0;
}

bool path_ends_with(const std::string& path, const std::string& suffix) {
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Trailing `// fr_analyze: allow(rule)` marker on the raw line.
bool line_allows(const SourceFile& file, std::size_t line,
                 const std::string& rule) {
  if (line == 0 || line > file.raw.size()) return false;
  const std::string marker = "fr_analyze: allow(" + rule + ")";
  return file.raw[line - 1].find(marker) != std::string::npos;
}

const SourceFile* find_file(const std::vector<SourceFile>& files,
                            const std::string& path) {
  for (const SourceFile& file : files) {
    if (file.path == path) return &file;
  }
  return nullptr;
}

// ---------------------------------------------------------------------
// sim-time
// ---------------------------------------------------------------------

const std::set<std::string>& real_time_idents() {
  static const std::set<std::string> kIdents = {
      "sleep_for",     "sleep_until",  "system_clock",
      "steady_clock",  "high_resolution_clock",
      "nanosleep",     "usleep",       "gettimeofday",
      "clock_gettime",
  };
  return kIdents;
}

}  // namespace

std::vector<Violation> run_sim_time_pass(const std::vector<SourceFile>& files,
                                         const PassOptions& options) {
  std::vector<Violation> out;
  for (const SourceFile& file : files) {
    if (!options.treat_all_as_src && !path_contains_dir(file.path, "src")) {
      continue;
    }
    // The two blessed homes of real time: the virtual-clock models
    // themselves, and the WallTimer stopwatch the bench harness reports
    // measured CPU seconds with.
    if (path_ends_with(file.path, "common/sim_clock.h") ||
        path_ends_with(file.path, "common/sim_clock.cpp") ||
        path_ends_with(file.path, "common/timer.h")) {
      continue;
    }
    const std::vector<Token>& toks = file.tokens;
    for (std::size_t k = 0; k < toks.size(); ++k) {
      if (toks[k].kind != TokKind::kIdent) continue;
      bool banned = real_time_idents().count(toks[k].text) > 0;
      if (!banned && toks[k].text == "time" && k + 1 < toks.size() &&
          is_punct(toks[k + 1], "(")) {
        // Raw time(...): a call, not a member (`x.time(...)`) and, when
        // qualified, only the std:: spelling.
        const bool member = k >= 1 && (is_punct(toks[k - 1], ".") ||
                                       is_punct(toks[k - 1], "->"));
        bool qualified_ok = true;
        if (k >= 2 && is_punct(toks[k - 1], "::")) {
          qualified_ok = toks[k - 2].kind == TokKind::kIdent &&
                         toks[k - 2].text == "std";
        }
        banned = !member && qualified_ok;
      }
      if (banned && !line_allows(file, toks[k].line, "sim-time")) {
        out.push_back(
            {file.path, toks[k].line, "sim-time",
             "real-time source '" + toks[k].text +
                 "' in pipeline code — charge I/O to SimClock "
                 "(common/sim_clock.h) so runs replay identically; "
                 "wall-clock measurement belongs in common/timer.h",
             "sim-time|" + file.path + "|" + toks[k].text});
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------
// determinism-reduction
// ---------------------------------------------------------------------

namespace {

const std::set<std::string>& type_idents() {
  static const std::set<std::string> kTypes = {
      "double", "float",    "auto",     "int",      "long",    "unsigned",
      "short",  "size_t",   "uint8_t",  "uint16_t", "uint32_t", "uint64_t",
      "int8_t", "int16_t",  "int32_t",  "int64_t",  "Gid",     "ptrdiff_t",
  };
  return kTypes;
}

bool is_type_ident(const Token& t) {
  return t.kind == TokKind::kIdent && type_idents().count(t.text) > 0;
}

/// True when tokens [begin, at) contain a local declaration of `name`:
/// a `<type> name` pair (covers lambda parameters and body locals).
bool declared_in_region(const std::vector<Token>& toks, std::size_t begin,
                        std::size_t at, const std::string& name) {
  for (std::size_t j = begin + 1; j < at; ++j) {
    if (toks[j].kind != TokKind::kIdent || toks[j].text != name) continue;
    if (is_type_ident(toks[j - 1])) return true;
    if ((is_punct(toks[j - 1], "&") || is_punct(toks[j - 1], "*")) && j >= 2 &&
        is_type_ident(toks[j - 2])) {
      return true;
    }
  }
  return false;
}

/// True when the file declares `double name` / `float name` anywhere —
/// the only case the determinism rule fires on (integer counters are a
/// race question for TSan, not a float-ordering question).
bool floating_in_file(const std::vector<Token>& toks, const std::string& name) {
  for (std::size_t j = 1; j < toks.size(); ++j) {
    if (toks[j].kind == TokKind::kIdent && toks[j].text == name &&
        toks[j - 1].kind == TokKind::kIdent &&
        (toks[j - 1].text == "double" || toks[j - 1].text == "float")) {
      return true;
    }
  }
  return false;
}

/// Finds the token index just past the matching closer for the opener
/// at `open` (which must be "(", "[", or "{"). Returns toks.size() when
/// unbalanced.
std::size_t skip_balanced(const std::vector<Token>& toks, std::size_t open,
                          const char* open_text, const char* close_text) {
  int depth = 0;
  for (std::size_t m = open; m < toks.size(); ++m) {
    if (is_punct(toks[m], open_text)) ++depth;
    if (is_punct(toks[m], close_text)) {
      --depth;
      if (depth == 0) return m + 1;
    }
  }
  return toks.size();
}

}  // namespace

std::vector<Violation> run_determinism_pass(
    const std::vector<SourceFile>& files) {
  std::vector<Violation> out;
  for (const SourceFile& file : files) {
    const std::vector<Token>& toks = file.tokens;
    for (std::size_t k = 0; k + 1 < toks.size(); ++k) {
      if (toks[k].kind != TokKind::kIdent ||
          (toks[k].text != "parallel_for" &&
           toks[k].text != "parallel_for_ranges") ||
          !is_punct(toks[k + 1], "(")) {
        continue;
      }
      const std::size_t call_end = skip_balanced(toks, k + 1, "(", ")");
      // Inline lambda arguments: a '[' in argument position (after '('
      // or ','). Lambdas bound to a named variable earlier are already
      // covered when their own call site is scanned — and the blessed
      // helpers keep their accumulators local anyway.
      for (std::size_t m = k + 2; m < call_end; ++m) {
        if (!is_punct(toks[m], "[") ||
            !(is_punct(toks[m - 1], "(") || is_punct(toks[m - 1], ","))) {
          continue;
        }
        const std::size_t intro_end = skip_balanced(toks, m, "[", "]");
        // Optional parameter list, then the body braces.
        std::size_t body_begin = intro_end;
        if (body_begin < toks.size() && is_punct(toks[body_begin], "(")) {
          body_begin = skip_balanced(toks, body_begin, "(", ")");
        }
        if (body_begin >= toks.size() || !is_punct(toks[body_begin], "{")) {
          continue;
        }
        const std::size_t body_end = skip_balanced(toks, body_begin, "{", "}");

        for (std::size_t p = m; p < body_end && p < toks.size(); ++p) {
          // std::accumulate inside a parallel lambda is always wrong.
          if (toks[p].kind == TokKind::kIdent &&
              toks[p].text == "accumulate" &&
              !line_allows(file, toks[p].line, "determinism-reduction")) {
            out.push_back({file.path, toks[p].line, "determinism-reduction",
                           "std::accumulate inside a parallel_for lambda — "
                           "use the fixed-block reduction helpers "
                           "(core/faultyrank.cpp reduce_block_sum/_max) to "
                           "keep sums bit-identical across pool sizes",
                           "determinism-reduction|" + file.path +
                               "|accumulate"});
            continue;
          }
          if (p + 1 >= toks.size() ||
              !(is_punct(toks[p + 1], "+=") || is_punct(toks[p + 1], "-="))) {
            continue;
          }
          if (toks[p].kind != TokKind::kIdent) continue;  // arr[i] += ...
          if (p >= 1 &&
              (is_punct(toks[p - 1], ".") || is_punct(toks[p - 1], "->"))) {
            continue;  // member accumulation: object identity unknown
          }
          const std::string& name = toks[p].text;
          if (declared_in_region(toks, m, p, name)) continue;  // local acc
          if (!floating_in_file(toks, name)) continue;
          if (line_allows(file, toks[p].line, "determinism-reduction")) {
            continue;
          }
          out.push_back(
              {file.path, toks[p].line, "determinism-reduction",
               "floating-point accumulation into captured '" + name +
                   "' inside a parallel_for lambda — scheduling decides "
                   "the addition order; route the reduction through the "
                   "fixed-block helpers or write disjoint indexed slots",
               "determinism-reduction|" + file.path + "|" + name});
        }
        m = body_end > m ? body_end - 1 : m;
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------
// lock-order-cycle (+ the call-chain-transitive variant)
// ---------------------------------------------------------------------

namespace {

/// Deterministic attribution anchor: the lexicographically smallest
/// (file, from_line) among the witness edges.
const LockEdge* cycle_primary(const LockCycle& cycle) {
  const LockEdge* primary = &cycle.edges.front();
  for (const LockEdge& edge : cycle.edges) {
    if (edge.file < primary->file ||
        (edge.file == primary->file && edge.from_line < primary->from_line)) {
      primary = &edge;
    }
  }
  return primary;
}

std::string cycle_witness(const LockCycle& cycle) {
  std::string witness;
  for (const LockEdge& edge : cycle.edges) {
    if (!witness.empty()) witness += "; ";
    witness += edge.from + " -> " + edge.to + " [" + edge.file + ":" +
               std::to_string(edge.from_line) + " holds the former, :" +
               std::to_string(edge.to_line) +
               (edge.via.empty() ? " acquires the latter]"
                                 : " calls " + edge.via + "]");
  }
  return witness;
}

/// Line-insensitive cycle identity: the ordered node list (find_cycles
/// already roots every cycle at its smallest node).
std::string cycle_fingerprint(const std::string& rule,
                              const LockCycle& cycle) {
  std::string nodes;
  for (const LockEdge& edge : cycle.edges) nodes += edge.from + ";";
  return rule + "|" + nodes;
}

}  // namespace

std::vector<Violation> run_lock_order_pass(const LockGraph& graph,
                                           const std::vector<SourceFile>& files) {
  std::vector<Violation> out;
  for (const LockCycle& cycle : graph.find_cycles()) {
    const LockEdge* primary = cycle_primary(cycle);
    const SourceFile* file = find_file(files, primary->file);
    if (file != nullptr &&
        line_allows(*file, primary->from_line, "lock-order-cycle")) {
      continue;
    }
    out.push_back({primary->file, primary->from_line, "lock-order-cycle",
                   "lock acquisition cycle (potential deadlock): " +
                       cycle_witness(cycle),
                   cycle_fingerprint("lock-order-cycle", cycle)});
  }
  return out;
}

std::vector<Violation> run_lock_order_transitive_pass(
    const LockGraph& direct, const Summaries& summaries,
    const std::vector<SourceFile>& files) {
  // Direct edges first: the cycle finder dedups by node sequence, so a
  // cycle closable without any induced edge is discovered through its
  // direct edges and filtered below — the direct pass owns it.
  std::vector<LockEdge> combined = direct.edges();
  combined.insert(combined.end(), summaries.induced_edges().begin(),
                  summaries.induced_edges().end());
  const LockGraph graph = LockGraph::from_edges(std::move(combined));

  std::vector<Violation> out;
  for (const LockCycle& cycle : graph.find_cycles()) {
    bool induced = false;
    for (const LockEdge& edge : cycle.edges) {
      if (!edge.via.empty()) induced = true;
    }
    if (!induced) continue;
    const LockEdge* primary = cycle_primary(cycle);
    const SourceFile* file = find_file(files, primary->file);
    if (file != nullptr && line_allows(*file, primary->from_line,
                                       "lock-order-cycle-transitive")) {
      continue;
    }
    out.push_back(
        {primary->file, primary->from_line, "lock-order-cycle-transitive",
         "lock acquisition cycle through call chains (potential "
         "deadlock): " + cycle_witness(cycle),
         cycle_fingerprint("lock-order-cycle-transitive", cycle)});
  }
  return out;
}

// ---------------------------------------------------------------------
// blocking-under-lock
// ---------------------------------------------------------------------

std::vector<Violation> run_blocking_under_lock_pass(
    const Summaries& summaries, const std::vector<SourceFile>& files) {
  std::vector<Violation> out;
  for (const BlockingSite& site : summaries.blocking_sites()) {
    const SourceFile* file = find_file(files, site.file);
    if (file != nullptr &&
        line_allows(*file, site.line, "blocking-under-lock")) {
      continue;
    }
    std::string message = "'" + site.what + "' may block while " +
                          site.held_id + " is held (acquired at " + site.file +
                          ":" + std::to_string(site.held_line) + ")";
    if (!site.path.empty()) {
      message += " — reached via ";
      for (std::size_t i = 0; i < site.path.size(); ++i) {
        if (i > 0) message += " -> ";
        message += site.path[i];
      }
      message += ", blocking at " + site.origin_file + ":" +
                 std::to_string(site.origin_line);
    }
    message +=
        "; a stalled write or parked wait here holds every contender of "
        "the lock hostage — move the slow work outside the critical "
        "section";
    out.push_back({site.file, site.line, "blocking-under-lock",
                   std::move(message),
                   "blocking-under-lock|" + site.file + "|" +
                       site.function_id + "|" + site.held_id + "|" +
                       site.what + "|" + site.callee_id});
  }
  return out;
}

// ---------------------------------------------------------------------
// determinism-taint
// ---------------------------------------------------------------------

namespace {

const std::set<std::string>& taint_emit_names() {
  static const std::set<std::string> kNames = {
      "put",   "put_string", "put_bytes", "fwrite",
      "fputs", "fputc",      "fprintf",   "vfprintf", "printf",
  };
  return kNames;
}

}  // namespace

std::vector<Violation> run_determinism_taint_pass(
    const std::vector<SourceFile>& files, const CallGraph& graph,
    const Summaries& summaries, const IncludeGraph& includes) {
  std::vector<Violation> out;
  for (const SourceFile& file : files) {
    const std::vector<Token>& toks = file.tokens;
    for (std::size_t k = 0; k + 1 < toks.size(); ++k) {
      if (toks[k].kind != TokKind::kIdent || toks[k].text != "for" ||
          !is_punct(toks[k + 1], "(")) {
        continue;
      }
      const std::size_t head_end = skip_balanced(toks, k + 1, "(", ")");
      // Range-for: a ':' at parenthesis depth 1.
      std::size_t colon = 0;
      int depth = 0;
      for (std::size_t m = k + 1; m < head_end; ++m) {
        if (is_punct(toks[m], "(")) ++depth;
        if (is_punct(toks[m], ")")) --depth;
        if (depth == 1 && is_punct(toks[m], ":")) {
          colon = m;
          break;
        }
      }
      if (colon == 0 || head_end == 0 || head_end > toks.size()) continue;

      // The container is the trailing identifier of the range
      // expression; a call result (expression ending in ')') has no
      // trackable identity.
      if (head_end < 2 || is_punct(toks[head_end - 2], ")")) continue;
      std::string container;
      for (std::size_t m = colon + 1; m + 1 < head_end; ++m) {
        if (toks[m].kind == TokKind::kIdent) container = toks[m].text;
      }
      if (container.empty()) continue;

      const FunctionDef* def = graph.enclosing(file.path, k);
      const std::string container_id = summaries.resolve_unordered(
          container, file.path, def != nullptr ? def->class_path : "",
          includes);
      if (container_id.empty()) continue;

      // Body: a brace block or a single statement up to ';'.
      std::size_t body_begin = head_end;
      std::size_t body_end;
      if (body_begin < toks.size() && is_punct(toks[body_begin], "{")) {
        body_end = skip_balanced(toks, body_begin, "{", "}");
      } else {
        body_end = body_begin;
        while (body_end < toks.size() && !is_punct(toks[body_end], ";")) {
          ++body_end;
        }
      }

      // First order-sensitive sink inside the body wins; one finding
      // per loop.
      std::string sink;
      for (std::size_t p = body_begin; p < body_end && sink.empty(); ++p) {
        if (toks[p].kind != TokKind::kIdent) continue;
        const bool call = p + 1 < toks.size() && is_punct(toks[p + 1], "(");
        if (call && taint_emit_names().count(toks[p].text) > 0) {
          sink = toks[p].text;
          break;
        }
        if (call && (toks[p].text == "accumulate" ||
                     toks[p].text == "parallel_for" ||
                     toks[p].text == "parallel_for_ranges")) {
          sink = toks[p].text;
          break;
        }
        if (call && def != nullptr) {
          for (const CallSite& site : def->calls) {
            if (site.token_index != p || site.callee_id.empty()) continue;
            if (!summaries.of(site.callee_id).emits.empty()) {
              sink = site.name;
            }
            break;
          }
          if (!sink.empty()) break;
        }
        if (p + 1 < toks.size() &&
            (is_punct(toks[p + 1], "+=") || is_punct(toks[p + 1], "-=")) &&
            floating_in_file(toks, toks[p].text)) {
          sink = "float:" + toks[p].text;
          break;
        }
      }
      if (sink.empty()) continue;
      if (line_allows(file, toks[k].line, "determinism-taint")) continue;
      out.push_back(
          {file.path, toks[k].line, "determinism-taint",
           "iteration over unordered container '" + container_id +
               "' feeds order-sensitive sink '" + sink +
               "' — hash order varies by seed/address, so emitted bytes "
               "and float sums change run to run; sort the keys (or copy "
               "into an ordered container) before this loop",
           "determinism-taint|" + file.path + "|" +
               (def != nullptr ? def->id : std::string()) + "|" +
               container_id + "|" + sink});
    }
  }
  return out;
}

// ---------------------------------------------------------------------
// guarded-by-coverage
// ---------------------------------------------------------------------

std::vector<Violation> run_guarded_by_pass(
    const Summaries& summaries, const std::vector<SourceFile>& files) {
  std::vector<Violation> out;
  for (const UnguardedWrite& write : summaries.unguarded_writes()) {
    const SourceFile* file = find_file(files, write.file);
    if (file != nullptr &&
        line_allows(*file, write.line, "guarded-by-coverage")) {
      continue;
    }
    std::string message = "write to '" + write.field_id +
                          "' (FR_GUARDED_BY " + write.guard_id +
                          ") with no path from entry holding the guard";
    if (write.path.empty()) {
      message += " — the writing function neither locks it nor declares "
                 "FR_REQUIRES";
    } else {
      message += " — reachable from " + write.root_id + " via ";
      for (std::size_t i = 0; i < write.path.size(); ++i) {
        if (i > 0) message += " -> ";
        message += write.path[i];
      }
    }
    out.push_back({write.file, write.line, "guarded-by-coverage",
                   std::move(message),
                   "guarded-by-coverage|" + write.field_id + "|" +
                       write.guard_id + "|" + write.file});
  }
  return out;
}

// ---------------------------------------------------------------------
// serdes-asymmetry / unchecked-wire-count / schema-drift
// ---------------------------------------------------------------------

std::vector<Violation> run_serdes_asymmetry_pass(
    const WireModel& wire, const std::vector<SourceFile>& files) {
  std::vector<Violation> out;
  for (const WirePair& pair : wire.pairs()) {
    const WireMismatch m = wire.compare_pair(pair);
    if (!m.mismatch || m.suppressed) continue;
    const WireFn& w = wire.functions()[pair.writer];
    const WireFn& r = wire.functions()[pair.reader];
    const SourceFile* file = find_file(files, m.writer_file);
    if (file != nullptr &&
        line_allows(*file, m.writer_line, "serdes-asymmetry")) {
      continue;
    }
    out.push_back({m.writer_file, m.writer_line, "serdes-asymmetry",
                   "writer/reader schemas diverge: " + m.detail +
                       "; every byte the writer emits must be consumed at "
                       "the same offset and width by the reader",
                   "serdes-asymmetry|" + w.id + "|" + r.id});
  }
  return out;
}

std::vector<Violation> run_unchecked_wire_count_pass(
    const WireModel& wire, const std::vector<SourceFile>& files) {
  std::vector<Violation> out;
  for (const WireCountUse& use : wire.unchecked_counts()) {
    const SourceFile* file = find_file(files, use.file);
    if (file != nullptr &&
        line_allows(*file, use.line, "unchecked-wire-count")) {
      continue;
    }
    out.push_back(
        {use.file, use.line, "unchecked-wire-count",
         "count '" + use.var + "' read from the wire (" + use.source +
             " at line " + std::to_string(use.def_line) + ") reaches " +
             use.use +
             " unchecked — a hostile file can demand an arbitrary "
             "allocation; bound it with ByteReader::bounded_count or an "
             "explicit comparison against the remaining input first",
         "unchecked-wire-count|" + use.fn_id + "|" + use.var + "|" +
             use.use});
  }
  return out;
}

std::vector<Violation> run_schema_drift_pass(const WireModel& wire,
                                             const std::vector<SourceFile>& files,
                                             const PassOptions& options) {
  std::vector<Violation> out;
  if (options.schemas_path.empty()) return out;
  std::vector<SchemaEntry> committed;
  if (!load_schemas(options.schemas_path, &committed)) {
    out.push_back({options.schemas_path, 0, "schema-drift",
                   "cannot read committed wire schemas at '" +
                       options.schemas_path +
                       "' — regenerate with fr_analyze --write-schemas",
                   "schema-drift|" + options.schemas_path + "|unreadable"});
    return out;
  }
  std::map<std::string, const SchemaEntry*> by_format;
  for (const SchemaEntry& entry : committed) by_format[entry.format] = &entry;

  const std::vector<SchemaEntry> computed = wire.entries();
  std::set<std::string> seen;
  for (const SchemaEntry& entry : computed) {
    seen.insert(entry.format);
    const SourceFile* file = find_file(files, entry.file);
    const WireFn* writer = nullptr;
    for (const WireFn& fn : wire.functions()) {
      if (fn.id == entry.writer_id) writer = &fn;
    }
    const std::size_t line = writer != nullptr ? writer->line : 0;
    if (file != nullptr && line_allows(*file, line, "schema-drift")) continue;
    const auto it = by_format.find(entry.format);
    if (it == by_format.end()) {
      out.push_back({entry.file, line, "schema-drift",
                     "new wire format '" + entry.format +
                         "' has no committed fingerprint — review the "
                         "schema and regenerate " + options.schemas_path +
                         " (fr_analyze --write-schemas)",
                     "schema-drift|" + entry.format + "|new"});
      continue;
    }
    const SchemaEntry& old = *it->second;
    const bool schema_changed = entry.writer_schema != old.writer_schema ||
                                entry.reader_schema != old.reader_schema;
    const bool version_changed = entry.version != old.version;
    if (schema_changed && !version_changed) {
      const std::string where =
          entry.version.empty()
              ? "declare and bump a format-version constant in " + entry.file
              : "bump the version constant in " + entry.file +
                    " (currently " + entry.version + ")";
      out.push_back(
          {entry.file, line, "schema-drift",
           "wire schema of '" + entry.format +
               "' changed without a version bump (committed \"" +
               old.writer_schema + "\" -> computed \"" + entry.writer_schema +
               "\") — old files would be misparsed silently; " + where +
               ", then regenerate " + options.schemas_path,
           "schema-drift|" + entry.format + "|unbumped"});
      continue;
    }
    if (schema_changed || version_changed) {
      out.push_back({entry.file, line, "schema-drift",
                     "wire schema fingerprint of '" + entry.format +
                         "' is stale (version bumped) — regenerate " +
                         options.schemas_path +
                         " with fr_analyze --write-schemas",
                     "schema-drift|" + entry.format + "|regenerate"});
    }
  }
  for (const SchemaEntry& entry : committed) {
    if (seen.count(entry.format) == 0) {
      std::fprintf(stderr,
                   "fr_analyze: warning: committed schema '%s' no longer "
                   "matches any writer/reader pair (stale entry in %s)\n",
                   entry.format.c_str(), options.schemas_path.c_str());
    }
  }
  return out;
}

std::vector<Violation> run_all_passes(const std::vector<SourceFile>& files,
                                      const SymbolTable& /*symbols*/,
                                      const IncludeGraph& includes,
                                      const LockGraph& lock_graph,
                                      const CallGraph& call_graph,
                                      const Summaries& summaries,
                                      const WireModel& wire,
                                      const PassOptions& options) {
  std::vector<Violation> out = run_lock_order_pass(lock_graph, files);
  const auto append = [&out](std::vector<Violation> more) {
    out.insert(out.end(), std::make_move_iterator(more.begin()),
               std::make_move_iterator(more.end()));
  };
  append(run_sim_time_pass(files, options));
  append(run_determinism_pass(files));
  append(run_lock_order_transitive_pass(lock_graph, summaries, files));
  append(run_blocking_under_lock_pass(summaries, files));
  append(run_determinism_taint_pass(files, call_graph, summaries, includes));
  append(run_guarded_by_pass(summaries, files));
  append(run_serdes_asymmetry_pass(wire, files));
  append(run_unchecked_wire_count_pass(wire, files));
  append(run_schema_drift_pass(wire, files, options));
  std::sort(out.begin(), out.end(), [](const Violation& a, const Violation& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.message < b.message;
  });
  return out;
}

}  // namespace fr_analysis
