#include "analysis/passes.h"

#include <algorithm>
#include <map>
#include <set>

namespace fr_analysis {

namespace {

bool is_punct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

bool path_contains_dir(const std::string& path, const std::string& dir) {
  return path.find("/" + dir + "/") != std::string::npos ||
         path.rfind(dir + "/", 0) == 0;
}

bool path_ends_with(const std::string& path, const std::string& suffix) {
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Trailing `// fr_analyze: allow(rule)` marker on the raw line.
bool line_allows(const SourceFile& file, std::size_t line,
                 const std::string& rule) {
  if (line == 0 || line > file.raw.size()) return false;
  const std::string marker = "fr_analyze: allow(" + rule + ")";
  return file.raw[line - 1].find(marker) != std::string::npos;
}

const SourceFile* find_file(const std::vector<SourceFile>& files,
                            const std::string& path) {
  for (const SourceFile& file : files) {
    if (file.path == path) return &file;
  }
  return nullptr;
}

// ---------------------------------------------------------------------
// sim-time
// ---------------------------------------------------------------------

const std::set<std::string>& real_time_idents() {
  static const std::set<std::string> kIdents = {
      "sleep_for",     "sleep_until",  "system_clock",
      "steady_clock",  "high_resolution_clock",
      "nanosleep",     "usleep",       "gettimeofday",
      "clock_gettime",
  };
  return kIdents;
}

}  // namespace

std::vector<Violation> run_sim_time_pass(const std::vector<SourceFile>& files,
                                         const PassOptions& options) {
  std::vector<Violation> out;
  for (const SourceFile& file : files) {
    if (!options.treat_all_as_src && !path_contains_dir(file.path, "src")) {
      continue;
    }
    // The two blessed homes of real time: the virtual-clock models
    // themselves, and the WallTimer stopwatch the bench harness reports
    // measured CPU seconds with.
    if (path_ends_with(file.path, "common/sim_clock.h") ||
        path_ends_with(file.path, "common/sim_clock.cpp") ||
        path_ends_with(file.path, "common/timer.h")) {
      continue;
    }
    const std::vector<Token>& toks = file.tokens;
    for (std::size_t k = 0; k < toks.size(); ++k) {
      if (toks[k].kind != TokKind::kIdent) continue;
      bool banned = real_time_idents().count(toks[k].text) > 0;
      if (!banned && toks[k].text == "time" && k + 1 < toks.size() &&
          is_punct(toks[k + 1], "(")) {
        // Raw time(...): a call, not a member (`x.time(...)`) and, when
        // qualified, only the std:: spelling.
        const bool member = k >= 1 && (is_punct(toks[k - 1], ".") ||
                                       is_punct(toks[k - 1], "->"));
        bool qualified_ok = true;
        if (k >= 2 && is_punct(toks[k - 1], "::")) {
          qualified_ok = toks[k - 2].kind == TokKind::kIdent &&
                         toks[k - 2].text == "std";
        }
        banned = !member && qualified_ok;
      }
      if (banned && !line_allows(file, toks[k].line, "sim-time")) {
        out.push_back(
            {file.path, toks[k].line, "sim-time",
             "real-time source '" + toks[k].text +
                 "' in pipeline code — charge I/O to SimClock "
                 "(common/sim_clock.h) so runs replay identically; "
                 "wall-clock measurement belongs in common/timer.h"});
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------
// determinism-reduction
// ---------------------------------------------------------------------

namespace {

const std::set<std::string>& type_idents() {
  static const std::set<std::string> kTypes = {
      "double", "float",    "auto",     "int",      "long",    "unsigned",
      "short",  "size_t",   "uint8_t",  "uint16_t", "uint32_t", "uint64_t",
      "int8_t", "int16_t",  "int32_t",  "int64_t",  "Gid",     "ptrdiff_t",
  };
  return kTypes;
}

bool is_type_ident(const Token& t) {
  return t.kind == TokKind::kIdent && type_idents().count(t.text) > 0;
}

/// True when tokens [begin, at) contain a local declaration of `name`:
/// a `<type> name` pair (covers lambda parameters and body locals).
bool declared_in_region(const std::vector<Token>& toks, std::size_t begin,
                        std::size_t at, const std::string& name) {
  for (std::size_t j = begin + 1; j < at; ++j) {
    if (toks[j].kind != TokKind::kIdent || toks[j].text != name) continue;
    if (is_type_ident(toks[j - 1])) return true;
    if ((is_punct(toks[j - 1], "&") || is_punct(toks[j - 1], "*")) && j >= 2 &&
        is_type_ident(toks[j - 2])) {
      return true;
    }
  }
  return false;
}

/// True when the file declares `double name` / `float name` anywhere —
/// the only case the determinism rule fires on (integer counters are a
/// race question for TSan, not a float-ordering question).
bool floating_in_file(const std::vector<Token>& toks, const std::string& name) {
  for (std::size_t j = 1; j < toks.size(); ++j) {
    if (toks[j].kind == TokKind::kIdent && toks[j].text == name &&
        toks[j - 1].kind == TokKind::kIdent &&
        (toks[j - 1].text == "double" || toks[j - 1].text == "float")) {
      return true;
    }
  }
  return false;
}

/// Finds the token index just past the matching closer for the opener
/// at `open` (which must be "(", "[", or "{"). Returns toks.size() when
/// unbalanced.
std::size_t skip_balanced(const std::vector<Token>& toks, std::size_t open,
                          const char* open_text, const char* close_text) {
  int depth = 0;
  for (std::size_t m = open; m < toks.size(); ++m) {
    if (is_punct(toks[m], open_text)) ++depth;
    if (is_punct(toks[m], close_text)) {
      --depth;
      if (depth == 0) return m + 1;
    }
  }
  return toks.size();
}

}  // namespace

std::vector<Violation> run_determinism_pass(
    const std::vector<SourceFile>& files) {
  std::vector<Violation> out;
  for (const SourceFile& file : files) {
    const std::vector<Token>& toks = file.tokens;
    for (std::size_t k = 0; k + 1 < toks.size(); ++k) {
      if (toks[k].kind != TokKind::kIdent ||
          (toks[k].text != "parallel_for" &&
           toks[k].text != "parallel_for_ranges") ||
          !is_punct(toks[k + 1], "(")) {
        continue;
      }
      const std::size_t call_end = skip_balanced(toks, k + 1, "(", ")");
      // Inline lambda arguments: a '[' in argument position (after '('
      // or ','). Lambdas bound to a named variable earlier are already
      // covered when their own call site is scanned — and the blessed
      // helpers keep their accumulators local anyway.
      for (std::size_t m = k + 2; m < call_end; ++m) {
        if (!is_punct(toks[m], "[") ||
            !(is_punct(toks[m - 1], "(") || is_punct(toks[m - 1], ","))) {
          continue;
        }
        const std::size_t intro_end = skip_balanced(toks, m, "[", "]");
        // Optional parameter list, then the body braces.
        std::size_t body_begin = intro_end;
        if (body_begin < toks.size() && is_punct(toks[body_begin], "(")) {
          body_begin = skip_balanced(toks, body_begin, "(", ")");
        }
        if (body_begin >= toks.size() || !is_punct(toks[body_begin], "{")) {
          continue;
        }
        const std::size_t body_end = skip_balanced(toks, body_begin, "{", "}");

        for (std::size_t p = m; p < body_end && p < toks.size(); ++p) {
          // std::accumulate inside a parallel lambda is always wrong.
          if (toks[p].kind == TokKind::kIdent &&
              toks[p].text == "accumulate" &&
              !line_allows(file, toks[p].line, "determinism-reduction")) {
            out.push_back({file.path, toks[p].line, "determinism-reduction",
                           "std::accumulate inside a parallel_for lambda — "
                           "use the fixed-block reduction helpers "
                           "(core/faultyrank.cpp reduce_block_sum/_max) to "
                           "keep sums bit-identical across pool sizes"});
            continue;
          }
          if (p + 1 >= toks.size() ||
              !(is_punct(toks[p + 1], "+=") || is_punct(toks[p + 1], "-="))) {
            continue;
          }
          if (toks[p].kind != TokKind::kIdent) continue;  // arr[i] += ...
          if (p >= 1 &&
              (is_punct(toks[p - 1], ".") || is_punct(toks[p - 1], "->"))) {
            continue;  // member accumulation: object identity unknown
          }
          const std::string& name = toks[p].text;
          if (declared_in_region(toks, m, p, name)) continue;  // local acc
          if (!floating_in_file(toks, name)) continue;
          if (line_allows(file, toks[p].line, "determinism-reduction")) {
            continue;
          }
          out.push_back(
              {file.path, toks[p].line, "determinism-reduction",
               "floating-point accumulation into captured '" + name +
                   "' inside a parallel_for lambda — scheduling decides "
                   "the addition order; route the reduction through the "
                   "fixed-block helpers or write disjoint indexed slots"});
        }
        m = body_end > m ? body_end - 1 : m;
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------
// lock-order-cycle
// ---------------------------------------------------------------------

std::vector<Violation> run_lock_order_pass(const LockGraph& graph,
                                           const std::vector<SourceFile>& files) {
  std::vector<Violation> out;
  for (const LockCycle& cycle : graph.find_cycles()) {
    // Primary anchor: lexicographically smallest (file, line) among the
    // witness edges, so attribution is deterministic and the fixture
    // self-test can state which file owns the finding.
    const LockEdge* primary = &cycle.edges.front();
    for (const LockEdge& edge : cycle.edges) {
      if (edge.file < primary->file ||
          (edge.file == primary->file && edge.from_line < primary->from_line)) {
        primary = &edge;
      }
    }
    std::string witness;
    for (const LockEdge& edge : cycle.edges) {
      if (!witness.empty()) witness += "; ";
      witness += edge.from + " -> " + edge.to + " [" + edge.file + ":" +
                 std::to_string(edge.from_line) + " holds the former, :" +
                 std::to_string(edge.to_line) + " acquires the latter]";
    }
    const SourceFile* file = find_file(files, primary->file);
    if (file != nullptr &&
        line_allows(*file, primary->from_line, "lock-order-cycle")) {
      continue;
    }
    out.push_back({primary->file, primary->from_line, "lock-order-cycle",
                   "lock acquisition cycle (potential deadlock): " + witness});
  }
  return out;
}

std::vector<Violation> run_all_passes(const std::vector<SourceFile>& files,
                                      const SymbolTable& /*symbols*/,
                                      const IncludeGraph& /*includes*/,
                                      const LockGraph& lock_graph,
                                      const PassOptions& options) {
  std::vector<Violation> out = run_lock_order_pass(lock_graph, files);
  std::vector<Violation> sim = run_sim_time_pass(files, options);
  out.insert(out.end(), sim.begin(), sim.end());
  std::vector<Violation> det = run_determinism_pass(files);
  out.insert(out.end(), det.begin(), det.end());
  std::sort(out.begin(), out.end(), [](const Violation& a, const Violation& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return out;
}

}  // namespace fr_analysis
