#include "analysis/symbols.h"

#include <algorithm>
#include <array>

#include "analysis/scopes.h"

namespace fr_analysis {

namespace {

bool is_punct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

/// Matches a mutex type name ending at token k; returns "" when tokens
/// around k do not spell one. Accepts the annotated wrappers (Mutex /
/// SharedMutex, possibly namespace-qualified) and the raw std types.
std::string mutex_type_at(const std::vector<Token>& toks, std::size_t k,
                          bool& wrapper) {
  const Token& t = toks[k];
  if (t.kind != TokKind::kIdent) return "";
  if (t.text == "Mutex" || t.text == "SharedMutex") {
    wrapper = true;
    return t.text;
  }
  if ((t.text == "mutex" || t.text == "shared_mutex") && k >= 2 &&
      is_punct(toks[k - 1], "::") && toks[k - 2].kind == TokKind::kIdent &&
      toks[k - 2].text == "std") {
    wrapper = false;
    return "std::" + t.text;
  }
  return "";
}

bool all_caps(const std::string& s) {
  bool has_alpha = false;
  for (const char c : s) {
    if (c >= 'a' && c <= 'z') return false;
    if (c >= 'A' && c <= 'Z') has_alpha = true;
  }
  return has_alpha;
}

const std::array<const char*, 2> kGuardedAnns = {"FR_GUARDED_BY",
                                                 "FR_PT_GUARDED_BY"};
const std::array<const char*, 10> kOtherAnns = {
    "FR_REQUIRES",       "FR_REQUIRES_SHARED", "FR_ACQUIRE",
    "FR_ACQUIRE_SHARED", "FR_RELEASE",         "FR_RELEASE_SHARED",
    "FR_TRY_ACQUIRE",    "FR_EXCLUDES",        "FR_ASSERT_CAPABILITY",
    "FR_RETURN_CAPABILITY"};

struct AnnRef {
  std::string name;  ///< trailing identifier of the annotation argument
  std::string file;
  std::string class_path;
  bool guarded = false;  ///< FR_GUARDED_BY/FR_PT_GUARDED_BY vs the rest
};

/// True when the declaration at this scope stack is a class member (any
/// enclosing class scope or out-of-line member context).
bool inside_class(const ScopeTracker& scopes) {
  for (const Scope& scope : scopes.stack()) {
    if (scope.kind == ScopeKind::kClass || !scope.class_context.empty()) {
      return true;
    }
  }
  return false;
}

}  // namespace

SymbolTable SymbolTable::build(const std::vector<SourceFile>& files,
                               const IncludeGraph& includes) {
  SymbolTable table;
  std::vector<AnnRef> refs;

  for (const SourceFile& file : files) {
    ScopeTracker scopes;
    const std::vector<Token>& toks = file.tokens;
    for (std::size_t k = 0; k < toks.size(); ++k) {
      // --- Mutex declarations: <type> <name> ; -----------------------
      // Also <type> <name> { ... } ; — the brace-initialized form the
      // deadlock-detect labels use (`Mutex mutex_{"Pool::mutex_"};`).
      bool wrapper = false;
      const std::string type = mutex_type_at(toks, k, wrapper);
      bool is_decl = false;
      if (!type.empty() && k + 2 < toks.size() &&
          toks[k + 1].kind == TokKind::kIdent && !all_caps(toks[k + 1].text)) {
        if (is_punct(toks[k + 2], ";")) {
          is_decl = true;
        } else if (is_punct(toks[k + 2], "{")) {
          int depth = 0;
          std::size_t m = k + 2;
          for (; m < toks.size(); ++m) {
            if (is_punct(toks[m], "{")) ++depth;
            if (is_punct(toks[m], "}")) {
              --depth;
              if (depth == 0) {
                ++m;
                break;
              }
            }
          }
          is_decl = m < toks.size() && is_punct(toks[m], ";");
        }
      }
      if (is_decl) {
        // `class Mutex ...` and `using Mutex = ...` heads are not
        // declarations of a variable; reject when the previous
        // identifier is a keyword introducing a type.
        const bool preceded_by_class =
            k >= 1 && toks[k - 1].kind == TokKind::kIdent &&
            (toks[k - 1].text == "class" || toks[k - 1].text == "struct" ||
             toks[k - 1].text == "using" || toks[k - 1].text == "typename");
        if (!preceded_by_class) {
          MutexDecl decl;
          decl.name = toks[k + 1].text;
          decl.type = type;
          decl.wrapper = wrapper;
          decl.class_path = scopes.class_path();
          decl.file = file.path;
          decl.line = toks[k + 1].line;
          const bool member = inside_class(scopes);
          decl.id = member ? decl.class_path + "::" + decl.name
                           : decl.file + "::" + decl.name;
          table.mutexes_.push_back(std::move(decl));
        }
      }

      // --- Annotation references: FR_*( ... <name> ) -----------------
      if (toks[k].kind == TokKind::kIdent && k + 1 < toks.size() &&
          is_punct(toks[k + 1], "(")) {
        const bool guarded =
            std::find(kGuardedAnns.begin(), kGuardedAnns.end(), toks[k].text) !=
            kGuardedAnns.end();
        const bool other =
            std::find(kOtherAnns.begin(), kOtherAnns.end(), toks[k].text) !=
            kOtherAnns.end();
        if (guarded || other) {
          // Last identifier before the matching ')' is the lock name
          // (handles qualified arguments like pool_.mutex_).
          int depth = 0;
          std::string last_ident;
          for (std::size_t m = k + 1; m < toks.size(); ++m) {
            if (is_punct(toks[m], "(")) ++depth;
            if (is_punct(toks[m], ")")) {
              --depth;
              if (depth == 0) break;
            }
            if (toks[m].kind == TokKind::kIdent) last_ident = toks[m].text;
          }
          if (!last_ident.empty()) {
            refs.push_back(
                {last_ident, file.path, scopes.class_path(), guarded});
          }
        }
      }

      scopes.advance(toks[k]);
    }
  }

  // Settle annotation counts against the declarations.
  for (const AnnRef& ref : refs) {
    const std::string id =
        table.resolve(ref.name, ref.file, ref.class_path, includes);
    if (id.empty()) continue;
    for (MutexDecl& decl : table.mutexes_) {
      if (decl.id == id) {
        if (ref.guarded) {
          ++decl.guarded_refs;
        } else {
          ++decl.other_refs;
        }
        break;
      }
    }
  }
  return table;
}

std::string SymbolTable::resolve(const std::string& name,
                                 const std::string& use_file,
                                 const std::string& use_class_path,
                                 const IncludeGraph& includes) const {
  const std::set<std::string>& visible = includes.visible_from(use_file);
  const auto is_visible = [&](const MutexDecl& d) {
    return d.file == use_file || visible.count(d.file) > 0;
  };

  // 1. Enclosing class chain, innermost first.
  std::string chain = use_class_path;
  while (!chain.empty()) {
    for (const MutexDecl& decl : mutexes_) {
      if (decl.name == name && decl.class_path == chain && is_visible(decl)) {
        return decl.id;
      }
    }
    const std::size_t cut = chain.rfind("::");
    chain = cut == std::string::npos ? "" : chain.substr(0, cut);
  }

  // 2. File-scope declarations visible to this TU.
  const MutexDecl* found = nullptr;
  for (const MutexDecl& decl : mutexes_) {
    if (decl.name == name && decl.id == decl.file + "::" + decl.name &&
        is_visible(decl)) {
      if (found != nullptr && found->id != decl.id) return "";  // ambiguous
      found = &decl;
    }
  }
  if (found != nullptr) return found->id;

  // 3. Unique TU-visible member (qualified uses like pool_.mutex_,
  // where the object's type is not tracked at token level).
  for (const MutexDecl& decl : mutexes_) {
    if (decl.name == name && is_visible(decl)) {
      if (found != nullptr && found->id != decl.id) return "";  // ambiguous
      found = &decl;
    }
  }
  return found != nullptr ? found->id : "";
}

}  // namespace fr_analysis
