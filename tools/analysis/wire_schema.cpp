#include "analysis/wire_schema.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <functional>

#include "analysis/violation.h"

namespace fr_analysis {

namespace {

bool is_punct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

bool is_ident(const Token& t, const char* text) {
  return t.kind == TokKind::kIdent && t.text == text;
}

/// Token index just past the matching closer for the opener at `open`.
std::size_t skip_balanced(const std::vector<Token>& toks, std::size_t open,
                          const char* open_text, const char* close_text) {
  int depth = 0;
  for (std::size_t m = open; m < toks.size(); ++m) {
    if (is_punct(toks[m], open_text)) ++depth;
    if (is_punct(toks[m], close_text)) {
      --depth;
      if (depth == 0) return m + 1;
    }
  }
  return toks.size();
}

/// Canonical width code for a fixed-width scalar spelling; "" when the
/// identifier is not one.
std::string canon_scalar(const std::string& text) {
  if (text == "uint8_t") return "u8";
  if (text == "uint16_t") return "u16";
  if (text == "uint32_t") return "u32";
  if (text == "uint64_t") return "u64";
  if (text == "int8_t") return "i8";
  if (text == "int16_t") return "i16";
  if (text == "int32_t") return "i32";
  if (text == "int64_t") return "i64";
  if (text == "size_t") return "u64";
  if (text == "double") return "f64";
  if (text == "float") return "f32";
  return "";
}

/// Name → canonical scalar type for every declaration of a fixed-width
/// scalar in the corpus (members, params, locals, constants, function
/// return types). A name declared with two different widths collapses
/// to "?" — the wildcard that compares equal to anything — because a
/// token-level analyzer cannot tell which declaration an expression's
/// trailing identifier refers to.
std::map<std::string, std::string> build_type_table(
    const std::vector<SourceFile>& files) {
  std::map<std::string, std::string> table;
  for (const SourceFile& file : files) {
    const std::vector<Token>& toks = file.tokens;
    for (std::size_t k = 0; k + 1 < toks.size(); ++k) {
      if (toks[k].kind != TokKind::kIdent) continue;
      const std::string type = canon_scalar(toks[k].text);
      if (type.empty()) continue;
      std::size_t j = k + 1;
      while (j < toks.size() &&
             (is_punct(toks[j], "&") || is_punct(toks[j], "*"))) {
        ++j;
      }
      if (j + 1 >= toks.size() || toks[j].kind != TokKind::kIdent) continue;
      const std::string& follower = toks[j + 1].text;
      if (toks[j + 1].kind != TokKind::kPunct ||
          (follower != ";" && follower != "=" && follower != "," &&
           follower != ")" && follower != ":" && follower != "(" &&
           follower != "{")) {
        continue;
      }
      auto [it, inserted] = table.emplace(toks[j].text, type);
      if (!inserted && it->second != type) it->second = "?";
    }
  }
  return table;
}

/// File-scope `constexpr ... kSomethingVersion... = N` constants,
/// rendered "name=value" space-joined per file. The drift gate treats
/// these as the format-version the schema fingerprint is keyed on.
std::map<std::string, std::string> build_version_consts(
    const std::vector<SourceFile>& files) {
  std::map<std::string, std::string> out;
  for (const SourceFile& file : files) {
    const std::vector<Token>& toks = file.tokens;
    for (std::size_t k = 0; k + 3 < toks.size(); ++k) {
      if (!is_ident(toks[k], "constexpr")) continue;
      // Within the statement: the declared name, then `=`, then value.
      std::string name;
      std::string value;
      for (std::size_t j = k + 1; j < toks.size() && j < k + 12; ++j) {
        if (is_punct(toks[j], ";")) break;
        if (toks[j].kind == TokKind::kIdent && toks[j].text.size() > 1 &&
            toks[j].text[0] == 'k' &&
            toks[j].text.find("Version") != std::string::npos &&
            j + 2 < toks.size() && is_punct(toks[j + 1], "=") &&
            toks[j + 2].kind == TokKind::kNumber) {
          name = toks[j].text;
          value = toks[j + 2].text;
          break;
        }
      }
      if (name.empty()) continue;
      std::string& joined = out[file.path];
      if (!joined.empty()) joined += " ";
      joined += name + "=" + value;
    }
  }
  return out;
}

struct CountDef {
  bool checked = false;
  std::size_t def_line = 0;
  std::string source;  // "get" | "fread"
};

/// Per-function extraction state shared by the recursive region walk.
struct Extractor {
  const SourceFile& file;
  const FunctionDef& def;
  const std::map<std::string, std::string>& types;
  std::set<std::string> writer_vars;
  std::set<std::string> reader_vars;
  std::map<std::string, CountDef> count_defs;
  std::map<std::string, std::string> container_links;  // container → count
  std::vector<WireCountUse> unchecked;
  bool writes = false;
  bool reads = false;

  const std::vector<Token>& toks() const { return file.tokens; }

  /// Last identifier of the token range that is not a chain accessor —
  /// the best human label for the expression.
  std::string trailing_label(std::size_t begin, std::size_t end) const {
    static const std::set<std::string> kNoise = {
        "size", "has_value", "value", "data", "c_str", "empty", "get"};
    std::string out;
    for (std::size_t k = begin; k < end; ++k) {
      if (toks()[k].kind == TokKind::kIdent &&
          kNoise.count(toks()[k].text) == 0 &&
          canon_scalar(toks()[k].text).empty() && toks()[k].text != "std" &&
          toks()[k].text != "static_cast") {
        out = toks()[k].text;
      }
    }
    return out;
  }

  /// Scalar width of a put() argument: an explicit static_cast wins,
  /// else the trailing identifier's declared type, else "?".
  std::string put_type(std::size_t begin, std::size_t end) const {
    for (std::size_t k = begin; k < end; ++k) {
      if (is_ident(toks()[k], "static_cast") && k + 1 < end &&
          is_punct(toks()[k + 1], "<")) {
        for (std::size_t j = k + 2; j < end; ++j) {
          if (is_punct(toks()[j], ">")) break;
          const std::string c = canon_scalar(toks()[j].text);
          if (!c.empty()) return c;
        }
      }
    }
    const std::string label = trailing_label(begin, end);
    if (!label.empty()) {
      const auto it = types.find(label);
      if (it != types.end()) return it->second;
    }
    return "?";
  }

  /// The `name = <this get>` variable of the statement around token
  /// `op`, plus whether the statement routes through bounded_count.
  void reader_def(std::size_t stmt_start, std::size_t op, std::string* var,
                  bool* checked) const {
    std::size_t eq = 0;
    for (std::size_t k = stmt_start; k < op; ++k) {
      if (is_punct(toks()[k], "=")) eq = k;
    }
    if (eq > 0 && toks()[eq - 1].kind == TokKind::kIdent) {
      *var = toks()[eq - 1].text;
    }
    for (std::size_t k = stmt_start; k < toks().size(); ++k) {
      if (is_punct(toks()[k], ";")) break;
      if (is_ident(toks()[k], "bounded_count")) *checked = true;
    }
  }

  /// [begin, end) of a statement body after a control head: a braced
  /// block, or a single statement up to its top-level `;`. Returns the
  /// resume index via *resume.
  void body_range(std::size_t after_head, std::size_t limit,
                  std::size_t* body_begin, std::size_t* body_end,
                  std::size_t* resume) const {
    if (after_head < limit && is_punct(toks()[after_head], "{")) {
      *body_begin = after_head + 1;
      const std::size_t past = skip_balanced(toks(), after_head, "{", "}");
      *body_end = past > 0 ? past - 1 : after_head + 1;
      *resume = past;
      return;
    }
    *body_begin = after_head;
    int paren = 0;
    int brace = 0;
    std::size_t k = after_head;
    for (; k < limit; ++k) {
      if (is_punct(toks()[k], "(")) ++paren;
      if (is_punct(toks()[k], ")")) --paren;
      if (is_punct(toks()[k], "{")) ++brace;
      if (is_punct(toks()[k], "}")) --brace;
      if (is_punct(toks()[k], ";") && paren == 0 && brace <= 0) break;
    }
    *body_end = k;
    *resume = k < limit ? k + 1 : limit;
  }

  /// Marks count variables compared against anything inside an if
  /// condition as bounds-checked (`if (n > r.remaining()) throw ...`).
  void mark_condition_checks(std::size_t begin, std::size_t end) {
    bool relational = false;
    for (std::size_t k = begin; k < end; ++k) {
      if (toks()[k].kind == TokKind::kPunct &&
          (toks()[k].text == "<" || toks()[k].text == ">" ||
           toks()[k].text == "<=" || toks()[k].text == ">=" ||
           toks()[k].text == "==" || toks()[k].text == "!=")) {
        relational = true;
      }
    }
    if (!relational) return;
    // Only occurrences at the condition's top parenthesis depth count —
    // a var buried in call arguments (`if (fread(&n, ...) != 1)`) is
    // being read there, not bounded.
    int depth = 0;
    for (std::size_t k = begin; k < end; ++k) {
      if (is_punct(toks()[k], "(")) ++depth;
      if (is_punct(toks()[k], ")")) --depth;
      if (depth > 0 || toks()[k].kind != TokKind::kIdent) continue;
      const auto it = count_defs.find(toks()[k].text);
      if (it != count_defs.end()) it->second.checked = true;
    }
  }

  void record_unchecked(const std::string& var, const char* use,
                        std::size_t line) {
    const auto it = count_defs.find(var);
    if (it == count_defs.end() || it->second.checked) return;
    unchecked.push_back({def.id, var, it->second.source, use, file.path, line,
                         it->second.def_line});
  }

  WireField scalar(std::size_t line, std::string type, std::string label) {
    WireField f;
    f.kind = WireKind::kScalar;
    f.type = std::move(type);
    f.label = std::move(label);
    f.origin = def.id;
    f.file = file.path;
    f.line = line;
    return f;
  }

  std::vector<WireField> parse_region(std::size_t begin, std::size_t end);
};

std::vector<WireField> Extractor::parse_region(std::size_t begin,
                                               std::size_t end) {
  std::vector<WireField> out;
  const std::vector<Token>& t = toks();
  std::size_t stmt_start = begin;
  std::size_t k = begin;
  while (k < end) {
    const Token& tok = t[k];
    if (is_punct(tok, ";") || is_punct(tok, "{") || is_punct(tok, "}")) {
      stmt_start = k + 1;
      ++k;
      continue;
    }
    if (tok.kind != TokKind::kIdent) {
      ++k;
      continue;
    }

    // Local ByteWriter/ByteReader declarations extend the tracked sets.
    if ((tok.text == "ByteWriter" || tok.text == "ByteReader") &&
        k + 1 < end && t[k + 1].kind == TokKind::kIdent) {
      (tok.text == "ByteWriter" ? writer_vars : reader_vars)
          .insert(t[k + 1].text);
      k += 2;
      continue;
    }

    // ---- control structure: loops become repeated groups ----
    if ((tok.text == "for" || tok.text == "while") && k + 1 < end &&
        is_punct(t[k + 1], "(")) {
      const std::size_t head_open = k + 1;
      const std::size_t head_past = skip_balanced(t, head_open, "(", ")");
      // Range-for container, or counted-loop bound variable.
      std::string container;
      std::string bound;
      std::size_t colon = 0;
      int depth = 0;
      for (std::size_t m = head_open; m < head_past; ++m) {
        if (is_punct(t[m], "(")) ++depth;
        if (is_punct(t[m], ")")) --depth;
        if (depth == 1 && is_punct(t[m], ":")) colon = m;
      }
      if (colon != 0) {
        for (std::size_t m = head_past - 2; m > colon; --m) {
          if (t[m].kind == TokKind::kIdent) {
            container = t[m].text;
            break;
          }
        }
      } else {
        // Condition segment: between the first two top-level `;` for a
        // for, the whole head for a while.
        std::size_t c_begin = head_open + 1;
        std::size_t c_end = head_past - 1;
        if (tok.text == "for") {
          depth = 0;
          std::vector<std::size_t> semis;
          for (std::size_t m = head_open; m < head_past; ++m) {
            if (is_punct(t[m], "(")) ++depth;
            if (is_punct(t[m], ")")) --depth;
            if (depth == 1 && is_punct(t[m], ";")) semis.push_back(m);
          }
          if (semis.size() >= 2) {
            c_begin = semis[0] + 1;
            c_end = semis[1];
          }
        }
        for (std::size_t m = c_begin; m < c_end; ++m) {
          if (t[m].kind == TokKind::kIdent && !is_ident(t[m], "size")) {
            bound = t[m].text;
          }
          // `i < x.size()` bounds on the container, not on a raw count.
          if (is_ident(t[m], "size") && m >= 2 &&
              (is_punct(t[m - 1], ".") || is_punct(t[m - 1], "->"))) {
            bound.clear();
            break;
          }
        }
        if (!bound.empty()) record_unchecked(bound, "loop", tok.line);
      }
      std::size_t body_begin = 0;
      std::size_t body_end = 0;
      std::size_t resume = 0;
      body_range(head_past, end, &body_begin, &body_end, &resume);
      std::vector<WireField> children = parse_region(body_begin, body_end);
      if (!children.empty()) {
        WireField group;
        group.kind = WireKind::kGroup;
        group.label = !container.empty() ? container : bound;
        group.origin = def.id;
        group.file = file.path;
        group.line = tok.line;
        group.children = std::move(children);
        out.push_back(std::move(group));
      }
      k = resume;
      stmt_start = k;
      continue;
    }

    // ---- if: condition gets are unconditional fields, a body with
    // wire ops is an optional segment ----
    if (tok.text == "if" && k + 1 < end && is_punct(t[k + 1], "(")) {
      const std::size_t cond_open = k + 1;
      const std::size_t cond_past = skip_balanced(t, cond_open, "(", ")");
      std::vector<WireField> cond_fields =
          parse_region(cond_open + 1, cond_past - 1);
      for (WireField& f : cond_fields) out.push_back(std::move(f));
      mark_condition_checks(cond_open + 1, cond_past - 1);
      std::size_t body_begin = 0;
      std::size_t body_end = 0;
      std::size_t resume = 0;
      body_range(cond_past, end, &body_begin, &body_end, &resume);
      std::vector<WireField> children = parse_region(body_begin, body_end);
      if (!children.empty()) {
        WireField opt;
        opt.kind = WireKind::kOptional;
        opt.origin = def.id;
        opt.file = file.path;
        opt.line = tok.line;
        opt.children = std::move(children);
        out.push_back(std::move(opt));
      }
      k = resume;
      stmt_start = k;
      continue;
    }

    // ---- calls ----
    const bool member =
        k >= 2 && (is_punct(t[k - 1], ".") || is_punct(t[k - 1], "->")) &&
        t[k - 2].kind == TokKind::kIdent;
    const std::string receiver = member ? t[k - 2].text : "";

    // Writer ops.
    if (member && writer_vars.count(receiver) > 0 && k + 1 < end &&
        is_punct(t[k + 1], "(") &&
        (tok.text == "put" || tok.text == "put_string" ||
         tok.text == "put_bytes")) {
      const std::size_t args_past = skip_balanced(t, k + 1, "(", ")");
      WireField f = scalar(tok.line, "",
                           trailing_label(k + 2, args_past - 1));
      if (tok.text == "put") {
        f.type = put_type(k + 2, args_past - 1);
      } else {
        f.kind = tok.text == "put_string" ? WireKind::kString
                                          : WireKind::kBytes;
      }
      // A blob argument still consumes reader bytes inside it
      // (`w.put_bytes(x.serialize())` stays opaque), so skip the args.
      out.push_back(std::move(f));
      writes = true;
      k = args_past;
      continue;
    }

    // Reader ops.
    if (member && reader_vars.count(receiver) > 0 &&
        (tok.text == "get" || tok.text == "get_string" ||
         tok.text == "get_bytes")) {
      std::string type = "?";
      std::size_t past = k + 1;
      if (tok.text == "get" && k + 1 < end && is_punct(t[k + 1], "<")) {
        for (std::size_t m = k + 2; m < end; ++m) {
          if (is_punct(t[m], ">")) {
            past = m + 1;
            break;
          }
          const std::string c = canon_scalar(t[m].text);
          if (!c.empty()) type = c;
        }
      }
      if (past < end && is_punct(t[past], "(")) {
        past = skip_balanced(t, past, "(", ")");
      }
      WireField f = scalar(tok.line, type, "");
      if (tok.text != "get") {
        f.kind = tok.text == "get_string" ? WireKind::kString
                                          : WireKind::kBytes;
        f.type.clear();
      }
      std::string var;
      bool checked = false;
      reader_def(stmt_start, k, &var, &checked);
      if (!var.empty()) {
        f.label = var;
        if (tok.text == "get") {
          count_defs[var] = {checked, tok.line, "get"};
        }
      }
      out.push_back(std::move(f));
      reads = true;
      k = past;
      continue;
    }

    // bounded_count: scan its arguments normally so the inner get
    // emits; the surrounding statement marks the variable checked.
    if (member && tok.text == "bounded_count") {
      ++k;
      continue;
    }

    // Allocation-sized uses of wire counts.
    if (member && (tok.text == "resize" || tok.text == "reserve") &&
        k + 1 < end && is_punct(t[k + 1], "(")) {
      const std::size_t args_past = skip_balanced(t, k + 1, "(", ")");
      for (std::size_t m = k + 2; m + 1 < args_past; ++m) {
        if (t[m].kind != TokKind::kIdent) continue;
        if (count_defs.count(t[m].text) == 0) continue;
        container_links[receiver] = t[m].text;
        record_unchecked(t[m].text, tok.text == "resize" ? "resize"
                                                         : "reserve",
                         tok.line);
      }
      k = args_past;
      continue;
    }

    // fread(&count, ...) defines a wire count too (raw-FILE formats).
    if (tok.text == "fread" && k + 1 < end && is_punct(t[k + 1], "(")) {
      const std::size_t args_past = skip_balanced(t, k + 1, "(", ")");
      if (k + 2 < args_past && is_punct(t[k + 2], "&")) {
        std::string var;
        for (std::size_t m = k + 3; m < args_past; ++m) {
          if (is_punct(t[m], ",")) break;
          if (t[m].kind == TokKind::kIdent) var = t[m].text;
        }
        if (!var.empty() && count_defs.count(var) == 0) {
          count_defs[var] = {false, tok.line, "fread"};
        }
      }
      k = args_past;
      continue;
    }

    // A call passing the writer/reader straight through becomes a
    // nested-schema placeholder; expansion splices the callee in.
    if (k + 1 < end && is_punct(t[k + 1], "(") && tok.text != "if" &&
        tok.text != "for" && tok.text != "while" && tok.text != "switch" &&
        tok.text != "return" && tok.text != "catch") {
      const std::size_t args_past = skip_balanced(t, k + 1, "(", ")");
      bool passes_writer = false;
      bool passes_reader = false;
      // Only this call's own argument depth: a stream var inside a
      // nested call (`records.push_back(get_record(r))`) belongs to the
      // inner call, which the scan reaches on its own.
      int arg_depth = 1;
      for (std::size_t m = k + 2; m + 1 < args_past; ++m) {
        if (is_punct(t[m], "(")) ++arg_depth;
        if (is_punct(t[m], ")")) --arg_depth;
        if (arg_depth != 1 || t[m].kind != TokKind::kIdent) continue;
        const bool bare =
            (is_punct(t[m - 1], "(") || is_punct(t[m - 1], ",")) &&
            (is_punct(t[m + 1], ",") || is_punct(t[m + 1], ")"));
        if (!bare) continue;
        if (writer_vars.count(t[m].text) > 0) passes_writer = true;
        if (reader_vars.count(t[m].text) > 0) passes_reader = true;
      }
      if (passes_writer || passes_reader) {
        WireField f;
        f.kind = WireKind::kCall;
        f.call_name = tok.text;
        f.origin = def.id;
        f.file = file.path;
        f.line = tok.line;
        f.member_call = member;
        f.call_writes = passes_writer;
        // `A::B::name(` qualifier chain, innermost-first join.
        std::size_t q = k;
        while (q >= 2 && is_punct(t[q - 1], "::") &&
               t[q - 2].kind == TokKind::kIdent) {
          f.call_qualifier = f.call_qualifier.empty()
                                 ? t[q - 2].text
                                 : t[q - 2].text + "::" + f.call_qualifier;
          q -= 2;
        }
        (passes_writer ? writes : reads) = true;
        out.push_back(std::move(f));
        k = args_past;
        continue;
      }
      ++k;  // scan inside the argument list (gets nested in calls)
      continue;
    }

    ++k;
  }
  return out;
}

/// Writer/reader parameters spelled in the definition head (re-scanned
/// backwards from the body brace to the previous statement boundary).
void head_params(const SourceFile& file, const FunctionDef& def,
                 Extractor& ex, bool* has_writer, bool* has_reader) {
  const std::vector<Token>& t = file.tokens;
  std::size_t head_begin = 0;
  for (std::size_t k = def.body_begin; k > 0; --k) {
    const Token& tok = t[k - 1];
    if (is_punct(tok, ";") || is_punct(tok, "}") || is_punct(tok, "{")) {
      head_begin = k;
      break;
    }
  }
  for (std::size_t k = head_begin; k + 1 < def.body_begin; ++k) {
    if (t[k].kind != TokKind::kIdent ||
        (t[k].text != "ByteWriter" && t[k].text != "ByteReader")) {
      continue;
    }
    std::size_t j = k + 1;
    while (j < def.body_begin &&
           (is_punct(t[j], "&") || is_punct(t[j], "*"))) {
      ++j;
    }
    if (j >= def.body_begin || t[j].kind != TokKind::kIdent) continue;
    if (t[k].text == "ByteWriter") {
      ex.writer_vars.insert(t[j].text);
      *has_writer = true;
    } else {
      ex.reader_vars.insert(t[j].text);
      *has_reader = true;
    }
  }
}

/// The reader-name a writer-name pairs with under this repo's naming
/// conventions; "" when the name carries no serdes direction.
std::string paired_reader_name(const std::string& writer_name) {
  const auto map_prefix = [&](const char* from,
                              const char* to) -> std::string {
    const std::size_t n = std::strlen(from);
    if (writer_name.compare(0, n, from) == 0) {
      return to + writer_name.substr(n);
    }
    return "";
  };
  if (writer_name == "serialize") return "deserialize";
  std::string r = map_prefix("serialize_", "deserialize_");
  if (r.empty()) r = map_prefix("put_", "get_");
  if (r.empty()) r = map_prefix("write_", "read_");
  if (r.empty()) r = map_prefix("save_", "load_");
  return r;
}

std::string describe(const WireField& f) {
  switch (f.kind) {
    case WireKind::kScalar:
      return f.type + " scalar" +
             (f.label.empty() ? "" : " '" + f.label + "'");
    case WireKind::kString:
      return "string" + (f.label.empty() ? "" : " '" + f.label + "'");
    case WireKind::kBytes:
      return "length-prefixed blob";
    case WireKind::kGroup:
      return "repeated group" +
             (f.label.empty() ? "" : " ('" + f.label + "')");
    case WireKind::kOptional:
      return "optional segment";
    case WireKind::kCall:
      return "nested encoder call '" + f.call_name + "'";
  }
  return "?";
}

}  // namespace

WireModel WireModel::build(const std::vector<SourceFile>& files,
                           const CallGraph& graph,
                           const IncludeGraph& includes) {
  WireModel model;
  const std::map<std::string, std::string> types = build_type_table(files);
  model.version_consts_ = build_version_consts(files);

  std::map<std::string, const SourceFile*> by_path;
  for (const SourceFile& file : files) by_path[file.path] = &file;

  // 1. Extract per-definition field sequences and count uses.
  for (const FunctionDef& def : graph.functions()) {
    const auto fit = by_path.find(def.file);
    if (fit == by_path.end()) continue;
    Extractor ex{*fit->second, def, types};
    bool has_writer = false;
    bool has_reader = false;
    head_params(*fit->second, def, ex, &has_writer, &has_reader);
    std::vector<WireField> fields =
        ex.parse_region(def.body_begin + 1, def.body_end - 1);
    for (const WireCountUse& use : ex.unchecked) {
      model.unchecked_.push_back(use);
    }
    if (fields.empty()) continue;
    WireFn fn;
    fn.id = def.id;
    fn.name = def.name;
    fn.class_path = def.class_path;
    fn.tu_local = def.tu_local;
    fn.file = def.file;
    fn.line = def.line;
    fn.writes = ex.writes;
    fn.reads = ex.reads;
    fn.has_writer_param = has_writer;
    fn.has_reader_param = has_reader;
    fn.raw = std::move(fields);
    model.fns_.push_back(std::move(fn));
  }

  // 2. Expand nested-encoder placeholders through the call graph.
  std::map<std::string, std::size_t> by_id;
  for (std::size_t i = 0; i < model.fns_.size(); ++i) {
    // First definition wins (overloads share schemas in this codebase).
    by_id.emplace(model.fns_[i].id, i);
  }
  std::map<std::string, std::vector<std::size_t>> by_name;
  for (std::size_t i = 0; i < model.fns_.size(); ++i) {
    by_name[model.fns_[i].name].push_back(i);
  }

  std::set<std::string> expanding;
  std::map<std::string, std::vector<WireField>> memo;
  const std::function<std::vector<WireField>(const WireFn&)> expand_fn =
      [&](const WireFn& fn) -> std::vector<WireField> {
    const auto mit = memo.find(fn.id);
    if (mit != memo.end()) return mit->second;
    expanding.insert(fn.id);
    const std::function<std::vector<WireField>(
        const std::vector<WireField>&)>
        expand_fields =
            [&](const std::vector<WireField>& in) -> std::vector<WireField> {
      std::vector<WireField> out;
      for (const WireField& f : in) {
        if (f.kind == WireKind::kGroup || f.kind == WireKind::kOptional) {
          WireField copy = f;
          copy.children = expand_fields(f.children);
          out.push_back(std::move(copy));
          continue;
        }
        if (f.kind != WireKind::kCall) {
          out.push_back(f);
          continue;
        }
        // Resolve the callee: call graph first, then the unique wire
        // function with this name taking the right stream parameter
        // (covers `image.serialize(w)`, ambiguous to name resolution).
        const WireFn* target = nullptr;
        const std::string id =
            graph.resolve(f.call_name, f.call_qualifier, f.member_call,
                          f.file, fn.class_path, includes);
        if (!id.empty()) {
          const auto it = by_id.find(id);
          if (it != by_id.end()) target = &model.fns_[it->second];
        }
        if (target == nullptr) {
          const auto nit = by_name.find(f.call_name);
          if (nit != by_name.end()) {
            for (const std::size_t i : nit->second) {
              const WireFn& cand = model.fns_[i];
              if (f.call_writes ? !cand.has_writer_param
                                : !cand.has_reader_param) {
                continue;
              }
              if (target != nullptr) {
                target = nullptr;  // ambiguous — keep the placeholder
                break;
              }
              target = &cand;
            }
          }
        }
        if (target == nullptr || expanding.count(target->id) > 0) {
          out.push_back(f);  // unresolved or recursive: keep as kCall
          continue;
        }
        std::vector<WireField> spliced = expand_fn(*target);
        for (WireField& s : spliced) out.push_back(std::move(s));
      }
      return out;
    };
    std::vector<WireField> expanded = expand_fields(fn.raw);
    expanding.erase(fn.id);
    memo[fn.id] = expanded;
    return expanded;
  };
  for (WireFn& fn : model.fns_) fn.expanded = expand_fn(fn);

  // 3. Pair writers with readers: same class, then same file, then the
  // unique corpus-wide candidate under the naming conventions.
  std::map<std::string, std::vector<std::size_t>> readers_by_name;
  for (std::size_t i = 0; i < model.fns_.size(); ++i) {
    if (model.fns_[i].reads) readers_by_name[model.fns_[i].name].push_back(i);
  }
  for (std::size_t wi = 0; wi < model.fns_.size(); ++wi) {
    const WireFn& w = model.fns_[wi];
    if (!w.writes) continue;
    const std::string rname = paired_reader_name(w.name);
    if (rname.empty()) continue;
    const auto rit = readers_by_name.find(rname);
    if (rit == readers_by_name.end()) continue;
    const std::vector<std::size_t>& cands = rit->second;
    const auto pick = [&](auto&& pred) -> std::size_t {
      std::size_t found = model.fns_.size();
      for (const std::size_t ri : cands) {
        if (ri == wi || !pred(model.fns_[ri])) continue;
        if (found != model.fns_.size()) return model.fns_.size();  // ambiguous
        found = ri;
      }
      return found;
    };
    std::size_t ri = pick([&](const WireFn& r) {
      return !w.class_path.empty() && r.class_path == w.class_path &&
             r.file == w.file;
    });
    if (ri == model.fns_.size()) {
      ri = pick([&](const WireFn& r) {
        return !w.class_path.empty() && r.class_path == w.class_path;
      });
    }
    if (ri == model.fns_.size()) {
      ri = pick([&](const WireFn& r) { return r.file == w.file; });
    }
    if (ri == model.fns_.size()) {
      ri = pick([](const WireFn&) { return true; });
    }
    if (ri == model.fns_.size()) continue;
    model.pairs_.push_back({wi, ri});
    model.pair_ids_.emplace(w.id, model.fns_[ri].id);
  }
  return model;
}

std::string WireModel::signature(const std::vector<WireField>& fields) {
  std::string out;
  for (const WireField& f : fields) {
    if (!out.empty()) out += " ";
    switch (f.kind) {
      case WireKind::kScalar: out += f.type; break;
      case WireKind::kString: out += "str"; break;
      case WireKind::kBytes: out += "bytes"; break;
      case WireKind::kGroup:
        out += "rep{" + signature(f.children) + "}";
        break;
      case WireKind::kOptional:
        out += "opt{" + signature(f.children) + "}";
        break;
      case WireKind::kCall: out += "call:" + f.call_name; break;
    }
  }
  return out;
}

std::vector<SchemaEntry> WireModel::entries() const {
  std::vector<SchemaEntry> out;
  for (const WirePair& pair : pairs_) {
    const WireFn& w = fns_[pair.writer];
    const WireFn& r = fns_[pair.reader];
    SchemaEntry entry;
    entry.format = w.id;
    entry.writer_id = w.id;
    entry.reader_id = r.id;
    entry.file = w.file;
    const auto vit = version_consts_.find(w.file);
    entry.version = vit != version_consts_.end() ? vit->second : "";
    entry.writer_schema = signature(w.expanded);
    entry.reader_schema = signature(r.expanded);
    out.push_back(std::move(entry));
  }
  std::sort(out.begin(), out.end(),
            [](const SchemaEntry& a, const SchemaEntry& b) {
              return a.format < b.format;
            });
  return out;
}

WireMismatch WireModel::compare_pair(const WirePair& pair) const {
  const WireFn& wfn = fns_[pair.writer];
  const WireFn& rfn = fns_[pair.reader];
  WireMismatch result;

  const auto fill = [&](const WireField* wf, const WireField* rf,
                        const std::string& why) {
    result.mismatch = true;
    const std::string wdesc =
        wf != nullptr
            ? describe(*wf) + " (" + wf->file + ":" + std::to_string(wf->line) +
                  ")"
            : "nothing (sequence ends)";
    const std::string rdesc =
        rf != nullptr
            ? describe(*rf) + " (" + rf->file + ":" + std::to_string(rf->line) +
                  ")"
            : "nothing (sequence ends)";
    result.detail = "writer " + wfn.id + " puts " + wdesc + " where reader " +
                    rfn.id + " expects " + rdesc +
                    (why.empty() ? "" : " — " + why);
    if (wf != nullptr) {
      result.writer_file = wf->file;
      result.writer_line = wf->line;
    } else {
      result.writer_file = wfn.file;
      result.writer_line = wfn.line;
    }
    if (rf != nullptr) {
      result.reader_file = rf->file;
      result.reader_line = rf->line;
    } else {
      result.reader_file = rfn.file;
      result.reader_line = rfn.line;
    }
    // A divergence entirely inside a nested helper pair is that pair's
    // finding, not this root's.
    if (wf != nullptr && rf != nullptr && wf->origin != wfn.id &&
        rf->origin != rfn.id &&
        pair_ids_.count({wf->origin, rf->origin}) > 0) {
      result.suppressed = true;
    }
  };

  const std::function<bool(std::vector<const WireField*>,
                           std::vector<const WireField*>)>
      compare_seq = [&](std::vector<const WireField*> ws,
                        std::vector<const WireField*> rs) -> bool {
    const auto ptrs = [](const std::vector<WireField>& v) {
      std::vector<const WireField*> out;
      for (const WireField& f : v) out.push_back(&f);
      return out;
    };
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < ws.size() || j < rs.size()) {
      if (i == ws.size()) {
        fill(nullptr, rs[j], "the writer's sequence ends here");
        return false;
      }
      if (j == rs.size()) {
        fill(ws[i], nullptr, "the reader's sequence ends here");
        return false;
      }
      const WireField& wf = *ws[i];
      const WireField& rf = *rs[j];
      if (wf.kind == WireKind::kOptional && rf.kind == WireKind::kOptional) {
        if (!compare_seq(ptrs(wf.children), ptrs(rf.children))) return false;
        ++i;
        ++j;
        continue;
      }
      // One-sided optional: the gated fields may be spelled
      // unconditionally on the other side (version-gated reads of a
      // field every current writer emits). Splice and retry.
      if (wf.kind == WireKind::kOptional) {
        std::vector<const WireField*> spliced(ws.begin(),
                                              ws.begin() + i);
        for (const WireField& c : wf.children) spliced.push_back(&c);
        spliced.insert(spliced.end(), ws.begin() + i + 1, ws.end());
        ws = std::move(spliced);
        continue;
      }
      if (rf.kind == WireKind::kOptional) {
        std::vector<const WireField*> spliced(rs.begin(),
                                              rs.begin() + j);
        for (const WireField& c : rf.children) spliced.push_back(&c);
        spliced.insert(spliced.end(), rs.begin() + j + 1, rs.end());
        rs = std::move(spliced);
        continue;
      }
      if (wf.kind != rf.kind) {
        fill(&wf, &rf, "field kinds differ");
        return false;
      }
      if (wf.kind == WireKind::kGroup) {
        if (!compare_seq(ptrs(wf.children), ptrs(rf.children))) return false;
      } else if (wf.kind == WireKind::kScalar) {
        if (wf.type != rf.type && wf.type != "?" && rf.type != "?") {
          fill(&wf, &rf, "scalar widths differ");
          return false;
        }
      }
      ++i;
      ++j;
    }
    return true;
  };

  std::vector<const WireField*> ws;
  for (const WireField& f : wfn.expanded) ws.push_back(&f);
  std::vector<const WireField*> rs;
  for (const WireField& f : rfn.expanded) rs.push_back(&f);
  compare_seq(std::move(ws), std::move(rs));
  return result;
}

namespace {

/// `"key": "..."` extraction mirroring the baseline parser (one object
/// per line, json_escape encoding).
std::string extract_string(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  std::size_t at = line.find(needle);
  if (at == std::string::npos) return "";
  at += needle.size();
  while (at < line.size() && (line[at] == ' ' || line[at] == '\t')) ++at;
  if (at >= line.size() || line[at] != '"') return "";
  ++at;
  std::string out;
  while (at < line.size()) {
    const char c = line[at];
    if (c == '"') break;
    if (c == '\\' && at + 1 < line.size()) {
      out += line[at + 1];
      at += 2;
      continue;
    }
    out += c;
    ++at;
  }
  return out;
}

}  // namespace

bool load_schemas(const std::string& path, std::vector<SchemaEntry>* out) {
  std::ifstream in(path);
  if (!in) return false;
  out->clear();
  std::string line;
  while (std::getline(in, line)) {
    SchemaEntry entry;
    entry.format = extract_string(line, "format");
    if (entry.format.empty()) continue;
    entry.writer_id = extract_string(line, "writer");
    entry.reader_id = extract_string(line, "reader");
    entry.file = extract_string(line, "file");
    entry.version = extract_string(line, "version");
    entry.writer_schema = extract_string(line, "writer_schema");
    entry.reader_schema = extract_string(line, "reader_schema");
    out->push_back(std::move(entry));
  }
  return true;
}

void write_schemas(std::FILE* out, const std::vector<SchemaEntry>& entries) {
  std::fprintf(out, "{\"schemas\": [");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const SchemaEntry& e = entries[i];
    std::fprintf(out,
                 "%s\n  {\"format\": \"%s\", \"writer\": \"%s\", "
                 "\"reader\": \"%s\", \"file\": \"%s\", \"version\": \"%s\", "
                 "\"writer_schema\": \"%s\", \"reader_schema\": \"%s\"}",
                 i == 0 ? "" : ",", json_escape(e.format).c_str(),
                 json_escape(e.writer_id).c_str(),
                 json_escape(e.reader_id).c_str(), json_escape(e.file).c_str(),
                 json_escape(e.version).c_str(),
                 json_escape(e.writer_schema).c_str(),
                 json_escape(e.reader_schema).c_str());
  }
  std::fprintf(out, "\n]}\n");
}

}  // namespace fr_analysis
