// Include-graph walker (DESIGN.md §11).
//
// Builds the quoted-include graph over the analyzed corpus and exposes
// per-file *visibility*: the transitive closure of repo files a
// translation unit sees. Cross-file passes use it to resolve symbols
// the way the compiler would — a `mutex_` acquired in thread_pool.cpp
// resolves against the declarations of thread_pool.h, not against
// every `mutex_` in the repo — which is exactly what single-file lints
// structurally cannot do. System includes (<...>) are outside the
// corpus and ignored.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/token.h"

namespace fr_analysis {

class IncludeGraph {
 public:
  /// Parses `#include "..."` directives from every file's token stream
  /// and resolves them against the corpus by path suffix (the repo
  /// convention is module-relative includes like "common/mutex.h").
  [[nodiscard]] static IncludeGraph build(const std::vector<SourceFile>& files);

  /// Direct quoted includes of `path` that resolved inside the corpus.
  [[nodiscard]] const std::vector<std::string>& includes_of(
      const std::string& path) const;

  /// Transitive closure of includes_of, *including `path` itself* —
  /// the set of corpus files whose declarations this TU can see.
  [[nodiscard]] const std::set<std::string>& visible_from(
      const std::string& path) const;

  [[nodiscard]] std::size_t edge_count() const noexcept { return edges_; }

 private:
  std::map<std::string, std::vector<std::string>> direct_;
  std::map<std::string, std::set<std::string>> visible_;
  std::size_t edges_ = 0;
};

}  // namespace fr_analysis
