#include "analysis/lock_graph.h"

#include <algorithm>
#include <functional>
#include <set>

namespace fr_analysis {

namespace {

bool is_punct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

bool is_lock_type(const Token& t) {
  return t.kind == TokKind::kIdent &&
         (t.text == "MutexLock" || t.text == "SharedLock");
}

}  // namespace

void LockWalker::assume_held(const std::string& id, std::size_t line) {
  active_.push_back({id, "", scopes_.depth(), line, true});
}

void LockWalker::advance(std::size_t k, std::vector<LockEdge>* edges) {
  const std::vector<Token>& toks = file_.tokens;
  const Token& t = toks[k];

  // --- Scoped-lock acquisition: MutexLock <var> ( <expr> ) -----------
  if (is_lock_type(t) && k + 2 < toks.size() &&
      toks[k + 1].kind == TokKind::kIdent && is_punct(toks[k + 2], "(")) {
    // Trailing identifier of the constructor argument names the lock
    // (qualified forms like pool_.mutex_ or fx::g_a resolve through
    // the symbol table).
    int depth = 0;
    std::string last_ident;
    std::string expr;
    for (std::size_t m = k + 2; m < toks.size(); ++m) {
      if (is_punct(toks[m], "(")) {
        ++depth;
        if (depth == 1) continue;
      }
      if (is_punct(toks[m], ")")) {
        --depth;
        if (depth == 0) break;
      }
      if (toks[m].kind == TokKind::kIdent) last_ident = toks[m].text;
      expr += toks[m].text;
    }
    if (!last_ident.empty()) {
      std::string id = symbols_.resolve(last_ident, file_.path,
                                        scopes_.class_path(), includes_);
      if (id.empty()) {
        // Unresolvable: a file-local identity keeps the acquisition
        // tracked without merging unrelated locks across files.
        id = file_.path + "::<" + expr + ">";
      }
      if (edges != nullptr) {
        for (const ActiveLock& held : active_) {
          if (!held.held || held.id == id) continue;
          edges->push_back({held.id, id, file_.path, held.line, t.line});
        }
      }
      active_.push_back(
          {std::move(id), toks[k + 1].text, scopes_.depth(), t.line, true});
    }
  }

  // --- Explicit <var>.unlock() / <var>.lock() on a scoped lock -------
  if (t.kind == TokKind::kIdent && k + 3 < toks.size() &&
      is_punct(toks[k + 1], ".") && toks[k + 2].kind == TokKind::kIdent &&
      (toks[k + 2].text == "unlock" || toks[k + 2].text == "lock") &&
      is_punct(toks[k + 3], "(")) {
    for (auto it = active_.rbegin(); it != active_.rend(); ++it) {
      if (it->var == t.text) {
        it->held = toks[k + 2].text == "lock";
        if (it->held) it->line = t.line;
        break;
      }
    }
  }

  scopes_.advance(t);
  if (is_punct(t, "}")) {
    std::erase_if(active_, [&](const ActiveLock& lock) {
      return lock.depth > scopes_.depth();
    });
  }
}

LockGraph LockGraph::build(const std::vector<SourceFile>& files,
                           const SymbolTable& symbols,
                           const IncludeGraph& includes) {
  LockGraph graph;
  for (const SourceFile& file : files) {
    LockWalker walker(file, symbols, includes);
    for (std::size_t k = 0; k < file.tokens.size(); ++k) {
      walker.advance(k, &graph.edges_);
    }
  }
  graph.index_edges();
  return graph;
}

LockGraph LockGraph::from_edges(std::vector<LockEdge> edges) {
  LockGraph graph;
  graph.edges_ = std::move(edges);
  graph.index_edges();
  return graph;
}

void LockGraph::index_edges() {
  for (std::size_t e = 0; e < edges_.size(); ++e) {
    adjacency_[edges_[e].from].push_back(e);
  }
}

std::vector<LockCycle> LockGraph::find_cycles() const {
  std::vector<LockCycle> cycles;
  std::set<std::string> reported;  // canonical node sequences
  constexpr std::size_t kMaxCycles = 100;

  std::vector<std::string> nodes;
  nodes.reserve(adjacency_.size());
  for (const auto& [node, _] : adjacency_) nodes.push_back(node);
  // std::map iteration is already sorted; keep the invariant explicit.
  std::sort(nodes.begin(), nodes.end());

  for (const std::string& start : nodes) {
    // DFS visiting only nodes >= start, so each elementary cycle is
    // discovered exactly once, rooted at its smallest node.
    std::vector<std::size_t> path;  // edge indices
    std::set<std::string> on_path{start};

    const std::function<void(const std::string&)> dfs =
        [&](const std::string& u) {
          if (cycles.size() >= kMaxCycles) return;
          const auto it = adjacency_.find(u);
          if (it == adjacency_.end()) return;
          for (const std::size_t e : it->second) {
            const std::string& v = edges_[e].to;
            if (v < start) continue;
            if (v == start) {
              path.push_back(e);
              std::string canon;
              for (const std::size_t pe : path) canon += edges_[pe].from + ";";
              if (reported.insert(canon).second) {
                LockCycle cycle;
                for (const std::size_t pe : path) {
                  cycle.edges.push_back(edges_[pe]);
                }
                cycles.push_back(std::move(cycle));
              }
              path.pop_back();
              continue;
            }
            if (on_path.count(v) > 0) continue;
            path.push_back(e);
            on_path.insert(v);
            dfs(v);
            on_path.erase(v);
            path.pop_back();
          }
        };
    dfs(start);
  }
  return cycles;
}

}  // namespace fr_analysis
