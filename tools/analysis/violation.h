// Shared violation record + output formatting for fr_lint/fr_analyze.
//
// Both tools speak the same two formats: the human one on stderr
// (file:line: [rule] message) and, under --json, machine-readable
// records on stdout so scripts/check.sh and CI can diff violations
// instead of grepping stderr.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace fr_analysis {

struct Violation {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
  /// Line-insensitive identity used by the baseline diff: stable across
  /// unrelated edits to the same file (each pass composes it from the
  /// rule plus the names involved, never from line numbers). The
  /// explicit empty default keeps four-field aggregate initializers
  /// (fr_lint's rules, which fingerprint after the fact) warning-free.
  std::string fingerprint{};
};

inline std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Emits the violations as a JSON array of
/// {file,line,rule,message,fingerprint}.
inline void emit_json(std::FILE* out, const std::vector<Violation>& violations) {
  std::fprintf(out, "[");
  for (std::size_t i = 0; i < violations.size(); ++i) {
    const Violation& v = violations[i];
    std::fprintf(out,
                 "%s\n  {\"file\": \"%s\", \"line\": %zu, \"rule\": \"%s\", "
                 "\"message\": \"%s\", \"fingerprint\": \"%s\"}",
                 i == 0 ? "" : ",", json_escape(v.file).c_str(), v.line,
                 json_escape(v.rule).c_str(), json_escape(v.message).c_str(),
                 json_escape(v.fingerprint).c_str());
  }
  std::fprintf(out, "\n]\n");
}

inline void emit_text(std::FILE* out, const std::vector<Violation>& violations) {
  for (const Violation& v : violations) {
    std::fprintf(out, "%s:%zu: [%s] %s\n", v.file.c_str(), v.line,
                 v.rule.c_str(), v.message.c_str());
  }
}

/// Minimal SARIF 2.1.0 document (one run, one driver, one result per
/// violation) — enough for code-scanning UIs to ingest.
inline void emit_sarif(std::FILE* out, const std::string& tool_name,
                       const std::vector<Violation>& violations) {
  std::fprintf(out,
               "{\n"
               "  \"version\": \"2.1.0\",\n"
               "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
               "  \"runs\": [{\n"
               "    \"tool\": {\"driver\": {\"name\": \"%s\"}},\n"
               "    \"results\": [",
               json_escape(tool_name).c_str());
  for (std::size_t i = 0; i < violations.size(); ++i) {
    const Violation& v = violations[i];
    std::fprintf(out,
                 "%s\n      {\"ruleId\": \"%s\", "
                 "\"message\": {\"text\": \"%s\"}, "
                 "\"partialFingerprints\": {\"frAnalysis/v1\": \"%s\"}, "
                 "\"locations\": [{\"physicalLocation\": "
                 "{\"artifactLocation\": {\"uri\": \"%s\"}, "
                 "\"region\": {\"startLine\": %zu}}}]}",
                 i == 0 ? "" : ",", json_escape(v.rule).c_str(),
                 json_escape(v.message).c_str(),
                 json_escape(v.fingerprint).c_str(),
                 json_escape(v.file).c_str(), v.line == 0 ? std::size_t{1} : v.line);
  }
  std::fprintf(out,
               "\n    ]\n"
               "  }]\n"
               "}\n");
}

}  // namespace fr_analysis
