// Shared violation record + output formatting for fr_lint/fr_analyze.
//
// Both tools speak the same two formats: the human one on stderr
// (file:line: [rule] message) and, under --json, machine-readable
// records on stdout so scripts/check.sh and CI can diff violations
// instead of grepping stderr.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace fr_analysis {

struct Violation {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

inline std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Emits the violations as a JSON array of {file,line,rule,message}.
inline void emit_json(std::FILE* out, const std::vector<Violation>& violations) {
  std::fprintf(out, "[");
  for (std::size_t i = 0; i < violations.size(); ++i) {
    const Violation& v = violations[i];
    std::fprintf(out,
                 "%s\n  {\"file\": \"%s\", \"line\": %zu, \"rule\": \"%s\", "
                 "\"message\": \"%s\"}",
                 i == 0 ? "" : ",", json_escape(v.file).c_str(), v.line,
                 json_escape(v.rule).c_str(), json_escape(v.message).c_str());
  }
  std::fprintf(out, "\n]\n");
}

inline void emit_text(std::FILE* out, const std::vector<Violation>& violations) {
  for (const Violation& v : violations) {
    std::fprintf(out, "%s:%zu: [%s] %s\n", v.file.c_str(), v.line,
                 v.rule.c_str(), v.message.c_str());
  }
}

}  // namespace fr_analysis
