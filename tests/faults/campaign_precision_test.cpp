// Large randomized campaign asserting detector quality bounds across
// many seeds: every injected fault recalled, conviction precision above
// a floor, and repairs never regress a cluster.
#include <gtest/gtest.h>

#include "checker/checker.h"
#include "faults/injector.h"
#include "testing/fixtures.h"

namespace faultyrank {
namespace {

class CampaignPrecisionTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(CampaignPrecisionTest, RecallIsTotalAndRepairsConverge) {
  LustreCluster cluster = testing::make_populated_cluster(350, GetParam());
  FaultInjector injector(cluster, GetParam() * 17 + 3);
  const std::vector<GroundTruth> truths = injector.inject_campaign(6);

  CheckerConfig config;
  config.apply_repairs = true;
  config.verify_after_repair = true;
  const CheckerResult result = run_checker(cluster, config);

  // Recall: every injected fault shows up in the report.
  for (const GroundTruth& truth : truths) {
    EXPECT_TRUE(evaluate_report(result.report, truth).detected)
        << to_string(truth.scenario);
  }
  // Precision floor: every finding involves at least one injected
  // victim as an endpoint (convictions of a victim's stranded
  // counterpart are acceptable in ambiguous records — the repair plan
  // reconciles them — but findings about completely unrelated, healthy
  // regions would be false positives).
  for (const Finding& finding : result.report.findings) {
    bool involves_a_victim = false;
    for (const GroundTruth& truth : truths) {
      for (const Fid& fid : {truth.victim, truth.current}) {
        if (finding.convicted_object == fid || finding.source == fid ||
            finding.target == fid || finding.repair.target == fid ||
            finding.repair.value == fid) {
          involves_a_victim = true;
        }
      }
    }
    EXPECT_TRUE(involves_a_victim)
        << "finding about unrelated object: convicted="
        << finding.convicted_object.to_string() << " source="
        << finding.source.to_string() << " target="
        << finding.target.to_string() << " (" << finding.note << ")";
  }
  EXPECT_TRUE(result.verified_consistent);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CampaignPrecisionTest,
                         ::testing::Values(901, 902, 903, 904, 905, 906));

}  // namespace
}  // namespace faultyrank
