#include "faults/injector.h"

#include <gtest/gtest.h>

#include "aggregator/aggregator.h"
#include "scanner/scanner.h"
#include "testing/fixtures.h"

namespace faultyrank {
namespace {

UnifiedGraph scan_to_graph(const LustreCluster& cluster) {
  const ClusterScan scan = scan_cluster(cluster);
  return aggregate(scan.results).graph;
}

TEST(InjectorTest, DanglingSourcePropertyCorruptsEverySlot) {
  LustreCluster cluster = testing::make_populated_cluster(100, 31);
  FaultInjector injector(cluster, 7);
  const GroundTruth truth =
      injector.inject(Scenario::kDanglingSourceProperty);
  EXPECT_FALSE(truth.id_field);
  EXPECT_EQ(truth.victim, truth.current);
  const Inode* file = cluster.mdt().image.find_by_fid_raw(truth.victim);
  ASSERT_NE(file, nullptr);
  for (const auto& slot : file->lov_ea->stripes) {
    EXPECT_EQ(slot.stripe.seq, 0xdeadbeefULL);
  }
}

TEST(InjectorTest, DanglingTargetIdLeavesStaleReference) {
  LustreCluster cluster = testing::make_populated_cluster(100, 32);
  FaultInjector injector(cluster, 8);
  const GroundTruth truth = injector.inject(Scenario::kDanglingTargetId);
  EXPECT_TRUE(truth.id_field);
  EXPECT_NE(truth.victim, truth.current);
  // No object carries the original id; one carries the bogus id.
  bool original_exists = false;
  bool bogus_exists = false;
  for (const auto& ost : cluster.osts()) {
    if (ost.image.find_by_fid_raw(truth.victim)) original_exists = true;
    if (ost.image.find_by_fid_raw(truth.current)) bogus_exists = true;
  }
  EXPECT_FALSE(original_exists);
  EXPECT_TRUE(bogus_exists);
}

TEST(InjectorTest, UnreferencedNeighborPropsEmptiesDirectory) {
  LustreCluster cluster = testing::make_populated_cluster(100, 33);
  FaultInjector injector(cluster, 9);
  const GroundTruth truth =
      injector.inject(Scenario::kUnreferencedNeighborProps);
  const Inode* dir = cluster.mdt().image.find_by_fid_raw(truth.victim);
  ASSERT_NE(dir, nullptr);
  EXPECT_TRUE(dir->dirents.empty());
}

TEST(InjectorTest, DuplicateIdCreatesScanCollision) {
  LustreCluster cluster = testing::make_populated_cluster(100, 34);
  FaultInjector injector(cluster, 10);
  const GroundTruth truth = injector.inject(Scenario::kDoubleRefDuplicateId);
  const UnifiedGraph graph = scan_to_graph(cluster);
  const Gid shared = graph.vertices().lookup(truth.current);
  ASSERT_NE(shared, kInvalidGid);
  EXPECT_GT(graph.vertices().scan_count(shared), 1u);
}

TEST(InjectorTest, EveryScenarioBreaksTheGraph) {
  for (const Scenario scenario : kAllScenarios) {
    LustreCluster cluster = testing::make_populated_cluster(120, 35);
    FaultInjector injector(cluster, 11);
    const GroundTruth truth = injector.inject(scenario);
    EXPECT_EQ(category_of(truth.scenario), category_of(scenario));
    const UnifiedGraph graph = scan_to_graph(cluster);
    const bool has_unpaired = !graph.unpaired_edges().empty();
    bool has_collision = false;
    for (Gid v = 0; v < graph.vertex_count(); ++v) {
      if (graph.vertices().scan_count(v) > 1) has_collision = true;
    }
    bool has_over_reference = false;
    for (Gid v = 0; v < graph.vertex_count(); ++v) {
      std::size_t claims = 0;
      const Csr& rev = graph.reverse();
      for (auto s = rev.edges_begin(v); s < rev.edges_end(v); ++s) {
        if (rev.kind(s) == EdgeKind::kLovEa || rev.kind(s) == EdgeKind::kDirent) {
          ++claims;
        }
      }
      if (claims > 1) has_over_reference = true;
    }
    EXPECT_TRUE(has_unpaired || has_collision || has_over_reference)
        << to_string(scenario);
  }
}

TEST(InjectorTest, CampaignUsesDistinctVictims) {
  LustreCluster cluster = testing::make_populated_cluster(300, 36);
  FaultInjector injector(cluster, 12);
  const std::vector<GroundTruth> truths = injector.inject_campaign(8);
  ASSERT_EQ(truths.size(), 8u);
  for (std::size_t i = 0; i < truths.size(); ++i) {
    for (std::size_t j = i + 1; j < truths.size(); ++j) {
      EXPECT_NE(truths[i].victim, truths[j].victim);
    }
  }
}

TEST(InjectorTest, ThrowsWhenNoEligibleVictim) {
  LustreCluster cluster(2);  // empty: only the root
  FaultInjector injector(cluster, 13);
  EXPECT_THROW(injector.inject(Scenario::kDanglingTargetId), InjectionError);
  EXPECT_THROW(injector.inject(Scenario::kUnreferencedNeighborProps),
               InjectionError);
}

TEST(InjectorTest, DeterministicForFixedSeed) {
  LustreCluster c1 = testing::make_populated_cluster(100, 37);
  LustreCluster c2 = testing::make_populated_cluster(100, 37);
  FaultInjector i1(c1, 14);
  FaultInjector i2(c2, 14);
  const GroundTruth t1 = i1.inject(Scenario::kMismatchSourceId);
  const GroundTruth t2 = i2.inject(Scenario::kMismatchSourceId);
  EXPECT_EQ(t1.victim, t2.victim);
  EXPECT_EQ(t1.current, t2.current);
}

TEST(InjectorTest, VerifyRestoredIsFalseRightAfterInjection) {
  for (const Scenario scenario : kAllScenarios) {
    LustreCluster cluster = testing::make_populated_cluster(120, 38);
    FaultInjector injector(cluster, 15);
    const GroundTruth truth = injector.inject(scenario);
    // The corrupted field is, by definition, not in its original state.
    // (Double-ref duplicate-property keeps the victim's id AND still
    // references... no: the original slot value was replaced.)
    EXPECT_FALSE(verify_restored(cluster, truth)) << to_string(scenario);
  }
}

TEST(InjectorTest, EvaluateReportScoresEmptyReportAsUndetected) {
  LustreCluster cluster = testing::make_populated_cluster(60, 39);
  FaultInjector injector(cluster, 16);
  const GroundTruth truth = injector.inject(Scenario::kDanglingTargetId);
  const DetectionReport empty;
  const EvalOutcome outcome = evaluate_report(empty, truth);
  EXPECT_FALSE(outcome.detected);
  EXPECT_FALSE(outcome.root_cause_identified);
}

}  // namespace
}  // namespace faultyrank
