// Randomized robustness campaigns: arbitrary raw EA corruption beyond
// the paper's eight curated scenarios. The checker must never crash,
// never corrupt healthy regions, and repairs must monotonically reduce
// the inconsistency count.
#include <gtest/gtest.h>

#include "aggregator/aggregator.h"
#include "checker/checker.h"
#include "common/random.h"
#include "faults/injector.h"
#include "pfs/persistence.h"
#include "scanner/scanner.h"
#include "testing/fixtures.h"

namespace faultyrank {
namespace {

/// Applies `count` random low-level corruptions: each picks a random
/// live MDT/OST inode and mangles a random metadata field.
void random_corruptions(LustreCluster& cluster, Rng& rng, int count) {
  for (int i = 0; i < count; ++i) {
    const bool on_mdt = rng.chance(0.6);
    LdiskfsImage& image =
        on_mdt ? cluster.mdt().image
               : cluster.ost(rng.below(cluster.osts().size())).image;
    // Pick a random live ino.
    if (image.inodes_in_use() == 0) continue;
    Inode* inode = nullptr;
    for (int tries = 0; tries < 64 && inode == nullptr; ++tries) {
      inode = image.find(1 + rng.below(image.inode_slots()));
    }
    if (inode == nullptr) continue;

    const Fid garbage{0xf0220000ULL + rng.below(1000),
                      static_cast<std::uint32_t>(rng.below(1u << 20)), 0};
    switch (rng.below(6)) {
      case 0:  // mangle a LOVEA slot
        if (inode->lov_ea.has_value() && !inode->lov_ea->stripes.empty()) {
          inode->lov_ea->stripes[rng.below(inode->lov_ea->stripes.size())]
              .stripe = garbage;
        }
        break;
      case 1:  // drop a LinkEA
        inode->link_ea.clear();
        break;
      case 2:  // mangle a dirent target
        if (!inode->dirents.empty()) {
          inode->dirents[rng.below(inode->dirents.size())].fid = garbage;
        }
        break;
      case 3:  // mangle the filter fid
        if (inode->filter_fid.has_value()) {
          inode->filter_fid->parent = garbage;
        }
        break;
      case 4:  // drop a dirent entry
        if (!inode->dirents.empty()) {
          inode->dirents.erase(inode->dirents.begin() +
                               static_cast<std::ptrdiff_t>(
                                   rng.below(inode->dirents.size())));
        }
        break;
      case 5:  // clear the layout entirely
        if (inode->lov_ea.has_value()) inode->lov_ea->stripes.clear();
        break;
    }
  }
}

std::size_t unpaired_count(const LustreCluster& cluster) {
  return aggregate(scan_cluster(cluster).results)
      .graph.unpaired_edges()
      .size();
}

class FuzzCampaignTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzCampaignTest, CheckerSurvivesAndImproves) {
  LustreCluster cluster = testing::make_populated_cluster(200, GetParam());
  Rng rng(GetParam() * 31 + 5);
  random_corruptions(cluster, rng, 12);

  const std::size_t broken_before = unpaired_count(cluster);

  CheckerConfig config;
  config.apply_repairs = true;
  const CheckerResult result = run_checker(cluster, config);
  EXPECT_EQ(result.unpaired_edges, broken_before);

  // Repairs must strictly reduce (or eliminate) inconsistency; they may
  // quarantine, but they must never create fresh damage.
  const std::size_t broken_after = unpaired_count(cluster);
  if (broken_before > 0) {
    EXPECT_LT(broken_after, broken_before);
  } else {
    EXPECT_EQ(broken_after, 0u);
  }

  // A second repair pass converges (no oscillation).
  const CheckerResult second = run_checker(cluster, config);
  const std::size_t broken_final = unpaired_count(cluster);
  EXPECT_LE(broken_final, broken_after);
  (void)second;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzCampaignTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12));

TEST(FuzzSafetyTest, HealthyRegionsAreNeverTouched) {
  LustreCluster cluster = testing::make_populated_cluster(200, 97);
  // Record a healthy file's full metadata before fault + repair.
  const Fid probe =
      cluster.create_file(cluster.root(), "probe.bin", 3 * 64 * 1024);
  const Inode before = *cluster.stat(probe);

  Rng rng(98);
  // Corrupt other objects only (the probe is protected by re-rolling).
  for (int i = 0; i < 8; ++i) {
    FaultInjector injector(cluster, rng());
    for (const Scenario scenario :
         {Scenario::kMismatchTargetProperty, Scenario::kDanglingTargetId}) {
      try {
        GroundTruth truth;
        do {
          truth = FaultInjector(cluster, rng()).inject(scenario);
        } while (truth.victim == probe || truth.current == probe);
        break;
      } catch (const InjectionError&) {
        break;
      }
    }
  }

  CheckerConfig config;
  config.apply_repairs = true;
  (void)run_checker(cluster, config);

  const Inode* after = cluster.stat(probe);
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->lma_fid, before.lma_fid);
  EXPECT_EQ(after->link_ea, before.link_ea);
  ASSERT_TRUE(after->lov_ea.has_value());
  EXPECT_EQ(after->lov_ea->stripes, before.lov_ea->stripes);
}

// Snapshot (de)serialization fuzzing: deserialize_cluster must reject
// malformed input with PersistenceError — never any other exception
// type, never a crash or out-of-bounds read (the sanitizer rows of the
// test matrix run these same cases under asan/ubsan).

TEST(SnapshotFuzzTest, TruncatedSnapshotsAlwaysThrow) {
  const LustreCluster cluster = testing::make_populated_cluster(64, 11, 3);
  const std::vector<std::uint8_t> bytes = serialize_cluster(cluster);
  ASSERT_GT(bytes.size(), 64u);

  // Parsing consumes exactly the serialized length, so every strict
  // prefix cuts mid-parse and must throw. Exhaust the header region,
  // then sample the tail.
  std::vector<std::size_t> cuts;
  for (std::size_t n = 0; n < 64; ++n) cuts.push_back(n);
  Rng rng(0xdeadbeef);
  for (int i = 0; i < 200; ++i) cuts.push_back(rng.below(bytes.size()));
  for (const std::size_t cut : cuts) {
    const std::vector<std::uint8_t> prefix(
        bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW((void)deserialize_cluster(prefix), PersistenceError)
        << "prefix of " << cut << " of " << bytes.size() << " bytes parsed";
  }
}

TEST(SnapshotFuzzTest, BitFlippedSnapshotsNeverEscalate) {
  const LustreCluster cluster = testing::make_populated_cluster(64, 12, 3);
  const std::vector<std::uint8_t> bytes = serialize_cluster(cluster);
  Rng rng(0xfeedface);

  int rejected = 0;
  for (int i = 0; i < 300; ++i) {
    std::vector<std::uint8_t> mutated = bytes;
    const int flips = 1 + static_cast<int>(rng.below(4));
    for (int f = 0; f < flips; ++f) {
      const std::size_t at = rng.below(mutated.size());
      mutated[at] ^= static_cast<std::uint8_t>(1u << rng.below(8));
    }
    // A flip in payload bytes (a filename char, a size field that stays
    // plausible) may still parse; a flip in structure must be rejected
    // with PersistenceError specifically. Anything else escapes and
    // fails the test.
    try {
      (void)deserialize_cluster(mutated);
    } catch (const PersistenceError&) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);
}

// Image-level fuzzing: the same guarantees hold for the per-image
// framing (serialize_image / deserialize_image), which the crash matrix
// and checkpoint loaders parse without the cluster envelope. The
// positional-ino invariant (slot k holds ino k+1) must be enforced at
// parse time — a flipped ino that slipped through would index the
// checker's bootstrap tables out of bounds.

TEST(ImageFuzzTest, TruncatedImagesAlwaysThrow) {
  const LustreCluster cluster = testing::make_populated_cluster(64, 13, 3);
  const std::vector<std::uint8_t> bytes =
      serialize_image(cluster.mdt().image);
  ASSERT_GT(bytes.size(), 32u);

  std::vector<std::size_t> cuts;
  for (std::size_t n = 0; n < 32; ++n) cuts.push_back(n);
  Rng rng(0xcafe5eed);
  for (int i = 0; i < 200; ++i) cuts.push_back(rng.below(bytes.size()));
  for (const std::size_t cut : cuts) {
    const std::vector<std::uint8_t> prefix(
        bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW((void)deserialize_image(prefix), PersistenceError)
        << "prefix of " << cut << " of " << bytes.size() << " bytes parsed";
  }
}

TEST(ImageFuzzTest, BitFlippedImagesNeverEscalate) {
  const LustreCluster cluster = testing::make_populated_cluster(64, 14, 3);
  for (std::size_t source = 0; source < 2; ++source) {
    const std::vector<std::uint8_t> bytes = serialize_image(
        source == 0 ? cluster.mdt().image : cluster.osts()[0].image);
    Rng rng(0xb17f11b5 + source);
    int rejected = 0;
    int parsed = 0;
    for (int i = 0; i < 300; ++i) {
      std::vector<std::uint8_t> mutated = bytes;
      const int flips = 1 + static_cast<int>(rng.below(4));
      for (int f = 0; f < flips; ++f) {
        const std::size_t at = rng.below(mutated.size());
        mutated[at] ^= static_cast<std::uint8_t>(1u << rng.below(8));
      }
      try {
        const LdiskfsImage image = deserialize_image(mutated);
        ++parsed;
        // Whatever parsed must uphold the positional-ino invariant the
        // loader promises to every downstream consumer.
        image.for_each_inode([&](const Inode& inode) {
          ASSERT_NE(image.find(inode.ino), nullptr);
          EXPECT_EQ(image.find(inode.ino)->ino, inode.ino);
        });
      } catch (const PersistenceError&) {
        ++rejected;
      }
    }
    EXPECT_GT(rejected, 0) << "source " << source;
    EXPECT_GT(parsed, 0) << "source " << source;
  }
}

TEST(ImageFuzzTest, MismatchedInoSlotIsRejected) {
  const LustreCluster cluster = testing::make_populated_cluster(32, 15, 2);
  LustreCluster copy =
      deserialize_cluster(serialize_cluster(cluster));
  // Forge an in-use inode whose recorded ino disagrees with its slot;
  // serialization preserves the lie, deserialization must refuse it.
  bool forged = false;
  copy.mdt().image.for_each_inode_mut([&](Inode& inode) {
    if (forged || inode.ino < 4) return;
    inode.ino += 1;
    forged = true;
  });
  ASSERT_TRUE(forged);
  const std::vector<std::uint8_t> bytes = serialize_image(copy.mdt().image);
  EXPECT_THROW((void)deserialize_image(bytes), PersistenceError);
}

}  // namespace
}  // namespace faultyrank
