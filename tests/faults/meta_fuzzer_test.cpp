// Structured metadata fuzzer invariants: the mutation sequence is a
// pure function of (cluster, seed), every applied mutation reports the
// FID set it disturbed, and FaultyRank repairs every fuzzed state back
// to consistency within the crash matrix's round budget.
#include <gtest/gtest.h>

#include "checker/convergence.h"
#include "faults/meta_fuzzer.h"
#include "online/online_checker.h"
#include "pfs/persistence.h"
#include "testing/fixtures.h"

namespace faultyrank {
namespace {

LustreCluster make_dne_cluster(std::uint64_t seed) {
  LustreCluster cluster(4, StripePolicy{64 * 1024, -1}, 2);
  NamespaceConfig config;
  config.file_count = 40;
  config.dir_ratio = 0.25;
  config.max_depth = 4;
  config.hardlink_ratio = 0.05;
  config.seed = seed;
  populate_namespace(cluster, config);
  return cluster;
}

TEST(MetaFuzzerTest, CampaignIsDeterministic) {
  LustreCluster first = make_dne_cluster(7);
  LustreCluster second = make_dne_cluster(7);
  const auto a = MetaFuzzer(first, 0xf022).campaign(12);
  const auto b = MetaFuzzer(second, 0xf022).campaign(12);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind) << i;
    EXPECT_EQ(a[i].description, b[i].description) << i;
    EXPECT_EQ(a[i].touched, b[i].touched) << i;
  }
  // Same mutations on identical clusters leave bit-identical images.
  EXPECT_EQ(serialize_cluster(first), serialize_cluster(second));
}

TEST(MetaFuzzerTest, DifferentSeedsDiverge) {
  LustreCluster first = make_dne_cluster(7);
  LustreCluster second = make_dne_cluster(7);
  (void)MetaFuzzer(first, 1).campaign(8);
  (void)MetaFuzzer(second, 2).campaign(8);
  EXPECT_NE(serialize_cluster(first), serialize_cluster(second));
}

TEST(MetaFuzzerTest, EveryAppliedMutationReportsTouchedFids) {
  for (const FuzzKind kind : kAllFuzzKinds) {
    LustreCluster cluster = make_dne_cluster(11);
    MetaFuzzer fuzzer(cluster, 0xbeef + static_cast<std::uint64_t>(kind));
    const auto record = fuzzer.mutate(kind);
    if (!record.has_value()) continue;  // no eligible victim is legal
    EXPECT_EQ(record->kind, kind);
    EXPECT_FALSE(record->description.empty()) << to_string(kind);
    EXPECT_FALSE(record->touched.empty())
        << to_string(kind) << ": a campaign cannot score false positives "
        << "against an empty ground-truth set";
  }
}

TEST(MetaFuzzerTest, FuzzedStatesConvergeUnderRepair) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    LustreCluster cluster = make_dne_cluster(23);
    MetaFuzzer fuzzer(cluster, seed * 1000003);
    const auto records = fuzzer.campaign(3);
    ASSERT_FALSE(records.empty()) << seed;
    OnlineChecker checker(cluster, {});
    checker.bootstrap();
    const ConvergenceResult result = repair_until_clean(cluster, checker, 6);
    EXPECT_TRUE(result.clean)
        << "seed " << seed << ": " << result.residual_findings
        << " residual finding(s) after " << result.repair_rounds
        << " round(s)";
  }
}

}  // namespace
}  // namespace faultyrank
