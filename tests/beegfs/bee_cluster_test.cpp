#include "beegfs/bee_cluster.h"

#include <gtest/gtest.h>

namespace faultyrank {
namespace {

TEST(BeeEntryIdTest, FidRoundTrip) {
  const Fid fids[] = {
      {kBeeMetaSeq, 1, 0},
      {kBeeMetaSeq, 0xffffffff, 0},
      {kBeeChunkSeqBase + 3, 42, 0},
  };
  for (const Fid& fid : fids) {
    const auto parsed = fid_from_entry_id(entry_id_from_fid(fid));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, fid);
  }
}

TEST(BeeEntryIdTest, RejectsGarbage) {
  EXPECT_FALSE(fid_from_entry_id("").has_value());
  EXPECT_FALSE(fid_from_entry_id("not-an-id").has_value());
  EXPECT_FALSE(fid_from_entry_id("12-34-xxx").has_value());
}

TEST(BeeClusterTest, ConstructionCreatesRoot) {
  BeeCluster cluster(4);
  EXPECT_FALSE(cluster.root().empty());
  EXPECT_NE(cluster.meta().find(cluster.root()), nullptr);
  EXPECT_EQ(cluster.meta_inodes_used(), 1u);
  EXPECT_THROW(BeeCluster(0), BeeClusterError);
}

TEST(BeeClusterTest, MkdirMaintainsDentryAndParentXattr) {
  BeeCluster cluster(2);
  const std::string dir = cluster.mkdir(cluster.root(), "projects");
  const BeeMetaInode* inode = cluster.meta().find(dir);
  ASSERT_NE(inode, nullptr);
  EXPECT_EQ(inode->parent_entry_id, cluster.root());
  EXPECT_EQ(inode->name, "projects");
  EXPECT_EQ(cluster.meta().dentries.at(cluster.root()).at("projects"), dir);
  EXPECT_THROW(cluster.mkdir(cluster.root(), "projects"), BeeClusterError);
}

TEST(BeeClusterTest, CreateFileAllocatesChunksWithOriginXattrs) {
  BeeCluster cluster(4, BeeStripePattern{512 * 1024, {}});
  const std::string file =
      cluster.create_file(cluster.root(), "data", 3 * 512 * 1024);
  const BeeMetaInode* inode = cluster.meta().find(file);
  ASSERT_TRUE(inode->pattern.has_value());
  ASSERT_EQ(inode->pattern->targets.size(), 3u);
  for (const std::uint32_t target : inode->pattern->targets) {
    bool found = false;
    for (const BeeChunkFile& chunk : cluster.targets()[target].chunks) {
      if (chunk.in_use && chunk.name == file) {
        EXPECT_EQ(chunk.xattr_origin, file);
        found = true;
      }
    }
    EXPECT_TRUE(found) << "target " << target;
  }
  EXPECT_EQ(cluster.total_chunks(), 3u);
}

TEST(BeeClusterTest, ChunkCountCappedByTargets) {
  BeeCluster cluster(2, BeeStripePattern{512 * 1024, {}});
  const std::string file =
      cluster.create_file(cluster.root(), "big", 100 * 512 * 1024);
  EXPECT_EQ(cluster.meta().find(file)->pattern->targets.size(), 2u);
}

TEST(BeeClusterTest, UnlinkFreesEntryAndChunks) {
  BeeCluster cluster(2);
  const std::string dir = cluster.mkdir(cluster.root(), "d");
  cluster.create_file(dir, "f", 1024 * 1024);
  EXPECT_GT(cluster.total_chunks(), 0u);
  cluster.unlink(dir, "f");
  EXPECT_EQ(cluster.total_chunks(), 0u);
  EXPECT_THROW(cluster.unlink(dir, "f"), BeeClusterError);
  cluster.unlink(cluster.root(), "d");
  EXPECT_EQ(cluster.meta_inodes_used(), 1u);
}

TEST(BeeClusterTest, NonEmptyDirectoryCannotBeUnlinked) {
  BeeCluster cluster(2);
  const std::string dir = cluster.mkdir(cluster.root(), "d");
  cluster.create_file(dir, "f", 1000);
  EXPECT_THROW(cluster.unlink(cluster.root(), "d"), BeeClusterError);
}

}  // namespace
}  // namespace faultyrank
