// Generality (paper §VI): the unchanged FaultyRank core — rank kernel,
// detector, categories, repair planning — operating on the BeeGFS
// substrate through its own scanner and repair executor.
#include "beegfs/bee_checker.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "graph/unified_graph.h"

namespace faultyrank {
namespace {

/// A small populated BeeGFS cluster.
BeeCluster make_cluster(std::uint64_t seed, std::size_t files = 120) {
  BeeCluster cluster(4);
  Rng rng(seed);
  std::vector<std::string> dirs = {cluster.root()};
  for (std::size_t i = 0; i < files / 8; ++i) {
    dirs.push_back(
        cluster.mkdir(dirs[rng.below(dirs.size())], "d" + std::to_string(i)));
  }
  for (std::size_t i = 0; i < files; ++i) {
    cluster.create_file(dirs[rng.below(dirs.size())],
                        "f" + std::to_string(i),
                        64 * 1024 + rng.below(3u << 20));
  }
  return cluster;
}

UnifiedGraph scan_to_graph(const BeeCluster& cluster) {
  const auto scans = scan_bee_cluster(cluster);
  std::vector<PartialGraph> partials;
  for (const auto& scan : scans) partials.push_back(scan.graph);
  return UnifiedGraph::aggregate(partials);
}

TEST(BeeScannerTest, HealthyClusterScansFullyPaired) {
  const BeeCluster cluster = make_cluster(81);
  const UnifiedGraph graph = scan_to_graph(cluster);
  EXPECT_GT(graph.vertex_count(), 0u);
  EXPECT_TRUE(graph.unpaired_edges().empty());
}

TEST(BeeScannerTest, VertexCountMatchesEntitiesPlusChunks) {
  const BeeCluster cluster = make_cluster(82);
  const UnifiedGraph graph = scan_to_graph(cluster);
  EXPECT_EQ(graph.vertex_count(),
            cluster.meta_inodes_used() + cluster.total_chunks());
}

TEST(BeeCheckerTest, HealthyClusterChecksConsistent) {
  BeeCluster cluster = make_cluster(83);
  const BeeCheckResult result = run_bee_checker(cluster);
  EXPECT_TRUE(result.report.consistent());
  EXPECT_EQ(result.unpaired_edges, 0u);
}

TEST(BeeCheckerTest, WipedDentriesDetectedAndRepaired) {
  // The S3 analogue: a directory's dentry files vanish.
  BeeCluster cluster = make_cluster(84);
  const std::string dir = cluster.mkdir(cluster.root(), "victim");
  const std::string f1 = cluster.create_file(dir, "a", 1 << 20);
  const std::string f2 = cluster.create_file(dir, "b", 1 << 20);
  cluster.meta().dentries[dir].clear();

  BeeCheckerConfig config;
  config.apply_repairs = true;
  config.verify_after_repair = true;
  const BeeCheckResult result = run_bee_checker(cluster, config);
  EXPECT_FALSE(result.report.consistent());
  EXPECT_TRUE(result.verified_consistent);
  EXPECT_EQ(cluster.meta().dentries[dir].size(), 2u);
  EXPECT_EQ(cluster.meta().dentries[dir]["a"], f1);
  EXPECT_EQ(cluster.meta().dentries[dir]["b"], f2);
}

TEST(BeeCheckerTest, CorruptedOriginXattrDetectedAndRepaired) {
  // The S7 analogue: a chunk's origin xattr goes bogus.
  BeeCluster cluster = make_cluster(85);
  const std::string file = cluster.create_file(cluster.root(), "x", 1 << 20);
  const std::uint32_t target = cluster.meta().find(file)->pattern->targets[0];
  for (BeeChunkFile& chunk : cluster.targets()[target].chunks) {
    if (chunk.in_use && chunk.name == file) {
      chunk.xattr_origin = "ffff-9999-bee";
      break;
    }
  }

  BeeCheckerConfig config;
  config.apply_repairs = true;
  config.verify_after_repair = true;
  const BeeCheckResult result = run_bee_checker(cluster, config);
  EXPECT_FALSE(result.report.consistent());
  EXPECT_TRUE(result.verified_consistent);
  for (const BeeChunkFile& chunk : cluster.targets()[target].chunks) {
    if (chunk.in_use && chunk.name == file) {
      EXPECT_EQ(chunk.xattr_origin, file);
    }
  }
}

TEST(BeeCheckerTest, RenamedChunkFileDetectedAndReidentified) {
  // The S2 analogue: a chunk file is renamed — its identity changes
  // while its origin xattr still points home.
  BeeCluster cluster = make_cluster(86);
  const std::string file = cluster.create_file(cluster.root(), "y", 1 << 20);
  const std::uint32_t target = cluster.meta().find(file)->pattern->targets[0];
  for (BeeChunkFile& chunk : cluster.targets()[target].chunks) {
    if (chunk.in_use && chunk.name == file) {
      chunk.name = entry_id_from_fid(Fid{kBeeMetaSeq, 0x7fffffff, 0});
      break;
    }
  }

  BeeCheckerConfig config;
  config.apply_repairs = true;
  config.verify_after_repair = true;
  const BeeCheckResult result = run_bee_checker(cluster, config);
  EXPECT_FALSE(result.report.consistent());
  EXPECT_TRUE(result.verified_consistent);
  bool renamed_back = false;
  for (const BeeChunkFile& chunk : cluster.targets()[target].chunks) {
    if (chunk.in_use && chunk.name == file) renamed_back = true;
  }
  EXPECT_TRUE(renamed_back);
}

TEST(BeeCheckerTest, MissingParentXattrRepairedFromDentry) {
  BeeCluster cluster = make_cluster(87);
  const std::string dir = cluster.mkdir(cluster.root(), "pdir");
  const std::string file = cluster.create_file(dir, "child", 1 << 20);
  cluster.meta().find(file)->parent_entry_id.clear();

  BeeCheckerConfig config;
  config.apply_repairs = true;
  config.verify_after_repair = true;
  const BeeCheckResult result = run_bee_checker(cluster, config);
  EXPECT_TRUE(result.verified_consistent);
  EXPECT_EQ(cluster.meta().find(file)->parent_entry_id, dir);
}

TEST(BeeCheckerTest, RepairsAreIdempotent) {
  BeeCluster cluster = make_cluster(88);
  const std::string file = cluster.create_file(cluster.root(), "z", 1 << 20);
  cluster.meta().find(file)->parent_entry_id = "dead-beef-bee";

  BeeCheckerConfig config;
  config.apply_repairs = true;
  config.verify_after_repair = true;
  const BeeCheckResult first = run_bee_checker(cluster, config);
  EXPECT_TRUE(first.verified_consistent);
  const BeeCheckResult second = run_bee_checker(cluster, config);
  EXPECT_TRUE(second.report.consistent());
  EXPECT_EQ(second.repairs_applied, 0u);
}

}  // namespace
}  // namespace faultyrank
