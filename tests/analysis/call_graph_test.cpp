// Cross-TU call-graph construction and resolution (analysis/call_graph.h):
// definition recognition from statement heads, the three-step lookup
// (class chain, visible files, unique corpus-wide), TU-local anonymous
// namespaces, and FR_REQUIRES extraction from definition heads.
#include "analysis/call_graph.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/include_graph.h"
#include "analysis/tokenizer.h"

namespace fr_analysis {
namespace {

struct Corpus {
  std::vector<SourceFile> files;
  IncludeGraph includes;
  CallGraph graph;
};

Corpus build(std::vector<std::pair<std::string, std::string>> sources) {
  Corpus corpus;
  for (auto& [path, text] : sources) {
    corpus.files.push_back(tokenize_text(path, text));
  }
  corpus.includes = IncludeGraph::build(corpus.files);
  corpus.graph = CallGraph::build(corpus.files, corpus.includes);
  return corpus;
}

const CallSite* find_call(const CallGraph& graph, const std::string& caller_id,
                          const std::string& name) {
  for (const FunctionDef& def : graph.functions()) {
    if (def.id != caller_id) continue;
    for (const CallSite& call : def.calls) {
      if (call.name == name) return &call;
    }
  }
  return nullptr;
}

TEST(CallGraphTest, ResolvesFreeFunctionThroughInclude) {
  const Corpus corpus = build({
      {"a.h", "inline void helper() {}\n"},
      {"a.cpp", "#include \"a.h\"\nvoid run() { helper(); }\n"},
  });
  const CallSite* call = find_call(corpus.graph, "run", "helper");
  ASSERT_NE(call, nullptr);
  EXPECT_EQ(call->callee_id, "helper");
}

TEST(CallGraphTest, MemberShadowsVisibleFreeFunction) {
  const Corpus corpus = build({
      {"shadow.cpp",
       "void helper() {}\n"
       "class Widget {\n"
       " public:\n"
       "  void helper() {}\n"
       "  void run() { helper(); }\n"
       "};\n"},
  });
  const CallSite* call = find_call(corpus.graph, "Widget::run", "helper");
  ASSERT_NE(call, nullptr);
  EXPECT_EQ(call->callee_id, "Widget::helper");
}

TEST(CallGraphTest, MethodCallResolvesThroughIncludeGraph) {
  const Corpus corpus = build({
      {"widget.h", "struct Widget {\n  void poke() {}\n};\n"},
      {"user.cpp",
       "#include \"widget.h\"\nvoid use(Widget& w) { w.poke(); }\n"},
  });
  const CallSite* call = find_call(corpus.graph, "use", "poke");
  ASSERT_NE(call, nullptr);
  EXPECT_TRUE(call->member_call);
  EXPECT_EQ(call->callee_id, "Widget::poke");
}

TEST(CallGraphTest, UniqueCorpusWideFallbackStandsInForDeclarations) {
  // impl.cpp is not included anywhere; the call still resolves because
  // the name has exactly one non-TU-local definition in the corpus.
  const Corpus corpus = build({
      {"impl.cpp", "void settle() {}\n"},
      {"caller.cpp", "void settle();\nvoid drive() { settle(); }\n"},
  });
  const CallSite* call = find_call(corpus.graph, "drive", "settle");
  ASSERT_NE(call, nullptr);
  EXPECT_EQ(call->callee_id, "settle");
}

TEST(CallGraphTest, AmbiguousNameDoesNotResolve) {
  const Corpus corpus = build({
      {"one.h", "struct A {\n  void tick() {}\n};\n"},
      {"two.h", "struct B {\n  void tick() {}\n};\n"},
      {"caller.cpp",
       "#include \"one.h\"\n#include \"two.h\"\n"
       "void drive(A& a) { a.tick(); }\n"},
  });
  const CallSite* call = find_call(corpus.graph, "drive", "tick");
  ASSERT_NE(call, nullptr);
  EXPECT_EQ(call->callee_id, "");
}

TEST(CallGraphTest, AnonymousNamespaceIsTuLocal) {
  const Corpus corpus = build({
      {"x.cpp",
       "namespace {\nvoid scrub() {}\n}\nvoid run_x() { scrub(); }\n"},
      {"y.cpp", "void run_y() { scrub(); }\n"},
  });
  // x.cpp resolves to its own TU-local definition.
  const CallSite* own = find_call(corpus.graph, "run_x", "scrub");
  ASSERT_NE(own, nullptr);
  EXPECT_EQ(own->callee_id, "x.cpp::scrub");
  // y.cpp cannot see it: TU-local definitions never leak.
  const CallSite* foreign = find_call(corpus.graph, "run_y", "scrub");
  ASSERT_NE(foreign, nullptr);
  EXPECT_EQ(foreign->callee_id, "");
}

TEST(CallGraphTest, InlineLambdaArgumentIsNotADefinition) {
  const Corpus corpus = build({
      {"lam.cpp",
       "struct Pool {\n  template <typename F> void submit(F&&) {}\n};\n"
       "void go(Pool& pool) {\n"
       "  pool.submit([&] {\n    int x = 1;\n  });\n"
       "}\n"},
  });
  for (const FunctionDef& def : corpus.graph.functions()) {
    EXPECT_NE(def.id, "submit") << "lambda-argument brace misread as a body";
  }
}

TEST(CallGraphTest, ExtractsRequiresArgsFromDefinitionHead) {
  const Corpus corpus = build({
      {"req.cpp",
       "int counter;\n"
       "void bump() FR_REQUIRES(g_mu) { counter = counter + 1; }\n"},
  });
  for (const FunctionDef& def : corpus.graph.functions()) {
    if (def.id != "bump") continue;
    ASSERT_EQ(def.requires_args.size(), 1u);
    EXPECT_EQ(def.requires_args[0], "g_mu");
    return;
  }
  FAIL() << "bump not recognized as a definition";
}

TEST(CallGraphTest, RecursionAndMutualRecursionGetResolved) {
  const Corpus corpus = build({
      {"rec.cpp",
       "void even(int n);\n"
       "void odd(int n) { even(n - 1); }\n"
       "void even(int n) { odd(n - 1); }\n"
       "void self(int n) { self(n - 1); }\n"},
  });
  EXPECT_EQ(find_call(corpus.graph, "odd", "even")->callee_id, "even");
  EXPECT_EQ(find_call(corpus.graph, "even", "odd")->callee_id, "odd");
  EXPECT_EQ(find_call(corpus.graph, "self", "self")->callee_id, "self");
}

TEST(CallGraphTest, EnclosingFindsInnermostBody) {
  const Corpus corpus = build({
      {"enc.cpp", "void outer() {\n  int x = 0;\n}\n"},
  });
  const FunctionDef* outer = nullptr;
  for (const FunctionDef& def : corpus.graph.functions()) {
    if (def.id == "outer") outer = &def;
  }
  ASSERT_NE(outer, nullptr);
  const FunctionDef* found =
      corpus.graph.enclosing("enc.cpp", outer->body_begin + 1);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->id, "outer");
  EXPECT_EQ(corpus.graph.enclosing("enc.cpp", 0), nullptr);
}

}  // namespace
}  // namespace fr_analysis
