// Wire-schema model (analysis/wire_schema.h): extraction of field
// sequences from put/get call sites, loop/branch modelling, nested-
// encoder expansion through the call graph, writer/reader pairing,
// symmetry comparison, unchecked-count tracking, and the schema
// fingerprint round-trip + drift semantics.
#include "analysis/wire_schema.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "analysis/passes.h"
#include "analysis/tokenizer.h"

namespace fr_analysis {
namespace {

struct TestCorpus {
  std::vector<SourceFile> files;
  IncludeGraph includes;
  CallGraph graph;
  WireModel wire;
};

TestCorpus analyze(
    const std::vector<std::pair<std::string, std::string>>& sources) {
  TestCorpus c;
  for (const auto& [path, text] : sources) {
    c.files.push_back(tokenize_text(path, text));
  }
  c.includes = IncludeGraph::build(c.files);
  c.graph = CallGraph::build(c.files, c.includes);
  c.wire = WireModel::build(c.files, c.graph, c.includes);
  return c;
}

constexpr const char* kSymmetricPair = R"(
constexpr std::uint32_t kTestVersion = 1;

void save_thing(ByteWriter& w, const std::vector<std::uint64_t>& ids,
                bool extra) {
  w.put(kTestVersion);
  w.put(static_cast<std::uint32_t>(ids.size()));
  for (const std::uint64_t id : ids) {
    w.put(id);
  }
  w.put(static_cast<std::uint8_t>(extra ? 1 : 0));
  if (extra) {
    w.put_string("x");
  }
}

void load_thing(ByteReader& r) {
  if (r.get<std::uint32_t>() != kTestVersion) {
    return;
  }
  const std::uint64_t n = r.bounded_count(r.get<std::uint32_t>(), 8);
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto v = r.get<std::uint64_t>();
    (void)v;
  }
  if (r.get<std::uint8_t>() != 0) {
    const auto s = r.get_string();
    (void)s;
  }
}
)";

TEST(WireSchemaTest, ExtractsLoopsBranchesAndPairsSymmetrically) {
  const TestCorpus c = analyze({{"a.cpp", kSymmetricPair}});
  ASSERT_EQ(c.wire.pairs().size(), 1u);
  const WirePair& pair = c.wire.pairs()[0];
  const WireFn& writer = c.wire.functions()[pair.writer];
  const WireFn& reader = c.wire.functions()[pair.reader];
  EXPECT_EQ(writer.name, "save_thing");
  EXPECT_EQ(reader.name, "load_thing");
  EXPECT_EQ(WireModel::signature(writer.expanded),
            "u32 u32 rep{u64} u8 opt{str}");
  EXPECT_EQ(WireModel::signature(reader.expanded),
            "u32 u32 rep{u64} u8 opt{str}");
  const WireMismatch m = c.wire.compare_pair(pair);
  EXPECT_FALSE(m.mismatch) << m.detail;
  // bounded_count + the explicit loop bound: no unchecked uses.
  EXPECT_TRUE(c.wire.unchecked_counts().empty());
  // The version constant of the writer's TU lands in the entry.
  const std::vector<SchemaEntry> entries = c.wire.entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].version, "kTestVersion=1");
}

TEST(WireSchemaTest, ScalarWidthMismatchCarriesBothWitnesses) {
  const TestCorpus c = analyze({{"a.cpp", R"(
void put_rec(ByteWriter& w) {
  w.put(static_cast<std::uint32_t>(1));
}
void get_rec(ByteReader& r) {
  const auto v = r.get<std::uint64_t>();
  (void)v;
}
)"}});
  ASSERT_EQ(c.wire.pairs().size(), 1u);
  const WireMismatch m = c.wire.compare_pair(c.wire.pairs()[0]);
  ASSERT_TRUE(m.mismatch);
  EXPECT_FALSE(m.suppressed);
  EXPECT_NE(m.detail.find("scalar widths differ"), std::string::npos)
      << m.detail;
  EXPECT_EQ(m.writer_file, "a.cpp");
  EXPECT_EQ(m.reader_file, "a.cpp");
  EXPECT_GT(m.writer_line, 0u);
  EXPECT_GT(m.reader_line, 0u);
}

TEST(WireSchemaTest, NestedEncodersInlineAndOwnTheirDivergence) {
  const TestCorpus c = analyze({{"a.cpp", R"(
void put_part(ByteWriter& w) {
  w.put(static_cast<std::uint16_t>(1));
}
void get_part(ByteReader& r) {
  const auto v = r.get<std::uint32_t>();
  (void)v;
}
void save_all(ByteWriter& w) {
  w.put(static_cast<std::uint8_t>(9));
  put_part(w);
}
void load_all(ByteReader& r) {
  const auto tag = r.get<std::uint8_t>();
  (void)tag;
  get_part(r);
}
)"}});
  ASSERT_EQ(c.wire.pairs().size(), 2u);
  std::size_t suppressed = 0;
  std::size_t reported = 0;
  for (const WirePair& pair : c.wire.pairs()) {
    const WireMismatch m = c.wire.compare_pair(pair);
    ASSERT_TRUE(m.mismatch) << "helper fields must splice into the root";
    if (m.suppressed) {
      ++suppressed;
    } else {
      ++reported;
      EXPECT_EQ(c.wire.functions()[pair.writer].name, "put_part")
          << "the divergence belongs to the helper pair";
    }
  }
  EXPECT_EQ(reported, 1u);
  EXPECT_EQ(suppressed, 1u) << "the root inherits but does not re-report";
}

TEST(WireSchemaTest, OneSidedOptionalSplicesAgainstPlainFields) {
  // FRCP's epoch shape: the writer always emits the field, the reader
  // version-gates it.
  const TestCorpus c = analyze({{"a.cpp", R"(
void save_epoch(ByteWriter& w) {
  w.put(static_cast<std::uint32_t>(2));
  w.put(static_cast<std::uint64_t>(77));
  w.put(static_cast<std::uint8_t>(0));
}
void load_epoch(ByteReader& r) {
  const auto version = r.get<std::uint32_t>();
  if (version >= 2) {
    const auto epoch = r.get<std::uint64_t>();
    (void)epoch;
  }
  const auto flag = r.get<std::uint8_t>();
  (void)flag;
}
)"}});
  ASSERT_EQ(c.wire.pairs().size(), 1u);
  const WireMismatch m = c.wire.compare_pair(c.wire.pairs()[0]);
  EXPECT_FALSE(m.mismatch) << m.detail;
}

TEST(WireSchemaTest, TracksUncheckedWireCounts) {
  const TestCorpus c = analyze({{"a.cpp", R"(
void load_bad(ByteReader& r, std::vector<std::uint64_t>& out) {
  const auto n = r.get<std::uint32_t>();
  out.resize(n);
}
void load_good(ByteReader& r, std::vector<std::uint64_t>& out) {
  const std::uint64_t n2 = r.bounded_count(r.get<std::uint32_t>(), 8);
  out.resize(n2);
  const auto m = r.get<std::uint32_t>();
  if (m > r.remaining()) {
    return;
  }
  out.reserve(m);
}
)"}});
  ASSERT_EQ(c.wire.unchecked_counts().size(), 1u);
  const WireCountUse& use = c.wire.unchecked_counts()[0];
  EXPECT_EQ(use.var, "n");
  EXPECT_EQ(use.use, "resize");
  EXPECT_EQ(use.source, "get");
}

TEST(WireSchemaTest, SchemasRoundTripThroughDisk) {
  const TestCorpus c = analyze({{"a.cpp", kSymmetricPair}});
  const std::vector<SchemaEntry> entries = c.wire.entries();
  ASSERT_EQ(entries.size(), 1u);

  const std::string path = ::testing::TempDir() + "fr_wire_schemas.json";
  std::FILE* out = std::fopen(path.c_str(), "w");
  ASSERT_NE(out, nullptr);
  write_schemas(out, entries);
  std::fclose(out);

  std::vector<SchemaEntry> loaded;
  ASSERT_TRUE(load_schemas(path, &loaded));
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].format, entries[0].format);
  EXPECT_EQ(loaded[0].writer_id, entries[0].writer_id);
  EXPECT_EQ(loaded[0].reader_id, entries[0].reader_id);
  EXPECT_EQ(loaded[0].version, entries[0].version);
  EXPECT_EQ(loaded[0].writer_schema, entries[0].writer_schema);
  EXPECT_EQ(loaded[0].reader_schema, entries[0].reader_schema);
  std::remove(path.c_str());
}

TEST(WireSchemaTest, DriftPassRejectsUnbumpedSchemaChange) {
  const TestCorpus c = analyze({{"a.cpp", kSymmetricPair}});
  std::vector<SchemaEntry> committed = c.wire.entries();
  ASSERT_EQ(committed.size(), 1u);

  const std::string path = ::testing::TempDir() + "fr_drift_schemas.json";
  const auto write_committed = [&] {
    std::FILE* out = std::fopen(path.c_str(), "w");
    ASSERT_NE(out, nullptr);
    write_schemas(out, committed);
    std::fclose(out);
  };
  PassOptions options;
  options.schemas_path = path;

  // Matching fingerprints: quiet.
  write_committed();
  EXPECT_TRUE(run_schema_drift_pass(c.wire, c.files, options).empty());

  // Mutated schema, same version string: the flagship failure.
  committed[0].writer_schema = "u32 u32 rep{u64} u8";
  write_committed();
  std::vector<Violation> found =
      run_schema_drift_pass(c.wire, c.files, options);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].rule, "schema-drift");
  EXPECT_NE(found[0].message.find("without a version bump"),
            std::string::npos);

  // Same mutation with a version bump recorded: still a finding (the
  // committed file is stale), but the regenerate kind, not the
  // unbumped kind.
  committed[0].version = "kTestVersion=2";
  write_committed();
  found = run_schema_drift_pass(c.wire, c.files, options);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_NE(found[0].message.find("regenerate"), std::string::npos);
  EXPECT_EQ(found[0].message.find("without a version bump"),
            std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fr_analysis
