// Per-function summary fixpoint (analysis/summaries.h): fact
// propagation through recursion, the CondVar released-lock exemption,
// call-chain-induced lock edges, guarded-write discharge, and the
// unordered-container declaration table.
#include "analysis/summaries.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/call_graph.h"
#include "analysis/include_graph.h"
#include "analysis/symbols.h"
#include "analysis/tokenizer.h"

namespace fr_analysis {
namespace {

// File-scope stand-ins for src/common/mutex.h: the analyzer keys on
// the spelled type names, and file-scope declarations give lock ids a
// predictable "<file>::<name>" shape.
constexpr const char* kSyncHeader =
    "#pragma once\n"
    "struct Mutex {\n"
    "  void lock() {}\n"
    "  void unlock() {}\n"
    "};\n"
    "struct MutexLock {\n"
    "  explicit MutexLock(Mutex& m) {}\n"
    "};\n";

struct Corpus {
  std::vector<SourceFile> files;
  IncludeGraph includes;
  SymbolTable symbols;
  CallGraph graph;
  Summaries summaries;
};

Corpus build(std::vector<std::pair<std::string, std::string>> sources) {
  Corpus corpus;
  for (auto& [path, text] : sources) {
    corpus.files.push_back(tokenize_text(path, text));
  }
  corpus.includes = IncludeGraph::build(corpus.files);
  corpus.symbols = SymbolTable::build(corpus.files, corpus.includes);
  corpus.graph = CallGraph::build(corpus.files, corpus.includes);
  corpus.summaries = Summaries::build(corpus.files, corpus.graph,
                                      corpus.symbols, corpus.includes);
  return corpus;
}

TEST(SummariesTest, BlockFactsPropagateThroughMutualRecursion) {
  // ping <-> pong recurse into each other and pong touches fopen; the
  // fixpoint must terminate and both summaries must carry the fact.
  const Corpus corpus = build({
      {"rec.cpp",
       "#include <cstdio>\n"
       "void ping(int n);\n"
       "void pong(int n) {\n"
       "  std::fopen(\"x\", \"r\");\n"
       "  ping(n - 1);\n"
       "}\n"
       "void ping(int n) { pong(n - 1); }\n"},
  });
  const FunctionSummary& pong = corpus.summaries.of("pong");
  ASSERT_EQ(pong.blocks.size(), 1u);
  EXPECT_EQ(pong.blocks.begin()->second.what, "fopen");
  EXPECT_TRUE(pong.blocks.begin()->second.path.empty()) << "direct fact";

  const FunctionSummary& ping = corpus.summaries.of("ping");
  ASSERT_EQ(ping.blocks.size(), 1u);
  const BlockFact& inherited = ping.blocks.begin()->second;
  EXPECT_EQ(inherited.what, "fopen");
  ASSERT_FALSE(inherited.path.empty()) << "witness chain into pong";
  EXPECT_NE(inherited.path[0].find("pong"), std::string::npos);
}

TEST(SummariesTest, UnknownIdYieldsEmptySummary) {
  const Corpus corpus = build({{"empty.cpp", "void f() {}\n"}});
  const FunctionSummary& summary = corpus.summaries.of("no_such_function");
  EXPECT_TRUE(summary.acquires.empty());
  EXPECT_TRUE(summary.blocks.empty());
  EXPECT_TRUE(summary.emits.empty());
  EXPECT_TRUE(summary.writes.empty());
}

TEST(SummariesTest, EmitFactsPropagateToCallers) {
  const Corpus corpus = build({
      {"emit.cpp",
       "#include <cstdio>\n"
       "void report() { std::printf(\"x\"); }\n"
       "void outer() { report(); }\n"},
  });
  const FunctionSummary& outer = corpus.summaries.of("outer");
  ASSERT_EQ(outer.emits.size(), 1u);
  EXPECT_EQ(outer.emits.begin()->second.what, "printf");
  EXPECT_FALSE(outer.emits.begin()->second.path.empty());
}

TEST(SummariesTest, BlockingSiteReportedForCalleeReachedUnderLock) {
  const Corpus corpus = build({
      {"sync.h", kSyncHeader},
      {"flush.cpp",
       "#include <cstdio>\n"
       "#include \"sync.h\"\n"
       "Mutex g_m;\n"
       "void flush_log() {\n"
       "  std::FILE* f = std::fopen(\"a.log\", \"a\");\n"
       "  if (f != nullptr) std::fclose(f);\n"
       "}\n"
       "void locked_flush() {\n"
       "  MutexLock lock(g_m);\n"
       "  flush_log();\n"
       "}\n"},
  });
  ASSERT_EQ(corpus.summaries.blocking_sites().size(), 1u);
  const BlockingSite& site = corpus.summaries.blocking_sites()[0];
  EXPECT_EQ(site.function_id, "locked_flush");
  EXPECT_EQ(site.held_id, "flush.cpp::g_m");
  EXPECT_EQ(site.callee_id, "flush_log");
  EXPECT_EQ(site.file, "flush.cpp");
  ASSERT_FALSE(site.path.empty());
  EXPECT_NE(site.path[0].find("flush_log"), std::string::npos);
}

TEST(SummariesTest, CondVarWaitReleasingTheHeldLockIsExempt) {
  const Corpus corpus = build({
      {"sync.h", kSyncHeader},
      {"wait.cpp",
       "#include \"sync.h\"\n"
       "struct Cond {\n"
       "  void wait(MutexLock& held) {}\n"
       "};\n"
       "Mutex g_m;\n"
       "Cond g_cv;\n"
       "void park() {\n"
       "  MutexLock lock(g_m);\n"
       "  g_cv.wait(lock);\n"
       "}\n"},
  });
  // The wait fact exists (with the released lock recorded) but the
  // only held lock is the one the wait drops, so no site is reported.
  const FunctionSummary& park = corpus.summaries.of("park");
  ASSERT_EQ(park.blocks.size(), 1u);
  EXPECT_EQ(park.blocks.begin()->second.what, "wait");
  EXPECT_EQ(park.blocks.begin()->second.released, "wait.cpp::g_m");
  EXPECT_TRUE(corpus.summaries.blocking_sites().empty());
}

TEST(SummariesTest, InducedEdgesCloseCrossTuLockChains) {
  const Corpus corpus = build({
      {"sync.h", kSyncHeader},
      {"globals.h",
       "#pragma once\n#include \"sync.h\"\nMutex g_x;\nMutex g_y;\n"},
      {"a.cpp",
       "#include \"globals.h\"\n"
       "void take_y();\n"
       "void x_then_y() {\n"
       "  MutexLock hold(g_x);\n"
       "  take_y();\n"
       "}\n"},
      {"b.cpp",
       "#include \"globals.h\"\n"
       "void take_y() {\n"
       "  MutexLock hold(g_y);\n"
       "}\n"},
  });
  const std::vector<LockEdge>& edges = corpus.summaries.induced_edges();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].from, "globals.h::g_x");
  EXPECT_EQ(edges[0].to, "globals.h::g_y");
  EXPECT_FALSE(edges[0].via.empty()) << "witness chain through take_y";
  EXPECT_NE(edges[0].via.find("take_y"), std::string::npos);
}

TEST(SummariesTest, GuardedWriteSurvivingToARootIsReported) {
  const Corpus corpus = build({
      {"sync.h", kSyncHeader},
      {"counter.cpp",
       "#include \"sync.h\"\n"
       "class Counter {\n"
       " public:\n"
       "  void bump_safe() {\n"
       "    MutexLock lock(mu_);\n"
       "    ++count_;\n"
       "  }\n"
       "  void bump_unsafe() { ++count_; }\n"
       " private:\n"
       "  Mutex mu_;\n"
       "  int count_ FR_GUARDED_BY(mu_);\n"
       "};\n"},
  });
  ASSERT_EQ(corpus.summaries.guarded_fields().size(), 1u);
  const GuardedField& field = corpus.summaries.guarded_fields()[0];
  EXPECT_EQ(field.id, "Counter::count_");
  EXPECT_EQ(field.guard_id, "Counter::mu_");

  ASSERT_EQ(corpus.summaries.unguarded_writes().size(), 1u);
  const UnguardedWrite& write = corpus.summaries.unguarded_writes()[0];
  EXPECT_EQ(write.field_id, "Counter::count_");
  EXPECT_EQ(write.root_id, "Counter::bump_unsafe");
}

TEST(SummariesTest, GuardedWriteDischargedByLockingCaller) {
  const Corpus corpus = build({
      {"sync.h", kSyncHeader},
      {"gauge.cpp",
       "#include \"sync.h\"\n"
       "class Gauge {\n"
       " public:\n"
       "  void refresh() {\n"
       "    MutexLock lock(gmu_);\n"
       "    touch();\n"
       "  }\n"
       " private:\n"
       "  void touch() { level_ = level_ + 1; }\n"
       "  Mutex gmu_;\n"
       "  int level_ FR_GUARDED_BY(gmu_);\n"
       "};\n"},
  });
  // touch() writes bare, but its only caller holds the guard at the
  // call site, so the obligation never reaches a root.
  EXPECT_TRUE(corpus.summaries.unguarded_writes().empty());
}

TEST(SummariesTest, RequiresAnnotationCountsAsHoldingTheGuard) {
  const Corpus corpus = build({
      {"sync.h", kSyncHeader},
      {"req.cpp",
       "#include \"sync.h\"\n"
       "Mutex g_m;\n"
       "int g_v FR_GUARDED_BY(g_m);\n"
       "void set_v(int v) FR_REQUIRES(g_m) { g_v = v; }\n"},
  });
  ASSERT_EQ(corpus.summaries.guarded_fields().size(), 1u);
  EXPECT_EQ(corpus.summaries.guarded_fields()[0].id, "req.cpp::g_v");
  EXPECT_TRUE(corpus.summaries.unguarded_writes().empty());
}

TEST(SummariesTest, UnorderedDeclsAreCollectedAndResolvable) {
  const Corpus corpus = build({
      {"tab.h",
       "#pragma once\n"
       "#include <unordered_map>\n"
       "#include <unordered_set>\n"
       "std::unordered_map<int, long> g_weights;\n"
       "class Index {\n"
       "  std::unordered_set<int> live_;\n"
       "};\n"},
      {"use.cpp", "#include \"tab.h\"\n"},
  });
  ASSERT_EQ(corpus.summaries.unordered_decls().size(), 2u);
  EXPECT_EQ(corpus.summaries.resolve_unordered("g_weights", "use.cpp", "",
                                               corpus.includes),
            "tab.h::g_weights");
  EXPECT_EQ(corpus.summaries.resolve_unordered("live_", "tab.h", "Index",
                                               corpus.includes),
            "Index::live_");
  EXPECT_EQ(corpus.summaries.resolve_unordered("absent", "use.cpp", "",
                                               corpus.includes),
            "");
}

}  // namespace
}  // namespace fr_analysis
