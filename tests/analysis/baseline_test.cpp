// Baseline-diff gate (analysis/baseline.h): write/load round-trip
// including escaped characters, and the multiset diff semantics
// (budgeted absorption, fresh findings, stale entries).
#include "analysis/baseline.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

namespace fr_analysis {
namespace {

Violation make_violation(std::string rule, std::string file,
                         std::string fingerprint) {
  Violation v;
  v.rule = std::move(rule);
  v.file = std::move(file);
  v.line = 7;
  v.message = "msg";
  v.fingerprint = std::move(fingerprint);
  return v;
}

TEST(BaselineTest, WriteThenLoadRoundTrips) {
  const std::string path = ::testing::TempDir() + "fr_baseline_roundtrip.json";
  const std::vector<Violation> findings = {
      make_violation("blocking-under-lock", "src/common/logging.cpp",
                     "blocking-under-lock|src/common/logging.cpp|log"),
      make_violation("determinism-taint", "src/pfs/ldiskfs.cpp",
                     "determinism-taint|has \"quotes\"|and\\slash\n"),
  };
  std::FILE* out = std::fopen(path.c_str(), "w");
  ASSERT_NE(out, nullptr);
  write_baseline(out, findings);
  std::fclose(out);

  std::vector<BaselineEntry> loaded;
  ASSERT_TRUE(load_baseline(path, &loaded));
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].fingerprint, findings[0].fingerprint);
  EXPECT_EQ(loaded[0].rule, "blocking-under-lock");
  EXPECT_EQ(loaded[0].file, "src/common/logging.cpp");
  EXPECT_EQ(loaded[1].fingerprint, findings[1].fingerprint)
      << "escaped quote/backslash/newline must survive the round trip";
  std::remove(path.c_str());
}

TEST(BaselineTest, MissingFileFailsToLoad) {
  std::vector<BaselineEntry> loaded;
  EXPECT_FALSE(
      load_baseline(::testing::TempDir() + "fr_no_such_baseline", &loaded));
  EXPECT_TRUE(loaded.empty());
}

TEST(BaselineTest, DiffSeparatesFreshAndStale) {
  const std::vector<Violation> findings = {
      make_violation("rule-a", "a.cpp", "fp-known"),
      make_violation("rule-b", "b.cpp", "fp-new"),
  };
  const std::vector<BaselineEntry> baseline = {
      {"fp-known", "rule-a", "a.cpp"},
      {"fp-gone", "rule-c", "c.cpp"},
  };
  const BaselineDiff diff = diff_baseline(findings, baseline);
  ASSERT_EQ(diff.fresh.size(), 1u);
  EXPECT_EQ(diff.fresh[0].fingerprint, "fp-new");
  ASSERT_EQ(diff.stale.size(), 1u);
  EXPECT_EQ(diff.stale[0].fingerprint, "fp-gone");
}

TEST(BaselineTest, EachBaselineEntryAbsorbsExactlyOneFinding) {
  // Two findings share a fingerprint; the baseline lists it once, so
  // one is absorbed and the duplicate is still fresh (multiset diff).
  const std::vector<Violation> findings = {
      make_violation("rule-a", "a.cpp", "fp-dup"),
      make_violation("rule-a", "a.cpp", "fp-dup"),
  };
  const std::vector<BaselineEntry> baseline = {{"fp-dup", "rule-a", "a.cpp"}};
  const BaselineDiff diff = diff_baseline(findings, baseline);
  ASSERT_EQ(diff.fresh.size(), 1u);
  EXPECT_EQ(diff.fresh[0].fingerprint, "fp-dup");
  EXPECT_TRUE(diff.stale.empty());

  // And symmetrically: two baseline entries, one finding -> one stale.
  const std::vector<BaselineEntry> doubled = {{"fp-dup", "rule-a", "a.cpp"},
                                              {"fp-dup", "rule-a", "a.cpp"}};
  const std::vector<Violation> single = {
      make_violation("rule-a", "a.cpp", "fp-dup")};
  const BaselineDiff diff2 = diff_baseline(single, doubled);
  EXPECT_TRUE(diff2.fresh.empty());
  ASSERT_EQ(diff2.stale.size(), 1u);
}

TEST(BaselineTest, EmptyBaselineMakesEverythingFresh) {
  const std::vector<Violation> findings = {
      make_violation("rule-a", "a.cpp", "fp-1")};
  const BaselineDiff diff = diff_baseline(findings, {});
  ASSERT_EQ(diff.fresh.size(), 1u);
  EXPECT_TRUE(diff.stale.empty());
}

}  // namespace
}  // namespace fr_analysis
