#include "scanner/scanner.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "aggregator/aggregator.h"
#include "testing/fixtures.h"

namespace faultyrank {
namespace {

TEST(ScannerTest, MdtScanExtractsNamespaceAndLayoutEdges) {
  LustreCluster cluster(2, StripePolicy{64 * 1024, -1});
  const Fid dir = cluster.mkdir(cluster.root(), "d");
  const Fid file = cluster.create_file(dir, "f", 2 * 64 * 1024);

  const ScanResult result = scan_mdt(cluster.mdt());
  EXPECT_TRUE(result.local_to_mds);
  EXPECT_EQ(result.inodes_scanned, 3u);  // root, d, f
  EXPECT_EQ(result.directories_visited, 2u);
  EXPECT_EQ(result.graph.vertices.size(), 3u);

  const auto has_edge = [&](Fid src, Fid dst, EdgeKind kind) {
    return std::any_of(result.graph.edges.begin(), result.graph.edges.end(),
                       [&](const FidEdge& e) {
                         return e.src == src && e.dst == dst && e.kind == kind;
                       });
  };
  EXPECT_TRUE(has_edge(cluster.root(), dir, EdgeKind::kDirent));
  EXPECT_TRUE(has_edge(dir, cluster.root(), EdgeKind::kLinkEa));
  EXPECT_TRUE(has_edge(dir, file, EdgeKind::kDirent));
  EXPECT_TRUE(has_edge(file, dir, EdgeKind::kLinkEa));
  // Two LOVEA edges to the stripe objects.
  const Inode* inode = cluster.stat(file);
  for (const auto& slot : inode->lov_ea->stripes) {
    EXPECT_TRUE(has_edge(file, slot.stripe, EdgeKind::kLovEa));
  }
}

TEST(ScannerTest, OstScanExtractsObjectPointbacks) {
  LustreCluster cluster(2, StripePolicy{64 * 1024, -1});
  const Fid file = cluster.create_file(cluster.root(), "f", 2 * 64 * 1024);
  std::uint64_t vertices = 0;
  std::uint64_t pointbacks = 0;
  for (const auto& ost : cluster.osts()) {
    const ScanResult result = scan_ost(ost);
    EXPECT_FALSE(result.local_to_mds);
    vertices += result.graph.vertices.size();
    for (const auto& e : result.graph.edges) {
      EXPECT_EQ(e.kind, EdgeKind::kObjParent);
      EXPECT_EQ(e.dst, file);
      ++pointbacks;
    }
  }
  EXPECT_EQ(vertices, 2u);
  EXPECT_EQ(pointbacks, 2u);
}

TEST(ScannerTest, HealthyClusterScansToFullyPairedGraph) {
  LustreCluster cluster = testing::make_populated_cluster(150, 3);
  const ClusterScan scan = scan_cluster(cluster);
  const AggregationResult agg = aggregate(scan.results);
  EXPECT_TRUE(agg.graph.unpaired_edges().empty());
  // Every scanned vertex is real (no phantoms in a healthy FS).
  for (Gid v = 0; v < agg.graph.vertex_count(); ++v) {
    EXPECT_TRUE(agg.graph.vertices().is_scanned(v));
  }
}

TEST(ScannerTest, ScanSeesRawCorruptionNotOiState) {
  LustreCluster cluster(2, StripePolicy{64 * 1024, 1});
  const Fid file = cluster.create_file(cluster.root(), "f", 1000);
  // Corrupt the file's LMA raw; the OI still maps the old fid.
  Inode* inode = cluster.mdt().image.find_by_fid(file);
  inode->lma_fid = Fid{0xbad, 1, 0};
  const ScanResult result = scan_mdt(cluster.mdt());
  const bool saw_corrupt = std::any_of(
      result.graph.vertices.begin(), result.graph.vertices.end(),
      [](const VertexRecord& v) { return v.fid == Fid{0xbad, 1, 0}; });
  const bool saw_original = std::any_of(
      result.graph.vertices.begin(), result.graph.vertices.end(),
      [&](const VertexRecord& v) { return v.fid == file; });
  EXPECT_TRUE(saw_corrupt);
  EXPECT_FALSE(saw_original);
}

TEST(ScannerTest, ClusterScanParallelMatchesSerial) {
  LustreCluster cluster = testing::make_populated_cluster(120, 9);
  const ClusterScan serial = scan_cluster(cluster, nullptr);
  ThreadPool pool(4);
  const ClusterScan parallel = scan_cluster(cluster, &pool);
  ASSERT_EQ(serial.results.size(), parallel.results.size());
  EXPECT_EQ(serial.inodes_scanned, parallel.inodes_scanned);
  for (std::size_t i = 0; i < serial.results.size(); ++i) {
    EXPECT_EQ(serial.results[i].graph.server,
              parallel.results[i].graph.server);
    EXPECT_EQ(serial.results[i].graph.edges.size(),
              parallel.results[i].graph.edges.size());
    EXPECT_EQ(serial.results[i].graph.vertices.size(),
              parallel.results[i].graph.vertices.size());
  }
}

TEST(ScannerTest, SimTimeReflectsDiskModel) {
  LustreCluster cluster = testing::make_populated_cluster(100, 5);
  const DiskModel slow{.seek_seconds = 0.1, .bandwidth_bytes_per_s = 1e6};
  const DiskModel fast = DiskModel::ssd();
  const ScanResult slow_scan = scan_mdt(cluster.mdt(), slow);
  const ScanResult fast_scan = scan_mdt(cluster.mdt(), fast);
  EXPECT_GT(slow_scan.sim_seconds, fast_scan.sim_seconds);
  // Identical extraction regardless of the device model.
  EXPECT_EQ(slow_scan.graph.edges.size(), fast_scan.graph.edges.size());
}

TEST(ScannerTest, ClusterSimTimeIsMaxOverServers) {
  LustreCluster cluster = testing::make_populated_cluster(100, 6);
  const ClusterScan scan = scan_cluster(cluster);
  double max_server = 0.0;
  for (const auto& result : scan.results) {
    max_server = std::max(max_server, result.sim_seconds);
  }
  EXPECT_DOUBLE_EQ(scan.sim_seconds, max_server);
}

}  // namespace
}  // namespace faultyrank
