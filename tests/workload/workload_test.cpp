#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "aggregator/aggregator.h"
#include "scanner/scanner.h"
#include "testing/fixtures.h"
#include "workload/namespace_gen.h"
#include "workload/rmat.h"
#include "workload/synthetic_graphs.h"

namespace faultyrank {
namespace {

TEST(RmatTest, ProducesRequestedScaleAndDegree) {
  const GeneratedGraph g = generate_rmat({.scale = 12, .avg_degree = 8});
  EXPECT_EQ(g.vertex_count, 1u << 12);
  EXPECT_EQ(g.edges.size(), (1u << 12) * 8u);
  for (const auto& e : g.edges) {
    EXPECT_LT(e.src, g.vertex_count);
    EXPECT_LT(e.dst, g.vertex_count);
  }
}

TEST(RmatTest, DeterministicForFixedSeed) {
  const GeneratedGraph a = generate_rmat({.scale = 10, .avg_degree = 4});
  const GeneratedGraph b = generate_rmat({.scale = 10, .avg_degree = 4});
  ASSERT_EQ(a.edges.size(), b.edges.size());
  for (std::size_t i = 0; i < a.edges.size(); ++i) {
    EXPECT_EQ(a.edges[i], b.edges[i]);
  }
}

TEST(RmatTest, SkewedQuadrantsProduceHeavyTail) {
  const GeneratedGraph g = generate_rmat({.scale = 12, .avg_degree = 8});
  std::vector<std::uint64_t> out_degree(g.vertex_count, 0);
  for (const auto& e : g.edges) ++out_degree[e.src];
  const auto max_degree =
      *std::max_element(out_degree.begin(), out_degree.end());
  // Graph500 parameters concentrate edges: the hottest vertex is far
  // above the average degree of 8.
  EXPECT_GT(max_degree, 200u);
}

TEST(RmatTest, RejectsBadParameters) {
  EXPECT_THROW(generate_rmat({.scale = 0}), std::invalid_argument);
  EXPECT_THROW(generate_rmat({.scale = 32}), std::invalid_argument);
  EXPECT_THROW(generate_rmat({.scale = 10, .avg_degree = 4, .a = 0.9,
                              .b = 0.3, .c = 0.3}),
               std::invalid_argument);
}

TEST(SyntheticGraphsTest, AmazonLikeMatchesPublishedCountsAtFullScale) {
  const GeneratedGraph g = make_amazon_like(1.0);
  EXPECT_EQ(g.vertex_count, 403393u);
  EXPECT_EQ(g.edges.size(), 4886816u);
}

TEST(SyntheticGraphsTest, AmazonLikeScalesDown) {
  const GeneratedGraph g = make_amazon_like(0.01);
  EXPECT_NEAR(static_cast<double>(g.vertex_count), 4033.93, 10.0);
  EXPECT_NEAR(static_cast<double>(g.edges.size()), 48868.0, 100.0);
  // Copy model yields a heavy in-degree tail.
  std::vector<std::uint64_t> in_degree(g.vertex_count, 0);
  for (const auto& e : g.edges) ++in_degree[e.dst];
  const auto max_in = *std::max_element(in_degree.begin(), in_degree.end());
  EXPECT_GT(max_in, 50u);
}

TEST(SyntheticGraphsTest, RoadNetLikeHasLowBoundedDegree) {
  const GeneratedGraph g = make_roadnet_like(0.01);
  EXPECT_GT(g.vertex_count, 15000u);
  std::vector<std::uint32_t> out_degree(g.vertex_count, 0);
  for (const auto& e : g.edges) {
    ++out_degree[e.src];
    EXPECT_LT(e.src, g.vertex_count);
    EXPECT_LT(e.dst, g.vertex_count);
  }
  // Lattice: nobody exceeds 4 neighbours.
  EXPECT_LE(*std::max_element(out_degree.begin(), out_degree.end()), 4u);
  // Thinned to roughly the roadNet average degree (~2.8).
  const double avg = static_cast<double>(g.edges.size()) /
                     static_cast<double>(g.vertex_count);
  EXPECT_NEAR(avg, 2.8, 0.4);
}

TEST(NamespaceGenTest, HitsTargetFileCount) {
  LustreCluster cluster(4, StripePolicy{64 * 1024, -1});
  NamespaceConfig config;
  config.file_count = 500;
  config.seed = 101;
  const NamespaceStats stats = populate_namespace(cluster, config);
  EXPECT_EQ(stats.files, 500u);
  EXPECT_GT(stats.directories, 20u);
  // Total MDS inodes = root + dirs + files.
  EXPECT_EQ(cluster.mdt_inodes_used(), 1 + stats.directories + stats.files);
  EXPECT_EQ(cluster.total_ost_objects(), stats.stripe_objects);
}

TEST(NamespaceGenTest, FileSizeDistributionMatchesCarnsStatistics) {
  LustreCluster cluster(8, StripePolicy{64 * 1024, -1});
  NamespaceConfig config;
  config.file_count = 4000;
  config.seed = 102;
  const NamespaceStats stats = populate_namespace(cluster, config);
  const double under_1mb = static_cast<double>(stats.files_under_1mb) /
                           static_cast<double>(stats.files);
  const double under_2mb = static_cast<double>(stats.files_under_2mb) /
                           static_cast<double>(stats.files);
  // The paper cites ~86 % < 1 MB and ~95 % < 2 MB.
  EXPECT_NEAR(under_1mb, 0.86, 0.04);
  EXPECT_NEAR(under_2mb, 0.95, 0.03);
}

TEST(NamespaceGenTest, StripingFollowsPaperShrinkRule) {
  LustreCluster cluster(8, StripePolicy{64 * 1024, -1});
  NamespaceConfig config;
  config.file_count = 1000;
  config.seed = 103;
  populate_namespace(cluster, config);
  cluster.mdt().image.for_each_inode([&](const Inode& inode) {
    if (inode.type != InodeType::kRegular) return;
    const auto stripes = inode.lov_ea->stripes.size();
    const auto expected = std::clamp<std::uint64_t>(
        (inode.size_bytes + 64 * 1024 - 1) / (64 * 1024), 1, 8);
    EXPECT_EQ(stripes, expected);
  });
}

TEST(NamespaceGenTest, PopulationIsDeterministic) {
  LustreCluster c1 = testing::make_populated_cluster(200, 104);
  LustreCluster c2 = testing::make_populated_cluster(200, 104);
  EXPECT_EQ(c1.mdt_inodes_used(), c2.mdt_inodes_used());
  EXPECT_EQ(c1.total_ost_objects(), c2.total_ost_objects());
}

TEST(NamespaceGenTest, RepeatedPopulationRoundsDoNotCollide) {
  LustreCluster cluster(4, StripePolicy{64 * 1024, -1});
  NamespaceConfig config;
  config.file_count = 100;
  config.seed = 105;
  populate_namespace(cluster, config);
  const auto after_first = cluster.mdt_inodes_used();
  populate_namespace(cluster, config);  // same config, more files
  EXPECT_GT(cluster.mdt_inodes_used(), after_first);
}

TEST(AgingTest, ChurnDeletesAndRecreates) {
  LustreCluster cluster = testing::make_populated_cluster(300, 106);
  NamespaceConfig config;
  config.seed = 106;
  const AgingStats stats = age_cluster(cluster, config, 3, 0.2);
  EXPECT_GT(stats.deleted, 100u);
  EXPECT_GE(stats.created, stats.deleted / 2);
}

TEST(AgingTest, AgedClusterStaysConsistent) {
  LustreCluster cluster = testing::make_populated_cluster(200, 107);
  NamespaceConfig config;
  config.seed = 107;
  age_cluster(cluster, config, 2, 0.3);
  // Aging through the namespace API never breaks metadata invariants.
  const ClusterScan scan = scan_cluster(cluster);
  const AggregationResult agg = aggregate(scan.results);
  EXPECT_TRUE(agg.graph.unpaired_edges().empty());
}


TEST(NamespaceGenTest, HardLinksAreCreatedAndConsistent) {
  LustreCluster cluster(4, StripePolicy{64 * 1024, -1});
  NamespaceConfig config;
  config.file_count = 1000;
  config.hardlink_ratio = 0.05;
  config.seed = 108;
  const NamespaceStats stats = populate_namespace(cluster, config);
  EXPECT_GT(stats.hard_links, 20u);
  const ClusterScan scan = scan_cluster(cluster);
  const AggregationResult agg = aggregate(scan.results);
  EXPECT_TRUE(agg.graph.unpaired_edges().empty());
}

}  // namespace
}  // namespace faultyrank
