// PropagationPlan construction + the cross-kernel golden suite: the
// plan kernel must reproduce the reference kernel bit-for-bit, on any
// pool, for every norm (DESIGN.md §9's determinism claim, enforced).
#include "core/propagation_plan.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/faultyrank.h"
#include "workload/rmat.h"
#include "workload/synthetic_graphs.h"

namespace faultyrank {
namespace {

// Star with pairing structure: hub 0 points at every spoke; the first
// half point back (paired), the second half do not (unpaired); the last
// kIsolated vertices have no edges at all, so they are both pass-1 and
// pass-2 sinks. Big enough to clear the default serial grain.
constexpr std::size_t kStarVertices = 3000;
constexpr std::size_t kIsolated = 10;

UnifiedGraph make_star_graph() {
  std::vector<GidEdge> edges;
  const std::size_t spokes = kStarVertices - kIsolated;
  for (Gid v = 1; v < spokes; ++v) {
    edges.push_back({0, v, EdgeKind::kDirent});
    if (v <= spokes / 2) edges.push_back({v, 0, EdgeKind::kLinkEa});
  }
  return UnifiedGraph::from_edges(kStarVertices, edges);
}

UnifiedGraph make_power_law_graph() {
  const GeneratedGraph gen = generate_rmat({.scale = 12, .avg_degree = 8});
  return UnifiedGraph::from_edges(gen.vertex_count, gen.edges);
}

// Exact bit comparison — EXPECT_DOUBLE_EQ tolerates 4 ulps and == would
// conflate +0.0 with -0.0; the golden contract is the bit pattern.
void expect_bits_equal(const std::vector<double>& a,
                       const std::vector<double>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(a[i]),
              std::bit_cast<std::uint64_t>(b[i]))
        << what << " diverges at vertex " << i << ": " << a[i] << " vs "
        << b[i];
  }
}

void expect_results_equal(const FaultyRankResult& a, const FaultyRankResult& b,
                          const std::string& what) {
  EXPECT_EQ(a.iterations, b.iterations) << what;
  EXPECT_EQ(a.converged, b.converged) << what;
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.final_diff),
            std::bit_cast<std::uint64_t>(b.final_diff))
      << what;
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.mean_rank),
            std::bit_cast<std::uint64_t>(b.mean_rank))
      << what;
  expect_bits_equal(a.id_rank, b.id_rank, (what + " id_rank").c_str());
  expect_bits_equal(a.prop_rank, b.prop_rank, (what + " prop_rank").c_str());
  ASSERT_EQ(a.prop_rank_by_kind.size(), b.prop_rank_by_kind.size()) << what;
  for (std::size_t k = 0; k < a.prop_rank_by_kind.size(); ++k) {
    expect_bits_equal(a.prop_rank_by_kind[k], b.prop_rank_by_kind[k],
                      (what + " prop_rank_by_kind").c_str());
  }
}

TEST(PropagationPlanTest, CoefficientsMatchTheirDefinition) {
  const UnifiedGraph g = make_star_graph();
  const double w = 0.1;
  const PropagationPlan plan = PropagationPlan::build(g, w);
  const Csr& forward = g.forward();
  const Csr& reverse = g.reverse();

  ASSERT_EQ(plan.coeff_rev().size(), reverse.edge_count());
  for (std::uint64_t slot = 0; slot < reverse.edge_count(); ++slot) {
    const Gid u = reverse.target(slot);
    EXPECT_EQ(plan.coeff_rev()[slot],
              1.0 / static_cast<double>(forward.out_degree(u)));
  }

  ASSERT_EQ(plan.coeff_fwd().size(), forward.edge_count());
  for (std::uint64_t slot = 0; slot < forward.edge_count(); ++slot) {
    const Gid t = forward.target(slot);
    const double denom =
        static_cast<double>(g.paired_in_degree(t)) +
        w * static_cast<double>(g.unpaired_in_degree(t));
    if (denom == 0.0) {
      EXPECT_EQ(plan.coeff_fwd()[slot], 0.0);
    } else {
      EXPECT_EQ(plan.coeff_fwd()[slot],
                (g.paired(slot) ? 1.0 : w) / denom);
    }
  }
}

TEST(PropagationPlanTest, SinkListsAreSortedAndComplete) {
  const UnifiedGraph g = make_star_graph();
  const PropagationPlan plan = PropagationPlan::build(g, 0.1);

  std::vector<Gid> expected_fwd;
  std::vector<Gid> expected_rev;
  for (Gid v = 0; v < g.vertex_count(); ++v) {
    if (g.forward().out_degree(v) == 0) expected_fwd.push_back(v);
    if (g.paired_in_degree(v) == 0 && g.unpaired_in_degree(v) == 0) {
      expected_rev.push_back(v);
    }
  }
  EXPECT_EQ(std::vector<Gid>(plan.forward_sinks().begin(),
                             plan.forward_sinks().end()),
            expected_fwd);
  EXPECT_EQ(std::vector<Gid>(plan.reversed_sinks().begin(),
                             plan.reversed_sinks().end()),
            expected_rev);
  // The isolated tail vertices appear in both lists.
  EXPECT_GE(plan.forward_sinks().size(), kIsolated);
  EXPECT_GE(plan.reversed_sinks().size(), kIsolated);
  EXPECT_GT(plan.bytes(), 0u);
}

TEST(PropagationPlanTest, UnpairedWeightZeroMakesUnpairedOnlySinks) {
  const UnifiedGraph g = make_star_graph();
  const PropagationPlan plan = PropagationPlan::build(g, 0.0);
  // Spokes in the unpaired half have only an unpaired in-edge, so at
  // weight 0 they become reversed sinks and their in-slots carry 0.
  for (Gid v = 0; v < g.vertex_count(); ++v) {
    const bool sink = static_cast<double>(g.paired_in_degree(v)) +
                          0.0 * static_cast<double>(g.unpaired_in_degree(v)) ==
                      0.0;
    const bool listed =
        std::binary_search(plan.reversed_sinks().begin(),
                           plan.reversed_sinks().end(), v);
    EXPECT_EQ(sink, listed) << "vertex " << v;
  }
  EXPECT_GT(plan.reversed_sinks().size(), kIsolated);
}

TEST(PropagationPlanTest, BuildRejectsBadWeight) {
  const UnifiedGraph g = make_star_graph();
  EXPECT_THROW((void)PropagationPlan::build(g, -0.1), std::invalid_argument);
  EXPECT_THROW((void)PropagationPlan::build(g, 1.5), std::invalid_argument);
}

TEST(PropagationPlanTest, KernelRejectsMismatchedPlan) {
  const UnifiedGraph g1 = make_star_graph();
  const UnifiedGraph g2 = make_star_graph();
  const PropagationPlan plan = PropagationPlan::build(g1, 0.1);
  EXPECT_TRUE(plan.matches(g1, 0.1));
  EXPECT_FALSE(plan.matches(g2, 0.1));
  EXPECT_FALSE(plan.matches(g1, 0.2));
  EXPECT_THROW((void)run_faultyrank(g2, plan), std::invalid_argument);
  FaultyRankConfig other_weight;
  other_weight.unpaired_weight = 0.2;
  EXPECT_THROW((void)run_faultyrank(g1, plan, other_weight),
               std::invalid_argument);
}

TEST(PropagationPlanTest, PlanIsBuiltIdenticallyOnAnyPool) {
  const UnifiedGraph g = make_power_law_graph();
  const PropagationPlan serial = PropagationPlan::build(g, 0.1);
  for (const std::size_t threads : {1u, 4u, 8u}) {
    ThreadPool pool(threads);
    const PropagationPlan parallel = PropagationPlan::build(g, 0.1, &pool);
    expect_bits_equal(
        std::vector<double>(serial.coeff_rev().begin(),
                            serial.coeff_rev().end()),
        std::vector<double>(parallel.coeff_rev().begin(),
                            parallel.coeff_rev().end()),
        "coeff_rev");
    expect_bits_equal(
        std::vector<double>(serial.coeff_fwd().begin(),
                            serial.coeff_fwd().end()),
        std::vector<double>(parallel.coeff_fwd().begin(),
                            parallel.coeff_fwd().end()),
        "coeff_fwd");
  }
}

// The golden contract: for every graph shape, norm, decomposition mode,
// and pool size, the plan kernel and the naive reference produce
// bit-identical ranks, iteration counts, and diffs. The reference with
// no pool is the single oracle everything else is held to.
class CrossKernelGoldenTest : public ::testing::TestWithParam<DiffNorm> {};

void run_golden(const UnifiedGraph& g, DiffNorm norm) {
  for (const bool separate : {false, true}) {
    FaultyRankConfig config;
    config.diff_norm = norm;
    config.epsilon = 1e-7;
    config.max_iterations = 40;
    config.separate_properties = separate;

    const FaultyRankResult oracle = run_faultyrank_reference(g, config);
    const PropagationPlan plan =
        PropagationPlan::build(g, config.unpaired_weight);

    const std::string tag =
        std::string("norm=") + std::to_string(static_cast<int>(norm)) +
        " separate=" + std::to_string(separate);
    expect_results_equal(oracle, run_faultyrank(g, plan, config),
                         tag + " plan/serial");
    for (const std::size_t threads : {1u, 4u, 8u}) {
      ThreadPool pool(threads);
      const std::string pool_tag = tag + " pool=" + std::to_string(threads);
      expect_results_equal(oracle,
                           run_faultyrank_reference(g, config, &pool),
                           pool_tag + " reference");
      expect_results_equal(oracle, run_faultyrank(g, plan, config, &pool),
                           pool_tag + " plan");
    }
  }
}

TEST_P(CrossKernelGoldenTest, BitIdenticalOnStarGraph) {
  run_golden(make_star_graph(), GetParam());
}

TEST_P(CrossKernelGoldenTest, BitIdenticalOnPowerLawGraph) {
  run_golden(make_power_law_graph(), GetParam());
}

TEST_P(CrossKernelGoldenTest, BitIdenticalOnHeavyTailedCatalogGraph) {
  const GeneratedGraph gen = make_amazon_like(0.05, 99);
  run_golden(UnifiedGraph::from_edges(gen.vertex_count, gen.edges),
             GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllNorms, CrossKernelGoldenTest,
                         ::testing::Values(DiffNorm::kL1Mass, DiffNorm::kL1,
                                           DiffNorm::kL1Mean,
                                           DiffNorm::kLInf));

TEST(CrossKernelGoldenTest, BitIdenticalUnderWarmStart) {
  const UnifiedGraph g = make_power_law_graph();
  FaultyRankConfig cold;
  cold.epsilon = 1e-4;
  const FaultyRankResult fix = run_faultyrank_reference(g, cold);
  ASSERT_TRUE(fix.converged);

  FaultyRankConfig warm = cold;
  warm.initial_id_ranks = &fix.id_rank;
  warm.initial_prop_ranks = &fix.prop_rank;
  const FaultyRankResult oracle = run_faultyrank_reference(g, warm);
  EXPECT_LE(oracle.iterations, fix.iterations);

  ThreadPool pool(4);
  const PropagationPlan plan = PropagationPlan::build(g, warm.unpaired_weight);
  expect_results_equal(oracle, run_faultyrank(g, plan, warm, &pool),
                       "warm start plan");
}

TEST(CrossKernelGoldenTest, SerialGrainDoesNotChangeBits) {
  const UnifiedGraph g = make_star_graph();
  ThreadPool pool(4);
  FaultyRankConfig config;
  config.epsilon = 1e-7;
  const FaultyRankResult oracle = run_faultyrank_reference(g, config);
  for (const std::size_t grain : {std::size_t{0}, std::size_t{1},
                                  std::size_t{4096}, std::size_t{1} << 40}) {
    FaultyRankConfig swept = config;
    swept.serial_grain = grain;
    expect_results_equal(oracle, run_faultyrank(g, swept, &pool),
                         "grain=" + std::to_string(grain));
  }
}

// ---------------------------------------------------------------------
// Layout options: vertex reordering and float32 mode (DESIGN.md §14).
// ---------------------------------------------------------------------

TEST(PropagationPlanTest, MatchesRejectsDifferentLayout) {
  const UnifiedGraph g = make_star_graph();
  const PlanOptions reordered{VertexOrdering::kDegree, false};
  const PropagationPlan plan =
      PropagationPlan::build(g, 0.1, nullptr, reordered);

  // The layout-blind form still matches; the full form discriminates.
  EXPECT_TRUE(plan.matches(g, 0.1));
  EXPECT_TRUE(plan.matches(g, 0.1, reordered));
  EXPECT_FALSE(plan.matches(g, 0.1, {VertexOrdering::kNone, false}));
  EXPECT_FALSE(plan.matches(g, 0.1, {VertexOrdering::kRcm, false}));
  EXPECT_FALSE(plan.matches(g, 0.1, {VertexOrdering::kDegree, true}));

  // The kernel refuses a plan whose ordering differs from the config's
  // — silently sweeping relabeled adjacency under the wrong assumption
  // would return permuted garbage.
  FaultyRankConfig config;
  EXPECT_THROW((void)run_faultyrank(g, plan, config), std::invalid_argument);
  config.ordering = VertexOrdering::kDegree;
  EXPECT_NO_THROW((void)run_faultyrank(g, plan, config));
}

TEST(PropagationPlanTest, ReorderedPlanOwnsRelabeledState) {
  const UnifiedGraph g = make_power_law_graph();
  const PropagationPlan base = PropagationPlan::build(g, 0.1);
  const PropagationPlan reordered =
      PropagationPlan::build(g, 0.1, nullptr, {VertexOrdering::kRcm, false});

  // bytes() must account for what the reordered plan now owns: the
  // permutation pair and the relabeled CSRs.
  EXPECT_TRUE(base.permutation().empty());
  EXPECT_FALSE(reordered.permutation().empty());
  EXPECT_GE(reordered.bytes(),
            base.bytes() + reordered.permutation().bytes());

  // Sink lists stay sorted (the kernel binary-searches them) and keep
  // their sizes — sinkness is a per-vertex property, renaming moves it.
  EXPECT_TRUE(std::is_sorted(reordered.forward_sinks().begin(),
                             reordered.forward_sinks().end()));
  EXPECT_TRUE(std::is_sorted(reordered.reversed_sinks().begin(),
                             reordered.reversed_sinks().end()));
  EXPECT_EQ(reordered.forward_sinks().size(), base.forward_sinks().size());
  EXPECT_EQ(reordered.reversed_sinks().size(), base.reversed_sinks().size());

  // Coefficient VALUES are bitwise relabel-invariant — only slot
  // positions move — so the sorted multisets coincide exactly.
  const auto sorted_of = [](std::span<const double> s) {
    std::vector<double> v(s.begin(), s.end());
    std::sort(v.begin(), v.end());
    return v;
  };
  expect_bits_equal(sorted_of(base.coeff_rev()),
                    sorted_of(reordered.coeff_rev()), "coeff_rev multiset");
  expect_bits_equal(sorted_of(base.coeff_fwd()),
                    sorted_of(reordered.coeff_fwd()), "coeff_fwd multiset");
}

TEST(PropagationPlanTest, Float32CoefficientsAreNarrowedDoubles) {
  const UnifiedGraph g = make_star_graph();
  const PropagationPlan f64 = PropagationPlan::build(g, 0.1);
  const PropagationPlan f32 =
      PropagationPlan::build(g, 0.1, nullptr, {VertexOrdering::kNone, true});

  EXPECT_TRUE(f32.coeff_rev().empty());
  EXPECT_TRUE(f32.coeff_fwd().empty());
  ASSERT_EQ(f32.coeff_rev_f32().size(), f64.coeff_rev().size());
  ASSERT_EQ(f32.coeff_fwd_f32().size(), f64.coeff_fwd().size());
  for (std::size_t slot = 0; slot < f64.coeff_rev().size(); ++slot) {
    ASSERT_EQ(std::bit_cast<std::uint32_t>(f32.coeff_rev_f32()[slot]),
              std::bit_cast<std::uint32_t>(
                  static_cast<float>(f64.coeff_rev()[slot])))
        << "rev slot " << slot;
  }
  for (std::size_t slot = 0; slot < f64.coeff_fwd().size(); ++slot) {
    ASSERT_EQ(std::bit_cast<std::uint32_t>(f32.coeff_fwd_f32()[slot]),
              std::bit_cast<std::uint32_t>(
                  static_cast<float>(f64.coeff_fwd()[slot])))
        << "fwd slot " << slot;
  }
  // The point of the mode: the coefficient arrays halve.
  EXPECT_LT(f32.bytes(), f64.bytes());
}

// The per-ordering determinism contract: a reordered plan-kernel run
// must be bit-identical to the reference oracle running on the
// *relabeled* graph (built independently through from_edges), mapped
// back through the permutation. This pins down that reordering is a
// pure renaming — same mathematics, relabeled summation order.
TEST(ReorderGoldenTest, BitIdenticalToReferenceOnRelabeledGraph) {
  const UnifiedGraph g = make_power_law_graph();
  const std::size_t n = g.vertex_count();
  for (const auto ordering : {VertexOrdering::kDegree, VertexOrdering::kRcm}) {
    const VertexPermutation perm = compute_ordering(g, ordering);
    const UnifiedGraph relabeled =
        UnifiedGraph::from_edges(n, relabel_edges(g.forward(), perm));

    FaultyRankConfig config;
    config.epsilon = 1e-7;
    config.max_iterations = 40;
    const FaultyRankResult oracle = run_faultyrank_reference(relabeled, config);

    FaultyRankConfig with_ordering = config;
    with_ordering.ordering = ordering;
    with_ordering.use_simd = false;
    const std::string tag = std::string("ordering=") + to_string(ordering);

    ThreadPool pool(4);
    for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool}) {
      const FaultyRankResult run = run_faultyrank(g, with_ordering, p);
      EXPECT_EQ(run.iterations, oracle.iterations) << tag;
      EXPECT_EQ(std::bit_cast<std::uint64_t>(run.final_diff),
                std::bit_cast<std::uint64_t>(oracle.final_diff))
          << tag;
      EXPECT_EQ(std::bit_cast<std::uint64_t>(run.mean_rank),
                std::bit_cast<std::uint64_t>(oracle.mean_rank))
          << tag;
      ASSERT_EQ(run.id_rank.size(), n) << tag;
      for (std::size_t v = 0; v < n; ++v) {
        ASSERT_EQ(std::bit_cast<std::uint64_t>(run.id_rank[v]),
                  std::bit_cast<std::uint64_t>(
                      oracle.id_rank[perm.new_of_old[v]]))
            << tag << " id_rank old-vertex " << v;
        ASSERT_EQ(std::bit_cast<std::uint64_t>(run.prop_rank[v]),
                  std::bit_cast<std::uint64_t>(
                      oracle.prop_rank[perm.new_of_old[v]]))
            << tag << " prop_rank old-vertex " << v;
      }
    }
  }
}

TEST(ReorderGoldenTest, ReorderedRunIsPoolSizeInvariant) {
  const UnifiedGraph g = make_star_graph();
  FaultyRankConfig config;
  config.epsilon = 1e-7;
  config.ordering = VertexOrdering::kDegree;
  config.separate_properties = true;
  const FaultyRankResult oracle = run_faultyrank(g, config);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    expect_results_equal(oracle, run_faultyrank(g, config, &pool),
                         "reordered pool=" + std::to_string(threads));
  }
}

TEST(Float32KernelTest, StaysCloseToFloat64OracleAndConservesMass) {
  const UnifiedGraph g = make_power_law_graph();
  FaultyRankConfig config;
  config.epsilon = 1e-5;
  config.max_iterations = 60;
  const FaultyRankResult f64 = run_faultyrank(g, config);

  FaultyRankConfig narrow = config;
  narrow.float32 = true;
  const FaultyRankResult f32 = run_faultyrank(g, narrow);

  ASSERT_EQ(f32.id_rank.size(), f64.id_rank.size());
  double max_rank = 1.0;
  double linf = 0.0;
  double mass = 0.0;
  for (std::size_t v = 0; v < f64.id_rank.size(); ++v) {
    max_rank = std::max(max_rank, std::abs(f64.id_rank[v]));
    linf = std::max(linf, std::abs(f64.id_rank[v] - f32.id_rank[v]));
    mass += f32.id_rank[v];
  }
  // float32 carries ~1e-7 relative precision; allow generous headroom
  // for accumulation across iterations.
  EXPECT_LT(linf, 1e-3 * max_rank) << "L∞ drift too large";
  const double n = static_cast<double>(g.vertex_count());
  EXPECT_NEAR(mass, n, n * 1e-4);

  // Pool-size invariance holds for the narrow mode too (the lane tree
  // and reduction blocks never depend on the pool).
  ThreadPool pool(4);
  const FaultyRankResult pooled = run_faultyrank(g, narrow, &pool);
  for (std::size_t v = 0; v < f32.id_rank.size(); ++v) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(f32.id_rank[v]),
              std::bit_cast<std::uint64_t>(pooled.id_rank[v]))
        << "float32 pool variance at " << v;
  }
}

// The full stack — reorder + float32 (+ SIMD when available) — still
// converges to the same fixpoint within float tolerance.
TEST(Float32KernelTest, FullStackConvergesToTheSameFixpoint) {
  const UnifiedGraph g = make_power_law_graph();
  FaultyRankConfig config;
  config.epsilon = 1e-5;
  const FaultyRankResult f64 = run_faultyrank(g, config);

  FaultyRankConfig stacked = config;
  stacked.ordering = VertexOrdering::kDegree;
  stacked.float32 = true;
  ThreadPool pool(4);
  const FaultyRankResult full = run_faultyrank(g, stacked, &pool);
  ASSERT_TRUE(full.converged);
  double max_rank = 1.0;
  for (const double r : f64.id_rank) max_rank = std::max(max_rank, r);
  for (std::size_t v = 0; v < f64.id_rank.size(); ++v) {
    ASSERT_NEAR(f64.id_rank[v], full.id_rank[v], 1e-3 * max_rank)
        << "vertex " << v;
  }
}

TEST(CrossKernelGoldenTest, OnePlanServesManyRuns) {
  const UnifiedGraph g = make_power_law_graph();
  FaultyRankConfig config;
  config.epsilon = 1e-7;
  const PropagationPlan plan =
      PropagationPlan::build(g, config.unpaired_weight);
  const FaultyRankResult first = run_faultyrank(g, plan, config);
  const FaultyRankResult second = run_faultyrank(g, plan, config);
  expect_results_equal(first, second, "plan reuse");
}

}  // namespace
}  // namespace faultyrank
