#include "core/faultyrank.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/random.h"
#include "testing/fixtures.h"
#include "workload/rmat.h"

namespace faultyrank {
namespace {

using testing::Fig3Fids;
using testing::make_fig3_consistent_graph;
using testing::make_fig3_graph;

double sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

TEST(FaultyRankTest, EmptyGraphConverges) {
  const UnifiedGraph g = UnifiedGraph::from_edges(0, {});
  const FaultyRankResult r = run_faultyrank(g);
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(r.id_rank.empty());
}

TEST(FaultyRankTest, RejectsInvalidConfig) {
  const UnifiedGraph g = make_fig3_graph();
  FaultyRankConfig bad_epsilon;
  bad_epsilon.epsilon = 0.0;
  EXPECT_THROW((void)run_faultyrank(g, bad_epsilon), std::invalid_argument);
  FaultyRankConfig bad_weight;
  bad_weight.unpaired_weight = 1.5;
  EXPECT_THROW((void)run_faultyrank(g, bad_weight), std::invalid_argument);
}

TEST(FaultyRankTest, MassIsConservedEachPass) {
  const UnifiedGraph g = make_fig3_graph();
  FaultyRankConfig config;
  config.max_iterations = 1;
  config.epsilon = 1e-12;
  const FaultyRankResult r = run_faultyrank(g, config);
  const double n = static_cast<double>(g.vertex_count());
  EXPECT_NEAR(sum(r.id_rank), n, 1e-9);
  EXPECT_NEAR(sum(r.prop_rank), n, 1e-9);
}

TEST(FaultyRankTest, MassConservedAtConvergenceOnRandomGraph) {
  const GeneratedGraph gen = generate_rmat({.scale = 10, .avg_degree = 4});
  const UnifiedGraph g =
      UnifiedGraph::from_edges(gen.vertex_count, gen.edges);
  const FaultyRankResult r = run_faultyrank(g);
  const double n = static_cast<double>(g.vertex_count());
  EXPECT_NEAR(sum(r.id_rank), n, n * 1e-9);
  EXPECT_NEAR(sum(r.prop_rank), n, n * 1e-9);
}

// Table II: on the Fig. 3 example the corrupted fields — c's property
// and d's id — carry the extreme low scores, well separated from every
// healthy field. (The paper reports 0.05 vs ≥0.2 on the mass-1 scale.)
TEST(FaultyRankTest, TableTwoExampleSeparatesCorruptedFields) {
  const UnifiedGraph g = make_fig3_graph();
  FaultyRankConfig config;
  config.epsilon = 1e-3;  // tighter than the paper for a crisp fixpoint
  const FaultyRankResult r = run_faultyrank(g, config);
  ASSERT_TRUE(r.converged);

  const Fig3Fids fids;
  const Gid a = g.vertices().lookup(fids.a);
  const Gid b = g.vertices().lookup(fids.b);
  const Gid c = g.vertices().lookup(fids.c);
  const Gid d = g.vertices().lookup(fids.d);

  const double c_prop = r.normalized_prop_rank(c);
  const double d_id = r.normalized_id_rank(d);
  // Corrupted fields sit far below the healthy ones.
  for (const Gid v : {a, b}) {
    EXPECT_GT(r.normalized_id_rank(v), 3 * c_prop);
    EXPECT_GT(r.normalized_prop_rank(v), 3 * d_id);
  }
  EXPECT_GT(r.normalized_id_rank(c), 2 * c_prop);
  EXPECT_GT(r.normalized_prop_rank(d), 2 * d_id);
  // And below the detection threshold (0.4 × mean).
  EXPECT_LT(c_prop, 0.4);
  EXPECT_LT(d_id, 0.4);
}

TEST(FaultyRankTest, ConsistentGraphHasNoConvictableFields) {
  const UnifiedGraph g = make_fig3_consistent_graph();
  const FaultyRankResult r = run_faultyrank(g);
  ASSERT_TRUE(r.converged);
  for (Gid v = 0; v < g.vertex_count(); ++v) {
    EXPECT_GT(r.normalized_id_rank(v), 0.4) << "vertex " << v;
    EXPECT_GT(r.normalized_prop_rank(v), 0.4) << "vertex " << v;
  }
}

// Fig. 4: in the reversed pass, a's id mass splits 10:1 between the
// acknowledged pointer (b) and the wishful one (c).
TEST(FaultyRankTest, WeightedDistributionSplitsTenToOne) {
  // Graph: a↔b paired; c→a unpaired. (Exactly Fig. 4.)
  const std::vector<GidEdge> edges = {
      {0, 1, EdgeKind::kGeneric},  // a→b
      {1, 0, EdgeKind::kGeneric},  // b→a
      {2, 0, EdgeKind::kGeneric},  // c→a (no ack)
  };
  const UnifiedGraph g = UnifiedGraph::from_edges(3, edges);
  FaultyRankConfig config;
  config.max_iterations = 1;
  config.epsilon = 1e-12;
  const FaultyRankResult r = run_faultyrank(g, config);

  // After pass 1 (init prop = 1): id_a = 1 (from b) + 1 (from c) + sink
  // share 0 = 2; id_b = 1 from a; id_c = 0.
  EXPECT_NEAR(r.id_rank[0], 2.0, 1e-12);
  EXPECT_NEAR(r.id_rank[1], 1.0, 1e-12);
  EXPECT_NEAR(r.id_rank[2], 0.0, 1e-12);

  // Pass 2: a distributes id_a over reversed out-edges to b (w=1) and c
  // (w=0.1): b gets 2·(10/11), c gets 2·(1/11). b sends id_b to a.
  // c is a reversed sink (no in-edges in G): spreads id_c = 0.
  EXPECT_NEAR(r.prop_rank[1], 2.0 * 10.0 / 11.0, 1e-12);
  EXPECT_NEAR(r.prop_rank[2], 2.0 / 11.0, 1e-12);
  EXPECT_NEAR(r.prop_rank[0], 1.0, 1e-12);
}

TEST(FaultyRankTest, UnpairedWeightOneRemovesPenalty) {
  const std::vector<GidEdge> edges = {
      {0, 1, EdgeKind::kGeneric},
      {1, 0, EdgeKind::kGeneric},
      {2, 0, EdgeKind::kGeneric},
  };
  const UnifiedGraph g = UnifiedGraph::from_edges(3, edges);
  FaultyRankConfig config;
  config.max_iterations = 1;
  config.epsilon = 1e-12;
  config.unpaired_weight = 1.0;
  const FaultyRankResult r = run_faultyrank(g, config);
  // Equal split: b and c each get id_a/2.
  EXPECT_NEAR(r.prop_rank[1], 1.0, 1e-12);
  EXPECT_NEAR(r.prop_rank[2], 1.0, 1e-12);
}

TEST(FaultyRankTest, SinkMassIsRedistributedUniformly) {
  // Single edge 0→1; vertex 1 is a sink in G.
  const std::vector<GidEdge> edges = {{0, 1, EdgeKind::kGeneric}};
  const UnifiedGraph g = UnifiedGraph::from_edges(2, edges);
  FaultyRankConfig config;
  config.max_iterations = 1;
  config.epsilon = 1e-12;
  const FaultyRankResult r = run_faultyrank(g, config);
  // Pass 1: sink share = prop[1]/2 = 0.5 to each; vertex 1 also gets
  // prop[0]/1 = 1. id = [0.5, 1.5].
  EXPECT_NEAR(r.id_rank[0], 0.5, 1e-12);
  EXPECT_NEAR(r.id_rank[1], 1.5, 1e-12);
  EXPECT_NEAR(sum(r.id_rank), 2.0, 1e-12);
}

TEST(FaultyRankTest, ConvergesWithinIterationCap) {
  const GeneratedGraph gen = generate_rmat({.scale = 12, .avg_degree = 8});
  const UnifiedGraph g =
      UnifiedGraph::from_edges(gen.vertex_count, gen.edges);
  FaultyRankConfig config;
  config.diff_norm = DiffNorm::kL1Mean;
  config.epsilon = 1e-6;
  const FaultyRankResult r = run_faultyrank(g, config);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, config.max_iterations);
  EXPECT_GE(r.iterations, 2u);
}

TEST(FaultyRankTest, DiffNormsAllConvergeToSameFixpoint) {
  const UnifiedGraph g = make_fig3_graph();
  FaultyRankConfig l1;
  l1.epsilon = 1e-10;
  FaultyRankConfig linf = l1;
  linf.diff_norm = DiffNorm::kLInf;
  FaultyRankConfig l1m = l1;
  l1m.diff_norm = DiffNorm::kL1Mean;
  const auto r1 = run_faultyrank(g, l1);
  const auto r2 = run_faultyrank(g, linf);
  const auto r3 = run_faultyrank(g, l1m);
  for (Gid v = 0; v < g.vertex_count(); ++v) {
    EXPECT_NEAR(r1.id_rank[v], r2.id_rank[v], 1e-6);
    EXPECT_NEAR(r1.id_rank[v], r3.id_rank[v], 1e-6);
  }
}

TEST(FaultyRankTest, ParallelMatchesSerial) {
  const GeneratedGraph gen = generate_rmat({.scale = 11, .avg_degree = 6});
  const UnifiedGraph g =
      UnifiedGraph::from_edges(gen.vertex_count, gen.edges);
  FaultyRankConfig config;
  config.max_iterations = 10;
  config.epsilon = 1e-12;
  const FaultyRankResult serial = run_faultyrank(g, config, nullptr);
  ThreadPool pool(4);
  const FaultyRankResult parallel = run_faultyrank(g, config, &pool);
  ASSERT_EQ(serial.id_rank.size(), parallel.id_rank.size());
  for (std::size_t v = 0; v < serial.id_rank.size(); ++v) {
    EXPECT_NEAR(serial.id_rank[v], parallel.id_rank[v], 1e-9);
    EXPECT_NEAR(serial.prop_rank[v], parallel.prop_rank[v], 1e-9);
  }
}

TEST(FaultyRankTest, InitialRankScalesLinearly) {
  const UnifiedGraph g = make_fig3_graph();
  FaultyRankConfig unit;
  unit.max_iterations = 5;
  unit.epsilon = 1e-12;
  FaultyRankConfig scaled = unit;
  scaled.initial_rank = 0.25;
  const auto r1 = run_faultyrank(g, unit);
  const auto r2 = run_faultyrank(g, scaled);
  for (Gid v = 0; v < g.vertex_count(); ++v) {
    EXPECT_NEAR(r1.id_rank[v] * 0.25, r2.id_rank[v], 1e-9);
    // Mean-normalized ranks are invariant to the initialization.
    EXPECT_NEAR(r1.normalized_id_rank(v), r2.normalized_id_rank(v), 1e-9);
  }
}

// Property sweep: mass conservation and normalized-rank positivity on
// random graphs of varied shape.
class FaultyRankPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(FaultyRankPropertyTest, InvariantsOnRandomGraphs) {
  Rng rng(GetParam());
  const std::size_t n = 2 + rng.below(300);
  const std::size_t m = rng.below(6 * n);
  std::vector<GidEdge> edges;
  for (std::size_t i = 0; i < m; ++i) {
    edges.push_back({static_cast<Gid>(rng.below(n)),
                     static_cast<Gid>(rng.below(n)), EdgeKind::kGeneric});
  }
  const UnifiedGraph g = UnifiedGraph::from_edges(n, edges);
  const FaultyRankResult r = run_faultyrank(g);
  EXPECT_NEAR(sum(r.id_rank), static_cast<double>(n), n * 1e-9);
  EXPECT_NEAR(sum(r.prop_rank), static_cast<double>(n), n * 1e-9);
  for (std::size_t v = 0; v < n; ++v) {
    EXPECT_GE(r.id_rank[v], 0.0);
    EXPECT_GE(r.prop_rank[v], 0.0);
    EXPECT_TRUE(std::isfinite(r.id_rank[v]));
    EXPECT_TRUE(std::isfinite(r.prop_rank[v]));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, FaultyRankPropertyTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707,
                                           808));


// ---- Per-property separation (paper §VIII future work) ----

TEST(FaultyRankTest, PropertySplitDisabledByDefault) {
  const UnifiedGraph g = make_fig3_graph();
  const FaultyRankResult r = run_faultyrank(g);
  EXPECT_TRUE(r.prop_rank_by_kind.empty());
}

TEST(FaultyRankTest, PropertySplitSumsBackToAggregate) {
  const UnifiedGraph g = make_fig3_graph();
  FaultyRankConfig config;
  config.epsilon = 1e-3;
  config.separate_properties = true;
  const FaultyRankResult r = run_faultyrank(g, config);
  ASSERT_EQ(r.prop_rank_by_kind.size(), kEdgeKindCount);

  // The reversed-pass sink share is uniform: recover it from a vertex
  // with no out-edges at all (object c in Fig. 3 — its LinkEA is gone).
  const Gid c = g.vertices().lookup(Fid{0x200000400, 3, 0});
  double c_kinds = 0.0;
  for (const auto& per_kind : r.prop_rank_by_kind) c_kinds += per_kind[c];
  EXPECT_NEAR(c_kinds, 0.0, 1e-12);
  const double sink_share = r.prop_rank[c];

  for (Gid v = 0; v < g.vertex_count(); ++v) {
    double total = sink_share;
    for (const auto& per_kind : r.prop_rank_by_kind) total += per_kind[v];
    EXPECT_NEAR(total, r.prop_rank[v], 1e-9) << "vertex " << v;
  }
}

TEST(FaultyRankTest, PropertySplitIsolatesTheCorruptKind) {
  // A directory with healthy LinkEA but wiped DIRENT entries: the
  // aggregate prop_rank blends both; the split pins the damage on the
  // DIRENT kind specifically.
  const Fid root{1, 100, 0}, dir{1, 1, 0}, c1{1, 2, 0}, c2{1, 3, 0};
  PartialGraph p;
  p.server = "mds0";
  p.add_vertex(root, ObjectKind::kDirectory);
  p.add_vertex(dir, ObjectKind::kDirectory);
  p.add_vertex(c1, ObjectKind::kFile);
  p.add_vertex(c2, ObjectKind::kFile);
  p.add_edge(root, dir, EdgeKind::kDirent);
  p.add_edge(dir, root, EdgeKind::kLinkEa);   // healthy, paired
  // dir's DIRENT entries for c1/c2 wiped:
  p.add_edge(c1, dir, EdgeKind::kLinkEa);     // unanswered
  p.add_edge(c2, dir, EdgeKind::kLinkEa);     // unanswered
  const PartialGraph partials[] = {p};
  const UnifiedGraph g = UnifiedGraph::aggregate(partials);

  FaultyRankConfig config;
  config.epsilon = 1e-3;
  config.separate_properties = true;
  const FaultyRankResult r = run_faultyrank(g, config);
  const Gid dir_gid = g.vertices().lookup(dir);
  const double link_part = r.prop_rank_by_kind[static_cast<std::size_t>(
      EdgeKind::kLinkEa)][dir_gid];
  const double dirent_part = r.prop_rank_by_kind[static_cast<std::size_t>(
      EdgeKind::kDirent)][dir_gid];
  EXPECT_GT(link_part, 0.0);            // the LinkEA still earns credit
  EXPECT_DOUBLE_EQ(dirent_part, 0.0);   // the DIRENT side earns none
}

}  // namespace
}  // namespace faultyrank
