// Namespace-cycle detection: the paper's §VI "coherently wrong"
// limitation, addressed with a reachability pass.
#include <gtest/gtest.h>

#include "checker/checker.h"
#include "faults/injector.h"
#include "testing/fixtures.h"

namespace faultyrank {
namespace {

/// All scanned MDT objects reachable from the root via DIRENT walks?
bool all_reachable(LustreCluster& cluster) {
  const CheckerResult result = run_checker(cluster);
  return result.report.count(InconsistencyCategory::kNamespaceCycle) == 0 &&
         result.report.consistent();
}

TEST(NamespaceCycleTest, PairedCycleHasNoUnpairedEdges) {
  LustreCluster cluster = testing::make_populated_cluster(200, 211);
  FaultInjector injector(cluster, 2111);
  injector.inject_namespace_cycle();
  // The whole point: edge pairing alone sees nothing wrong.
  const CheckerResult result = run_checker(cluster);
  EXPECT_EQ(result.unpaired_edges, 0u);
  // …but the reachability pass does.
  EXPECT_GE(result.report.count(InconsistencyCategory::kNamespaceCycle), 1u);
}

TEST(NamespaceCycleTest, CycleIsRepairedIntoLostFound) {
  LustreCluster cluster = testing::make_populated_cluster(200, 212);
  FaultInjector injector(cluster, 2122);
  const GroundTruth truth = injector.inject_namespace_cycle();

  CheckerConfig config;
  config.apply_repairs = true;
  config.verify_after_repair = true;
  const CheckerResult result = run_checker(cluster, config);
  EXPECT_GE(result.repairs_applied, 1u);
  EXPECT_TRUE(result.verified_consistent);

  // The cycle head is reachable again (via lost+found) and the second
  // pass reports no remaining cycles.
  EXPECT_TRUE(all_reachable(cluster));
  const Inode* head = cluster.stat(truth.victim);
  ASSERT_NE(head, nullptr);
  ASSERT_FALSE(head->link_ea.empty());
  EXPECT_EQ(head->link_ea.front().parent, cluster.lost_found());
}

TEST(NamespaceCycleTest, SubtreeContentsSurviveTheRepair) {
  LustreCluster cluster(2, StripePolicy{64 * 1024, 1});
  const Fid b = cluster.mkdir(cluster.root(), "b");
  const Fid a = cluster.mkdir(b, "a");
  const Fid file = cluster.create_file(a, "data", 1000);
  FaultInjector injector(cluster, 2133);
  injector.inject_namespace_cycle();

  CheckerConfig config;
  config.apply_repairs = true;
  config.verify_after_repair = true;
  const CheckerResult result = run_checker(cluster, config);
  EXPECT_TRUE(result.verified_consistent);
  // The file deep in the cycled subtree is still intact and owned.
  const Inode* inode = cluster.stat(file);
  ASSERT_NE(inode, nullptr);
  EXPECT_FALSE(inode->link_ea.empty());
  EXPECT_EQ(inode->link_ea.front().parent, a);
}

TEST(NamespaceCycleTest, HealthyClusterReportsNoCycles) {
  LustreCluster cluster = testing::make_populated_cluster(300, 213);
  const CheckerResult result = run_checker(cluster);
  EXPECT_EQ(result.report.count(InconsistencyCategory::kNamespaceCycle), 0u);
}

TEST(NamespaceCycleTest, OneFindingPerCycle) {
  LustreCluster cluster = testing::make_populated_cluster(400, 214);
  FaultInjector injector(cluster, 2144);
  injector.inject_namespace_cycle();
  injector.inject_namespace_cycle();
  const CheckerResult result = run_checker(cluster);
  EXPECT_EQ(result.report.count(InconsistencyCategory::kNamespaceCycle), 2u);
}

TEST(NamespaceCycleTest, DetectionWorksAcrossMdts) {
  LustreCluster cluster(4, StripePolicy{64 * 1024, -1}, 3);
  NamespaceConfig workload;
  workload.file_count = 200;
  workload.seed = 215;
  populate_namespace(cluster, workload);
  FaultInjector injector(cluster, 2155);
  injector.inject_namespace_cycle();

  CheckerConfig config;
  config.apply_repairs = true;
  config.verify_after_repair = true;
  const CheckerResult result = run_checker(cluster, config);
  EXPECT_GE(result.report.count(InconsistencyCategory::kNamespaceCycle), 1u);
  EXPECT_TRUE(result.verified_consistent);
}

}  // namespace
}  // namespace faultyrank
