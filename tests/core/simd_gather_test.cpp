// The SIMD half of the bit-identity contract (DESIGN.md §14): the AVX2
// gathers must reproduce the canonical scalar lane tree bit-for-bit for
// every count (full vectors, tails of 1–3/1–7, empty), and a whole
// kernel run with SIMD enabled must equal the scalar run exactly.
#include "core/rank_gather.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "common/random.h"
#include "core/faultyrank.h"
#include "core/propagation_plan.h"
#include "workload/rmat.h"

namespace faultyrank {
namespace {

#if defined(FAULTYRANK_SIMD)

class SimdGatherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!detail::cpu_supports_avx2()) {
      GTEST_SKIP() << "CPU lacks AVX2 — scalar-only machine";
    }
  }
};

TEST_F(SimdGatherTest, Float64MatchesScalarBitwiseForEveryCount) {
  Rng rng(42);
  constexpr std::size_t kRankSize = 4096;
  std::vector<double> rank(kRankSize);
  for (auto& r : rank) r = rng.uniform(0.0, 8.0);

  for (std::uint64_t count = 0; count <= 70; ++count) {
    std::vector<Gid> targets(count);
    std::vector<double> coeff(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      targets[i] = static_cast<Gid>(rng.below(kRankSize));
      // Mix in exact zeros — the skipped-slot case of pass 2.
      coeff[i] = rng.chance(0.2) ? 0.0 : rng.uniform(0.0, 1.0);
    }
    const double scalar = detail::gather_scalar<double>(
        targets.data(), coeff.data(), count, rank.data());
    const double simd = detail::gather_avx2_f64(targets.data(), coeff.data(),
                                                count, rank.data());
    ASSERT_EQ(std::bit_cast<std::uint64_t>(scalar),
              std::bit_cast<std::uint64_t>(simd))
        << "count=" << count << ": " << scalar << " vs " << simd;
  }
}

TEST_F(SimdGatherTest, Float32MatchesScalarBitwiseForEveryCount) {
  Rng rng(43);
  constexpr std::size_t kRankSize = 4096;
  std::vector<float> rank(kRankSize);
  for (auto& r : rank) r = static_cast<float>(rng.uniform(0.0, 8.0));

  for (std::uint64_t count = 0; count <= 70; ++count) {
    std::vector<Gid> targets(count);
    std::vector<float> coeff(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      targets[i] = static_cast<Gid>(rng.below(kRankSize));
      coeff[i] =
          rng.chance(0.2) ? 0.0f : static_cast<float>(rng.uniform(0.0, 1.0));
    }
    const float scalar = detail::gather_scalar<float>(
        targets.data(), coeff.data(), count, rank.data());
    const float simd = detail::gather_avx2_f32(targets.data(), coeff.data(),
                                               count, rank.data());
    ASSERT_EQ(std::bit_cast<std::uint32_t>(scalar),
              std::bit_cast<std::uint32_t>(simd))
        << "count=" << count << ": " << scalar << " vs " << simd;
  }
}

TEST_F(SimdGatherTest, KernelRunsIdenticallyWithAndWithoutSimd) {
  const GeneratedGraph gen = generate_rmat({.scale = 12, .avg_degree = 8});
  const UnifiedGraph g = UnifiedGraph::from_edges(gen.vertex_count, gen.edges);
  FaultyRankConfig config;
  config.epsilon = 1e-7;
  config.max_iterations = 40;

  FaultyRankConfig scalar_config = config;
  scalar_config.use_simd = false;
  const FaultyRankResult scalar = run_faultyrank(g, scalar_config);
  const FaultyRankResult simd = run_faultyrank(g, config);

  EXPECT_EQ(scalar.iterations, simd.iterations);
  ASSERT_EQ(scalar.id_rank.size(), simd.id_rank.size());
  for (std::size_t v = 0; v < scalar.id_rank.size(); ++v) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(scalar.id_rank[v]),
              std::bit_cast<std::uint64_t>(simd.id_rank[v]))
        << "id_rank diverges at " << v;
    ASSERT_EQ(std::bit_cast<std::uint64_t>(scalar.prop_rank[v]),
              std::bit_cast<std::uint64_t>(simd.prop_rank[v]))
        << "prop_rank diverges at " << v;
  }
  EXPECT_EQ(std::bit_cast<std::uint64_t>(scalar.final_diff),
            std::bit_cast<std::uint64_t>(simd.final_diff));
}

TEST_F(SimdGatherTest, Float32KernelRunsIdenticallyWithAndWithoutSimd) {
  const GeneratedGraph gen = generate_rmat({.scale = 11, .avg_degree = 8});
  const UnifiedGraph g = UnifiedGraph::from_edges(gen.vertex_count, gen.edges);
  FaultyRankConfig config;
  config.epsilon = 1e-5;
  config.float32 = true;

  FaultyRankConfig scalar_config = config;
  scalar_config.use_simd = false;
  const FaultyRankResult scalar = run_faultyrank(g, scalar_config);
  const FaultyRankResult simd = run_faultyrank(g, config);

  ASSERT_EQ(scalar.id_rank.size(), simd.id_rank.size());
  for (std::size_t v = 0; v < scalar.id_rank.size(); ++v) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(scalar.id_rank[v]),
              std::bit_cast<std::uint64_t>(simd.id_rank[v]))
        << "float32 id_rank diverges at " << v;
  }
}

#else  // !FAULTYRANK_SIMD

TEST(SimdGatherTest, CompiledOut) {
  GTEST_SKIP() << "FAULTYRANK_SIMD is OFF — nothing to compare";
}

#endif  // FAULTYRANK_SIMD

}  // namespace
}  // namespace faultyrank
