#include "core/detector.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace faultyrank {
namespace {

using testing::Fig3Fids;
using testing::make_fig3_consistent_graph;
using testing::make_fig3_graph;

DetectionReport detect(const UnifiedGraph& graph) {
  FaultyRankConfig config;
  config.epsilon = 1e-3;
  const FaultyRankResult ranks = run_faultyrank(graph, config);
  return detect_inconsistencies(graph, ranks);
}

TEST(DetectorTest, ConsistentGraphYieldsNoFindings) {
  const DetectionReport report = detect(make_fig3_consistent_graph());
  EXPECT_TRUE(report.consistent());
  EXPECT_TRUE(report.repair_plan().empty());
}

TEST(DetectorTest, Fig3FindsBothInjectedInconsistencies) {
  const UnifiedGraph g = make_fig3_graph();
  const DetectionReport report = detect(g);
  const Fig3Fids fids;
  ASSERT_EQ(report.findings.size(), 2u);

  // c's missing LinkEA: a→c mismatch convicting c's property.
  const Finding* c_finding = nullptr;
  const Finding* b_finding = nullptr;
  for (const Finding& f : report.findings) {
    if (f.convicted_object == fids.c) c_finding = &f;
    if (f.convicted_object == fids.b) b_finding = &f;
  }
  ASSERT_NE(c_finding, nullptr);
  EXPECT_EQ(c_finding->culprit, FaultyField::kTargetProperty);
  EXPECT_FALSE(c_finding->convicted_id_field);
  EXPECT_EQ(c_finding->repair.kind, RepairKind::kAddBackPointer);
  EXPECT_EQ(c_finding->repair.target, fids.c);
  EXPECT_EQ(c_finding->repair.value, fids.a);

  // The b↔d inconsistency: in the Fig. 3 graph b carries no LOVEA edge
  // at all, so the structural evidence convicts b's property and the
  // repair reconnects b → d — the lossless reconstruction (the paper
  // reads the same record through d's minimal id rank; either way the
  // only consistent, data-preserving fix is relinking the pair).
  ASSERT_NE(b_finding, nullptr);
  EXPECT_EQ(b_finding->culprit, FaultyField::kTargetProperty);
  EXPECT_EQ(b_finding->repair.kind, RepairKind::kAddBackPointer);
  EXPECT_EQ(b_finding->repair.target, fids.b);
  EXPECT_EQ(b_finding->repair.value, fids.d);
  EXPECT_EQ(b_finding->category, InconsistencyCategory::kUnreferencedObject);
}

TEST(DetectorTest, CategoriesCountedCorrectly) {
  const DetectionReport report = detect(make_fig3_graph());
  EXPECT_EQ(report.count(InconsistencyCategory::kMismatch) +
                report.count(InconsistencyCategory::kUnreferencedObject),
            2u);
  EXPECT_EQ(report.count(InconsistencyCategory::kDoubleReference), 0u);
}

TEST(DetectorTest, DanglingToPhantomWithMisidentifiedObject) {
  // a → b_old (phantom); b (scanned, unreferenced) → a. Classic
  // "b's id is wrong" dangling: repair rewrites b's id to b_old.
  const Fid a{1, 1, 0}, b_old{1, 2, 0}, b_new{1, 99, 0};
  PartialGraph p;
  p.server = "mds0";
  p.add_vertex(a, ObjectKind::kFile);
  p.add_vertex(b_new, ObjectKind::kStripeObject);
  p.add_edge(a, b_old, EdgeKind::kLovEa);
  p.add_edge(b_new, a, EdgeKind::kObjParent);
  const PartialGraph partials[] = {p};
  const UnifiedGraph g = UnifiedGraph::aggregate(partials);

  DetectorConfig config;
  config.root = a;  // exempt a from the unreferenced check
  FaultyRankConfig rank_config;
  rank_config.epsilon = 1e-3;
  const auto ranks = run_faultyrank(g, rank_config);
  const DetectionReport report = detect_inconsistencies(g, ranks, config);

  const Finding* dangling = nullptr;
  for (const Finding& f : report.findings) {
    if (f.category == InconsistencyCategory::kDanglingReference) dangling = &f;
  }
  ASSERT_NE(dangling, nullptr);
  EXPECT_EQ(dangling->culprit, FaultyField::kTargetId);
  EXPECT_EQ(dangling->repair.kind, RepairKind::kOverwriteId);
  EXPECT_EQ(dangling->repair.target, b_new);
  EXPECT_EQ(dangling->repair.value, b_old);
}

TEST(DetectorTest, AllSlotsDanglingConvictsSourceProperty) {
  // File f's two LOVEA slots both point at bogus ids while its two real
  // stripes still point back: §II-C aggregate evidence.
  const Fid f{1, 1, 0}, bogus1{9, 1, 0}, bogus2{9, 2, 0}, s1{2, 1, 0},
      s2{2, 2, 0}, parent{1, 100, 0};
  PartialGraph p;
  p.server = "mds0";
  p.add_vertex(parent, ObjectKind::kDirectory);
  p.add_vertex(f, ObjectKind::kFile);
  p.add_vertex(s1, ObjectKind::kStripeObject);
  p.add_vertex(s2, ObjectKind::kStripeObject);
  p.add_edge(parent, f, EdgeKind::kDirent);
  p.add_edge(f, parent, EdgeKind::kLinkEa);
  p.add_edge(f, bogus1, EdgeKind::kLovEa);
  p.add_edge(f, bogus2, EdgeKind::kLovEa);
  p.add_edge(s1, f, EdgeKind::kObjParent);
  p.add_edge(s2, f, EdgeKind::kObjParent);
  const PartialGraph partials[] = {p};
  const UnifiedGraph g = UnifiedGraph::aggregate(partials);
  DetectorConfig config;
  config.root = parent;
  FaultyRankConfig rank_config;
  rank_config.epsilon = 1e-3;
  const DetectionReport report =
      detect_inconsistencies(g, run_faultyrank(g, rank_config), config);

  std::size_t relinks = 0;
  for (const Finding& finding : report.findings) {
    if (finding.repair.kind == RepairKind::kRelinkProperty) {
      EXPECT_EQ(finding.culprit, FaultyField::kSourceProperty);
      EXPECT_EQ(finding.repair.target, f);
      EXPECT_TRUE(finding.repair.value == s1 || finding.repair.value == s2);
      ++relinks;
    }
  }
  // Both corrupted slots are re-linked to distinct stranded stripes.
  EXPECT_EQ(relinks, 2u);
  const RepairPlan plan = report.repair_plan();
  bool distinct = false;
  for (const auto& action : plan) {
    for (const auto& other : plan) {
      if (&action != &other && action.kind == RepairKind::kRelinkProperty &&
          other.kind == RepairKind::kRelinkProperty &&
          action.value != other.value) {
        distinct = true;
      }
    }
  }
  EXPECT_TRUE(distinct);
}

TEST(DetectorTest, OverReferenceKeepsAcknowledgedClaimant) {
  // Two files claim stripe s; s acknowledges only c.
  const Fid a{1, 1, 0}, c{1, 2, 0}, s{2, 1, 0}, root{1, 100, 0};
  PartialGraph p;
  p.server = "mds0";
  p.add_vertex(root, ObjectKind::kDirectory);
  p.add_vertex(a, ObjectKind::kFile);
  p.add_vertex(c, ObjectKind::kFile);
  p.add_vertex(s, ObjectKind::kStripeObject);
  p.add_edge(root, a, EdgeKind::kDirent);
  p.add_edge(root, c, EdgeKind::kDirent);
  p.add_edge(a, root, EdgeKind::kLinkEa);
  p.add_edge(c, root, EdgeKind::kLinkEa);
  p.add_edge(a, s, EdgeKind::kLovEa);
  p.add_edge(c, s, EdgeKind::kLovEa);
  p.add_edge(s, c, EdgeKind::kObjParent);
  const PartialGraph partials[] = {p};
  const UnifiedGraph g = UnifiedGraph::aggregate(partials);
  DetectorConfig config;
  config.root = root;
  FaultyRankConfig rank_config;
  rank_config.epsilon = 1e-3;
  const DetectionReport report =
      detect_inconsistencies(g, run_faultyrank(g, rank_config), config);

  const Finding* double_ref = nullptr;
  for (const Finding& f : report.findings) {
    if (f.category == InconsistencyCategory::kDoubleReference) double_ref = &f;
  }
  ASSERT_NE(double_ref, nullptr);
  // a (unacknowledged) loses its claim, never c.
  EXPECT_EQ(double_ref->repair.target, a);
  EXPECT_EQ(double_ref->culprit, FaultyField::kSourceProperty);
}

TEST(DetectorTest, IsolatedObjectGoesToLostFound) {
  const Fid root{1, 100, 0}, orphan{2, 1, 0};
  PartialGraph p;
  p.server = "mds0";
  p.add_vertex(root, ObjectKind::kDirectory);
  p.add_vertex(orphan, ObjectKind::kStripeObject);
  const PartialGraph partials[] = {p};
  const UnifiedGraph g = UnifiedGraph::aggregate(partials);
  DetectorConfig config;
  config.root = root;
  const DetectionReport report =
      detect_inconsistencies(g, run_faultyrank(g), config);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].category,
            InconsistencyCategory::kUnreferencedObject);
  EXPECT_EQ(report.findings[0].repair.kind,
            RepairKind::kQuarantineLostFound);
  EXPECT_EQ(report.findings[0].repair.target, orphan);
}

TEST(DetectorTest, RepairPlanDeduplicatesIdenticalActions) {
  // A directory with a corrupted id: every child's dangling parent link
  // resolves to the same overwrite-id action.
  const Fid root{1, 100, 0}, dir_old{1, 1, 0}, dir_new{1, 99, 0},
      c1{1, 2, 0}, c2{1, 3, 0};
  PartialGraph p;
  p.server = "mds0";
  p.add_vertex(root, ObjectKind::kDirectory);
  p.add_vertex(dir_new, ObjectKind::kDirectory);
  p.add_vertex(c1, ObjectKind::kDirectory);
  p.add_vertex(c2, ObjectKind::kDirectory);
  p.add_edge(root, dir_old, EdgeKind::kDirent);
  p.add_edge(dir_new, root, EdgeKind::kLinkEa);
  p.add_edge(dir_new, c1, EdgeKind::kDirent);
  p.add_edge(dir_new, c2, EdgeKind::kDirent);
  p.add_edge(c1, dir_old, EdgeKind::kLinkEa);
  p.add_edge(c2, dir_old, EdgeKind::kLinkEa);
  const PartialGraph partials[] = {p};
  const UnifiedGraph g = UnifiedGraph::aggregate(partials);
  DetectorConfig config;
  config.root = root;
  FaultyRankConfig rank_config;
  rank_config.epsilon = 1e-3;
  const DetectionReport report =
      detect_inconsistencies(g, run_faultyrank(g, rank_config), config);

  std::size_t overwrite_actions = 0;
  for (const auto& action : report.repair_plan()) {
    if (action.kind == RepairKind::kOverwriteId) {
      EXPECT_EQ(action.target, dir_new);
      EXPECT_EQ(action.value, dir_old);
      ++overwrite_actions;
    }
  }
  EXPECT_EQ(overwrite_actions, 1u);
}

TEST(DetectorTest, ThresholdZeroConvictsNothingOnAmbiguousGraph) {
  // A graph with no decisive structural signal: a↔root paired, a→b
  // unanswered, while b points at a phantom endorsed by *two* objects
  // (so neither the wishful-pointer nor the absent-property rule
  // applies). With θ=0 the rank gate can never convict either — every
  // record must stay undetermined.
  const Fid root{1, 100, 0}, a{1, 1, 0}, b{2, 1, 0}, c{2, 2, 0}, p{9, 9, 0};
  PartialGraph partial;
  partial.server = "mds0";
  partial.add_vertex(root, ObjectKind::kDirectory);
  partial.add_vertex(a, ObjectKind::kFile);
  partial.add_vertex(b, ObjectKind::kStripeObject);
  partial.add_vertex(c, ObjectKind::kStripeObject);
  partial.add_edge(root, a, EdgeKind::kDirent);
  partial.add_edge(a, root, EdgeKind::kLinkEa);
  partial.add_edge(a, b, EdgeKind::kLovEa);
  partial.add_edge(b, p, EdgeKind::kObjParent);
  partial.add_edge(c, p, EdgeKind::kObjParent);
  const PartialGraph partials[] = {partial};
  const UnifiedGraph g = UnifiedGraph::aggregate(partials);

  FaultyRankConfig rank_config;
  rank_config.epsilon = 1e-3;
  DetectorConfig config;
  config.threshold = 0.0;
  config.root = root;
  const DetectionReport report =
      detect_inconsistencies(g, run_faultyrank(g, rank_config), config);
  EXPECT_FALSE(report.findings.empty());
  for (const Finding& f : report.findings) {
    EXPECT_EQ(f.culprit, FaultyField::kUndetermined) << f.note;
  }
}

}  // namespace
}  // namespace faultyrank
