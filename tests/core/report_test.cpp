#include "core/report.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace faultyrank {
namespace {

DetectionReport fig3_report() {
  const UnifiedGraph g = testing::make_fig3_graph();
  FaultyRankConfig config;
  config.epsilon = 1e-3;
  return detect_inconsistencies(g, run_faultyrank(g, config));
}

TEST(ReportTest, ConsistentTextIsOneLiner) {
  const DetectionReport empty;
  EXPECT_EQ(render_text(empty), "filesystem is consistent: no findings\n");
}

TEST(ReportTest, TextListsEveryFindingWithEvidence) {
  const DetectionReport report = fig3_report();
  const std::string text = render_text(report);
  EXPECT_NE(text.find("finding(s):"), std::string::npos);
  EXPECT_NE(text.find("culprit: target.property"), std::string::npos);
  EXPECT_NE(text.find("repair:  add-back-pointer"), std::string::npos);
  EXPECT_NE(text.find("ranks:"), std::string::npos);
  // One block per finding.
  std::size_t blocks = 0;
  for (std::size_t pos = text.find("\n["); pos != std::string::npos;
       pos = text.find("\n[", pos + 1)) {
    ++blocks;
  }
  EXPECT_EQ(blocks, report.findings.size());
}

TEST(ReportTest, JsonIsStructurallySound) {
  const DetectionReport report = fig3_report();
  const std::string json = render_json(report);
  // Braces and brackets balance.
  int braces = 0;
  int brackets = 0;
  for (const char ch : json) {
    braces += (ch == '{') - (ch == '}');
    brackets += (ch == '[') - (ch == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_NE(json.find("\"consistent\": false"), std::string::npos);
  EXPECT_NE(json.find("\"finding_count\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"categories\""), std::string::npos);
  EXPECT_NE(json.find("\"repair\""), std::string::npos);
}

TEST(ReportTest, JsonForConsistentReport) {
  const DetectionReport empty;
  const std::string json = render_json(empty);
  EXPECT_NE(json.find("\"consistent\": true"), std::string::npos);
  EXPECT_NE(json.find("\"finding_count\": 0"), std::string::npos);
}

TEST(ReportTest, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

}  // namespace
}  // namespace faultyrank
