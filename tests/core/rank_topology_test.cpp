// Closed-form rank checks on pathological topologies: stars, chains,
// cycles, cliques — the shapes where degree effects, sinks, and
// periodicity stress the iteration.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/faultyrank.h"

namespace faultyrank {
namespace {

UnifiedGraph graph_of(std::size_t n, std::vector<GidEdge> edges) {
  return UnifiedGraph::from_edges(n, edges);
}

FaultyRankConfig tight() {
  FaultyRankConfig config;
  config.epsilon = 1e-10;
  config.max_iterations = 500;
  return config;
}

double sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

TEST(RankTopologyTest, SingleVertexKeepsItsMass) {
  const UnifiedGraph g = graph_of(1, {});
  const FaultyRankResult r = run_faultyrank(g, tight());
  // Sink redistribution hands the lone vertex its own mass back.
  EXPECT_NEAR(r.id_rank[0], 1.0, 1e-9);
  EXPECT_NEAR(r.prop_rank[0], 1.0, 1e-9);
}

TEST(RankTopologyTest, TwoCycleIsSymmetricFixpoint) {
  const UnifiedGraph g = graph_of(2, {{0, 1, EdgeKind::kGeneric},
                                      {1, 0, EdgeKind::kGeneric}});
  const FaultyRankResult r = run_faultyrank(g, tight());
  EXPECT_NEAR(r.id_rank[0], 1.0, 1e-9);
  EXPECT_NEAR(r.id_rank[1], 1.0, 1e-9);
  EXPECT_NEAR(r.prop_rank[0], 1.0, 1e-9);
  EXPECT_NEAR(r.prop_rank[1], 1.0, 1e-9);
}

TEST(RankTopologyTest, PairedStarConcentratesIdMassOnHub) {
  // Hub 0 paired with leaves 1..k: hub's id is endorsed k times (each
  // leaf's whole property mass), leaves' ids only by the hub's split.
  constexpr std::size_t kLeaves = 8;
  std::vector<GidEdge> edges;
  for (Gid leaf = 1; leaf <= kLeaves; ++leaf) {
    edges.push_back({0, leaf, EdgeKind::kGeneric});
    edges.push_back({leaf, 0, EdgeKind::kGeneric});
  }
  const UnifiedGraph g = graph_of(kLeaves + 1, edges);
  const FaultyRankResult r = run_faultyrank(g, tight());
  for (Gid leaf = 1; leaf <= kLeaves; ++leaf) {
    EXPECT_GT(r.id_rank[0], 3 * r.id_rank[leaf]);
    // All leaves are symmetric.
    EXPECT_NEAR(r.id_rank[leaf], r.id_rank[1], 1e-9);
    EXPECT_NEAR(r.prop_rank[leaf], r.prop_rank[1], 1e-9);
  }
  EXPECT_NEAR(sum(r.id_rank), kLeaves + 1.0, 1e-6);
}

TEST(RankTopologyTest, DirectedChainDrainsToTheTail) {
  // 0→1→2→3 with no point-backs: every edge is unpaired; the head gets
  // id credit from nobody (sink share only).
  const UnifiedGraph g = graph_of(4, {{0, 1, EdgeKind::kGeneric},
                                      {1, 2, EdgeKind::kGeneric},
                                      {2, 3, EdgeKind::kGeneric}});
  FaultyRankConfig config = tight();
  const FaultyRankResult r = run_faultyrank(g, config);
  EXPECT_LT(r.id_rank[0], r.id_rank[3]);
  EXPECT_NEAR(sum(r.id_rank), 4.0, 1e-6);
  EXPECT_NEAR(sum(r.prop_rank), 4.0, 1e-6);
}

TEST(RankTopologyTest, FullyPairedCliqueIsUniform) {
  constexpr std::size_t kN = 6;
  std::vector<GidEdge> edges;
  for (Gid u = 0; u < kN; ++u) {
    for (Gid v = 0; v < kN; ++v) {
      if (u != v) edges.push_back({u, v, EdgeKind::kGeneric});
    }
  }
  const UnifiedGraph g = graph_of(kN, edges);
  const FaultyRankResult r = run_faultyrank(g, tight());
  for (Gid v = 0; v < kN; ++v) {
    EXPECT_NEAR(r.id_rank[v], 1.0, 1e-9);
    EXPECT_NEAR(r.prop_rank[v], 1.0, 1e-9);
  }
}

TEST(RankTopologyTest, SelfLoopIsItsOwnPairing) {
  // A self-loop u→u is trivially "paired" (the reverse edge is itself).
  const UnifiedGraph g = graph_of(2, {{0, 0, EdgeKind::kGeneric},
                                      {1, 0, EdgeKind::kGeneric}});
  const FaultyRankResult r = run_faultyrank(g, tight());
  EXPECT_TRUE(std::isfinite(r.id_rank[0]));
  EXPECT_TRUE(std::isfinite(r.prop_rank[0]));
  EXPECT_NEAR(sum(r.id_rank), 2.0, 1e-6);
}

TEST(RankTopologyTest, DisconnectedComponentsDoNotStarve) {
  // Two independent paired pairs: each keeps its own mass.
  const UnifiedGraph g = graph_of(4, {{0, 1, EdgeKind::kGeneric},
                                      {1, 0, EdgeKind::kGeneric},
                                      {2, 3, EdgeKind::kGeneric},
                                      {3, 2, EdgeKind::kGeneric}});
  const FaultyRankResult r = run_faultyrank(g, tight());
  for (Gid v = 0; v < 4; ++v) {
    EXPECT_NEAR(r.id_rank[v], 1.0, 1e-9) << "vertex " << v;
  }
}

TEST(RankTopologyTest, AllSinksGraphStaysUniform) {
  // No edges at all: every vertex is a sink; redistribution keeps the
  // uniform distribution as the exact fixpoint.
  const UnifiedGraph g = graph_of(5, {});
  const FaultyRankResult r = run_faultyrank(g, tight());
  for (Gid v = 0; v < 5; ++v) {
    EXPECT_NEAR(r.id_rank[v], 1.0, 1e-9);
    EXPECT_NEAR(r.prop_rank[v], 1.0, 1e-9);
  }
}

}  // namespace
}  // namespace faultyrank
