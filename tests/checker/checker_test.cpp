// End-to-end integration: inject → scan → rank → detect → repair →
// re-scan, across every scenario and several namespaces.
#include "checker/checker.h"

#include <gtest/gtest.h>

#include "faults/injector.h"
#include "lfsck/lfsck.h"
#include "pfs/persistence.h"
#include "testing/fixtures.h"

namespace faultyrank {
namespace {

TEST(CheckerTest, HealthyClusterReportsConsistent) {
  LustreCluster cluster = testing::make_populated_cluster(150, 41);
  const CheckerResult result = run_checker(cluster);
  EXPECT_TRUE(result.report.consistent());
  EXPECT_EQ(result.unpaired_edges, 0u);
  EXPECT_GT(result.vertices, 0u);
  EXPECT_GT(result.edges, 0u);
  EXPECT_EQ(result.inodes_scanned,
            cluster.mdt_inodes_used() + cluster.total_ost_objects());
}

TEST(CheckerTest, TimingBreakdownIsPopulated) {
  LustreCluster cluster = testing::make_populated_cluster(150, 42);
  const CheckerResult result = run_checker(cluster);
  EXPECT_GT(result.timings.t_scan_sim, 0.0);
  // Transfers stream to the MDS while slower scanners are still
  // running, so t_graph_sim carries only the unhidden surplus — which
  // a small cluster can pipeline away entirely.
  EXPECT_GE(result.timings.t_graph_sim, 0.0);
  EXPECT_GE(result.timings.t_fr_wall, 0.0);
  EXPECT_GE(result.timings.total_sim(),
            result.timings.t_scan_sim + result.timings.t_graph_sim);
}

TEST(CheckerTest, RepairsAreIdempotent) {
  LustreCluster cluster = testing::make_populated_cluster(150, 43);
  FaultInjector injector(cluster, 17);
  injector.inject(Scenario::kDanglingTargetId);

  CheckerConfig config;
  config.apply_repairs = true;
  config.verify_after_repair = true;
  const CheckerResult first = run_checker(cluster, config);
  EXPECT_TRUE(first.verified_consistent);
  // A second full run finds nothing and changes nothing.
  const CheckerResult second = run_checker(cluster, config);
  EXPECT_TRUE(second.report.consistent());
  EXPECT_EQ(second.repairs_applied, 0u);
}

TEST(CheckerTest, ThreadPoolProducesSameReport) {
  LustreCluster c1 = testing::make_populated_cluster(150, 44);
  LustreCluster c2 = testing::make_populated_cluster(150, 44);
  FaultInjector i1(c1, 18);
  FaultInjector i2(c2, 18);
  i1.inject(Scenario::kMismatchTargetProperty);
  i2.inject(Scenario::kMismatchTargetProperty);

  const CheckerResult serial = run_checker(c1);
  ThreadPool pool(4);
  CheckerConfig parallel_config;
  parallel_config.pool = &pool;
  const CheckerResult parallel = run_checker(c2, parallel_config);
  ASSERT_EQ(serial.report.findings.size(), parallel.report.findings.size());
  for (std::size_t i = 0; i < serial.report.findings.size(); ++i) {
    EXPECT_EQ(serial.report.findings[i].repair.kind,
              parallel.report.findings[i].repair.kind);
    EXPECT_EQ(serial.report.findings[i].convicted_object,
              parallel.report.findings[i].convicted_object);
  }
}

// The Fig. 7 core claim, as a parameterized sweep: for every scenario ×
// seed, FaultyRank identifies the injected root cause, repairs it, and
// the repaired filesystem re-scans clean with the original metadata
// restored.
struct ScenarioCase {
  Scenario scenario;
  std::uint64_t seed;
};

class ScenarioSweepTest : public ::testing::TestWithParam<ScenarioCase> {};

TEST_P(ScenarioSweepTest, DetectsRepairsAndRestores) {
  const auto [scenario, seed] = GetParam();
  LustreCluster cluster = testing::make_populated_cluster(250, seed, 4);
  FaultInjector injector(cluster, seed * 1000 + 7);
  const GroundTruth truth = injector.inject(scenario);

  CheckerConfig config;
  config.apply_repairs = true;
  config.verify_after_repair = true;
  const CheckerResult result = run_checker(cluster, config);

  const EvalOutcome outcome = evaluate_report(result.report, truth);
  EXPECT_TRUE(outcome.detected) << to_string(scenario);
  EXPECT_TRUE(outcome.root_cause_identified) << to_string(scenario);
  EXPECT_TRUE(outcome.repair_recommended) << to_string(scenario);
  EXPECT_TRUE(result.verified_consistent) << to_string(scenario);
  EXPECT_TRUE(verify_restored(cluster, truth)) << to_string(scenario);
}

std::vector<ScenarioCase> all_cases() {
  std::vector<ScenarioCase> cases;
  for (const Scenario scenario : kAllScenarios) {
    for (const std::uint64_t seed : {61ull, 62ull, 63ull}) {
      cases.push_back({scenario, seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, ScenarioSweepTest, ::testing::ValuesIn(all_cases()),
    [](const ::testing::TestParamInfo<ScenarioCase>& info) {
      std::string name = to_string(info.param.scenario);
      for (char& ch : name) {
        if (ch == '/' || ch == '-') ch = '_';
      }
      return name + "_seed" + std::to_string(info.param.seed);
    });

// FaultyRank vs LFSCK on the paper's headline differentiators: the
// cases LFSCK cannot identify or repairs destructively, FaultyRank
// restores losslessly.
TEST(CheckerVsLfsckTest, SourcePropertyCorruption) {
  // FaultyRank re-links the corrupted property to the stranded stripes.
  LustreCluster fr_cluster = testing::make_populated_cluster(200, 71);
  FaultInjector fr_injector(fr_cluster, 19);
  const GroundTruth fr_truth =
      fr_injector.inject(Scenario::kDanglingSourceProperty);
  CheckerConfig config;
  config.apply_repairs = true;
  config.verify_after_repair = true;
  const CheckerResult fr_result = run_checker(fr_cluster, config);
  EXPECT_TRUE(fr_result.verified_consistent);
  EXPECT_TRUE(verify_restored(fr_cluster, fr_truth));

  // LFSCK "repairs" by re-creating empty objects; the data reference is
  // never restored.
  LustreCluster lfsck_cluster = testing::make_populated_cluster(200, 71);
  FaultInjector lfsck_injector(lfsck_cluster, 19);
  const GroundTruth lfsck_truth =
      lfsck_injector.inject(Scenario::kDanglingSourceProperty);
  (void)run_lfsck(lfsck_cluster);
  EXPECT_FALSE(verify_restored(lfsck_cluster, lfsck_truth));
}

TEST(CheckerVsLfsckTest, CorruptedIdRestoredOnlyByFaultyRank) {
  LustreCluster fr_cluster = testing::make_populated_cluster(200, 72);
  FaultInjector fr_injector(fr_cluster, 20);
  const GroundTruth fr_truth = fr_injector.inject(Scenario::kMismatchSourceId);
  CheckerConfig config;
  config.apply_repairs = true;
  config.verify_after_repair = true;
  (void)run_checker(fr_cluster, config);
  EXPECT_TRUE(verify_restored(fr_cluster, fr_truth));

  LustreCluster lfsck_cluster = testing::make_populated_cluster(200, 72);
  FaultInjector lfsck_injector(lfsck_cluster, 20);
  const GroundTruth lfsck_truth =
      lfsck_injector.inject(Scenario::kMismatchSourceId);
  (void)run_lfsck(lfsck_cluster);
  EXPECT_FALSE(verify_restored(lfsck_cluster, lfsck_truth));
}

TEST(CheckerTest, MultiFaultCampaignFullyRepaired) {
  LustreCluster cluster = testing::make_populated_cluster(400, 73);
  FaultInjector injector(cluster, 21);
  const std::vector<GroundTruth> truths = injector.inject_campaign(8);

  CheckerConfig config;
  config.apply_repairs = true;
  config.verify_after_repair = true;
  const CheckerResult result = run_checker(cluster, config);
  EXPECT_TRUE(result.verified_consistent);
  std::size_t restored = 0;
  for (const GroundTruth& truth : truths) {
    if (verify_restored(cluster, truth)) ++restored;
  }
  // All simultaneous faults detected and repaired to original state.
  EXPECT_EQ(restored, truths.size());
}


TEST(UndoTest, CapturedImageRollsRepairsBack) {
  LustreCluster cluster = testing::make_populated_cluster(150, 74);
  FaultInjector injector(cluster, 22);
  const GroundTruth truth = injector.inject(Scenario::kMismatchTargetProperty);

  CheckerConfig config;
  config.apply_repairs = true;
  config.capture_undo = true;
  const CheckerResult result = run_checker(cluster, config);
  ASSERT_FALSE(result.undo_image.empty());
  EXPECT_GE(result.repairs_applied, 1u);
  EXPECT_TRUE(verify_restored(cluster, truth));

  // Roll back: the fault is present again, repairs undone.
  LustreCluster rolled_back = deserialize_cluster(result.undo_image);
  EXPECT_FALSE(verify_restored(rolled_back, truth));
  const CheckerResult recheck = run_checker(rolled_back);
  EXPECT_FALSE(recheck.report.consistent());
}

TEST(UndoTest, NoUndoCapturedWithoutRepairsOrFlag) {
  LustreCluster healthy = testing::make_populated_cluster(60, 75);
  CheckerConfig config;
  config.apply_repairs = true;
  config.capture_undo = true;
  // Healthy cluster: nothing to repair, nothing captured.
  EXPECT_TRUE(run_checker(healthy, config).undo_image.empty());

  LustreCluster broken = testing::make_populated_cluster(60, 76);
  FaultInjector injector(broken, 23);
  injector.inject(Scenario::kDanglingTargetId);
  CheckerConfig no_undo;
  no_undo.apply_repairs = true;
  EXPECT_TRUE(run_checker(broken, no_undo).undo_image.empty());
}

}  // namespace
}  // namespace faultyrank
