#include "checker/repair_executor.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace faultyrank {
namespace {

TEST(RepairExecutorTest, OverwriteIdRewritesLmaAndOi) {
  LustreCluster cluster(2, StripePolicy{64 * 1024, 1});
  const Fid file = cluster.create_file(cluster.root(), "f", 1000);
  const Fid new_id{0x777, 1, 0};

  RepairExecutor executor(cluster);
  const RepairOutcome outcome = executor.apply(
      {RepairKind::kOverwriteId, file, new_id, kNullFid, EdgeKind::kGeneric,
       kNullFid, ""});
  EXPECT_TRUE(outcome.applied);
  EXPECT_EQ(cluster.mdt().image.find_by_fid_raw(file), nullptr);
  const Inode* inode = cluster.mdt().image.find_by_fid(new_id);
  ASSERT_NE(inode, nullptr);
  EXPECT_EQ(inode->lma_fid, new_id);
}

TEST(RepairExecutorTest, OverwriteIdMissingTargetFails) {
  LustreCluster cluster(2);
  RepairExecutor executor(cluster);
  const RepairOutcome outcome = executor.apply(
      {RepairKind::kOverwriteId, Fid{9, 9, 9}, Fid{1, 1, 1}, kNullFid,
       EdgeKind::kGeneric, kNullFid, ""});
  EXPECT_FALSE(outcome.applied);
}

TEST(RepairExecutorTest, OverwriteIdHonoursOwnerHintOnCollision) {
  LustreCluster cluster(2, StripePolicy{64 * 1024, 1});
  const Fid file_a = cluster.create_file(cluster.root(), "a", 1000);
  const Fid file_c = cluster.create_file(cluster.root(), "c", 1000);
  const Inode* a = cluster.stat(file_a);
  const Inode* c = cluster.stat(file_c);
  const LovEaEntry slot_a = a->lov_ea->stripes[0];
  const LovEaEntry slot_c = c->lov_ea->stripes[0];
  // Duplicate: a's object takes c's object's id.
  Inode* object_a = cluster.ost(slot_a.ost_index).image.find_by_fid(slot_a.stripe);
  cluster.ost(slot_a.ost_index).image.oi_erase(object_a->lma_fid);
  object_a->lma_fid = slot_c.stripe;

  RepairExecutor executor(cluster);
  const RepairOutcome outcome = executor.apply(
      {RepairKind::kOverwriteId, slot_c.stripe, slot_a.stripe, kNullFid,
       EdgeKind::kLovEa, /*owner_hint=*/file_a, ""});
  ASSERT_TRUE(outcome.applied);
  // The duplicate (pointing at file_a) was re-identified; c's object is
  // untouched and still resolvable.
  const Inode* restored =
      cluster.ost(slot_a.ost_index).image.find_by_fid_raw(slot_a.stripe);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->filter_fid->parent, file_a);
  const Inode* untouched =
      cluster.ost(slot_c.ost_index).image.find_by_fid(slot_c.stripe);
  ASSERT_NE(untouched, nullptr);
  EXPECT_EQ(untouched->filter_fid->parent, file_c);
}

TEST(RepairExecutorTest, AddBackPointerRestoresLinkEaWithName) {
  LustreCluster cluster(2);
  const Fid dir = cluster.mkdir(cluster.root(), "docs");
  Inode* inode = cluster.mdt().image.find_by_fid(dir);
  inode->link_ea.clear();

  RepairExecutor executor(cluster);
  const RepairOutcome outcome = executor.apply(
      {RepairKind::kAddBackPointer, dir, cluster.root(), kNullFid,
       EdgeKind::kLinkEa, kNullFid, ""});
  ASSERT_TRUE(outcome.applied);
  inode = cluster.mdt().image.find_by_fid(dir);
  ASSERT_EQ(inode->link_ea.size(), 1u);
  EXPECT_EQ(inode->link_ea[0].parent, cluster.root());
  EXPECT_EQ(inode->link_ea[0].name, "docs");  // recovered from DIRENT
}

TEST(RepairExecutorTest, AddBackPointerRestoresDirentWithName) {
  LustreCluster cluster(2);
  const Fid dir = cluster.mkdir(cluster.root(), "gone");
  Inode* root = cluster.mdt().image.find_by_fid(cluster.root());
  root->dirents.clear();

  RepairExecutor executor(cluster);
  const RepairOutcome outcome = executor.apply(
      {RepairKind::kAddBackPointer, cluster.root(), dir, kNullFid,
       EdgeKind::kDirent, kNullFid, ""});
  ASSERT_TRUE(outcome.applied);
  root = cluster.mdt().image.find_by_fid(cluster.root());
  ASSERT_EQ(root->dirents.size(), 1u);
  EXPECT_EQ(root->dirents[0].name, "gone");  // recovered from LinkEA
  EXPECT_EQ(root->dirents[0].fid, dir);
}

TEST(RepairExecutorTest, AddBackPointerRestoresFilterFidWithStripeIndex) {
  LustreCluster cluster(2, StripePolicy{64 * 1024, -1});
  const Fid file = cluster.create_file(cluster.root(), "f", 2 * 64 * 1024);
  const LovEaEntry slot = cluster.stat(file)->lov_ea->stripes[1];
  Inode* object = cluster.ost(slot.ost_index).image.find_by_fid(slot.stripe);
  object->filter_fid.reset();

  RepairExecutor executor(cluster);
  const RepairOutcome outcome = executor.apply(
      {RepairKind::kAddBackPointer, slot.stripe, file, kNullFid,
       EdgeKind::kObjParent, kNullFid, ""});
  ASSERT_TRUE(outcome.applied);
  object = cluster.ost(slot.ost_index).image.find_by_fid(slot.stripe);
  ASSERT_TRUE(object->filter_fid.has_value());
  EXPECT_EQ(object->filter_fid->parent, file);
  EXPECT_EQ(object->filter_fid->stripe_index, 1u);
}

TEST(RepairExecutorTest, AddBackPointerIsIdempotent) {
  LustreCluster cluster(2);
  const Fid dir = cluster.mkdir(cluster.root(), "d");
  RepairExecutor executor(cluster);
  const RepairAction action{RepairKind::kAddBackPointer, dir, cluster.root(),
                            kNullFid, EdgeKind::kLinkEa, kNullFid, ""};
  EXPECT_TRUE(executor.apply(action).applied);
  EXPECT_TRUE(executor.apply(action).applied);
  EXPECT_EQ(cluster.stat(dir)->link_ea.size(), 1u);
}

TEST(RepairExecutorTest, RelinkPropertyReplacesLovSlot) {
  LustreCluster cluster(2, StripePolicy{64 * 1024, 1});
  const Fid file = cluster.create_file(cluster.root(), "f", 1000);
  const Fid orphan = cluster.create_file(cluster.root(), "g", 1000);
  const Fid orphan_stripe = cluster.stat(orphan)->lov_ea->stripes[0].stripe;
  const Fid stale = cluster.stat(file)->lov_ea->stripes[0].stripe;

  RepairExecutor executor(cluster);
  const RepairOutcome outcome = executor.apply(
      {RepairKind::kRelinkProperty, file, orphan_stripe, stale,
       EdgeKind::kLovEa, kNullFid, ""});
  ASSERT_TRUE(outcome.applied);
  EXPECT_EQ(cluster.stat(file)->lov_ea->stripes[0].stripe, orphan_stripe);
}

TEST(RepairExecutorTest, RelinkFailsWhenStaleAbsent) {
  LustreCluster cluster(2, StripePolicy{64 * 1024, 1});
  const Fid file = cluster.create_file(cluster.root(), "f", 1000);
  RepairExecutor executor(cluster);
  const RepairOutcome outcome = executor.apply(
      {RepairKind::kRelinkProperty, file, Fid{5, 5, 0}, Fid{6, 6, 0},
       EdgeKind::kLovEa, kNullFid, ""});
  EXPECT_FALSE(outcome.applied);
}

TEST(RepairExecutorTest, RemoveReferenceDropsOneInstance) {
  LustreCluster cluster(2, StripePolicy{64 * 1024, 1});
  const Fid file = cluster.create_file(cluster.root(), "f", 1000);
  Inode* inode = cluster.mdt().image.find_by_fid(file);
  const LovEaEntry slot = inode->lov_ea->stripes[0];
  inode->lov_ea->stripes.push_back(slot);  // duplicate entry

  RepairExecutor executor(cluster);
  const RepairOutcome outcome = executor.apply(
      {RepairKind::kRemoveReference, file, slot.stripe, kNullFid,
       EdgeKind::kLovEa, kNullFid, ""});
  ASSERT_TRUE(outcome.applied);
  EXPECT_EQ(cluster.stat(file)->lov_ea->stripes.size(), 1u);
}

TEST(RepairExecutorTest, QuarantineMovesMdtObjectToLostFound) {
  LustreCluster cluster(2);
  const Fid dir = cluster.mkdir(cluster.root(), "victim");
  RepairExecutor executor(cluster);
  const RepairOutcome outcome = executor.apply(
      {RepairKind::kQuarantineLostFound, dir, kNullFid, kNullFid,
       EdgeKind::kGeneric, kNullFid, ""});
  ASSERT_TRUE(outcome.applied);
  // Gone from the root, present in lost+found.
  const Inode* root = cluster.stat(cluster.root());
  for (const auto& entry : root->dirents) EXPECT_NE(entry.fid, dir);
  const Inode* lf = cluster.stat(cluster.resolve("/.lustre/lost+found"));
  bool found = false;
  for (const auto& entry : lf->dirents) {
    if (entry.fid == dir) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(RepairExecutorTest, QuarantineStubsOstOrphan) {
  LustreCluster cluster(2, StripePolicy{64 * 1024, 1});
  const Fid file = cluster.create_file(cluster.root(), "f", 1000);
  const LovEaEntry slot = cluster.stat(file)->lov_ea->stripes[0];
  // Orphan the object: drop the file's claim.
  cluster.mdt().image.find_by_fid(file)->lov_ea->stripes.clear();

  RepairExecutor executor(cluster);
  const RepairOutcome outcome = executor.apply(
      {RepairKind::kQuarantineLostFound, slot.stripe, kNullFid, kNullFid,
       EdgeKind::kGeneric, kNullFid, ""});
  ASSERT_TRUE(outcome.applied);
  // A stub file in lost+found now owns the object.
  const Inode* object =
      cluster.ost(slot.ost_index).image.find_by_fid(slot.stripe);
  ASSERT_TRUE(object->filter_fid.has_value());
  const Inode* stub = cluster.stat(object->filter_fid->parent);
  ASSERT_NE(stub, nullptr);
  ASSERT_TRUE(stub->lov_ea.has_value());
  EXPECT_EQ(stub->lov_ea->stripes[0].stripe, slot.stripe);
}

TEST(RepairExecutorTest, ApplyAllReportsPerActionOutcomes) {
  LustreCluster cluster(2);
  const Fid dir = cluster.mkdir(cluster.root(), "d");
  RepairExecutor executor(cluster);
  const RepairPlan plan = {
      {RepairKind::kAddBackPointer, dir, cluster.root(), kNullFid,
       EdgeKind::kLinkEa, kNullFid, ""},
      {RepairKind::kOverwriteId, Fid{9, 9, 9}, Fid{1, 1, 1}, kNullFid,
       EdgeKind::kGeneric, kNullFid, ""},
  };
  const auto outcomes = executor.apply_all(plan);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_TRUE(outcomes[0].applied);
  EXPECT_FALSE(outcomes[1].applied);
}

}  // namespace
}  // namespace faultyrank
