// Repair convergence for every one of the paper's eight inconsistency
// scenarios: inject → detect → repair → re-check must reach a fully
// consistent filesystem within a bounded number of repair rounds. This
// is the oracle the soak harness reuses (checker/convergence.h), so a
// scenario that ping-pongs here would wedge the soak too.
#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "checker/convergence.h"
#include "faults/injector.h"
#include "pfs/changelog.h"
#include "testing/fixtures.h"

namespace faultyrank {
namespace {

class RepairConvergenceTest : public ::testing::TestWithParam<Scenario> {};

TEST_P(RepairConvergenceTest, InjectedFaultRepairsToCleanWithinBudget) {
  LustreCluster cluster = testing::make_populated_cluster(150, 97);
  ChangeLog log;
  cluster.attach_changelog(&log);
  FaultInjector injector(cluster, 97);
  const GroundTruth truth = injector.inject(GetParam());

  OnlineChecker checker(cluster);
  checker.bootstrap();

  const ConvergenceResult result = repair_until_clean(cluster, checker, 4);
  EXPECT_TRUE(result.clean) << to_string(truth.scenario) << ": "
                            << result.residual_findings
                            << " findings after "
                            << result.repair_rounds << " repair rounds";
  EXPECT_GE(result.repairs_applied, 1u);
  EXPECT_LE(result.repair_rounds, 3u);
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, RepairConvergenceTest,
                         ::testing::ValuesIn(kAllScenarios),
                         [](const auto& info) {
                           // to_string() uses '/'; gtest names must be
                           // alphanumeric.
                           std::string name = to_string(info.param);
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

/// A file hard-linked twice into the *same* directory owns two LinkEA
/// records; when the directory's DIRENT property is wiped
/// (kUnreferencedNeighborProps), repair must restore one dirent per
/// link. Regression: the executor used to stop at the first entry for
/// the child ("dirent already present"), leaving the second LinkEA
/// edge permanently unpaired — a manual-only finding the convergence
/// loop could never drain. Flushed by the full soak run.
TEST(RepairConvergenceTest, DoubleHardLinkInOneDirectorySurvivesDirentWipe) {
  LustreCluster cluster = testing::make_populated_cluster(50, 7);
  ChangeLog log;
  cluster.attach_changelog(&log);
  const Fid dir = cluster.mkdir_p("/twins");
  const Fid file = cluster.create_file(dir, "f0", 4096);
  cluster.link(file, dir, "l0");  // second name in the same directory

  cluster.find_mdt_inode(dir)->dirents.clear();

  OnlineChecker checker(cluster);
  checker.bootstrap();
  const ConvergenceResult result = repair_until_clean(cluster, checker, 4);
  EXPECT_TRUE(result.clean) << result.residual_findings
                            << " findings left after "
                            << result.repair_rounds << " rounds";
  std::size_t entries = 0;
  for (const auto& entry : cluster.find_mdt_inode(dir)->dirents) {
    if (entry.fid == file) ++entries;
  }
  EXPECT_EQ(entries, 2u);
}

/// Mirror of the above: the twice-linked file loses its LinkEA records
/// instead; repair must restore one link per surviving dirent, not
/// declare victory after the first.
TEST(RepairConvergenceTest, DoubleHardLinkInOneDirectorySurvivesLinkEaWipe) {
  LustreCluster cluster = testing::make_populated_cluster(50, 11);
  ChangeLog log;
  cluster.attach_changelog(&log);
  const Fid dir = cluster.mkdir_p("/twins");
  const Fid file = cluster.create_file(dir, "f0", 4096);
  cluster.link(file, dir, "l0");

  cluster.find_mdt_inode(file)->link_ea.clear();

  OnlineChecker checker(cluster);
  checker.bootstrap();
  const ConvergenceResult result = repair_until_clean(cluster, checker, 4);
  EXPECT_TRUE(result.clean) << result.residual_findings
                            << " findings left after "
                            << result.repair_rounds << " rounds";
  std::size_t links = 0;
  for (const auto& link : cluster.find_mdt_inode(file)->link_ea) {
    if (link.parent == dir) ++links;
  }
  EXPECT_EQ(links, 2u);
}

/// Several faults at once must also drain — repairs for one finding
/// must not manufacture findings elsewhere (the soak's steady-state
/// invariant, minus the traffic).
TEST(RepairConvergenceTest, MixedCampaignDrainsToClean) {
  LustreCluster cluster = testing::make_populated_cluster(200, 131);
  ChangeLog log;
  cluster.attach_changelog(&log);
  FaultInjector injector(cluster, 131);
  const auto truths = injector.inject_campaign(5);
  ASSERT_EQ(truths.size(), 5u);

  OnlineChecker checker(cluster);
  checker.bootstrap();

  const ConvergenceResult result = repair_until_clean(cluster, checker, 6);
  EXPECT_TRUE(result.clean) << result.residual_findings
                            << " findings left after "
                            << result.repair_rounds << " rounds";
}

}  // namespace
}  // namespace faultyrank
