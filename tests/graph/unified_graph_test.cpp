#include "graph/unified_graph.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace faultyrank {
namespace {

using testing::Fig3Fids;
using testing::make_fig3_consistent_graph;
using testing::make_fig3_graph;

TEST(UnifiedGraphTest, AggregatesFig3Example) {
  const UnifiedGraph g = make_fig3_graph();
  EXPECT_EQ(g.vertex_count(), 4u);
  EXPECT_EQ(g.edge_count(), 4u);
}

TEST(UnifiedGraphTest, PairingOnFig3Example) {
  const UnifiedGraph g = make_fig3_graph();
  const Fig3Fids fids;
  const Gid a = g.vertices().lookup(fids.a);
  const Gid b = g.vertices().lookup(fids.b);
  const Gid c = g.vertices().lookup(fids.c);
  const Gid d = g.vertices().lookup(fids.d);
  ASSERT_NE(a, kInvalidGid);
  ASSERT_NE(d, kInvalidGid);

  // a↔b paired both ways; a→c unpaired; d→b unpaired.
  EXPECT_EQ(g.paired_in_degree(b), 1u);   // from a (paired)
  EXPECT_EQ(g.unpaired_in_degree(b), 1u); // from d
  EXPECT_EQ(g.paired_in_degree(a), 1u);   // from b
  EXPECT_EQ(g.unpaired_in_degree(a), 0u);
  EXPECT_EQ(g.paired_in_degree(c), 0u);
  EXPECT_EQ(g.unpaired_in_degree(c), 1u); // from a
  EXPECT_EQ(g.paired_in_degree(d), 0u);
  EXPECT_EQ(g.unpaired_in_degree(d), 0u);

  ASSERT_EQ(g.unpaired_edges().size(), 2u);
}

TEST(UnifiedGraphTest, ConsistentGraphHasNoUnpairedEdges) {
  const UnifiedGraph g = make_fig3_consistent_graph();
  EXPECT_TRUE(g.unpaired_edges().empty());
  for (Gid v = 0; v < g.vertex_count(); ++v) {
    EXPECT_EQ(g.unpaired_in_degree(v), 0u);
  }
}

TEST(UnifiedGraphTest, EdgeToUnknownFidCreatesPhantom) {
  PartialGraph p;
  p.server = "mds0";
  p.add_vertex(Fid{1, 1, 0}, ObjectKind::kFile);
  p.add_edge(Fid{1, 1, 0}, Fid{9, 9, 0}, EdgeKind::kLovEa);
  const PartialGraph partials[] = {p};
  const UnifiedGraph g = UnifiedGraph::aggregate(partials);
  EXPECT_EQ(g.vertex_count(), 2u);
  const Gid phantom = g.vertices().lookup(Fid{9, 9, 0});
  ASSERT_NE(phantom, kInvalidGid);
  EXPECT_FALSE(g.vertices().is_scanned(phantom));
  EXPECT_EQ(g.vertices().kind_of(phantom), ObjectKind::kPhantom);
  ASSERT_EQ(g.unpaired_edges().size(), 1u);
  EXPECT_EQ(g.unpaired_edges()[0].dst, phantom);
}

TEST(UnifiedGraphTest, MergeAcrossServersDeduplicatesByFid) {
  PartialGraph mds;
  mds.server = "mds0";
  mds.add_vertex(Fid{1, 1, 0}, ObjectKind::kFile);
  mds.add_edge(Fid{1, 1, 0}, Fid{2, 1, 0}, EdgeKind::kLovEa);
  PartialGraph oss;
  oss.server = "oss0";
  oss.add_vertex(Fid{2, 1, 0}, ObjectKind::kStripeObject);
  oss.add_edge(Fid{2, 1, 0}, Fid{1, 1, 0}, EdgeKind::kObjParent);
  const PartialGraph partials[] = {mds, oss};
  const UnifiedGraph g = UnifiedGraph::aggregate(partials);
  EXPECT_EQ(g.vertex_count(), 2u);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_TRUE(g.unpaired_edges().empty());
}

TEST(UnifiedGraphTest, FromEdgesBuildsGenericGraph) {
  const std::vector<GidEdge> edges = {
      {0, 1, EdgeKind::kGeneric},
      {1, 0, EdgeKind::kGeneric},
      {1, 2, EdgeKind::kGeneric},
  };
  const UnifiedGraph g = UnifiedGraph::from_edges(3, edges);
  EXPECT_EQ(g.vertex_count(), 3u);
  EXPECT_EQ(g.edge_count(), 3u);
  ASSERT_EQ(g.unpaired_edges().size(), 1u);
  EXPECT_EQ(g.unpaired_edges()[0].src, 1u);
  EXPECT_EQ(g.unpaired_edges()[0].dst, 2u);
}

TEST(UnifiedGraphTest, ReverseGraphTransposesForward) {
  const UnifiedGraph g = make_fig3_graph();
  const Csr& fwd = g.forward();
  const Csr& rev = g.reverse();
  EXPECT_EQ(fwd.edge_count(), rev.edge_count());
  for (Gid u = 0; u < g.vertex_count(); ++u) {
    for (auto slot = fwd.edges_begin(u); slot < fwd.edges_end(u); ++slot) {
      EXPECT_TRUE(rev.has_edge(fwd.target(slot), u, fwd.kind(slot)));
    }
  }
}

TEST(UnifiedGraphTest, AggregationOrderIsDeterministic) {
  const UnifiedGraph g1 = make_fig3_graph();
  const UnifiedGraph g2 = make_fig3_graph();
  ASSERT_EQ(g1.vertex_count(), g2.vertex_count());
  for (Gid v = 0; v < g1.vertex_count(); ++v) {
    EXPECT_EQ(g1.vertices().fid_of(v), g2.vertices().fid_of(v));
  }
}

TEST(UnifiedGraphTest, BytesIsNonZeroForNonEmptyGraph) {
  EXPECT_GT(make_fig3_graph().bytes(), 0u);
}

}  // namespace
}  // namespace faultyrank
