#include "graph/partial_graph.h"

#include <gtest/gtest.h>

namespace faultyrank {
namespace {

PartialGraph sample_graph() {
  PartialGraph g;
  g.server = "oss2";
  g.add_vertex(Fid{0x100010002, 1, 0}, ObjectKind::kStripeObject);
  g.add_vertex(Fid{0x100010002, 2, 0}, ObjectKind::kStripeObject);
  g.add_edge(Fid{0x100010002, 1, 0}, Fid{0x200000400, 10, 0},
             EdgeKind::kObjParent);
  g.add_edge(Fid{0x100010002, 2, 0}, Fid{0x200000400, 11, 0},
             EdgeKind::kObjParent);
  return g;
}

TEST(PartialGraphTest, SerializeRoundTrip) {
  const PartialGraph original = sample_graph();
  const PartialGraph decoded =
      PartialGraph::deserialize(original.serialize());
  EXPECT_EQ(decoded.server, original.server);
  ASSERT_EQ(decoded.vertices.size(), original.vertices.size());
  ASSERT_EQ(decoded.edges.size(), original.edges.size());
  for (std::size_t i = 0; i < original.vertices.size(); ++i) {
    EXPECT_EQ(decoded.vertices[i], original.vertices[i]);
  }
  for (std::size_t i = 0; i < original.edges.size(); ++i) {
    EXPECT_EQ(decoded.edges[i], original.edges[i]);
  }
}

TEST(PartialGraphTest, EmptyGraphRoundTrip) {
  PartialGraph g;
  g.server = "mds0";
  const PartialGraph decoded = PartialGraph::deserialize(g.serialize());
  EXPECT_EQ(decoded.server, "mds0");
  EXPECT_TRUE(decoded.vertices.empty());
  EXPECT_TRUE(decoded.edges.empty());
}

TEST(PartialGraphTest, WireBytesMatchesSerializedSize) {
  const PartialGraph g = sample_graph();
  EXPECT_EQ(g.wire_bytes(), g.serialize().size());
}

TEST(PartialGraphTest, BadMagicThrows) {
  auto bytes = sample_graph().serialize();
  bytes[0] ^= 0xff;
  EXPECT_THROW(PartialGraph::deserialize(bytes), SerdesError);
}

TEST(PartialGraphTest, TruncationThrows) {
  auto bytes = sample_graph().serialize();
  bytes.resize(bytes.size() - 5);
  EXPECT_THROW(PartialGraph::deserialize(bytes), SerdesError);
}

TEST(PartialGraphTest, TrailingGarbageThrows) {
  auto bytes = sample_graph().serialize();
  bytes.push_back(0);
  EXPECT_THROW(PartialGraph::deserialize(bytes), SerdesError);
}

}  // namespace
}  // namespace faultyrank
