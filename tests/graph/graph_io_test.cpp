#include "graph/graph_io.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <string>

namespace faultyrank {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(GraphIoTest, RoundTrip) {
  const std::string path = temp_path("roundtrip.el");
  const std::vector<GidEdge> edges = {
      {0, 1, EdgeKind::kGeneric},
      {1, 2, EdgeKind::kGeneric},
      {2, 0, EdgeKind::kGeneric},
  };
  write_edge_list(path, 3, edges);
  const EdgeListFile loaded = read_edge_list(path);
  EXPECT_EQ(loaded.vertex_count, 3u);
  ASSERT_EQ(loaded.edges.size(), edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    EXPECT_EQ(loaded.edges[i].src, edges[i].src);
    EXPECT_EQ(loaded.edges[i].dst, edges[i].dst);
  }
  std::remove(path.c_str());
}

TEST(GraphIoTest, EmptyEdgeList) {
  const std::string path = temp_path("empty.el");
  write_edge_list(path, 10, {});
  const EdgeListFile loaded = read_edge_list(path);
  EXPECT_EQ(loaded.vertex_count, 10u);
  EXPECT_TRUE(loaded.edges.empty());
  std::remove(path.c_str());
}

TEST(GraphIoTest, MissingFileThrows) {
  EXPECT_THROW(read_edge_list(temp_path("does_not_exist.el")),
               std::runtime_error);
}

TEST(GraphIoTest, TruncatedFileThrows) {
  const std::string path = temp_path("truncated.el");
  write_edge_list(path, 3, {{0, 1, EdgeKind::kGeneric}});
  // Truncate the edge payload.
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size - 4), 0);
  EXPECT_THROW(read_edge_list(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(GraphIoTest, UnwritablePathThrows) {
  EXPECT_THROW(write_edge_list("/nonexistent_dir/x.el", 1, {}),
               std::runtime_error);
}


TEST(SnapTextTest, ParsesCommentsAndCompactsIds) {
  const std::string path = temp_path("snap.txt");
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("# Directed graph\n", f);
  std::fputs("# FromNodeId\tToNodeId\n", f);
  std::fputs("1000 2000\n", f);
  std::fputs("2000\t1000\n", f);
  std::fputs("  1000   3000\n", f);
  std::fputs("\n", f);
  std::fclose(f);

  const EdgeListFile loaded = read_snap_text(path);
  EXPECT_EQ(loaded.vertex_count, 3u);  // 1000, 2000, 3000 compacted
  ASSERT_EQ(loaded.edges.size(), 3u);
  EXPECT_EQ(loaded.edges[0].src, 0u);
  EXPECT_EQ(loaded.edges[0].dst, 1u);
  EXPECT_EQ(loaded.edges[1].src, 1u);
  EXPECT_EQ(loaded.edges[1].dst, 0u);
  EXPECT_EQ(loaded.edges[2].dst, 2u);
  std::remove(path.c_str());
}

TEST(SnapTextTest, RejectsGarbageLines) {
  const std::string path = temp_path("snap_bad.txt");
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("1 2\n", f);
  std::fputs("not numbers\n", f);
  std::fclose(f);
  EXPECT_THROW((void)read_snap_text(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(SnapTextTest, MissingFileThrows) {
  EXPECT_THROW((void)read_snap_text(temp_path("no_snap.txt")),
               std::runtime_error);
}

}  // namespace
}  // namespace faultyrank
