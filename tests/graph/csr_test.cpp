#include "graph/csr.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.h"

namespace faultyrank {
namespace {

TEST(CsrTest, EmptyGraph) {
  const Csr csr = Csr::build(0, {});
  EXPECT_EQ(csr.vertex_count(), 0u);
  EXPECT_EQ(csr.edge_count(), 0u);
}

TEST(CsrTest, VerticesWithoutEdges) {
  const Csr csr = Csr::build(5, {});
  EXPECT_EQ(csr.vertex_count(), 5u);
  for (Gid v = 0; v < 5; ++v) EXPECT_EQ(csr.out_degree(v), 0u);
}

TEST(CsrTest, SmallKnownGraph) {
  const std::vector<GidEdge> edges = {
      {0, 1, EdgeKind::kDirent},
      {0, 2, EdgeKind::kDirent},
      {1, 0, EdgeKind::kLinkEa},
      {2, 0, EdgeKind::kLinkEa},
  };
  const Csr csr = Csr::build(3, edges);
  EXPECT_EQ(csr.edge_count(), 4u);
  EXPECT_EQ(csr.out_degree(0), 2u);
  EXPECT_EQ(csr.out_degree(1), 1u);
  EXPECT_EQ(csr.out_degree(2), 1u);
  EXPECT_TRUE(csr.has_edge(0, 1));
  EXPECT_TRUE(csr.has_edge(0, 2));
  EXPECT_FALSE(csr.has_edge(1, 2));
  EXPECT_TRUE(csr.has_edge(0, 1, EdgeKind::kDirent));
  EXPECT_FALSE(csr.has_edge(0, 1, EdgeKind::kLovEa));
}

TEST(CsrTest, AdjacencyIsSortedByTarget) {
  const std::vector<GidEdge> edges = {
      {0, 3, EdgeKind::kGeneric},
      {0, 1, EdgeKind::kGeneric},
      {0, 2, EdgeKind::kGeneric},
  };
  const Csr csr = Csr::build(4, edges);
  std::vector<Gid> targets;
  for (auto slot = csr.edges_begin(0); slot < csr.edges_end(0); ++slot) {
    targets.push_back(csr.target(slot));
  }
  EXPECT_TRUE(std::is_sorted(targets.begin(), targets.end()));
}

TEST(CsrTest, MultiEdgesAreKept) {
  const std::vector<GidEdge> edges = {
      {0, 1, EdgeKind::kDirent},
      {0, 1, EdgeKind::kDirent},
      {0, 1, EdgeKind::kLovEa},
  };
  const Csr csr = Csr::build(2, edges);
  EXPECT_EQ(csr.edge_count(), 3u);
  EXPECT_EQ(csr.edge_multiplicity(0, 1), 3u);
  EXPECT_EQ(csr.edge_multiplicity(1, 0), 0u);
}

TEST(CsrTest, OutOfRangeEndpointThrows) {
  const std::vector<GidEdge> edges = {{0, 7, EdgeKind::kGeneric}};
  EXPECT_THROW(Csr::build(3, edges), std::out_of_range);
}

TEST(CsrTest, ReversedSwapsDirections) {
  const std::vector<GidEdge> edges = {
      {0, 1, EdgeKind::kDirent},
      {2, 1, EdgeKind::kLovEa},
  };
  const Csr csr = Csr::build(3, edges);
  const Csr rev = csr.reversed();
  EXPECT_EQ(rev.edge_count(), 2u);
  EXPECT_TRUE(rev.has_edge(1, 0, EdgeKind::kDirent));
  EXPECT_TRUE(rev.has_edge(1, 2, EdgeKind::kLovEa));
  EXPECT_FALSE(rev.has_edge(0, 1));
}

TEST(CsrTest, DoubleReverseIsIdentity) {
  Rng rng(99);
  std::vector<GidEdge> edges;
  constexpr std::size_t kN = 200;
  for (int i = 0; i < 2000; ++i) {
    edges.push_back({static_cast<Gid>(rng.below(kN)),
                     static_cast<Gid>(rng.below(kN)), EdgeKind::kGeneric});
  }
  const Csr csr = Csr::build(kN, edges);
  const Csr back = csr.reversed().reversed();
  ASSERT_EQ(back.edge_count(), csr.edge_count());
  for (Gid v = 0; v < kN; ++v) {
    ASSERT_EQ(back.out_degree(v), csr.out_degree(v));
    for (auto slot = csr.edges_begin(v); slot < csr.edges_end(v); ++slot) {
      EXPECT_EQ(back.target(slot), csr.target(slot));
    }
  }
}

TEST(CsrTest, BytesAccountsForAllArrays) {
  const std::vector<GidEdge> edges = {{0, 1, EdgeKind::kGeneric}};
  const Csr csr = Csr::build(2, edges);
  // offsets: 3 u64, targets: 1 u32, kinds: 1 u8 — capacity may exceed.
  EXPECT_GE(csr.bytes(), 3 * 8 + 4 + 1u);
}

// Property sweep: degree sums and offsets invariants on random graphs.
class CsrPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CsrPropertyTest, StructuralInvariantsHold) {
  Rng rng(GetParam());
  const std::size_t n = 1 + rng.below(500);
  const std::size_t m = rng.below(4000);
  std::vector<GidEdge> edges;
  edges.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    edges.push_back({static_cast<Gid>(rng.below(n)),
                     static_cast<Gid>(rng.below(n)), EdgeKind::kGeneric});
  }
  const Csr csr = Csr::build(n, edges);
  ASSERT_EQ(csr.vertex_count(), n);
  ASSERT_EQ(csr.edge_count(), m);

  std::uint64_t degree_sum = 0;
  for (Gid v = 0; v < n; ++v) {
    EXPECT_LE(csr.edges_begin(v), csr.edges_end(v));
    degree_sum += csr.out_degree(v);
  }
  EXPECT_EQ(degree_sum, m);

  // Every input edge must be findable.
  for (const auto& e : edges) {
    EXPECT_TRUE(csr.has_edge(e.src, e.dst));
  }
  // Reversal preserves edge count and transposes membership.
  const Csr rev = csr.reversed();
  EXPECT_EQ(rev.edge_count(), m);
  for (int i = 0; i < 50 && i < static_cast<int>(edges.size()); ++i) {
    EXPECT_TRUE(rev.has_edge(edges[i].dst, edges[i].src));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, CsrPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace faultyrank
