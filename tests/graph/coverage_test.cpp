// CoverageInfo: the sorted lost-sequence set must agree with a naive
// linear reference for every query, and add_lost_sequence must keep
// the vector sorted + deduplicated regardless of insertion order.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.h"
#include "graph/coverage.h"

namespace faultyrank {
namespace {

/// The pre-optimization reference: linear membership scan.
bool fid_lost_reference(const std::vector<std::uint64_t>& lost,
                        const std::unordered_set<Fid, FidHash>& quarantined,
                        const Fid& fid) {
  if (fid.is_null()) return false;
  for (const std::uint64_t seq : lost) {
    if (seq == fid.seq) return true;
  }
  return quarantined.contains(fid);
}

TEST(CoverageTest, AddLostSequenceKeepsVectorSortedAndUnique) {
  CoverageInfo info;
  for (const std::uint64_t seq : {9u, 3u, 7u, 3u, 1u, 9u, 5u, 1u}) {
    info.add_lost_sequence(seq);
  }
  EXPECT_EQ(info.lost_sequences,
            (std::vector<std::uint64_t>{1, 3, 5, 7, 9}));
  EXPECT_TRUE(std::is_sorted(info.lost_sequences.begin(),
                             info.lost_sequences.end()));
}

TEST(CoverageTest, FidLostMatchesLinearReferenceOnRandomSets) {
  Rng rng(0xc0ffee);
  for (int round = 0; round < 20; ++round) {
    CoverageInfo info;
    std::vector<std::uint64_t> reference_lost;
    const std::size_t lost_count = 1 + rng.below(40);
    for (std::size_t i = 0; i < lost_count; ++i) {
      const std::uint64_t seq = 0x200000400ULL + rng.below(200);
      info.add_lost_sequence(seq);
      reference_lost.push_back(seq);
    }
    for (std::size_t i = 0; i < 10; ++i) {
      info.quarantined.insert(
          Fid{0x200000400ULL + rng.below(200),
          static_cast<std::uint32_t>(rng.below(1u << 20)), 0});
    }

    for (std::size_t q = 0; q < 400; ++q) {
      Fid probe{0x200000400ULL + rng.below(220),
                static_cast<std::uint32_t>(rng.below(1u << 20)), 0};
      if (rng.chance(0.05)) probe = kNullFid;
      EXPECT_EQ(info.fid_lost(probe),
                fid_lost_reference(reference_lost, info.quarantined, probe))
          << "seq=" << probe.seq << " oid=" << probe.oid;
    }
  }
}

TEST(CoverageTest, CompleteOnlyWhenNothingWasLost) {
  CoverageInfo info;
  EXPECT_TRUE(info.complete());
  info.add_lost_sequence(42);
  EXPECT_FALSE(info.complete());
  EXPECT_TRUE(info.fid_lost(Fid{42, 1, 0}));
  EXPECT_FALSE(info.fid_lost(Fid{41, 1, 0}));
}

}  // namespace
}  // namespace faultyrank
