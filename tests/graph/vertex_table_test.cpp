#include "graph/vertex_table.h"

#include <gtest/gtest.h>

namespace faultyrank {
namespace {

TEST(VertexTableTest, InternAssignsDenseSequentialGids) {
  VertexTable table;
  EXPECT_EQ(table.intern_scanned(Fid{1, 1, 0}, ObjectKind::kDirectory), 0u);
  EXPECT_EQ(table.intern_scanned(Fid{1, 2, 0}, ObjectKind::kFile), 1u);
  EXPECT_EQ(table.intern_scanned(Fid{2, 1, 0}, ObjectKind::kStripeObject), 2u);
  EXPECT_EQ(table.size(), 3u);
}

TEST(VertexTableTest, LookupFindsInternedAndRejectsUnknown) {
  VertexTable table;
  const Gid gid = table.intern_scanned(Fid{1, 1, 0}, ObjectKind::kFile);
  EXPECT_EQ(table.lookup(Fid{1, 1, 0}), gid);
  EXPECT_EQ(table.lookup(Fid{9, 9, 9}), kInvalidGid);
}

TEST(VertexTableTest, RemappingIsBijective) {
  VertexTable table;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    table.intern_scanned(Fid{0x200000400, i + 1, 0}, ObjectKind::kFile);
  }
  for (Gid gid = 0; gid < 1000; ++gid) {
    EXPECT_EQ(table.lookup(table.fid_of(gid)), gid);
  }
}

TEST(VertexTableTest, ReferencedCreatesPhantom) {
  VertexTable table;
  const Gid gid = table.intern_referenced(Fid{1, 1, 0});
  EXPECT_FALSE(table.is_scanned(gid));
  EXPECT_EQ(table.kind_of(gid), ObjectKind::kPhantom);
  EXPECT_EQ(table.scan_count(gid), 0u);
}

TEST(VertexTableTest, ScanUpgradesPhantom) {
  VertexTable table;
  const Gid phantom = table.intern_referenced(Fid{1, 1, 0});
  const Gid upgraded = table.intern_scanned(Fid{1, 1, 0}, ObjectKind::kFile);
  EXPECT_EQ(phantom, upgraded);
  EXPECT_TRUE(table.is_scanned(upgraded));
  EXPECT_EQ(table.kind_of(upgraded), ObjectKind::kFile);
}

TEST(VertexTableTest, ReferenceAfterScanKeepsScannedState) {
  VertexTable table;
  const Gid gid = table.intern_scanned(Fid{1, 1, 0}, ObjectKind::kDirectory);
  EXPECT_EQ(table.intern_referenced(Fid{1, 1, 0}), gid);
  EXPECT_TRUE(table.is_scanned(gid));
  EXPECT_EQ(table.kind_of(gid), ObjectKind::kDirectory);
}

TEST(VertexTableTest, DuplicateScansCountIdCollisions) {
  VertexTable table;
  const Gid first = table.intern_scanned(Fid{1, 1, 0}, ObjectKind::kStripeObject);
  const Gid second =
      table.intern_scanned(Fid{1, 1, 0}, ObjectKind::kStripeObject);
  EXPECT_EQ(first, second);
  EXPECT_EQ(table.scan_count(first), 2u);
}

TEST(VertexTableTest, BytesGrowsWithContent) {
  VertexTable table;
  const auto empty = table.bytes();
  for (std::uint32_t i = 0; i < 100; ++i) {
    table.intern_scanned(Fid{1, i + 1, 0}, ObjectKind::kFile);
  }
  EXPECT_GT(table.bytes(), empty);
}

}  // namespace
}  // namespace faultyrank
