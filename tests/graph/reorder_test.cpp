#include "graph/reorder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "graph/unified_graph.h"

namespace faultyrank {
namespace {

UnifiedGraph star_graph() {
  // Hub 3 referenced by everyone; spokes point at the hub and the hub
  // points back at even spokes (mix of paired/unpaired is irrelevant
  // here — reordering only reads adjacency).
  std::vector<GidEdge> edges;
  for (Gid v = 0; v < 8; ++v) {
    if (v == 3) continue;
    edges.push_back({v, 3, EdgeKind::kDirent});
    if (v % 2 == 0) edges.push_back({3, v, EdgeKind::kLinkEa});
  }
  return UnifiedGraph::from_edges(8, edges);
}

void expect_bijection(const VertexPermutation& perm, std::size_t n) {
  ASSERT_EQ(perm.new_of_old.size(), n);
  ASSERT_EQ(perm.old_of_new.size(), n);
  std::vector<bool> seen(n, false);
  for (std::size_t v = 0; v < n; ++v) {
    const Gid nv = perm.new_of_old[v];
    ASSERT_LT(nv, n);
    EXPECT_FALSE(seen[nv]) << "new id " << nv << " assigned twice";
    seen[nv] = true;
    EXPECT_EQ(perm.old_of_new[nv], v);
  }
}

TEST(ReorderTest, NoneIsIdentity) {
  const auto graph = star_graph();
  const auto perm = compute_ordering(graph, VertexOrdering::kNone);
  EXPECT_TRUE(perm.empty());
  EXPECT_EQ(perm.size(), 0u);
}

TEST(ReorderTest, DegreeOrderingPacksHubsFirst) {
  const auto graph = star_graph();
  const auto perm = compute_ordering(graph, VertexOrdering::kDegree);
  expect_bijection(perm, 8);
  // The hub has by far the largest total degree → new id 0.
  EXPECT_EQ(perm.new_of_old[3], 0u);
  // Degrees are non-increasing along the new order.
  const auto deg = [&](Gid old_v) {
    return graph.forward().out_degree(old_v) +
           graph.reverse().out_degree(old_v);
  };
  for (std::size_t i = 0; i + 1 < perm.old_of_new.size(); ++i) {
    EXPECT_GE(deg(perm.old_of_new[i]), deg(perm.old_of_new[i + 1])) << i;
  }
}

TEST(ReorderTest, RcmShrinksPathBandwidth) {
  // A path on 16 vertices with deliberately scattered original ids:
  // old id of path position p is (p * 7) % 16 (7 ⟂ 16 → a bijection).
  std::vector<Gid> at_pos(16);
  for (std::size_t p = 0; p < 16; ++p) at_pos[p] = static_cast<Gid>(p * 7 % 16);
  std::vector<GidEdge> edges;
  for (std::size_t p = 0; p + 1 < 16; ++p) {
    edges.push_back({at_pos[p], at_pos[p + 1], EdgeKind::kGeneric});
  }
  const auto graph = UnifiedGraph::from_edges(16, edges);

  const auto perm = compute_ordering(graph, VertexOrdering::kRcm);
  expect_bijection(perm, 16);
  // RCM renumbers a path so neighbours get adjacent ids: bandwidth 1.
  for (const GidEdge& e : edges) {
    const auto a = static_cast<long>(perm.new_of_old[e.src]);
    const auto b = static_cast<long>(perm.new_of_old[e.dst]);
    EXPECT_EQ(std::abs(a - b), 1) << e.src << "->" << e.dst;
  }
}

TEST(ReorderTest, OrderingsAreDeterministic) {
  const auto graph = star_graph();
  for (const auto ordering :
       {VertexOrdering::kDegree, VertexOrdering::kRcm}) {
    const auto a = compute_ordering(graph, ordering);
    const auto b = compute_ordering(graph, ordering);
    EXPECT_EQ(a.new_of_old, b.new_of_old) << to_string(ordering);
    EXPECT_EQ(a.old_of_new, b.old_of_new) << to_string(ordering);
  }
}

TEST(ReorderTest, RcmCoversDisconnectedComponents) {
  std::vector<GidEdge> edges = {
      {0, 1, EdgeKind::kGeneric},
      {2, 3, EdgeKind::kGeneric},
      {3, 4, EdgeKind::kGeneric},
  };
  // Vertices 5..7 are isolated.
  const auto graph = UnifiedGraph::from_edges(8, edges);
  const auto perm = compute_ordering(graph, VertexOrdering::kRcm);
  expect_bijection(perm, 8);
}

TEST(ReorderTest, RelabelEdgesRoundTrip) {
  const auto graph = star_graph();
  const auto perm = compute_ordering(graph, VertexOrdering::kDegree);
  const auto relabeled = relabel_edges(graph.forward(), perm);
  ASSERT_EQ(relabeled.size(), graph.edge_count());
  const Csr csr = Csr::build(graph.vertex_count(), relabeled);

  // Every original edge (u, v, kind) exists as (new(u), new(v), kind)
  // with the same multiplicity, and the totals agree.
  EXPECT_EQ(csr.edge_count(), graph.edge_count());
  const std::size_t n = graph.vertex_count();
  for (std::size_t v = 0; v < n; ++v) {
    const auto gv = static_cast<Gid>(v);
    const Gid nv = perm.new_of_old[v];
    ASSERT_EQ(csr.out_degree(nv), graph.forward().out_degree(gv));
    const std::uint64_t end = graph.forward().edges_end(gv);
    for (std::uint64_t slot = graph.forward().edges_begin(gv); slot < end;
         ++slot) {
      const Gid t = graph.forward().target(slot);
      EXPECT_TRUE(csr.has_edge(nv, perm.new_of_old[t],
                               graph.forward().kind(slot)));
      EXPECT_EQ(csr.edge_multiplicity(nv, perm.new_of_old[t]),
                graph.forward().edge_multiplicity(gv, t));
    }
  }

  // Identity relabel through the empty permutation is a no-op list.
  const auto identity = relabel_edges(graph.forward(), VertexPermutation{});
  const Csr same = Csr::build(graph.vertex_count(), identity);
  EXPECT_EQ(same.edge_count(), graph.edge_count());
  for (std::size_t v = 0; v < n; ++v) {
    EXPECT_EQ(same.out_degree(static_cast<Gid>(v)),
              graph.forward().out_degree(static_cast<Gid>(v)));
  }
}

}  // namespace
}  // namespace faultyrank
