#include "pfs/cluster.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace faultyrank {
namespace {

TEST(ClusterTest, ConstructionCreatesRootWithFid) {
  LustreCluster cluster(4);
  EXPECT_FALSE(cluster.root().is_null());
  const Inode* root = cluster.stat(cluster.root());
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->type, InodeType::kDirectory);
  EXPECT_EQ(cluster.mdt_inodes_used(), 1u);
}

TEST(ClusterTest, RequiresAtLeastOneOst) {
  EXPECT_THROW(LustreCluster(0), ClusterError);
}

TEST(ClusterTest, RejectsZeroStripeSize) {
  EXPECT_THROW(LustreCluster(2, StripePolicy{0, 1}), ClusterError);
}

TEST(ClusterTest, MkdirMaintainsDirentAndLinkEa) {
  LustreCluster cluster(2);
  const Fid dir = cluster.mkdir(cluster.root(), "projects");
  const Inode* root = cluster.stat(cluster.root());
  ASSERT_EQ(root->dirents.size(), 1u);
  EXPECT_EQ(root->dirents[0].name, "projects");
  EXPECT_EQ(root->dirents[0].fid, dir);
  const Inode* child = cluster.stat(dir);
  ASSERT_EQ(child->link_ea.size(), 1u);
  EXPECT_EQ(child->link_ea[0].parent, cluster.root());
  EXPECT_EQ(child->link_ea[0].name, "projects");
}

TEST(ClusterTest, MkdirRejectsDuplicateName) {
  LustreCluster cluster(2);
  cluster.mkdir(cluster.root(), "x");
  EXPECT_THROW(cluster.mkdir(cluster.root(), "x"), ClusterError);
}

TEST(ClusterTest, MkdirRejectsFileParent) {
  LustreCluster cluster(2);
  const Fid file = cluster.create_file(cluster.root(), "f", 100);
  EXPECT_THROW(cluster.mkdir(file, "sub"), ClusterError);
}

TEST(ClusterTest, CreateFileBuildsFullMetadataWeb) {
  LustreCluster cluster(4, StripePolicy{64 * 1024, -1});
  const Fid file = cluster.create_file(cluster.root(), "data.bin",
                                       3 * 64 * 1024);
  const Inode* inode = cluster.stat(file);
  ASSERT_NE(inode, nullptr);
  ASSERT_TRUE(inode->lov_ea.has_value());
  ASSERT_EQ(inode->lov_ea->stripes.size(), 3u);  // ⌈192K/64K⌉ = 3
  for (std::uint32_t k = 0; k < 3; ++k) {
    const LovEaEntry& slot = inode->lov_ea->stripes[k];
    const Inode* object =
        cluster.ost(slot.ost_index).image.find_by_fid(slot.stripe);
    ASSERT_NE(object, nullptr) << "stripe " << k;
    ASSERT_TRUE(object->filter_fid.has_value());
    EXPECT_EQ(object->filter_fid->parent, file);
    EXPECT_EQ(object->filter_fid->stripe_index, k);
  }
}

TEST(ClusterTest, StripeCountCapsObjectsForLargeFiles) {
  LustreCluster cluster(4, StripePolicy{64 * 1024, -1});
  // 1 GB with 4 OSTs: capped at stripe width 4 (the paper's shrink rule).
  const Fid file = cluster.create_file(cluster.root(), "big", 1u << 30);
  EXPECT_EQ(cluster.stat(file)->lov_ea->stripes.size(), 4u);
}

TEST(ClusterTest, EmptyFileStillOwnsOneObject) {
  LustreCluster cluster(4, StripePolicy{64 * 1024, -1});
  const Fid file = cluster.create_file(cluster.root(), "empty", 0);
  EXPECT_EQ(cluster.stat(file)->lov_ea->stripes.size(), 1u);
}

TEST(ClusterTest, ExplicitStripeCountLimitsWidth) {
  LustreCluster cluster(8, StripePolicy{64 * 1024, 2});
  const Fid file = cluster.create_file(cluster.root(), "two", 1u << 20);
  EXPECT_EQ(cluster.stat(file)->lov_ea->stripes.size(), 2u);
}

TEST(ClusterTest, StripesRotateAcrossOsts) {
  LustreCluster cluster(4, StripePolicy{64 * 1024, 1});
  std::vector<std::uint32_t> osts;
  for (int i = 0; i < 4; ++i) {
    const Fid file = cluster.create_file(cluster.root(),
                                         "f" + std::to_string(i), 1000);
    osts.push_back(cluster.stat(file)->lov_ea->stripes[0].ost_index);
  }
  // Round-robin start: all four OSTs used once.
  std::sort(osts.begin(), osts.end());
  EXPECT_EQ(osts, (std::vector<std::uint32_t>{0, 1, 2, 3}));
}

TEST(ClusterTest, ResolveWalksPaths) {
  LustreCluster cluster(2);
  const Fid a = cluster.mkdir(cluster.root(), "a");
  const Fid b = cluster.mkdir(a, "b");
  const Fid f = cluster.create_file(b, "f.txt", 10);
  EXPECT_EQ(cluster.resolve("/"), cluster.root());
  EXPECT_EQ(cluster.resolve("/a"), a);
  EXPECT_EQ(cluster.resolve("/a/b"), b);
  EXPECT_EQ(cluster.resolve("/a/b/f.txt"), f);
  EXPECT_THROW((void)cluster.resolve("/a/missing"), ClusterError);
  EXPECT_THROW((void)cluster.resolve("relative"), ClusterError);
}

TEST(ClusterTest, MkdirPCreatesMissingComponents) {
  LustreCluster cluster(2);
  const Fid deep = cluster.mkdir_p("/x/y/z");
  EXPECT_EQ(cluster.resolve("/x/y/z"), deep);
  // Idempotent.
  EXPECT_EQ(cluster.mkdir_p("/x/y/z"), deep);
}

TEST(ClusterTest, UnlinkFileFreesMdtInodeAndOstObjects) {
  LustreCluster cluster(4, StripePolicy{64 * 1024, -1});
  const auto before_objects = cluster.total_ost_objects();
  cluster.create_file(cluster.root(), "f", 4 * 64 * 1024);
  EXPECT_EQ(cluster.total_ost_objects(), before_objects + 4);
  cluster.unlink(cluster.root(), "f");
  EXPECT_EQ(cluster.total_ost_objects(), before_objects);
  EXPECT_EQ(cluster.mdt_inodes_used(), 1u);  // only the root remains
  EXPECT_THROW((void)cluster.resolve("/f"), ClusterError);
}

TEST(ClusterTest, UnlinkRejectsMissingAndNonEmpty) {
  LustreCluster cluster(2);
  const Fid dir = cluster.mkdir(cluster.root(), "d");
  cluster.create_file(dir, "f", 10);
  EXPECT_THROW(cluster.unlink(cluster.root(), "nope"), ClusterError);
  EXPECT_THROW(cluster.unlink(cluster.root(), "d"), ClusterError);
  cluster.unlink(dir, "f");
  cluster.unlink(cluster.root(), "d");  // now empty: fine
  EXPECT_EQ(cluster.mdt_inodes_used(), 1u);
}

TEST(ClusterTest, LostFoundIsCreatedOnceUnderDotLustre) {
  LustreCluster cluster(2);
  const Fid lf = cluster.lost_found();
  EXPECT_EQ(cluster.lost_found(), lf);
  EXPECT_EQ(cluster.resolve("/.lustre/lost+found"), lf);
}

TEST(ClusterTest, FidsAreUniqueAcrossServers) {
  LustreCluster cluster(3, StripePolicy{64 * 1024, -1});
  std::vector<Fid> fids;
  for (int i = 0; i < 20; ++i) {
    fids.push_back(cluster.create_file(cluster.root(),
                                       "f" + std::to_string(i), 200 * 1024));
  }
  for (const auto& ost : cluster.osts()) {
    ost.image.for_each_inode(
        [&](const Inode& inode) { fids.push_back(inode.lma_fid); });
  }
  std::sort(fids.begin(), fids.end());
  EXPECT_EQ(std::adjacent_find(fids.begin(), fids.end()), fids.end());
}

}  // namespace
}  // namespace faultyrank
