#include "pfs/ldiskfs.h"

#include <gtest/gtest.h>

#include <vector>

namespace faultyrank {
namespace {

TEST(LdiskfsTest, AllocateAssignsSequentialInos) {
  LdiskfsImage image("test");
  EXPECT_EQ(image.allocate(InodeType::kRegular).ino, 1u);
  EXPECT_EQ(image.allocate(InodeType::kDirectory).ino, 2u);
  EXPECT_EQ(image.allocate(InodeType::kOstObject).ino, 3u);
  EXPECT_EQ(image.inodes_in_use(), 3u);
}

TEST(LdiskfsTest, FindRejectsInvalidAndFreeInos) {
  LdiskfsImage image("test");
  const std::uint64_t ino = image.allocate(InodeType::kRegular).ino;
  EXPECT_NE(image.find(ino), nullptr);
  EXPECT_EQ(image.find(0), nullptr);
  EXPECT_EQ(image.find(999), nullptr);
  image.release(ino);
  EXPECT_EQ(image.find(ino), nullptr);
}

TEST(LdiskfsTest, ReleaseRecyclesLowestFreeSlotFirst) {
  LdiskfsImage image("test");
  for (int i = 0; i < 5; ++i) image.allocate(InodeType::kRegular);
  image.release(2);
  image.release(4);
  EXPECT_EQ(image.allocate(InodeType::kRegular).ino, 2u);
  EXPECT_EQ(image.allocate(InodeType::kRegular).ino, 4u);
  EXPECT_EQ(image.allocate(InodeType::kRegular).ino, 6u);
}

TEST(LdiskfsTest, ReleaseOfFreeInodeThrows) {
  LdiskfsImage image("test");
  const auto ino = image.allocate(InodeType::kRegular).ino;
  image.release(ino);
  EXPECT_THROW(image.release(ino), std::invalid_argument);
  EXPECT_THROW(image.release(12345), std::invalid_argument);
}

TEST(LdiskfsTest, OiMapsFidToInode) {
  LdiskfsImage image("test");
  Inode& inode = image.allocate(InodeType::kRegular);
  inode.lma_fid = Fid{7, 7, 0};
  image.oi_insert(inode.lma_fid, inode.ino);
  EXPECT_EQ(image.find_by_fid(Fid{7, 7, 0}), image.find(inode.ino));
  image.oi_erase(Fid{7, 7, 0});
  EXPECT_EQ(image.find_by_fid(Fid{7, 7, 0}), nullptr);
}

TEST(LdiskfsTest, OiGoesStaleOnRawLmaEdit) {
  LdiskfsImage image("test");
  Inode& inode = image.allocate(InodeType::kRegular);
  inode.lma_fid = Fid{7, 7, 0};
  image.oi_insert(inode.lma_fid, inode.ino);
  // Raw corruption behind the OI's back.
  inode.lma_fid = Fid{9, 9, 0};
  EXPECT_EQ(image.find_by_fid(Fid{9, 9, 0}), nullptr);
  EXPECT_NE(image.find_by_fid(Fid{7, 7, 0}), nullptr);  // stale mapping
  // The raw scan sees the truth.
  EXPECT_NE(image.find_by_fid_raw(Fid{9, 9, 0}), nullptr);
  EXPECT_EQ(image.find_by_fid_raw(Fid{7, 7, 0}), nullptr);
}

TEST(LdiskfsTest, ReleaseDropsOiEntry) {
  LdiskfsImage image("test");
  Inode& inode = image.allocate(InodeType::kRegular);
  inode.lma_fid = Fid{7, 7, 0};
  image.oi_insert(inode.lma_fid, inode.ino);
  image.release(inode.ino);
  EXPECT_EQ(image.find_by_fid(Fid{7, 7, 0}), nullptr);
}

TEST(LdiskfsTest, ForEachVisitsOnlyLiveInodesInInoOrder) {
  LdiskfsImage image("test");
  for (int i = 0; i < 6; ++i) image.allocate(InodeType::kRegular);
  image.release(3);
  std::vector<std::uint64_t> seen;
  image.for_each_inode([&](const Inode& inode) { seen.push_back(inode.ino); });
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{1, 2, 4, 5, 6}));
}

TEST(LdiskfsTest, BlockGroupAccountingGrowsWithSlots) {
  LdiskfsImage image("test", /*inodes_per_group=*/4);
  EXPECT_EQ(image.block_groups(), 0u);
  for (int i = 0; i < 5; ++i) image.allocate(InodeType::kRegular);
  EXPECT_EQ(image.block_groups(), 2u);
  EXPECT_EQ(image.inode_table_bytes(), 5 * 512u);
}

TEST(LdiskfsTest, ZeroInodesPerGroupRejected) {
  EXPECT_THROW(LdiskfsImage("bad", 0), std::invalid_argument);
}

TEST(LdiskfsTest, DirentBytesScaleWithEntries) {
  Inode inode;
  EXPECT_EQ(inode.dirent_bytes(), 0u);
  inode.dirents.push_back({"hello", Fid{1, 1, 0}, 2});
  const auto one = inode.dirent_bytes();
  inode.dirents.push_back({"world!", Fid{1, 2, 0}, 3});
  EXPECT_GT(inode.dirent_bytes(), one);
}

}  // namespace
}  // namespace faultyrank
