// DNE (Distributed NamEspace): clusters with several metadata servers.
// Directories round-robin across MDTs, so DIRENT/LinkEA pairs routinely
// cross servers; everything downstream — scanners, aggregation,
// FaultyRank, LFSCK, repair, persistence — must behave identically.
#include <gtest/gtest.h>

#include <cstdio>

#include "checker/checker.h"
#include "faults/injector.h"
#include "lfsck/lfsck.h"
#include "online/online_checker.h"
#include "pfs/persistence.h"
#include "testing/fixtures.h"

namespace faultyrank {
namespace {

LustreCluster make_dne_cluster(std::uint64_t files, std::uint64_t seed,
                               std::size_t mdts = 3) {
  LustreCluster cluster(4, StripePolicy{64 * 1024, -1}, mdts);
  NamespaceConfig config;
  config.file_count = files;
  config.seed = seed;
  populate_namespace(cluster, config);
  return cluster;
}

TEST(DneTest, DirectoriesSpreadAcrossMdts) {
  LustreCluster cluster = make_dne_cluster(200, 201);
  std::size_t populated_mdts = 0;
  for (std::size_t m = 0; m < cluster.mdt_count(); ++m) {
    if (cluster.mdt_server(m).image.inodes_in_use() > 0) ++populated_mdts;
  }
  EXPECT_EQ(populated_mdts, 3u);
  // FID sequences are disjoint per MDT.
  EXPECT_NE(cluster.mdt_server(0).fids.seq(),
            cluster.mdt_server(1).fids.seq());
}

TEST(DneTest, FidRoutingFindsCrossMdtObjects) {
  LustreCluster cluster(2, StripePolicy{64 * 1024, 1}, 3);
  const Fid d1 = cluster.mkdir(cluster.root(), "d1");   // MDT round robin
  const Fid d2 = cluster.mkdir(d1, "d2");
  const Fid file = cluster.create_file(d2, "f", 1000);
  EXPECT_EQ(cluster.resolve("/d1/d2/f"), file);
  // The child directory landed on a different MDT than the root but
  // resolution routes transparently.
  EXPECT_NE(cluster.mdt_for(cluster.root()), cluster.mdt_for(d2));
  EXPECT_NE(cluster.stat(d2), nullptr);
}

TEST(DneTest, HealthyDneClusterScansFullyPaired) {
  LustreCluster cluster = make_dne_cluster(150, 202);
  const CheckerResult result = run_checker(cluster);
  EXPECT_TRUE(result.report.consistent());
  // The scan covered every MDT inode.
  EXPECT_EQ(result.inodes_scanned,
            cluster.mdt_inodes_used() + cluster.total_ost_objects());
}

TEST(DneTest, NonPrimaryMdtPartialGraphsCrossTheWire) {
  LustreCluster cluster = make_dne_cluster(100, 203);
  const ClusterScan scan = scan_cluster(cluster);
  ASSERT_GE(scan.results.size(), 3u);
  EXPECT_TRUE(scan.results[0].local_to_mds);    // MDT0 hosts the aggregator
  EXPECT_FALSE(scan.results[1].local_to_mds);   // MDT1 transfers
  EXPECT_FALSE(scan.results[2].local_to_mds);   // MDT2 transfers
}

class DneScenarioTest : public ::testing::TestWithParam<Scenario> {};

TEST_P(DneScenarioTest, FaultsDetectedAndRepairedAcrossMdts) {
  LustreCluster cluster = make_dne_cluster(250, 204);
  FaultInjector injector(cluster, 2044);
  const GroundTruth truth = injector.inject(GetParam());

  CheckerConfig config;
  config.apply_repairs = true;
  config.verify_after_repair = true;
  const CheckerResult result = run_checker(cluster, config);
  const EvalOutcome outcome = evaluate_report(result.report, truth);
  EXPECT_TRUE(outcome.detected);
  EXPECT_TRUE(outcome.root_cause_identified) << to_string(GetParam());
  EXPECT_TRUE(result.verified_consistent) << to_string(GetParam());
  EXPECT_TRUE(verify_restored(cluster, truth)) << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, DneScenarioTest, ::testing::ValuesIn(kAllScenarios),
    [](const ::testing::TestParamInfo<Scenario>& info) {
      std::string name = to_string(info.param);
      for (char& ch : name) {
        if (ch == '/' || ch == '-') ch = '_';
      }
      return name;
    });

TEST(DneTest, LfsckWalksEveryMdt) {
  LustreCluster cluster = make_dne_cluster(150, 205);
  const LfsckResult result = run_lfsck(cluster);
  EXPECT_TRUE(result.events.empty());
  // Both phases together must cover at least every inode on every
  // server (directories are visited by both passes).
  EXPECT_GE(result.inodes_checked,
            cluster.mdt_inodes_used() + cluster.total_ost_objects());
}

TEST(DneTest, PersistenceRoundTripsAllMdts) {
  const std::string path = ::testing::TempDir() + "/dne.fimg";
  LustreCluster original = make_dne_cluster(120, 206);
  save_cluster(original, path);
  LustreCluster loaded = load_cluster(path);
  ASSERT_EQ(loaded.mdt_count(), original.mdt_count());
  for (std::size_t m = 0; m < original.mdt_count(); ++m) {
    EXPECT_EQ(loaded.mdt_server(m).image.inodes_in_use(),
              original.mdt_server(m).image.inodes_in_use());
  }
  EXPECT_TRUE(run_checker(loaded).report.consistent());
  std::remove(path.c_str());
}

TEST(DneTest, OnlineCheckerCoversAllMdts) {
  LustreCluster cluster = make_dne_cluster(120, 207);
  ChangeLog log;
  cluster.attach_changelog(&log);
  OnlineChecker checker(cluster);
  checker.bootstrap();
  EXPECT_TRUE(checker.check().report.consistent());

  FaultInjector injector(cluster, 2077);
  const GroundTruth truth = injector.inject(Scenario::kMismatchSourceId);
  checker.full_scrub();
  const EvalOutcome outcome = evaluate_report(checker.check().report, truth);
  EXPECT_TRUE(outcome.detected);
  EXPECT_TRUE(outcome.root_cause_identified);
}

TEST(DneTest, QuarantineWorksWhenLostFoundIsRemote) {
  // lost+found may land on a non-zero MDT via round-robin placement;
  // quarantine must route there.
  LustreCluster cluster(2, StripePolicy{64 * 1024, 1}, 3);
  cluster.create_file(cluster.root(), "keep", 1000);
  // An isolated orphan object.
  OstServer& ost = cluster.ost(0);
  Inode& orphan = ost.image.allocate(InodeType::kOstObject);
  orphan.lma_fid = Fid{kOstSeqBase, 0x9999, 0};
  ost.image.oi_insert(orphan.lma_fid, orphan.ino);

  CheckerConfig config;
  config.apply_repairs = true;
  config.verify_after_repair = true;
  const CheckerResult result = run_checker(cluster, config);
  EXPECT_TRUE(result.verified_consistent);
}

}  // namespace
}  // namespace faultyrank
