#include "pfs/persistence.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "aggregator/aggregator.h"
#include "faults/injector.h"
#include "scanner/scanner.h"
#include "testing/fixtures.h"

namespace faultyrank {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(PersistenceTest, RoundTripPreservesStructure) {
  const std::string path = temp_path("roundtrip.fimg");
  LustreCluster original = testing::make_populated_cluster(150, 51);
  save_cluster(original, path);
  LustreCluster loaded = load_cluster(path);

  EXPECT_EQ(loaded.root(), original.root());
  EXPECT_EQ(loaded.mdt_inodes_used(), original.mdt_inodes_used());
  EXPECT_EQ(loaded.total_ost_objects(), original.total_ost_objects());
  EXPECT_EQ(loaded.osts().size(), original.osts().size());
  EXPECT_EQ(loaded.default_policy().stripe_size,
            original.default_policy().stripe_size);
  std::remove(path.c_str());
}

TEST(PersistenceTest, LoadedClusterScansToIdenticalGraph) {
  const std::string path = temp_path("scan.fimg");
  LustreCluster original = testing::make_populated_cluster(120, 52);
  save_cluster(original, path);
  LustreCluster loaded = load_cluster(path);

  const AggregationResult a = aggregate(scan_cluster(original).results);
  const AggregationResult b = aggregate(scan_cluster(loaded).results);
  ASSERT_EQ(a.graph.vertex_count(), b.graph.vertex_count());
  ASSERT_EQ(a.graph.edge_count(), b.graph.edge_count());
  for (Gid v = 0; v < a.graph.vertex_count(); ++v) {
    EXPECT_EQ(a.graph.vertices().fid_of(v), b.graph.vertices().fid_of(v));
  }
  std::remove(path.c_str());
}

TEST(PersistenceTest, SnapshotPreservesCorruption) {
  const std::string path = temp_path("broken.fimg");
  LustreCluster original = testing::make_populated_cluster(120, 53);
  FaultInjector injector(original, 5353);
  const GroundTruth truth = injector.inject(Scenario::kDanglingTargetId);
  save_cluster(original, path);

  // The offline checker workflow: load the unmounted image, check it.
  LustreCluster loaded = load_cluster(path);
  EXPECT_FALSE(verify_restored(loaded, truth));
  const AggregationResult agg = aggregate(scan_cluster(loaded).results);
  EXPECT_FALSE(agg.graph.unpaired_edges().empty());
  std::remove(path.c_str());
}

TEST(PersistenceTest, LoadedClusterRemainsFullyOperational) {
  const std::string path = temp_path("ops.fimg");
  LustreCluster original = testing::make_populated_cluster(80, 54);
  save_cluster(original, path);
  LustreCluster loaded = load_cluster(path);

  // FID allocation must continue past the snapshot without collision.
  const Fid dir = loaded.mkdir(loaded.root(), "post_load");
  const Fid file = loaded.create_file(dir, "new.dat", 100 * 1024);
  EXPECT_EQ(loaded.resolve("/post_load/new.dat"), file);
  const AggregationResult agg = aggregate(scan_cluster(loaded).results);
  EXPECT_TRUE(agg.graph.unpaired_edges().empty());
  std::remove(path.c_str());
}

TEST(PersistenceTest, MissingFileThrows) {
  EXPECT_THROW((void)load_cluster(temp_path("nope.fimg")), PersistenceError);
}

TEST(PersistenceTest, CorruptSnapshotThrows) {
  const std::string path = temp_path("garbage.fimg");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  const char junk[] = "not a snapshot";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  EXPECT_THROW((void)load_cluster(path), PersistenceError);
  std::remove(path.c_str());
}

TEST(PersistenceTest, TruncatedSnapshotThrows) {
  const std::string path = temp_path("trunc.fimg");
  LustreCluster original = testing::make_populated_cluster(50, 55);
  save_cluster(original, path);
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
  EXPECT_THROW((void)load_cluster(path), PersistenceError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace faultyrank
