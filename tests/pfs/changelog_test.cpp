#include "pfs/changelog.h"

#include <gtest/gtest.h>

#include "pfs/cluster.h"

namespace faultyrank {
namespace {

TEST(ChangeLogTest, AppendsWithMonotonicIndices) {
  ChangeLog log;
  log.append({0, ChangeOp::kMkdir, Fid{1, 1, 0}, Fid{1, 0, 0}, "a",
              InodeType::kDirectory, {}});
  log.append({0, ChangeOp::kMkdir, Fid{1, 2, 0}, Fid{1, 0, 0}, "b",
              InodeType::kDirectory, {}});
  const auto records = log.read_from(0);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].index, 0u);
  EXPECT_EQ(records[1].index, 1u);
  EXPECT_EQ(log.next_index(), 2u);
}

TEST(ChangeLogTest, ReadFromCursorSkipsConsumed) {
  ChangeLog log;
  for (int i = 0; i < 5; ++i) {
    log.append({0, ChangeOp::kMkdir, Fid{1, static_cast<std::uint32_t>(i), 0},
                kNullFid, "d", InodeType::kDirectory, {}});
  }
  EXPECT_EQ(log.read_from(3).size(), 2u);
  EXPECT_EQ(log.read_from(5).size(), 0u);
}

TEST(ChangeLogTest, PurgeDropsAcknowledgedRecords) {
  ChangeLog log;
  for (int i = 0; i < 5; ++i) {
    log.append({0, ChangeOp::kMkdir, Fid{1, static_cast<std::uint32_t>(i), 0},
                kNullFid, "d", InodeType::kDirectory, {}});
  }
  log.purge_below(3);
  EXPECT_EQ(log.size(), 2u);
  // Indices are preserved across a purge.
  EXPECT_EQ(log.read_from(0).front().index, 3u);
}

TEST(ChangeLogTest, ClusterRecordsMkdirCreateUnlink) {
  LustreCluster cluster(2, StripePolicy{64 * 1024, -1});
  ChangeLog log;
  cluster.attach_changelog(&log);

  const Fid dir = cluster.mkdir(cluster.root(), "d");
  const Fid file = cluster.create_file(dir, "f", 2 * 64 * 1024);
  cluster.unlink(dir, "f");

  const auto records = log.read_from(0);
  ASSERT_EQ(records.size(), 3u);

  EXPECT_EQ(records[0].op, ChangeOp::kMkdir);
  EXPECT_EQ(records[0].target, dir);
  EXPECT_EQ(records[0].parent, cluster.root());
  EXPECT_EQ(records[0].name, "d");

  EXPECT_EQ(records[1].op, ChangeOp::kCreateFile);
  EXPECT_EQ(records[1].target, file);
  EXPECT_EQ(records[1].parent, dir);
  EXPECT_EQ(records[1].stripes.size(), 2u);

  EXPECT_EQ(records[2].op, ChangeOp::kUnlink);
  EXPECT_EQ(records[2].target, file);
  EXPECT_EQ(records[2].stripes.size(), 2u);  // freed objects recorded
}

TEST(ChangeLogTest, DetachStopsRecording) {
  LustreCluster cluster(2);
  ChangeLog log;
  cluster.attach_changelog(&log);
  cluster.mkdir(cluster.root(), "a");
  cluster.attach_changelog(nullptr);
  cluster.mkdir(cluster.root(), "b");
  EXPECT_EQ(log.size(), 1u);
}

TEST(ChangeLogTest, RawCorruptionBypassesTheLog) {
  LustreCluster cluster(2, StripePolicy{64 * 1024, 1});
  ChangeLog log;
  cluster.attach_changelog(&log);
  const Fid file = cluster.create_file(cluster.root(), "f", 1000);
  const auto before = log.size();
  // Raw EA edit, as the fault injector (or bit rot) would do.
  cluster.mdt().image.find_by_fid(file)->link_ea.clear();
  EXPECT_EQ(log.size(), before);
}

}  // namespace
}  // namespace faultyrank
