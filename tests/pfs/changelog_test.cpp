#include "pfs/changelog.h"

#include <gtest/gtest.h>

#include "common/serdes.h"
#include "pfs/cluster.h"

namespace faultyrank {
namespace {

TEST(ChangeLogTest, AppendsWithMonotonicIndices) {
  ChangeLog log;
  log.append({0, ChangeOp::kMkdir, Fid{1, 1, 0}, Fid{1, 0, 0}, "a",
              InodeType::kDirectory, {}});
  log.append({0, ChangeOp::kMkdir, Fid{1, 2, 0}, Fid{1, 0, 0}, "b",
              InodeType::kDirectory, {}});
  const auto records = log.read_from(0);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].index, 0u);
  EXPECT_EQ(records[1].index, 1u);
  EXPECT_EQ(log.next_index(), 2u);
}

TEST(ChangeLogTest, ReadFromCursorSkipsConsumed) {
  ChangeLog log;
  for (int i = 0; i < 5; ++i) {
    log.append({0, ChangeOp::kMkdir, Fid{1, static_cast<std::uint32_t>(i), 0},
                kNullFid, "d", InodeType::kDirectory, {}});
  }
  EXPECT_EQ(log.read_from(3).size(), 2u);
  EXPECT_EQ(log.read_from(5).size(), 0u);
}

TEST(ChangeLogTest, PurgeDropsAcknowledgedRecords) {
  ChangeLog log;
  for (int i = 0; i < 5; ++i) {
    log.append({0, ChangeOp::kMkdir, Fid{1, static_cast<std::uint32_t>(i), 0},
                kNullFid, "d", InodeType::kDirectory, {}});
  }
  log.purge_below(3);
  EXPECT_EQ(log.size(), 2u);
  // Indices are preserved across a purge.
  EXPECT_EQ(log.read_from(0).front().index, 3u);
}

TEST(ChangeLogTest, ClusterRecordsMkdirCreateUnlink) {
  LustreCluster cluster(2, StripePolicy{64 * 1024, -1});
  ChangeLog log;
  cluster.attach_changelog(&log);

  const Fid dir = cluster.mkdir(cluster.root(), "d");
  const Fid file = cluster.create_file(dir, "f", 2 * 64 * 1024);
  cluster.unlink(dir, "f");

  const auto records = log.read_from(0);
  ASSERT_EQ(records.size(), 3u);

  EXPECT_EQ(records[0].op, ChangeOp::kMkdir);
  EXPECT_EQ(records[0].target, dir);
  EXPECT_EQ(records[0].parent, cluster.root());
  EXPECT_EQ(records[0].name, "d");

  EXPECT_EQ(records[1].op, ChangeOp::kCreateFile);
  EXPECT_EQ(records[1].target, file);
  EXPECT_EQ(records[1].parent, dir);
  EXPECT_EQ(records[1].stripes.size(), 2u);

  EXPECT_EQ(records[2].op, ChangeOp::kUnlink);
  EXPECT_EQ(records[2].target, file);
  EXPECT_EQ(records[2].stripes.size(), 2u);  // freed objects recorded
}

TEST(ChangeLogTest, DetachStopsRecording) {
  LustreCluster cluster(2);
  ChangeLog log;
  cluster.attach_changelog(&log);
  cluster.mkdir(cluster.root(), "a");
  cluster.attach_changelog(nullptr);
  cluster.mkdir(cluster.root(), "b");
  EXPECT_EQ(log.size(), 1u);
}

// --- FRCL snapshot serdes ----------------------------------------------

namespace frcl {
// Header layout: u32 magic | u32 version | u64 next_index | u32 count.
constexpr std::size_t kVersionOffset = 4;
constexpr std::size_t kCountOffset = 16;
constexpr std::size_t kFirstRecordOffset = 20;
// Within a record: u64 index, then the op byte.
constexpr std::size_t kOpOffset = kFirstRecordOffset + 8;
}  // namespace frcl

void populate_log(ChangeLog& log) {
  log.append({0, ChangeOp::kMkdir, Fid{1, 1, 0}, Fid{1, 0, 0}, "dir",
              InodeType::kDirectory, {}});
  log.append({0, ChangeOp::kCreateFile, Fid{1, 2, 0}, Fid{1, 1, 0}, "file",
              InodeType::kRegular,
              {LovEaEntry{Fid{2, 10, 0}, 0}, LovEaEntry{Fid{2, 11, 0}, 1}}});
  log.append({0, ChangeOp::kHardLink, Fid{1, 2, 0}, Fid{1, 1, 0}, "alias",
              InodeType::kRegular, {}});
  // Unlink of one hard-link name: the object survives.
  ChangeRecord unlink{0, ChangeOp::kUnlink, Fid{1, 2, 0}, Fid{1, 1, 0},
                      "alias", InodeType::kRegular, {}};
  unlink.removes_object = false;
  log.append(unlink);
  ChangeRecord rename{0, ChangeOp::kRename, Fid{1, 2, 0}, Fid{1, 1, 0},
                      "renamed", InodeType::kRegular, {}};
  rename.src_parent = Fid{1, 0, 0};
  rename.src_name = "file";
  log.append(rename);
}

TEST(ChangeLogSerdesTest, RoundTripsEveryOpKind) {
  ChangeLog log;
  populate_log(log);
  log.purge_below(1);

  const auto bytes = serialize_changelog(log);
  ChangeLog restored;
  deserialize_changelog(bytes, restored);

  EXPECT_EQ(restored.next_index(), log.next_index());
  const auto want = log.read_from(0);
  const auto got = restored.read_from(0);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].index, want[i].index);
    EXPECT_EQ(got[i].op, want[i].op);
    EXPECT_EQ(got[i].target, want[i].target);
    EXPECT_EQ(got[i].parent, want[i].parent);
    EXPECT_EQ(got[i].name, want[i].name);
    EXPECT_EQ(got[i].type, want[i].type);
    EXPECT_EQ(got[i].stripes, want[i].stripes);
    EXPECT_EQ(got[i].removes_object, want[i].removes_object);
    EXPECT_EQ(got[i].src_parent, want[i].src_parent);
    EXPECT_EQ(got[i].src_name, want[i].src_name);
  }
}

TEST(ChangeLogSerdesTest, EmptyLogRoundTrips) {
  ChangeLog log;
  ChangeLog restored;
  deserialize_changelog(serialize_changelog(log), restored);
  EXPECT_EQ(restored.size(), 0u);
  EXPECT_EQ(restored.next_index(), 0u);
}

TEST(ChangeLogSerdesTest, BadMagicLeavesTargetUntouched) {
  ChangeLog log;
  populate_log(log);
  auto bytes = serialize_changelog(log);
  bytes[0] ^= 0xff;
  ChangeLog out;
  out.append({0, ChangeOp::kMkdir, Fid{9, 9, 0}, kNullFid, "keep",
              InodeType::kDirectory, {}});
  EXPECT_THROW(deserialize_changelog(bytes, out), SerdesError);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.read_from(0).front().name, "keep");
}

TEST(ChangeLogSerdesTest, UnsupportedVersionThrows) {
  ChangeLog log;
  populate_log(log);
  auto bytes = serialize_changelog(log);
  bytes[frcl::kVersionOffset] = 99;
  ChangeLog out;
  EXPECT_THROW(deserialize_changelog(bytes, out), SerdesError);
}

TEST(ChangeLogSerdesTest, ImpossibleOpByteThrows) {
  ChangeLog log;
  populate_log(log);
  auto bytes = serialize_changelog(log);
  bytes[frcl::kOpOffset] = 0xff;
  ChangeLog out;
  EXPECT_THROW(deserialize_changelog(bytes, out), SerdesError);
}

TEST(ChangeLogSerdesTest, ImpossibleInodeTypeByteThrows) {
  // One record with an empty name puts the type byte at a computable
  // offset: index 8 + op 1 + two fids 32 + empty-string prefix 4.
  ChangeLog log;
  log.append({0, ChangeOp::kMkdir, Fid{1, 1, 0}, kNullFid, "",
              InodeType::kDirectory, {}});
  auto bytes = serialize_changelog(log);
  bytes[frcl::kFirstRecordOffset + 8 + 1 + 32 + 4] = 0xff;
  ChangeLog out;
  EXPECT_THROW(deserialize_changelog(bytes, out), SerdesError);
}

TEST(ChangeLogSerdesTest, ImplausibleRecordCountThrows) {
  // A claimed count whose minimum encoding exceeds the buffer must be
  // rejected up front (bounded_count), not discovered by allocating.
  const ChangeLog empty;
  auto bytes = serialize_changelog(empty);
  bytes[frcl::kCountOffset] = 0xff;
  bytes[frcl::kCountOffset + 1] = 0xff;
  bytes[frcl::kCountOffset + 2] = 0xff;
  bytes[frcl::kCountOffset + 3] = 0xff;
  ChangeLog out;
  EXPECT_THROW(deserialize_changelog(bytes, out), SerdesError);
}

TEST(ChangeLogSerdesTest, TrailingBytesThrow) {
  ChangeLog log;
  populate_log(log);
  auto bytes = serialize_changelog(log);
  bytes.push_back(0x00);
  ChangeLog out;
  EXPECT_THROW(deserialize_changelog(bytes, out), SerdesError);
}

TEST(ChangeLogSerdesTest, TruncatedRecordThrows) {
  ChangeLog log;
  populate_log(log);
  auto bytes = serialize_changelog(log);
  bytes.resize(bytes.size() - 5);
  ChangeLog out;
  EXPECT_THROW(deserialize_changelog(bytes, out), SerdesError);
}

TEST(ChangeLogTest, RawCorruptionBypassesTheLog) {
  LustreCluster cluster(2, StripePolicy{64 * 1024, 1});
  ChangeLog log;
  cluster.attach_changelog(&log);
  const Fid file = cluster.create_file(cluster.root(), "f", 1000);
  const auto before = log.size();
  // Raw EA edit, as the fault injector (or bit rot) would do.
  cluster.mdt().image.find_by_fid(file)->link_ea.clear();
  EXPECT_EQ(log.size(), before);
}

}  // namespace
}  // namespace faultyrank
