// Hard links: multiple DIRENT parents for one file are legitimate when
// every claim is answered by a LinkEA record — the checker must accept
// them, the online checker must track them, and genuine duplicate
// claims must still be convicted.
#include <gtest/gtest.h>

#include <cstdio>

#include "checker/checker.h"
#include "pfs/persistence.h"
#include "online/online_checker.h"
#include "testing/fixtures.h"

namespace faultyrank {
namespace {

TEST(HardLinkTest, LinkAddsDirentAndLinkEa) {
  LustreCluster cluster(2, StripePolicy{64 * 1024, 1});
  const Fid dir_a = cluster.mkdir(cluster.root(), "a");
  const Fid dir_b = cluster.mkdir(cluster.root(), "b");
  const Fid file = cluster.create_file(dir_a, "orig", 1000);
  cluster.link(file, dir_b, "alias");

  EXPECT_EQ(cluster.resolve("/a/orig"), file);
  EXPECT_EQ(cluster.resolve("/b/alias"), file);
  EXPECT_EQ(cluster.stat(file)->link_ea.size(), 2u);
}

TEST(HardLinkTest, LinkRejectsDirectoriesAndDuplicates) {
  LustreCluster cluster(2);
  const Fid dir = cluster.mkdir(cluster.root(), "d");
  const Fid file = cluster.create_file(cluster.root(), "f", 100);
  EXPECT_THROW(cluster.link(dir, cluster.root(), "d2"), ClusterError);
  EXPECT_THROW(cluster.link(file, cluster.root(), "f"), ClusterError);
}

TEST(HardLinkTest, HardLinkedFileIsNotADoubleReference) {
  LustreCluster cluster = testing::make_populated_cluster(100, 301);
  const Fid dir_a = cluster.mkdir(cluster.root(), "ha");
  const Fid dir_b = cluster.mkdir(cluster.root(), "hb");
  const Fid file = cluster.create_file(dir_a, "shared", 2 * 64 * 1024);
  cluster.link(file, dir_b, "shared_alias");

  const CheckerResult result = run_checker(cluster);
  EXPECT_TRUE(result.report.consistent());
}

TEST(HardLinkTest, UnlinkOneNameKeepsObjectAndData) {
  LustreCluster cluster(2, StripePolicy{64 * 1024, -1});
  const Fid dir_b = cluster.mkdir(cluster.root(), "b");
  const Fid file = cluster.create_file(cluster.root(), "f", 2 * 64 * 1024);
  cluster.link(file, dir_b, "alias");
  const auto objects = cluster.total_ost_objects();

  cluster.unlink(cluster.root(), "f");
  // Object and stripes survive the first unlink…
  EXPECT_NE(cluster.stat(file), nullptr);
  EXPECT_EQ(cluster.total_ost_objects(), objects);
  EXPECT_EQ(cluster.resolve("/b/alias"), file);
  const CheckerResult mid = run_checker(cluster);
  EXPECT_TRUE(mid.report.consistent());

  // …and go away with the last one.
  cluster.unlink(dir_b, "alias");
  EXPECT_EQ(cluster.stat(file), nullptr);
  EXPECT_EQ(cluster.total_ost_objects(), objects - 2);
  EXPECT_TRUE(run_checker(cluster).report.consistent());
}

TEST(HardLinkTest, DuplicateDirentStillConvicted) {
  // Two claims, one acknowledgment: the unanswered one is a duplicate.
  LustreCluster cluster = testing::make_populated_cluster(80, 302);
  const Fid dir_a = cluster.mkdir(cluster.root(), "da");
  const Fid dir_b = cluster.mkdir(cluster.root(), "db");
  const Fid file = cluster.create_file(dir_a, "victim", 1000);
  // Raw corruption: db gains a dirent naming the file with no LinkEA.
  Inode* db = cluster.find_mdt_inode(dir_b);
  db->dirents.push_back({"stolen", file, 0});

  CheckerConfig config;
  config.apply_repairs = true;
  config.verify_after_repair = true;
  const CheckerResult result = run_checker(cluster, config);
  EXPECT_GE(result.report.count(InconsistencyCategory::kDoubleReference), 1u);
  EXPECT_TRUE(result.verified_consistent);
  // The legitimate name survives.
  EXPECT_EQ(cluster.resolve("/da/victim"), file);
}

TEST(HardLinkTest, OnlineCheckerTracksLinkAndPartialUnlink) {
  LustreCluster cluster = testing::make_populated_cluster(60, 303);
  ChangeLog log;
  cluster.attach_changelog(&log);
  OnlineChecker checker(cluster);
  checker.bootstrap();

  const Fid dir = cluster.mkdir(cluster.root(), "hl");
  const Fid file = cluster.create_file(dir, "one", 1000);
  cluster.link(file, cluster.root(), "two");
  checker.catch_up();
  EXPECT_TRUE(checker.check().report.consistent());

  cluster.unlink(dir, "one");  // partial: the object survives
  checker.catch_up();
  EXPECT_TRUE(checker.check().report.consistent());
  EXPECT_TRUE(checker.graph().contains(file));

  cluster.unlink(cluster.root(), "two");  // final
  checker.catch_up();
  EXPECT_TRUE(checker.check().report.consistent());
  EXPECT_FALSE(checker.graph().contains(file));
}

TEST(HardLinkTest, PersistenceKeepsAllLinks) {
  const std::string path = ::testing::TempDir() + "/hardlink.fimg";
  LustreCluster original(2, StripePolicy{64 * 1024, 1});
  const Fid dir = original.mkdir(original.root(), "d");
  const Fid file = original.create_file(original.root(), "f", 1000);
  original.link(file, dir, "alias");

  save_cluster(original, path);
  LustreCluster loaded = load_cluster(path);
  EXPECT_EQ(loaded.resolve("/f"), loaded.resolve("/d/alias"));
  EXPECT_EQ(loaded.stat(file)->link_ea.size(), 2u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace faultyrank
