// Conformance of the baseline to the Table I behaviour matrix: what
// LFSCK identifies, what it repairs, and what it silently cannot see.
#include "lfsck/lfsck.h"

#include <gtest/gtest.h>

#include "faults/injector.h"
#include "testing/fixtures.h"

namespace faultyrank {
namespace {

TEST(LfsckTest, CleanClusterProducesNoEvents) {
  LustreCluster cluster = testing::make_populated_cluster(100, 21);
  const LfsckResult result = run_lfsck(cluster);
  EXPECT_TRUE(result.events.empty());
  EXPECT_GT(result.inodes_checked, 0u);
  EXPECT_GT(result.rpcs_issued, 0u);
  EXPECT_GT(result.sim_seconds, 0.0);
}

TEST(LfsckTest, DanglingLovEaSlotRecreatesEmptyObject) {
  LustreCluster cluster = testing::make_populated_cluster(50, 22);
  // Manually dangle one LOVEA slot (as if the object vanished).
  Fid victim_file;
  cluster.mdt().image.for_each_inode_mut([&](Inode& inode) {
    if (victim_file.is_null() && inode.type == InodeType::kRegular &&
        inode.lov_ea.has_value() && !inode.lov_ea->stripes.empty()) {
      victim_file = inode.lma_fid;
      const LovEaEntry slot = inode.lov_ea->stripes[0];
      OstServer& ost = cluster.ost(slot.ost_index);
      const Inode* object = ost.image.find_by_fid(slot.stripe);
      ost.image.release(object->ino);
    }
  });
  ASSERT_FALSE(victim_file.is_null());

  const LfsckResult result = run_lfsck(cluster);
  EXPECT_EQ(result.count(LfsckActionKind::kRecreateOstObject), 1u);
  // "MDS is right": the object now exists again under the expected id.
  const Inode* file = cluster.stat(victim_file);
  const LovEaEntry& slot = file->lov_ea->stripes[0];
  const Inode* recreated =
      cluster.ost(slot.ost_index).image.find_by_fid(slot.stripe);
  ASSERT_NE(recreated, nullptr);
  EXPECT_EQ(recreated->filter_fid->parent, victim_file);
}

TEST(LfsckTest, FilterFidMismatchOverwrittenFromMds) {
  LustreCluster cluster = testing::make_populated_cluster(50, 23);
  FaultInjector injector(cluster, 1);
  const GroundTruth truth = injector.inject(Scenario::kMismatchTargetProperty);

  const LfsckResult result = run_lfsck(cluster);
  EXPECT_GE(result.count(LfsckActionKind::kOverwriteFilterFid), 1u);
  // Table I row 7: correctly repaired (b's property rebuilt from a).
  EXPECT_TRUE(verify_restored(cluster, truth));
}

TEST(LfsckTest, OrphanOstObjectGoesToLostFoundNotRepaired) {
  LustreCluster cluster = testing::make_populated_cluster(50, 24);
  FaultInjector injector(cluster, 2);
  // b's id corrupted: LFSCK recreates an empty object for the dangling
  // slot and ships the real (mis-identified) object to lost+found —
  // identified, but the id itself is never repaired (Table I row 2).
  const GroundTruth truth = injector.inject(Scenario::kDanglingTargetId);

  const LfsckResult result = run_lfsck(cluster);
  EXPECT_GE(result.count(LfsckActionKind::kRecreateOstObject), 1u);
  EXPECT_GE(result.count(LfsckActionKind::kOrphanToLostFound), 1u);
  // The corrupted id is NOT restored: no object carries the old id with
  // the original data — the recreated one is an empty stub, and the
  // orphan keeps its bogus id inside lost+found.
  bool orphan_kept_bogus_id = false;
  for (const auto& ost : cluster.osts()) {
    if (ost.image.find_by_fid_raw(truth.current) != nullptr) {
      orphan_kept_bogus_id = true;
    }
  }
  EXPECT_TRUE(orphan_kept_bogus_id);
}

TEST(LfsckTest, DanglingDirentIsDropped) {
  LustreCluster cluster = testing::make_populated_cluster(50, 25);
  // Point one directory entry at a nonexistent fid.
  Fid dir_fid;
  cluster.mdt().image.for_each_inode_mut([&](Inode& inode) {
    if (dir_fid.is_null() && inode.type == InodeType::kDirectory &&
        !inode.dirents.empty() && inode.lma_fid != cluster.root()) {
      dir_fid = inode.lma_fid;
      inode.dirents[0].fid = Fid{0xbad, 1, 0};
    }
  });
  ASSERT_FALSE(dir_fid.is_null());
  const std::size_t before =
      cluster.mdt().image.find_by_fid(dir_fid)->dirents.size();

  const LfsckResult result = run_lfsck(cluster);
  EXPECT_GE(result.count(LfsckActionKind::kRemoveDanglingDirent), 1u);
  EXPECT_LT(cluster.mdt().image.find_by_fid(dir_fid)->dirents.size(), before);
}

TEST(LfsckTest, MissingLinkEaRebuiltFromDirent) {
  LustreCluster cluster = testing::make_populated_cluster(50, 26);
  Fid child;
  Fid parent;
  cluster.mdt().image.for_each_inode_mut([&](Inode& inode) {
    if (child.is_null() && inode.type == InodeType::kRegular &&
        !inode.link_ea.empty()) {
      child = inode.lma_fid;
      parent = inode.link_ea[0].parent;
      inode.link_ea.clear();
    }
  });
  ASSERT_FALSE(child.is_null());

  const LfsckResult result = run_lfsck(cluster);
  EXPECT_GE(result.count(LfsckActionKind::kRebuildLinkEa), 1u);
  const Inode* inode = cluster.mdt().image.find_by_fid(child);
  ASSERT_EQ(inode->link_ea.size(), 1u);
  EXPECT_EQ(inode->link_ea[0].parent, parent);
}

TEST(LfsckTest, CannotIdentifyCorruptedSourceProperty) {
  // Table I row 1: "a's property is wrong → ignore, cannot identify or
  // repair". LFSCK recreates empty objects for each bogus slot and
  // orphans the stranded stripes — the property itself is never fixed.
  LustreCluster cluster = testing::make_populated_cluster(50, 27);
  FaultInjector injector(cluster, 3);
  const GroundTruth truth =
      injector.inject(Scenario::kDanglingSourceProperty);

  const LfsckResult result = run_lfsck(cluster);
  EXPECT_GE(result.count(LfsckActionKind::kRecreateOstObject), 1u);
  // The original reference was NOT restored (data effectively lost to
  // lost+found stubs):
  EXPECT_FALSE(verify_restored(cluster, truth));
}

TEST(LfsckTest, DryRunReportsWithoutMutating) {
  LustreCluster cluster = testing::make_populated_cluster(50, 28);
  FaultInjector injector(cluster, 4);
  injector.inject(Scenario::kMismatchTargetProperty);

  LfsckConfig config;
  config.repair = false;
  const std::uint64_t objects_before = cluster.total_ost_objects();
  const std::uint64_t inodes_before = cluster.mdt_inodes_used();
  const LfsckResult result = run_lfsck(cluster, config);
  EXPECT_FALSE(result.events.empty());
  EXPECT_EQ(cluster.total_ost_objects(), objects_before);
  EXPECT_EQ(cluster.mdt_inodes_used(), inodes_before);
}

TEST(LfsckTest, CostModelScalesWithClusterSize) {
  LustreCluster small = testing::make_populated_cluster(50, 29);
  LustreCluster large = testing::make_populated_cluster(400, 29);
  const LfsckResult small_result = run_lfsck(small);
  const LfsckResult large_result = run_lfsck(large);
  EXPECT_GT(large_result.sim_seconds, small_result.sim_seconds);
  EXPECT_GT(large_result.rpcs_issued, small_result.rpcs_issued);
}

TEST(LfsckTest, RepairedClusterPassesSecondRun) {
  LustreCluster cluster = testing::make_populated_cluster(60, 30);
  FaultInjector injector(cluster, 5);
  injector.inject(Scenario::kMismatchTargetProperty);
  (void)run_lfsck(cluster);
  const LfsckResult second = run_lfsck(cluster);
  EXPECT_TRUE(second.events.empty());
}

}  // namespace
}  // namespace faultyrank
