#include "common/fid.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace faultyrank {
namespace {

TEST(FidTest, DefaultIsNull) {
  EXPECT_TRUE(Fid{}.is_null());
  EXPECT_TRUE(kNullFid.is_null());
  EXPECT_FALSE((Fid{1, 0, 0}).is_null());
  EXPECT_FALSE((Fid{0, 1, 0}).is_null());
  EXPECT_FALSE((Fid{0, 0, 1}).is_null());
}

TEST(FidTest, OrderingComparesComponentsLexicographically) {
  EXPECT_LT((Fid{1, 5, 0}), (Fid{2, 0, 0}));
  EXPECT_LT((Fid{1, 5, 0}), (Fid{1, 6, 0}));
  EXPECT_LT((Fid{1, 5, 0}), (Fid{1, 5, 1}));
  EXPECT_EQ((Fid{1, 5, 7}), (Fid{1, 5, 7}));
}

TEST(FidTest, ToStringMatchesLustreForm) {
  EXPECT_EQ((Fid{0x200000400, 0x2a, 0}).to_string(), "[0x200000400:0x2a:0x0]");
  EXPECT_EQ(kNullFid.to_string(), "[0x0:0x0:0x0]");
}

TEST(FidTest, ParseRoundTrip) {
  const Fid cases[] = {
      {0, 0, 0},
      {1, 2, 3},
      {0x200000400, 0xffffffff, 0xffffffff},
      {0xffffffffffffffffULL, 1, 0},
  };
  for (const Fid& fid : cases) {
    const auto parsed = Fid::parse(fid.to_string());
    ASSERT_TRUE(parsed.has_value()) << fid.to_string();
    EXPECT_EQ(*parsed, fid);
  }
}

TEST(FidTest, ParseRejectsMalformedInput) {
  const char* bad[] = {
      "",
      "[]",
      "0x1:0x2:0x3",
      "[0x1:0x2]",
      "[0x1:0x2:0x3",
      "0x1:0x2:0x3]",
      "[1:2:3]",
      "[0x1:0x2:0x3]x",
      "[0x1:0xZZ:0x3]",
      "[0x1:0x100000000:0x0]",   // oid overflows 32 bits
      "[0x1:0x0:0x100000000]",   // ver overflows 32 bits
  };
  for (const char* text : bad) {
    EXPECT_FALSE(Fid::parse(text).has_value()) << text;
  }
}

TEST(FidTest, HashSpreadsDistinctFids) {
  FidHash hash;
  std::unordered_set<std::size_t> seen;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    seen.insert(hash(Fid{0x200000400, i, 0}));
    seen.insert(hash(Fid{0x100010000ULL + i, 1, 0}));
  }
  // No more than a handful of collisions over 2000 inputs.
  EXPECT_GE(seen.size(), 1995u);
}

}  // namespace
}  // namespace faultyrank
