#include "common/serdes.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace faultyrank {
namespace {

TEST(SerdesTest, ScalarRoundTrip) {
  ByteWriter w;
  w.put<std::uint8_t>(0x12);
  w.put<std::uint32_t>(0xdeadbeef);
  w.put<std::uint64_t>(0x0123456789abcdefULL);
  w.put<double>(3.25);

  ByteReader r(w.bytes());
  EXPECT_EQ(r.get<std::uint8_t>(), 0x12);
  EXPECT_EQ(r.get<std::uint32_t>(), 0xdeadbeefu);
  EXPECT_EQ(r.get<std::uint64_t>(), 0x0123456789abcdefULL);
  EXPECT_DOUBLE_EQ(r.get<double>(), 3.25);
  EXPECT_TRUE(r.exhausted());
}

TEST(SerdesTest, StringRoundTrip) {
  ByteWriter w;
  w.put_string("");
  w.put_string("oss3");
  w.put_string(std::string(1000, 'x'));

  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_string(), "");
  EXPECT_EQ(r.get_string(), "oss3");
  EXPECT_EQ(r.get_string(), std::string(1000, 'x'));
  EXPECT_TRUE(r.exhausted());
}

TEST(SerdesTest, TruncatedScalarThrows) {
  ByteWriter w;
  w.put<std::uint16_t>(7);
  ByteReader r(w.bytes());
  EXPECT_THROW((void)r.get<std::uint64_t>(), SerdesError);
}

TEST(SerdesTest, TruncatedStringThrows) {
  ByteWriter w;
  w.put<std::uint32_t>(100);  // claims 100 bytes, provides none
  ByteReader r(w.bytes());
  EXPECT_THROW(r.get_string(), SerdesError);
}

TEST(SerdesTest, RemainingTracksPosition) {
  ByteWriter w;
  w.put<std::uint32_t>(1);
  w.put<std::uint32_t>(2);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.remaining(), 8u);
  (void)r.get<std::uint32_t>();
  EXPECT_EQ(r.remaining(), 4u);
  (void)r.get<std::uint32_t>();
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_TRUE(r.exhausted());
}

TEST(SerdesTest, TakeMovesBufferOut) {
  ByteWriter w;
  w.put<std::uint32_t>(42);
  const auto bytes = w.take();
  EXPECT_EQ(bytes.size(), 4u);
}

TEST(SerdesTest, MaxLengthStringClaimNearBufferEndThrows) {
  // A crafted length of UINT32_MAX next to the end of the buffer: a
  // `pos_ + len > size_` check could wrap on 32-bit size_t, so the
  // reader must compare against the remaining span instead.
  ByteWriter w;
  w.put<std::uint32_t>(0xffffffffu);  // string claims 4 GiB - 1
  w.put<std::uint8_t>(0x55);          // but only 1 byte follows
  ByteReader r(w.bytes());
  EXPECT_THROW(r.get_string(), SerdesError);
}

TEST(SerdesTest, MaxLengthBlobClaimNearBufferEndThrows) {
  // Same hostile shape through the get_bytes path: the length prefix
  // must be bounded against the remaining span before any allocation
  // happens — a 4 GiB vector reserve on a 5-byte buffer would be an
  // allocation-as-DoS on corrupt input.
  ByteWriter w;
  w.put<std::uint64_t>(0xfffffffffffffff0ULL);  // blob claims ~16 EiB
  w.put<std::uint8_t>(0xaa);                    // but only 1 byte follows
  ByteReader r(w.bytes());
  EXPECT_THROW(r.get_bytes(), SerdesError);
  // The prefix itself was consumed; the bounds check fired before the
  // payload span (and before any allocation).
  EXPECT_EQ(r.remaining(), 1u);
}

TEST(SerdesTest, ReadsExactlyToTheBoundary) {
  ByteWriter w;
  w.put<std::uint64_t>(7);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get<std::uint64_t>(), 7u);
  // One past the end must throw, not read.
  EXPECT_THROW((void)r.get<std::uint8_t>(), SerdesError);
  EXPECT_TRUE(r.exhausted());
}

TEST(SerdesTest, FailedReadDoesNotAdvance) {
  ByteWriter w;
  w.put<std::uint16_t>(0xabcd);
  ByteReader r(w.bytes());
  EXPECT_THROW((void)r.get<std::uint64_t>(), SerdesError);
  // The reader is still positioned at the start; the u16 read works.
  EXPECT_EQ(r.get<std::uint16_t>(), 0xabcd);
}

TEST(SerdesTest, TrivialStructRoundTripsThroughMemcpy) {
  struct Pod {
    std::uint32_t a;
    std::uint16_t b;
  };
  ByteWriter w;
  w.put(Pod{0x01020304u, 0x0506});
  ByteReader r(w.bytes());
  const auto pod = r.get<Pod>();
  EXPECT_EQ(pod.a, 0x01020304u);
  EXPECT_EQ(pod.b, 0x0506);
}

TEST(SerdesTest, UnalignedReadsAreSafe) {
  // A leading byte shifts every later field off its natural alignment;
  // memcpy-based reads must not care (UBSan would flag a cast-deref).
  ByteWriter w;
  w.put<std::uint8_t>(1);
  w.put<std::uint64_t>(0x1122334455667788ULL);
  w.put<double>(2.5);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get<std::uint8_t>(), 1);
  EXPECT_EQ(r.get<std::uint64_t>(), 0x1122334455667788ULL);
  EXPECT_DOUBLE_EQ(r.get<double>(), 2.5);
}

}  // namespace
}  // namespace faultyrank
