#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace faultyrank {
namespace {

TEST(ThreadPoolTest, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t begin, std::size_t end, std::size_t) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t, std::size_t) {
    called = true;
  });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForFewerItemsThanThreads) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(3, [&](std::size_t begin, std::size_t end, std::size_t) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ChunkIndicesAreDistinct) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> chunk_used(4);
  pool.parallel_for(4000,
                    [&](std::size_t, std::size_t, std::size_t chunk) {
                      chunk_used[chunk].fetch_add(1);
                    });
  int total = 0;
  for (auto& c : chunk_used) total += c.load();
  EXPECT_EQ(total, 4);
  for (auto& c : chunk_used) EXPECT_LE(c.load(), 1);
}

TEST(ThreadPoolTest, WaitIdleWithNoWorkReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  for (int batch = 0; batch < 10; ++batch) {
    pool.parallel_for(100, [&](std::size_t begin, std::size_t end,
                               std::size_t) {
      long local = 0;
      for (std::size_t i = begin; i < end; ++i) {
        local += static_cast<long>(i);
      }
      sum.fetch_add(local);
    });
  }
  EXPECT_EQ(sum.load(), 10L * (99L * 100L / 2));
}

TEST(ParallelForRangesTest, CoversEveryIndexWithGivenBoundaries) {
  ThreadPool pool(3);
  const std::vector<std::size_t> bounds = {0, 7, 7, 64, 100};
  std::vector<int> hits(100, 0);
  std::vector<std::size_t> chunk_of(100, 99);
  pool.parallel_for_ranges(bounds, [&](std::size_t begin, std::size_t end,
                                       std::size_t chunk) {
    for (std::size_t i = begin; i < end; ++i) {
      ++hits[i];
      chunk_of[i] = chunk;
    }
  });
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(hits[i], 1) << i;
  }
  // Chunk indices follow the boundary list (empty range 7..7 skipped).
  EXPECT_EQ(chunk_of[0], 0u);
  EXPECT_EQ(chunk_of[7], 2u);
  EXPECT_EQ(chunk_of[64], 3u);
}

TEST(ParallelForRangesTest, DegenerateBoundariesAreNoops) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for_ranges({}, [&](std::size_t, std::size_t, std::size_t) {
    ran = true;
  });
  const std::vector<std::size_t> single = {5};
  pool.parallel_for_ranges(single,
                           [&](std::size_t, std::size_t, std::size_t) {
                             ran = true;
                           });
  EXPECT_FALSE(ran);
}

// Sticky ranges: same coverage contract as the unpinned path. Affinity
// itself is a placement hint (waiters may steal), so these tests pin
// down semantics — coverage, nesting, exceptions — not thread identity.
TEST(ParallelForRangesTest, StickyCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  const std::vector<std::size_t> bounds = {0, 7, 7, 64, 100, 128};
  std::vector<std::atomic<int>> hits(128);
  std::vector<std::size_t> chunk_of(128, 99);
  for (int round = 0; round < 4; ++round) {
    pool.parallel_for_ranges(
        bounds,
        [&](std::size_t begin, std::size_t end, std::size_t chunk) {
          for (std::size_t i = begin; i < end; ++i) {
            hits[i].fetch_add(1);
            chunk_of[i] = chunk;
          }
        },
        /*sticky=*/true);
  }
  for (std::size_t i = 0; i < 128; ++i) {
    ASSERT_EQ(hits[i].load(), 4) << "index " << i;
  }
  EXPECT_EQ(chunk_of[0], 0u);
  EXPECT_EQ(chunk_of[7], 2u);
  EXPECT_EQ(chunk_of[100], 4u);
}

TEST(ParallelForRangesTest, StickyWithMoreRangesThanWorkers) {
  ThreadPool pool(2);
  std::vector<std::size_t> bounds;
  for (std::size_t i = 0; i <= 9; ++i) bounds.push_back(i * 10);
  std::vector<std::atomic<int>> hits(90);
  pool.parallel_for_ranges(
      bounds,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
      },
      /*sticky=*/true);
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ParallelForRangesTest, StickyNestedInsideWorkerDoesNotDeadlock) {
  // A worker running a sticky range forks another sticky batch, some of
  // whose ranges are pinned to the worker itself — the group-waiter
  // steal path must run them on the waiting thread.
  ThreadPool pool(2);
  const std::vector<std::size_t> outer = {0, 1, 2};
  std::atomic<int> inner_hits{0};
  pool.parallel_for_ranges(
      outer,
      [&](std::size_t, std::size_t, std::size_t) {
        const std::vector<std::size_t> inner = {0, 5, 10, 15, 20};
        pool.parallel_for_ranges(
            inner,
            [&](std::size_t begin, std::size_t end, std::size_t) {
              inner_hits.fetch_add(static_cast<int>(end - begin));
            },
            /*sticky=*/true);
      },
      /*sticky=*/true);
  EXPECT_EQ(inner_hits.load(), 40);
}

TEST(ParallelForRangesTest, StickyPropagatesExceptions) {
  ThreadPool pool(2);
  const std::vector<std::size_t> bounds = {0, 10, 20, 30};
  EXPECT_THROW(
      pool.parallel_for_ranges(
          bounds,
          [&](std::size_t begin, std::size_t, std::size_t) {
            if (begin == 10) throw std::runtime_error("boom");
          },
          /*sticky=*/true),
      std::runtime_error);
}

TEST(ThreadPoolTest, SubmitPinnedAfterShutdownThrows) {
  ThreadPool pool(2);
  pool.shutdown();
  const std::vector<std::size_t> bounds = {0, 10};
  EXPECT_THROW(pool.parallel_for_ranges(
                   bounds, [](std::size_t, std::size_t, std::size_t) {},
                   /*sticky=*/true),
               std::runtime_error);
}

TEST(PartitionByWeightTest, UniformWeightsSplitEvenly) {
  // prefix of 8 vertices, 1 unit each.
  const std::vector<std::uint64_t> prefix = {0, 1, 2, 3, 4, 5, 6, 7, 8};
  const auto bounds = partition_by_weight(prefix, 4);
  EXPECT_EQ(bounds, (std::vector<std::size_t>{0, 2, 4, 6, 8}));
}

// Star graph: one hub of degree d followed by d spokes of degree 1.
// Total weight 2d over 4 chunks → mean d/2; the indivisible hub chunk
// carries exactly d = 2× the mean, and no chunk may exceed that.
TEST(PartitionByWeightTest, StarGraphChunksStayWithinTwiceMeanEdgeLoad) {
  constexpr std::uint64_t d = 1000;
  std::vector<std::uint64_t> prefix;
  prefix.push_back(0);
  prefix.push_back(d);  // hub
  for (std::uint64_t v = 0; v < d; ++v) prefix.push_back(d + v + 1);

  constexpr std::size_t chunks = 4;
  const auto bounds = partition_by_weight(prefix, chunks);
  ASSERT_GE(bounds.size(), 2u);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), prefix.size() - 1);

  const double mean =
      static_cast<double>(prefix.back()) / static_cast<double>(chunks);
  for (std::size_t c = 0; c + 1 < bounds.size(); ++c) {
    const auto load = prefix[bounds[c + 1]] - prefix[bounds[c]];
    EXPECT_LE(static_cast<double>(load), 2.0 * mean)
        << "chunk " << c << " [" << bounds[c] << ", " << bounds[c + 1] << ")";
  }
  // A vertex-count split would give the first chunk (hub + ~250 spokes)
  // ~62% of all edges; the weighted split must do strictly better.
  const auto first_load = prefix[bounds[1]] - prefix[bounds[0]];
  EXPECT_LT(first_load, d + d / 4);
}

TEST(PartitionByWeightTest, BoundariesRespectAlignment) {
  // 10000 vertices, skewed: vertex 0 owns half the edges.
  std::vector<std::uint64_t> prefix(10001);
  prefix[0] = 0;
  prefix[1] = 10000;
  for (std::size_t v = 2; v <= 10000; ++v) prefix[v] = prefix[v - 1] + 2;
  const std::size_t align = 1024;
  const auto bounds = partition_by_weight(prefix, 8, align);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), 10000u);
  for (std::size_t c = 1; c + 1 < bounds.size(); ++c) {
    EXPECT_EQ(bounds[c] % align, 0u) << "boundary " << c;
  }
  // Strictly increasing — duplicates must have been dropped.
  for (std::size_t c = 0; c + 1 < bounds.size(); ++c) {
    EXPECT_LT(bounds[c], bounds[c + 1]);
  }
}

TEST(PartitionByWeightTest, EdgeCases) {
  EXPECT_EQ(partition_by_weight({}, 4), (std::vector<std::size_t>{0}));
  const std::vector<std::uint64_t> empty_graph = {0, 0, 0, 0};
  EXPECT_EQ(partition_by_weight(empty_graph, 4),
            (std::vector<std::size_t>{0, 3}));
  const std::vector<std::uint64_t> one_chunk = {0, 5, 9};
  EXPECT_EQ(partition_by_weight(one_chunk, 1),
            (std::vector<std::size_t>{0, 2}));
}

}  // namespace
}  // namespace faultyrank
