#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace faultyrank {
namespace {

TEST(ThreadPoolTest, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t begin, std::size_t end, std::size_t) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t, std::size_t) {
    called = true;
  });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForFewerItemsThanThreads) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(3, [&](std::size_t begin, std::size_t end, std::size_t) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ChunkIndicesAreDistinct) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> chunk_used(4);
  pool.parallel_for(4000,
                    [&](std::size_t, std::size_t, std::size_t chunk) {
                      chunk_used[chunk].fetch_add(1);
                    });
  int total = 0;
  for (auto& c : chunk_used) total += c.load();
  EXPECT_EQ(total, 4);
  for (auto& c : chunk_used) EXPECT_LE(c.load(), 1);
}

TEST(ThreadPoolTest, WaitIdleWithNoWorkReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  for (int batch = 0; batch < 10; ++batch) {
    pool.parallel_for(100, [&](std::size_t begin, std::size_t end,
                               std::size_t) {
      long local = 0;
      for (std::size_t i = begin; i < end; ++i) {
        local += static_cast<long>(i);
      }
      sum.fetch_add(local);
    });
  }
  EXPECT_EQ(sum.load(), 10L * (99L * 100L / 2));
}

}  // namespace
}  // namespace faultyrank
