#include "common/sim_clock.h"

#include <gtest/gtest.h>

namespace faultyrank {
namespace {

TEST(SimClockTest, AccumulatesAndResets) {
  SimClock clock;
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
  clock.advance(1.5);
  clock.advance(0.25);
  EXPECT_DOUBLE_EQ(clock.now(), 1.75);
  clock.reset();
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
}

TEST(DiskModelTest, SequentialReadIsSeekPlusStreaming) {
  DiskModel disk{.seek_seconds = 0.01, .bandwidth_bytes_per_s = 100e6};
  EXPECT_DOUBLE_EQ(disk.sequential_read(0), 0.01);
  EXPECT_DOUBLE_EQ(disk.sequential_read(100'000'000), 0.01 + 1.0);
}

TEST(DiskModelTest, RandomReadsChargePerOperation) {
  DiskModel disk{.seek_seconds = 0.001, .bandwidth_bytes_per_s = 1e9};
  EXPECT_DOUBLE_EQ(disk.random_reads(0, 4096), 0.0);
  EXPECT_NEAR(disk.random_reads(1000, 0), 1.0, 1e-12);
  EXPECT_GT(disk.random_reads(1000, 1 << 20), 1.0);
}

TEST(DiskModelTest, SsdIsMuchFasterThanHddAtSeeking) {
  EXPECT_LT(DiskModel::ssd().seek_seconds * 50, DiskModel::hdd().seek_seconds);
}

TEST(NetModelTest, TransferIsLatencyPlusBandwidth) {
  NetModel net{.latency_seconds = 1e-4, .bandwidth_bytes_per_s = 1e9};
  EXPECT_DOUBLE_EQ(net.transfer(0), 1e-4);
  EXPECT_DOUBLE_EQ(net.transfer(1'000'000'000), 1e-4 + 1.0);
}

TEST(RpcModelTest, CallsScaleLinearly) {
  RpcModel rpc{.round_trip_seconds = 1e-3};
  EXPECT_DOUBLE_EQ(rpc.calls(0), 0.0);
  EXPECT_DOUBLE_EQ(rpc.calls(2000), 2.0);
}

}  // namespace
}  // namespace faultyrank
