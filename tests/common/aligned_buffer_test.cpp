#include "common/aligned_buffer.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>

#include "common/thread_pool.h"

namespace faultyrank {
namespace {

TEST(AlignedBufferTest, AlignmentAndSize) {
  AlignedBuffer<double> buf(1000);
  EXPECT_EQ(buf.size(), 1000u);
  EXPECT_EQ(buf.bytes(), 8000u);
  EXPECT_FALSE(buf.empty());
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) %
                AlignedBuffer<double>::kAlignment,
            0u);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<double>(i);
  }
  EXPECT_EQ(buf.span()[999], 999.0);
}

TEST(AlignedBufferTest, EmptyAndMove) {
  AlignedBuffer<float> empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.data(), nullptr);

  AlignedBuffer<float> a(64);
  a[0] = 42.0f;
  const float* p = a.data();
  AlignedBuffer<float> b(std::move(a));
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(b[0], 42.0f);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): moved-from is empty

  AlignedBuffer<float> c(8);
  c = std::move(b);
  EXPECT_EQ(c.data(), p);
  EXPECT_EQ(c.size(), 64u);
}

TEST(AlignedBufferTest, FirstTouchFillViaStickyRanges) {
  // The intended usage pattern: allocate untouched, fill each range on
  // the worker that owns it, read back everywhere.
  ThreadPool pool(3);
  AlignedBuffer<double> buf(3000);
  const std::vector<std::size_t> bounds = {0, 1000, 2000, 3000};
  pool.parallel_for_ranges(
      bounds,
      [&](std::size_t begin, std::size_t end, std::size_t chunk) {
        for (std::size_t i = begin; i < end; ++i) {
          buf[i] = static_cast<double>(chunk);
        }
      },
      /*sticky=*/true);
  EXPECT_EQ(buf[0], 0.0);
  EXPECT_EQ(buf[1500], 1.0);
  EXPECT_EQ(buf[2999], 2.0);
}

}  // namespace
}  // namespace faultyrank
