#include "common/random.h"

#include <gtest/gtest.h>

#include <vector>

namespace faultyrank {
namespace {

TEST(RngTest, DeterministicForFixedSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, BelowStaysInBounds) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(RngTest, BelowOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(RngTest, UniformInHalfOpenUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(17);
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent() == child()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, SplitmixAdvancesState) {
  std::uint64_t state = 0;
  const auto a = splitmix64(state);
  const auto b = splitmix64(state);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace faultyrank
