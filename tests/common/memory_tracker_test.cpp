#include "common/memory_tracker.h"

#include <gtest/gtest.h>

#include <string>

#include "common/thread_pool.h"

namespace faultyrank {
namespace {

TEST(MemoryTrackerTest, RssIsPositiveOnLinux) {
  EXPECT_GT(rss_bytes(), 0u);
  EXPECT_GE(peak_rss_bytes(), rss_bytes() / 2);  // peak >= a sane floor
}

TEST(MemoryTrackerTest, FormatBytesPicksUnits) {
  char buf[32];
  EXPECT_EQ(std::string(format_bytes(512, buf, sizeof(buf))), "512 B");
  EXPECT_EQ(std::string(format_bytes(2048, buf, sizeof(buf))), "2.00 KB");
  EXPECT_EQ(std::string(format_bytes(5 * (1ull << 20), buf, sizeof(buf))),
            "5.00 MB");
  EXPECT_EQ(std::string(format_bytes(3 * (1ull << 30), buf, sizeof(buf))),
            "3.00 GB");
}

TEST(MemoryTrackerTest, PhaseRegistryKeepsArrivalOrder) {
  clear_memory_phases();
  record_memory_phase("scan");
  record_memory_phase("aggregate");
  record_memory_phase("rank");
  const auto phases = memory_phases();
  ASSERT_EQ(phases.size(), 3u);
  EXPECT_EQ(phases[0].name, "scan");
  EXPECT_EQ(phases[1].name, "aggregate");
  EXPECT_EQ(phases[2].name, "rank");
  for (const auto& phase : phases) {
    EXPECT_GT(phase.rss, 0u);
    EXPECT_GE(phase.peak, phase.rss / 2);
  }
  clear_memory_phases();
  EXPECT_TRUE(memory_phases().empty());
}

TEST(MemoryTrackerTest, PhaseRegistryIsThreadSafe) {
  clear_memory_phases();
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 50;
  ThreadPool pool(kThreads);
  TaskGroup group(pool);
  for (std::size_t t = 0; t < kThreads; ++t) {
    group.submit([t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        record_memory_phase("t" + std::to_string(t));
      }
    });
  }
  group.wait();
  EXPECT_EQ(memory_phases().size(), kThreads * kPerThread);
  clear_memory_phases();
}

}  // namespace
}  // namespace faultyrank
