#include "common/memory_tracker.h"

#include <gtest/gtest.h>

#include <string>

namespace faultyrank {
namespace {

TEST(MemoryTrackerTest, RssIsPositiveOnLinux) {
  EXPECT_GT(rss_bytes(), 0u);
  EXPECT_GE(peak_rss_bytes(), rss_bytes() / 2);  // peak >= a sane floor
}

TEST(MemoryTrackerTest, FormatBytesPicksUnits) {
  char buf[32];
  EXPECT_EQ(std::string(format_bytes(512, buf, sizeof(buf))), "512 B");
  EXPECT_EQ(std::string(format_bytes(2048, buf, sizeof(buf))), "2.00 KB");
  EXPECT_EQ(std::string(format_bytes(5 * (1ull << 20), buf, sizeof(buf))),
            "5.00 MB");
  EXPECT_EQ(std::string(format_bytes(3 * (1ull << 30), buf, sizeof(buf))),
            "3.00 GB");
}

}  // namespace
}  // namespace faultyrank
