#include "aggregator/aggregator.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace faultyrank {
namespace {

TEST(AggregatorTest, MergesClusterScanIntoUnifiedGraph) {
  LustreCluster cluster = testing::make_populated_cluster(100, 11);
  const ClusterScan scan = scan_cluster(cluster);
  const AggregationResult agg = aggregate(scan.results);

  std::uint64_t vertices = 0;
  std::uint64_t edges = 0;
  for (const auto& result : scan.results) {
    vertices += result.graph.vertices.size();
    edges += result.graph.edges.size();
  }
  // Healthy cluster: every scanned vertex is unique, every edge kept.
  EXPECT_EQ(agg.graph.vertex_count(), vertices);
  EXPECT_EQ(agg.graph.edge_count(), edges);
}

TEST(AggregatorTest, ChargesTransferOnlyForRemotePartialGraphs) {
  LustreCluster cluster = testing::make_populated_cluster(100, 12);
  const ClusterScan scan = scan_cluster(cluster);
  const AggregationResult agg = aggregate(scan.results);

  std::uint64_t remote_bytes = 0;
  for (const auto& result : scan.results) {
    if (!result.local_to_mds) remote_bytes += result.graph.wire_bytes();
  }
  EXPECT_EQ(agg.transferred_bytes, remote_bytes);
  EXPECT_GT(agg.transferred_bytes, 0u);
  EXPECT_GT(agg.sim_transfer_seconds, 0.0);
}

TEST(AggregatorTest, SlowerNetworkCostsMoreVirtualTime) {
  LustreCluster cluster = testing::make_populated_cluster(100, 13);
  const ClusterScan scan = scan_cluster(cluster);
  const NetModel fast{.latency_seconds = 1e-5, .bandwidth_bytes_per_s = 10e9};
  const NetModel slow{.latency_seconds = 1e-3, .bandwidth_bytes_per_s = 100e6};
  EXPECT_GT(aggregate(scan.results, slow).sim_transfer_seconds,
            aggregate(scan.results, fast).sim_transfer_seconds);
}

TEST(AggregatorTest, RemapAssignsDenseGids) {
  LustreCluster cluster = testing::make_populated_cluster(80, 14);
  const ClusterScan scan = scan_cluster(cluster);
  const AggregationResult agg = aggregate(scan.results);
  // Dense: every gid < vertex_count maps back to a unique FID.
  for (Gid v = 0; v < agg.graph.vertex_count(); ++v) {
    EXPECT_EQ(agg.graph.vertices().lookup(agg.graph.vertices().fid_of(v)), v);
  }
}

TEST(AggregatorTest, WireRoundTripPreservesGraphExactly) {
  // The aggregator decodes what the network delivered; a corrupted
  // partial graph must surface as an error, not silent data loss.
  LustreCluster cluster = testing::make_populated_cluster(50, 15);
  const ClusterScan scan = scan_cluster(cluster);
  for (const auto& result : scan.results) {
    const PartialGraph decoded =
        PartialGraph::deserialize(result.graph.serialize());
    EXPECT_EQ(decoded.vertices.size(), result.graph.vertices.size());
    EXPECT_EQ(decoded.edges.size(), result.graph.edges.size());
  }
}

TEST(AggregatorTest, EmptyScanYieldsEmptyGraph) {
  const AggregationResult agg = aggregate({});
  EXPECT_EQ(agg.graph.vertex_count(), 0u);
  EXPECT_EQ(agg.transferred_bytes, 0u);
}

}  // namespace
}  // namespace faultyrank
