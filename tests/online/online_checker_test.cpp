#include "online/online_checker.h"

#include <gtest/gtest.h>

#include "aggregator/aggregator.h"
#include "checker/repair_executor.h"
#include "faults/injector.h"
#include "scanner/scanner.h"
#include "testing/fixtures.h"

namespace faultyrank {
namespace {

TEST(OnlineCheckerTest, BootstrapMatchesOfflineScan) {
  LustreCluster cluster = testing::make_populated_cluster(150, 61);
  ChangeLog log;
  cluster.attach_changelog(&log);

  OnlineChecker checker(cluster);
  checker.bootstrap();
  const UnifiedGraph online = checker.graph().freeze();

  const AggregationResult offline = aggregate(scan_cluster(cluster).results);
  EXPECT_EQ(online.vertex_count(), offline.graph.vertex_count());
  EXPECT_EQ(online.edge_count(), offline.graph.edge_count());
  EXPECT_EQ(online.unpaired_edges().size(),
            offline.graph.unpaired_edges().size());
}

TEST(OnlineCheckerTest, CatchUpTracksNamespaceChurn) {
  LustreCluster cluster = testing::make_populated_cluster(100, 62);
  ChangeLog log;
  cluster.attach_changelog(&log);
  OnlineChecker checker(cluster);
  checker.bootstrap();

  const Fid dir = cluster.mkdir(cluster.root(), "new_dir");
  const Fid file = cluster.create_file(dir, "new_file", 3 * 64 * 1024);
  EXPECT_EQ(checker.catch_up(), 2u);
  EXPECT_TRUE(checker.graph().contains(dir));
  EXPECT_TRUE(checker.graph().contains(file));

  // The online graph must agree with a fresh offline scan, healthily.
  const UnifiedGraph snapshot = checker.graph().freeze();
  const AggregationResult offline = aggregate(scan_cluster(cluster).results);
  EXPECT_EQ(snapshot.vertex_count(), offline.graph.vertex_count());
  EXPECT_EQ(snapshot.edge_count(), offline.graph.edge_count());
  EXPECT_TRUE(snapshot.unpaired_edges().empty());
}

TEST(OnlineCheckerTest, CatchUpTracksUnlink) {
  LustreCluster cluster(4, StripePolicy{64 * 1024, -1});
  ChangeLog log;
  cluster.attach_changelog(&log);
  const Fid file = cluster.create_file(cluster.root(), "gone", 2 * 64 * 1024);
  OnlineChecker checker(cluster);
  checker.bootstrap();

  cluster.unlink(cluster.root(), "gone");
  EXPECT_EQ(checker.catch_up(), 1u);
  EXPECT_FALSE(checker.graph().contains(file));
  EXPECT_TRUE(checker.check().report.consistent());
}

TEST(OnlineCheckerTest, CatchUpIsIdempotent) {
  LustreCluster cluster = testing::make_populated_cluster(50, 63);
  ChangeLog log;
  cluster.attach_changelog(&log);
  OnlineChecker checker(cluster);
  checker.bootstrap();
  cluster.mkdir(cluster.root(), "x");
  EXPECT_EQ(checker.catch_up(), 1u);
  EXPECT_EQ(checker.catch_up(), 0u);
}

TEST(OnlineCheckerTest, HealthyClusterChecksConsistentUnderChurn) {
  LustreCluster cluster = testing::make_populated_cluster(100, 64);
  ChangeLog log;
  cluster.attach_changelog(&log);
  OnlineChecker checker(cluster);
  checker.bootstrap();

  for (int round = 0; round < 5; ++round) {
    const Fid dir =
        cluster.mkdir(cluster.root(), "round" + std::to_string(round));
    for (int i = 0; i < 10; ++i) {
      cluster.create_file(dir, "f" + std::to_string(i), 100 * 1024);
    }
    checker.catch_up();
    const OnlineCheckResult result = checker.check();
    EXPECT_TRUE(result.report.consistent()) << "round " << round;
  }
}

TEST(OnlineCheckerTest, ScrubSurfacesRawCorruption) {
  LustreCluster cluster = testing::make_populated_cluster(100, 65);
  ChangeLog log;
  cluster.attach_changelog(&log);
  OnlineChecker checker(cluster);
  checker.bootstrap();
  EXPECT_TRUE(checker.check().report.consistent());

  // Raw corruption: invisible to the changelog…
  FaultInjector injector(cluster, 6565);
  const GroundTruth truth = injector.inject(Scenario::kMismatchTargetProperty);
  checker.catch_up();
  EXPECT_TRUE(checker.check().report.consistent());  // …until scrubbed.

  checker.full_scrub();
  const OnlineCheckResult result = checker.check();
  EXPECT_FALSE(result.report.consistent());
  const EvalOutcome outcome = evaluate_report(result.report, truth);
  EXPECT_TRUE(outcome.detected);
  EXPECT_TRUE(outcome.root_cause_identified);
}

TEST(OnlineCheckerTest, ScrubHandlesIdCorruption) {
  LustreCluster cluster = testing::make_populated_cluster(100, 66);
  ChangeLog log;
  cluster.attach_changelog(&log);
  OnlineChecker checker(cluster);
  checker.bootstrap();

  FaultInjector injector(cluster, 6666);
  const GroundTruth truth = injector.inject(Scenario::kDanglingTargetId);
  checker.full_scrub();

  // The stale identity is retired and the corrupt one stands alone.
  EXPECT_FALSE(checker.graph().contains(truth.victim));
  EXPECT_TRUE(checker.graph().contains(truth.current));
  const OnlineCheckResult result = checker.check();
  const EvalOutcome outcome = evaluate_report(result.report, truth);
  EXPECT_TRUE(outcome.root_cause_identified);
}

TEST(OnlineCheckerTest, ScrubStepRespectsBatchBudget) {
  LustreCluster cluster = testing::make_populated_cluster(200, 67);
  ChangeLog log;
  cluster.attach_changelog(&log);
  OnlineCheckerConfig config;
  config.scrub_batch = 32;
  OnlineChecker checker(cluster, config);
  checker.bootstrap();
  // Each step refreshes at most the batch budget of inodes.
  EXPECT_LE(checker.scrub_step(), 32u);
}

TEST(OnlineCheckerTest, ScrubEventuallyCoversEverything) {
  LustreCluster cluster = testing::make_populated_cluster(60, 68);
  ChangeLog log;
  cluster.attach_changelog(&log);
  OnlineCheckerConfig config;
  config.scrub_batch = 16;
  OnlineChecker checker(cluster, config);
  checker.bootstrap();

  FaultInjector injector(cluster, 6868);
  const GroundTruth truth =
      injector.inject(Scenario::kMismatchTargetProperty);

  // Enough steps to sweep all servers at least once.
  std::uint64_t total_slots = cluster.mdt().image.inode_slots();
  for (const auto& ost : cluster.osts()) {
    total_slots += ost.image.inode_slots();
  }
  const std::size_t steps =
      static_cast<std::size_t>(total_slots / config.scrub_batch) + 10;
  for (std::size_t i = 0; i < steps; ++i) checker.scrub_step();

  const EvalOutcome outcome =
      evaluate_report(checker.check().report, truth);
  EXPECT_TRUE(outcome.detected);
}

TEST(OnlineCheckerTest, GrowthAfterBootstrapIsScrubbable) {
  // Inodes allocated after bootstrap extend the tables; scrub must
  // grow its shadow state rather than walk off the end.
  LustreCluster cluster = testing::make_populated_cluster(30, 69);
  ChangeLog log;
  cluster.attach_changelog(&log);
  OnlineChecker checker(cluster);
  checker.bootstrap();
  for (int i = 0; i < 50; ++i) {
    cluster.create_file(cluster.root(), "late" + std::to_string(i),
                        200 * 1024);
  }
  checker.catch_up();
  checker.full_scrub();
  EXPECT_TRUE(checker.check().report.consistent());
}


TEST(OnlineCheckerTest, WarmStartConvergesFasterAfterSmallChurn) {
  LustreCluster cluster = testing::make_populated_cluster(300, 70);
  ChangeLog log;
  cluster.attach_changelog(&log);

  OnlineCheckerConfig warm_config;
  warm_config.rank.epsilon = 1e-3;  // tight enough that iterations differ
  OnlineChecker warm(cluster, warm_config);
  warm.bootstrap();
  const std::size_t cold_iterations = warm.check().ranks.iterations;

  cluster.create_file(cluster.root(), "one_more", 100 * 1024);
  warm.catch_up();
  const std::size_t warm_iterations = warm.check().ranks.iterations;
  EXPECT_LT(warm_iterations, cold_iterations);
}

TEST(OnlineCheckerTest, WarmStartDoesNotChangeFindings) {
  LustreCluster c1 = testing::make_populated_cluster(150, 71);
  LustreCluster c2 = testing::make_populated_cluster(150, 71);
  ChangeLog l1, l2;
  c1.attach_changelog(&l1);
  c2.attach_changelog(&l2);

  OnlineCheckerConfig warm_config;
  OnlineCheckerConfig cold_config;
  cold_config.warm_start = false;
  OnlineChecker warm(c1, warm_config);
  OnlineChecker cold(c2, cold_config);
  warm.bootstrap();
  cold.bootstrap();
  (void)warm.check();  // prime the warm-start cache
  (void)cold.check();

  FaultInjector i1(c1, 717);
  FaultInjector i2(c2, 717);
  i1.inject(Scenario::kMismatchTargetProperty);
  i2.inject(Scenario::kMismatchTargetProperty);
  warm.full_scrub();
  cold.full_scrub();

  const OnlineCheckResult a = warm.check();
  const OnlineCheckResult b = cold.check();
  ASSERT_EQ(a.report.findings.size(), b.report.findings.size());
  for (std::size_t i = 0; i < a.report.findings.size(); ++i) {
    EXPECT_EQ(a.report.findings[i].convicted_object,
              b.report.findings[i].convicted_object);
    EXPECT_EQ(a.report.findings[i].repair.kind,
              b.report.findings[i].repair.kind);
  }
}

TEST(OnlineCheckerTest, PlanReusedAcrossUnchangedChecks) {
  LustreCluster cluster = testing::make_populated_cluster(120, 72);
  ChangeLog log;
  cluster.attach_changelog(&log);
  OnlineCheckerConfig config;
  config.warm_start = false;  // identical inputs → identical ranks
  OnlineChecker checker(cluster, config);
  checker.bootstrap();

  // First check builds the snapshot + plan; the next two reuse them.
  const OnlineCheckResult first = checker.check();
  EXPECT_FALSE(first.plan_reused);
  const OnlineCheckResult second = checker.check();
  EXPECT_TRUE(second.plan_reused);
  const OnlineCheckResult third = checker.check();
  EXPECT_TRUE(third.plan_reused);
  EXPECT_EQ(first.ranks.id_rank, second.ranks.id_rank);
  EXPECT_EQ(second.ranks.id_rank, third.ranks.id_rank);

  // Any real mutation invalidates the cache; the rebuilt plan sticks
  // again afterwards.
  cluster.create_file(cluster.root(), "newcomer", 64 * 1024);
  checker.catch_up();
  const OnlineCheckResult after_churn = checker.check();
  EXPECT_FALSE(after_churn.plan_reused);
  EXPECT_GT(after_churn.vertices, first.vertices);
  EXPECT_TRUE(checker.check().plan_reused);
}

TEST(OnlineCheckerTest, NoOpScrubKeepsPlanCached) {
  LustreCluster cluster = testing::make_populated_cluster(80, 73);
  ChangeLog log;
  cluster.attach_changelog(&log);
  OnlineChecker checker(cluster);
  checker.bootstrap();
  (void)checker.check();

  // Scrubbing a healthy, unchanged filesystem reproduces every object
  // verbatim — the generation must not move, so the plan survives.
  checker.full_scrub();
  EXPECT_TRUE(checker.check().plan_reused);

  checker.bootstrap();  // a re-bootstrap always drops the cache
  EXPECT_FALSE(checker.check().plan_reused);
}

TEST(OnlineCheckerTest, PlanNotReusedOnceScrubSeesCorruption) {
  // Regression for the plan-reuse × scrub interleaving: a corrupted EA
  // is invisible to the changelog, so a catch_up-only check may validly
  // reuse its cached plan and miss it — but the check after the scrub
  // reaches the corrupt inode MUST re-freeze and convict. A cached
  // plan surviving a graph-changing scrub would report "consistent"
  // forever.
  LustreCluster cluster = testing::make_populated_cluster(120, 75);
  ChangeLog log;
  cluster.attach_changelog(&log);
  OnlineChecker checker(cluster);
  checker.bootstrap();
  (void)checker.check();  // prime the snapshot + plan cache

  FaultInjector injector(cluster, 7575);
  const GroundTruth truth = injector.inject(Scenario::kMismatchTargetProperty);

  EXPECT_EQ(checker.catch_up(), 0u);  // raw corruption, no records
  const OnlineCheckResult before_scrub = checker.check();
  EXPECT_TRUE(before_scrub.plan_reused);
  EXPECT_TRUE(before_scrub.report.consistent());

  checker.full_scrub();
  const OnlineCheckResult after_scrub = checker.check();
  EXPECT_FALSE(after_scrub.plan_reused);
  EXPECT_FALSE(after_scrub.report.consistent());
  EXPECT_TRUE(evaluate_report(after_scrub.report, truth).detected);
}

TEST(OnlineCheckerTest, CatchUpToleratesRepairRestoredIdentity) {
  // Regression for the repair × changelog interleaving: scrubbing a
  // corrupted directory id retires its vertex; the repair then restores
  // the id through the raw image (bypassing the changelog); traffic
  // creating under the restored directory logs records whose parent
  // the graph no longer knows. catch_up must re-materialize the
  // endpoint, not throw.
  LustreCluster cluster = testing::make_populated_cluster(120, 76);
  ChangeLog log;
  cluster.attach_changelog(&log);
  OnlineChecker checker(cluster);
  checker.bootstrap();

  FaultInjector injector(cluster, 7676);
  const GroundTruth truth = injector.inject(Scenario::kUnreferencedTargetId);
  checker.full_scrub();
  EXPECT_FALSE(checker.graph().contains(truth.victim));

  const OnlineCheckResult detected = checker.check();
  ASSERT_FALSE(detected.report.consistent());
  RepairExecutor executor(cluster);
  executor.apply_all(detected.report.repair_plan());

  // The directory answers to its original id again; new children log
  // changelog records referencing a fid the graph retired.
  const Fid child = cluster.create_file(truth.victim, "post_repair", 64 * 1024);
  EXPECT_NO_THROW(checker.catch_up());
  EXPECT_TRUE(checker.graph().contains(child));

  checker.full_scrub();
  EXPECT_TRUE(checker.check().report.consistent());
}

TEST(OnlineCheckerTest, DuplicateIdDetectionMatchesOffline) {
  // Regression for the duplicate-id collapse: two physical inodes
  // sharing one fid must appear in the frozen snapshot with the union
  // of both edge sets AND a scan count > 1, exactly as the offline
  // merge of per-inode partials produces — otherwise the Double
  // Reference conviction (and its id-overwrite repair) is lost.
  LustreCluster cluster = testing::make_populated_cluster(150, 77);
  ChangeLog log;
  cluster.attach_changelog(&log);
  FaultInjector injector(cluster, 7777);
  const GroundTruth truth = injector.inject(Scenario::kDoubleRefDuplicateId);

  OnlineChecker checker(cluster);
  checker.bootstrap();
  const UnifiedGraph online = checker.graph().freeze();
  const AggregationResult offline = aggregate(scan_cluster(cluster).results);
  EXPECT_EQ(online.vertex_count(), offline.graph.vertex_count());
  EXPECT_EQ(online.edge_count(), offline.graph.edge_count());
  const Gid dup = online.vertices().lookup(truth.current);
  ASSERT_NE(dup, kInvalidGid);
  EXPECT_GT(online.vertices().scan_count(dup), 1u);

  const OnlineCheckResult result = checker.check();
  const EvalOutcome outcome = evaluate_report(result.report, truth);
  EXPECT_TRUE(outcome.detected);
  EXPECT_TRUE(outcome.repair_recommended);

  // After the repair splits the twins apart, the scrub must dissolve
  // the shared claim and the graph must check clean.
  RepairExecutor executor(cluster);
  executor.apply_all(result.report.repair_plan());
  checker.full_scrub();
  EXPECT_TRUE(checker.check().report.consistent());
}

TEST(OnlineCheckerTest, PooledCheckMatchesSerialCheck) {
  LustreCluster c1 = testing::make_populated_cluster(150, 74);
  LustreCluster c2 = testing::make_populated_cluster(150, 74);

  ThreadPool pool(4);
  OnlineCheckerConfig pooled_config;
  pooled_config.pool = &pool;
  OnlineChecker pooled(c1, pooled_config);
  OnlineChecker serial(c2);
  pooled.bootstrap();
  serial.bootstrap();

  const OnlineCheckResult a = pooled.check();
  const OnlineCheckResult b = serial.check();
  EXPECT_EQ(a.ranks.id_rank, b.ranks.id_rank);
  EXPECT_EQ(a.ranks.prop_rank, b.ranks.prop_rank);
  EXPECT_EQ(a.ranks.iterations, b.ranks.iterations);
  EXPECT_EQ(a.report.findings.size(), b.report.findings.size());
}

}  // namespace
}  // namespace faultyrank
