#include "online/mutable_graph.h"

#include <gtest/gtest.h>

namespace faultyrank {
namespace {

TEST(MutableGraphTest, UpsertAndCounts) {
  MutableMetadataGraph graph;
  graph.upsert_vertex(Fid{1, 1, 0}, ObjectKind::kDirectory);
  graph.upsert_vertex(Fid{1, 2, 0}, ObjectKind::kFile);
  graph.upsert_vertex(Fid{1, 2, 0}, ObjectKind::kFile);  // idempotent
  EXPECT_EQ(graph.vertex_count(), 2u);
  EXPECT_TRUE(graph.contains(Fid{1, 1, 0}));
  EXPECT_FALSE(graph.contains(Fid{9, 9, 0}));
}

TEST(MutableGraphTest, EdgesTrackAddAndRemove) {
  MutableMetadataGraph graph;
  graph.upsert_vertex(Fid{1, 1, 0}, ObjectKind::kDirectory);
  graph.upsert_vertex(Fid{1, 2, 0}, ObjectKind::kFile);
  graph.add_edge(Fid{1, 1, 0}, Fid{1, 2, 0}, EdgeKind::kDirent);
  graph.add_edge(Fid{1, 2, 0}, Fid{1, 1, 0}, EdgeKind::kLinkEa);
  EXPECT_EQ(graph.edge_count(), 2u);
  EXPECT_TRUE(graph.remove_edge(Fid{1, 1, 0}, Fid{1, 2, 0}, EdgeKind::kDirent));
  EXPECT_EQ(graph.edge_count(), 1u);
  EXPECT_FALSE(
      graph.remove_edge(Fid{1, 1, 0}, Fid{1, 2, 0}, EdgeKind::kDirent));
}

TEST(MutableGraphTest, AddEdgeFromUnknownSourceThrows) {
  MutableMetadataGraph graph;
  EXPECT_THROW(graph.add_edge(Fid{1, 1, 0}, Fid{1, 2, 0}, EdgeKind::kDirent),
               std::invalid_argument);
}

TEST(MutableGraphTest, RemoveVertexDropsItsOutEdges) {
  MutableMetadataGraph graph;
  graph.upsert_vertex(Fid{1, 1, 0}, ObjectKind::kFile);
  graph.add_edge(Fid{1, 1, 0}, Fid{2, 1, 0}, EdgeKind::kLovEa);
  graph.add_edge(Fid{1, 1, 0}, Fid{2, 2, 0}, EdgeKind::kLovEa);
  EXPECT_TRUE(graph.remove_vertex(Fid{1, 1, 0}));
  EXPECT_EQ(graph.vertex_count(), 0u);
  EXPECT_EQ(graph.edge_count(), 0u);
  EXPECT_FALSE(graph.remove_vertex(Fid{1, 1, 0}));
}

TEST(MutableGraphTest, ReinsertAfterRemoveStartsClean) {
  MutableMetadataGraph graph;
  graph.upsert_vertex(Fid{1, 1, 0}, ObjectKind::kFile);
  graph.add_edge(Fid{1, 1, 0}, Fid{2, 1, 0}, EdgeKind::kLovEa);
  graph.remove_vertex(Fid{1, 1, 0});
  graph.upsert_vertex(Fid{1, 1, 0}, ObjectKind::kDirectory);
  EXPECT_EQ(graph.vertex_count(), 1u);
  EXPECT_EQ(graph.edge_count(), 0u);
}

TEST(MutableGraphTest, ReplaceObjectSwapsEdgeSet) {
  MutableMetadataGraph graph;
  graph.upsert_vertex(Fid{1, 1, 0}, ObjectKind::kFile);
  graph.add_edge(Fid{1, 1, 0}, Fid{2, 1, 0}, EdgeKind::kLovEa);
  graph.replace_object(Fid{1, 1, 0}, ObjectKind::kFile,
                       {{Fid{2, 2, 0}, EdgeKind::kLovEa},
                        {Fid{3, 1, 0}, EdgeKind::kLinkEa}});
  EXPECT_EQ(graph.edge_count(), 2u);
}

TEST(MutableGraphTest, FreezeProducesConsistentSnapshot) {
  MutableMetadataGraph graph;
  graph.upsert_vertex(Fid{1, 1, 0}, ObjectKind::kDirectory);
  graph.upsert_vertex(Fid{1, 2, 0}, ObjectKind::kFile);
  graph.add_edge(Fid{1, 1, 0}, Fid{1, 2, 0}, EdgeKind::kDirent);
  graph.add_edge(Fid{1, 2, 0}, Fid{1, 1, 0}, EdgeKind::kLinkEa);
  const UnifiedGraph snapshot = graph.freeze();
  EXPECT_EQ(snapshot.vertex_count(), 2u);
  EXPECT_EQ(snapshot.edge_count(), 2u);
  EXPECT_TRUE(snapshot.unpaired_edges().empty());
}

TEST(MutableGraphTest, FreezeMaterializesPhantoms) {
  MutableMetadataGraph graph;
  graph.upsert_vertex(Fid{1, 1, 0}, ObjectKind::kFile);
  graph.add_edge(Fid{1, 1, 0}, Fid{9, 9, 0}, EdgeKind::kLovEa);
  const UnifiedGraph snapshot = graph.freeze();
  EXPECT_EQ(snapshot.vertex_count(), 2u);
  const Gid phantom = snapshot.vertices().lookup(Fid{9, 9, 0});
  ASSERT_NE(phantom, kInvalidGid);
  EXPECT_FALSE(snapshot.vertices().is_scanned(phantom));
}

TEST(MutableGraphTest, TombstonesKeepFreezeOrderStable) {
  MutableMetadataGraph a;
  a.upsert_vertex(Fid{1, 1, 0}, ObjectKind::kFile);
  a.upsert_vertex(Fid{1, 2, 0}, ObjectKind::kFile);
  a.upsert_vertex(Fid{1, 3, 0}, ObjectKind::kFile);
  a.remove_vertex(Fid{1, 2, 0});
  const UnifiedGraph snapshot = a.freeze();
  ASSERT_EQ(snapshot.vertex_count(), 2u);
  EXPECT_EQ(snapshot.vertices().fid_of(0), (Fid{1, 1, 0}));
  EXPECT_EQ(snapshot.vertices().fid_of(1), (Fid{1, 3, 0}));
}

TEST(MutableGraphTest, GenerationTracksRealMutationsOnly) {
  MutableMetadataGraph graph;
  const std::uint64_t g0 = graph.generation();

  graph.upsert_vertex(Fid{1, 1, 0}, ObjectKind::kFile);
  const std::uint64_t g1 = graph.generation();
  EXPECT_GT(g1, g0);

  // No-ops leave the generation alone: idempotent upsert, removing an
  // absent edge/vertex, a scrub that reproduces the current state.
  graph.upsert_vertex(Fid{1, 1, 0}, ObjectKind::kFile);
  EXPECT_FALSE(graph.remove_edge(Fid{1, 1, 0}, Fid{9, 9, 0},
                                 EdgeKind::kDirent));
  EXPECT_FALSE(graph.remove_vertex(Fid{9, 9, 0}));
  EXPECT_EQ(graph.generation(), g1);

  graph.add_edge(Fid{1, 1, 0}, Fid{2, 1, 0}, EdgeKind::kLovEa);
  const std::uint64_t g2 = graph.generation();
  EXPECT_GT(g2, g1);

  graph.replace_object(Fid{1, 1, 0}, ObjectKind::kFile,
                       {{Fid{2, 1, 0}, EdgeKind::kLovEa}});
  EXPECT_EQ(graph.generation(), g2);  // scrub found nothing new

  graph.replace_object(Fid{1, 1, 0}, ObjectKind::kFile,
                       {{Fid{2, 2, 0}, EdgeKind::kLovEa}});
  const std::uint64_t g3 = graph.generation();
  EXPECT_GT(g3, g2);

  EXPECT_TRUE(graph.remove_edge(Fid{1, 1, 0}, Fid{2, 2, 0},
                                EdgeKind::kLovEa));
  EXPECT_GT(graph.generation(), g3);

  const std::uint64_t g4 = graph.generation();
  EXPECT_TRUE(graph.remove_vertex(Fid{1, 1, 0}));
  EXPECT_GT(graph.generation(), g4);
}

}  // namespace
}  // namespace faultyrank
