// Shared test fixtures: the paper's Fig. 3 example graph and small
// populated clusters.
#pragma once

#include <cstdint>

#include "graph/unified_graph.h"
#include "pfs/cluster.h"
#include "workload/namespace_gen.h"

namespace faultyrank::testing {

/// FIDs of the Fig. 3 example: directory a; files b, c under a; stripe
/// object d belonging to b.
struct Fig3Fids {
  Fid a{0x200000400, 1, 0};
  Fid b{0x200000400, 2, 0};
  Fid c{0x200000400, 3, 0};
  Fid d{0x100010000, 1, 0};
};

/// Builds the Fig. 3 metadata graph *with* its two injected
/// inconsistencies: c's LinkEA is missing and b's LOVEA slot for d is
/// missing (d still points back at b).
inline UnifiedGraph make_fig3_graph() {
  const Fig3Fids fids;
  PartialGraph mds;
  mds.server = "mds0";
  mds.add_vertex(fids.a, ObjectKind::kDirectory);
  mds.add_vertex(fids.b, ObjectKind::kFile);
  mds.add_vertex(fids.c, ObjectKind::kFile);
  mds.add_edge(fids.a, fids.b, EdgeKind::kDirent);
  mds.add_edge(fids.a, fids.c, EdgeKind::kDirent);
  mds.add_edge(fids.b, fids.a, EdgeKind::kLinkEa);
  // c → a LinkEA missing (inconsistency #1)
  // b → d LOVEA missing (inconsistency #2)

  PartialGraph oss;
  oss.server = "oss0";
  oss.add_vertex(fids.d, ObjectKind::kStripeObject);
  oss.add_edge(fids.d, fids.b, EdgeKind::kObjParent);

  const PartialGraph partials[] = {mds, oss};
  return UnifiedGraph::aggregate(partials);
}

/// The same four objects in a fully consistent state.
inline UnifiedGraph make_fig3_consistent_graph() {
  const Fig3Fids fids;
  PartialGraph mds;
  mds.server = "mds0";
  mds.add_vertex(fids.a, ObjectKind::kDirectory);
  mds.add_vertex(fids.b, ObjectKind::kFile);
  mds.add_vertex(fids.c, ObjectKind::kFile);
  mds.add_edge(fids.a, fids.b, EdgeKind::kDirent);
  mds.add_edge(fids.a, fids.c, EdgeKind::kDirent);
  mds.add_edge(fids.b, fids.a, EdgeKind::kLinkEa);
  mds.add_edge(fids.c, fids.a, EdgeKind::kLinkEa);
  mds.add_edge(fids.b, fids.d, EdgeKind::kLovEa);

  PartialGraph oss;
  oss.server = "oss0";
  oss.add_vertex(fids.d, ObjectKind::kStripeObject);
  oss.add_edge(fids.d, fids.b, EdgeKind::kObjParent);

  const PartialGraph partials[] = {mds, oss};
  return UnifiedGraph::aggregate(partials);
}

/// A small populated cluster: 4 OSTs, `files` files, deterministic.
inline LustreCluster make_populated_cluster(std::uint64_t files = 200,
                                            std::uint64_t seed = 42,
                                            std::size_t osts = 4) {
  LustreCluster cluster(osts, StripePolicy{64 * 1024, -1});
  NamespaceConfig config;
  config.file_count = files;
  config.seed = seed;
  populate_namespace(cluster, config);
  return cluster;
}

}  // namespace faultyrank::testing
