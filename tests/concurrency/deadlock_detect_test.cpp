// Runtime lock-order cycle detector (common/deadlock.h) — the dynamic
// half of fr_analyze's lock-order pass.
//
// The registry tests drive on_lock/on_unlock directly, so they prove
// the detection algorithm in EVERY build configuration. The wrapper
// integration test needs the instrumented Mutex and only runs under
// -DFAULTYRANK_DEADLOCK_DETECT=ON (the `deadlock` preset); elsewhere
// it skips.
//
// The seeded inversion is deliberately sequential: one task acquires
// A then B and fully releases, then a second task acquires B then A.
// No execution ever blocks — yet the acquired-after edge set still
// contains A→B when B→A appears, which is exactly the class of latent
// deadlock a timing-based stress test cannot catch.
#include "common/deadlock.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_pool.h"

namespace faultyrank {
namespace {

/// Installs a capturing hook for the test's lifetime and restores the
/// previous hook (and a clean registry) on exit.
class HookCapture {
 public:
  HookCapture() {
    deadlock::reset();
    previous_ = deadlock::set_report_hook([this](
        const deadlock::CycleReport& report) {
      const std::lock_guard<std::mutex> guard(mu_);
      reports_.push_back(report);
    });
  }
  ~HookCapture() {
    deadlock::set_report_hook(std::move(previous_));
    deadlock::reset();
  }

  std::vector<deadlock::CycleReport> reports() {
    const std::lock_guard<std::mutex> guard(mu_);
    return reports_;
  }

 private:
  std::mutex mu_;  // fr_lint: allow(mutex-needs-guards)
  std::vector<deadlock::CycleReport> reports_;
  std::function<void(const deadlock::CycleReport&)> previous_;
};

TEST(DeadlockDetectTest, AbbaInversionAcrossPoolThreadsReportsCycle) {
  HookCapture capture;
  int a = 0;
  int b = 0;  // any distinct addresses work as lock identities

  ThreadPool pool(2);
  {
    TaskGroup group(pool);
    group.submit([&] {
      deadlock::on_lock(&a, "A");
      deadlock::on_lock(&b, "B");
      deadlock::on_unlock(&b);
      deadlock::on_unlock(&a);
    });
    group.wait();
  }
  ASSERT_TRUE(capture.reports().empty()) << "consistent order reported";

  {
    TaskGroup group(pool);
    group.submit([&] {
      deadlock::on_lock(&b, "B");
      deadlock::on_lock(&a, "A");  // inversion: edge B->A vs existing A->B
      deadlock::on_unlock(&a);
      deadlock::on_unlock(&b);
    });
    group.wait();
  }

  const auto reports = capture.reports();
  ASSERT_EQ(reports.size(), 1u);
  const deadlock::CycleReport& report = reports.front();
  // The cycle must involve exactly our two locks, by address and name.
  EXPECT_NE(std::find(report.cycle.begin(), report.cycle.end(),
                      static_cast<const void*>(&a)),
            report.cycle.end());
  EXPECT_NE(std::find(report.cycle.begin(), report.cycle.end(),
                      static_cast<const void*>(&b)),
            report.cycle.end());
  EXPECT_NE(report.text.find("A"), std::string::npos);
  EXPECT_NE(report.text.find("B"), std::string::npos);
  EXPECT_NE(report.text.find("cycle"), std::string::npos);
}

TEST(DeadlockDetectTest, SingleLockHotPathAddsNoEdges) {
  HookCapture capture;
  int a = 0;
  for (int i = 0; i < 1000; ++i) {
    deadlock::on_lock(&a, "A");
    deadlock::on_unlock(&a);
  }
  EXPECT_EQ(deadlock::edge_count(), 0u);
  EXPECT_EQ(deadlock::held_count(), 0u);
  EXPECT_TRUE(capture.reports().empty());
}

TEST(DeadlockDetectTest, RepeatedNestingDedupesToOneEdge) {
  HookCapture capture;
  int a = 0;
  int b = 0;
  for (int i = 0; i < 1000; ++i) {
    deadlock::on_lock(&a, "A");
    deadlock::on_lock(&b, "B");
    deadlock::on_unlock(&b);
    deadlock::on_unlock(&a);
  }
  // The first iteration creates the single A->B edge; every later one
  // hits the dedup check and allocates nothing.
  EXPECT_EQ(deadlock::edge_count(), 1u);
  EXPECT_TRUE(capture.reports().empty());
}

TEST(DeadlockDetectTest, UnlockBeforeNestedAcquireCreatesNoEdge) {
  HookCapture capture;
  int a = 0;
  int b = 0;
  // The pool's run_task idiom: drop the held lock before acquiring the
  // next one. Ordering is never established, so no edge and no cycle
  // even when a later path orders them the other way.
  deadlock::on_lock(&a, "A");
  deadlock::on_unlock(&a);
  deadlock::on_lock(&b, "B");
  deadlock::on_unlock(&b);
  deadlock::on_lock(&b, "B");
  deadlock::on_unlock(&b);
  deadlock::on_lock(&a, "A");
  deadlock::on_unlock(&a);
  EXPECT_EQ(deadlock::edge_count(), 0u);
  EXPECT_TRUE(capture.reports().empty());
}

TEST(DeadlockDetectTest, ThreeLockCycleAcrossThreadsIsFound) {
  HookCapture capture;
  int a = 0;
  int b = 0;
  int c = 0;
  ThreadPool pool(2);
  const auto nest = [&](const void* first, const char* n1, const void* second,
                        const char* n2) {
    TaskGroup group(pool);
    group.submit([&, first, second, n1, n2] {
      deadlock::on_lock(first, n1);
      deadlock::on_lock(second, n2);
      deadlock::on_unlock(second);
      deadlock::on_unlock(first);
    });
    group.wait();
  };
  nest(&a, "A", &b, "B");
  nest(&b, "B", &c, "C");
  ASSERT_TRUE(capture.reports().empty());
  nest(&c, "C", &a, "A");  // closes A->B->C->A
  const auto reports = capture.reports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports.front().cycle.size(), 3u);
}

TEST(DeadlockDetectTest, InstrumentedWrappersReportSeededInversion) {
#if defined(FAULTYRANK_DEADLOCK_DETECT)
  HookCapture capture;
  Mutex mutex_a("order_test_a");
  Mutex mutex_b("order_test_b");

  ThreadPool pool(2);
  {
    TaskGroup group(pool);
    group.submit([&] {
      MutexLock hold_a(mutex_a);
      MutexLock hold_b(mutex_b);
    });
    group.wait();
  }
  {
    TaskGroup group(pool);
    group.submit([&] {
      MutexLock hold_b(mutex_b);
      MutexLock hold_a(mutex_a);  // fr_analyze: allow(lock-order-cycle)
    });
    group.wait();
  }

  const auto reports = capture.reports();
  ASSERT_GE(reports.size(), 1u);
  EXPECT_NE(reports.front().text.find("order_test_a"), std::string::npos);
  EXPECT_NE(reports.front().text.find("order_test_b"), std::string::npos);
#else
  GTEST_SKIP() << "wrapper instrumentation needs FAULTYRANK_DEADLOCK_DETECT "
                  "(use the `deadlock` preset)";
#endif
}

}  // namespace
}  // namespace faultyrank
