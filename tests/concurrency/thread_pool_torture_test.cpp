// Torture tests for the task-group thread pool: throwing tasks, nested
// parallel_for, independent groups on a shared pool, and
// submit-after-shutdown. Run under TSan via the `tsan` preset
// (`ctest --preset tsan`, label `concurrency`).
#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

namespace faultyrank {
namespace {

TEST(TaskGroupTest, WaitReturnsWhenOwnGroupDone) {
  ThreadPool pool(4);
  TaskGroup group(pool);
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    group.submit([&counter] { counter.fetch_add(1); });
  }
  group.wait();
  EXPECT_EQ(counter.load(), 200);
}

TEST(TaskGroupTest, WaitDoesNotObserveOtherGroupsWork) {
  // Group B occupies every worker until released; group A's wait() must
  // still complete — by stealing its own queued tasks — instead of
  // draining the whole pool like the old global wait_idle() did.
  ThreadPool pool(2);
  std::atomic<bool> release{false};
  std::atomic<int> blocked{0};
  TaskGroup blockers(pool);
  for (int i = 0; i < 2; ++i) {
    blockers.submit([&] {
      blocked.fetch_add(1);
      while (!release.load()) std::this_thread::yield();
    });
  }
  while (blocked.load() < 2) std::this_thread::yield();

  TaskGroup group(pool);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    group.submit([&counter] { counter.fetch_add(1); });
  }
  group.wait();  // steals: no worker is free
  EXPECT_EQ(counter.load(), 50);
  EXPECT_FALSE(release.load()) << "group A waited on group B's tasks";

  release.store(true);
  blockers.wait();
}

TEST(TaskGroupTest, ThrowingTaskIsRethrownAtWait) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  std::atomic<int> survivors{0};
  group.submit([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 20; ++i) {
    group.submit([&survivors] { survivors.fetch_add(1); });
  }
  EXPECT_THROW(group.wait(), std::runtime_error);
  // The failure neither cancelled siblings nor wedged the counters.
  EXPECT_EQ(survivors.load(), 20);
  // The exception slot is consumed: a second wait is clean.
  group.wait();

  // And the pool is still fully usable.
  TaskGroup again(pool);
  std::atomic<int> counter{0};
  again.submit([&counter] { counter.fetch_add(1); });
  again.wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ParallelForRethrowsChunkException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(1000,
                        [](std::size_t begin, std::size_t, std::size_t) {
                          if (begin == 0) throw std::runtime_error("chunk 0");
                        }),
      std::runtime_error);
  // Counters settled: a drain-all barrier returns immediately.
  pool.wait_idle();
}

TEST(ThreadPoolTest, WaitIdleRethrowsUngroupedException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("ungrouped"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // Slot consumed, pool reusable.
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<long> counter{0};
  pool.parallel_for(4, [&](std::size_t begin, std::size_t end, std::size_t) {
    for (std::size_t outer = begin; outer < end; ++outer) {
      pool.parallel_for(8,
                        [&](std::size_t b, std::size_t e, std::size_t) {
                          counter.fetch_add(static_cast<long>(e - b));
                        });
    }
  });
  EXPECT_EQ(counter.load(), 4 * 8);
}

TEST(ThreadPoolTest, DeeplyNestedParallelForSingleWorker) {
  // One worker, three levels of nesting: every level must make progress
  // through stealing alone.
  ThreadPool pool(1);
  std::atomic<long> counter{0};
  pool.parallel_for(2, [&](std::size_t, std::size_t, std::size_t) {
    pool.parallel_for(2, [&](std::size_t, std::size_t, std::size_t) {
      pool.parallel_for(2, [&](std::size_t b, std::size_t e, std::size_t) {
        counter.fetch_add(static_cast<long>(e - b));
      });
    });
  });
  EXPECT_EQ(counter.load(), 2);  // n=2 collapses to one chunk per level
}

TEST(ThreadPoolTest, TwoGroupsFromTwoThreads) {
  ThreadPool pool(4);
  std::atomic<int> a{0};
  std::atomic<int> b{0};
  std::thread ta([&] {
    TaskGroup group(pool);
    for (int i = 0; i < 500; ++i) {
      group.submit([&a] { a.fetch_add(1); });
    }
    group.wait();
    EXPECT_EQ(a.load(), 500);
  });
  std::thread tb([&] {
    TaskGroup group(pool);
    for (int i = 0; i < 500; ++i) {
      group.submit([&b] { b.fetch_add(1); });
    }
    group.wait();
    EXPECT_EQ(b.load(), 500);
  });
  ta.join();
  tb.join();
  EXPECT_EQ(a.load() + b.load(), 1000);
}

TEST(ThreadPoolTest, ConcurrentParallelForCallers) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&] {
      for (int round = 0; round < 20; ++round) {
        pool.parallel_for(256,
                          [&](std::size_t b, std::size_t e, std::size_t) {
                            total.fetch_add(static_cast<long>(e - b));
                          });
      }
    });
  }
  for (auto& caller : callers) caller.join();
  EXPECT_EQ(total.load(), 4L * 20L * 256L);
}

TEST(ThreadPoolTest, SubmitAfterShutdownThrows) {
  ThreadPool pool(2);
  pool.shutdown();
  EXPECT_THROW(pool.submit([] {}), std::runtime_error);
  TaskGroup group(pool);
  EXPECT_THROW(group.submit([] {}), std::runtime_error);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(10));
        counter.fetch_add(1);
      });
    }
    pool.shutdown();  // queued work runs to completion, never dropped
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(TaskGroupTest, DestructorDrainsWithoutWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  {
    TaskGroup group(pool);
    for (int i = 0; i < 50; ++i) {
      group.submit([&counter] { counter.fetch_add(1); });
    }
    // No wait(): the destructor must drain (and swallow exceptions).
    group.submit([] { throw std::runtime_error("dropped"); });
  }
  EXPECT_EQ(counter.load(), 50);
  pool.wait_idle();
}

}  // namespace
}  // namespace faultyrank
