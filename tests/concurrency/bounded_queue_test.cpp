// BoundedQueue edge cases: close-while-full (blocked producers give
// up), close-while-empty (blocked consumers see end-of-stream), and a
// capacity-1 ping-pong that forces a backpressure stall on every item.
// Runs under TSan via the `tsan` preset (label `concurrency`).
#include "common/bounded_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace faultyrank {
namespace {

TEST(BoundedQueueTest, ZeroCapacityClampsToOne) {
  BoundedQueue<int> queue(0);
  EXPECT_EQ(queue.capacity(), 1u);
}

TEST(BoundedQueueTest, FifoWithinCapacity) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.push(1));
  EXPECT_TRUE(queue.push(2));
  EXPECT_TRUE(queue.push(3));
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_EQ(queue.pop(), 2);
  EXPECT_EQ(queue.pop(), 3);
}

TEST(BoundedQueueTest, CloseWhileEmptyUnblocksPop) {
  BoundedQueue<int> queue(2);
  std::atomic<bool> popped{false};
  std::thread consumer([&] {
    EXPECT_EQ(queue.pop(), std::nullopt);  // blocks until close()
    popped.store(true);
  });
  // Give the consumer a moment to actually block on the empty queue.
  while (!popped.load()) {
    queue.close();
    std::this_thread::yield();
  }
  consumer.join();
}

TEST(BoundedQueueTest, CloseWhileFullUnblocksPush) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.push(1));  // queue now full
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_FALSE(queue.push(2));  // blocks on full, then fails on close
    pushed.store(true);
  });
  while (!pushed.load()) {
    queue.close();
    std::this_thread::yield();
  }
  producer.join();
  // The item enqueued before close still drains, then end-of-stream.
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_EQ(queue.pop(), std::nullopt);
}

TEST(BoundedQueueTest, PushAfterCloseFailsImmediately) {
  BoundedQueue<int> queue(4);
  queue.close();
  EXPECT_TRUE(queue.closed());
  EXPECT_FALSE(queue.push(1));
  EXPECT_EQ(queue.pop(), std::nullopt);
  queue.close();  // idempotent
}

TEST(BoundedQueueTest, CapacityOnePingPong) {
  // Every push must wait for the matching pop, so this exercises the
  // full-queue stall and wakeup path once per item.
  constexpr int kItems = 2000;
  BoundedQueue<int> queue(1);
  std::vector<int> received;
  received.reserve(kItems);
  std::thread consumer([&] {
    while (auto item = queue.pop()) received.push_back(*item);
  });
  for (int i = 0; i < kItems; ++i) {
    ASSERT_TRUE(queue.push(i));
  }
  queue.close();
  consumer.join();
  ASSERT_EQ(received.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(received[i], i);
}

TEST(BoundedQueueTest, ManyProducersOneConsumerDrainsEverything) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  BoundedQueue<int> queue(3);
  std::atomic<long long> sum{0};
  std::atomic<int> count{0};
  std::thread consumer([&] {
    while (auto item = queue.pop()) {
      sum.fetch_add(*item);
      count.fetch_add(1);
    }
  });
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.push(p * kPerProducer + i));
      }
    });
  }
  for (auto& t : producers) t.join();
  queue.close();
  consumer.join();
  EXPECT_EQ(count.load(), kProducers * kPerProducer);
  const long long n = kProducers * kPerProducer;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

}  // namespace
}  // namespace faultyrank
