// The parallel aggregation pipeline must be bit-identical to the serial
// reference path: same GIDs, same CSR, same pairing flags, same
// unpaired-edge ordering — for any thread count.
#include <gtest/gtest.h>

#include <vector>

#include "aggregator/aggregator.h"
#include "common/thread_pool.h"
#include "faults/injector.h"
#include "graph/unified_graph.h"
#include "scanner/scanner.h"
#include "testing/fixtures.h"
#include "workload/rmat.h"

namespace faultyrank {
namespace {

/// Asserts byte-for-byte equality of everything downstream consumers
/// read: vertex table columns, forward + reverse CSR, pairing flags,
/// in-degree splits, and the unpaired-edge list in its exact order.
void expect_identical(const UnifiedGraph& expected, const UnifiedGraph& actual) {
  ASSERT_EQ(expected.vertex_count(), actual.vertex_count());
  ASSERT_EQ(expected.edge_count(), actual.edge_count());

  const std::size_t n = expected.vertex_count();
  for (Gid v = 0; v < n; ++v) {
    ASSERT_EQ(expected.vertices().fid_of(v), actual.vertices().fid_of(v))
        << "gid " << v;
    ASSERT_EQ(expected.vertices().kind_of(v), actual.vertices().kind_of(v))
        << "gid " << v;
    ASSERT_EQ(expected.vertices().scan_count(v),
              actual.vertices().scan_count(v))
        << "gid " << v;
    ASSERT_EQ(expected.paired_in_degree(v), actual.paired_in_degree(v))
        << "gid " << v;
    ASSERT_EQ(expected.unpaired_in_degree(v), actual.unpaired_in_degree(v))
        << "gid " << v;
  }

  const auto compare_csr = [&](const Csr& want, const Csr& got,
                               const char* which) {
    ASSERT_EQ(want.vertex_count(), got.vertex_count()) << which;
    ASSERT_EQ(want.edge_count(), got.edge_count()) << which;
    for (Gid v = 0; v < want.vertex_count(); ++v) {
      ASSERT_EQ(want.edges_begin(v), got.edges_begin(v)) << which << " " << v;
      ASSERT_EQ(want.edges_end(v), got.edges_end(v)) << which << " " << v;
      for (auto slot = want.edges_begin(v); slot < want.edges_end(v); ++slot) {
        ASSERT_EQ(want.target(slot), got.target(slot))
            << which << " slot " << slot;
        ASSERT_EQ(want.kind(slot), got.kind(slot)) << which << " slot " << slot;
      }
    }
  };
  compare_csr(expected.forward(), actual.forward(), "forward");
  compare_csr(expected.reverse(), actual.reverse(), "reverse");

  for (std::uint64_t slot = 0; slot < expected.edge_count(); ++slot) {
    ASSERT_EQ(expected.paired(slot), actual.paired(slot)) << "slot " << slot;
  }
  ASSERT_EQ(expected.unpaired_edges(), actual.unpaired_edges());
}

/// Partials engineered to hit every interning wrinkle: cross-partial
/// duplicate scans (double-reference), phantom endpoints, last-wins
/// kind upgrades, and edges seen before/after their vertices.
std::vector<PartialGraph> make_adversarial_partials() {
  std::vector<PartialGraph> partials(3);
  auto fid = [](std::uint64_t seq, std::uint32_t oid) {
    return Fid{seq, oid, 0};
  };
  for (std::uint32_t i = 0; i < 400; ++i) {
    PartialGraph& p = partials[i % 2];
    p.add_vertex(fid(1, i), i % 3 == 0 ? ObjectKind::kDirectory
                                       : ObjectKind::kFile);
    // Edges to scanned, later-scanned, and never-scanned (phantom) fids.
    p.add_edge(fid(1, i), fid(1, (i * 7 + 3) % 400), EdgeKind::kDirent);
    p.add_edge(fid(1, (i * 7 + 3) % 400), fid(1, i), EdgeKind::kLinkEa);
    if (i % 5 == 0) {
      p.add_edge(fid(1, i), fid(0xdead, i), EdgeKind::kLovEa);  // phantom
    }
  }
  // Double-reference: the same FID scanned on two servers, with a kind
  // upgrade on the second sighting.
  for (std::uint32_t i = 0; i < 50; ++i) {
    partials[2].add_vertex(fid(1, i * 4), ObjectKind::kStripeObject);
    partials[2].add_edge(fid(0xdead, i * 4), fid(1, i * 4),
                         EdgeKind::kObjParent);
  }
  return partials;
}

TEST(ParallelAggregateTest, RmatFinalizeMatchesSerialForAnyThreadCount) {
  const GeneratedGraph rmat = generate_rmat({.scale = 12, .avg_degree = 8});
  const UnifiedGraph serial =
      UnifiedGraph::from_edges(rmat.vertex_count, rmat.edges);
  ASSERT_FALSE(serial.unpaired_edges().empty());  // RMAT is mostly unpaired
  for (const std::size_t threads : {2u, 3u, 7u}) {
    ThreadPool pool(threads);
    const UnifiedGraph parallel =
        UnifiedGraph::from_edges(rmat.vertex_count, rmat.edges, &pool);
    expect_identical(serial, parallel);
  }
}

TEST(ParallelAggregateTest, AdversarialPartialsMatchSerial) {
  const std::vector<PartialGraph> partials = make_adversarial_partials();
  const UnifiedGraph serial = UnifiedGraph::aggregate(partials);
  for (const std::size_t threads : {2u, 5u}) {
    ThreadPool pool(threads);
    const UnifiedGraph parallel = UnifiedGraph::aggregate(partials, &pool);
    expect_identical(serial, parallel);
  }
}

TEST(ParallelAggregateTest, ClusterScanAggregateMatchesSerial) {
  LustreCluster cluster = testing::make_populated_cluster(200, 91);
  FaultInjector injector(cluster, 92);
  injector.inject_campaign(5);  // unpaired edges + phantoms in the graph
  const ClusterScan scan = scan_cluster(cluster);

  const AggregationResult serial = aggregate(scan.results);
  ThreadPool pool(4);
  const AggregationResult parallel = aggregate(scan.results, {}, &pool);
  expect_identical(serial.graph, parallel.graph);
  EXPECT_EQ(serial.transferred_bytes, parallel.transferred_bytes);
  EXPECT_DOUBLE_EQ(serial.sim_transfer_seconds, parallel.sim_transfer_seconds);
  EXPECT_DOUBLE_EQ(serial.sim_pipeline_seconds, parallel.sim_pipeline_seconds);
}

TEST(ParallelAggregateTest, StreamingPipelineMatchesBatchPath) {
  LustreCluster cluster = testing::make_populated_cluster(150, 93);
  FaultInjector injector(cluster, 94);
  injector.inject_campaign(3);

  const ClusterScan scan = scan_cluster(cluster);
  const AggregationResult batch = aggregate(scan.results);

  ThreadPool pool(4);
  const PipelineResult streamed = scan_and_aggregate(cluster, &pool);

  expect_identical(batch.graph, streamed.agg.graph);
  EXPECT_EQ(batch.transferred_bytes, streamed.agg.transferred_bytes);
  EXPECT_DOUBLE_EQ(batch.sim_transfer_seconds,
                   streamed.agg.sim_transfer_seconds);
  EXPECT_DOUBLE_EQ(batch.sim_pipeline_seconds,
                   streamed.agg.sim_pipeline_seconds);
  EXPECT_DOUBLE_EQ(scan.sim_seconds, streamed.scan.sim_seconds);
  EXPECT_EQ(scan.inodes_scanned, streamed.scan.inodes_scanned);
}

TEST(ParallelAggregateTest, PipelinedSimTimeOverlapsTransfers) {
  LustreCluster cluster = testing::make_populated_cluster(150, 95);
  const ClusterScan scan = scan_cluster(cluster);
  const AggregationResult agg = aggregate(scan.results);
  // Overlapped finish time is bounded by the barriered accounting and
  // can never beat the slowest scanner alone.
  EXPECT_LE(agg.sim_pipeline_seconds,
            scan.sim_seconds + agg.sim_transfer_seconds);
  EXPECT_GE(agg.sim_pipeline_seconds, scan.sim_seconds);
  EXPECT_GT(agg.sim_transfer_seconds, 0.0);
}

}  // namespace
}  // namespace faultyrank
