// Determinism and latch semantics of the operational fault injector.
#include <gtest/gtest.h>

#include "faults/op_faults.h"

namespace faultyrank {
namespace {

OpFaultConfig eio_config(double rate) {
  OpFaultConfig config;
  config.seed = 7;
  config.transient_eio_rate = rate;
  config.max_fault_attempts = 2;
  return config;
}

TEST(OpFaultsTest, ProbeIsPureInSeedLabelSlotAttempt) {
  const OpFaultConfig config = eio_config(0.5);
  const ServerFaultSchedule a(config, "oss0");
  const ServerFaultSchedule b(config, "oss0");
  for (std::uint64_t slot = 0; slot < 512; ++slot) {
    for (std::uint32_t attempt = 1; attempt <= 3; ++attempt) {
      const ReadFault fa = a.probe(slot, attempt);
      const ReadFault fb = b.probe(slot, attempt);
      EXPECT_EQ(fa.transient_eio, fb.transient_eio);
      EXPECT_EQ(fa.torn_ea, fb.torn_ea);
      EXPECT_EQ(fa.extra_latency_seconds, fb.extra_latency_seconds);
      EXPECT_EQ(a.jitter_unit(slot, attempt), b.jitter_unit(slot, attempt));
    }
  }
}

TEST(OpFaultsTest, DifferentServersSeeDifferentSchedules) {
  const OpFaultConfig config = eio_config(0.5);
  const ServerFaultSchedule a(config, "oss0");
  const ServerFaultSchedule b(config, "oss1");
  int differing = 0;
  for (std::uint64_t slot = 0; slot < 512; ++slot) {
    if (a.probe(slot, 1).transient_eio != b.probe(slot, 1).transient_eio) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

TEST(OpFaultsTest, TransientFaultsClearWithinTheFaultBudget) {
  const OpFaultConfig config = eio_config(1.0);  // every inode faulted
  const ServerFaultSchedule sched(config, "oss0");
  for (std::uint64_t slot = 0; slot < 256; ++slot) {
    EXPECT_TRUE(sched.probe(slot, 1).transient_eio);
    // fail_attempts is 1..max_fault_attempts, so attempt
    // max_fault_attempts + 1 always reads clean.
    EXPECT_FALSE(sched.probe(slot, config.max_fault_attempts + 1)
                     .transient_eio);
  }
}

TEST(OpFaultsTest, ZeroRatesNeverFault) {
  const OpFaultConfig config;  // all rates zero, no crashes
  ServerFaultSchedule sched(config, "mds0");
  for (std::uint64_t slot = 0; slot < 256; ++slot) {
    EXPECT_NO_THROW(sched.on_read());
    const ReadFault fault = sched.probe(slot, 1);
    EXPECT_FALSE(fault.transient_eio);
    EXPECT_FALSE(fault.torn_ea);
    EXPECT_EQ(fault.extra_latency_seconds, 0.0);
  }
  EXPECT_FALSE(sched.down());
}

TEST(OpFaultsTest, CrashLatchSurvivesBeginScan) {
  OpFaultConfig config;
  config.crash_after_reads["oss0"] = 10;
  OpFaultSchedule cluster_sched(config);
  ServerFaultSchedule& sched = cluster_sched.server("oss0");

  sched.begin_scan();
  for (int i = 0; i < 10; ++i) EXPECT_NO_THROW(sched.on_read());
  EXPECT_THROW(sched.on_read(), ServerCrashError);
  EXPECT_TRUE(sched.down());

  // A rescan resets the read counter but the server stays dead.
  sched.begin_scan();
  EXPECT_THROW(sched.on_read(), ServerCrashError);
  EXPECT_TRUE(sched.down());
}

TEST(OpFaultsTest, ScheduleHandoutIsStablePerLabel) {
  OpFaultSchedule cluster_sched(eio_config(0.2));
  ServerFaultSchedule& first = cluster_sched.server("oss3");
  ServerFaultSchedule& again = cluster_sched.server("oss3");
  EXPECT_EQ(&first, &again);
  EXPECT_EQ(first.label(), "oss3");
}

}  // namespace
}  // namespace faultyrank
