// Checkpoint/resume: atomic persistence, hardened deserialization, and
// the headline guarantee — a run interrupted mid-scan and resumed from
// its checkpoint produces ranks bit-identical to an uninterrupted run.
#include <gtest/gtest.h>

#include <bit>
#include <filesystem>
#include <limits>

#include "aggregator/aggregator.h"
#include "aggregator/checkpoint.h"
#include "common/thread_pool.h"
#include "core/faultyrank.h"
#include "pfs/changelog.h"
#include "pfs/persistence.h"
#include "testing/fixtures.h"

namespace faultyrank {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

ScanCheckpoint make_checkpoint(const LustreCluster& cluster) {
  ScanCheckpoint ckpt;
  ckpt.epoch = 0x5ca1ab1e;
  ckpt.labels = {"mds0", "oss0", "oss1"};
  ckpt.results.resize(3);
  ckpt.results[0] = scan_mdt(cluster.mdt());
  // Slot 1 (oss0) not yet scanned.
  ckpt.results[2] = scan_ost(cluster.osts()[1]);
  return ckpt;
}

TEST(CheckpointTest, SerializationRoundTripsEveryField) {
  const LustreCluster cluster = testing::make_populated_cluster(80, 41, 2);
  const ScanCheckpoint ckpt = make_checkpoint(cluster);

  const ScanCheckpoint loaded =
      deserialize_checkpoint(serialize_checkpoint(ckpt));
  EXPECT_EQ(loaded.epoch, ckpt.epoch);
  EXPECT_EQ(loaded.labels, ckpt.labels);
  ASSERT_EQ(loaded.results.size(), 3u);
  EXPECT_TRUE(loaded.results[0].has_value());
  EXPECT_FALSE(loaded.results[1].has_value());
  ASSERT_TRUE(loaded.results[2].has_value());

  const ScanResult& original = *ckpt.results[0];
  const ScanResult& restored = *loaded.results[0];
  EXPECT_EQ(restored.graph.serialize(), original.graph.serialize());
  EXPECT_EQ(restored.local_to_mds, original.local_to_mds);
  EXPECT_EQ(restored.sim_seconds, original.sim_seconds);
  EXPECT_EQ(restored.inodes_scanned, original.inodes_scanned);
  EXPECT_EQ(restored.directories_visited, original.directories_visited);
  EXPECT_EQ(restored.status, original.status);
  EXPECT_EQ(restored.read_attempts, original.read_attempts);
  EXPECT_EQ(restored.retries, original.retries);
  EXPECT_EQ(restored.quarantined, original.quarantined);
  EXPECT_EQ(restored.error, original.error);
}

TEST(CheckpointTest, SaveIsAtomicAndLeavesNoTempFile) {
  const LustreCluster cluster = testing::make_populated_cluster(80, 42, 2);
  const std::string path = temp_path("ckpt_atomic.frcp");
  std::filesystem::remove(path);

  save_checkpoint(make_checkpoint(cluster), path);
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  const ScanCheckpoint loaded = load_checkpoint(path);
  EXPECT_EQ(loaded.labels.size(), 3u);
  std::filesystem::remove(path);
}

TEST(CheckpointTest, TruncatedCheckpointsAlwaysThrow) {
  const LustreCluster cluster = testing::make_populated_cluster(80, 43, 2);
  const std::vector<std::uint8_t> bytes =
      serialize_checkpoint(make_checkpoint(cluster));
  ASSERT_GT(bytes.size(), 32u);
  for (std::size_t cut = 0; cut < bytes.size(); cut += 7) {
    const std::vector<std::uint8_t> prefix(
        bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW((void)deserialize_checkpoint(prefix), PersistenceError)
        << "prefix of " << cut << " bytes parsed";
  }
}

TEST(CheckpointResumeTest, MismatchedClusterIsRejected) {
  const LustreCluster small = testing::make_populated_cluster(60, 44, 2);
  const LustreCluster big = testing::make_populated_cluster(60, 44, 4);
  const std::string path = temp_path("ckpt_mismatch.frcp");
  std::filesystem::remove(path);

  OpFaultConfig fault_config;
  OpFaultSchedule faults(fault_config);
  PipelineConfig config;
  config.faults = &faults;
  config.checkpoint_path = path;
  (void)scan_and_aggregate(small, config);

  EXPECT_THROW((void)scan_and_aggregate(big, config), PersistenceError);
  std::filesystem::remove(path);
}

TEST(CheckpointResumeTest, ResumedRunReproducesRanksBitForBit) {
  const LustreCluster cluster = testing::make_populated_cluster(150, 45, 4);
  const std::string path = temp_path("ckpt_resume.frcp");
  std::filesystem::remove(path);

  OpFaultConfig fault_config;
  fault_config.seed = 99;
  fault_config.transient_eio_rate = 0.1;
  fault_config.latency_spike_rate = 0.05;

  // Reference: one uninterrupted run.
  PipelineResult reference;
  {
    OpFaultSchedule faults(fault_config);
    PipelineConfig config;
    config.faults = &faults;
    reference = scan_and_aggregate(cluster, config);
  }

  // Interrupted run: checkpoint after every scan, die after two.
  {
    OpFaultSchedule faults(fault_config);
    PipelineConfig config;
    config.faults = &faults;
    config.checkpoint_path = path;
    config.interrupt_after_servers = 2;
    EXPECT_THROW((void)scan_and_aggregate(cluster, config),
                 PipelineInterrupted);
  }
  ASSERT_TRUE(std::filesystem::exists(path));

  // Resumed run: fresh process state (new schedule), same checkpoint.
  // Runs on a pool to exercise the streaming prefill path as well.
  PipelineResult resumed;
  {
    OpFaultSchedule faults(fault_config);
    ThreadPool pool(4);
    PipelineConfig config;
    config.pool = &pool;
    config.faults = &faults;
    config.checkpoint_path = path;
    resumed = scan_and_aggregate(cluster, config);
  }
  EXPECT_EQ(resumed.servers_resumed, 2u);
  EXPECT_TRUE(resumed.failed_servers.empty());

  // The resumed graph and virtual-time numbers match the uninterrupted
  // run exactly...
  ASSERT_EQ(resumed.agg.graph.vertex_count(),
            reference.agg.graph.vertex_count());
  ASSERT_EQ(resumed.agg.graph.edge_count(), reference.agg.graph.edge_count());
  EXPECT_EQ(std::bit_cast<std::uint64_t>(resumed.scan.sim_seconds),
            std::bit_cast<std::uint64_t>(reference.scan.sim_seconds));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(resumed.agg.sim_pipeline_seconds),
            std::bit_cast<std::uint64_t>(reference.agg.sim_pipeline_seconds));

  // ...and so do the ranks, bit for bit.
  const FaultyRankResult ranks_ref = run_faultyrank(reference.agg.graph);
  const FaultyRankResult ranks_res = run_faultyrank(resumed.agg.graph);
  ASSERT_EQ(ranks_res.id_rank.size(), ranks_ref.id_rank.size());
  for (std::size_t v = 0; v < ranks_ref.id_rank.size(); ++v) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(ranks_res.id_rank[v]),
              std::bit_cast<std::uint64_t>(ranks_ref.id_rank[v]));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(ranks_res.prop_rank[v]),
              std::bit_cast<std::uint64_t>(ranks_ref.prop_rank[v]));
  }
  std::filesystem::remove(path);
}

TEST(CheckpointResumeTest, StaleCheckpointFromMutatedClusterIsDiscarded) {
  // Regression for the checkpoint × mutation interleaving: a checkpoint
  // written before the cluster changed must NOT be resumed — prefilling
  // its scans would merge two points in time into one graph and every
  // edge into the stale region would read as a phantom inconsistency.
  // The epoch (here: the changelog cursor at scan start) is the
  // staleness fingerprint.
  LustreCluster cluster = testing::make_populated_cluster(120, 46, 4);
  ChangeLog log;
  cluster.attach_changelog(&log);
  const std::string path = temp_path("ckpt_stale_epoch.frcp");
  std::filesystem::remove(path);

  OpFaultConfig fault_config;
  fault_config.seed = 46;
  {
    OpFaultSchedule faults(fault_config);
    PipelineConfig config;
    config.faults = &faults;
    config.checkpoint_path = path;
    config.checkpoint_epoch = log.next_index();
    config.interrupt_after_servers = 2;
    EXPECT_THROW((void)scan_and_aggregate(cluster, config),
                 PipelineInterrupted);
  }
  ASSERT_TRUE(std::filesystem::exists(path));

  // The filesystem moves on while the checker is down.
  cluster.create_file(cluster.root(), "while_you_were_out", 128 * 1024);

  PipelineResult resumed;
  {
    OpFaultSchedule faults(fault_config);
    PipelineConfig config;
    config.faults = &faults;
    config.checkpoint_path = path;
    config.checkpoint_epoch = log.next_index();  // epoch moved on too
    resumed = scan_and_aggregate(cluster, config);
  }
  EXPECT_TRUE(resumed.checkpoint_discarded);
  EXPECT_EQ(resumed.servers_resumed, 0u);

  // The full rescan matches a from-scratch run of the mutated cluster.
  const PipelineResult fresh = scan_and_aggregate(cluster, PipelineConfig{});
  EXPECT_EQ(resumed.agg.graph.vertex_count(),
            fresh.agg.graph.vertex_count());
  EXPECT_EQ(resumed.agg.graph.edge_count(), fresh.agg.graph.edge_count());
  EXPECT_TRUE(resumed.agg.coverage.complete());
  std::filesystem::remove(path);
}

TEST(CheckpointResumeTest, SameEpochResumeIsNotDiscarded) {
  LustreCluster cluster = testing::make_populated_cluster(100, 47, 4);
  ChangeLog log;
  cluster.attach_changelog(&log);
  const std::string path = temp_path("ckpt_same_epoch.frcp");
  std::filesystem::remove(path);

  OpFaultConfig fault_config;
  OpFaultSchedule faults(fault_config);
  PipelineConfig config;
  config.faults = &faults;
  config.checkpoint_path = path;
  config.checkpoint_epoch = log.next_index();
  config.interrupt_after_servers = 2;
  EXPECT_THROW((void)scan_and_aggregate(cluster, config),
               PipelineInterrupted);

  config.interrupt_after_servers = std::numeric_limits<std::size_t>::max();
  const PipelineResult resumed = scan_and_aggregate(cluster, config);
  EXPECT_FALSE(resumed.checkpoint_discarded);
  EXPECT_EQ(resumed.servers_resumed, 2u);
  std::filesystem::remove(path);
}

TEST(CheckpointResumeTest, ResumeWithLatchedCrashMatchesFreshFaultyRun) {
  // Regression for the checkpoint × fault-schedule interleaving: a run
  // that is interrupted, then resumed *in-process* (same schedule
  // object, so a crashed server's latch is still set) must agree with
  // an uninterrupted run under the same fault config on everything
  // that feeds detection — ranks bit for bit AND the CoverageInfo
  // (lost sequences, quarantined inodes, coverage fraction).
  const LustreCluster cluster = testing::make_populated_cluster(150, 48, 4);
  const std::string path = temp_path("ckpt_crash_resume.frcp");
  std::filesystem::remove(path);

  OpFaultConfig fault_config;
  fault_config.seed = 48;
  fault_config.transient_eio_rate = 0.08;
  fault_config.crash_after_reads["oss2"] = 20;

  PipelineResult reference;
  {
    OpFaultSchedule faults(fault_config);
    PipelineConfig config;
    config.faults = &faults;
    reference = scan_and_aggregate(cluster, config);
  }
  ASSERT_EQ(reference.failed_servers,
            std::vector<std::string>{"oss2"});

  PipelineResult resumed;
  {
    OpFaultSchedule faults(fault_config);  // one schedule, both runs
    PipelineConfig config;
    config.faults = &faults;
    config.checkpoint_path = path;
    config.interrupt_after_servers = 2;
    EXPECT_THROW((void)scan_and_aggregate(cluster, config),
                 PipelineInterrupted);
    config.interrupt_after_servers = std::numeric_limits<std::size_t>::max();
    resumed = scan_and_aggregate(cluster, config);
  }
  EXPECT_EQ(resumed.failed_servers, reference.failed_servers);
  EXPECT_EQ(resumed.agg.coverage.coverage, reference.agg.coverage.coverage);
  EXPECT_EQ(resumed.agg.coverage.lost_sequences,
            reference.agg.coverage.lost_sequences);
  EXPECT_EQ(resumed.agg.coverage.quarantined,
            reference.agg.coverage.quarantined);
  ASSERT_EQ(resumed.agg.graph.vertex_count(),
            reference.agg.graph.vertex_count());
  ASSERT_EQ(resumed.agg.graph.edge_count(), reference.agg.graph.edge_count());

  const FaultyRankResult ranks_ref = run_faultyrank(reference.agg.graph);
  const FaultyRankResult ranks_res = run_faultyrank(resumed.agg.graph);
  ASSERT_EQ(ranks_res.id_rank.size(), ranks_ref.id_rank.size());
  for (std::size_t v = 0; v < ranks_ref.id_rank.size(); ++v) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(ranks_res.id_rank[v]),
              std::bit_cast<std::uint64_t>(ranks_ref.id_rank[v]));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(ranks_res.prop_rank[v]),
              std::bit_cast<std::uint64_t>(ranks_ref.prop_rank[v]));
  }
  std::filesystem::remove(path);
}

TEST(OpFaultsTest, ReviveClearsTheCrashLatch) {
  // revive() models the operator bringing a dead server back: the latch
  // clears, the crash point is consumed, and a rescan completes.
  OpFaultConfig config;
  config.crash_after_reads["oss0"] = 2;
  OpFaultSchedule faults(config);
  ServerFaultSchedule& server = faults.server("oss0");

  server.begin_scan();
  EXPECT_NO_THROW(server.on_read());
  EXPECT_NO_THROW(server.on_read());
  EXPECT_THROW(server.on_read(), ServerCrashError);
  EXPECT_TRUE(server.down());

  // A rescan without revive stays dead (the latch survives begin_scan).
  server.begin_scan();
  EXPECT_THROW(server.on_read(), ServerCrashError);

  server.revive();
  EXPECT_FALSE(server.down());
  server.begin_scan();
  for (int i = 0; i < 10; ++i) EXPECT_NO_THROW(server.on_read());
}

}  // namespace
}  // namespace faultyrank
