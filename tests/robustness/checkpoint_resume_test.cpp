// Checkpoint/resume: atomic persistence, hardened deserialization, and
// the headline guarantee — a run interrupted mid-scan and resumed from
// its checkpoint produces ranks bit-identical to an uninterrupted run.
#include <gtest/gtest.h>

#include <bit>
#include <filesystem>

#include "aggregator/aggregator.h"
#include "aggregator/checkpoint.h"
#include "common/thread_pool.h"
#include "core/faultyrank.h"
#include "pfs/persistence.h"
#include "testing/fixtures.h"

namespace faultyrank {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

ScanCheckpoint make_checkpoint(const LustreCluster& cluster) {
  ScanCheckpoint ckpt;
  ckpt.labels = {"mds0", "oss0", "oss1"};
  ckpt.results.resize(3);
  ckpt.results[0] = scan_mdt(cluster.mdt());
  // Slot 1 (oss0) not yet scanned.
  ckpt.results[2] = scan_ost(cluster.osts()[1]);
  return ckpt;
}

TEST(CheckpointTest, SerializationRoundTripsEveryField) {
  const LustreCluster cluster = testing::make_populated_cluster(80, 41, 2);
  const ScanCheckpoint ckpt = make_checkpoint(cluster);

  const ScanCheckpoint loaded =
      deserialize_checkpoint(serialize_checkpoint(ckpt));
  EXPECT_EQ(loaded.labels, ckpt.labels);
  ASSERT_EQ(loaded.results.size(), 3u);
  EXPECT_TRUE(loaded.results[0].has_value());
  EXPECT_FALSE(loaded.results[1].has_value());
  ASSERT_TRUE(loaded.results[2].has_value());

  const ScanResult& original = *ckpt.results[0];
  const ScanResult& restored = *loaded.results[0];
  EXPECT_EQ(restored.graph.serialize(), original.graph.serialize());
  EXPECT_EQ(restored.local_to_mds, original.local_to_mds);
  EXPECT_EQ(restored.sim_seconds, original.sim_seconds);
  EXPECT_EQ(restored.inodes_scanned, original.inodes_scanned);
  EXPECT_EQ(restored.directories_visited, original.directories_visited);
  EXPECT_EQ(restored.status, original.status);
  EXPECT_EQ(restored.read_attempts, original.read_attempts);
  EXPECT_EQ(restored.retries, original.retries);
  EXPECT_EQ(restored.quarantined, original.quarantined);
  EXPECT_EQ(restored.error, original.error);
}

TEST(CheckpointTest, SaveIsAtomicAndLeavesNoTempFile) {
  const LustreCluster cluster = testing::make_populated_cluster(80, 42, 2);
  const std::string path = temp_path("ckpt_atomic.frcp");
  std::filesystem::remove(path);

  save_checkpoint(make_checkpoint(cluster), path);
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  const ScanCheckpoint loaded = load_checkpoint(path);
  EXPECT_EQ(loaded.labels.size(), 3u);
  std::filesystem::remove(path);
}

TEST(CheckpointTest, TruncatedCheckpointsAlwaysThrow) {
  const LustreCluster cluster = testing::make_populated_cluster(80, 43, 2);
  const std::vector<std::uint8_t> bytes =
      serialize_checkpoint(make_checkpoint(cluster));
  ASSERT_GT(bytes.size(), 32u);
  for (std::size_t cut = 0; cut < bytes.size(); cut += 7) {
    const std::vector<std::uint8_t> prefix(
        bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW((void)deserialize_checkpoint(prefix), PersistenceError)
        << "prefix of " << cut << " bytes parsed";
  }
}

TEST(CheckpointResumeTest, MismatchedClusterIsRejected) {
  const LustreCluster small = testing::make_populated_cluster(60, 44, 2);
  const LustreCluster big = testing::make_populated_cluster(60, 44, 4);
  const std::string path = temp_path("ckpt_mismatch.frcp");
  std::filesystem::remove(path);

  OpFaultConfig fault_config;
  OpFaultSchedule faults(fault_config);
  PipelineConfig config;
  config.faults = &faults;
  config.checkpoint_path = path;
  (void)scan_and_aggregate(small, config);

  EXPECT_THROW((void)scan_and_aggregate(big, config), PersistenceError);
  std::filesystem::remove(path);
}

TEST(CheckpointResumeTest, ResumedRunReproducesRanksBitForBit) {
  const LustreCluster cluster = testing::make_populated_cluster(150, 45, 4);
  const std::string path = temp_path("ckpt_resume.frcp");
  std::filesystem::remove(path);

  OpFaultConfig fault_config;
  fault_config.seed = 99;
  fault_config.transient_eio_rate = 0.1;
  fault_config.latency_spike_rate = 0.05;

  // Reference: one uninterrupted run.
  PipelineResult reference;
  {
    OpFaultSchedule faults(fault_config);
    PipelineConfig config;
    config.faults = &faults;
    reference = scan_and_aggregate(cluster, config);
  }

  // Interrupted run: checkpoint after every scan, die after two.
  {
    OpFaultSchedule faults(fault_config);
    PipelineConfig config;
    config.faults = &faults;
    config.checkpoint_path = path;
    config.interrupt_after_servers = 2;
    EXPECT_THROW((void)scan_and_aggregate(cluster, config),
                 PipelineInterrupted);
  }
  ASSERT_TRUE(std::filesystem::exists(path));

  // Resumed run: fresh process state (new schedule), same checkpoint.
  // Runs on a pool to exercise the streaming prefill path as well.
  PipelineResult resumed;
  {
    OpFaultSchedule faults(fault_config);
    ThreadPool pool(4);
    PipelineConfig config;
    config.pool = &pool;
    config.faults = &faults;
    config.checkpoint_path = path;
    resumed = scan_and_aggregate(cluster, config);
  }
  EXPECT_EQ(resumed.servers_resumed, 2u);
  EXPECT_TRUE(resumed.failed_servers.empty());

  // The resumed graph and virtual-time numbers match the uninterrupted
  // run exactly...
  ASSERT_EQ(resumed.agg.graph.vertex_count(),
            reference.agg.graph.vertex_count());
  ASSERT_EQ(resumed.agg.graph.edge_count(), reference.agg.graph.edge_count());
  EXPECT_EQ(std::bit_cast<std::uint64_t>(resumed.scan.sim_seconds),
            std::bit_cast<std::uint64_t>(reference.scan.sim_seconds));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(resumed.agg.sim_pipeline_seconds),
            std::bit_cast<std::uint64_t>(reference.agg.sim_pipeline_seconds));

  // ...and so do the ranks, bit for bit.
  const FaultyRankResult ranks_ref = run_faultyrank(reference.agg.graph);
  const FaultyRankResult ranks_res = run_faultyrank(resumed.agg.graph);
  ASSERT_EQ(ranks_res.id_rank.size(), ranks_ref.id_rank.size());
  for (std::size_t v = 0; v < ranks_ref.id_rank.size(); ++v) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(ranks_res.id_rank[v]),
              std::bit_cast<std::uint64_t>(ranks_ref.id_rank[v]));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(ranks_res.prop_rank[v]),
              std::bit_cast<std::uint64_t>(ranks_ref.prop_rank[v]));
  }
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace faultyrank
