// Crash-state enumeration invariants (DESIGN.md §15): every crash
// prefix is bit-reproducible from (base, op spec, crash index), the
// trace's schedule matches what the replicas actually hit, and
// journal-style recovery lands every interrupted op in a consistent
// namespace the op sequence itself could have produced.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "checker/convergence.h"
#include "faults/crash_states.h"
#include "online/online_checker.h"
#include "pfs/persistence.h"
#include "workload/namespace_gen.h"

namespace faultyrank {
namespace {

LustreCluster make_base() {
  LustreCluster cluster(4, StripePolicy{64 * 1024, -1}, 2);
  NamespaceConfig config;
  config.file_count = 24;
  config.dir_ratio = 0.25;
  config.max_depth = 4;
  config.hardlink_ratio = 0.05;
  config.seed = 20260808;
  populate_namespace(cluster, config);
  return cluster;
}

std::string join(const std::string& parent, const std::string& name) {
  return parent == "/" ? "/" + name : parent + "/" + name;
}

/// One spec per op kind, resolved against the generated namespace: a
/// file and a directory discovered by walking the root.
std::vector<CrashOpSpec> make_specs(const LustreCluster& cluster) {
  std::string file_name, dir_path;
  const Inode* root = cluster.stat(cluster.root());
  for (const auto& entry : root->dirents) {
    if (entry.name == ".lustre") continue;
    const Inode* child = cluster.stat(entry.fid);
    if (child == nullptr) continue;
    if (child->type == InodeType::kRegular && file_name.empty()) {
      file_name = entry.name;
    }
    if (child->type == InodeType::kDirectory && dir_path.empty()) {
      dir_path = "/" + entry.name;
    }
  }
  EXPECT_FALSE(file_name.empty());
  EXPECT_FALSE(dir_path.empty());
  return {
      {CrashOpKind::kMkdir, "/", "cs_dir", "", 0},
      {CrashOpKind::kCreate, dir_path, "cs_file", "", 130 * 1024},
      {CrashOpKind::kHardLink, dir_path, "cs_link", "/" + file_name, 0},
      {CrashOpKind::kUnlink, "/", file_name, "", 0},
      {CrashOpKind::kRename, dir_path, "cs_moved", "/" + file_name, 0},
  };
}

bool judge_consistent(LustreCluster& cluster) {
  OnlineChecker judge(cluster, {});
  judge.bootstrap();
  return judge.check().report.consistent();
}

bool path_resolves(const LustreCluster& cluster, const std::string& path) {
  try {
    (void)cluster.resolve(path);
    return true;
  } catch (const ClusterError&) {
    return false;
  }
}

TEST(CrashStateDeterminismTest, TraceIsStableAndMatchesReplicas) {
  const LustreCluster base = make_base();
  const CrashStateEnumerator enumerator(base);
  for (const CrashOpSpec& spec : make_specs(base)) {
    const auto first = enumerator.trace(spec);
    const auto second = enumerator.trace(spec);
    EXPECT_EQ(first.points, second.points) << spec.describe();
    EXPECT_EQ(first.touched, second.touched) << spec.describe();
    ASSERT_FALSE(first.points.empty()) << spec.describe();
    ASSERT_FALSE(first.touched.empty()) << spec.describe();

    for (std::size_t k = 0; k < first.points.size(); ++k) {
      const CrashReplica replica = enumerator.run_with_crash(spec, k);
      EXPECT_TRUE(replica.crashed);
      EXPECT_EQ(replica.point, first.points[k]) << spec.describe();
    }
    const CrashReplica full = enumerator.run_with_crash(
        spec, CrashStateEnumerator::kRunToCompletion);
    EXPECT_FALSE(full.crashed) << spec.describe();
  }
}

TEST(CrashStateDeterminismTest, SameCrashIndexIsBitIdentical) {
  const LustreCluster base = make_base();
  // Two independent enumerators over the same base must materialize
  // byte-identical states for every (spec, crash index) — reproducing a
  // campaign state from its plan depends on it.
  const CrashStateEnumerator first(base);
  const CrashStateEnumerator second(base);
  EXPECT_EQ(first.base_image(), second.base_image());
  for (const CrashOpSpec& spec : make_specs(base)) {
    const auto trace = first.trace(spec);
    for (const std::size_t k :
         {std::size_t{0}, trace.points.size() / 2, trace.points.size() - 1}) {
      CrashReplica a = first.run_with_crash(spec, k);
      CrashReplica b = second.run_with_crash(spec, k);
      a.cluster.attach_changelog(nullptr);
      b.cluster.attach_changelog(nullptr);
      EXPECT_EQ(serialize_cluster(a.cluster), serialize_cluster(b.cluster))
          << spec.describe() << " @" << k;
    }
  }
}

TEST(CrashRecoveryTest, EveryCrashPrefixRecoversToConsistency) {
  const LustreCluster base = make_base();
  const CrashStateEnumerator enumerator(base);
  for (const CrashOpSpec& spec : make_specs(base)) {
    const auto trace = enumerator.trace(spec);
    for (std::size_t k = 0; k < trace.points.size(); ++k) {
      CrashReplica replica = enumerator.run_with_crash(spec, k);
      const RecoveryAction action = recover_interrupted(
          replica.cluster, *replica.log, replica.pre_op_cursor, spec);
      if (action == RecoveryAction::kRolledBack) {
        // The op vanished entirely; resuming means simply re-running
        // it, which must succeed and append to the log as usual.
        const std::uint64_t before = replica.log->next_index();
        (void)apply_crash_op(replica.cluster, spec);
        EXPECT_GT(replica.log->next_index(), before)
            << spec.describe() << " @" << trace.points[k];
      }

      // Whatever the recovery direction, the namespace now reflects the
      // completed op.
      const std::string dest = join(spec.parent_path, spec.name);
      switch (spec.kind) {
        case CrashOpKind::kMkdir:
        case CrashOpKind::kCreate:
          EXPECT_TRUE(path_resolves(replica.cluster, dest))
              << spec.describe() << " @" << trace.points[k];
          break;
        case CrashOpKind::kHardLink:
          EXPECT_TRUE(path_resolves(replica.cluster, dest));
          EXPECT_TRUE(path_resolves(replica.cluster, spec.src_path));
          break;
        case CrashOpKind::kUnlink:
          EXPECT_FALSE(path_resolves(replica.cluster, dest))
              << spec.describe() << " @" << trace.points[k];
          break;
        case CrashOpKind::kRename:
          EXPECT_TRUE(path_resolves(replica.cluster, dest));
          EXPECT_FALSE(path_resolves(replica.cluster, spec.src_path));
          break;
      }

      replica.cluster.attach_changelog(nullptr);
      EXPECT_TRUE(judge_consistent(replica.cluster))
          << spec.describe() << " @" << trace.points[k] << " after "
          << to_string(action);
    }
  }
}

TEST(CrashRecoveryTest, CompletedOpNeedsNoRecovery) {
  const LustreCluster base = make_base();
  const CrashStateEnumerator enumerator(base);
  for (const CrashOpSpec& spec : make_specs(base)) {
    CrashReplica replica = enumerator.run_with_crash(
        spec, CrashStateEnumerator::kRunToCompletion);
    ASSERT_FALSE(replica.crashed);
    const std::vector<std::uint8_t> before =
        serialize_cluster(replica.cluster);
    const RecoveryAction action = recover_interrupted(
        replica.cluster, *replica.log, replica.pre_op_cursor, spec);
    EXPECT_EQ(action, RecoveryAction::kNone) << spec.describe();
    EXPECT_EQ(serialize_cluster(replica.cluster), before)
        << spec.describe() << ": recovery of a completed op must be a no-op";
  }
}

TEST(CrashStateConvergenceTest, FaultyRankConvergesOnEveryPrefix) {
  // The crash matrix gates this over thousands of states; this is the
  // always-on slice — every prefix of every op on one base.
  const LustreCluster base = make_base();
  const CrashStateEnumerator enumerator(base);
  for (const CrashOpSpec& spec : make_specs(base)) {
    const auto trace = enumerator.trace(spec);
    for (std::size_t k = 0; k < trace.points.size(); ++k) {
      CrashReplica replica = enumerator.run_with_crash(spec, k);
      replica.cluster.attach_changelog(nullptr);
      OnlineChecker checker(replica.cluster, {});
      checker.bootstrap();
      const ConvergenceResult result =
          repair_until_clean(replica.cluster, checker, 6);
      EXPECT_TRUE(result.clean)
          << spec.describe() << " @" << trace.points[k] << ": "
          << result.residual_findings << " residual finding(s)";
    }
  }
}

}  // namespace
}  // namespace faultyrank
