// Acceptance campaign for degraded checking (ISSUE: one OST crashed
// mid-scan): the check completes, coverage drops below 100%, findings
// whose evidence is unobservable are labeled unverifiable with no
// repair, every verifiable finding involves an injected victim (zero
// false positives), and faults whose evidence survived are recalled.
#include <gtest/gtest.h>

#include "checker/checker.h"
#include "faults/injector.h"
#include "pfs/server.h"
#include "testing/fixtures.h"

namespace faultyrank {
namespace {

/// Could any of this object's evidence live on the lost sequence? True
/// when the object itself, or any stripe its MDT inode references, is
/// in the lost FID space.
bool touches_lost(const LustreCluster& cluster, const Fid& fid,
                  std::uint64_t lost_seq) {
  if (fid.seq == lost_seq) return true;
  const Inode* inode = cluster.stat(fid);
  if (inode == nullptr) return false;
  if (inode->lov_ea.has_value()) {
    for (const auto& slot : inode->lov_ea->stripes) {
      if (slot.stripe.seq == lost_seq) return true;
    }
  }
  return false;
}

class DegradedPrecisionTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(DegradedPrecisionTest, CrashedOstDegradesWithoutFalsePositives) {
  LustreCluster cluster = testing::make_populated_cluster(350, GetParam(), 8);
  FaultInjector injector(cluster, GetParam() * 17 + 3);
  const std::vector<GroundTruth> truths = injector.inject_campaign(6);

  const std::uint64_t lost_seq = cluster.osts()[2].fids.seq();
  OpFaultConfig fault_config;
  fault_config.crash_after_reads["oss2"] = 5;
  OpFaultSchedule faults(fault_config);

  CheckerConfig config;
  config.faults = &faults;
  // Must not throw: the crashed OST degrades the check, not aborts it.
  const CheckerResult result = run_checker(cluster, config);

  EXPECT_LT(result.coverage.coverage, 1.0);
  ASSERT_EQ(result.failed_servers.size(), 1u);
  EXPECT_EQ(result.failed_servers[0], "oss2");
  ASSERT_EQ(result.coverage.lost_sequences.size(), 1u);
  EXPECT_EQ(result.coverage.lost_sequences[0], lost_seq);

  // Unverifiable findings exist (files striped onto the dead OST) and
  // never carry a repair — re-check when the server is back, don't
  // "fix" metadata that is merely unobservable.
  EXPECT_GT(result.report.unverifiable_count(), 0u);
  for (const Finding& finding : result.report.findings) {
    if (finding.unverifiable) {
      EXPECT_EQ(finding.repair.kind, RepairKind::kNone)
          << "unverifiable finding recommends a repair: " << finding.note;
    }
  }

  // Zero false positives among verifiable findings: each must involve
  // an injected victim as an endpoint (same precision criterion as the
  // full-coverage campaign).
  for (const Finding& finding : result.report.findings) {
    if (finding.unverifiable) continue;
    bool involves_a_victim = false;
    for (const GroundTruth& truth : truths) {
      for (const Fid& fid : {truth.victim, truth.current}) {
        if (finding.convicted_object == fid || finding.source == fid ||
            finding.target == fid || finding.repair.target == fid ||
            finding.repair.value == fid) {
          involves_a_victim = true;
        }
      }
    }
    EXPECT_TRUE(involves_a_victim)
        << "verifiable finding about unrelated object: convicted="
        << finding.convicted_object.to_string()
        << " source=" << finding.source.to_string()
        << " target=" << finding.target.to_string() << " (" << finding.note
        << ")";
  }

  // Recall over the surviving evidence: a fault is only exempt when its
  // objects (or their stripes) lie in the lost FID space.
  std::size_t checked = 0;
  for (const GroundTruth& truth : truths) {
    if (touches_lost(cluster, truth.victim, lost_seq) ||
        touches_lost(cluster, truth.current, lost_seq)) {
      continue;
    }
    ++checked;
    EXPECT_TRUE(evaluate_report(result.report, truth).detected)
        << to_string(truth.scenario);
  }
  // The seeds are chosen so the campaign is not vacuous: most faults
  // land clear of the single crashed OST.
  EXPECT_GT(checked, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DegradedPrecisionTest,
                         ::testing::Values(951, 952, 953, 954));

}  // namespace
}  // namespace faultyrank
