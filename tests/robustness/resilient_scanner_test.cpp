// Resilient scanner semantics: the fault-free resilient walk is
// bit-identical to the plain walk, retries are charged to virtual time,
// quarantine skips exactly the unreadable inodes, and crash/deadline
// collapse a scan to kFailed without leaking half a server.
#include <gtest/gtest.h>

#include "faults/op_faults.h"
#include "scanner/scanner.h"
#include "testing/fixtures.h"

namespace faultyrank {
namespace {

TEST(ResilientScannerTest, ZeroRateScheduleMatchesPlainScanBitForBit) {
  const LustreCluster cluster = testing::make_populated_cluster(120, 21, 3);
  const OpFaultConfig config;  // all rates zero
  OpFaultSchedule faults(config);

  const ScanResult plain_mdt = scan_mdt(cluster.mdt());
  const ScanResult fault_mdt =
      scan_mdt(cluster.mdt(), DiskModel::ssd(), &faults.server("mds0"));
  EXPECT_EQ(plain_mdt.graph.serialize(), fault_mdt.graph.serialize());
  EXPECT_EQ(plain_mdt.sim_seconds, fault_mdt.sim_seconds);
  EXPECT_EQ(plain_mdt.inodes_scanned, fault_mdt.inodes_scanned);
  EXPECT_EQ(fault_mdt.status, ScanStatus::kComplete);
  EXPECT_EQ(fault_mdt.retries, 0u);

  const ScanResult plain_ost = scan_ost(cluster.osts()[0]);
  const ScanResult fault_ost =
      scan_ost(cluster.osts()[0], DiskModel::hdd(), &faults.server("oss0"));
  EXPECT_EQ(plain_ost.graph.serialize(), fault_ost.graph.serialize());
  EXPECT_EQ(plain_ost.sim_seconds, fault_ost.sim_seconds);
  EXPECT_EQ(fault_ost.status, ScanStatus::kComplete);
}

TEST(ResilientScannerTest, RetriesRecoverEveryInodeAndChargeSimTime) {
  const LustreCluster cluster = testing::make_populated_cluster(120, 22, 3);
  OpFaultConfig config;
  config.transient_eio_rate = 1.0;  // every inode faults at least once
  config.max_fault_attempts = 2;
  OpFaultSchedule faults(config);
  RetryPolicy retry;
  retry.max_attempts = 4;  // budget > max_fault_attempts: always recovers

  const ScanResult plain = scan_ost(cluster.osts()[1]);
  const ScanResult result =
      scan_ost(cluster.osts()[1], DiskModel::hdd(), &faults.server("oss1"),
               retry);
  EXPECT_EQ(result.status, ScanStatus::kComplete);
  EXPECT_TRUE(result.quarantined.empty());
  // Same graph as the fault-free scan — the faults were all transient.
  EXPECT_EQ(plain.graph.serialize(), result.graph.serialize());
  EXPECT_GT(result.retries, 0u);
  EXPECT_GT(result.read_attempts, result.inodes_scanned);
  // Backoff pauses and re-read seeks cost virtual time, never wall time.
  EXPECT_GT(result.sim_seconds, plain.sim_seconds);
}

TEST(ResilientScannerTest, ExhaustedRetriesQuarantineButTheWalkContinues) {
  const LustreCluster cluster = testing::make_populated_cluster(120, 23, 3);
  OpFaultConfig config;
  config.transient_eio_rate = 0.3;
  config.max_fault_attempts = 2;
  OpFaultSchedule faults(config);
  RetryPolicy retry;
  retry.max_attempts = 1;  // no retries: every faulted inode is lost

  const ScanResult plain = scan_ost(cluster.osts()[0]);
  const ScanResult result = scan_ost(cluster.osts()[0], DiskModel::hdd(),
                                     &faults.server("oss0"), retry);
  ASSERT_EQ(result.status, ScanStatus::kDegraded);
  EXPECT_FALSE(result.quarantined.empty());
  // Quarantine skips exactly the faulted inodes; the rest are scanned.
  EXPECT_EQ(result.inodes_scanned + result.quarantined.size(),
            plain.inodes_scanned);
  EXPECT_GT(result.inodes_scanned, 0u);
}

TEST(ResilientScannerTest, CrashYieldsFailedScanWithEmptyLabeledGraph) {
  const LustreCluster cluster = testing::make_populated_cluster(120, 24, 3);
  OpFaultConfig config;
  config.crash_after_reads["oss2"] = 5;
  OpFaultSchedule faults(config);

  const ScanResult result =
      scan_ost(cluster.osts()[2], DiskModel::hdd(), &faults.server("oss2"));
  EXPECT_EQ(result.status, ScanStatus::kFailed);
  EXPECT_EQ(result.graph.server, "oss2");
  EXPECT_TRUE(result.graph.vertices.empty());
  EXPECT_EQ(result.inodes_scanned, 0u);
  EXPECT_FALSE(result.error.empty());
  EXPECT_GT(result.sim_seconds, 0.0);
}

TEST(ResilientScannerTest, DeadlineFailsTheScanInsteadOfRunningForever) {
  const LustreCluster cluster = testing::make_populated_cluster(120, 25, 3);
  const OpFaultConfig config;  // no faults needed; the clock alone trips
  OpFaultSchedule faults(config);
  RetryPolicy retry;
  retry.deadline_seconds = 0.0;

  const ScanResult result = scan_mdt(cluster.mdt(), DiskModel::ssd(),
                                     &faults.server("mds0"), retry);
  EXPECT_EQ(result.status, ScanStatus::kFailed);
  EXPECT_EQ(result.error, "scan deadline exceeded");
  EXPECT_TRUE(result.graph.vertices.empty());
}

TEST(ResilientScannerTest, ClusterScanReportsFailedSlotWithoutThrowing) {
  const LustreCluster cluster = testing::make_populated_cluster(120, 26, 3);
  OpFaultConfig config;
  config.crash_after_reads["oss1"] = 3;
  OpFaultSchedule faults(config);

  const ClusterScan scan =
      scan_cluster(cluster, nullptr, DiskModel::ssd(), DiskModel::hdd(),
                   &faults);
  ASSERT_EQ(scan.results.size(), 4u);  // 1 MDT + 3 OSTs
  EXPECT_EQ(scan.results[0].status, ScanStatus::kComplete);
  EXPECT_EQ(scan.results[2].status, ScanStatus::kFailed);  // oss1
  EXPECT_EQ(scan.results[1].status, ScanStatus::kComplete);
  EXPECT_EQ(scan.results[3].status, ScanStatus::kComplete);
}

}  // namespace
}  // namespace faultyrank
