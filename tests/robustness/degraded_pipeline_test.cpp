// Degraded-coverage pipeline: a crashed server shrinks coverage instead
// of aborting the run, and strict mode names every failed server.
#include <gtest/gtest.h>

#include <algorithm>

#include "aggregator/aggregator.h"
#include "pfs/server.h"
#include "testing/fixtures.h"

namespace faultyrank {
namespace {

TEST(DegradedPipelineTest, StrictModeNamesEveryFailedServer) {
  const LustreCluster cluster = testing::make_populated_cluster(150, 31, 4);
  OpFaultConfig fault_config;
  fault_config.crash_after_reads["oss0"] = 4;
  fault_config.crash_after_reads["oss2"] = 9;
  OpFaultSchedule faults(fault_config);

  PipelineConfig config;
  config.faults = &faults;
  config.allow_degraded = false;
  try {
    (void)scan_and_aggregate(cluster, config);
    FAIL() << "strict mode must throw when servers fail";
  } catch (const PipelineError& error) {
    // Both crashes are reported — the first failure does not discard
    // the second server's outcome.
    ASSERT_EQ(error.failed_servers().size(), 2u);
    EXPECT_EQ(error.failed_servers()[0], "oss0");
    EXPECT_EQ(error.failed_servers()[1], "oss2");
    EXPECT_NE(std::string(error.what()).find("oss0"), std::string::npos);
    EXPECT_NE(std::string(error.what()).find("oss2"), std::string::npos);
  }
}

TEST(DegradedPipelineTest, CrashedServerDegradesCoverageInsteadOfAborting) {
  const LustreCluster cluster = testing::make_populated_cluster(150, 32, 4);

  // Baseline: full coverage.
  const PipelineResult full = scan_and_aggregate(cluster, PipelineConfig{});
  EXPECT_EQ(full.agg.coverage.coverage, 1.0);
  EXPECT_TRUE(full.agg.coverage.complete());
  EXPECT_TRUE(full.failed_servers.empty());

  OpFaultConfig fault_config;
  fault_config.crash_after_reads["oss1"] = 6;
  OpFaultSchedule faults(fault_config);
  PipelineConfig config;
  config.faults = &faults;

  const PipelineResult degraded = scan_and_aggregate(cluster, config);
  // 1 MDT + 4 OSTs, one lost: 4/5 coverage.
  EXPECT_DOUBLE_EQ(degraded.agg.coverage.coverage, 4.0 / 5.0);
  ASSERT_EQ(degraded.failed_servers.size(), 1u);
  EXPECT_EQ(degraded.failed_servers[0], "oss1");

  // The lost FID space is exactly oss1's sequence.
  ASSERT_EQ(degraded.agg.coverage.lost_sequences.size(), 1u);
  EXPECT_EQ(degraded.agg.coverage.lost_sequences[0],
            cluster.osts()[1].fids.seq());

  // The unified graph is built from the survivors only. Lost objects
  // that surviving metadata still references remain visible as phantom
  // (unscanned) vertices, but every edge the crashed OST would have
  // contributed — its ObjParent back-pointers — is gone.
  const std::uint64_t lost_edges =
      scan_ost(cluster.osts()[1]).graph.edges.size();
  EXPECT_GT(lost_edges, 0u);
  EXPECT_EQ(degraded.agg.graph.edge_count() + lost_edges,
            full.agg.graph.edge_count());
  EXPECT_LE(degraded.agg.graph.vertex_count(), full.agg.graph.vertex_count());
}

TEST(DegradedPipelineTest, QuarantinedInodesFlowIntoCoverage) {
  const LustreCluster cluster = testing::make_populated_cluster(150, 33, 4);
  OpFaultConfig fault_config;
  fault_config.transient_eio_rate = 0.2;
  fault_config.max_fault_attempts = 2;
  OpFaultSchedule faults(fault_config);
  PipelineConfig config;
  config.faults = &faults;
  config.retry.max_attempts = 1;  // exhaust immediately → quarantine

  const PipelineResult result = scan_and_aggregate(cluster, config);
  // No server failed outright, so server coverage stays 1.0 ...
  EXPECT_EQ(result.agg.coverage.coverage, 1.0);
  EXPECT_TRUE(result.failed_servers.empty());
  // ... but the quarantined inodes are recorded, so the coverage is not
  // "complete" and the detector can treat those FIDs as unobservable.
  EXPECT_FALSE(result.agg.coverage.quarantined.empty());
  EXPECT_FALSE(result.agg.coverage.complete());
  for (const Fid& fid : result.agg.coverage.quarantined) {
    EXPECT_TRUE(result.agg.coverage.fid_lost(fid));
  }
}

TEST(DegradedPipelineTest, LegacyEntryPointStaysStrictAndFaultFree) {
  const LustreCluster cluster = testing::make_populated_cluster(150, 34, 4);
  const PipelineResult result = scan_and_aggregate(cluster);
  EXPECT_TRUE(result.failed_servers.empty());
  EXPECT_EQ(result.agg.coverage.coverage, 1.0);
  EXPECT_EQ(result.servers_resumed, 0u);
  for (const ScanResult& scan : result.scan.results) {
    EXPECT_EQ(scan.status, ScanStatus::kComplete);
  }
}

}  // namespace
}  // namespace faultyrank
