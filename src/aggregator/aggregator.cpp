#include "aggregator/aggregator.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/bounded_queue.h"
#include "common/timer.h"

namespace faultyrank {

namespace {

/// Moves one scan result onto the MDS: local partials join directly,
/// remote ones cross the wire (encode, count the bytes, decode).
void decode_partial(const ScanResult& scan, PartialGraph& out,
                    std::uint64_t& wire_bytes) {
  if (scan.local_to_mds) {
    out = scan.graph;
    return;
  }
  const auto bytes = scan.graph.serialize();
  wire_bytes = bytes.size();
  out = PartialGraph::deserialize(bytes);
}

/// Fills the virtual-time transfer accounting. Pure arithmetic over the
/// per-scanner sim times and wire sizes, so batch and streaming paths
/// (and any thread count) report identical numbers.
void account_transfers(std::span<const ScanResult> scans,
                       std::span<const std::uint64_t> wire_bytes,
                       const NetModel& net, AggregationResult& result) {
  double slowest_scan = 0.0;
  std::vector<std::size_t> remote;
  for (std::size_t i = 0; i < scans.size(); ++i) {
    slowest_scan = std::max(slowest_scan, scans[i].sim_seconds);
    if (!scans[i].local_to_mds) {
      remote.push_back(i);
      result.transferred_bytes += wire_bytes[i];
      result.sim_transfer_seconds += net.transfer(wire_bytes[i]);
    }
  }
  // Pipelined model: each transfer becomes ready when its scanner
  // finishes; the single MDS ingress link serves them in readiness
  // order (ties broken by server index for determinism).
  std::sort(remote.begin(), remote.end(),
            [&](std::size_t a, std::size_t b) {
              return scans[a].sim_seconds != scans[b].sim_seconds
                         ? scans[a].sim_seconds < scans[b].sim_seconds
                         : a < b;
            });
  double link_free = 0.0;
  for (const std::size_t i : remote) {
    const double start = std::max(link_free, scans[i].sim_seconds);
    link_free = start + net.transfer(wire_bytes[i]);
  }
  result.sim_pipeline_seconds = std::max(slowest_scan, link_free);
}

}  // namespace

AggregationResult aggregate(std::span<const ScanResult> scans,
                            const NetModel& net, ThreadPool* pool) {
  WallTimer timer;
  AggregationResult result;

  std::vector<PartialGraph> partials(scans.size());
  std::vector<std::uint64_t> wire_bytes(scans.size(), 0);
  if (pool != nullptr && pool->size() > 1 && scans.size() > 1) {
    TaskGroup group(*pool);
    for (std::size_t i = 0; i < scans.size(); ++i) {
      group.submit([&scans, &partials, &wire_bytes, i] {
        decode_partial(scans[i], partials[i], wire_bytes[i]);
      });
    }
    group.wait();
  } else {
    for (std::size_t i = 0; i < scans.size(); ++i) {
      decode_partial(scans[i], partials[i], wire_bytes[i]);
    }
  }

  account_transfers(scans, wire_bytes, net, result);
  result.graph = UnifiedGraph::aggregate(partials, pool);
  result.wall_seconds = timer.seconds();
  return result;
}

PipelineResult scan_and_aggregate(const LustreCluster& cluster,
                                  ThreadPool* pool, const DiskModel& mdt_disk,
                                  const DiskModel& ost_disk,
                                  const NetModel& net) {
  WallTimer total_timer;
  PipelineResult out;
  ClusterScan& scan = out.scan;

  const std::size_t mdt_count = cluster.mdt_count();
  const std::size_t server_count = mdt_count + cluster.osts().size();
  scan.results.resize(server_count);
  std::vector<PartialGraph> partials(server_count);
  std::vector<std::uint64_t> wire_bytes(server_count, 0);
  double scan_wall = 0.0;

  if (pool != nullptr && pool->size() > 1 && server_count > 0) {
    // Scanners announce completion through a bounded queue; the caller
    // drains it and hands each finished partial straight to a decode
    // task, so wire decode overlaps the still-running scans.
    BoundedQueue<std::size_t> finished(
        std::max<std::size_t>(std::size_t{2}, pool->size()));
    TaskGroup scanners(*pool);
    TaskGroup decoders(*pool);
    for (std::size_t m = 0; m < mdt_count; ++m) {
      scanners.submit([&, m] {
        try {
          scan.results[m] = scan_mdt(cluster.mdt_server(m), mdt_disk);
        } catch (...) {
          finished.push(m);  // keep the consumer's pop count exact
          throw;
        }
        finished.push(m);
      });
    }
    for (std::size_t i = 0; i < cluster.osts().size(); ++i) {
      scanners.submit([&, i, mdt_count] {
        const std::size_t slot = mdt_count + i;
        try {
          scan.results[slot] = scan_ost(cluster.osts()[i], ost_disk);
        } catch (...) {
          finished.push(slot);
          throw;
        }
        finished.push(slot);
      });
    }
    for (std::size_t k = 0; k < server_count; ++k) {
      // The pop count equals the scanner count and the queue is never
      // closed here, so every pop yields a value.
      const std::size_t i = finished.pop().value();
      decoders.submit([&scan, &partials, &wire_bytes, i] {
        decode_partial(scan.results[i], partials[i], wire_bytes[i]);
      });
    }
    scan_wall = total_timer.seconds();  // every scanner has reported
    scanners.wait();                    // rethrows a failed scan
    decoders.wait();
  } else {
    for (std::size_t m = 0; m < mdt_count; ++m) {
      scan.results[m] = scan_mdt(cluster.mdt_server(m), mdt_disk);
    }
    for (std::size_t i = 0; i < cluster.osts().size(); ++i) {
      scan.results[mdt_count + i] = scan_ost(cluster.osts()[i], ost_disk);
    }
    scan_wall = total_timer.seconds();
    for (std::size_t i = 0; i < server_count; ++i) {
      decode_partial(scan.results[i], partials[i], wire_bytes[i]);
    }
  }

  scan.wall_seconds = scan_wall;
  for (const auto& result : scan.results) {
    // Each server scans its own disks concurrently; the cluster-level
    // virtual scan time is the slowest server.
    scan.sim_seconds = std::max(scan.sim_seconds, result.sim_seconds);
    scan.inodes_scanned += result.inodes_scanned;
  }

  account_transfers(scan.results, wire_bytes, net, out.agg);
  out.agg.graph = UnifiedGraph::aggregate(partials, pool);
  out.wall_seconds = total_timer.seconds();
  out.agg.wall_seconds = std::max(0.0, out.wall_seconds - scan_wall);
  return out;
}

}  // namespace faultyrank
