#include "aggregator/aggregator.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "aggregator/checkpoint.h"
#include "common/bounded_queue.h"
#include "common/timer.h"
#include "pfs/persistence.h"

namespace faultyrank {

namespace {

/// Moves one scan result onto the MDS: local partials join directly,
/// remote ones cross the wire (encode, count the bytes, decode).
void decode_partial(const ScanResult& scan, PartialGraph& out,
                    std::uint64_t& wire_bytes) {
  if (scan.local_to_mds) {
    out = scan.graph;
    return;
  }
  const auto bytes = scan.graph.serialize();
  wire_bytes = bytes.size();
  out = PartialGraph::deserialize(bytes);
}

/// Fills the virtual-time transfer accounting. Pure arithmetic over the
/// per-scanner sim times and wire sizes, so batch and streaming paths
/// (and any thread count) report identical numbers. Failed scans keep
/// their partial sim time in the scan stage (the crash was detected at
/// that point) but transfer nothing.
void account_transfers(std::span<const ScanResult> scans,
                       std::span<const std::uint64_t> wire_bytes,
                       const NetModel& net, AggregationResult& result) {
  double slowest_scan = 0.0;
  std::vector<std::size_t> remote;
  for (std::size_t i = 0; i < scans.size(); ++i) {
    slowest_scan = std::max(slowest_scan, scans[i].sim_seconds);
    if (scans[i].status == ScanStatus::kFailed) continue;
    if (!scans[i].local_to_mds) {
      remote.push_back(i);
      result.transferred_bytes += wire_bytes[i];
      result.sim_transfer_seconds += net.transfer(wire_bytes[i]);
    }
  }
  // Pipelined model: each transfer becomes ready when its scanner
  // finishes; the single MDS ingress link serves them in readiness
  // order (ties broken by server index for determinism).
  std::sort(remote.begin(), remote.end(),
            [&](std::size_t a, std::size_t b) {
              return scans[a].sim_seconds != scans[b].sim_seconds
                         ? scans[a].sim_seconds < scans[b].sim_seconds
                         : a < b;
            });
  double link_free = 0.0;
  for (const std::size_t i : remote) {
    const double start = std::max(link_free, scans[i].sim_seconds);
    link_free = start + net.transfer(wire_bytes[i]);
  }
  result.sim_pipeline_seconds = std::max(slowest_scan, link_free);
}

/// Unified graph from the surviving partials only, in slot order —
/// deterministic for any pool size, and identical between a resumed
/// and an uninterrupted run (both see the same survivors).
UnifiedGraph merge_survivors(std::span<const ScanResult> scans,
                             std::vector<PartialGraph>& partials,
                             ThreadPool* pool) {
  std::vector<PartialGraph> survivors;
  survivors.reserve(partials.size());
  for (std::size_t i = 0; i < scans.size(); ++i) {
    if (scans[i].status != ScanStatus::kFailed) {
      survivors.push_back(std::move(partials[i]));
    }
  }
  return UnifiedGraph::aggregate(survivors, pool);
}

void fill_coverage_fraction(std::span<const ScanResult> scans,
                            CoverageInfo& coverage) {
  std::size_t ok = 0;
  for (const ScanResult& scan : scans) {
    if (scan.status == ScanStatus::kFailed) continue;
    ++ok;
    for (const Fid& fid : scan.quarantined) coverage.quarantined.insert(fid);
  }
  coverage.coverage =
      scans.empty() ? 1.0
                    : static_cast<double>(ok) / static_cast<double>(scans.size());
}

}  // namespace

AggregationResult aggregate(std::span<const ScanResult> scans,
                            const NetModel& net, ThreadPool* pool) {
  WallTimer timer;
  AggregationResult result;

  std::vector<PartialGraph> partials(scans.size());
  std::vector<std::uint64_t> wire_bytes(scans.size(), 0);
  if (pool != nullptr && pool->size() > 1 && scans.size() > 1) {
    TaskGroup group(*pool);
    for (std::size_t i = 0; i < scans.size(); ++i) {
      if (scans[i].status == ScanStatus::kFailed) continue;
      group.submit([&scans, &partials, &wire_bytes, i] {
        decode_partial(scans[i], partials[i], wire_bytes[i]);
      });
    }
    group.wait();
  } else {
    for (std::size_t i = 0; i < scans.size(); ++i) {
      if (scans[i].status == ScanStatus::kFailed) continue;
      decode_partial(scans[i], partials[i], wire_bytes[i]);
    }
  }

  account_transfers(scans, wire_bytes, net, result);
  fill_coverage_fraction(scans, result.coverage);
  result.graph = merge_survivors(scans, partials, pool);
  result.wall_seconds = timer.seconds();
  return result;
}

PipelineResult scan_and_aggregate(const LustreCluster& cluster,
                                  const PipelineConfig& config) {
  WallTimer total_timer;
  PipelineResult out;
  ClusterScan& scan = out.scan;
  ThreadPool* pool = config.pool;

  const std::size_t mdt_count = cluster.mdt_count();
  const std::size_t server_count = mdt_count + cluster.osts().size();
  scan.results.resize(server_count);

  std::vector<std::string> labels(server_count);
  for (std::size_t m = 0; m < mdt_count; ++m) {
    labels[m] = cluster.mdt_server(m).image.label();
  }
  for (std::size_t i = 0; i < cluster.osts().size(); ++i) {
    labels[mdt_count + i] = cluster.osts()[i].image.label();
  }

  // Checkpoint prefill: slots completed by a previous (interrupted) run
  // are restored instead of rescanned. A missing file means a fresh
  // run; a corrupt or mismatched file is a real error.
  const bool checkpointing = !config.checkpoint_path.empty();
  ScanCheckpoint ckpt;
  std::vector<char> prefilled(server_count, 0);
  if (checkpointing) {
    std::vector<std::uint8_t> bytes;
    bool have_checkpoint = true;
    try {
      bytes = read_file_bytes(config.checkpoint_path);
    } catch (const PersistenceError&) {
      have_checkpoint = false;
    }
    if (have_checkpoint) {
      ScanCheckpoint loaded = deserialize_checkpoint(bytes);
      if (loaded.labels != labels) {
        throw PersistenceError("checkpoint " + config.checkpoint_path +
                               " does not match this cluster's servers");
      }
      if (loaded.epoch != config.checkpoint_epoch) {
        // Same cluster, older content: the namespace mutated between
        // the interruption and this resume. Those scans describe a
        // state that no longer exists — resuming them would mix two
        // points in time into one graph. Discard and rescan everything.
        out.checkpoint_discarded = true;
      } else {
        for (std::size_t i = 0; i < server_count; ++i) {
          if (loaded.results[i].has_value()) {
            scan.results[i] = std::move(*loaded.results[i]);
            prefilled[i] = 1;
            ++out.servers_resumed;
          }
        }
      }
    }
    ckpt.epoch = config.checkpoint_epoch;
    ckpt.labels = labels;
    ckpt.results.resize(server_count);
    for (std::size_t i = 0; i < server_count; ++i) {
      if (prefilled[i]) ckpt.results[i] = scan.results[i];
    }
  }

  // Fault schedules resolved here, on the submitting thread: each scan
  // task then touches only its own ServerFaultSchedule.
  std::vector<ServerFaultSchedule*> schedules(server_count, nullptr);
  if (config.faults != nullptr) {
    for (std::size_t i = 0; i < server_count; ++i) {
      schedules[i] = &config.faults->server(labels[i]);
    }
  }

  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < server_count; ++i) {
    if (!prefilled[i]) pending.push_back(i);
  }

  std::vector<PartialGraph> partials(server_count);
  std::vector<std::uint64_t> wire_bytes(server_count, 0);
  double scan_wall = 0.0;

  // Runs one server's scan; operational faults come back as status
  // kFailed from the scanner itself, and anything unexpected is
  // captured the same way so one bad server cannot discard the others'
  // completed work.
  const auto scan_slot = [&](std::size_t slot) {
    try {
      scan.results[slot] =
          slot < mdt_count
              ? scan_mdt(cluster.mdt_server(slot), config.mdt_disk,
                         schedules[slot], config.retry)
              : scan_ost(cluster.osts()[slot - mdt_count], config.ost_disk,
                         schedules[slot], config.retry);
    } catch (const std::exception& error) {
      ScanResult failed;
      failed.graph.server = labels[slot];
      failed.status = ScanStatus::kFailed;
      failed.error = error.what();
      scan.results[slot] = std::move(failed);
    }
  };

  // Consumer-side completion hook: fold the result into the checkpoint
  // and honor the interrupt test hook. Returns false to stop consuming.
  std::size_t new_completions = 0;
  std::size_t since_save = 0;
  const auto on_complete = [&](std::size_t slot) -> bool {
    ++new_completions;
    if (checkpointing && scan.results[slot].status != ScanStatus::kFailed) {
      ckpt.results[slot] = scan.results[slot];
      if (++since_save >= config.checkpoint_every) {
        save_checkpoint(ckpt, config.checkpoint_path);
        since_save = 0;
      }
    }
    return new_completions < config.interrupt_after_servers;
  };
  const auto interrupt = [&]() {
    if (checkpointing && since_save > 0) {
      save_checkpoint(ckpt, config.checkpoint_path);
    }
    throw PipelineInterrupted(
        "pipeline interrupted after " + std::to_string(new_completions) +
        " scans" +
        (checkpointing ? " (checkpoint: " + config.checkpoint_path + ")"
                       : ""));
  };

  if (pool != nullptr && pool->size() > 1 && !pending.empty()) {
    // Scanners announce completion through a bounded queue; the caller
    // drains it and hands each finished partial straight to a decode
    // task, so wire decode overlaps the still-running scans.
    BoundedQueue<std::size_t> finished(
        std::max<std::size_t>(std::size_t{2}, pool->size()));
    TaskGroup scanners(*pool);
    TaskGroup decoders(*pool);
    // Prefilled slots are ready immediately — decode them while the
    // rescans run.
    for (std::size_t i = 0; i < server_count; ++i) {
      if (prefilled[i] && scan.results[i].status != ScanStatus::kFailed) {
        decoders.submit([&scan, &partials, &wire_bytes, i] {
          decode_partial(scan.results[i], partials[i], wire_bytes[i]);
        });
      }
    }
    for (const std::size_t slot : pending) {
      scanners.submit([&, slot] {
        scan_slot(slot);
        finished.push(slot);
      });
    }
    bool keep_going = true;
    for (std::size_t k = 0; k < pending.size() && keep_going; ++k) {
      // The pop count equals the scanner count and the queue is only
      // closed on the interrupt path, so every pop yields a value.
      const std::size_t i = finished.pop().value();
      if (scan.results[i].status != ScanStatus::kFailed) {
        decoders.submit([&scan, &partials, &wire_bytes, i] {
          decode_partial(scan.results[i], partials[i], wire_bytes[i]);
        });
      }
      keep_going = on_complete(i);
    }
    if (!keep_going) {
      // Unblock any scanner still waiting to push, then unwind; the
      // task groups drain (without rethrow) in their destructors.
      finished.close();
      interrupt();
    }
    scan_wall = total_timer.seconds();  // every scanner has reported
    scanners.wait();
    decoders.wait();
  } else {
    for (const std::size_t slot : pending) {
      scan_slot(slot);
      if (!on_complete(slot)) interrupt();
    }
    scan_wall = total_timer.seconds();
    for (std::size_t i = 0; i < server_count; ++i) {
      if (scan.results[i].status != ScanStatus::kFailed) {
        decode_partial(scan.results[i], partials[i], wire_bytes[i]);
      }
    }
  }

  scan.wall_seconds = scan_wall;
  for (const auto& result : scan.results) {
    // Each server scans its own disks concurrently; the cluster-level
    // virtual scan time is the slowest server.
    scan.sim_seconds = std::max(scan.sim_seconds, result.sim_seconds);
    scan.inodes_scanned += result.inodes_scanned;
  }

  // Coverage roll-up: which servers (and so which FID sequences) were
  // lost, which inodes were quarantined on survivors.
  CoverageInfo& coverage = out.agg.coverage;
  for (std::size_t i = 0; i < server_count; ++i) {
    if (scan.results[i].status != ScanStatus::kFailed) continue;
    out.failed_servers.push_back(labels[i]);
    coverage.add_lost_sequence(i < mdt_count
                                   ? cluster.mdt_server(i).fids.seq()
                                   : cluster.osts()[i - mdt_count].fids.seq());
  }
  fill_coverage_fraction(scan.results, coverage);

  if (!out.failed_servers.empty() && !config.allow_degraded) {
    std::string message = "scan failed on";
    for (std::size_t i = 0; i < server_count; ++i) {
      if (scan.results[i].status != ScanStatus::kFailed) continue;
      message += " " + labels[i] + " (" + scan.results[i].error + ")";
    }
    throw PipelineError(message, std::move(out.failed_servers));
  }

  account_transfers(scan.results, wire_bytes, config.net, out.agg);
  out.agg.graph = merge_survivors(scan.results, partials, pool);
  out.wall_seconds = total_timer.seconds();
  out.agg.wall_seconds = std::max(0.0, out.wall_seconds - scan_wall);
  return out;
}

PipelineResult scan_and_aggregate(const LustreCluster& cluster,
                                  ThreadPool* pool, const DiskModel& mdt_disk,
                                  const DiskModel& ost_disk,
                                  const NetModel& net) {
  PipelineConfig config;
  config.pool = pool;
  config.mdt_disk = mdt_disk;
  config.ost_disk = ost_disk;
  config.net = net;
  config.allow_degraded = false;
  return scan_and_aggregate(cluster, config);
}

}  // namespace faultyrank
