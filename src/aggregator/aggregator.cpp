#include "aggregator/aggregator.h"

#include <vector>

#include "common/timer.h"

namespace faultyrank {

AggregationResult aggregate(std::span<const ScanResult> scans,
                            const NetModel& net) {
  WallTimer timer;
  AggregationResult result;

  std::vector<PartialGraph> partials;
  partials.reserve(scans.size());
  for (const ScanResult& scan : scans) {
    if (scan.local_to_mds) {
      partials.push_back(scan.graph);
    } else {
      // Remote partial graphs cross the wire: encode, charge the
      // transfer, decode on the MDS side.
      const auto bytes = scan.graph.serialize();
      result.transferred_bytes += bytes.size();
      result.sim_transfer_seconds += net.transfer(bytes.size());
      partials.push_back(PartialGraph::deserialize(bytes));
    }
  }

  result.graph = UnifiedGraph::aggregate(partials);
  result.wall_seconds = timer.seconds();
  return result;
}

}  // namespace faultyrank
