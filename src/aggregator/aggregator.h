// The MDS-side aggregator (paper §IV-B).
//
// Every OSS scanner ships its partial graph to the MDS in one bulk
// transfer (serialized through the real wire format — the bytes are
// actually encoded and decoded, not just counted); the MDS partial
// graph joins locally. The aggregator then merges all partial graphs,
// remaps 128-bit FIDs to dense GIDs, and builds the forward + reversed
// CSR with the pairing analysis — everything FaultyRank needs.
#pragma once

#include <cstdint>
#include <span>

#include "common/sim_clock.h"
#include "graph/unified_graph.h"
#include "scanner/scanner.h"

namespace faultyrank {

struct AggregationResult {
  UnifiedGraph graph;
  /// Virtual network time: all OSS transfers land on the MDS ingress
  /// link, so their byte counts serialize (latency counted once per
  /// transfer).
  double sim_transfer_seconds = 0.0;
  /// Measured time for decode + merge + FID remap + CSR build.
  double wall_seconds = 0.0;
  std::uint64_t transferred_bytes = 0;
};

/// Aggregates a cluster scan into the unified graph.
[[nodiscard]] AggregationResult aggregate(std::span<const ScanResult> scans,
                                          const NetModel& net = {});

}  // namespace faultyrank
