// The MDS-side aggregator (paper §IV-B).
//
// Every OSS scanner ships its partial graph to the MDS in one bulk
// transfer (serialized through the real wire format — the bytes are
// actually encoded and decoded, not just counted); the MDS partial
// graph joins locally. The aggregator then merges all partial graphs,
// remaps 128-bit FIDs to dense GIDs, and builds the forward + reversed
// CSR with the pairing analysis — everything FaultyRank needs.
//
// Two entry points:
//   * aggregate()          — batch: takes a finished cluster scan.
//   * scan_and_aggregate() — streaming: runs the scanners itself and
//     decodes each partial as its scanner finishes (bounded-queue
//     handoff), overlapping wire decode with the remaining scans. The
//     produced graph and virtual-time numbers are identical to the
//     batch path; only wall time improves.
//
// Virtual-time attribution is pipelined in both paths (it is pure
// arithmetic over the per-scanner sim times): transfers serialize on
// the MDS ingress link, but each starts as soon as its scanner
// finishes, not after the slowest scanner.
#pragma once

#include <cstdint>
#include <span>

#include "common/sim_clock.h"
#include "common/thread_pool.h"
#include "graph/unified_graph.h"
#include "scanner/scanner.h"

namespace faultyrank {

struct AggregationResult {
  UnifiedGraph graph;
  /// Virtual network time of the transfers alone, summed back to back
  /// (latency counted once per transfer). Kept for the non-overlapped
  /// accounting; the pipelined number below is what Table VI uses.
  double sim_transfer_seconds = 0.0;
  /// Virtual finish time of the overlapped scan→transfer stage: each
  /// OSS transfer starts when its scanner completes, transfers
  /// serialize on the MDS ingress link in scanner-completion order, and
  /// the stage ends when both the slowest scanner and the last transfer
  /// are done. Always ≤ slowest-scan + sim_transfer_seconds.
  double sim_pipeline_seconds = 0.0;
  /// Measured time for decode + merge + FID remap + CSR build. In the
  /// streaming path, only the portion that could not be hidden behind
  /// the scans (measured from the moment the last scanner finished).
  double wall_seconds = 0.0;
  std::uint64_t transferred_bytes = 0;
};

/// Aggregates a finished cluster scan into the unified graph. The pool,
/// if given, decodes remote partials concurrently and parallelizes the
/// merge; results are byte-identical to the serial path.
[[nodiscard]] AggregationResult aggregate(std::span<const ScanResult> scans,
                                          const NetModel& net = {},
                                          ThreadPool* pool = nullptr);

/// Streaming scan→aggregate pipeline (paper §IV-B overlap).
struct PipelineResult {
  ClusterScan scan;
  AggregationResult agg;
  /// Measured wall time of the whole overlapped stage (scans + decode +
  /// merge); compare against scan.wall_seconds + agg.wall_seconds of
  /// the barriered path to see the overlap win.
  double wall_seconds = 0.0;
};

/// Scans every server and aggregates, streaming each finished partial
/// into the decoder through a bounded queue instead of barriering on
/// the full cluster scan. Falls back to the sequential scan + batch
/// aggregate when `pool` is null or single-threaded; the graph and all
/// virtual-time numbers are identical either way.
[[nodiscard]] PipelineResult scan_and_aggregate(
    const LustreCluster& cluster, ThreadPool* pool = nullptr,
    const DiskModel& mdt_disk = DiskModel::ssd(),
    const DiskModel& ost_disk = DiskModel::hdd(), const NetModel& net = {});

}  // namespace faultyrank
