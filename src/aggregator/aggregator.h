// The MDS-side aggregator (paper §IV-B).
//
// Every OSS scanner ships its partial graph to the MDS in one bulk
// transfer (serialized through the real wire format — the bytes are
// actually encoded and decoded, not just counted); the MDS partial
// graph joins locally. The aggregator then merges all partial graphs,
// remaps 128-bit FIDs to dense GIDs, and builds the forward + reversed
// CSR with the pairing analysis — everything FaultyRank needs.
//
// Two entry points:
//   * aggregate()          — batch: takes a finished cluster scan.
//   * scan_and_aggregate() — streaming: runs the scanners itself and
//     decodes each partial as its scanner finishes (bounded-queue
//     handoff), overlapping wire decode with the remaining scans. The
//     produced graph and virtual-time numbers are identical to the
//     batch path; only wall time improves.
//
// Virtual-time attribution is pipelined in both paths (it is pure
// arithmetic over the per-scanner sim times): transfers serialize on
// the MDS ingress link, but each starts as soon as its scanner
// finishes, not after the slowest scanner.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "common/sim_clock.h"
#include "common/thread_pool.h"
#include "graph/coverage.h"
#include "graph/unified_graph.h"
#include "scanner/scanner.h"

namespace faultyrank {

/// Strict-mode pipeline failure: at least one server scan failed and
/// degraded operation was not allowed. Unlike a bare exception from a
/// single scanner task, this is raised only after every scan has run to
/// completion, and it names every failed server.
class PipelineError : public std::runtime_error {
 public:
  PipelineError(const std::string& message,
                std::vector<std::string> failed_servers)
      : std::runtime_error(message),
        failed_servers_(std::move(failed_servers)) {}

  [[nodiscard]] const std::vector<std::string>& failed_servers()
      const noexcept {
    return failed_servers_;
  }

 private:
  std::vector<std::string> failed_servers_;
};

/// Raised by the interrupt_after_servers test hook after the checkpoint
/// has been flushed — the caller resumes by re-running with the same
/// checkpoint_path.
class PipelineInterrupted : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct AggregationResult {
  UnifiedGraph graph;
  /// Virtual network time of the transfers alone, summed back to back
  /// (latency counted once per transfer). Kept for the non-overlapped
  /// accounting; the pipelined number below is what Table VI uses.
  double sim_transfer_seconds = 0.0;
  /// Virtual finish time of the overlapped scan→transfer stage: each
  /// OSS transfer starts when its scanner completes, transfers
  /// serialize on the MDS ingress link in scanner-completion order, and
  /// the stage ends when both the slowest scanner and the last transfer
  /// are done. Always ≤ slowest-scan + sim_transfer_seconds.
  double sim_pipeline_seconds = 0.0;
  /// Measured time for decode + merge + FID remap + CSR build. In the
  /// streaming path, only the portion that could not be hidden behind
  /// the scans (measured from the moment the last scanner finished).
  double wall_seconds = 0.0;
  std::uint64_t transferred_bytes = 0;
  /// What fraction of servers contributed, which FID spaces were lost
  /// to failed scans (filled by the pipeline entry point, which knows
  /// the cluster), and which individual inodes were quarantined.
  CoverageInfo coverage;
};

/// Aggregates a finished cluster scan into the unified graph. The pool,
/// if given, decodes remote partials concurrently and parallelizes the
/// merge; results are byte-identical to the serial path. Scans with
/// status kFailed are excluded from the graph and the transfer
/// accounting; coverage reflects the surviving fraction (lost FID
/// sequences cannot be derived from scan results alone — use the
/// pipeline entry point for that).
[[nodiscard]] AggregationResult aggregate(std::span<const ScanResult> scans,
                                          const NetModel& net = {},
                                          ThreadPool* pool = nullptr);

/// Everything the fault-tolerant pipeline can be asked to do beyond a
/// plain scan: operational faults to inject, retry budget, whether a
/// failed server degrades or aborts the run, and checkpointing.
struct PipelineConfig {
  ThreadPool* pool = nullptr;
  DiskModel mdt_disk = DiskModel::ssd();
  DiskModel ost_disk = DiskModel::hdd();
  NetModel net;
  /// Operational fault schedule; nullptr scans fault-free.
  OpFaultSchedule* faults = nullptr;
  RetryPolicy retry;
  /// true: failed servers are dropped and reported via coverage /
  /// failed_servers. false: after every scan has finished, throw
  /// PipelineError naming all failed servers.
  bool allow_degraded = true;
  /// Non-empty: load this checkpoint if present (resuming completed
  /// scans), and save after completed scans. The write is atomic.
  std::string checkpoint_path;
  /// Cluster-content fingerprint stamped into saved checkpoints (e.g.
  /// the changelog cursor at scan start). A checkpoint on disk whose
  /// epoch differs is *discarded* instead of resumed: its scans were
  /// taken against older content, and prefilling them would silently
  /// merge two points in time into one graph (phantom findings at every
  /// edge into the stale region). See ScanCheckpoint::epoch.
  std::uint64_t checkpoint_epoch = 0;
  /// Save after every N newly completed scans (the final state is
  /// always flushed).
  std::size_t checkpoint_every = 1;
  /// Test hook: after this many newly completed scans, flush the
  /// checkpoint and throw PipelineInterrupted — a deterministic stand-in
  /// for killing the aggregator mid-run.
  std::size_t interrupt_after_servers = std::numeric_limits<std::size_t>::max();
};

/// Streaming scan→aggregate pipeline (paper §IV-B overlap).
struct PipelineResult {
  ClusterScan scan;
  AggregationResult agg;
  /// Measured wall time of the whole overlapped stage (scans + decode +
  /// merge); compare against scan.wall_seconds + agg.wall_seconds of
  /// the barriered path to see the overlap win.
  double wall_seconds = 0.0;
  /// Labels of servers whose scan failed (crash, deadline, or an
  /// unexpected error), in slot order. Empty on a full-coverage run.
  std::vector<std::string> failed_servers;
  /// How many slots were prefilled from the checkpoint instead of
  /// being rescanned.
  std::size_t servers_resumed = 0;
  /// A checkpoint existed but carried a different epoch (the cluster
  /// mutated since it was written), so it was ignored and every server
  /// rescanned.
  bool checkpoint_discarded = false;
};

/// Scans every server and aggregates, streaming each finished partial
/// into the decoder through a bounded queue instead of barriering on
/// the full cluster scan. Falls back to the sequential scan + batch
/// aggregate when the pool is null or single-threaded; the graph and
/// all virtual-time numbers are identical either way.
///
/// Fault tolerance: a server crash or blown deadline never aborts the
/// run in degraded mode — the survivors' partials form the unified
/// graph and agg.coverage records exactly what was lost. With a
/// checkpoint path, completed scans persist across interruptions, and
/// a resumed run reproduces the uninterrupted run's ranks bit for bit
/// (scanners, fault schedules and aggregation are all deterministic).
[[nodiscard]] PipelineResult scan_and_aggregate(const LustreCluster& cluster,
                                                const PipelineConfig& config);

/// Strict legacy entry point: no faults, no checkpointing, and any
/// failed scan raises PipelineError (after all scans have finished,
/// naming every failed server — completed work is not discarded on the
/// first failure).
[[nodiscard]] PipelineResult scan_and_aggregate(
    const LustreCluster& cluster, ThreadPool* pool = nullptr,
    const DiskModel& mdt_disk = DiskModel::ssd(),
    const DiskModel& ost_disk = DiskModel::hdd(), const NetModel& net = {});

}  // namespace faultyrank
