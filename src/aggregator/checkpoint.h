// Scan-phase checkpointing.
//
// The scan phase dominates a full check's runtime (hours on a real
// cluster), so losing every completed per-server scan to an aggregator
// restart is the single most expensive failure. The pipeline therefore
// checkpoints each completed ScanResult — graph bytes included, via the
// real wire format — into one atomic file, keyed per slot by server
// label. A resumed run prefills the checkpointed slots and only rescans
// the rest; because scanners, fault schedules and aggregation are all
// deterministic, the resumed run's ranks are bit-identical to an
// uninterrupted run over the same cluster.
//
// Format "FRCP" v1: header, slot count, then per slot a presence byte
// and — when present — the server label, scan counters and the
// length-prefixed PartialGraph wire encoding. Corruption in any field
// throws PersistenceError (never UB); counts are validated against the
// remaining bytes before any allocation.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "scanner/scanner.h"

namespace faultyrank {

struct ScanCheckpoint {
  /// Slot → server label for the cluster this checkpoint belongs to
  /// (MDTs first, then OSTs — the pipeline's slot order). A resume
  /// against a cluster with different labels is rejected.
  std::vector<std::string> labels;
  /// Completed scans, by slot; nullopt for slots still to be scanned.
  std::vector<std::optional<ScanResult>> results;
};

[[nodiscard]] std::vector<std::uint8_t> serialize_checkpoint(
    const ScanCheckpoint& checkpoint);

/// Throws PersistenceError on any malformed input.
[[nodiscard]] ScanCheckpoint deserialize_checkpoint(
    const std::vector<std::uint8_t>& bytes);

/// Atomic write (temp file + rename): a crash mid-save leaves the
/// previous checkpoint intact.
void save_checkpoint(const ScanCheckpoint& checkpoint,
                     const std::string& path);

[[nodiscard]] ScanCheckpoint load_checkpoint(const std::string& path);

}  // namespace faultyrank
