// Scan-phase checkpointing.
//
// The scan phase dominates a full check's runtime (hours on a real
// cluster), so losing every completed per-server scan to an aggregator
// restart is the single most expensive failure. The pipeline therefore
// checkpoints each completed ScanResult — graph bytes included, via the
// real wire format — into one atomic file, keyed per slot by server
// label. A resumed run prefills the checkpointed slots and only rescans
// the rest; because scanners, fault schedules and aggregation are all
// deterministic, the resumed run's ranks are bit-identical to an
// uninterrupted run over the same cluster.
//
// Format "FRCP" v2: header, cluster epoch, slot count, then per slot a
// presence byte and — when present — the server label, scan counters
// and the length-prefixed PartialGraph wire encoding. Corruption in any
// field throws PersistenceError (never UB); counts are validated
// against the remaining bytes before any allocation. v1 files (no
// epoch) still load, with epoch 0.
//
// The epoch is the caller's fingerprint of cluster *content* at scan
// start (e.g. the changelog cursor). Matching labels only prove the
// checkpoint belongs to the same cluster topology; on a live system the
// namespace keeps mutating between an interruption and the resume, and
// prefilling scans taken against older content would silently mix two
// points in time into one graph — every cross-slot edge into the stale
// region then shows up as a phantom inconsistency. The pipeline
// discards (rather than resumes) a checkpoint whose epoch differs from
// PipelineConfig::checkpoint_epoch.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "scanner/scanner.h"

namespace faultyrank {

struct ScanCheckpoint {
  /// Caller-defined cluster-content fingerprint at scan start (see the
  /// header comment). 0 for callers that never mutate between runs.
  std::uint64_t epoch = 0;
  /// Slot → server label for the cluster this checkpoint belongs to
  /// (MDTs first, then OSTs — the pipeline's slot order). A resume
  /// against a cluster with different labels is rejected.
  std::vector<std::string> labels;
  /// Completed scans, by slot; nullopt for slots still to be scanned.
  std::vector<std::optional<ScanResult>> results;
};

[[nodiscard]] std::vector<std::uint8_t> serialize_checkpoint(
    const ScanCheckpoint& checkpoint);

/// Throws PersistenceError on any malformed input.
[[nodiscard]] ScanCheckpoint deserialize_checkpoint(
    const std::vector<std::uint8_t>& bytes);

/// Atomic write (temp file + rename): a crash mid-save leaves the
/// previous checkpoint intact.
void save_checkpoint(const ScanCheckpoint& checkpoint,
                     const std::string& path);

[[nodiscard]] ScanCheckpoint load_checkpoint(const std::string& path);

}  // namespace faultyrank
