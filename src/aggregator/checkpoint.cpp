#include "aggregator/checkpoint.h"

#include "pfs/persistence.h"

namespace faultyrank {

namespace {

constexpr std::uint32_t kMagic = 0x46524350;  // "FRCP"
// v2 added the cluster-content epoch; v1 files load with epoch 0.
constexpr std::uint32_t kVersion = 2;
constexpr std::uint32_t kVersionNoEpoch = 1;

void put_scan_result(ByteWriter& w, const ScanResult& scan) {
  w.put(static_cast<std::uint8_t>(scan.status));
  w.put(static_cast<std::uint8_t>(scan.local_to_mds ? 1 : 0));
  w.put(scan.sim_seconds);
  w.put(scan.wall_seconds);
  w.put(scan.inodes_scanned);
  w.put(scan.directories_visited);
  w.put(scan.read_attempts);
  w.put(scan.retries);
  w.put(static_cast<std::uint32_t>(scan.quarantined.size()));
  for (const Fid& fid : scan.quarantined) {
    w.put(fid.seq);
    w.put(fid.oid);
    w.put(fid.ver);
  }
  w.put_string(scan.error);
  w.put_bytes(scan.graph.serialize());
}

ScanResult get_scan_result(ByteReader& r) {
  ScanResult scan;
  const auto status = r.get<std::uint8_t>();
  if (status > static_cast<std::uint8_t>(ScanStatus::kFailed)) {
    throw SerdesError("checkpoint: invalid scan status");
  }
  scan.status = static_cast<ScanStatus>(status);
  scan.local_to_mds = r.get<std::uint8_t>() != 0;
  scan.sim_seconds = r.get<double>();
  scan.wall_seconds = r.get<double>();
  scan.inodes_scanned = r.get<std::uint64_t>();
  scan.directories_visited = r.get<std::uint64_t>();
  scan.read_attempts = r.get<std::uint64_t>();
  scan.retries = r.get<std::uint64_t>();
  const auto quarantined = r.bounded_count(r.get<std::uint32_t>(), 16);
  scan.quarantined.reserve(quarantined);
  for (std::uint64_t i = 0; i < quarantined; ++i) {
    Fid fid;
    fid.seq = r.get<std::uint64_t>();
    fid.oid = r.get<std::uint32_t>();
    fid.ver = r.get<std::uint32_t>();
    scan.quarantined.push_back(fid);
  }
  scan.error = r.get_string();
  scan.graph = PartialGraph::deserialize(r.get_bytes());
  return scan;
}

}  // namespace

std::vector<std::uint8_t> serialize_checkpoint(
    const ScanCheckpoint& checkpoint) {
  ByteWriter w;
  w.put(kMagic);
  w.put(kVersion);
  w.put(checkpoint.epoch);
  w.put(static_cast<std::uint32_t>(checkpoint.labels.size()));
  for (std::size_t i = 0; i < checkpoint.labels.size(); ++i) {
    w.put_string(checkpoint.labels[i]);
    const bool present =
        i < checkpoint.results.size() && checkpoint.results[i].has_value();
    w.put(static_cast<std::uint8_t>(present ? 1 : 0));
    if (present) put_scan_result(w, *checkpoint.results[i]);
  }
  return w.take();
}

ScanCheckpoint deserialize_checkpoint(const std::vector<std::uint8_t>& bytes) {
  try {
    ByteReader r(bytes);
    if (r.get<std::uint32_t>() != kMagic) {
      throw PersistenceError("not a scan checkpoint");
    }
    const auto version = r.get<std::uint32_t>();
    if (version != kVersion && version != kVersionNoEpoch) {
      throw PersistenceError("unsupported checkpoint version");
    }
    ScanCheckpoint checkpoint;
    if (version >= kVersion) checkpoint.epoch = r.get<std::uint64_t>();
    // Each slot encodes at least a label length and a presence byte.
    const auto slots = r.bounded_count(r.get<std::uint32_t>(), 5);
    checkpoint.labels.reserve(slots);
    checkpoint.results.resize(slots);
    for (std::uint64_t i = 0; i < slots; ++i) {
      checkpoint.labels.push_back(r.get_string());
      if (r.get<std::uint8_t>() != 0) {
        checkpoint.results[i] = get_scan_result(r);
      }
    }
    if (!r.exhausted()) {
      throw PersistenceError("trailing bytes in checkpoint");
    }
    return checkpoint;
  } catch (const SerdesError& error) {
    throw PersistenceError(std::string("corrupt checkpoint: ") + error.what());
  }
}

void save_checkpoint(const ScanCheckpoint& checkpoint,
                     const std::string& path) {
  atomic_write_file(serialize_checkpoint(checkpoint), path);
}

ScanCheckpoint load_checkpoint(const std::string& path) {
  try {
    return deserialize_checkpoint(read_file_bytes(path));
  } catch (const PersistenceError& error) {
    throw PersistenceError(std::string(error.what()) + " (" + path + ")");
  }
}

}  // namespace faultyrank
