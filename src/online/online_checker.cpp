#include "online/online_checker.h"

#include "common/timer.h"

namespace faultyrank {

namespace {

/// Extracts the out-edges a scanner would emit for this inode.
std::vector<std::pair<Fid, EdgeKind>> edges_of(const Inode& inode) {
  std::vector<std::pair<Fid, EdgeKind>> out;
  switch (inode.type) {
    case InodeType::kDirectory:
      for (const auto& entry : inode.dirents) {
        out.emplace_back(entry.fid, EdgeKind::kDirent);
      }
      for (const auto& link : inode.link_ea) {
        out.emplace_back(link.parent, EdgeKind::kLinkEa);
      }
      break;
    case InodeType::kRegular:
      for (const auto& link : inode.link_ea) {
        out.emplace_back(link.parent, EdgeKind::kLinkEa);
      }
      if (inode.lov_ea.has_value()) {
        for (const auto& slot : inode.lov_ea->stripes) {
          out.emplace_back(slot.stripe, EdgeKind::kLovEa);
        }
      }
      break;
    case InodeType::kOstObject:
      if (inode.filter_fid.has_value()) {
        out.emplace_back(inode.filter_fid->parent, EdgeKind::kObjParent);
      }
      break;
  }
  return out;
}

ObjectKind kind_of(const Inode& inode) {
  switch (inode.type) {
    case InodeType::kDirectory: return ObjectKind::kDirectory;
    case InodeType::kRegular: return ObjectKind::kFile;
    case InodeType::kOstObject: return ObjectKind::kStripeObject;
  }
  return ObjectKind::kPhantom;
}

}  // namespace

OnlineChecker::OnlineChecker(LustreCluster& cluster,
                             OnlineCheckerConfig config)
    : cluster_(cluster), config_(config) {}

void OnlineChecker::bootstrap() {
  // The fresh graph restarts its generation counter, so a stale cache
  // could collide with a new generation value — drop it explicitly
  // (plan first: it borrows the snapshot).
  plan_.reset();
  snapshot_.reset();
  graph_ = MutableMetadataGraph();
  last_seen_.assign(server_count(), {});
  for (std::size_t server = 0; server < server_count(); ++server) {
    const LdiskfsImage& image = image_of(server);
    auto& seen = last_seen_[server];
    seen.assign(image.inode_slots(), kNullFid);
    image.for_each_inode([&](const Inode& inode) {
      graph_.replace_object(inode.lma_fid, kind_of(inode), edges_of(inode));
      seen[inode.ino - 1] = inode.lma_fid;
    });
  }
  if (cluster_.changelog() != nullptr) {
    cursor_ = cluster_.changelog()->next_index();
  }
  scrub_server_ = 0;
  scrub_ino_ = 1;
}

void OnlineChecker::apply(const ChangeRecord& record) {
  switch (record.op) {
    case ChangeOp::kMkdir:
      graph_.upsert_vertex(record.target, ObjectKind::kDirectory);
      graph_.add_edge(record.target, record.parent, EdgeKind::kLinkEa);
      graph_.add_edge(record.parent, record.target, EdgeKind::kDirent);
      break;
    case ChangeOp::kCreateFile:
      graph_.upsert_vertex(record.target, ObjectKind::kFile);
      graph_.add_edge(record.target, record.parent, EdgeKind::kLinkEa);
      graph_.add_edge(record.parent, record.target, EdgeKind::kDirent);
      for (const LovEaEntry& slot : record.stripes) {
        graph_.upsert_vertex(slot.stripe, ObjectKind::kStripeObject);
        graph_.add_edge(record.target, slot.stripe, EdgeKind::kLovEa);
        graph_.add_edge(slot.stripe, record.target, EdgeKind::kObjParent);
      }
      break;
    case ChangeOp::kHardLink:
      graph_.add_edge(record.parent, record.target, EdgeKind::kDirent);
      graph_.add_edge(record.target, record.parent, EdgeKind::kLinkEa);
      break;
    case ChangeOp::kUnlink:
      graph_.remove_edge(record.parent, record.target, EdgeKind::kDirent);
      if (!record.removes_object) {
        // One name of a hard-linked file went away; the object and its
        // other links survive.
        graph_.remove_edge(record.target, record.parent, EdgeKind::kLinkEa);
        break;
      }
      for (const LovEaEntry& slot : record.stripes) {
        graph_.remove_vertex(slot.stripe);
      }
      graph_.remove_vertex(record.target);
      break;
  }
}

std::size_t OnlineChecker::catch_up() {
  const ChangeLog* log = cluster_.changelog();
  if (log == nullptr) return 0;
  const auto records = log->read_from(cursor_);
  for (const ChangeRecord& record : records) {
    apply(record);
    cursor_ = record.index + 1;
  }
  return records.size();
}

bool OnlineChecker::scrub_slot(std::size_t server, std::uint64_t ino) {
  const LdiskfsImage& image = image_of(server);
  auto& seen = last_seen_[server];
  if (seen.size() < image.inode_slots()) {
    seen.resize(image.inode_slots(), kNullFid);
  }
  const Inode* inode = image.find(ino);
  const Fid previous = seen[ino - 1];
  if (inode == nullptr) {
    // Slot is free now; drop whatever we believed lived here.
    if (!previous.is_null()) {
      graph_.remove_vertex(previous);
      seen[ino - 1] = kNullFid;
    }
    return false;
  }
  if (!previous.is_null() && previous != inode->lma_fid) {
    // The id changed under us (corruption or repair): retire the stale
    // identity so the new one stands alone.
    graph_.remove_vertex(previous);
  }
  graph_.replace_object(inode->lma_fid, kind_of(*inode), edges_of(*inode));
  seen[ino - 1] = inode->lma_fid;
  return true;
}

std::size_t OnlineChecker::scrub_step() {
  std::size_t refreshed = 0;
  std::size_t visited = 0;
  const std::size_t servers = server_count();
  // Budget counts slots visited, so a step's cost is bounded even over
  // sparsely-used tables.
  while (visited < config_.scrub_batch) {
    const LdiskfsImage& image = image_of(scrub_server_);
    if (scrub_ino_ > image.inode_slots()) {
      scrub_server_ = (scrub_server_ + 1) % servers;
      scrub_ino_ = 1;
      ++visited;  // guard against empty images spinning forever
      continue;
    }
    refreshed += scrub_slot(scrub_server_, scrub_ino_) ? 1 : 0;
    ++scrub_ino_;
    ++visited;
  }
  return refreshed;
}

void OnlineChecker::full_scrub() {
  for (std::size_t server = 0; server < server_count(); ++server) {
    const std::uint64_t slots = image_of(server).inode_slots();
    for (std::uint64_t ino = 1; ino <= slots; ++ino) {
      scrub_slot(server, ino);
    }
  }
}

OnlineCheckResult OnlineChecker::check() {
  OnlineCheckResult result;
  WallTimer freeze_timer;
  // Re-checks of an unmutated graph reuse the previous snapshot and
  // PropagationPlan — the common cadence for an online checker polling
  // a quiet filesystem, where freeze + plan build dominate the check.
  result.plan_reused = snapshot_.has_value() && plan_.has_value() &&
                       snapshot_generation_ == graph_.generation();
  if (!result.plan_reused) {
    plan_.reset();  // borrows the snapshot: must die before it
    snapshot_.emplace(graph_.freeze(config_.pool));
    plan_.emplace(PropagationPlan::build(*snapshot_,
                                         config_.rank.unpaired_weight,
                                         config_.pool));
    snapshot_generation_ = graph_.generation();
  }
  const UnifiedGraph& snapshot = *snapshot_;
  result.freeze_wall_seconds = freeze_timer.seconds();

  WallTimer rank_timer;
  FaultyRankConfig rank_config = config_.rank;
  std::vector<double> warm_id;
  std::vector<double> warm_prop;
  if (config_.warm_start && !last_ranks_.empty()) {
    const std::size_t n = snapshot.vertex_count();
    warm_id.assign(n, rank_config.initial_rank);
    warm_prop.assign(n, rank_config.initial_rank);
    for (Gid v = 0; v < n; ++v) {
      const auto it = last_ranks_.find(snapshot.vertices().fid_of(v));
      if (it != last_ranks_.end()) {
        warm_id[v] = it->second.first;
        warm_prop[v] = it->second.second;
      }
    }
    rank_config.initial_id_ranks = &warm_id;
    rank_config.initial_prop_ranks = &warm_prop;
  }
  result.ranks = run_faultyrank(snapshot, *plan_, rank_config, config_.pool);
  if (config_.warm_start) {
    last_ranks_.clear();
    last_ranks_.reserve(snapshot.vertex_count());
    for (Gid v = 0; v < snapshot.vertex_count(); ++v) {
      last_ranks_.emplace(snapshot.vertices().fid_of(v),
                          std::pair(result.ranks.id_rank[v],
                                    result.ranks.prop_rank[v]));
    }
  }
  DetectorConfig detector_config;
  detector_config.threshold = config_.detection_threshold;
  detector_config.root = cluster_.root();
  result.report =
      detect_inconsistencies(snapshot, result.ranks, detector_config);
  result.rank_wall_seconds = rank_timer.seconds();

  result.vertices = snapshot.vertex_count();
  result.edges = snapshot.edge_count();
  result.unpaired_edges = snapshot.unpaired_edges().size();
  return result;
}

}  // namespace faultyrank
