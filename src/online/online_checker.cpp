#include "online/online_checker.h"

#include "common/timer.h"

namespace faultyrank {

namespace {

/// Extracts the out-edges a scanner would emit for this inode.
std::vector<std::pair<Fid, EdgeKind>> edges_of(const Inode& inode) {
  std::vector<std::pair<Fid, EdgeKind>> out;
  switch (inode.type) {
    case InodeType::kDirectory:
      for (const auto& entry : inode.dirents) {
        out.emplace_back(entry.fid, EdgeKind::kDirent);
      }
      for (const auto& link : inode.link_ea) {
        out.emplace_back(link.parent, EdgeKind::kLinkEa);
      }
      break;
    case InodeType::kRegular:
      for (const auto& link : inode.link_ea) {
        out.emplace_back(link.parent, EdgeKind::kLinkEa);
      }
      if (inode.lov_ea.has_value()) {
        for (const auto& slot : inode.lov_ea->stripes) {
          out.emplace_back(slot.stripe, EdgeKind::kLovEa);
        }
      }
      break;
    case InodeType::kOstObject:
      if (inode.filter_fid.has_value()) {
        out.emplace_back(inode.filter_fid->parent, EdgeKind::kObjParent);
      }
      break;
  }
  return out;
}

ObjectKind kind_of(const Inode& inode) {
  switch (inode.type) {
    case InodeType::kDirectory: return ObjectKind::kDirectory;
    case InodeType::kRegular: return ObjectKind::kFile;
    case InodeType::kOstObject: return ObjectKind::kStripeObject;
  }
  return ObjectKind::kPhantom;
}

}  // namespace

OnlineChecker::OnlineChecker(LustreCluster& cluster,
                             OnlineCheckerConfig config)
    : cluster_(cluster), config_(config) {}

void OnlineChecker::bootstrap() {
  // The fresh graph restarts its generation counter, so a stale cache
  // could collide with a new generation value — drop it explicitly
  // (plan first: it borrows the snapshot).
  plan_.reset();
  snapshot_.reset();
  graph_ = MutableMetadataGraph();
  claimants_.clear();
  last_seen_.assign(server_count(), {});
  for (std::size_t server = 0; server < server_count(); ++server) {
    const LdiskfsImage& image = image_of(server);
    auto& seen = last_seen_[server];
    seen.assign(image.inode_slots(), kNullFid);
    image.for_each_inode([&](const Inode& inode) {
      add_claim(inode.lma_fid, server, inode.ino);
      refresh_identity(inode.lma_fid);
      seen[inode.ino - 1] = inode.lma_fid;
    });
  }
  if (cluster_.changelog() != nullptr) {
    cursor_ = cluster_.changelog()->next_index();
  }
  scrub_server_ = 0;
  scrub_ino_ = 1;
}

void OnlineChecker::ensure_vertex(const Fid& fid, ObjectKind kind) {
  if (!graph_.contains(fid)) graph_.upsert_vertex(fid, kind);
}

void OnlineChecker::apply(const ChangeRecord& record) {
  // A record's endpoints may be unknown to the graph: scrubbing retires
  // a vertex whose on-disk identity was corrupted, and a later repair
  // restores the identity through the raw image (bypassing the
  // changelog), so logical ops on it reference a fid we dropped.
  // Re-materialize missing endpoints instead of throwing; the vertex
  // starts bare and the scrubber reconciles its full edge set on the
  // next pass over that slot.
  switch (record.op) {
    case ChangeOp::kMkdir:
      ensure_vertex(record.parent, ObjectKind::kDirectory);
      graph_.upsert_vertex(record.target, ObjectKind::kDirectory);
      graph_.add_edge(record.target, record.parent, EdgeKind::kLinkEa);
      graph_.add_edge(record.parent, record.target, EdgeKind::kDirent);
      break;
    case ChangeOp::kCreateFile:
      ensure_vertex(record.parent, ObjectKind::kDirectory);
      graph_.upsert_vertex(record.target, ObjectKind::kFile);
      graph_.add_edge(record.target, record.parent, EdgeKind::kLinkEa);
      graph_.add_edge(record.parent, record.target, EdgeKind::kDirent);
      for (const LovEaEntry& slot : record.stripes) {
        graph_.upsert_vertex(slot.stripe, ObjectKind::kStripeObject);
        graph_.add_edge(record.target, slot.stripe, EdgeKind::kLovEa);
        graph_.add_edge(slot.stripe, record.target, EdgeKind::kObjParent);
      }
      break;
    case ChangeOp::kHardLink:
      ensure_vertex(record.parent, ObjectKind::kDirectory);
      ensure_vertex(record.target, ObjectKind::kFile);
      graph_.add_edge(record.parent, record.target, EdgeKind::kDirent);
      graph_.add_edge(record.target, record.parent, EdgeKind::kLinkEa);
      break;
    case ChangeOp::kUnlink:
      graph_.remove_edge(record.parent, record.target, EdgeKind::kDirent);
      if (!record.removes_object) {
        // One name of a hard-linked file went away; the object and its
        // other links survive.
        graph_.remove_edge(record.target, record.parent, EdgeKind::kLinkEa);
        break;
      }
      for (const LovEaEntry& slot : record.stripes) {
        graph_.remove_vertex(slot.stripe);
      }
      graph_.remove_vertex(record.target);
      break;
    case ChangeOp::kRename:
      ensure_vertex(record.src_parent, ObjectKind::kDirectory);
      ensure_vertex(record.parent, ObjectKind::kDirectory);
      ensure_vertex(record.target, record.type == InodeType::kDirectory
                                       ? ObjectKind::kDirectory
                                       : ObjectKind::kFile);
      graph_.remove_edge(record.src_parent, record.target, EdgeKind::kDirent);
      graph_.remove_edge(record.target, record.src_parent, EdgeKind::kLinkEa);
      graph_.add_edge(record.parent, record.target, EdgeKind::kDirent);
      graph_.add_edge(record.target, record.parent, EdgeKind::kLinkEa);
      break;
  }
}

std::size_t OnlineChecker::catch_up() {
  const ChangeLog* log = cluster_.changelog();
  if (log == nullptr) return 0;
  const auto records = log->read_from(cursor_);
  for (const ChangeRecord& record : records) {
    apply(record);
    cursor_ = record.index + 1;
  }
  return records.size();
}

void OnlineChecker::add_claim(const Fid& fid, std::size_t server,
                              std::uint64_t ino) {
  auto& claims = claimants_[fid];
  for (const SlotRef& claim : claims) {
    if (claim.server == server && claim.ino == ino) return;
  }
  claims.push_back({server, ino});
}

void OnlineChecker::drop_claim(const Fid& fid, std::size_t server,
                               std::uint64_t ino) {
  const auto it = claimants_.find(fid);
  if (it == claimants_.end()) return;
  auto& claims = it->second;
  for (auto claim = claims.begin(); claim != claims.end(); ++claim) {
    if (claim->server == server && claim->ino == ino) {
      claims.erase(claim);
      break;
    }
  }
}

void OnlineChecker::refresh_identity(const Fid& fid) {
  const auto it = claimants_.find(fid);
  if (it != claimants_.end()) {
    auto& claims = it->second;
    std::vector<std::pair<Fid, EdgeKind>> merged;
    ObjectKind kind = ObjectKind::kPhantom;
    bool have_kind = false;
    for (auto claim = claims.begin(); claim != claims.end();) {
      const Inode* inode = image_of(claim->server).find(claim->ino);
      if (inode == nullptr || inode->lma_fid != fid) {
        // The slot moved on since this claim was recorded; prune it.
        claim = claims.erase(claim);
        continue;
      }
      if (!have_kind) {
        kind = kind_of(*inode);
        have_kind = true;
      }
      auto edges = edges_of(*inode);
      merged.insert(merged.end(), edges.begin(), edges.end());
      ++claim;
    }
    if (!claims.empty()) {
      graph_.replace_object(fid, kind, std::move(merged),
                            static_cast<std::uint32_t>(claims.size()));
      return;
    }
    claimants_.erase(it);
  }
  graph_.remove_vertex(fid);
}

bool OnlineChecker::scrub_slot(std::size_t server, std::uint64_t ino) {
  const LdiskfsImage& image = image_of(server);
  auto& seen = last_seen_[server];
  if (seen.size() < image.inode_slots()) {
    seen.resize(image.inode_slots(), kNullFid);
  }
  const Inode* inode = image.find(ino);
  const Fid previous = seen[ino - 1];
  if (inode == nullptr) {
    // Slot is free now; drop this slot's claim on whatever we believed
    // lived here (the identity survives if another slot still claims
    // it — e.g. the genuine twin of a duplicated id).
    if (!previous.is_null()) {
      drop_claim(previous, server, ino);
      refresh_identity(previous);
      seen[ino - 1] = kNullFid;
    }
    return false;
  }
  if (!previous.is_null() && previous != inode->lma_fid) {
    // The id changed under us (corruption or repair): retire this
    // slot's claim on the stale identity.
    drop_claim(previous, server, ino);
    refresh_identity(previous);
  }
  add_claim(inode->lma_fid, server, ino);
  refresh_identity(inode->lma_fid);
  seen[ino - 1] = inode->lma_fid;
  return true;
}

std::size_t OnlineChecker::scrub_step() {
  std::size_t refreshed = 0;
  std::size_t visited = 0;
  const std::size_t servers = server_count();
  // Budget counts slots visited, so a step's cost is bounded even over
  // sparsely-used tables.
  while (visited < config_.scrub_batch) {
    const LdiskfsImage& image = image_of(scrub_server_);
    if (scrub_ino_ > image.inode_slots()) {
      scrub_server_ = (scrub_server_ + 1) % servers;
      scrub_ino_ = 1;
      ++visited;  // guard against empty images spinning forever
      continue;
    }
    refreshed += scrub_slot(scrub_server_, scrub_ino_) ? 1 : 0;
    ++scrub_ino_;
    ++visited;
  }
  return refreshed;
}

void OnlineChecker::full_scrub() {
  for (std::size_t server = 0; server < server_count(); ++server) {
    const std::uint64_t slots = image_of(server).inode_slots();
    for (std::uint64_t ino = 1; ino <= slots; ++ino) {
      scrub_slot(server, ino);
    }
  }
}

OnlineCheckResult OnlineChecker::check() {
  OnlineCheckResult result;
  WallTimer freeze_timer;
  // Re-checks of an unmutated graph reuse the previous snapshot and
  // PropagationPlan — the common cadence for an online checker polling
  // a quiet filesystem, where freeze + plan build dominate the check.
  result.plan_reused = snapshot_.has_value() && plan_.has_value() &&
                       snapshot_generation_ == graph_.generation();
  if (!result.plan_reused) {
    plan_.reset();  // borrows the snapshot: must die before it
    snapshot_.emplace(graph_.freeze(config_.pool));
    plan_.emplace(PropagationPlan::build(*snapshot_,
                                         config_.rank.unpaired_weight,
                                         config_.pool));
    snapshot_generation_ = graph_.generation();
  }
  const UnifiedGraph& snapshot = *snapshot_;
  result.freeze_wall_seconds = freeze_timer.seconds();

  WallTimer rank_timer;
  FaultyRankConfig rank_config = config_.rank;
  std::vector<double> warm_id;
  std::vector<double> warm_prop;
  if (config_.warm_start && !last_ranks_.empty()) {
    const std::size_t n = snapshot.vertex_count();
    warm_id.assign(n, rank_config.initial_rank);
    warm_prop.assign(n, rank_config.initial_rank);
    for (Gid v = 0; v < n; ++v) {
      const auto it = last_ranks_.find(snapshot.vertices().fid_of(v));
      if (it != last_ranks_.end()) {
        warm_id[v] = it->second.first;
        warm_prop[v] = it->second.second;
      }
    }
    rank_config.initial_id_ranks = &warm_id;
    rank_config.initial_prop_ranks = &warm_prop;
  }
  result.ranks = run_faultyrank(snapshot, *plan_, rank_config, config_.pool);
  if (config_.warm_start) {
    last_ranks_.clear();
    last_ranks_.reserve(snapshot.vertex_count());
    for (Gid v = 0; v < snapshot.vertex_count(); ++v) {
      last_ranks_.emplace(snapshot.vertices().fid_of(v),
                          std::pair(result.ranks.id_rank[v],
                                    result.ranks.prop_rank[v]));
    }
  }
  DetectorConfig detector_config;
  detector_config.threshold = config_.detection_threshold;
  detector_config.root = cluster_.root();
  result.report =
      detect_inconsistencies(snapshot, result.ranks, detector_config);
  result.rank_wall_seconds = rank_timer.seconds();

  result.vertices = snapshot.vertex_count();
  result.edges = snapshot.edge_count();
  result.unpaired_edges = snapshot.unpaired_edges().size();
  return result;
}

}  // namespace faultyrank
