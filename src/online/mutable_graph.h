// A mutable, FID-keyed metadata graph for *online* FaultyRank.
//
// The offline pipeline rebuilds the whole CSR from scratch on every
// check; the online checker instead keeps this structure current —
// changelog records and scrub rescans update vertices and edges in
// place — and freezes it into an immutable UnifiedGraph snapshot when a
// check runs (the paper's "run the FaultyRank algorithm on the latest
// snapshot of the metadata graph", §VI). Freeze order is the vertex
// insertion order, so snapshots are deterministic for a given operation
// sequence.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/fid.h"
#include "graph/unified_graph.h"

namespace faultyrank {

class MutableMetadataGraph {
 public:
  /// Adds or updates a scanned object.
  void upsert_vertex(const Fid& fid, ObjectKind kind);

  /// Removes an object and all its outgoing edges. Incoming references
  /// held by other objects are their owners' business (remove_edge).
  /// Returns false if the fid is unknown.
  bool remove_vertex(const Fid& fid);

  /// Adds one directed reference. The source must exist.
  void add_edge(const Fid& src, const Fid& dst, EdgeKind kind);

  /// Removes one matching reference instance; false if none exists.
  bool remove_edge(const Fid& src, const Fid& dst, EdgeKind kind);

  /// Replaces an object's kind and entire out-edge set with a fresh
  /// scan result (the scrub path). `scan_count` is how many physical
  /// inodes were observed carrying this fid — normally 1, more when an
  /// id corruption duplicates another object's identity. The frozen
  /// snapshot reproduces the multiplicity so the detector's
  /// scan_count-based Double Reference conviction works on online
  /// graphs exactly as on offline merges.
  void replace_object(const Fid& fid, ObjectKind kind,
                      std::vector<std::pair<Fid, EdgeKind>> out_edges,
                      std::uint32_t scan_count = 1);

  [[nodiscard]] bool contains(const Fid& fid) const {
    const auto it = index_.find(fid);
    return it != index_.end() && slots_[it->second].live;
  }
  [[nodiscard]] std::size_t vertex_count() const noexcept {
    return live_vertices_;
  }
  [[nodiscard]] std::uint64_t edge_count() const noexcept {
    return edge_count_;
  }

  /// Immutable snapshot for the rank kernel + detector. The pool, if
  /// given, parallelizes the aggregation (result is identical).
  [[nodiscard]] UnifiedGraph freeze(ThreadPool* pool = nullptr) const;

  /// Monotone mutation counter: bumped by every call that changes the
  /// graph (no-op calls — removing an absent edge, say — don't count).
  /// Callers that cache artifacts derived from a freeze() (snapshots,
  /// PropagationPlans) compare generations to decide whether the cache
  /// is still current.
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return generation_;
  }

 private:
  struct VertexState {
    Fid fid;
    ObjectKind kind = ObjectKind::kPhantom;
    bool live = false;  // tombstoned slots keep insertion order stable
    /// Physical inodes observed carrying this fid (saturating would be
    /// pointless here; the detector only asks "> 1").
    std::uint32_t scans = 1;
    std::vector<std::pair<Fid, EdgeKind>> out;
  };

  VertexState& state_or_throw(const Fid& fid, const char* what);

  std::unordered_map<Fid, std::size_t, FidHash> index_;
  std::vector<VertexState> slots_;  // insertion order; tombstones stay
  std::size_t live_vertices_ = 0;
  std::uint64_t edge_count_ = 0;
  std::uint64_t generation_ = 0;
};

}  // namespace faultyrank
