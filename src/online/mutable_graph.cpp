#include "online/mutable_graph.h"

#include <algorithm>
#include <stdexcept>

namespace faultyrank {

MutableMetadataGraph::VertexState& MutableMetadataGraph::state_or_throw(
    const Fid& fid, const char* what) {
  const auto it = index_.find(fid);
  if (it == index_.end() || !slots_[it->second].live) {
    throw std::invalid_argument(std::string(what) + ": unknown object " +
                                fid.to_string());
  }
  return slots_[it->second];
}

void MutableMetadataGraph::upsert_vertex(const Fid& fid, ObjectKind kind) {
  if (const auto it = index_.find(fid); it != index_.end()) {
    VertexState& state = slots_[it->second];
    if (!state.live) {
      state.live = true;
      state.out.clear();
      state.scans = 1;
      ++live_vertices_;
      ++generation_;
    } else if (state.kind != kind) {
      ++generation_;
    }
    state.kind = kind;
    return;
  }
  index_.emplace(fid, slots_.size());
  slots_.push_back({fid, kind, /*live=*/true, /*scans=*/1, {}});
  ++live_vertices_;
  ++generation_;
}

bool MutableMetadataGraph::remove_vertex(const Fid& fid) {
  const auto it = index_.find(fid);
  if (it == index_.end() || !slots_[it->second].live) return false;
  VertexState& state = slots_[it->second];
  edge_count_ -= state.out.size();
  state.out.clear();
  state.live = false;
  --live_vertices_;
  ++generation_;
  return true;
}

void MutableMetadataGraph::add_edge(const Fid& src, const Fid& dst,
                                    EdgeKind kind) {
  VertexState& state = state_or_throw(src, "add_edge");
  state.out.emplace_back(dst, kind);
  ++edge_count_;
  ++generation_;
}

bool MutableMetadataGraph::remove_edge(const Fid& src, const Fid& dst,
                                       EdgeKind kind) {
  const auto it = index_.find(src);
  if (it == index_.end() || !slots_[it->second].live) return false;
  auto& out = slots_[it->second].out;
  const auto pos = std::find(out.begin(), out.end(), std::pair(dst, kind));
  if (pos == out.end()) return false;
  out.erase(pos);
  --edge_count_;
  ++generation_;
  return true;
}

void MutableMetadataGraph::replace_object(
    const Fid& fid, ObjectKind kind,
    std::vector<std::pair<Fid, EdgeKind>> out_edges,
    std::uint32_t scan_count) {
  // A scrub that re-reads a healthy inode reproduces its current state
  // exactly; detect that and leave the generation untouched so cached
  // snapshots/plans survive no-op scrub passes. The multiplicity is
  // part of that state: a second inode appearing under this fid must
  // invalidate cached plans even if the edge union happens to match.
  if (const auto it = index_.find(fid); it != index_.end()) {
    const VertexState& state = slots_[it->second];
    if (state.live && state.kind == kind && state.scans == scan_count &&
        state.out == out_edges) {
      return;
    }
  }
  upsert_vertex(fid, kind);
  VertexState& state = slots_[index_.at(fid)];
  edge_count_ -= state.out.size();
  state.out = std::move(out_edges);
  state.scans = scan_count;
  edge_count_ += state.out.size();
  ++generation_;
}

UnifiedGraph MutableMetadataGraph::freeze(ThreadPool* pool) const {
  PartialGraph partial;
  partial.server = "online";
  partial.vertices.reserve(live_vertices_);
  partial.edges.reserve(edge_count_);
  for (const VertexState& state : slots_) {
    if (!state.live) continue;
    // One vertex record per observed physical inode: the aggregate's
    // scan count then matches an offline merge, which is what drives
    // the detector's duplicate-id (Double Reference) conviction.
    for (std::uint32_t scan = 0; scan < state.scans; ++scan) {
      partial.add_vertex(state.fid, state.kind);
    }
    for (const auto& [dst, kind] : state.out) {
      partial.add_edge(state.fid, dst, kind);
    }
  }
  const PartialGraph partials[] = {partial};
  return UnifiedGraph::aggregate(partials, pool);
}

}  // namespace faultyrank
