// Online FaultyRank (the paper's §VI/§VIII future work, implemented).
//
// The offline prototype must unmount the filesystem and rescan every
// server per check. The online checker removes both costs:
//
//   1. bootstrap()  — one full raw scan seeds the mutable metadata
//                     graph and positions the changelog cursor. Done
//                     once, ideally at mount time.
//   2. catch_up()   — consumes new changelog records; logical namespace
//                     churn (mkdir/create/unlink) updates the graph in
//                     place, no rescan.
//   3. scrub_step() — raw corruption never reaches the changelog, so a
//                     background scrubber re-reads a small batch of
//                     inodes per step, round-robin over every server,
//                     refreshing their graph entries. A corrupted EA
//                     becomes visible to the next check as soon as its
//                     inode is scrubbed.
//   4. check()      — freezes the graph and runs the FaultyRank
//                     iterations + detector on the snapshot, entirely
//                     in DRAM, while the filesystem stays mounted.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/detector.h"
#include "core/faultyrank.h"
#include "core/propagation_plan.h"
#include "online/mutable_graph.h"
#include "pfs/cluster.h"

namespace faultyrank {

struct OnlineCheckerConfig {
  FaultyRankConfig rank;
  /// Mean-normalized conviction threshold (see DetectorConfig).
  double detection_threshold = 0.4;
  /// Inodes re-read per scrub_step().
  std::size_t scrub_batch = 64;
  /// Seed each check's iteration with the previous check's converged
  /// ranks (new vertices start at the uniform value): the fixpoint of a
  /// slightly-changed graph is close, so iterations drop.
  bool warm_start = true;
  /// Optional worker pool for freeze aggregation, plan construction,
  /// and the rank iteration. Borrowed; must outlive the checker.
  ThreadPool* pool = nullptr;
};

struct OnlineCheckResult {
  FaultyRankResult ranks;
  DetectionReport report;
  std::uint64_t vertices = 0;
  std::uint64_t edges = 0;
  std::uint64_t unpaired_edges = 0;
  double freeze_wall_seconds = 0.0;
  double rank_wall_seconds = 0.0;
  /// True when this check ran on the cached snapshot + PropagationPlan
  /// of a previous check (no mutations since), skipping the freeze and
  /// plan build entirely.
  bool plan_reused = false;
};

class OnlineChecker {
 public:
  /// The cluster must have a changelog attached before any mutations
  /// the checker is expected to track.
  explicit OnlineChecker(LustreCluster& cluster,
                         OnlineCheckerConfig config = {});

  /// Full raw scan of every server into the mutable graph; positions
  /// the changelog cursor at the log's current end.
  void bootstrap();

  /// Applies every changelog record since the last call (or since
  /// bootstrap). Returns how many records were applied.
  std::size_t catch_up();

  /// Re-scans the next `scrub_batch` raw inode slots (round-robin over
  /// MDT and OSTs), refreshing their graph entries. Returns the number
  /// of live inodes refreshed.
  std::size_t scrub_step();

  /// Convenience: scrub until every inode slot has been visited once.
  void full_scrub();

  /// Freeze + rank + detect on the current graph.
  [[nodiscard]] OnlineCheckResult check();

  [[nodiscard]] const MutableMetadataGraph& graph() const { return graph_; }
  [[nodiscard]] std::uint64_t changelog_cursor() const noexcept {
    return cursor_;
  }

 private:
  /// A raw inode slot (server index, 1-based ino) observed to carry a
  /// given identity. Several slots can claim the same fid — that is
  /// exactly the Double Reference / duplicate-id corruption — and the
  /// graph vertex must then hold the *union* of all claimants' edges,
  /// matching what the offline merge of per-inode partial graphs
  /// produces. A fid-keyed overwrite would collapse the claimants and
  /// destroy the duplicate-id evidence.
  struct SlotRef {
    std::size_t server = 0;
    std::uint64_t ino = 0;
  };

  void apply(const ChangeRecord& record);
  /// Re-materializes a changelog-record endpoint the graph no longer
  /// knows (retired by the scrubber after id corruption, then restored
  /// by a raw repair that bypasses the changelog).
  void ensure_vertex(const Fid& fid, ObjectKind kind);
  void add_claim(const Fid& fid, std::size_t server, std::uint64_t ino);
  void drop_claim(const Fid& fid, std::size_t server, std::uint64_t ino);
  /// Rebuilds `fid`'s graph entry from every slot still claiming it
  /// (pruning stale claims); removes the vertex when no claims remain.
  void refresh_identity(const Fid& fid);
  /// Refreshes one raw inode slot on server `server` (MDTs first, then
  /// OSTs). Returns true if a live inode was refreshed.
  bool scrub_slot(std::size_t server, std::uint64_t ino);
  [[nodiscard]] std::size_t server_count() const {
    return cluster_.mdt_count() + cluster_.osts().size();
  }
  [[nodiscard]] const LdiskfsImage& image_of(std::size_t server) const {
    return server < cluster_.mdt_count()
               ? cluster_.mdt_server(server).image
               : cluster_.osts()[server - cluster_.mdt_count()].image;
  }

  LustreCluster& cluster_;
  OnlineCheckerConfig config_;
  MutableMetadataGraph graph_;
  std::uint64_t cursor_ = 0;

  // check() cache: the frozen snapshot and its PropagationPlan, valid
  // while the mutable graph's generation is unchanged. The plan borrows
  // the snapshot, so it is reset first whenever the snapshot is
  // replaced.
  std::optional<UnifiedGraph> snapshot_;
  std::optional<PropagationPlan> plan_;
  std::uint64_t snapshot_generation_ = 0;

  // Scrub state: a moving (server, ino) position plus the fid each slot
  // carried when last read, so id corruption shows up as
  // remove-old + insert-new.
  std::size_t scrub_server_ = 0;
  std::uint64_t scrub_ino_ = 1;
  std::vector<std::vector<Fid>> last_seen_;  // [server][ino-1]
  // Which raw slots currently claim each identity (normally exactly
  // one; duplicate-id corruption makes it several).
  std::unordered_map<Fid, std::vector<SlotRef>, FidHash> claimants_;

  // Previous check's converged ranks, keyed by FID, for warm starts.
  std::unordered_map<Fid, std::pair<double, double>, FidHash> last_ranks_;
};

}  // namespace faultyrank
