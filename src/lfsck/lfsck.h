// A rule-based baseline checker modelled on Lustre's LFSCK.
//
// Implements the fixed decision rules the paper's Table I documents —
// MDS-side metadata always wins, unexplainable objects go to
// lost+found, and a sequential per-inode scan that can neither see
// duplication nor consider "a's side" root causes:
//
//   Phase 1 (layout, cf. lfsck_layout):
//     * LOVEA slot whose object is missing      → re-create an empty
//       OST object with the expected id ("MDS is right")
//     * object whose filter_fid mismatches      → overwrite from MDS
//     * OST object no file claims               → stub into lost+found
//   Phase 2 (namespace, cf. lfsck_namespace):
//     * DIRENT whose child id resolves nowhere  → drop the entry
//     * child whose LinkEA misses the parent    → rebuild from DIRENT
//     * MDT object no directory names           → move to lost+found
//
// The cost model reproduces the paper's §V-C2 analysis of why LFSCK is
// slow: per-inode processing with a synchronous MDS↔OSS verification
// RPC per referenced object, all serialized through closely-coupled
// pipeline stages (the stall factor).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_clock.h"
#include "pfs/cluster.h"

namespace faultyrank {

enum class LfsckActionKind : std::uint8_t {
  kRecreateOstObject,     ///< dangling LOVEA slot: made an empty object
  kOverwriteFilterFid,    ///< mismatch: OST point-back rewritten from MDS
  kOrphanToLostFound,     ///< unclaimed OST object stubbed to lost+found
  kRemoveDanglingDirent,  ///< DIRENT entry resolving nowhere dropped
  kRebuildLinkEa,         ///< LinkEA rebuilt from the parent's DIRENT
  kMdtOrphanToLostFound,  ///< unnamed MDT object moved to lost+found
  kSkipped,               ///< observed but not repairable by the rules
};

[[nodiscard]] constexpr const char* to_string(LfsckActionKind k) noexcept {
  switch (k) {
    case LfsckActionKind::kRecreateOstObject: return "recreate-ost-object";
    case LfsckActionKind::kOverwriteFilterFid: return "overwrite-filter-fid";
    case LfsckActionKind::kOrphanToLostFound: return "orphan-to-lost+found";
    case LfsckActionKind::kRemoveDanglingDirent: return "remove-dangling-dirent";
    case LfsckActionKind::kRebuildLinkEa: return "rebuild-linkea";
    case LfsckActionKind::kMdtOrphanToLostFound: return "mdt-orphan-to-lost+found";
    case LfsckActionKind::kSkipped: return "skipped";
  }
  return "?";
}

struct LfsckEvent {
  LfsckActionKind kind = LfsckActionKind::kSkipped;
  Fid subject;        ///< object acted upon
  Fid related;        ///< counterpart (owner / parent / expected id)
  std::string detail;
};

struct LfsckConfig {
  bool repair = true;  ///< false = dry run (report only)
  // ---- cost model (paper §V-C2), calibrated against Table VI's
  // ~0.33 ms/inode aggregate rate ----
  /// Random metadata read per inode visited (LFSCK walks inodes
  /// individually rather than streaming whole tables).
  double inode_read_seconds = 40e-6;
  /// Per-inode checking logic.
  double per_inode_cpu_seconds = 10e-6;
  /// Synchronous MDS↔OSS verification round trip per referenced object.
  RpcModel rpc{.round_trip_seconds = 20e-6};
  /// Multiplier for the blocking between LFSCK's coupled kernel threads
  /// ("any delay in the pipeline may block others significantly").
  double pipeline_stall_factor = 1.3;
};

struct LfsckResult {
  std::vector<LfsckEvent> events;
  std::uint64_t inodes_checked = 0;
  std::uint64_t rpcs_issued = 0;
  double sim_seconds = 0.0;
  double wall_seconds = 0.0;

  [[nodiscard]] std::size_t count(LfsckActionKind kind) const;
};

/// Runs both LFSCK phases against the cluster.
[[nodiscard]] LfsckResult run_lfsck(LustreCluster& cluster,
                                    const LfsckConfig& config = {});

}  // namespace faultyrank
