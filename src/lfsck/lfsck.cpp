#include "lfsck/lfsck.h"

#include <algorithm>

#include "common/timer.h"

namespace faultyrank {

std::size_t LfsckResult::count(LfsckActionKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(events.begin(), events.end(),
                    [kind](const LfsckEvent& e) { return e.kind == kind; }));
}

namespace {

/// Moves an unnamed MDT object into lost+found (LFSCK's catch-all).
void mdt_orphan_to_lost_found(LustreCluster& cluster, const Fid& fid,
                              LfsckResult& result) {
  const Fid lost_found = cluster.lost_found();
  Inode* inode = cluster.find_mdt_inode(fid);
  if (inode == nullptr) return;
  const std::string name = "lf_" + fid.to_string();
  inode->link_ea = {{lost_found, name}};
  Inode* lf = cluster.find_mdt_inode(lost_found);
  lf->dirents.push_back({name, fid, inode->ino});
  result.events.push_back({LfsckActionKind::kMdtOrphanToLostFound, fid,
                           lost_found, "no directory names this object"});
}

/// Stubs an unclaimed OST object into lost+found (what LFSCK's layout
/// phase does with orphans).
void ost_orphan_to_lost_found(LustreCluster& cluster, OstServer& ost,
                              const Fid& object_fid, LfsckResult& result) {
  const Fid lost_found = cluster.lost_found();
  MdtServer* lf_home = cluster.mdt_for(lost_found);
  const std::string name = "lfobj_" + object_fid.to_string();
  Inode& stub = lf_home->image.allocate(InodeType::kRegular);
  stub.lma_fid = lf_home->fids.next();
  stub.link_ea.push_back({lost_found, name});
  stub.lov_ea = LovEa{cluster.default_policy().stripe_size, 1,
                      {{object_fid, ost.index}}};
  lf_home->image.oi_insert(stub.lma_fid, stub.ino);
  Inode* lf = lf_home->image.find_by_fid(lost_found);
  lf->dirents.push_back({name, stub.lma_fid, stub.ino});
  if (Inode* object = ost.image.find_by_fid(object_fid)) {
    object->filter_fid = FilterFid{stub.lma_fid, 0};
  }
  result.events.push_back({LfsckActionKind::kOrphanToLostFound, object_fid,
                           stub.lma_fid, "no file claims this object"});
}

/// Phase 1: layout consistency, driven from the MDS ("whatever is
/// stored in MDS … should overwrite the counterpart").
void phase1_layout(LustreCluster& cluster, const LfsckConfig& config,
                   LfsckResult& result) {
  // Snapshot each MDT's inode range: repairs may allocate new inodes,
  // which a single sequential pass would not revisit.
  for (std::size_t m = 0; m < cluster.mdt_count(); ++m) {
  const std::uint64_t mdt_slots = cluster.mdt_server(m).image.inode_slots();
  for (std::uint64_t ino = 1; ino <= mdt_slots; ++ino) {
    const Inode* inode = cluster.mdt_server(m).image.find(ino);
    if (inode == nullptr) continue;
    ++result.inodes_checked;
    if (inode->type != InodeType::kRegular || !inode->lov_ea.has_value()) {
      continue;
    }
    const Fid file_fid = inode->lma_fid;
    // Work over value copies: repairs can reallocate the tables.
    const LovEa layout = *inode->lov_ea;
    for (std::uint32_t k = 0; k < layout.stripes.size(); ++k) {
      const LovEaEntry slot = layout.stripes[k];
      ++result.rpcs_issued;  // one verification round trip per slot
      if (slot.ost_index >= cluster.osts().size()) {
        result.events.push_back({LfsckActionKind::kSkipped, file_fid,
                                 slot.stripe, "LOVEA names an invalid OST"});
        continue;
      }
      OstServer& ost = cluster.ost(slot.ost_index);
      Inode* object = ost.image.find_by_fid(slot.stripe);
      if (object == nullptr) {
        // Dangling reference. LFSCK trusts the MDS: re-create an empty
        // object under the expected id. (If the real root cause was a
        // corrupted LOVEA or object id, the data is NOT recovered — the
        // stranded object will surface as an orphan below.)
        if (config.repair) {
          Inode& recreated = ost.image.allocate(InodeType::kOstObject);
          recreated.lma_fid = slot.stripe;
          recreated.filter_fid = FilterFid{file_fid, k};
          ost.image.oi_insert(slot.stripe, recreated.ino);
        }
        result.events.push_back({LfsckActionKind::kRecreateOstObject,
                                 slot.stripe, file_fid,
                                 "LOVEA slot resolved to no object"});
        continue;
      }
      const bool pointback_ok = object->filter_fid.has_value() &&
                                object->filter_fid->parent == file_fid &&
                                object->filter_fid->stripe_index == k;
      if (!pointback_ok) {
        // Mismatch: overwrite the OST-side point-back from the MDS
        // value, never questioning the MDS side (Table I, row 7/8).
        if (config.repair) {
          object->filter_fid = FilterFid{file_fid, k};
        }
        result.events.push_back({LfsckActionKind::kOverwriteFilterFid,
                                 object->lma_fid, file_fid,
                                 "filter_fid did not match the MDS layout"});
      }
    }
  }
  }

  // Orphan sweep: every OST object must be claimed by the file its
  // filter_fid names.
  for (std::size_t i = 0; i < cluster.osts().size(); ++i) {
    const std::uint64_t ost_slots = cluster.ost(i).image.inode_slots();
    for (std::uint64_t ino = 1; ino <= ost_slots; ++ino) {
      // Re-fetch the server each iteration: lost+found stubs allocate
      // MDT inodes but OST tables can also grow from phase-1 re-creates
      // that happened before this sweep.
      OstServer& ost = cluster.ost(i);
      const Inode* object = ost.image.find(ino);
      if (object == nullptr) continue;
      ++result.inodes_checked;
      ++result.rpcs_issued;  // claim-verification round trip
      const Fid object_fid = object->lma_fid;
      bool claimed = false;
      if (object->filter_fid.has_value()) {
        const Inode* owner =
            cluster.find_mdt_inode(object->filter_fid->parent);
        if (owner != nullptr && owner->lov_ea.has_value()) {
          claimed = std::any_of(owner->lov_ea->stripes.begin(),
                                owner->lov_ea->stripes.end(),
                                [&](const LovEaEntry& slot) {
                                  return slot.stripe == object_fid;
                                });
        }
      }
      if (!claimed) {
        if (config.repair) {
          ost_orphan_to_lost_found(cluster, ost, object_fid, result);
        } else {
          result.events.push_back({LfsckActionKind::kOrphanToLostFound,
                                   object_fid, kNullFid,
                                   "(dry run) unclaimed object"});
        }
      }
    }
  }
}

/// Phase 2: namespace consistency, trusting DIRENTs over LinkEAs.
void phase2_namespace(LustreCluster& cluster, const LfsckConfig& config,
                      LfsckResult& result) {
  for (std::size_t m = 0; m < cluster.mdt_count(); ++m) {
  const std::uint64_t mdt_slots = cluster.mdt_server(m).image.inode_slots();
  for (std::uint64_t ino = 1; ino <= mdt_slots; ++ino) {
    {
      const Inode* dir = cluster.mdt_server(m).image.find(ino);
      if (dir == nullptr || dir->type != InodeType::kDirectory) continue;
    }
    ++result.inodes_checked;
    // Work over an entry snapshot; we may drop entries as we go.
    const std::vector<DirentEntry> entries =
        cluster.mdt_server(m).image.find(ino)->dirents;
    const Fid dir_fid = cluster.mdt_server(m).image.find(ino)->lma_fid;
    for (const DirentEntry& entry : entries) {
      ++result.rpcs_issued;
      Inode* child = cluster.find_mdt_inode(entry.fid);
      if (child == nullptr) {
        // Dangling DIRENT: the name resolves nowhere. The rule set has
        // no way to find the intended child — drop the entry.
        if (config.repair) {
          Inode* dir = cluster.mdt_server(m).image.find(ino);
          std::erase_if(dir->dirents, [&](const DirentEntry& e) {
            return e.name == entry.name && e.fid == entry.fid;
          });
        }
        result.events.push_back({LfsckActionKind::kRemoveDanglingDirent,
                                 entry.fid, dir_fid,
                                 "entry '" + entry.name + "' resolves nowhere"});
        continue;
      }
      const bool linked = std::any_of(
          child->link_ea.begin(), child->link_ea.end(),
          [&](const LinkEaEntry& link) { return link.parent == dir_fid; });
      if (!linked) {
        // Missing/garbled LinkEA: rebuild from the DIRENT (Table I's one
        // correctly-repaired row).
        if (config.repair) {
          child->link_ea.push_back({dir_fid, entry.name});
        }
        result.events.push_back({LfsckActionKind::kRebuildLinkEa, entry.fid,
                                 dir_fid, "LinkEA rebuilt from DIRENT"});
      }
    }
  }
  }

  // Orphan sweep: every MDT object (except the root and lost+found
  // contents) must be named by some directory.
  const Fid root = cluster.root();
  std::vector<Fid> orphans;
  for (std::size_t m = 0; m < cluster.mdt_count(); ++m) {
  cluster.mdt_server(m).image.for_each_inode([&](const Inode& inode) {
    if (inode.lma_fid == root) return;
    ++result.rpcs_issued;
    bool named = false;
    for (const auto& link : inode.link_ea) {
      const Inode* parent = cluster.find_mdt_inode(link.parent);
      if (parent == nullptr) continue;
      named = std::any_of(parent->dirents.begin(), parent->dirents.end(),
                          [&](const DirentEntry& e) {
                            return e.fid == inode.lma_fid;
                          });
      if (named) break;
    }
    if (!named) orphans.push_back(inode.lma_fid);
  });
  }
  for (const Fid& fid : orphans) {
    if (config.repair) {
      mdt_orphan_to_lost_found(cluster, fid, result);
    } else {
      result.events.push_back({LfsckActionKind::kMdtOrphanToLostFound, fid,
                               kNullFid, "(dry run) unnamed MDT object"});
    }
  }
}

}  // namespace

LfsckResult run_lfsck(LustreCluster& cluster, const LfsckConfig& config) {
  WallTimer timer;
  LfsckResult result;
  phase1_layout(cluster, config, result);
  phase2_namespace(cluster, config, result);
  result.wall_seconds = timer.seconds();

  // Cost model: per-inode random metadata reads + one synchronous RPC
  // per verification, serialized through the coupled pipeline.
  const double io_seconds =
      static_cast<double>(result.inodes_checked) * config.inode_read_seconds;
  const double rpc_seconds = config.rpc.calls(result.rpcs_issued);
  const double cpu_seconds =
      static_cast<double>(result.inodes_checked) * config.per_inode_cpu_seconds;
  result.sim_seconds =
      config.pipeline_stall_factor * (io_seconds + rpc_seconds + cpu_seconds);
  return result;
}

}  // namespace faultyrank
