// Repair actions recommended by the detector (paper §III-F).
//
// Actions are expressed against FIDs, not PFS internals, so the planner
// stays file-system-agnostic; the checker's RepairExecutor translates
// them into concrete EA/DIRENT writes on the simulated Lustre cluster.
#pragma once

#include <string>
#include <vector>

#include "common/fid.h"
#include "graph/types.h"

namespace faultyrank {

enum class RepairKind : std::uint8_t {
  /// Rewrite `target`'s stored object id to `value` (the id its
  /// neighbours expect). Used when id_rank convicts the id.
  kOverwriteId,
  /// Add (or restore) a property entry on `target` pointing to `value`
  /// with `edge_kind` (e.g. re-create a lost LinkEA or LOVEA slot).
  kAddBackPointer,
  /// Replace the property entry on `target` that currently references
  /// `stale` so that it references `value` instead.
  kRelinkProperty,
  /// Remove the property entry on `target` that references `value`
  /// (duplicate or fabricated reference).
  kRemoveReference,
  /// Move object `target` into lost+found — the fallback when the
  /// evidence cannot determine an owner (and what LFSCK does eagerly).
  kQuarantineLostFound,
  /// Report-only: inconsistency observed but no repair is justified.
  kNone,
};

[[nodiscard]] constexpr const char* to_string(RepairKind kind) noexcept {
  switch (kind) {
    case RepairKind::kOverwriteId: return "overwrite-id";
    case RepairKind::kAddBackPointer: return "add-back-pointer";
    case RepairKind::kRelinkProperty: return "relink-property";
    case RepairKind::kRemoveReference: return "remove-reference";
    case RepairKind::kQuarantineLostFound: return "lost+found";
    case RepairKind::kNone: return "none";
  }
  return "?";
}

struct RepairAction {
  RepairKind kind = RepairKind::kNone;
  Fid target;                              ///< object being modified
  Fid value;                               ///< new/expected reference
  Fid stale;                               ///< old reference (kRelinkProperty)
  EdgeKind edge_kind = EdgeKind::kGeneric; ///< which property is touched
  /// Disambiguator for kOverwriteId when two physical objects share the
  /// target id (Double Reference): pick the object whose point-back
  /// references this owner.
  Fid owner_hint;
  std::string note;                        ///< human-readable rationale

  friend bool operator==(const RepairAction& a, const RepairAction& b) {
    return a.kind == b.kind && a.target == b.target && a.value == b.value &&
           a.stale == b.stale && a.edge_kind == b.edge_kind &&
           a.owner_hint == b.owner_hint;
  }
};

using RepairPlan = std::vector<RepairAction>;

}  // namespace faultyrank
