// PropagationPlan — precomputed SpMV form of the FaultyRank iteration
// (DESIGN.md §9).
//
// The naive kernel pays, per edge per iteration, a double division, a
// paired() byte load, and a branch; and per iteration, five full-vertex
// sweeps. Built once from a UnifiedGraph and an unpaired-edge weight,
// the plan hoists every edge-invariant quantity into slot-aligned
// coefficient arrays — the standard move of the PageRank-style systems
// the paper cites (PowerGraph, Ligra):
//
//   coeff_rev[slot] = 1 / outdeg(target(slot))       (reverse CSR slot)
//     pass 1 becomes   acc += prop_rank[u] * coeff_rev[slot]
//
//   coeff_fwd[slot] = (paired ? 1 : w) / W(target)   (forward CSR slot)
//     where W(v) = paired_in(v) + w·unpaired_in(v) is the reversed
//     weighted degree, and the coefficient is 0 when the target is a
//     reversed sink (W = 0), so pass 2 loses its division, branch, and
//     paired() lookup and both half-steps are branch-free
//     multiply-accumulate loops.
//
// The plan also caches the sink-vertex lists of both passes (sorted by
// vertex id), so the sink-share reductions touch only the sinks instead
// of predicate-sweeping every vertex, and the rank kernel can fuse them
// into its gather chunks.
//
// The plan borrows the graph: the UnifiedGraph must outlive it and stay
// at the same address (run_faultyrank verifies identity via matches()).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/thread_pool.h"
#include "graph/unified_graph.h"

namespace faultyrank {

class PropagationPlan {
 public:
  /// Derives the coefficient arrays and sink lists; with a pool the
  /// degree derivation and both coefficient passes run in parallel
  /// (slot-indexed outputs, so the result is identical for any pool).
  /// Throws std::invalid_argument unless unpaired_weight ∈ [0, 1].
  [[nodiscard]] static PropagationPlan build(const UnifiedGraph& graph,
                                             double unpaired_weight,
                                             ThreadPool* pool = nullptr);

  /// Reverse-slot-aligned pass-1 coefficients.
  [[nodiscard]] std::span<const double> coeff_rev() const noexcept {
    return coeff_rev_;
  }
  /// Forward-slot-aligned pass-2 coefficients (0 for reversed-sink
  /// targets).
  [[nodiscard]] std::span<const double> coeff_fwd() const noexcept {
    return coeff_fwd_;
  }
  /// Vertices with no out-edge in G (pass-1 sinks), ascending.
  [[nodiscard]] std::span<const Gid> forward_sinks() const noexcept {
    return forward_sinks_;
  }
  /// Vertices with zero reversed weighted degree (pass-2 sinks),
  /// ascending.
  [[nodiscard]] std::span<const Gid> reversed_sinks() const noexcept {
    return reversed_sinks_;
  }

  [[nodiscard]] double unpaired_weight() const noexcept {
    return unpaired_weight_;
  }

  /// True iff the plan was built from exactly this graph object with
  /// exactly this weight — the kernel refuses stale plans.
  [[nodiscard]] bool matches(const UnifiedGraph& graph,
                             double unpaired_weight) const noexcept {
    return graph_ == &graph && unpaired_weight_ == unpaired_weight;
  }

  /// Heap footprint of the plan (reported next to UnifiedGraph::bytes
  /// in the perf tables).
  [[nodiscard]] std::uint64_t bytes() const noexcept {
    return coeff_rev_.capacity() * sizeof(double) +
           coeff_fwd_.capacity() * sizeof(double) +
           forward_sinks_.capacity() * sizeof(Gid) +
           reversed_sinks_.capacity() * sizeof(Gid);
  }

 private:
  PropagationPlan() = default;

  const UnifiedGraph* graph_ = nullptr;
  double unpaired_weight_ = 0.1;
  std::vector<double> coeff_rev_;
  std::vector<double> coeff_fwd_;
  std::vector<Gid> forward_sinks_;
  std::vector<Gid> reversed_sinks_;
};

}  // namespace faultyrank
