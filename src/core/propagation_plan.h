// PropagationPlan — precomputed SpMV form of the FaultyRank iteration
// (DESIGN.md §9, §14).
//
// The naive kernel pays, per edge per iteration, a double division, a
// paired() byte load, and a branch; and per iteration, five full-vertex
// sweeps. Built once from a UnifiedGraph and an unpaired-edge weight,
// the plan hoists every edge-invariant quantity into slot-aligned
// coefficient arrays — the standard move of the PageRank-style systems
// the paper cites (PowerGraph, Ligra):
//
//   coeff_rev[slot] = 1 / outdeg(target(slot))       (reverse CSR slot)
//     pass 1 becomes   acc += prop_rank[u] * coeff_rev[slot]
//
//   coeff_fwd[slot] = (paired ? 1 : w) / W(target)   (forward CSR slot)
//     where W(v) = paired_in(v) + w·unpaired_in(v) is the reversed
//     weighted degree, and the coefficient is 0 when the target is a
//     reversed sink (W = 0), so pass 2 loses its division, branch, and
//     paired() lookup and both half-steps are branch-free
//     multiply-accumulate loops.
//
// The plan also caches the sink-vertex lists of both passes (sorted by
// vertex id), so the sink-share reductions touch only the sinks instead
// of predicate-sweeping every vertex, and the rank kernel can fuse them
// into its gather chunks.
//
// Two further build-time options shape the memory layout (§14):
//
//   ordering — a locality permutation (graph/reorder.h). The plan
//     relabels the graph through it and owns the relabeled CSR pair;
//     forward()/reverse() hand the kernel whichever adjacency it should
//     sweep. Coefficient *values* are bitwise relabel-invariant (they
//     are pure functions of degrees and pairing, both preserved by
//     renaming); only their slot positions move. Sink lists live in
//     new-id space. The kernel maps results back through permutation().
//
//   float32 — coefficients (and the kernel's rank vectors) in float
//     instead of double, halving the plan's dominant arrays and the
//     per-iteration memory traffic. Each coefficient is computed in
//     double and rounded once. The kernel measures the resulting L∞
//     rank error against the float64 oracle in the benchmarks.
//
// Coefficient arrays live in 64-byte-aligned, first-touch-friendly
// AlignedBuffers: with a pool, each edge-balanced chunk is filled by
// the worker that parallel_for_ranges(sticky) will later hand that same
// chunk to every sweep, so on NUMA machines the pages land on the node
// that reads them.
//
// The plan borrows the graph: the UnifiedGraph must outlive it and stay
// at the same address (run_faultyrank verifies identity via matches()).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/thread_pool.h"
#include "graph/reorder.h"
#include "graph/unified_graph.h"

namespace faultyrank {

/// Build-time layout options. A plan only matches() a config that asks
/// for the same layout.
struct PlanOptions {
  VertexOrdering ordering = VertexOrdering::kNone;
  bool float32 = false;

  friend bool operator==(const PlanOptions&, const PlanOptions&) = default;
};

class PropagationPlan {
 public:
  /// Derives the coefficient arrays and sink lists; with a pool the
  /// degree derivation and both coefficient passes run in parallel
  /// (slot-indexed outputs, so the result is identical for any pool).
  /// Throws std::invalid_argument unless unpaired_weight ∈ [0, 1].
  [[nodiscard]] static PropagationPlan build(const UnifiedGraph& graph,
                                             double unpaired_weight,
                                             ThreadPool* pool = nullptr,
                                             const PlanOptions& options = {});

  /// The adjacency the kernel must sweep: the graph's own CSRs under
  /// the identity ordering, the plan-owned relabeled pair otherwise.
  [[nodiscard]] const Csr& forward() const noexcept {
    return permutation_.empty() ? graph_->forward() : forward_;
  }
  [[nodiscard]] const Csr& reverse() const noexcept {
    return permutation_.empty() ? graph_->reverse() : reverse_;
  }

  /// Reverse-slot-aligned pass-1 coefficients (empty in float32 mode).
  [[nodiscard]] std::span<const double> coeff_rev() const noexcept {
    return coeff_rev_.span();
  }
  /// Forward-slot-aligned pass-2 coefficients (0 for reversed-sink
  /// targets; empty in float32 mode).
  [[nodiscard]] std::span<const double> coeff_fwd() const noexcept {
    return coeff_fwd_.span();
  }
  /// float32-mode counterparts (empty in float64 mode).
  [[nodiscard]] std::span<const float> coeff_rev_f32() const noexcept {
    return coeff_rev_f32_.span();
  }
  [[nodiscard]] std::span<const float> coeff_fwd_f32() const noexcept {
    return coeff_fwd_f32_.span();
  }

  /// Vertices with no out-edge in G (pass-1 sinks), ascending — in the
  /// plan's (possibly relabeled) id space, like everything the kernel
  /// sweeps.
  [[nodiscard]] std::span<const Gid> forward_sinks() const noexcept {
    return forward_sinks_;
  }
  /// Vertices with zero reversed weighted degree (pass-2 sinks),
  /// ascending, plan id space.
  [[nodiscard]] std::span<const Gid> reversed_sinks() const noexcept {
    return reversed_sinks_;
  }

  [[nodiscard]] double unpaired_weight() const noexcept {
    return unpaired_weight_;
  }
  [[nodiscard]] const PlanOptions& options() const noexcept {
    return options_;
  }
  /// Empty under VertexOrdering::kNone.
  [[nodiscard]] const VertexPermutation& permutation() const noexcept {
    return permutation_;
  }

  /// True iff the plan was built from exactly this graph object with
  /// exactly this weight — the kernel refuses stale plans. The
  /// two-argument form ignores layout; kernels use the full form.
  [[nodiscard]] bool matches(const UnifiedGraph& graph,
                             double unpaired_weight) const noexcept {
    return graph_ == &graph && unpaired_weight_ == unpaired_weight;
  }
  [[nodiscard]] bool matches(const UnifiedGraph& graph, double unpaired_weight,
                             const PlanOptions& options) const noexcept {
    return matches(graph, unpaired_weight) && options_ == options;
  }

  /// Heap footprint of the plan (reported next to UnifiedGraph::bytes
  /// in the perf tables): coefficients, sink lists, and — when a
  /// non-identity ordering is active — the permutation pair and the
  /// owned relabeled CSRs.
  [[nodiscard]] std::uint64_t bytes() const noexcept {
    std::uint64_t total = coeff_rev_.bytes() + coeff_fwd_.bytes() +
                          coeff_rev_f32_.bytes() + coeff_fwd_f32_.bytes() +
                          forward_sinks_.capacity() * sizeof(Gid) +
                          reversed_sinks_.capacity() * sizeof(Gid) +
                          permutation_.bytes();
    if (!permutation_.empty()) {
      total += forward_.bytes() + reverse_.bytes();
    }
    return total;
  }

 private:
  PropagationPlan() = default;

  const UnifiedGraph* graph_ = nullptr;
  double unpaired_weight_ = 0.1;
  PlanOptions options_;
  VertexPermutation permutation_;
  // Relabeled adjacency, built via the same Csr::build path as
  // UnifiedGraph::from_edges; empty (and unused) under kNone.
  Csr forward_;
  Csr reverse_;
  AlignedBuffer<double> coeff_rev_;
  AlignedBuffer<double> coeff_fwd_;
  AlignedBuffer<float> coeff_rev_f32_;
  AlignedBuffer<float> coeff_fwd_f32_;
  std::vector<Gid> forward_sinks_;
  std::vector<Gid> reversed_sinks_;
};

}  // namespace faultyrank
