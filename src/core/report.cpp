#include "core/report.h"

#include <array>
#include <cstdio>

namespace faultyrank {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(ch));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

namespace {

constexpr std::array<InconsistencyCategory, 5> kCategories = {
    InconsistencyCategory::kDanglingReference,
    InconsistencyCategory::kUnreferencedObject,
    InconsistencyCategory::kDoubleReference,
    InconsistencyCategory::kMismatch,
    InconsistencyCategory::kNamespaceCycle,
};

std::string format_double(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", value);
  return buf;
}

}  // namespace

std::string render_text(const DetectionReport& report) {
  std::string out;
  if (report.consistent()) {
    return "filesystem is consistent: no findings\n";
  }
  out += std::to_string(report.findings.size()) + " finding(s):\n";
  for (const InconsistencyCategory category : kCategories) {
    const std::size_t count = report.count(category);
    if (count > 0) {
      out += "  " + std::string(to_string(category)) + ": " +
             std::to_string(count) + "\n";
    }
  }
  if (const std::size_t unverifiable = report.unverifiable_count();
      unverifiable > 0) {
    out += "  unverifiable (lost scan coverage): " +
           std::to_string(unverifiable) + "\n";
  }
  std::size_t index = 0;
  for (const Finding& f : report.findings) {
    out += "\n[" + std::to_string(index++) + "] " +
           std::string(to_string(f.category));
    if (f.unverifiable) out += " [unverifiable]";
    out += "\n";
    if (!f.source.is_null()) out += "  source:  " + f.source.to_string() + "\n";
    out += "  target:  " + f.target.to_string() + "\n";
    out += "  culprit: " + std::string(to_string(f.culprit));
    if (!f.convicted_object.is_null()) {
      out += " (" + f.convicted_object.to_string() + "." +
             (f.convicted_id_field ? "id" : "property") + ")";
    }
    out += "\n  ranks:   src=[" + format_double(f.source_id_rank) + "," +
           format_double(f.source_prop_rank) + "] dst=[" +
           format_double(f.target_id_rank) + "," +
           format_double(f.target_prop_rank) + "]\n";
    out += "  repair:  " + std::string(to_string(f.repair.kind));
    if (!f.repair.target.is_null()) {
      out += " target=" + f.repair.target.to_string();
    }
    if (!f.repair.value.is_null()) {
      out += " value=" + f.repair.value.to_string();
    }
    out += "\n  note:    " + f.note + "\n";
  }
  return out;
}

std::string render_json(const DetectionReport& report) {
  std::string out = "{\n";
  out += "  \"consistent\": " +
         std::string(report.consistent() ? "true" : "false") + ",\n";
  out += "  \"finding_count\": " + std::to_string(report.findings.size()) +
         ",\n";
  out += "  \"unverifiable_count\": " +
         std::to_string(report.unverifiable_count()) + ",\n";
  out += "  \"categories\": {";
  bool first = true;
  for (const InconsistencyCategory category : kCategories) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + std::string(to_string(category)) +
           "\": " + std::to_string(report.count(category));
  }
  out += "},\n";
  out += "  \"findings\": [\n";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const Finding& f = report.findings[i];
    out += "    {\"category\": \"" + std::string(to_string(f.category)) +
           "\"";
    out += ", \"culprit\": \"" + std::string(to_string(f.culprit)) + "\"";
    out += ", \"source\": \"" + f.source.to_string() + "\"";
    out += ", \"target\": \"" + f.target.to_string() + "\"";
    out += ", \"convicted\": \"" + f.convicted_object.to_string() + "\"";
    out += ", \"convicted_field\": \"" +
           std::string(f.convicted_id_field ? "id" : "property") + "\"";
    out += ", \"ranks\": {\"source_id\": " + format_double(f.source_id_rank) +
           ", \"source_prop\": " + format_double(f.source_prop_rank) +
           ", \"target_id\": " + format_double(f.target_id_rank) +
           ", \"target_prop\": " + format_double(f.target_prop_rank) + "}";
    out += ", \"repair\": {\"kind\": \"" +
           std::string(to_string(f.repair.kind)) + "\", \"target\": \"" +
           f.repair.target.to_string() + "\", \"value\": \"" +
           f.repair.value.to_string() + "\"}";
    out += ", \"unverifiable\": " +
           std::string(f.unverifiable ? "true" : "false");
    out += ", \"note\": \"" + json_escape(f.note) + "\"}";
    out += i + 1 < report.findings.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace faultyrank
