// The FaultyRank iterative algorithm (paper Alg. 1, §III).
//
// Two credibility scores per metadata object:
//   id_rank   — how believable the object's unique ID is (reinforced by
//               other objects' properties pointing at it), and
//   prop_rank — how believable its properties are (reinforced by
//               pointing at credible IDs).
//
// Each iteration runs two half-steps:
//   1. ID pass (original graph G): every vertex u distributes
//      prop_rank[u]/outdeg(u) along its out-edges; targets accumulate
//      into id_rank.
//   2. Property pass (reversed graph G_R): every vertex v distributes
//      id_rank[v] along its reversed out-edges, with unpaired edges
//      down-weighted (default 1/10 — Fig. 4) so that wishfully pointing
//      at a credible ID without an acknowledgment earns little credit.
//
// Sink vertices (no outgoing edges in the respective pass's graph)
// donate their mass uniformly to all vertices, so total mass is
// conserved; with the Alg. 1 initialization of 1.0 per vertex the mean
// rank stays exactly 1, which makes the detection threshold θ (paper:
// 0.1) a scale-free "10 % of an average object's credibility".
//
// The implementation is the pull-style transposition of Alg. 1's push
// loops: pass 1 gathers over in-neighbours via the reversed CSR, pass 2
// gathers over out-neighbours via the forward CSR. Pull form is
// mathematically identical, race-free under vertex-partitioned
// parallelism, and deterministic.
//
// Two kernels share that pull formulation (DESIGN.md §9, §14):
//   run_faultyrank           — the production kernel: precomputed
//                              PropagationPlan coefficients (branch- and
//                              division-free gathers, optionally AVX2
//                              and/or float32), sink-share and diff
//                              reductions fused into the gather sweeps
//                              (two full sweeps per iteration, not
//                              five), edge-balanced sticky chunk
//                              scheduling, optional locality reordering.
//   run_faultyrank_reference — the naive unfused kernel, kept as the
//                              golden oracle and benchmark baseline; it
//                              pays the per-edge division, branch, and
//                              paired() load every iteration.
// Every reduction in both kernels is grouped into fixed
// kRankReductionBlock-vertex blocks combined in block order, and every
// per-vertex gather uses the canonical lane tree of rank_gather.h, so
// for a given vertex ordering the kernels produce bit-identical
// float64 results at ANY pool size, with or without SIMD — stronger
// than the seed's fixed-thread-count guarantee. Bit-determinism is
// *per ordering*: a reordered run is bit-identical to the reference
// kernel on the relabeled graph (the cross-kernel tests check exactly
// that), not to the kNone run, whose sums group differently.
#pragma once

#include <cstddef>
#include <vector>

#include "common/thread_pool.h"
#include "graph/reorder.h"
#include "graph/unified_graph.h"

namespace faultyrank {

class PropagationPlan;

/// Default vertex count below which the kernel ignores the pool and
/// runs on the calling thread — forking chunks costs more than the
/// work. FaultyRankConfig::serial_grain overrides it (the ablation
/// benches sweep it); 0 means "always use the pool".
inline constexpr std::size_t kDefaultSerialGrain = 2048;

/// Fixed reduction-block width (vertices). Every sum reduction in both
/// kernels is computed as per-block partial sums combined in ascending
/// block order; the grouping depends only on the vertex count, never on
/// the pool, which is what makes results bit-identical across pool
/// sizes. Gather chunk boundaries are aligned to this so a fused
/// reduction block never splits across chunks.
inline constexpr std::size_t kRankReductionBlock = 1024;

/// How the per-iteration change of id_rank is measured for convergence.
enum class DiffNorm {
  /// Σ|Δ| / (N·initial_rank): the L1 change relative to total mass.
  /// This is the scale the paper's numbers live on (its Table II ranks
  /// sum to 1), and the only reading under which its "ε = 0.1 …
  /// typically fewer than 20 iterations" holds for million-vertex
  /// graphs. Default.
  kL1Mass,
  kL1,      ///< Σ|Δ| — the literal Alg. 1 quantity
  kL1Mean,  ///< Σ|Δ|/N
  kLInf,    ///< max|Δ|
};

struct FaultyRankConfig {
  /// Convergence threshold ε on the id_rank diff (paper: 0.1).
  double epsilon = 0.1;
  /// Hard iteration cap (the paper observes < 20 iterations at ε=0.1).
  std::size_t max_iterations = 100;
  /// Weight of unpaired edges in the reversed-graph pass (paper: 1/10).
  double unpaired_weight = 0.1;
  /// Initial id_rank and prop_rank per vertex (Alg. 1: 1.0).
  double initial_rank = 1.0;
  DiffNorm diff_norm = DiffNorm::kL1Mass;
  /// Warm start: borrowed initial rank vectors (size must equal the
  /// graph's vertex count; both set or both null). An online checker
  /// re-checking a slightly-changed graph converges in fewer iterations
  /// from the previous fixpoint than from the uniform initialization.
  const std::vector<double>* initial_id_ranks = nullptr;
  const std::vector<double>* initial_prop_ranks = nullptr;
  /// Serial-fallback grain: with fewer vertices than this the kernel
  /// skips the pool entirely (see kDefaultSerialGrain).
  std::size_t serial_grain = kDefaultSerialGrain;
  /// Paper §VIII future work: additionally decompose each vertex's
  /// property credibility per property kind (DIRENT / LinkEA / LOVEA /
  /// ObjLinkEA), so one corrupted extended attribute can be told apart
  /// from its healthy siblings on the same object. Fills
  /// FaultyRankResult::prop_rank_by_kind from the converged id ranks.
  bool separate_properties = false;
  /// Locality relabeling the kernel sweeps under (DESIGN.md §14). The
  /// plan owns the permuted adjacency; results are always reported in
  /// original Gid space. Changes which fixpoint bits you get (summation
  /// order follows the ordering) but not the mathematics.
  VertexOrdering ordering = VertexOrdering::kNone;
  /// Run the plan kernel with float32 coefficients and rank vectors:
  /// half the plan bytes and half the sweep traffic, for a measured
  /// (benchmarked) L∞ deviation from the float64 oracle. Results are
  /// widened back to double in FaultyRankResult.
  bool float32 = false;
  /// Permit the AVX2 gather sweeps when compiled in (FAULTYRANK_SIMD)
  /// and supported by the CPU. Bit-identical to the scalar path either
  /// way; exists so benchmarks can isolate the SIMD contribution.
  bool use_simd = true;
};

/// Number of distinct property kinds tracked by the per-kind split.
inline constexpr std::size_t kEdgeKindCount = 5;

struct FaultyRankResult {
  std::vector<double> id_rank;
  std::vector<double> prop_rank;
  /// Per-kind decomposition of prop_rank (empty unless
  /// separate_properties was set): prop_rank_by_kind[kind][v] is the
  /// credit v's properties of that kind earn from the converged id
  /// ranks. Summing over kinds and adding the reversed-sink share
  /// reproduces prop_rank exactly.
  std::vector<std::vector<double>> prop_rank_by_kind;
  std::size_t iterations = 0;
  double final_diff = 0.0;
  bool converged = false;

  /// Mean rank (total mass / N, computed from the converged vector —
  /// mass is conserved, so this equals the initialization's mean).
  /// Detection thresholds are applied to rank/mean_rank so results are
  /// invariant to the initialization.
  double mean_rank = 1.0;

  [[nodiscard]] double normalized_id_rank(Gid v) const {
    return id_rank[v] / mean_rank;
  }
  [[nodiscard]] double normalized_prop_rank(Gid v) const {
    return prop_rank[v] / mean_rank;
  }
};

/// Runs FaultyRank on the unified graph with an internally-built
/// PropagationPlan. If `pool` is non-null, edge-balanced vertex ranges
/// are processed on it; otherwise the kernel runs on the calling
/// thread. Callers that iterate repeatedly over an unchanged graph
/// (online re-checks, benchmarks) should build the plan once and use
/// the overload below.
[[nodiscard]] FaultyRankResult run_faultyrank(const UnifiedGraph& graph,
                                              const FaultyRankConfig& config = {},
                                              ThreadPool* pool = nullptr);

/// Same kernel, reusing a prebuilt plan. Throws std::invalid_argument
/// if the plan was not built from exactly this graph with
/// config.unpaired_weight.
[[nodiscard]] FaultyRankResult run_faultyrank(const UnifiedGraph& graph,
                                              const PropagationPlan& plan,
                                              const FaultyRankConfig& config = {},
                                              ThreadPool* pool = nullptr);

/// The naive pre-plan kernel: five vertex-count-partitioned sweeps per
/// iteration, per-edge division/branch/paired() load. Kept as the
/// golden oracle (bit-identical to the plan kernel at any pool size —
/// the cross-kernel test enforces it) and as the benchmark baseline
/// that BENCH_kernels.json tracks the plan's speedup against.
[[nodiscard]] FaultyRankResult run_faultyrank_reference(
    const UnifiedGraph& graph, const FaultyRankConfig& config = {},
    ThreadPool* pool = nullptr);

}  // namespace faultyrank
