#include "core/propagation_plan.h"

#include <stdexcept>

namespace faultyrank {

namespace {

/// Runs body(begin, end) over [0, n) on the pool if it helps. Outputs
/// of every caller are index-addressed, so chunking cannot change the
/// result.
template <typename Body>
void for_range(ThreadPool* pool, std::uint64_t n, const Body& body) {
  if (pool == nullptr || pool->size() <= 1 || n < 2048) {
    if (n > 0) body(std::uint64_t{0}, n);
    return;
  }
  pool->parallel_for(static_cast<std::size_t>(n),
                     [&body](std::size_t begin, std::size_t end, std::size_t) {
                       body(begin, end);
                     });
}

}  // namespace

PropagationPlan PropagationPlan::build(const UnifiedGraph& graph,
                                       double unpaired_weight,
                                       ThreadPool* pool) {
  if (unpaired_weight < 0.0 || unpaired_weight > 1.0) {
    throw std::invalid_argument(
        "propagation plan: unpaired_weight must be within [0, 1]");
  }

  PropagationPlan plan;
  plan.graph_ = &graph;
  plan.unpaired_weight_ = unpaired_weight;

  const std::size_t n = graph.vertex_count();
  const Csr& forward = graph.forward();
  const Csr& reverse = graph.reverse();

  // Weighted out-degree of each vertex in the *reversed* graph (Fig. 4)
  // — the expression must stay textually identical to the reference
  // kernel's so coefficients reproduce its arithmetic bit-for-bit.
  std::vector<double> reversed_weighted_degree(n);
  for_range(pool, n, [&](std::uint64_t begin, std::uint64_t end) {
    for (std::uint64_t v = begin; v < end; ++v) {
      const auto gv = static_cast<Gid>(v);
      reversed_weighted_degree[v] =
          static_cast<double>(graph.paired_in_degree(gv)) +
          unpaired_weight * static_cast<double>(graph.unpaired_in_degree(gv));
    }
  });

  // Pass-1 coefficients: a reverse edge v←u carries prop_rank[u] scaled
  // by 1/outdeg(u). outdeg(u) ≥ 1 by construction (u owns this edge).
  plan.coeff_rev_.resize(reverse.edge_count());
  for_range(pool, reverse.edge_count(),
            [&](std::uint64_t begin, std::uint64_t end) {
              for (std::uint64_t slot = begin; slot < end; ++slot) {
                plan.coeff_rev_[slot] =
                    1.0 / static_cast<double>(
                              forward.out_degree(reverse.target(slot)));
              }
            });

  // Pass-2 coefficients: a forward edge v→t is a reversed edge t→v
  // carrying id_rank[t] scaled by weight/W(t); reversed sinks (W = 0)
  // get coefficient 0 so the kernel needs no branch.
  plan.coeff_fwd_.resize(forward.edge_count());
  for_range(pool, forward.edge_count(),
            [&](std::uint64_t begin, std::uint64_t end) {
              for (std::uint64_t slot = begin; slot < end; ++slot) {
                const double denom =
                    reversed_weighted_degree[forward.target(slot)];
                if (denom == 0.0) {
                  plan.coeff_fwd_[slot] = 0.0;
                  continue;
                }
                const double w = graph.paired(slot) ? 1.0 : unpaired_weight;
                plan.coeff_fwd_[slot] = w / denom;
              }
            });

  // Sink lists, ascending (serial: one cheap pass, done once per plan).
  for (std::size_t v = 0; v < n; ++v) {
    const auto gv = static_cast<Gid>(v);
    if (forward.out_degree(gv) == 0) plan.forward_sinks_.push_back(gv);
    if (reversed_weighted_degree[v] == 0.0) plan.reversed_sinks_.push_back(gv);
  }
  return plan;
}

}  // namespace faultyrank
