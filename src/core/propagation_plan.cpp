#include "core/propagation_plan.h"

#include <stdexcept>

#include "core/faultyrank.h"

namespace faultyrank {

namespace {

/// Runs body(begin, end) over [0, n) on the pool if it helps. Outputs
/// of every caller are index-addressed, so chunking cannot change the
/// result.
template <typename Body>
void for_range(ThreadPool* pool, std::uint64_t n, const Body& body) {
  if (pool == nullptr || pool->size() <= 1 || n < 2048) {
    if (n > 0) body(std::uint64_t{0}, n);
    return;
  }
  pool->parallel_for(static_cast<std::size_t>(n),
                     [&body](std::size_t begin, std::size_t end, std::size_t) {
                       body(begin, end);
                     });
}

/// Fills a slot-aligned coefficient array, Real = float or double;
/// value(source, slot) is always computed in double and rounded once.
/// The parallel path partitions vertices by edge weight aligned to
/// kRankReductionBlock — the exact partition the rank kernel derives
/// for its sweeps at equal pool size — and pins chunk c to worker c
/// (sticky), so first-touch places each coefficient page on the worker
/// that will gather from it every iteration.
template <typename Real, typename PerSlot>
AlignedBuffer<Real> fill_coefficients(ThreadPool* pool, const Csr& csr,
                                      const PerSlot& value) {
  AlignedBuffer<Real> out(csr.edge_count());
  const auto body = [&](std::size_t begin, std::size_t end, std::size_t) {
    for (std::size_t v = begin; v < end; ++v) {
      const auto gv = static_cast<Gid>(v);
      const std::uint64_t slots_end = csr.edges_end(gv);
      for (std::uint64_t slot = csr.edges_begin(gv); slot < slots_end;
           ++slot) {
        out[slot] = static_cast<Real>(value(gv, slot));
      }
    }
  };
  const std::size_t n = csr.vertex_count();
  if (pool == nullptr || pool->size() <= 1 || csr.edge_count() < 4096) {
    if (n > 0) body(0, n, 0);
    return out;
  }
  const auto bounds =
      partition_by_weight(csr.offsets(), pool->size(), kRankReductionBlock);
  pool->parallel_for_ranges(bounds, body, /*sticky=*/true);
  return out;
}

}  // namespace

PropagationPlan PropagationPlan::build(const UnifiedGraph& graph,
                                       double unpaired_weight,
                                       ThreadPool* pool,
                                       const PlanOptions& options) {
  if (unpaired_weight < 0.0 || unpaired_weight > 1.0) {
    throw std::invalid_argument(
        "propagation plan: unpaired_weight must be within [0, 1]");
  }

  PropagationPlan plan;
  plan.graph_ = &graph;
  plan.unpaired_weight_ = unpaired_weight;
  plan.options_ = options;

  const std::size_t n = graph.vertex_count();
  plan.permutation_ = compute_ordering(graph, options.ordering);
  const VertexPermutation& perm = plan.permutation_;
  if (!perm.empty()) {
    // Same build path as UnifiedGraph::from_edges takes — relabeling is
    // a pure renaming, so golden tests can rebuild the relabeled graph
    // independently and expect bit-equal sweeps.
    plan.forward_ = Csr::build(n, relabel_edges(graph.forward(), perm));
    plan.reverse_ = plan.forward_.reversed();
  }
  const Csr& forward = plan.forward();
  const Csr& reverse = plan.reverse();

  // Weighted out-degree of each vertex in the *reversed* graph (Fig. 4),
  // in plan-id space — the expression must stay textually identical to
  // the reference kernel's so coefficients reproduce its arithmetic
  // bit-for-bit (degrees are per-vertex, hence relabel-invariant).
  std::vector<double> reversed_weighted_degree(n);
  for_range(pool, n, [&](std::uint64_t begin, std::uint64_t end) {
    for (std::uint64_t v = begin; v < end; ++v) {
      const Gid old =
          perm.empty() ? static_cast<Gid>(v) : perm.old_of_new[v];
      reversed_weighted_degree[v] =
          static_cast<double>(graph.paired_in_degree(old)) +
          unpaired_weight * static_cast<double>(graph.unpaired_in_degree(old));
    }
  });

  // Pass-1 coefficients: a reverse edge v←u carries prop_rank[u] scaled
  // by 1/outdeg(u). outdeg(u) ≥ 1 by construction (u owns this edge).
  const auto rev_value = [&](Gid, std::uint64_t slot) {
    return 1.0 / static_cast<double>(forward.out_degree(reverse.target(slot)));
  };
  // Pass-2 coefficients: a forward edge v→t is a reversed edge t→v
  // carrying id_rank[t] scaled by weight/W(t); reversed sinks (W = 0)
  // get coefficient 0 so the kernel needs no branch. Pairing of v→t is
  // "does t→v exist"; under a relabel the graph's slot-aligned paired()
  // bits no longer line up, so the relabeled CSR answers the same
  // question by membership test (exactly how finalize() computed the
  // bits in the first place).
  const auto fwd_value = [&](Gid v, std::uint64_t slot) {
    const double denom = reversed_weighted_degree[forward.target(slot)];
    if (denom == 0.0) return 0.0;
    const bool paired = perm.empty()
                            ? graph.paired(slot)
                            : forward.has_edge(forward.target(slot), v);
    return (paired ? 1.0 : unpaired_weight) / denom;
  };

  if (options.float32) {
    plan.coeff_rev_f32_ = fill_coefficients<float>(pool, reverse, rev_value);
    plan.coeff_fwd_f32_ = fill_coefficients<float>(pool, forward, fwd_value);
  } else {
    plan.coeff_rev_ = fill_coefficients<double>(pool, reverse, rev_value);
    plan.coeff_fwd_ = fill_coefficients<double>(pool, forward, fwd_value);
  }

  // Sink lists, ascending in plan-id space (serial: one cheap pass,
  // done once per plan).
  for (std::size_t v = 0; v < n; ++v) {
    const auto gv = static_cast<Gid>(v);
    if (forward.out_degree(gv) == 0) plan.forward_sinks_.push_back(gv);
    if (reversed_weighted_degree[v] == 0.0) plan.reversed_sinks_.push_back(gv);
  }
  return plan;
}

}  // namespace faultyrank
