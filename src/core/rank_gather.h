// The canonical per-vertex gather tree shared by every rank kernel
// (DESIGN.md §14).
//
// A vertex's gather Σ rank[target(slot)]·coeff[slot] is accumulated
// into kGatherLanes independent partial sums by relative slot position
// modulo the lane count, then combined pairwise:
//
//   doubles (4 lanes):  (l0 + l2) + (l1 + l3)
//   floats  (8 lanes):  halve first (m_j = l_j + l_{j+4}), then the
//                       4-lane tree over m.
//
// This is exactly what a 256-bit vector accumulator computes: the SIMD
// loop's per-lane add is the scalar loop's modular lane add, and the
// horizontal reduction is the pairwise tree. Because BOTH the scalar
// and the SIMD implementations (and the naive reference kernel's
// inlined loops) use this one shape, SIMD-vs-scalar and
// planned-vs-reference stay bit-identical. Two provisos, both enforced
// by the build: no FMA contraction (rank·coeff must round before the
// add — the whole project compiles with -ffp-contract=off), and
// skipped zero-coefficient terms must be exact +0.0 adds, which are
// no-ops on the non-negative partial sums these kernels produce.
#pragma once

#include <cstddef>
#include <cstdint>

#include "graph/types.h"

namespace faultyrank::detail {

template <typename Real>
inline constexpr std::size_t kGatherLanes = 32 / sizeof(Real);

/// Portable implementation of the canonical tree; the oracle the SIMD
/// paths are tested bit-for-bit against. Header-inline so the golden
/// test exercises the very code the kernel runs.
template <typename Real>
[[nodiscard]] inline Real gather_scalar(const Gid* targets, const Real* coeff,
                                        std::uint64_t count,
                                        const Real* rank) noexcept {
  constexpr std::size_t kLanes = kGatherLanes<Real>;
  Real lanes[kLanes] = {};
  for (std::uint64_t i = 0; i < count; ++i) {
    lanes[i % kLanes] += rank[targets[i]] * coeff[i];
  }
  if constexpr (kLanes == 4) {
    return (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
  } else {
    Real half[4];
    for (std::size_t j = 0; j < 4; ++j) half[j] = lanes[j] + lanes[j + 4];
    return (half[0] + half[2]) + (half[1] + half[3]);
  }
}

#if defined(FAULTYRANK_SIMD)
/// True when the running CPU can execute the AVX2 paths (checked once
/// per kernel invocation; the binary always carries the scalar path).
[[nodiscard]] bool cpu_supports_avx2() noexcept;

/// AVX2 gathers — bit-identical to gather_scalar by construction
/// (tests/core/simd_gather_test.cpp proves it with std::bit_cast).
/// Indices are sign-extended by the gather instruction, so callers must
/// keep vertex counts ≤ INT32_MAX (the dispatcher enforces this).
[[nodiscard]] double gather_avx2_f64(const Gid* targets, const double* coeff,
                                     std::uint64_t count,
                                     const double* rank) noexcept;
[[nodiscard]] float gather_avx2_f32(const Gid* targets, const float* coeff,
                                    std::uint64_t count,
                                    const float* rank) noexcept;
#endif  // FAULTYRANK_SIMD

}  // namespace faultyrank::detail
