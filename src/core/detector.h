// Inconsistency detection and root-cause attribution (paper §III-F).
//
// The detector walks the pairing analysis of the unified graph (the
// S_chk set: every unpaired edge, every unreferenced scanned object,
// every over-referenced object), classifies each record into one of the
// paper's four Table I categories, attributes the root cause by
// comparing the mean-normalized FaultyRank scores of the candidate
// fields against the threshold θ (paper: 0.1), and emits a concrete
// repair recommendation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/faultyrank.h"
#include "core/repair.h"
#include "graph/coverage.h"
#include "graph/unified_graph.h"

namespace faultyrank {

/// Table I's four inconsistency categories, plus one beyond the paper:
/// kNamespaceCycle covers the case §VI calls out as undetectable by
/// pairing ("multiple paired metadata are all wrong but pointing to
/// each other coherently") — a detached directory cycle has no unpaired
/// edge at all, but a reachability pass from the root exposes it.
enum class InconsistencyCategory : std::uint8_t {
  kDanglingReference,   ///< a's property cannot locate b
  kUnreferencedObject,  ///< no object refers to b
  kDoubleReference,     ///< more than one object refers to b
  kMismatch,            ///< a refers to b, b does not point back
  kNamespaceCycle,      ///< directories form a cycle detached from root
};

[[nodiscard]] constexpr const char* to_string(
    InconsistencyCategory c) noexcept {
  switch (c) {
    case InconsistencyCategory::kDanglingReference: return "dangling-reference";
    case InconsistencyCategory::kUnreferencedObject: return "unreferenced-object";
    case InconsistencyCategory::kDoubleReference: return "double-reference";
    case InconsistencyCategory::kMismatch: return "mismatch";
    case InconsistencyCategory::kNamespaceCycle: return "namespace-cycle";
  }
  return "?";
}

/// Which metadata field the evidence convicts.
enum class FaultyField : std::uint8_t {
  kSourceProperty,  ///< the referencing object's property is wrong
  kSourceId,        ///< the referencing object's id is wrong
  kTargetProperty,  ///< the referenced object's property is wrong
  kTargetId,        ///< the referenced object's id is wrong
  kUndetermined,    ///< ranks do not single out a culprit
};

[[nodiscard]] constexpr const char* to_string(FaultyField f) noexcept {
  switch (f) {
    case FaultyField::kSourceProperty: return "source.property";
    case FaultyField::kSourceId: return "source.id";
    case FaultyField::kTargetProperty: return "target.property";
    case FaultyField::kTargetId: return "target.id";
    case FaultyField::kUndetermined: return "undetermined";
  }
  return "?";
}

/// One detected inconsistency with its evidence and repair.
struct Finding {
  InconsistencyCategory category = InconsistencyCategory::kMismatch;
  FaultyField culprit = FaultyField::kUndetermined;

  Fid source;  ///< referencing object (null for vertex-level findings)
  Fid target;  ///< referenced / affected object
  EdgeKind edge_kind = EdgeKind::kGeneric;

  /// The object whose metadata the evidence convicts (may differ from
  /// both endpoints, e.g. the mis-identified object behind a dangling
  /// reference), and whether its id (true) or property (false) is the
  /// convicted field. Null FID when undetermined.
  Fid convicted_object;
  bool convicted_id_field = false;

  // Mean-normalized rank evidence for the two endpoints.
  double source_id_rank = 0.0;
  double source_prop_rank = 0.0;
  double target_id_rank = 0.0;
  double target_prop_rank = 0.0;

  RepairAction repair;
  std::string note;

  /// The evidence for this finding lies (at least partly) in a region
  /// the scan lost — a crashed server's FID space or a quarantined
  /// inode. The referenced object may exist and simply be unobservable,
  /// so no repair is recommended (kNone) and the finding is reported
  /// for re-checking once coverage is restored.
  bool unverifiable = false;
};

struct DetectorConfig {
  /// Fields whose mean-normalized rank falls below this are candidate
  /// culprits. The paper states θ = 0.1 against ranks that sum to 1
  /// over its 4-vertex example (Table II), i.e. 0.4× the mean rank —
  /// which is the scale-free form that carries to graphs of any size.
  double threshold = 0.4;
  /// FID of the filesystem root (exempt from the unreferenced check —
  /// nothing points at the root directory by design).
  Fid root;
  /// What the scan failed to observe (from the degraded pipeline).
  /// Findings whose evidence touches the lost region are labeled
  /// unverifiable instead of convicting anyone: a reference into a
  /// crashed OST dangles because the scan is incomplete, not because
  /// the metadata is wrong. Default: full coverage, no effect.
  CoverageInfo coverage;
};

struct DetectionReport {
  std::vector<Finding> findings;

  [[nodiscard]] bool consistent() const noexcept { return findings.empty(); }
  [[nodiscard]] std::size_t count(InconsistencyCategory category) const;
  [[nodiscard]] std::size_t unverifiable_count() const;
  [[nodiscard]] RepairPlan repair_plan() const;
};

/// Runs detection over `graph` using the credibility scores in `ranks`.
[[nodiscard]] DetectionReport detect_inconsistencies(
    const UnifiedGraph& graph, const FaultyRankResult& ranks,
    const DetectorConfig& config = {});

}  // namespace faultyrank
