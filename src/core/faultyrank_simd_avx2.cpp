// AVX2 implementations of the canonical gather tree (rank_gather.h).
//
// This TU is the only one compiled with -mavx2; everything else in
// fr_core must stay runnable on a baseline x86-64, which is why the
// dispatcher guards every call with cpu_supports_avx2(). Like the rest
// of the project it is compiled with -ffp-contract=off: the scalar
// tails below must round rank·coeff before adding, exactly as
// gather_scalar does, or the last 1–3 slots of odd-degree vertices
// would break bit-identity.

#include <immintrin.h>

#include "core/rank_gather.h"

namespace faultyrank::detail {

bool cpu_supports_avx2() noexcept {
  return __builtin_cpu_supports("avx2") != 0;
}

double gather_avx2_f64(const Gid* targets, const double* coeff,
                       std::uint64_t count, const double* rank) noexcept {
  __m256d acc = _mm256_setzero_pd();
  std::uint64_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m128i idx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(targets + i));
    const __m256d gathered = _mm256_i32gather_pd(rank, idx, 8);
    // mul then add, never FMA — one rounding per operation, matching
    // the scalar lanes.
    acc = _mm256_add_pd(acc, _mm256_mul_pd(gathered,
                                           _mm256_loadu_pd(coeff + i)));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  // Tail starts at a multiple of 4, so i & 3 is the same lane the
  // scalar loop's i % kLanes would pick.
  for (; i < count; ++i) {
    lanes[i & 3] += rank[targets[i]] * coeff[i];
  }
  return (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
}

float gather_avx2_f32(const Gid* targets, const float* coeff,
                      std::uint64_t count, const float* rank) noexcept {
  __m256 acc = _mm256_setzero_ps();
  std::uint64_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(targets + i));
    const __m256 gathered = _mm256_i32gather_ps(rank, idx, 4);
    acc = _mm256_add_ps(acc, _mm256_mul_ps(gathered,
                                           _mm256_loadu_ps(coeff + i)));
  }
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, acc);
  for (; i < count; ++i) {
    lanes[i & 7] += rank[targets[i]] * coeff[i];
  }
  float half[4];
  for (std::size_t j = 0; j < 4; ++j) half[j] = lanes[j] + lanes[j + 4];
  return (half[0] + half[2]) + (half[1] + half[3]);
}

}  // namespace faultyrank::detail
