#include "core/faultyrank.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace faultyrank {

namespace {

/// Runs body(begin, end, chunk) over [0, n), on the pool if provided.
/// `chunks` reports how many chunks were used (for sized partial-sum
/// buffers).
template <typename Body>
std::size_t run_chunked(ThreadPool* pool, std::size_t n, const Body& body) {
  if (pool == nullptr || pool->size() <= 1 || n < 2048) {
    if (n > 0) body(0, n, 0);
    return 1;
  }
  pool->parallel_for(n, body);
  return std::min(n, pool->size());
}

}  // namespace

FaultyRankResult run_faultyrank(const UnifiedGraph& graph,
                                const FaultyRankConfig& config,
                                ThreadPool* pool) {
  if (config.epsilon <= 0.0) {
    throw std::invalid_argument("faultyrank: epsilon must be positive");
  }
  if (config.unpaired_weight < 0.0 || config.unpaired_weight > 1.0) {
    throw std::invalid_argument(
        "faultyrank: unpaired_weight must be within [0, 1]");
  }

  const std::size_t n = graph.vertex_count();
  FaultyRankResult result;
  result.mean_rank = config.initial_rank;
  if (n == 0) {
    result.converged = true;
    return result;
  }

  const Csr& forward = graph.forward();
  const Csr& reverse = graph.reverse();

  // Weighted out-degree of each vertex in the *reversed* graph: each
  // in-edge of v in G is an out-edge of v in G_R, weighted by whether
  // the original edge is paired (Fig. 4).
  std::vector<double> reversed_weighted_degree(n);
  for (Gid v = 0; v < n; ++v) {
    reversed_weighted_degree[v] =
        static_cast<double>(graph.paired_in_degree(v)) +
        config.unpaired_weight * static_cast<double>(graph.unpaired_in_degree(v));
  }

  if ((config.initial_id_ranks == nullptr) !=
      (config.initial_prop_ranks == nullptr)) {
    throw std::invalid_argument(
        "faultyrank: warm start requires both rank vectors");
  }
  if (config.initial_id_ranks != nullptr &&
      (config.initial_id_ranks->size() != n ||
       config.initial_prop_ranks->size() != n)) {
    throw std::invalid_argument(
        "faultyrank: warm-start vectors must match the vertex count");
  }
  std::vector<double> id_rank = config.initial_id_ranks != nullptr
                                    ? *config.initial_id_ranks
                                    : std::vector<double>(n, config.initial_rank);
  std::vector<double> prop_rank =
      config.initial_prop_ranks != nullptr
          ? *config.initial_prop_ranks
          : std::vector<double>(n, config.initial_rank);
  std::vector<double> next(n, 0.0);

  const double inv_n = 1.0 / static_cast<double>(n);
  const std::size_t max_chunks =
      pool != nullptr ? std::max<std::size_t>(pool->size(), 1) : 1;
  std::vector<double> partial(max_chunks);

  // Deterministic reduction: per-chunk partial sums combined in chunk
  // order, so results are bit-identical for a fixed thread count.
  const auto reduce = [&](const auto& term) {
    std::fill(partial.begin(), partial.end(), 0.0);
    const std::size_t used = run_chunked(
        pool, n, [&](std::size_t begin, std::size_t end, std::size_t chunk) {
          double acc = 0.0;
          for (std::size_t v = begin; v < end; ++v) acc += term(v);
          partial[chunk] = acc;
        });
    double total = 0.0;
    for (std::size_t c = 0; c < used; ++c) total += partial[c];
    return total;
  };

  double diff = 0.0;
  std::size_t iteration = 0;
  for (; iteration < config.max_iterations; ++iteration) {
    // ---- Pass 1: id_rank from prop_rank over G (pull via G_R). ----
    // Sinks in G (out-degree 0) spread their property mass uniformly.
    const double sink_share =
        reduce([&](std::size_t v) {
          return forward.out_degree(static_cast<Gid>(v)) == 0
                     ? prop_rank[v]
                     : 0.0;
        }) *
        inv_n;

    run_chunked(pool, n,
                [&](std::size_t begin, std::size_t end, std::size_t) {
                  for (std::size_t v = begin; v < end; ++v) {
                    double acc = sink_share;
                    const auto gv = static_cast<Gid>(v);
                    for (auto slot = reverse.edges_begin(gv);
                         slot < reverse.edges_end(gv); ++slot) {
                      const Gid u = reverse.target(slot);
                      acc += prop_rank[u] /
                             static_cast<double>(forward.out_degree(u));
                    }
                    next[v] = acc;
                  }
                });

    diff = reduce([&](std::size_t v) { return std::abs(next[v] - id_rank[v]); });
    if (config.diff_norm == DiffNorm::kL1Mass) {
      diff *= inv_n / config.initial_rank;
    } else if (config.diff_norm == DiffNorm::kL1Mean) {
      diff *= inv_n;
    } else if (config.diff_norm == DiffNorm::kLInf) {
      // Recompute as a max; the L1 reduce above is discarded.
      double max_delta = 0.0;
      for (std::size_t v = 0; v < n; ++v) {
        max_delta = std::max(max_delta, std::abs(next[v] - id_rank[v]));
      }
      diff = max_delta;
    }
    id_rank.swap(next);

    // ---- Pass 2: prop_rank from id_rank over G_R (pull via G). ----
    // Sinks in G_R are vertices whose reversed weighted degree is zero
    // (no in-edges in G, or all in-edges unpaired under weight 0).
    const double sink_share_reversed =
        reduce([&](std::size_t v) {
          return reversed_weighted_degree[v] == 0.0 ? id_rank[v] : 0.0;
        }) *
        inv_n;

    run_chunked(
        pool, n, [&](std::size_t begin, std::size_t end, std::size_t) {
          for (std::size_t v = begin; v < end; ++v) {
            double acc = sink_share_reversed;
            const auto gv = static_cast<Gid>(v);
            // Each forward edge v→t is a reversed edge t→v carrying
            // id_rank[t] scaled by the pairing weight of v→t.
            for (auto slot = forward.edges_begin(gv);
                 slot < forward.edges_end(gv); ++slot) {
              const Gid t = forward.target(slot);
              const double denom = reversed_weighted_degree[t];
              if (denom == 0.0) continue;  // t handled as reversed sink
              const double w =
                  graph.paired(slot) ? 1.0 : config.unpaired_weight;
              acc += id_rank[t] * w / denom;
            }
            next[v] = acc;
          }
        });
    prop_rank.swap(next);

    if (diff < config.epsilon) {
      ++iteration;
      result.converged = true;
      break;
    }
  }

  if (config.separate_properties) {
    // One decomposition pass from the converged id ranks: split each
    // vertex's pass-2 gather by the kind of the out-edge carrying it
    // (the reversed-sink share is global and excluded by construction).
    result.prop_rank_by_kind.assign(kEdgeKindCount,
                                    std::vector<double>(n, 0.0));
    run_chunked(pool, n, [&](std::size_t begin, std::size_t end,
                             std::size_t) {
      for (std::size_t v = begin; v < end; ++v) {
        const auto gv = static_cast<Gid>(v);
        for (auto slot = forward.edges_begin(gv);
             slot < forward.edges_end(gv); ++slot) {
          const Gid t = forward.target(slot);
          const double denom = reversed_weighted_degree[t];
          if (denom == 0.0) continue;
          const double w = graph.paired(slot) ? 1.0 : config.unpaired_weight;
          const auto kind = static_cast<std::size_t>(forward.kind(slot));
          result.prop_rank_by_kind[kind][v] += id_rank[t] * w / denom;
        }
      }
    });
  }

  // Mass is conserved, so the mean equals the initialization's mean —
  // compute it from the converged vector so warm starts normalize
  // correctly too.
  double total_mass = 0.0;
  for (const double rank : id_rank) total_mass += rank;
  result.mean_rank = n > 0 ? total_mass / static_cast<double>(n) : 1.0;

  result.id_rank = std::move(id_rank);
  result.prop_rank = std::move(prop_rank);
  result.iterations = iteration;
  result.final_diff = diff;
  return result;
}

}  // namespace faultyrank
