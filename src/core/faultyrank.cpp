#include "core/faultyrank.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <stdexcept>
#include <type_traits>

#include "core/propagation_plan.h"
#include "core/rank_gather.h"

// The plan kernel and the reference oracle live in this translation
// unit on purpose, and the whole project compiles with
// -ffp-contract=off: identical compiler flags plus the canonical lane
// tree of rank_gather.h are what make the kernels bit-identical
// (DESIGN.md §9, §14). The AVX2 gathers live in their own -mavx2 TU
// (faultyrank_simd_avx2.cpp) but implement the very same tree.

namespace faultyrank {

namespace {

/// Runs body(begin, end, chunk) over [0, n), on the pool if provided.
/// `serial_grain` is FaultyRankConfig::serial_grain: below it, chunking
/// costs more than the work and the body runs on the calling thread.
template <typename Body>
void run_chunked(ThreadPool* pool, std::size_t n, std::size_t serial_grain,
                 const Body& body) {
  if (pool == nullptr || pool->size() <= 1 || n < serial_grain) {
    if (n > 0) body(0, n, 0);
    return;
  }
  pool->parallel_for(n, body);
}

constexpr std::size_t block_count(std::size_t n) {
  return (n + kRankReductionBlock - 1) / kRankReductionBlock;
}

/// Deterministic sum of term(v) over [0, n): per-block partial sums
/// (vertex order within a block) combined in ascending block order. The
/// grouping depends only on n — never on the pool — so the result is
/// bit-identical for any pool size, and identical to the fused
/// accumulation the plan kernel performs inside its aligned gather
/// chunks.
template <typename Term>
double reduce_block_sum(ThreadPool* pool, std::size_t n,
                        std::vector<double>& blocks, const Term& term) {
  const std::size_t nb = block_count(n);
  blocks.assign(nb, 0.0);
  const auto body = [&](std::size_t bb, std::size_t be, std::size_t) {
    for (std::size_t b = bb; b < be; ++b) {
      const std::size_t begin = b * kRankReductionBlock;
      const std::size_t end = std::min(n, begin + kRankReductionBlock);
      double acc = 0.0;
      for (std::size_t v = begin; v < end; ++v) acc += term(v);
      blocks[b] = acc;
    }
  };
  if (pool == nullptr || pool->size() <= 1 || nb <= 1) {
    if (nb > 0) body(0, nb, 0);
  } else {
    pool->parallel_for(nb, body);
  }
  double total = 0.0;
  for (std::size_t b = 0; b < nb; ++b) total += blocks[b];
  return total;
}

/// Deterministic max of term(v) over [0, n) (same block scheme; max is
/// order-insensitive but the blocks keep the parallel writes disjoint).
template <typename Term>
double reduce_block_max(ThreadPool* pool, std::size_t n,
                        std::vector<double>& blocks, const Term& term) {
  const std::size_t nb = block_count(n);
  blocks.assign(nb, 0.0);
  const auto body = [&](std::size_t bb, std::size_t be, std::size_t) {
    for (std::size_t b = bb; b < be; ++b) {
      const std::size_t begin = b * kRankReductionBlock;
      const std::size_t end = std::min(n, begin + kRankReductionBlock);
      double acc = 0.0;
      for (std::size_t v = begin; v < end; ++v) acc = std::max(acc, term(v));
      blocks[b] = acc;
    }
  };
  if (pool == nullptr || pool->size() <= 1 || nb <= 1) {
    if (nb > 0) body(0, nb, 0);
  } else {
    pool->parallel_for(nb, body);
  }
  double total = 0.0;
  for (std::size_t b = 0; b < nb; ++b) total = std::max(total, blocks[b]);
  return total;
}

void validate_config(const FaultyRankConfig& config) {
  if (config.epsilon <= 0.0) {
    throw std::invalid_argument("faultyrank: epsilon must be positive");
  }
  if (config.unpaired_weight < 0.0 || config.unpaired_weight > 1.0) {
    throw std::invalid_argument(
        "faultyrank: unpaired_weight must be within [0, 1]");
  }
}

struct RankVectors {
  std::vector<double> id_rank;
  std::vector<double> prop_rank;
};

RankVectors initial_ranks(const FaultyRankConfig& config, std::size_t n) {
  if ((config.initial_id_ranks == nullptr) !=
      (config.initial_prop_ranks == nullptr)) {
    throw std::invalid_argument(
        "faultyrank: warm start requires both rank vectors");
  }
  if (config.initial_id_ranks != nullptr &&
      (config.initial_id_ranks->size() != n ||
       config.initial_prop_ranks->size() != n)) {
    throw std::invalid_argument(
        "faultyrank: warm-start vectors must match the vertex count");
  }
  RankVectors vectors;
  vectors.id_rank = config.initial_id_ranks != nullptr
                        ? *config.initial_id_ranks
                        : std::vector<double>(n, config.initial_rank);
  vectors.prop_rank = config.initial_prop_ranks != nullptr
                          ? *config.initial_prop_ranks
                          : std::vector<double>(n, config.initial_rank);
  return vectors;
}

/// Converts the raw block-reduced diffs into the configured norm —
/// shared verbatim by both kernels so the scalar arithmetic matches.
double scale_diff(const FaultyRankConfig& config, double l1, double max_delta,
                  double inv_n) {
  double diff = l1;
  if (config.diff_norm == DiffNorm::kL1Mass) {
    diff *= inv_n / config.initial_rank;
  } else if (config.diff_norm == DiffNorm::kL1Mean) {
    diff *= inv_n;
  } else if (config.diff_norm == DiffNorm::kLInf) {
    diff = max_delta;
  }
  return diff;
}

/// Mass is conserved, so the mean equals the initialization's mean —
/// compute it from the converged vector so warm starts normalize
/// correctly too. Serial full-order sum, identical in both kernels.
double mean_rank_of(const std::vector<double>& id_rank) {
  double total_mass = 0.0;
  for (const double rank : id_rank) total_mass += rank;
  return id_rank.empty() ? 1.0
                         : total_mass / static_cast<double>(id_rank.size());
}

// ---------------------------------------------------------------------
// Plan kernel: branch-free coefficient gathers through the canonical
// lane tree, reductions fused into the sweeps, edge-balanced sticky
// chunk scheduling. Templated over the arithmetic type (double or
// float32 mode) and the gather implementation (scalar or AVX2) — the
// four instantiations differ only in those two axes.
//
// When the plan carries a vertex ordering, the whole iteration runs in
// relabeled id space (adjacency, coefficients, sink lists, reduction
// blocks all come from the plan in that space); the inverse permutation
// maps the converged vectors back to original Gids at the end.
// ---------------------------------------------------------------------

template <typename Real,
          Real (*Gather)(const Gid*, const Real*, std::uint64_t, const Real*)>
FaultyRankResult run_planned(const UnifiedGraph& graph,
                             const PropagationPlan& plan,
                             const FaultyRankConfig& config,
                             ThreadPool* pool) {
  const std::size_t n = graph.vertex_count();
  const Csr& forward = plan.forward();
  const Csr& reverse = plan.reverse();
  const Gid* fwd_targets = forward.targets().data();
  const Gid* rev_targets = reverse.targets().data();
  const Real* coeff_rev;
  const Real* coeff_fwd;
  if constexpr (std::is_same_v<Real, float>) {
    coeff_rev = plan.coeff_rev_f32().data();
    coeff_fwd = plan.coeff_fwd_f32().data();
  } else {
    coeff_rev = plan.coeff_rev().data();
    coeff_fwd = plan.coeff_fwd().data();
  }
  const std::span<const Gid> fwd_sinks = plan.forward_sinks();
  const std::span<const Gid> rev_sinks = plan.reversed_sinks();
  const VertexPermutation& perm = plan.permutation();

  FaultyRankResult result;
  // Initial vectors arrive in original Gid space (warm starts
  // especially); narrow to Real and scatter into plan id space.
  const RankVectors init = initial_ranks(config, n);
  std::vector<Real> id_rank(n), prop_rank(n), next(n, Real{0});
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t pv = perm.empty() ? v : perm.new_of_old[v];
    id_rank[pv] = static_cast<Real>(init.id_rank[v]);
    prop_rank[pv] = static_cast<Real>(init.prop_rank[v]);
  }

  const double inv_n_d = 1.0 / static_cast<double>(n);
  const auto inv_n = static_cast<Real>(inv_n_d);
  const std::size_t nb = block_count(n);
  std::vector<Real> block_l1(nb), block_max(nb), block_sink(nb);

  const bool parallel =
      pool != nullptr && pool->size() > 1 && n >= config.serial_grain;
  // Chunk boundaries carry ~equal *edge* counts (binary search over the
  // CSR offsets), aligned so no reduction block spans two chunks. Each
  // pass gets its own partition: the two CSRs have different skew.
  // Sticky submission pins chunk c to worker c every sweep of every
  // iteration, so each worker re-touches the same rank/coefficient
  // pages it first-touched at plan build — the NUMA placement story.
  std::vector<std::size_t> rev_bounds, fwd_bounds;
  if (parallel) {
    rev_bounds = partition_by_weight(reverse.offsets(), pool->size(),
                                     kRankReductionBlock);
    fwd_bounds = partition_by_weight(forward.offsets(), pool->size(),
                                     kRankReductionBlock);
  }
  const auto run_pass =
      [&](const std::vector<std::size_t>& bounds,
          const std::function<void(std::size_t, std::size_t, std::size_t)>&
              body) {
        if (!parallel) {
          body(0, n, 0);
          return;
        }
        pool->parallel_for_ranges(bounds, body, /*sticky=*/true);
      };

  // Blockwise sum of values[v] over an ascending sink list — the same
  // grouping as a predicate block sum over all vertices, because the
  // skipped terms are exact zeros.
  const auto sum_sinks = [&](std::span<const Gid> sinks,
                             const std::vector<Real>& values) {
    Real total{0};
    Real acc{0};
    std::size_t block = 0;
    for (const Gid v : sinks) {
      const std::size_t b = v / kRankReductionBlock;
      if (b != block) {
        total += acc;
        acc = Real{0};
        block = b;
      }
      acc += values[v];
    }
    return total + acc;
  };

  // Sink-share numerators. sink1 (pass-1 sinks' prop mass) is seeded
  // here and thereafter maintained by the fused pass-2 accumulation;
  // sink2 comes out of the fused pass-1 accumulation each iteration.
  Real sink1_sum = sum_sinks(fwd_sinks, prop_rank);

  double diff = 0.0;
  std::size_t iteration = 0;
  for (; iteration < config.max_iterations; ++iteration) {
    // ---- Pass 1: id_rank from prop_rank over G (pull via G_R), with
    // the diff and next-pass sink reductions fused into the sweep. ----
    const Real sink_share = sink1_sum * inv_n;
    run_pass(rev_bounds, [&](std::size_t begin, std::size_t end,
                             std::size_t) {
      auto sink_pos = std::lower_bound(rev_sinks.begin(), rev_sinks.end(),
                                       static_cast<Gid>(begin));
      Real l1{0};
      Real max_delta{0};
      Real sink_acc{0};
      std::size_t block = begin / kRankReductionBlock;
      for (std::size_t v = begin; v < end; ++v) {
        const std::size_t b = v / kRankReductionBlock;
        if (b != block) {
          block_l1[block] = l1;
          block_max[block] = max_delta;
          block_sink[block] = sink_acc;
          l1 = max_delta = sink_acc = Real{0};
          block = b;
        }
        const auto gv = static_cast<Gid>(v);
        const std::uint64_t s0 = reverse.edges_begin(gv);
        const Real acc =
            sink_share + Gather(rev_targets + s0, coeff_rev + s0,
                                reverse.edges_end(gv) - s0, prop_rank.data());
        next[v] = acc;
        const Real delta = std::abs(acc - id_rank[v]);
        l1 += delta;
        max_delta = std::max(max_delta, delta);
        if (sink_pos != rev_sinks.end() && *sink_pos == gv) {
          sink_acc += acc;
          ++sink_pos;
        }
      }
      block_l1[block] = l1;
      block_max[block] = max_delta;
      block_sink[block] = sink_acc;
    });

    Real diff_l1{0};
    Real diff_max{0};
    Real sink2_sum{0};
    for (std::size_t b = 0; b < nb; ++b) {
      diff_l1 += block_l1[b];
      diff_max = std::max(diff_max, block_max[b]);
      sink2_sum += block_sink[b];
    }
    diff = scale_diff(config, static_cast<double>(diff_l1),
                      static_cast<double>(diff_max), inv_n_d);
    id_rank.swap(next);

    // ---- Pass 2: prop_rank from id_rank over G_R (pull via G), with
    // the next pass-1 sink reduction fused into the sweep. ----
    const Real sink_share_reversed = sink2_sum * inv_n;
    run_pass(fwd_bounds, [&](std::size_t begin, std::size_t end,
                             std::size_t) {
      auto sink_pos = std::lower_bound(fwd_sinks.begin(), fwd_sinks.end(),
                                       static_cast<Gid>(begin));
      Real sink_acc{0};
      std::size_t block = begin / kRankReductionBlock;
      for (std::size_t v = begin; v < end; ++v) {
        const std::size_t b = v / kRankReductionBlock;
        if (b != block) {
          block_sink[block] = sink_acc;
          sink_acc = Real{0};
          block = b;
        }
        const auto gv = static_cast<Gid>(v);
        const std::uint64_t s0 = forward.edges_begin(gv);
        const Real acc = sink_share_reversed +
                         Gather(fwd_targets + s0, coeff_fwd + s0,
                                forward.edges_end(gv) - s0, id_rank.data());
        next[v] = acc;
        if (sink_pos != fwd_sinks.end() && *sink_pos == gv) {
          sink_acc += acc;
          ++sink_pos;
        }
      }
      block_sink[block] = sink_acc;
    });
    sink1_sum = Real{0};
    for (std::size_t b = 0; b < nb; ++b) sink1_sum += block_sink[b];
    prop_rank.swap(next);

    if (diff < config.epsilon) {
      ++iteration;
      result.converged = true;
      break;
    }
  }

  if (config.separate_properties) {
    // One decomposition pass from the converged id ranks: split each
    // vertex's pass-2 gather by the kind of the out-edge carrying it
    // (the reversed-sink share is global and excluded by construction —
    // those slots carry coefficient 0). Plain sequential accumulation,
    // exactly like the reference kernel's decomposition pass.
    std::vector<std::vector<Real>> by_kind(kEdgeKindCount,
                                           std::vector<Real>(n, Real{0}));
    run_pass(fwd_bounds,
             [&](std::size_t begin, std::size_t end, std::size_t) {
               for (std::size_t v = begin; v < end; ++v) {
                 const auto gv = static_cast<Gid>(v);
                 const std::uint64_t slots_end = forward.edges_end(gv);
                 for (std::uint64_t slot = forward.edges_begin(gv);
                      slot < slots_end; ++slot) {
                   const auto kind =
                       static_cast<std::size_t>(forward.kind(slot));
                   by_kind[kind][v] +=
                       id_rank[forward.target(slot)] * coeff_fwd[slot];
                 }
               }
             });
    result.prop_rank_by_kind.assign(kEdgeKindCount,
                                    std::vector<double>(n, 0.0));
    for (std::size_t k = 0; k < kEdgeKindCount; ++k) {
      for (std::size_t v = 0; v < n; ++v) {
        const std::size_t old = perm.empty() ? v : perm.old_of_new[v];
        result.prop_rank_by_kind[k][old] =
            static_cast<double>(by_kind[k][v]);
      }
    }
  }

  // Mean over plan id space — for the cross-kernel goldens this must be
  // the same summation order as the reference kernel running on the
  // relabeled graph.
  double total_mass = 0.0;
  for (std::size_t v = 0; v < n; ++v) {
    total_mass += static_cast<double>(id_rank[v]);
  }
  result.mean_rank =
      n == 0 ? 1.0 : total_mass / static_cast<double>(n);

  // Widen and report in original Gid space.
  result.id_rank.resize(n);
  result.prop_rank.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t old = perm.empty() ? v : perm.old_of_new[v];
    result.id_rank[old] = static_cast<double>(id_rank[v]);
    result.prop_rank[old] = static_cast<double>(prop_rank[v]);
  }
  result.iterations = iteration;
  result.final_diff = diff;
  return result;
}

/// True when this invocation may take the AVX2 path: compiled in,
/// allowed by the config, supported by the CPU, and the vertex ids fit
/// the gather instruction's signed-32-bit indices.
bool simd_usable(const FaultyRankConfig& config, std::size_t n) {
#if defined(FAULTYRANK_SIMD)
  return config.use_simd &&
         n <= static_cast<std::size_t>(
                  std::numeric_limits<std::int32_t>::max()) &&
         detail::cpu_supports_avx2();
#else
  (void)config;
  (void)n;
  return false;
#endif
}

FaultyRankResult dispatch_planned(const UnifiedGraph& graph,
                                  const PropagationPlan& plan,
                                  const FaultyRankConfig& config,
                                  ThreadPool* pool) {
  const bool simd = simd_usable(config, graph.vertex_count());
  if (plan.options().float32) {
#if defined(FAULTYRANK_SIMD)
    if (simd) {
      return run_planned<float, detail::gather_avx2_f32>(graph, plan, config,
                                                         pool);
    }
#endif
    return run_planned<float, detail::gather_scalar<float>>(graph, plan,
                                                            config, pool);
  }
#if defined(FAULTYRANK_SIMD)
  if (simd) {
    return run_planned<double, detail::gather_avx2_f64>(graph, plan, config,
                                                        pool);
  }
#endif
  return run_planned<double, detail::gather_scalar<double>>(graph, plan,
                                                            config, pool);
}

}  // namespace

FaultyRankResult run_faultyrank(const UnifiedGraph& graph,
                                const FaultyRankConfig& config,
                                ThreadPool* pool) {
  validate_config(config);
  if (graph.vertex_count() == 0) {
    FaultyRankResult result;
    result.mean_rank = config.initial_rank;
    result.converged = true;
    return result;
  }
  const PropagationPlan plan =
      PropagationPlan::build(graph, config.unpaired_weight, pool,
                             {config.ordering, config.float32});
  return dispatch_planned(graph, plan, config, pool);
}

FaultyRankResult run_faultyrank(const UnifiedGraph& graph,
                                const PropagationPlan& plan,
                                const FaultyRankConfig& config,
                                ThreadPool* pool) {
  validate_config(config);
  if (!plan.matches(graph, config.unpaired_weight,
                    {config.ordering, config.float32})) {
    throw std::invalid_argument(
        "faultyrank: plan was built from a different graph, "
        "unpaired_weight, ordering, or precision");
  }
  if (graph.vertex_count() == 0) {
    FaultyRankResult result;
    result.mean_rank = config.initial_rank;
    result.converged = true;
    return result;
  }
  return dispatch_planned(graph, plan, config, pool);
}

FaultyRankResult run_faultyrank_reference(const UnifiedGraph& graph,
                                          const FaultyRankConfig& config,
                                          ThreadPool* pool) {
  validate_config(config);

  const std::size_t n = graph.vertex_count();
  FaultyRankResult result;
  result.mean_rank = config.initial_rank;
  if (n == 0) {
    result.converged = true;
    return result;
  }

  const Csr& forward = graph.forward();
  const Csr& reverse = graph.reverse();

  // Weighted out-degree of each vertex in the *reversed* graph: each
  // in-edge of v in G is an out-edge of v in G_R, weighted by whether
  // the original edge is paired (Fig. 4). Derived in parallel — the
  // expression must stay textually identical to PropagationPlan::build.
  std::vector<double> reversed_weighted_degree(n);
  run_chunked(pool, n, config.serial_grain,
              [&](std::size_t begin, std::size_t end, std::size_t) {
                for (std::size_t v = begin; v < end; ++v) {
                  const auto gv = static_cast<Gid>(v);
                  reversed_weighted_degree[v] =
                      static_cast<double>(graph.paired_in_degree(gv)) +
                      config.unpaired_weight *
                          static_cast<double>(graph.unpaired_in_degree(gv));
                }
              });

  auto [id_rank, prop_rank] = initial_ranks(config, n);
  std::vector<double> next(n, 0.0);

  const double inv_n = 1.0 / static_cast<double>(n);
  std::vector<double> blocks;

  double diff = 0.0;
  std::size_t iteration = 0;
  for (; iteration < config.max_iterations; ++iteration) {
    // ---- Pass 1: id_rank from prop_rank over G (pull via G_R). ----
    // Sinks in G (out-degree 0) spread their property mass uniformly.
    const double sink_share =
        reduce_block_sum(pool, n, blocks,
                         [&](std::size_t v) {
                           return forward.out_degree(static_cast<Gid>(v)) == 0
                                      ? prop_rank[v]
                                      : 0.0;
                         }) *
        inv_n;

    // Per-vertex gathers accumulate through the same 4-lane tree as the
    // plan kernel's gather_scalar/gather_avx2 — lane index is relative
    // slot position mod 4 — so the two kernels stay bit-identical.
    run_chunked(
        pool, n, config.serial_grain,
        [&](std::size_t begin, std::size_t end, std::size_t) {
          for (std::size_t v = begin; v < end; ++v) {
            const auto gv = static_cast<Gid>(v);
            const std::uint64_t s0 = reverse.edges_begin(gv);
            const std::uint64_t s1 = reverse.edges_end(gv);
            double lanes[4] = {0.0, 0.0, 0.0, 0.0};
            for (std::uint64_t slot = s0; slot < s1; ++slot) {
              const Gid u = reverse.target(slot);
              lanes[(slot - s0) & 3] +=
                  prop_rank[u] *
                  (1.0 / static_cast<double>(forward.out_degree(u)));
            }
            next[v] =
                sink_share + ((lanes[0] + lanes[2]) + (lanes[1] + lanes[3]));
          }
        });

    // One chunked reduction in the configured norm (the kLInf path used
    // to pay a discarded L1 reduce plus a serial max on the calling
    // thread).
    if (config.diff_norm == DiffNorm::kLInf) {
      const double max_delta = reduce_block_max(
          pool, n, blocks,
          [&](std::size_t v) { return std::abs(next[v] - id_rank[v]); });
      diff = scale_diff(config, 0.0, max_delta, inv_n);
    } else {
      const double l1 = reduce_block_sum(
          pool, n, blocks,
          [&](std::size_t v) { return std::abs(next[v] - id_rank[v]); });
      diff = scale_diff(config, l1, 0.0, inv_n);
    }
    id_rank.swap(next);

    // ---- Pass 2: prop_rank from id_rank over G_R (pull via G). ----
    // Sinks in G_R are vertices whose reversed weighted degree is zero
    // (no in-edges in G, or all in-edges unpaired under weight 0).
    const double sink_share_reversed =
        reduce_block_sum(pool, n, blocks,
                         [&](std::size_t v) {
                           return reversed_weighted_degree[v] == 0.0
                                      ? id_rank[v]
                                      : 0.0;
                         }) *
        inv_n;

    run_chunked(
        pool, n, config.serial_grain,
        [&](std::size_t begin, std::size_t end, std::size_t) {
          for (std::size_t v = begin; v < end; ++v) {
            const auto gv = static_cast<Gid>(v);
            const std::uint64_t s0 = forward.edges_begin(gv);
            const std::uint64_t s1 = forward.edges_end(gv);
            double lanes[4] = {0.0, 0.0, 0.0, 0.0};
            // Each forward edge v→t is a reversed edge t→v carrying
            // id_rank[t] scaled by the pairing weight of v→t. A skipped
            // sink slot still consumes its lane position: in the plan
            // kernel that slot carries coefficient 0 and contributes an
            // exact +0.0 to the same lane.
            for (std::uint64_t slot = s0; slot < s1; ++slot) {
              const Gid t = forward.target(slot);
              const double denom = reversed_weighted_degree[t];
              if (denom == 0.0) continue;  // t handled as reversed sink
              const double w =
                  graph.paired(slot) ? 1.0 : config.unpaired_weight;
              lanes[(slot - s0) & 3] += id_rank[t] * (w / denom);
            }
            next[v] = sink_share_reversed +
                      ((lanes[0] + lanes[2]) + (lanes[1] + lanes[3]));
          }
        });
    prop_rank.swap(next);

    if (diff < config.epsilon) {
      ++iteration;
      result.converged = true;
      break;
    }
  }

  if (config.separate_properties) {
    // One decomposition pass from the converged id ranks: split each
    // vertex's pass-2 gather by the kind of the out-edge carrying it
    // (the reversed-sink share is global and excluded by construction).
    result.prop_rank_by_kind.assign(kEdgeKindCount,
                                    std::vector<double>(n, 0.0));
    run_chunked(pool, n, config.serial_grain,
                [&](std::size_t begin, std::size_t end, std::size_t) {
                  for (std::size_t v = begin; v < end; ++v) {
                    const auto gv = static_cast<Gid>(v);
                    for (auto slot = forward.edges_begin(gv);
                         slot < forward.edges_end(gv); ++slot) {
                      const Gid t = forward.target(slot);
                      const double denom = reversed_weighted_degree[t];
                      if (denom == 0.0) continue;
                      const double w =
                          graph.paired(slot) ? 1.0 : config.unpaired_weight;
                      result.prop_rank_by_kind[static_cast<std::size_t>(
                          forward.kind(slot))][v] += id_rank[t] * (w / denom);
                    }
                  }
                });
  }

  result.mean_rank = mean_rank_of(id_rank);
  result.id_rank = std::move(id_rank);
  result.prop_rank = std::move(prop_rank);
  result.iterations = iteration;
  result.final_diff = diff;
  return result;
}

}  // namespace faultyrank
