// Rendering of detection reports for humans and machines.
//
// render_text gives the operator-facing summary the CLI prints;
// render_json emits a stable, line-oriented JSON document for tooling
// (dashboards, CI gates on checker output). JSON is hand-emitted — the
// schema is flat and the library carries no third-party dependencies.
#pragma once

#include <string>

#include "core/detector.h"

namespace faultyrank {

/// Multi-line human-readable report (one block per finding).
[[nodiscard]] std::string render_text(const DetectionReport& report);

/// JSON document:
/// {
///   "consistent": bool,
///   "finding_count": N,
///   "categories": {"dangling-reference": n, ...},
///   "findings": [ {category, culprit, source, target, convicted,
///                  convicted_field, ranks{...}, repair{kind, target,
///                  value}, note}, ... ]
/// }
[[nodiscard]] std::string render_json(const DetectionReport& report);

/// Escapes a string for embedding in a JSON document.
[[nodiscard]] std::string json_escape(const std::string& text);

}  // namespace faultyrank
