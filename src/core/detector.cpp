#include "core/detector.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace faultyrank {

std::size_t DetectionReport::count(InconsistencyCategory category) const {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [category](const Finding& f) {
                      return f.category == category;
                    }));
}

std::size_t DetectionReport::unverifiable_count() const {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [](const Finding& f) { return f.unverifiable; }));
}

RepairPlan DetectionReport::repair_plan() const {
  // Two findings may recommend the same physical write (e.g. every
  // child of a mis-identified directory independently recovers the same
  // id overwrite, each via a different witness). Id overwrites are
  // identical when (target, value) match; other actions also compare
  // the property slot they touch.
  const auto same_write = [](const RepairAction& a, const RepairAction& b) {
    if (a.kind != b.kind || a.target != b.target || a.value != b.value) {
      return false;
    }
    if (a.kind == RepairKind::kOverwriteId ||
        a.kind == RepairKind::kQuarantineLostFound) {
      return true;
    }
    return a.stale == b.stale && a.edge_kind == b.edge_kind;
  };
  RepairPlan plan;
  for (const auto& finding : findings) {
    if (finding.repair.kind == RepairKind::kNone) continue;
    const bool duplicate =
        std::any_of(plan.begin(), plan.end(), [&](const RepairAction& a) {
          return same_write(a, finding.repair);
        });
    if (!duplicate) plan.push_back(finding.repair);
  }
  // Suppression: an object that some other repair re-attaches (appears
  // as a repair *value*) does not belong in lost+found — keeping it
  // would double-handle the same orphan.
  std::erase_if(plan, [&plan](const RepairAction& action) {
    if (action.kind != RepairKind::kQuarantineLostFound) return false;
    return std::any_of(plan.begin(), plan.end(),
                       [&action](const RepairAction& other) {
                         return other.kind != RepairKind::kQuarantineLostFound &&
                                other.value == action.target;
                       });
  });
  return plan;
}

namespace {

/// Detection context shared across the passes.
struct Ctx {
  const UnifiedGraph& graph;
  const FaultyRankResult& ranks;
  const DetectorConfig& config;
  // Unpaired edges grouped by destination: incoming[u] lists all
  // unpaired (w → u), used to pair a dangling reference with the
  // mis-identified object it was meant to reach.
  std::unordered_map<Gid, std::vector<const UnpairedEdge*>> incoming;
  // Orphans already matched to some relink repair this run, so two
  // dangling slots of one corrupted property never both claim the same
  // stranded object.
  std::unordered_set<Gid> consumed_orphans;
  // Phantom ids an id-collision repair will re-assign to a duplicate
  // object; dangling references to them are resolved by that repair and
  // must not trigger a second, conflicting one.
  std::unordered_set<Gid> resolved_phantoms;

  /// Counts u's out-edges of `kind`, split by pairing.
  void count_kind(Gid u, EdgeKind kind, std::size_t& paired_count,
                  std::size_t& unpaired_count) const {
    paired_count = unpaired_count = 0;
    const Csr& fwd = graph.forward();
    for (auto slot = fwd.edges_begin(u); slot < fwd.edges_end(u); ++slot) {
      if (fwd.kind(slot) != kind) continue;
      if (graph.paired(slot)) {
        ++paired_count;
      } else {
        ++unpaired_count;
      }
    }
  }

  [[nodiscard]] double id_rank(Gid v) const {
    return ranks.normalized_id_rank(v);
  }
  [[nodiscard]] double prop_rank(Gid v) const {
    return ranks.normalized_prop_rank(v);
  }
  [[nodiscard]] const Fid& fid(Gid v) const {
    return graph.vertices().fid_of(v);
  }
  [[nodiscard]] bool scanned(Gid v) const {
    return graph.vertices().is_scanned(v);
  }
  [[nodiscard]] ObjectKind okind(Gid v) const {
    return graph.vertices().kind_of(v);
  }
  [[nodiscard]] std::uint64_t in_degree(Gid v) const {
    return graph.paired_in_degree(v) + graph.unpaired_in_degree(v);
  }
};

/// Exclusive-reference kinds: at most one object may claim a child via
/// these properties (one DIRENT entry per object, one LOVEA owner per
/// stripe).
[[nodiscard]] constexpr bool kind_is_exclusive(EdgeKind kind) noexcept {
  return kind == EdgeKind::kDirent || kind == EdgeKind::kLovEa;
}

/// Whether a scanned object of kind `obj` can carry property entries of
/// edge kind `kind` at all: a regular file has no DIRENTs, a stripe
/// object no LOVEA. No repair of such a target could ever reconcile an
/// edge expecting that point-back.
[[nodiscard]] constexpr bool kind_can_carry(ObjectKind obj,
                                            EdgeKind kind) noexcept {
  switch (kind) {
    case EdgeKind::kDirent:
      return obj == ObjectKind::kDirectory;
    case EdgeKind::kLinkEa:
      return obj == ObjectKind::kDirectory || obj == ObjectKind::kFile;
    case EdgeKind::kLovEa:
      return obj == ObjectKind::kFile;
    case EdgeKind::kObjParent:
      return obj == ObjectKind::kStripeObject;
    case EdgeKind::kGeneric:
      return true;
  }
  return true;
}

void fill_rank_evidence(const Ctx& ctx, Gid src, Gid dst, Finding& f) {
  f.source_id_rank = ctx.id_rank(src);
  f.source_prop_rank = ctx.prop_rank(src);
  f.target_id_rank = ctx.id_rank(dst);
  f.target_prop_rank = ctx.prop_rank(dst);
}

/// Searches `dst`'s unpaired out-edges for a phantom target of the
/// expected point-back kind: the id the object *meant* to reference.
[[nodiscard]] Gid find_phantom_pointback(const Ctx& ctx, Gid dst,
                                         EdgeKind forward_kind) {
  const EdgeKind expect = paired_kind(forward_kind);
  const Csr& fwd = ctx.graph.forward();
  for (auto slot = fwd.edges_begin(dst); slot < fwd.edges_end(dst); ++slot) {
    if (ctx.graph.paired(slot)) continue;
    if (fwd.kind(slot) != expect) continue;
    const Gid p = fwd.target(slot);
    if (!ctx.scanned(p)) return p;
  }
  return kInvalidGid;
}

/// Dangling reference: u's property references v, but no scanned object
/// carries v's id (v is a phantom vertex). Table I root causes:
///   1. u's property is wrong             → drop the reference
///   2. the intended object's id is wrong → restore that object's id
void handle_dangling(Ctx& ctx, const UnpairedEdge& e,
                     std::vector<Finding>& out) {
  // An id-collision repair already re-assigns this phantom id to the
  // duplicate object; this dangling reference is resolved by it.
  if (ctx.resolved_phantoms.contains(e.dst)) return;

  Finding f;
  f.category = InconsistencyCategory::kDanglingReference;
  f.source = ctx.fid(e.src);
  f.target = ctx.fid(e.dst);
  f.edge_kind = e.kind;
  fill_rank_evidence(ctx, e.src, e.dst, f);

  // Degraded coverage: the referenced id lives in a FID space the scan
  // lost (crashed server, quarantined inode). The object may well exist
  // — this reference dangles because the scan is incomplete, not
  // because anyone's metadata is wrong. Report it unverifiable and
  // convict nothing. This must run before the aggregate-evidence branch
  // below: a healthy file whose stripes all sat on a crashed OST would
  // otherwise look like "pairs with none of its references" and get its
  // property convicted — a false positive manufactured by the outage.
  if (ctx.config.coverage.fid_lost(f.target)) {
    f.culprit = FaultyField::kUndetermined;
    f.repair.kind = RepairKind::kNone;
    f.unverifiable = true;
    f.note = "referenced id lies in lost scan coverage; re-check when the "
             "server recovers";
    out.push_back(std::move(f));
    return;
  }

  // Aggregate evidence (paper §II-C): if the source cannot pair with
  // *any* of its references of this kind — several all dangle, none
  // answer — then one corrupted property is far more plausible than
  // every counterpart's id being wrong at once. Convict the property
  // and re-link each slot to a stranded counterpart that still points
  // back at the source.
  const EdgeKind pointback = paired_kind(e.kind);
  std::size_t paired_count = 0;
  std::size_t unpaired_count = 0;
  ctx.count_kind(e.src, e.kind, paired_count, unpaired_count);
  if (paired_count == 0 && unpaired_count >= 2) {
    f.culprit = FaultyField::kSourceProperty;
    f.convicted_object = ctx.fid(e.src);
    f.convicted_id_field = false;
    Gid orphan = kInvalidGid;
    if (const auto it = ctx.incoming.find(e.src); it != ctx.incoming.end()) {
      for (const UnpairedEdge* back : it->second) {
        if (back->kind != pointback) continue;
        if (!ctx.scanned(back->src)) continue;
        if (ctx.graph.paired_in_degree(back->src) != 0) continue;
        if (ctx.consumed_orphans.contains(back->src)) continue;
        orphan = back->src;
        break;
      }
    }
    if (orphan != kInvalidGid) {
      ctx.consumed_orphans.insert(orphan);
      f.repair = {RepairKind::kRelinkProperty, ctx.fid(e.src), ctx.fid(orphan),
                  ctx.fid(e.dst), e.kind, kNullFid,
                  "re-link the corrupted property slot to a stranded "
                  "counterpart that still points back"};
      f.note = "source pairs with none of its references; property convicted";
    } else {
      f.repair = {RepairKind::kRemoveReference, ctx.fid(e.src), ctx.fid(e.dst),
                  kNullFid, e.kind, kNullFid,
                  "drop corrupted reference (no stranded counterpart left)"};
      f.note = "source pairs with none of its references; property convicted";
    }
    out.push_back(std::move(f));
    return;
  }

  // Root cause 2: a scanned object w still points back at u with the
  // matching property kind, but u never references w — w is the object
  // whose id was corrupted away from what u expects.
  const auto it = ctx.incoming.find(e.src);
  if (it != ctx.incoming.end()) {
    for (const UnpairedEdge* back : it->second) {
      if (back->kind != pointback) continue;
      if (!ctx.scanned(back->src)) continue;
      // A genuinely mis-identified object has nothing pairing into it;
      // an object other neighbours still corroborate is not the one
      // whose id changed.
      if (ctx.graph.paired_in_degree(back->src) != 0) continue;
      if (ctx.id_rank(back->src) >= ctx.config.threshold) continue;
      f.culprit = FaultyField::kTargetId;
      f.convicted_object = ctx.fid(back->src);
      f.convicted_id_field = true;
      f.repair = {RepairKind::kOverwriteId, ctx.fid(back->src), ctx.fid(e.dst),
                  kNullFid, e.kind, ctx.fid(e.src),
                  "restore corrupted object id to the id its referrer "
                  "expects"};
      f.note = "dangling target matched with a mis-identified object that "
               "still points back";
      out.push_back(std::move(f));
      return;
    }
  }

  // Root cause 1: u's property itself is not credible.
  if (ctx.prop_rank(e.src) < ctx.config.threshold) {
    f.culprit = FaultyField::kSourceProperty;
    f.convicted_object = ctx.fid(e.src);
    f.convicted_id_field = false;
    f.repair = {RepairKind::kRemoveReference, ctx.fid(e.src), ctx.fid(e.dst),
                kNullFid, e.kind, kNullFid,
                "drop reference to a non-existent id"};
    f.note = "referencing property has no corroborating neighbours";
  } else if (ctx.in_degree(e.dst) <= 1) {
    // Elimination: coverage over the target's fid space is complete
    // (the unverifiable branch above fired otherwise), nothing scanned
    // carries the id, no stranded counterpart points back, and this is
    // the phantom's only referrer. Destructive ops interrupted after
    // freeing their object leave exactly this shape, and without the
    // drop no repair round ever reconciles it. A phantom several
    // objects endorse stays undetermined below — a shared id hints at
    // a mis-identified object the scan has not explained.
    f.culprit = FaultyField::kSourceProperty;
    f.convicted_object = ctx.fid(e.src);
    f.convicted_id_field = false;
    f.repair = {RepairKind::kRemoveReference, ctx.fid(e.src), ctx.fid(e.dst),
                kNullFid, e.kind, kNullFid,
                "drop the only reference to an id no server carries"};
    f.note = "dangling reference convicted by elimination: full coverage, "
             "sole referrer, no counterpart answers";
  } else {
    f.culprit = FaultyField::kUndetermined;
    f.repair.kind = RepairKind::kNone;
    f.note = "dangling reference with no convicted field; user input needed";
  }
  out.push_back(std::move(f));
}

/// Mismatch / unreferenced: u references scanned v, v does not point
/// back. Root causes (Fig. 5): v's property is wrong, or u's id is
/// wrong (v points back at the id u *should* have — a phantom).
void handle_mismatch(Ctx& ctx, const UnpairedEdge& e,
                     std::vector<Finding>& out) {
  Finding f;
  f.source = ctx.fid(e.src);
  f.target = ctx.fid(e.dst);
  f.edge_kind = e.kind;
  fill_rank_evidence(ctx, e.src, e.dst, f);

  // If the *source* has no incoming references at all, the observation
  // users see is "no object refers to u" — Table I's Unreferenced
  // Object, with u playing the part of b.
  const bool source_unreferenced = ctx.scanned(e.src) &&
                                   ctx.in_degree(e.src) == 0 &&
                                   ctx.fid(e.src) != ctx.config.root;
  f.category = source_unreferenced
                   ? InconsistencyCategory::kUnreferencedObject
                   : InconsistencyCategory::kMismatch;

  const double target_prop = ctx.prop_rank(e.dst);
  const double source_id = ctx.id_rank(e.src);
  const double threshold = ctx.config.threshold;

  // Aggregate evidence (paper §II-C mirror): the target should answer
  // with a property of kind pk but has *no* such entries at all — not
  // even one pointing at a wrong id. Had the source's id been the
  // corrupted field instead, the target would still carry a point-back
  // (to the old, now-phantom id); a completely absent property convicts
  // the target. (The root is exempt: nothing points back from the root
  // by design.)
  const EdgeKind pk = paired_kind(e.kind);
  std::size_t target_pk_paired = 0;
  std::size_t target_pk_unpaired = 0;
  ctx.count_kind(e.dst, pk, target_pk_paired, target_pk_unpaired);
  if (target_pk_paired + target_pk_unpaired == 0 &&
      ctx.fid(e.dst) != ctx.config.root) {
    if (ctx.scanned(e.dst) && !kind_can_carry(ctx.okind(e.dst), pk)) {
      // The target answers no point-back because it *cannot*: its kind
      // never carries entries of the paired property (a corrupted
      // reference landed on a live object of the wrong type). Rebuilding
      // the target's property would plant an entry the scanner never
      // reads back, so the edge would stay unpaired forever — the
      // reference itself is the culprit.
      f.culprit = FaultyField::kSourceProperty;
      f.convicted_object = ctx.fid(e.src);
      f.convicted_id_field = false;
      f.repair = {RepairKind::kRemoveReference, ctx.fid(e.src),
                  ctx.fid(e.dst), kNullFid, e.kind, kNullFid,
                  "drop a reference its target can never answer"};
      f.note = "target cannot carry the paired property kind; the "
               "reference is structurally impossible";
      out.push_back(std::move(f));
      return;
    }
    f.culprit = FaultyField::kTargetProperty;
    f.convicted_object = ctx.fid(e.dst);
    f.convicted_id_field = false;
    f.repair = {RepairKind::kAddBackPointer, ctx.fid(e.dst), ctx.fid(e.src),
                kNullFid, pk, kNullFid,
                "rebuild emptied property from the objects still pointing "
                "at it"};
    f.note = "target has no entries of the expected kind but several "
             "unanswered referrers";
    out.push_back(std::move(f));
    return;
  }

  // Primary discriminator (paper §II-C): whose story do the *other*
  // neighbours corroborate? If anyone still pairs with u, u's id is
  // fine and v's property must have lost the point-back. If nobody can
  // reference u at all, u's id is the suspect.
  // If v is claimed by several objects through an exclusive property
  // (one DIRENT parent, one LOVEA owner), the unpaired claims are the
  // Double Reference handler's to resolve — restoring a point-back to a
  // bogus claimant here would bless the duplicate.
  if (kind_is_exclusive(e.kind)) {
    std::size_t claims = 0;
    const Csr& rev = ctx.graph.reverse();
    for (auto slot = rev.edges_begin(e.dst); slot < rev.edges_end(e.dst);
         ++slot) {
      if (rev.kind(slot) == e.kind) ++claims;
    }
    if (claims >= 2) return;
  }

  const bool source_id_corroborated = ctx.graph.paired_in_degree(e.src) > 0;

  if (source_id_corroborated) {
    // Structural evidence that v's point-back is fabricated: it
    // references a phantom id endorsed by nobody but v itself — a
    // wishful pointer whose credit is purely self-sustained. (The Fig. 4
    // per-vertex weight normalization cannot decay a single-out-edge
    // cycle, so this case is decided on structure, not rank.)
    bool target_points_wishfully = false;
    {
      const Csr& fwd = ctx.graph.forward();
      const EdgeKind expect = paired_kind(e.kind);
      for (auto slot = fwd.edges_begin(e.dst); slot < fwd.edges_end(e.dst);
           ++slot) {
        if (ctx.graph.paired(slot) || fwd.kind(slot) != expect) continue;
        const Gid p = fwd.target(slot);
        if (!ctx.scanned(p) && ctx.in_degree(p) == 1 &&
            !ctx.resolved_phantoms.contains(p)) {
          target_points_wishfully = true;
          break;
        }
      }
    }
    if (target_prop < threshold || target_points_wishfully) {
      // v's property lost the point-back: restore it from u's id.
      f.culprit = FaultyField::kTargetProperty;
      f.convicted_object = ctx.fid(e.dst);
      f.convicted_id_field = false;
      f.repair = {RepairKind::kAddBackPointer, ctx.fid(e.dst), ctx.fid(e.src),
                  kNullFid, paired_kind(e.kind), kNullFid,
                  "restore lost point-back from the referencing object's id"};
      f.note = "source id corroborated by paired neighbours; target property "
               "rank below threshold";
    } else if (e.kind == EdgeKind::kLinkEa || e.kind == EdgeKind::kDirent) {
      // Naming edges are the ordered sub-updates of one namespace op
      // (mkdir/create/link write the LinkEA before the DIRENT; rename
      // rewrites the LinkEA first). One side present without the other
      // is the signature of an interrupted op, not something the hub
      // directory's rank can arbitrate — roll the op forward by
      // restoring the missing point-back from the side that was
      // written. (The exclusive-claims guard above already routed
      // multi-claimant targets to the double-reference handler.)
      f.culprit = FaultyField::kTargetProperty;
      f.convicted_object = ctx.fid(e.dst);
      f.convicted_id_field = false;
      f.repair = {RepairKind::kAddBackPointer, ctx.fid(e.dst), ctx.fid(e.src),
                  kNullFid, paired_kind(e.kind), kNullFid,
                  "restore the missing point-back of an interrupted "
                  "namespace op"};
      f.note = "source id corroborated; naming edge rolled forward";
    } else {
      f.culprit = FaultyField::kUndetermined;
      f.repair.kind = RepairKind::kNone;
      f.note = "source id corroborated but target property not convicted";
    }
    out.push_back(std::move(f));
    return;
  }

  // Nothing pairs into u. If u is itself an orphan some other repair
  // already re-attaches, this record is resolved there.
  if (ctx.consumed_orphans.contains(e.src)) return;

  if (source_id < threshold && source_id <= target_prop) {
    // u's id is wrong. v (or u's other neighbours) may still reference
    // the id u is supposed to carry — a phantom reachable from v.
    f.culprit = FaultyField::kSourceId;
    f.convicted_object = ctx.fid(e.src);
    f.convicted_id_field = true;
    const Gid phantom = find_phantom_pointback(ctx, e.dst, e.kind);
    if (phantom != kInvalidGid && !ctx.resolved_phantoms.contains(phantom)) {
      f.repair = {RepairKind::kOverwriteId, ctx.fid(e.src), ctx.fid(phantom),
                  kNullFid, e.kind, ctx.fid(e.dst),
                  "rewrite corrupted id to the id the neighbour references"};
      f.note = "source id rank below threshold; expected id recovered from "
               "neighbour's point-back";
    } else {
      f.repair = {RepairKind::kQuarantineLostFound, ctx.fid(e.src), kNullFid,
                  kNullFid, e.kind, kNullFid,
                  "id convicted but the intended id is not recoverable"};
      f.note = "source id rank below threshold; no phantom point-back found";
    }
  } else if (target_prop < threshold) {
    f.culprit = FaultyField::kTargetProperty;
    f.convicted_object = ctx.fid(e.dst);
    f.convicted_id_field = false;
    f.repair = {RepairKind::kAddBackPointer, ctx.fid(e.dst), ctx.fid(e.src),
                kNullFid, paired_kind(e.kind), kNullFid,
                "restore lost point-back from the referencing object's id"};
    f.note = "target property rank below threshold";
  } else {
    f.culprit = FaultyField::kUndetermined;
    f.repair.kind = RepairKind::kNone;
    f.note = "both candidate fields above threshold";
  }
  out.push_back(std::move(f));
}

/// Double Reference, flavour 1: several sources claim the same
/// exclusive relationship with v ("a's property duplicates c's").
void handle_over_reference(Ctx& ctx, Gid v, std::vector<Finding>& out) {
  const Csr& rev = ctx.graph.reverse();
  const Csr& fwd = ctx.graph.forward();
  for (const EdgeKind kind : {EdgeKind::kDirent, EdgeKind::kLovEa}) {
    std::vector<Gid> claimants;
    for (auto slot = rev.edges_begin(v); slot < rev.edges_end(v); ++slot) {
      if (rev.kind(slot) == kind) claimants.push_back(rev.target(slot));
    }
    if (claimants.size() < 2) continue;

    // A claim v acknowledges with a point-back of the matching kind is
    // legitimate — hard links give a file several DIRENT parents, all
    // answered by LinkEA records. Each claimant keeps as many claim
    // instances as v acknowledges; if v acknowledges nobody, the most
    // credible claimant keeps one (the rule-free tie-break); every
    // remaining instance is a duplicate to convict.
    std::unordered_map<Gid, std::uint64_t> keep_budget;
    std::uint64_t total_acks = 0;
    for (const Gid u : claimants) {
      if (keep_budget.contains(u)) continue;
      std::uint64_t acks = 0;
      for (auto slot = fwd.edges_begin(v); slot < fwd.edges_end(v); ++slot) {
        if (fwd.target(slot) == u && fwd.kind(slot) == paired_kind(kind)) {
          ++acks;
        }
      }
      keep_budget[u] = acks;
      total_acks += acks;
    }
    if (total_acks == 0) {
      Gid fallback = kInvalidGid;
      double best = -1.0;
      for (const Gid u : claimants) {
        if (ctx.prop_rank(u) > best) {
          best = ctx.prop_rank(u);
          fallback = u;
        }
      }
      if (fallback != kInvalidGid) keep_budget[fallback] = 1;
    }
    // Everything acknowledged and nothing duplicated? Healthy links.
    for (const Gid u : claimants) {
      if (keep_budget[u] > 0) {
        --keep_budget[u];
        continue;
      }
      Finding f;
      f.category = InconsistencyCategory::kDoubleReference;
      f.culprit = FaultyField::kSourceProperty;
      f.convicted_object = ctx.fid(u);
      f.convicted_id_field = false;
      f.source = ctx.fid(u);
      f.target = ctx.fid(v);
      f.edge_kind = kind;
      fill_rank_evidence(ctx, u, v, f);
      // Prefer redirecting the duplicate claim to an orphan that still
      // points back at the claimant — that orphan is the object the
      // claim was stolen from.
      Gid orphan = kInvalidGid;
      if (const auto it = ctx.incoming.find(u); it != ctx.incoming.end()) {
        for (const UnpairedEdge* back : it->second) {
          if (back->kind != paired_kind(kind)) continue;
          if (!ctx.scanned(back->src)) continue;
          if (ctx.graph.paired_in_degree(back->src) != 0) continue;
          orphan = back->src;
          break;
        }
      }
      if (orphan != kInvalidGid) {
        f.repair = {RepairKind::kRelinkProperty, ctx.fid(u), ctx.fid(orphan),
                    ctx.fid(v), kind, kNullFid,
                    "redirect duplicate claim back to the orphan that still "
                    "points at the claimant"};
        f.note = "duplicate claim; orphaned counterpart recovered";
      } else {
        f.repair = {RepairKind::kRemoveReference, ctx.fid(u), ctx.fid(v),
                    kNullFid, kind, kNullFid,
                    "remove duplicate claim on an exclusively-owned object"};
        f.note = "duplicate claim; no orphaned counterpart found";
      }
      out.push_back(std::move(f));
    }
  }
}

/// Double Reference, flavour 2: two physical objects were scanned with
/// the same FID ("b's id duplicates c's").
void handle_id_collision(Ctx& ctx, Gid v, std::vector<Finding>& out) {
  Finding f;
  f.category = InconsistencyCategory::kDoubleReference;
  f.culprit = FaultyField::kTargetId;
  f.convicted_object = ctx.fid(v);
  f.convicted_id_field = true;
  f.target = ctx.fid(v);
  f.edge_kind = EdgeKind::kGeneric;
  f.target_id_rank = ctx.id_rank(v);
  f.target_prop_rank = ctx.prop_rank(v);

  // The duplicate object still points back at its true owner, and that
  // owner still references the id the duplicate *used* to carry — now a
  // dangling phantom. Walk v's unpaired point-backs to find the owner,
  // then the owner's dangling reference of the matching kind.
  const Csr& fwd = ctx.graph.forward();
  for (auto slot = fwd.edges_begin(v); slot < fwd.edges_end(v); ++slot) {
    if (ctx.graph.paired(slot)) continue;
    const EdgeKind back_kind = fwd.kind(slot);
    const Gid owner = fwd.target(slot);
    if (!ctx.scanned(owner)) continue;
    const EdgeKind claim_kind = paired_kind(back_kind);
    for (auto s2 = fwd.edges_begin(owner); s2 < fwd.edges_end(owner); ++s2) {
      if (ctx.graph.paired(s2)) continue;
      if (fwd.kind(s2) != claim_kind) continue;
      const Gid phantom = fwd.target(s2);
      if (ctx.scanned(phantom)) continue;
      f.source = ctx.fid(owner);
      ctx.resolved_phantoms.insert(phantom);
      f.repair = {RepairKind::kOverwriteId, ctx.fid(v), ctx.fid(phantom),
                  kNullFid, claim_kind, ctx.fid(owner),
                  "re-identify the duplicate object with the id its owner "
                  "still references"};
      f.note = "two objects share one id; missing id recovered from the "
               "owner's dangling reference";
      out.push_back(std::move(f));
      return;
    }
  }

  f.repair = {RepairKind::kQuarantineLostFound, ctx.fid(v), kNullFid, kNullFid,
              EdgeKind::kGeneric, kNullFid,
              "duplicate id with no recoverable intended id"};
  f.note = "two objects share one id; intended id not recoverable";
  out.push_back(std::move(f));
}

/// Complete orphan: scanned, no edges at all. There is no evidence to
/// reconstruct ownership — quarantine, exactly the case the paper says
/// needs user input.
void handle_isolated(Ctx& ctx, Gid v, std::vector<Finding>& out) {
  Finding f;
  f.category = InconsistencyCategory::kUnreferencedObject;
  f.culprit = FaultyField::kUndetermined;
  f.target = ctx.fid(v);
  f.target_id_rank = ctx.id_rank(v);
  f.target_prop_rank = ctx.prop_rank(v);
  f.repair = {RepairKind::kQuarantineLostFound, ctx.fid(v), kNullFid, kNullFid,
              EdgeKind::kGeneric, kNullFid,
              "no edges reference or leave this object"};
  f.note = "isolated object; ownership unrecoverable from metadata";
  out.push_back(std::move(f));
}

/// Beyond the paper (§VI limitation): a directory cycle whose members
/// all pair with each other is invisible to edge pairing. Detect it by
/// reachability: BFS from the root over DIRENT edges, then walk each
/// unreachable directory's parent chain — revisiting a vertex before
/// reaching a reachable one proves a cycle. One representative per
/// cycle (its minimum-gid member) is quarantined; detaching it from its
/// in-cycle parent breaks the loop, and re-homing it under lost+found
/// makes the whole subtree reachable again.
void handle_namespace_cycles(Ctx& ctx, std::vector<Finding>& out) {
  const Gid root = ctx.graph.vertices().lookup(ctx.config.root);
  if (root == kInvalidGid) return;

  const std::size_t n = ctx.graph.vertex_count();
  std::vector<std::uint8_t> reachable(n, 0);
  std::vector<Gid> queue = {root};
  reachable[root] = 1;
  const Csr& fwd = ctx.graph.forward();
  while (!queue.empty()) {
    const Gid v = queue.back();
    queue.pop_back();
    for (auto slot = fwd.edges_begin(v); slot < fwd.edges_end(v); ++slot) {
      if (fwd.kind(slot) != EdgeKind::kDirent) continue;
      const Gid child = fwd.target(slot);
      if (!reachable[child]) {
        reachable[child] = 1;
        queue.push_back(child);
      }
    }
  }

  std::unordered_set<Gid> reported_cycles;
  for (Gid v = 0; v < n; ++v) {
    if (reachable[v] || !ctx.scanned(v)) continue;
    if (ctx.graph.vertices().kind_of(v) != ObjectKind::kDirectory) continue;
    // Walk the parent chain (first LinkEA edge) collecting the path.
    std::vector<Gid> path;
    std::unordered_set<Gid> on_path;
    Gid current = v;
    while (true) {
      if (reachable[current]) break;  // chain exits to healthy space
      if (on_path.contains(current)) {
        // Found a cycle: collect its members (the path suffix starting
        // at `current`) and report its minimum-gid representative once.
        Gid representative = current;
        bool in_cycle = false;
        for (const Gid node : path) {
          if (node == current) in_cycle = true;
          if (in_cycle) representative = std::min(representative, node);
        }
        if (reported_cycles.insert(representative).second) {
          Finding f;
          f.category = InconsistencyCategory::kNamespaceCycle;
          f.culprit = FaultyField::kSourceProperty;
          f.convicted_object = ctx.fid(representative);
          f.convicted_id_field = false;
          f.target = ctx.fid(representative);
          f.target_id_rank = ctx.id_rank(representative);
          f.target_prop_rank = ctx.prop_rank(representative);
          f.repair = {RepairKind::kQuarantineLostFound,
                      ctx.fid(representative), kNullFid, kNullFid,
                      EdgeKind::kDirent, kNullFid,
                      "break the directory cycle and re-home its subtree"};
          f.note = "directory cycle detached from the root namespace";
          out.push_back(std::move(f));
        }
        break;
      }
      on_path.insert(current);
      path.push_back(current);
      // First LinkEA parent; a directory without one is an orphan the
      // other handlers already cover.
      Gid parent = kInvalidGid;
      for (auto slot = fwd.edges_begin(current); slot < fwd.edges_end(current);
           ++slot) {
        if (fwd.kind(slot) == EdgeKind::kLinkEa) {
          parent = fwd.target(slot);
          break;
        }
      }
      if (parent == kInvalidGid || !ctx.scanned(parent)) break;
      current = parent;
    }
  }
}

}  // namespace

DetectionReport detect_inconsistencies(const UnifiedGraph& graph,
                                       const FaultyRankResult& ranks,
                                       const DetectorConfig& config) {
  Ctx ctx{graph, ranks, config, {}, {}, {}};
  for (const UnpairedEdge& e : graph.unpaired_edges()) {
    ctx.incoming[e.dst].push_back(&e);
  }

  DetectionReport report;

  const std::size_t n = graph.vertex_count();

  // Id collisions first: their repairs resolve specific phantom ids,
  // which the edge-level handlers must not fight over.
  for (Gid v = 0; v < n; ++v) {
    if (ctx.scanned(v) && graph.vertices().scan_count(v) > 1) {
      handle_id_collision(ctx, v, report.findings);
    }
  }

  // Edge-level findings, in deterministic unpaired-edge order.
  for (const UnpairedEdge& e : graph.unpaired_edges()) {
    if (!ctx.scanned(e.dst)) {
      handle_dangling(ctx, e, report.findings);
    } else {
      handle_mismatch(ctx, e, report.findings);
    }
  }

  // Remaining vertex-level findings.
  for (Gid v = 0; v < n; ++v) {
    if (!ctx.scanned(v)) continue;
    handle_over_reference(ctx, v, report.findings);
    const bool isolated = ctx.in_degree(v) == 0 &&
                          graph.forward().out_degree(v) == 0 &&
                          ctx.fid(v) != config.root;
    if (isolated) handle_isolated(ctx, v, report.findings);
  }

  // Namespace reachability (only meaningful when a root is known).
  if (!config.root.is_null()) {
    handle_namespace_cycles(ctx, report.findings);
  }

  // Conservative degraded-coverage post-pass: any finding whose
  // endpoints, convicted object, or repair operands touch the lost
  // region cannot be verified against what is actually on the missing
  // server — demote it to report-only. (The dangling handler catches
  // the common case inline; this sweep guarantees no repair anywhere
  // is justified by evidence the scan never saw.)
  if (!config.coverage.complete()) {
    for (Finding& f : report.findings) {
      if (f.unverifiable) continue;
      const bool touches_lost =
          config.coverage.fid_lost(f.source) ||
          config.coverage.fid_lost(f.target) ||
          config.coverage.fid_lost(f.convicted_object) ||
          config.coverage.fid_lost(f.repair.target) ||
          config.coverage.fid_lost(f.repair.value) ||
          config.coverage.fid_lost(f.repair.stale);
      if (!touches_lost) continue;
      f.unverifiable = true;
      f.repair.kind = RepairKind::kNone;
      if (!f.note.empty()) f.note += "; ";
      f.note += "evidence touches lost scan coverage";
    }
  }

  return report;
}

}  // namespace faultyrank
