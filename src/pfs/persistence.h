// Cluster image persistence.
//
// A real offline checker runs against unmounted on-disk images; this
// module gives the simulated cluster the same lifecycle: dump every
// server image to a binary snapshot ("unmount"), load it back later
// ("attach"), and run scanners/checkers against the loaded copy.
// Snapshots round-trip every EA field bit-exactly, including corrupted
// ones — snapshotting a broken cluster preserves the breakage.
#pragma once

#include <string>

#include "pfs/cluster.h"

namespace faultyrank {

class PersistenceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Serializes the full cluster state (every MDT and OST image, FID
/// allocator cursors, stripe policy) into a byte buffer.
[[nodiscard]] std::vector<std::uint8_t> serialize_cluster(
    const LustreCluster& cluster);

/// Reconstructs a cluster from serialize_cluster output.
[[nodiscard]] LustreCluster deserialize_cluster(
    const std::vector<std::uint8_t>& bytes);

/// Serializes a single server image (the per-image framing used inside
/// cluster snapshots, without the cluster envelope).
[[nodiscard]] std::vector<std::uint8_t> serialize_image(
    const LdiskfsImage& image);

/// Reconstructs a single server image. Like deserialize_cluster, every
/// malformed input — truncation, bit flips, bomb lengths — surfaces as
/// PersistenceError; no other exception type may escape.
[[nodiscard]] LdiskfsImage deserialize_image(
    const std::vector<std::uint8_t>& bytes);

/// Writes the full cluster state to `path`. Crash-safe: the bytes land
/// in a temporary file in the same directory which is renamed over
/// `path` only after a complete write, so a crash mid-save leaves the
/// previous snapshot intact rather than a torn one.
void save_cluster(const LustreCluster& cluster, const std::string& path);

/// Loads a snapshot written by save_cluster.
[[nodiscard]] LustreCluster load_cluster(const std::string& path);

/// Atomically replaces `path` with `bytes` (write `path + ".tmp"`,
/// flush, rename). Shared by snapshot and checkpoint writers — both
/// must survive a crash mid-save without corrupting the existing file.
void atomic_write_file(const std::vector<std::uint8_t>& bytes,
                       const std::string& path);

/// Reads a whole file into memory. Throws PersistenceError when the
/// file cannot be opened or fully read.
[[nodiscard]] std::vector<std::uint8_t> read_file_bytes(
    const std::string& path);

}  // namespace faultyrank
