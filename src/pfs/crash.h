// Crash-point instrumentation for multi-sub-update namespace ops.
//
// Every namespace operation in LustreCluster is a *sequence* of
// sub-updates (allocate inode, write LinkEA, insert OI mapping, push
// DIRENT, append changelog …). A real server can crash between any two
// of them, leaving the redundant-metadata web half-updated — exactly
// the states B3-style bounded black-box crash testing enumerates.
//
// The cluster exposes the sequence through named crash points: each op
// calls FR_CRASH_POINT("op", "point") between sub-updates, which
// forwards to the attached CrashHook (a no-op when none is attached —
// production traffic pays one pointer test per point). A hook may throw
// CrashUnwind to abort the op mid-flight; the cluster performs no
// cleanup on that path, so the caller observes the genuinely
// half-updated state a crash would have left behind.
#pragma once

#include <cstddef>
#include <exception>
#include <string>

namespace faultyrank {

/// Identifies one crash point: the op it sits in and the sub-update it
/// precedes. Both strings are literals with static storage duration.
struct CrashSite {
  const char* op = "";
  const char* point = "";
};

/// Thrown by a CrashHook to simulate a crash at the current site.
/// Deliberately NOT a ClusterError: enumeration harnesses catch it
/// specifically, and nothing in the repair/checker stack swallows it by
/// accident when catching cluster faults.
class CrashUnwind : public std::exception {
 public:
  explicit CrashUnwind(const CrashSite& site)
      : what_(std::string("crash at ") + site.op + "/" + site.point) {}
  [[nodiscard]] const char* what() const noexcept override {
    return what_.c_str();
  }

 private:
  std::string what_;
};

/// Observer invoked at every crash point of every instrumented op.
/// Implementations count firings (to discover an op's crash schedule)
/// or throw CrashUnwind at a chosen firing (to materialize the state).
class CrashHook {
 public:
  virtual ~CrashHook() = default;
  virtual void reached(const CrashSite& site) = 0;
};

}  // namespace faultyrank
