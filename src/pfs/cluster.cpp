#include "pfs/cluster.h"

#include <algorithm>

namespace faultyrank {

namespace {

/// Finds a dirent by name; nullptr if absent.
const DirentEntry* find_dirent(const Inode& dir, std::string_view name) {
  for (const auto& entry : dir.dirents) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

}  // namespace

// Names a crash point between two sub-updates of a namespace op (see
// pfs/crash.h). Every multi-sub-update mutation sequence MUST thread
// its steps through this macro — fr_lint's crash-point-required rule
// enforces it for src/pfs/.
#define FR_CRASH_POINT(op, point) crash_step(op, point)

LustreCluster::LustreCluster(std::size_t ost_count, StripePolicy policy,
                             std::size_t mdt_count)
    : policy_(policy) {
  if (ost_count == 0) {
    throw ClusterError("cluster: need at least one OST");
  }
  if (mdt_count == 0) {
    throw ClusterError("cluster: need at least one MDT");
  }
  if (policy_.stripe_size == 0) {
    throw ClusterError("cluster: stripe_size must be > 0");
  }
  mdts_.reserve(mdt_count);
  for (std::size_t i = 0; i < mdt_count; ++i) {
    mdts_.push_back(std::make_unique<MdtServer>(
        "mds" + std::to_string(i), static_cast<std::uint32_t>(i)));
  }
  osts_.reserve(ost_count);
  for (std::size_t i = 0; i < ost_count; ++i) {
    osts_.emplace_back("oss" + std::to_string(i),
                       static_cast<std::uint32_t>(i));
  }
  // Root directory lives on MDT0. A real Lustre root has the well-known
  // FID [0x200000007:0x1:0x0]; we allocate from the MDT sequence
  // instead, which changes nothing structurally.
  Inode& root = mdts_[0]->image.allocate(InodeType::kDirectory);
  root.lma_fid = mdts_[0]->fids.next();
  mdts_[0]->image.oi_insert(root.lma_fid, root.ino);
  mdts_[0]->root_fid = root.lma_fid;
}

MdtServer* LustreCluster::mdt_for(const Fid& fid) noexcept {
  if (fid.seq < kMdtSeq || fid.seq >= kMdtSeq + mdts_.size()) return nullptr;
  return mdts_[fid.seq - kMdtSeq].get();
}

const MdtServer* LustreCluster::mdt_for(const Fid& fid) const noexcept {
  if (fid.seq < kMdtSeq || fid.seq >= kMdtSeq + mdts_.size()) return nullptr;
  return mdts_[fid.seq - kMdtSeq].get();
}

Inode* LustreCluster::find_mdt_inode(const Fid& fid) {
  if (MdtServer* home = mdt_for(fid)) {
    return home->image.find_by_fid(fid);
  }
  // Unroutable sequence (e.g. a corrupted id): the OI of every MDT may
  // still resolve a stale mapping.
  for (auto& mdt : mdts_) {
    if (Inode* inode = mdt->image.find_by_fid(fid)) return inode;
  }
  return nullptr;
}

const Inode* LustreCluster::find_mdt_inode(const Fid& fid) const {
  return const_cast<LustreCluster*>(this)->find_mdt_inode(fid);
}

Inode& LustreCluster::mdt_inode_or_throw(const Fid& fid, const char* what) {
  Inode* inode = find_mdt_inode(fid);
  if (inode == nullptr) {
    throw ClusterError(std::string(what) + ": no MDT object " +
                       fid.to_string());
  }
  return *inode;
}

const Inode& LustreCluster::mdt_inode_or_throw(const Fid& fid,
                                               const char* what) const {
  const Inode* inode = find_mdt_inode(fid);
  if (inode == nullptr) {
    throw ClusterError(std::string(what) + ": no MDT object " +
                       fid.to_string());
  }
  return *inode;
}

Fid LustreCluster::mkdir(const Fid& parent, const std::string& name) {
  Inode& dir = mdt_inode_or_throw(parent, "mkdir");
  if (dir.type != InodeType::kDirectory) {
    throw ClusterError("mkdir: parent is not a directory");
  }
  if (find_dirent(dir, name) != nullptr) {
    throw ClusterError("mkdir: name exists: " + name);
  }
  // DNE placement: new directories round-robin across MDTs.
  MdtServer& home = *mdts_[next_mdt_ % mdts_.size()];
  next_mdt_ = (next_mdt_ + 1) % mdts_.size();
  FR_CRASH_POINT("mkdir", "alloc");
  Inode& child = home.image.allocate(InodeType::kDirectory);
  child.lma_fid = home.fids.next();
  FR_CRASH_POINT("mkdir", "linkea");
  child.link_ea.push_back({parent, name});
  FR_CRASH_POINT("mkdir", "oi-insert");
  home.image.oi_insert(child.lma_fid, child.ino);
  // Re-fetch the parent: allocate() may have grown its inode table.
  Inode& dir2 = mdt_inode_or_throw(parent, "mkdir");
  const Fid child_fid = child.lma_fid;
  FR_CRASH_POINT("mkdir", "dirent");
  dir2.dirents.push_back({name, child_fid, child.ino});
  FR_CRASH_POINT("mkdir", "changelog");
  if (changelog_ != nullptr) {
    changelog_->append({0, ChangeOp::kMkdir, child_fid, parent, name,
                        InodeType::kDirectory, {}});
  }
  return child_fid;
}

std::uint32_t LustreCluster::object_count(std::uint64_t size,
                                          const StripePolicy& policy) const {
  const std::uint32_t width =
      policy.stripe_count < 0
          ? static_cast<std::uint32_t>(osts_.size())
          : std::min<std::uint32_t>(
                static_cast<std::uint32_t>(policy.stripe_count),
                static_cast<std::uint32_t>(osts_.size()));
  const std::uint64_t chunks =
      (size + policy.stripe_size - 1) / policy.stripe_size;
  // The paper's shrink model: ⌈size/stripe_size⌉ objects capped at the
  // stripe width; ≥ 1 so empty files still own an object.
  return static_cast<std::uint32_t>(
      std::clamp<std::uint64_t>(chunks, 1, std::max<std::uint32_t>(width, 1)));
}

Fid LustreCluster::create_file(const Fid& parent, const std::string& name,
                               std::uint64_t size,
                               std::optional<StripePolicy> override_policy) {
  Inode& dir = mdt_inode_or_throw(parent, "create");
  if (dir.type != InodeType::kDirectory) {
    throw ClusterError("create: parent is not a directory");
  }
  if (find_dirent(dir, name) != nullptr) {
    throw ClusterError("create: name exists: " + name);
  }
  const StripePolicy policy = override_policy.value_or(policy_);

  // Files live on their parent directory's MDT.
  MdtServer* home = mdt_for(parent);
  if (home == nullptr) home = mdts_[0].get();
  FR_CRASH_POINT("create", "alloc");
  Inode& file = home->image.allocate(InodeType::kRegular);
  const Fid file_fid = home->fids.next();
  const std::uint64_t file_ino = file.ino;
  file.lma_fid = file_fid;
  FR_CRASH_POINT("create", "linkea");
  file.link_ea.push_back({parent, name});
  file.size_bytes = size;
  FR_CRASH_POINT("create", "oi-insert");
  home->image.oi_insert(file_fid, file_ino);

  LovEa layout;
  layout.stripe_size = policy.stripe_size;
  layout.stripe_count = policy.stripe_count;
  const std::uint32_t objects = object_count(size, policy);
  layout.stripes.reserve(objects);
  for (std::uint32_t k = 0; k < objects; ++k) {
    const auto ost_index =
        static_cast<std::uint32_t>((next_ost_ + k) % osts_.size());
    // Simulated data share: the k-th object holds every k-th chunk.
    const std::uint64_t chunks =
        (size + policy.stripe_size - 1) / policy.stripe_size;
    const std::uint64_t own_chunks = chunks / objects +
                                     (k < chunks % objects ? 1 : 0);
    FR_CRASH_POINT("create", "object");
    const Fid stripe = osts_[ost_index].create_object(
        file_fid, k, own_chunks * policy.stripe_size);
    layout.stripes.push_back({stripe, ost_index});
  }
  next_ost_ = (next_ost_ + 1) % osts_.size();

  Inode& file2 = *home->image.find(file_ino);
  FR_CRASH_POINT("create", "lovea");
  file2.lov_ea = std::move(layout);
  Inode& dir2 = mdt_inode_or_throw(parent, "create");
  FR_CRASH_POINT("create", "dirent");
  dir2.dirents.push_back({name, file_fid, file_ino});
  FR_CRASH_POINT("create", "changelog");
  if (changelog_ != nullptr) {
    changelog_->append({0, ChangeOp::kCreateFile, file_fid, parent, name,
                        InodeType::kRegular, file2.lov_ea->stripes});
  }
  return file_fid;
}

void LustreCluster::link(const Fid& existing, const Fid& parent,
                         const std::string& name) {
  Inode& file = mdt_inode_or_throw(existing, "link");
  if (file.type != InodeType::kRegular) {
    throw ClusterError("link: hard links to directories are not allowed");
  }
  Inode& dir = mdt_inode_or_throw(parent, "link");
  if (dir.type != InodeType::kDirectory) {
    throw ClusterError("link: parent is not a directory");
  }
  if (find_dirent(dir, name) != nullptr) {
    throw ClusterError("link: name exists: " + name);
  }
  FR_CRASH_POINT("hardlink", "linkea");
  file.link_ea.push_back({parent, name});
  FR_CRASH_POINT("hardlink", "dirent");
  dir.dirents.push_back({name, existing, file.ino});
  FR_CRASH_POINT("hardlink", "changelog");
  if (changelog_ != nullptr) {
    changelog_->append({0, ChangeOp::kHardLink, existing, parent, name,
                        InodeType::kRegular, {}});
  }
}

void LustreCluster::unlink(const Fid& parent, const std::string& name) {
  Inode& dir = mdt_inode_or_throw(parent, "unlink");
  const auto it =
      std::find_if(dir.dirents.begin(), dir.dirents.end(),
                   [&name](const DirentEntry& e) { return e.name == name; });
  if (it == dir.dirents.end()) {
    throw ClusterError("unlink: no such entry: " + name);
  }
  const Fid child_fid = it->fid;
  Inode& child = mdt_inode_or_throw(child_fid, "unlink");
  const InodeType child_type = child.type;
  std::vector<LovEaEntry> freed_stripes;
  bool removes_object = true;
  if (child.type == InodeType::kDirectory) {
    if (!child.dirents.empty()) {
      throw ClusterError("unlink: directory not empty: " + name);
    }
  } else {
    // Drop this name's LinkEA record; the object survives while other
    // hard links remain.
    FR_CRASH_POINT("unlink", "linkea");
    std::erase_if(child.link_ea, [&](const LinkEaEntry& link) {
      return link.parent == parent && link.name == name;
    });
    removes_object = child.link_ea.empty();
    if (removes_object && child.lov_ea.has_value()) {
      freed_stripes = child.lov_ea->stripes;
      for (const auto& slot : child.lov_ea->stripes) {
        FR_CRASH_POINT("unlink", "object");
        OstServer& ost = osts_.at(slot.ost_index);
        if (const Inode* obj = ost.image.find_by_fid(slot.stripe)) {
          ost.image.release(obj->ino);
        }
      }
    }
  }
  if (removes_object) {
    MdtServer* child_home = mdt_for(child_fid);
    if (child_home == nullptr) {
      throw ClusterError("unlink: cannot route child fid");
    }
    FR_CRASH_POINT("unlink", "release-child");
    child_home->image.release(child.ino);
  }
  FR_CRASH_POINT("unlink", "changelog");
  if (changelog_ != nullptr) {
    ChangeRecord record{0,          ChangeOp::kUnlink, child_fid, parent,
                        name,       child_type,        std::move(freed_stripes)};
    record.removes_object = removes_object;
    changelog_->append(std::move(record));
  }
  // Re-fetch the parent and drop the entry.
  Inode& dir2 = mdt_inode_or_throw(parent, "unlink");
  FR_CRASH_POINT("unlink", "dirent");
  dir2.dirents.erase(
      std::find_if(dir2.dirents.begin(), dir2.dirents.end(),
                   [&name](const DirentEntry& e) { return e.name == name; }));
}

Fid LustreCluster::rename(const Fid& old_parent, const std::string& old_name,
                          const Fid& new_parent, const std::string& new_name) {
  Inode& src_dir = mdt_inode_or_throw(old_parent, "rename");
  const DirentEntry* entry = find_dirent(src_dir, old_name);
  if (entry == nullptr) {
    throw ClusterError("rename: no such entry: " + old_name);
  }
  const Fid child_fid = entry->fid;
  const std::uint64_t child_ino = entry->ino;
  Inode& dst_dir = mdt_inode_or_throw(new_parent, "rename");
  if (dst_dir.type != InodeType::kDirectory) {
    throw ClusterError("rename: new parent is not a directory");
  }
  if (find_dirent(dst_dir, new_name) != nullptr) {
    throw ClusterError("rename: name exists: " + new_name);
  }
  Inode& child = mdt_inode_or_throw(child_fid, "rename");
  const InodeType child_type = child.type;
  // Sub-update order mirrors the constructive ops: child-side EA first,
  // destination DIRENT, changelog, and only then the source DIRENT —
  // so a crash mid-rename leaves a double entry or a LinkEA that
  // disagrees with the surviving DIRENT, never a lost child.
  FR_CRASH_POINT("rename", "linkea");
  for (auto& link : child.link_ea) {
    if (link.parent == old_parent && link.name == old_name) {
      link = {new_parent, new_name};
      break;
    }
  }
  FR_CRASH_POINT("rename", "dirent-add");
  dst_dir.dirents.push_back({new_name, child_fid, child_ino});
  FR_CRASH_POINT("rename", "changelog");
  if (changelog_ != nullptr) {
    ChangeRecord record{0,          ChangeOp::kRename, child_fid, new_parent,
                        new_name,   child_type,        {}};
    record.removes_object = false;
    record.src_parent = old_parent;
    record.src_name = old_name;
    changelog_->append(std::move(record));
  }
  FR_CRASH_POINT("rename", "dirent-remove");
  Inode& src2 = mdt_inode_or_throw(old_parent, "rename");
  src2.dirents.erase(std::find_if(
      src2.dirents.begin(), src2.dirents.end(),
      [&](const DirentEntry& e) {
        return e.name == old_name && e.fid == child_fid;
      }));
  return child_fid;
}

Fid LustreCluster::resolve(std::string_view path) const {
  if (path.empty() || path.front() != '/') {
    throw ClusterError("resolve: path must be absolute");
  }
  Fid current = root();
  std::size_t pos = 1;
  while (pos < path.size()) {
    const std::size_t slash = path.find('/', pos);
    const std::string_view component =
        path.substr(pos, slash == std::string_view::npos ? slash : slash - pos);
    pos = slash == std::string_view::npos ? path.size() : slash + 1;
    if (component.empty()) continue;
    const Inode& dir = mdt_inode_or_throw(current, "resolve");
    const DirentEntry* entry = find_dirent(dir, component);
    if (entry == nullptr) {
      throw ClusterError("resolve: no entry '" + std::string(component) +
                         "' in " + current.to_string());
    }
    current = entry->fid;
  }
  return current;
}

Fid LustreCluster::mkdir_p(std::string_view path) {
  if (path.empty() || path.front() != '/') {
    throw ClusterError("mkdir_p: path must be absolute");
  }
  Fid current = root();
  std::size_t pos = 1;
  while (pos < path.size()) {
    const std::size_t slash = path.find('/', pos);
    const std::string_view component =
        path.substr(pos, slash == std::string_view::npos ? slash : slash - pos);
    pos = slash == std::string_view::npos ? path.size() : slash + 1;
    if (component.empty()) continue;
    const Inode& dir = mdt_inode_or_throw(current, "mkdir_p");
    if (const DirentEntry* entry = find_dirent(dir, component)) {
      current = entry->fid;
    } else {
      current = mkdir(current, std::string(component));
    }
  }
  return current;
}

const Inode* LustreCluster::stat(const Fid& fid) const {
  return find_mdt_inode(fid);
}

Fid LustreCluster::lost_found() {
  if (!lost_found_fid_.is_null()) return lost_found_fid_;
  lost_found_fid_ = mkdir_p("/.lustre/lost+found");
  return lost_found_fid_;
}

std::uint64_t LustreCluster::mdt_inodes_used() const noexcept {
  std::uint64_t total = 0;
  for (const auto& mdt : mdts_) total += mdt->image.inodes_in_use();
  return total;
}

std::uint64_t LustreCluster::total_ost_objects() const noexcept {
  std::uint64_t total = 0;
  for (const auto& ost : osts_) total += ost.image.inodes_in_use();
  return total;
}

}  // namespace faultyrank
