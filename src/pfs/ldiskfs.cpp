#include "pfs/ldiskfs.h"

#include <algorithm>
#include <stdexcept>

namespace faultyrank {

LdiskfsImage::LdiskfsImage(std::string label, std::uint32_t inodes_per_group)
    : label_(std::move(label)), inodes_per_group_(inodes_per_group) {
  if (inodes_per_group_ == 0) {
    throw std::invalid_argument("ldiskfs: inodes_per_group must be > 0");
  }
}

Inode& LdiskfsImage::allocate(InodeType type) {
  std::uint64_t ino;
  if (!free_list_.empty()) {
    // First-fit: lowest free ino first, like ext4's bitmap walk.
    const auto lowest = std::min_element(free_list_.begin(), free_list_.end());
    ino = *lowest;
    *lowest = free_list_.back();
    free_list_.pop_back();
  } else {
    slots_.emplace_back();
    ino = slots_.size();  // ino is 1-based
  }
  Inode& inode = slots_[ino - 1];
  inode = Inode{};
  inode.ino = ino;
  inode.type = type;
  inode.in_use = true;
  ++in_use_count_;
  return inode;
}

void LdiskfsImage::release(std::uint64_t ino) {
  Inode* inode = find(ino);
  if (inode == nullptr) {
    throw std::invalid_argument("ldiskfs: release of free or invalid inode");
  }
  oi_.erase(inode->lma_fid);
  inode->in_use = false;
  --in_use_count_;
  free_list_.push_back(ino);
}

Inode* LdiskfsImage::find(std::uint64_t ino) {
  if (ino == 0 || ino > slots_.size()) return nullptr;
  Inode& inode = slots_[ino - 1];
  return inode.in_use ? &inode : nullptr;
}

const Inode* LdiskfsImage::find(std::uint64_t ino) const {
  if (ino == 0 || ino > slots_.size()) return nullptr;
  const Inode& inode = slots_[ino - 1];
  return inode.in_use ? &inode : nullptr;
}

Inode* LdiskfsImage::find_by_fid(const Fid& fid) {
  const auto it = oi_.find(fid);
  return it == oi_.end() ? nullptr : find(it->second);
}

const Inode* LdiskfsImage::find_by_fid(const Fid& fid) const {
  const auto it = oi_.find(fid);
  return it == oi_.end() ? nullptr
                         : const_cast<LdiskfsImage*>(this)->find(it->second);
}

void LdiskfsImage::oi_insert(const Fid& fid, std::uint64_t ino) {
  oi_[fid] = ino;
}

void LdiskfsImage::oi_erase(const Fid& fid) { oi_.erase(fid); }

Inode* LdiskfsImage::find_by_fid_raw(const Fid& fid) {
  for (auto& inode : slots_) {
    if (inode.in_use && inode.lma_fid == fid) return &inode;
  }
  return nullptr;
}

const Inode* LdiskfsImage::find_by_fid_raw(const Fid& fid) const {
  for (const auto& inode : slots_) {
    if (inode.in_use && inode.lma_fid == fid) return &inode;
  }
  return nullptr;
}

void LdiskfsImage::for_each_inode(
    const std::function<void(const Inode&)>& visit) const {
  for (const auto& inode : slots_) {
    if (inode.in_use) visit(inode);
  }
}

void LdiskfsImage::for_each_inode_mut(
    const std::function<void(Inode&)>& visit) {
  for (auto& inode : slots_) {
    if (inode.in_use) visit(inode);
  }
}

}  // namespace faultyrank

namespace {

void put_fid(faultyrank::ByteWriter& w, const faultyrank::Fid& fid) {
  w.put(fid.seq);
  w.put(fid.oid);
  w.put(fid.ver);
}

faultyrank::Fid get_fid(faultyrank::ByteReader& r) {
  faultyrank::Fid fid;
  fid.seq = r.get<std::uint64_t>();
  fid.oid = r.get<std::uint32_t>();
  fid.ver = r.get<std::uint32_t>();
  return fid;
}

}  // namespace

namespace faultyrank {

void LdiskfsImage::serialize(ByteWriter& w) const {
  w.put_string(label_);
  w.put(inodes_per_group_);
  w.put(static_cast<std::uint64_t>(slots_.size()));
  for (const Inode& inode : slots_) {
    w.put(inode.ino);
    w.put(static_cast<std::uint8_t>(inode.type));
    w.put(static_cast<std::uint8_t>(inode.in_use ? 1 : 0));
    put_fid(w, inode.lma_fid);
    w.put(static_cast<std::uint32_t>(inode.link_ea.size()));
    for (const LinkEaEntry& link : inode.link_ea) {
      put_fid(w, link.parent);
      w.put_string(link.name);
    }
    w.put(static_cast<std::uint8_t>(inode.lov_ea.has_value() ? 1 : 0));
    if (inode.lov_ea.has_value()) {
      w.put(inode.lov_ea->stripe_size);
      w.put(inode.lov_ea->stripe_count);
      w.put(static_cast<std::uint32_t>(inode.lov_ea->stripes.size()));
      for (const LovEaEntry& slot : inode.lov_ea->stripes) {
        put_fid(w, slot.stripe);
        w.put(slot.ost_index);
      }
    }
    w.put(static_cast<std::uint8_t>(inode.filter_fid.has_value() ? 1 : 0));
    if (inode.filter_fid.has_value()) {
      put_fid(w, inode.filter_fid->parent);
      w.put(inode.filter_fid->stripe_index);
    }
    w.put(static_cast<std::uint32_t>(inode.dirents.size()));
    for (const DirentEntry& entry : inode.dirents) {
      w.put_string(entry.name);
      put_fid(w, entry.fid);
      w.put(entry.ino);
    }
    w.put(inode.size_bytes);
    w.put(inode.mtime);
    w.put(inode.uid);
    w.put(inode.gid);
  }
  w.put(static_cast<std::uint64_t>(free_list_.size()));
  for (const std::uint64_t ino : free_list_) w.put(ino);
  w.put(in_use_count_);
  w.put(static_cast<std::uint64_t>(oi_.size()));
  // The OI table lives in hash order (seed/address dependent); images
  // must be byte-identical across runs, so serialize in Fid order.
  std::vector<std::pair<Fid, std::uint64_t>> oi_sorted(oi_.begin(), oi_.end());
  std::sort(oi_sorted.begin(), oi_sorted.end());
  for (const auto& [fid, ino] : oi_sorted) {
    put_fid(w, fid);
    w.put(ino);
  }
}

LdiskfsImage LdiskfsImage::deserialize(ByteReader& r) {
  const std::string label = r.get_string();
  const auto inodes_per_group = r.get<std::uint32_t>();
  LdiskfsImage image(label, inodes_per_group);
  // Every count is validated against the bytes remaining before the
  // resize, so a bit-flipped length field throws instead of driving a
  // multi-gigabyte allocation (the lower bounds are the fixed-width
  // portion of one encoded element).
  const auto slot_count = r.bounded_count(r.get<std::uint64_t>(), 60);
  image.slots_.resize(slot_count);
  std::uint64_t slot_index = 0;
  for (Inode& inode : image.slots_) {
    inode.ino = r.get<std::uint64_t>();
    inode.type = static_cast<InodeType>(r.get<std::uint8_t>());
    inode.in_use = r.get<std::uint8_t>() != 0;
    // inos are positional (slot = ino - 1); every consumer from the
    // checker's bootstrap down indexes tables with them, so an image
    // whose recorded ino disagrees with its slot is corrupt, not
    // merely inconsistent.
    if (inode.in_use && inode.ino != slot_index + 1) {
      throw SerdesError("inode ino " + std::to_string(inode.ino) +
                        " does not match slot " +
                        std::to_string(slot_index));
    }
    ++slot_index;
    inode.lma_fid = get_fid(r);
    const auto link_count = r.bounded_count(r.get<std::uint32_t>(), 20);
    inode.link_ea.resize(link_count);
    for (LinkEaEntry& link : inode.link_ea) {
      link.parent = get_fid(r);
      link.name = r.get_string();
    }
    if (r.get<std::uint8_t>() != 0) {
      LovEa lov;
      lov.stripe_size = r.get<std::uint32_t>();
      lov.stripe_count = r.get<std::int32_t>();
      const auto stripe_count = r.bounded_count(r.get<std::uint32_t>(), 20);
      lov.stripes.resize(stripe_count);
      for (LovEaEntry& slot : lov.stripes) {
        slot.stripe = get_fid(r);
        slot.ost_index = r.get<std::uint32_t>();
      }
      inode.lov_ea = std::move(lov);
    }
    if (r.get<std::uint8_t>() != 0) {
      FilterFid filter;
      filter.parent = get_fid(r);
      filter.stripe_index = r.get<std::uint32_t>();
      inode.filter_fid = filter;
    }
    const auto dirent_count = r.bounded_count(r.get<std::uint32_t>(), 28);
    inode.dirents.resize(dirent_count);
    for (DirentEntry& entry : inode.dirents) {
      entry.name = r.get_string();
      entry.fid = get_fid(r);
      entry.ino = r.get<std::uint64_t>();
    }
    inode.size_bytes = r.get<std::uint64_t>();
    inode.mtime = r.get<std::uint64_t>();
    inode.uid = r.get<std::uint32_t>();
    inode.gid = r.get<std::uint32_t>();
  }
  const auto free_count = r.bounded_count(r.get<std::uint64_t>(), 8);
  image.free_list_.resize(free_count);
  for (std::uint64_t& ino : image.free_list_) ino = r.get<std::uint64_t>();
  image.in_use_count_ = r.get<std::uint64_t>();
  const auto oi_count = r.bounded_count(r.get<std::uint64_t>(), 24);
  image.oi_.reserve(oi_count);
  for (std::uint64_t i = 0; i < oi_count; ++i) {
    const Fid fid = get_fid(r);
    const auto ino = r.get<std::uint64_t>();
    image.oi_.emplace(fid, ino);
  }
  return image;
}

}  // namespace faultyrank
