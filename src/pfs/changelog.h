// A Lustre ChangeLog work-alike.
//
// Real Lustre can record every namespace-mutating operation in a
// consumable log; the paper's planned *online* FaultyRank (§VI / §VIII)
// depends on exactly this: instead of unmounting and rescanning, an
// incremental graph builder consumes changelog records and keeps the
// metadata graph current. Records carry everything a scanner would have
// extracted for the affected objects, so applying a record updates the
// graph the same way a rescan of those inodes would.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/fid.h"
#include "common/mutex.h"
#include "pfs/ea.h"
#include "pfs/inode.h"

namespace faultyrank {

enum class ChangeOp : std::uint8_t {
  kMkdir = 0,
  kCreateFile = 1,
  kUnlink = 2,
  kHardLink = 3,
  kRename = 4,
};

[[nodiscard]] constexpr const char* to_string(ChangeOp op) noexcept {
  switch (op) {
    case ChangeOp::kMkdir: return "mkdir";
    case ChangeOp::kCreateFile: return "create";
    case ChangeOp::kUnlink: return "unlink";
    case ChangeOp::kHardLink: return "hardlink";
    case ChangeOp::kRename: return "rename";
  }
  return "?";
}

struct ChangeRecord {
  std::uint64_t index = 0;  ///< monotonically increasing sequence number
  ChangeOp op = ChangeOp::kMkdir;
  Fid target;               ///< object created / removed
  Fid parent;               ///< directory it was linked under
  std::string name;
  InodeType type = InodeType::kDirectory;
  /// kCreateFile: the allocated stripe objects, in layout order.
  /// kUnlink of a file: the stripe objects that were freed.
  std::vector<LovEaEntry> stripes;
  /// kUnlink: false when only one name of a hard-linked file went away
  /// and the object itself survives.
  bool removes_object = true;
  /// kRename only: the directory and name the entry moved away from
  /// (`parent`/`name` describe the destination).
  Fid src_parent;
  std::string src_name;
};

/// Append-only operation log with cursor-based consumption.
///
/// Thread-safe: the intended deployment has namespace operations
/// appending from the mutation path while an online checker
/// concurrently reads batches and acknowledges them, so every access
/// to the record store takes the log mutex. Records are returned by
/// value — a consumer never holds a reference into the guarded store.
class ChangeLog {
 public:
  void append(ChangeRecord record) {
    MutexLock lock(mutex_);
    record.index = next_index_++;
    records_.push_back(std::move(record));
  }

  /// Every record with index >= cursor, in order.
  [[nodiscard]] std::vector<ChangeRecord> read_from(
      std::uint64_t cursor) const {
    MutexLock lock(mutex_);
    std::vector<ChangeRecord> out;
    for (const auto& record : records_) {
      if (record.index >= cursor) out.push_back(record);
    }
    return out;
  }

  [[nodiscard]] std::uint64_t next_index() const {
    MutexLock lock(mutex_);
    return next_index_;
  }
  [[nodiscard]] std::size_t size() const {
    MutexLock lock(mutex_);
    return records_.size();
  }

  /// Drops records below `cursor` (a consumer acknowledged them).
  void purge_below(std::uint64_t cursor);

  // FRCL wire snapshot (records + cursor state) — see changelog.cpp.
  // Friends because ChangeLog itself is immovable (the mutex), so the
  // serdes functions populate a caller-provided log in place.
  friend std::vector<std::uint8_t> serialize_changelog(const ChangeLog& log);
  friend void deserialize_changelog(const std::vector<std::uint8_t>& bytes,
                                    ChangeLog& out);

 private:
  mutable Mutex mutex_{"ChangeLog::mutex_"};
  std::vector<ChangeRecord> records_ FR_GUARDED_BY(mutex_);
  std::uint64_t next_index_ FR_GUARDED_BY(mutex_) = 0;
};

/// Serializes the full log (every retained record plus the append
/// cursor) as an FRCL blob, under the log mutex.
[[nodiscard]] std::vector<std::uint8_t> serialize_changelog(
    const ChangeLog& log);

/// Replaces `out`'s contents with the decoded snapshot. Throws
/// SerdesError on bad magic/version, impossible enum bytes, implausible
/// counts, truncation, or trailing garbage — `out` is untouched then.
void deserialize_changelog(const std::vector<std::uint8_t>& bytes,
                           ChangeLog& out);

}  // namespace faultyrank
