// Server containers: one MDT and N OSTs, each wrapping an ldiskfs image
// plus a FID sequence allocator. Sequence ranges are disjoint per
// server so FIDs are cluster-unique (paper §IV-A: "Lustre already
// assigns unique FIDs to these objects").
#pragma once

#include <cstdint>
#include <string>

#include "common/fid.h"
#include "pfs/ldiskfs.h"

namespace faultyrank {

/// Hands out FIDs from a server-owned sequence.
class FidAllocator {
 public:
  explicit FidAllocator(std::uint64_t seq) : seq_(seq) {}

  /// Restores a persisted allocator cursor (see pfs/persistence.h).
  FidAllocator(std::uint64_t seq, std::uint32_t allocated)
      : seq_(seq), last_oid_(allocated) {}

  [[nodiscard]] Fid next() { return Fid{seq_, ++last_oid_, 0}; }
  [[nodiscard]] std::uint64_t seq() const noexcept { return seq_; }
  [[nodiscard]] std::uint32_t allocated() const noexcept { return last_oid_; }

 private:
  std::uint64_t seq_;
  std::uint32_t last_oid_ = 0;
};

/// Sequence layout: MDT i owns 0x200000400 + i; OST i owns
/// 0x100010000 + i. Routing a FID to its home server is a sequence
/// lookup, exactly as Lustre's FLDB does.
inline constexpr std::uint64_t kMdtSeq = 0x200000400ULL;
inline constexpr std::uint64_t kOstSeqBase = 0x100010000ULL;

struct MdtServer {
  explicit MdtServer(std::string name, std::uint32_t index = 0)
      : image(std::move(name)), fids(kMdtSeq + index), index(index) {}

  LdiskfsImage image;
  FidAllocator fids;
  Fid root_fid;  ///< set by the cluster when the root directory is made
  std::uint32_t index = 0;
};

struct OstServer {
  OstServer(std::string name, std::uint32_t index)
      : image(std::move(name)), fids(kOstSeqBase + index), index(index) {}

  /// Creates one stripe object owned by `parent` at `stripe_index`,
  /// holding `size_bytes` of (simulated) stripe data. A checker that
  /// re-creates a lost object can only make an empty one — the size is
  /// how the evaluation tells lossless repair from data loss.
  Fid create_object(const Fid& parent, std::uint32_t stripe_index,
                    std::uint64_t size_bytes = 0) {
    Inode& inode = image.allocate(InodeType::kOstObject);
    inode.lma_fid = fids.next();
    inode.filter_fid = FilterFid{parent, stripe_index};
    inode.size_bytes = size_bytes;
    image.oi_insert(inode.lma_fid, inode.ino);
    return inode.lma_fid;
  }

  LdiskfsImage image;
  FidAllocator fids;
  std::uint32_t index;
};

}  // namespace faultyrank
