// Extended-attribute payloads (paper Fig. 1).
//
// Lustre embeds its cluster-level metadata into the extended attributes
// of local ldiskfs inodes:
//   * LMA       — the object's own FID,
//   * LinkEA    — (parent FID, name) back-pointers on MDT objects,
//   * LOVEA     — the striping layout: which OST objects hold the file,
//   * filter_fid— the OST-side back-pointer to the owning MDT file.
// Directory entries (DIRENT) live in directory data blocks and carry
// both the child's local inode number and its FID.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/fid.h"

namespace faultyrank {

/// One LinkEA record: this object is linked from `parent` under `name`.
struct LinkEaEntry {
  Fid parent;
  std::string name;

  friend bool operator==(const LinkEaEntry&, const LinkEaEntry&) = default;
};

/// One stripe slot in a LOVEA layout.
struct LovEaEntry {
  Fid stripe;          ///< FID of the OST object holding this stripe
  std::uint32_t ost_index = 0;  ///< which OST stores it

  friend bool operator==(const LovEaEntry&, const LovEaEntry&) = default;
};

/// LOVEA: the data-layout metadata of a regular file.
struct LovEa {
  std::uint32_t stripe_size = 1u << 20;  ///< bytes per stripe chunk
  std::int32_t stripe_count = 1;         ///< -1 = stripe over all OSTs
  std::vector<LovEaEntry> stripes;       ///< allocated OST objects, in order

  friend bool operator==(const LovEa&, const LovEa&) = default;
};

/// OST-object back-pointer ("filter fid"): which file and stripe slot
/// this data object belongs to.
struct FilterFid {
  Fid parent;                      ///< owning MDT file
  std::uint32_t stripe_index = 0;  ///< slot within the file's layout

  friend bool operator==(const FilterFid&, const FilterFid&) = default;
};

/// One directory entry, extended Lustre-style with the child's FID.
struct DirentEntry {
  std::string name;
  Fid fid;                 ///< child's cluster FID
  std::uint64_t ino = 0;   ///< child's local inode number (MDT-local)

  friend bool operator==(const DirentEntry&, const DirentEntry&) = default;
};

}  // namespace faultyrank
