#include "pfs/changelog.h"

#include <algorithm>

#include "common/serdes.h"

namespace faultyrank {

void ChangeLog::purge_below(std::uint64_t cursor) {
  MutexLock lock(mutex_);
  std::erase_if(records_, [cursor](const ChangeRecord& record) {
    return record.index < cursor;
  });
}

// ---------------------------------------------------------------------
// FRCL v1 — the changelog snapshot format (DESIGN.md §16):
//
//   u32 magic "FRCL" | u32 version | u64 next_index | u32 record count
//   per record: u64 index | u8 op | target fid | parent fid | str name
//               | u8 type | u32 stripe count | per stripe: fid, u32
//               ost_index | u8 removes_object | src_parent fid |
//               str src_name
//
// Changing any field here requires bumping kChangelogVersion — the
// fr_analyze schema-drift gate holds this format to that rule.
// ---------------------------------------------------------------------

namespace {

constexpr std::uint32_t kMagic = 0x4652434c;  // "FRCL"
constexpr std::uint32_t kChangelogVersion = 1;
// index 8 + op 1 + two fids 32 + name prefix 4 + type 1 + stripe count
// 4 + removes 1 + src fid 16 + src_name prefix 4.
constexpr std::size_t kMinRecordBytes = 71;

void put_fid(ByteWriter& w, const Fid& fid) {
  w.put(fid.seq);
  w.put(fid.oid);
  w.put(fid.ver);
}

Fid get_fid(ByteReader& r) {
  Fid fid;
  fid.seq = r.get<std::uint64_t>();
  fid.oid = r.get<std::uint32_t>();
  fid.ver = r.get<std::uint32_t>();
  return fid;
}

void put_record(ByteWriter& w, const ChangeRecord& record) {
  w.put(record.index);
  w.put(static_cast<std::uint8_t>(record.op));
  put_fid(w, record.target);
  put_fid(w, record.parent);
  w.put_string(record.name);
  w.put(static_cast<std::uint8_t>(record.type));
  w.put(static_cast<std::uint32_t>(record.stripes.size()));
  for (const LovEaEntry& entry : record.stripes) {
    put_fid(w, entry.stripe);
    w.put(entry.ost_index);
  }
  w.put(static_cast<std::uint8_t>(record.removes_object ? 1 : 0));
  put_fid(w, record.src_parent);
  w.put_string(record.src_name);
}

ChangeRecord get_record(ByteReader& r) {
  ChangeRecord record;
  record.index = r.get<std::uint64_t>();
  const auto op = r.get<std::uint8_t>();
  if (op > static_cast<std::uint8_t>(ChangeOp::kRename)) {
    throw SerdesError("changelog record has impossible op byte " +
                      std::to_string(op));
  }
  record.op = static_cast<ChangeOp>(op);
  record.target = get_fid(r);
  record.parent = get_fid(r);
  record.name = r.get_string();
  const auto type = r.get<std::uint8_t>();
  if (type > static_cast<std::uint8_t>(InodeType::kOstObject)) {
    throw SerdesError("changelog record has impossible inode type byte " +
                      std::to_string(type));
  }
  record.type = static_cast<InodeType>(type);
  const std::uint64_t stripe_count =
      r.bounded_count(r.get<std::uint32_t>(), sizeof(Fid) + sizeof(std::uint32_t));
  record.stripes.resize(stripe_count);
  for (LovEaEntry& entry : record.stripes) {
    entry.stripe = get_fid(r);
    entry.ost_index = r.get<std::uint32_t>();
  }
  record.removes_object = r.get<std::uint8_t>() != 0;
  record.src_parent = get_fid(r);
  record.src_name = r.get_string();
  return record;
}

}  // namespace

std::vector<std::uint8_t> serialize_changelog(const ChangeLog& log) {
  MutexLock lock(log.mutex_);
  ByteWriter w;
  w.put(kMagic);
  w.put(kChangelogVersion);
  w.put(log.next_index_);
  w.put(static_cast<std::uint32_t>(log.records_.size()));
  for (const ChangeRecord& record : log.records_) put_record(w, record);
  return w.take();
}

void deserialize_changelog(const std::vector<std::uint8_t>& bytes,
                           ChangeLog& out) {
  ByteReader r(bytes);
  if (r.get<std::uint32_t>() != kMagic) {
    throw SerdesError("changelog snapshot has bad magic");
  }
  const auto version = r.get<std::uint32_t>();
  if (version != kChangelogVersion) {
    throw SerdesError("unsupported changelog version " +
                      std::to_string(version));
  }
  const auto next_index = r.get<std::uint64_t>();
  const std::uint64_t count =
      r.bounded_count(r.get<std::uint32_t>(), kMinRecordBytes);
  std::vector<ChangeRecord> records;
  records.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    records.push_back(get_record(r));
  }
  if (!r.exhausted()) {
    throw SerdesError("trailing bytes after the last changelog record");
  }
  MutexLock lock(out.mutex_);
  out.records_ = std::move(records);
  out.next_index_ = next_index;
}

}  // namespace faultyrank
