#include "pfs/changelog.h"

#include <algorithm>

namespace faultyrank {

void ChangeLog::purge_below(std::uint64_t cursor) {
  MutexLock lock(mutex_);
  std::erase_if(records_, [cursor](const ChangeRecord& record) {
    return record.index < cursor;
  });
}

}  // namespace faultyrank
