// The simulated Lustre cluster: one or more MDTs (DNE — Lustre's
// Distributed NamEspace) plus N OSTs, with POSIX-ish namespace
// operations that maintain the full redundant-metadata web of Fig. 1:
//   mkdir/create  → DIRENT entry on the parent + LinkEA on the child
//   create(size)  → LOVEA layout on the file + filter_fid point-backs
//                   on every allocated OST object
//
// With several MDTs, new directories are placed round-robin across
// them (DNE "remote directories"), so DIRENT/LinkEA pairs routinely
// cross metadata servers; files always live on their parent's MDT.
// FIDs route to their home MDT by sequence, as Lustre's FLDB does.
//
// Striping follows the paper's evaluation setup: with stripe_count = -1
// a file stripes over all OSTs round-robin; the number of OST objects
// actually allocated is ⌈size / stripe_size⌉ capped at the stripe width
// (the paper's "files larger than 512 KB create the same number of
// stripes regardless of actual size" shrink trick), with a 1-object
// minimum for empty files.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/fid.h"
#include "pfs/changelog.h"
#include "pfs/crash.h"
#include "pfs/server.h"

namespace faultyrank {

struct StripePolicy {
  std::uint32_t stripe_size = 1u << 20;  ///< bytes per stripe chunk
  std::int32_t stripe_count = 1;         ///< -1 = use every OST
};

class ClusterError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class LustreCluster {
 public:
  explicit LustreCluster(std::size_t ost_count, StripePolicy policy = {},
                         std::size_t mdt_count = 1);

  [[nodiscard]] const Fid& root() const noexcept {
    return mdts_[0]->root_fid;
  }

  /// Creates a directory under `parent`; returns its FID. With several
  /// MDTs the new directory lands on the next MDT round-robin.
  Fid mkdir(const Fid& parent, const std::string& name);

  /// Creates a regular file of `size` bytes under `parent` (on the
  /// parent's MDT), allocating stripe objects per the effective policy.
  Fid create_file(const Fid& parent, const std::string& name,
                  std::uint64_t size,
                  std::optional<StripePolicy> override_policy = std::nullopt);

  /// Adds a hard link: a second DIRENT entry for an existing regular
  /// file, answered by an additional LinkEA record — exactly how Lustre
  /// represents multiple names for one object. Directories cannot be
  /// hard-linked.
  void link(const Fid& existing, const Fid& parent, const std::string& name);

  /// Removes one name of a file (freeing its OST objects only when the
  /// last link goes away) or an empty directory.
  void unlink(const Fid& parent, const std::string& name);

  /// Moves one name: the child's LinkEA record is rewritten, a DIRENT
  /// appears under `new_parent`, the changelog records the move, and
  /// the old DIRENT goes away — in that order, so a crash mid-rename
  /// leaves the classic double-entry / mismatched-LinkEA states.
  /// Directories may be renamed (DNE: possibly across MDTs); the child
  /// is returned.
  Fid rename(const Fid& old_parent, const std::string& old_name,
             const Fid& new_parent, const std::string& new_name);

  /// Resolves an absolute "/a/b/c" path; throws ClusterError if absent.
  [[nodiscard]] Fid resolve(std::string_view path) const;

  /// mkdir for every missing component of an absolute directory path.
  Fid mkdir_p(std::string_view path);

  /// Looks up an MDT object's inode by FID, routing to its home MDT.
  [[nodiscard]] const Inode* stat(const Fid& fid) const;

  /// The ".lustre/lost+found" directory, created on first use.
  Fid lost_found();

  // ---- server access ----
  [[nodiscard]] MdtServer& mdt() noexcept { return *mdts_[0]; }
  [[nodiscard]] const MdtServer& mdt() const noexcept { return *mdts_[0]; }
  [[nodiscard]] std::size_t mdt_count() const noexcept {
    return mdts_.size();
  }
  [[nodiscard]] MdtServer& mdt_server(std::size_t i) { return *mdts_.at(i); }
  [[nodiscard]] const MdtServer& mdt_server(std::size_t i) const {
    return *mdts_.at(i);
  }
  [[nodiscard]] std::vector<OstServer>& osts() noexcept { return osts_; }
  [[nodiscard]] const std::vector<OstServer>& osts() const noexcept {
    return osts_;
  }
  [[nodiscard]] OstServer& ost(std::size_t i) { return osts_.at(i); }

  /// Routes a FID to the MDT whose sequence range owns it; nullptr for
  /// non-MDT sequences (bogus fids, OST objects).
  [[nodiscard]] MdtServer* mdt_for(const Fid& fid) noexcept;
  [[nodiscard]] const MdtServer* mdt_for(const Fid& fid) const noexcept;

  /// OI lookup on the owning MDT (any MDT when routing fails).
  [[nodiscard]] Inode* find_mdt_inode(const Fid& fid);
  [[nodiscard]] const Inode* find_mdt_inode(const Fid& fid) const;

  [[nodiscard]] const StripePolicy& default_policy() const noexcept {
    return policy_;
  }

  [[nodiscard]] std::uint64_t mdt_inodes_used() const noexcept;
  [[nodiscard]] std::uint64_t total_ost_objects() const noexcept;

  /// Starts recording namespace mutations into `log` (pass nullptr to
  /// stop). The log must outlive the attachment. Only logical namespace
  /// operations are recorded — raw EA edits (fault injection, repairs)
  /// bypass it, exactly as on-disk corruption bypasses a real
  /// changelog.
  void attach_changelog(ChangeLog* log) noexcept { changelog_ = log; }
  [[nodiscard]] ChangeLog* changelog() const noexcept { return changelog_; }

  /// Installs a crash-point observer (pass nullptr to detach). The hook
  /// fires at every FR_CRASH_POINT inside namespace ops and may throw
  /// CrashUnwind to abandon the op half-applied (see pfs/crash.h). The
  /// hook must outlive the attachment. Not serialized with snapshots.
  void attach_crash_hook(CrashHook* hook) noexcept { crash_hook_ = hook; }
  [[nodiscard]] CrashHook* crash_hook() const noexcept { return crash_hook_; }

 private:
  // Snapshot persistence reconstructs private state directly.
  friend std::vector<std::uint8_t> serialize_cluster(
      const LustreCluster& cluster);
  friend LustreCluster deserialize_cluster(
      const std::vector<std::uint8_t>& bytes);

  /// Uninitialized shell used only by load_cluster.
  LustreCluster() = default;

  /// Body of FR_CRASH_POINT: forwards to the attached hook, if any.
  void crash_step(const char* op, const char* point) {
    if (crash_hook_ != nullptr) crash_hook_->reached({op, point});
  }

  Inode& mdt_inode_or_throw(const Fid& fid, const char* what);
  [[nodiscard]] const Inode& mdt_inode_or_throw(const Fid& fid,
                                                const char* what) const;
  /// Number of OST objects to allocate for a file of `size` bytes.
  [[nodiscard]] std::uint32_t object_count(std::uint64_t size,
                                           const StripePolicy& policy) const;

  // unique_ptr keeps servers address-stable so callers may hold
  // references across namespace operations.
  std::vector<std::unique_ptr<MdtServer>> mdts_;
  std::vector<OstServer> osts_;
  StripePolicy policy_;
  std::uint64_t next_ost_ = 0;  ///< round-robin start for stripe layout
  std::uint64_t next_mdt_ = 0;  ///< round-robin for new directories
  Fid lost_found_fid_;
  ChangeLog* changelog_ = nullptr;    ///< not owned; may be null
  CrashHook* crash_hook_ = nullptr;   ///< not owned; may be null
};

}  // namespace faultyrank
