// The simulated ldiskfs inode.
//
// One struct covers MDT namespace objects (directories, files) and OST
// data objects; which EA fields are populated depends on the type,
// mirroring how Lustre overloads local inodes (paper §II-A).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/fid.h"
#include "pfs/ea.h"

namespace faultyrank {

enum class InodeType : std::uint8_t {
  kDirectory = 0,
  kRegular = 1,
  kOstObject = 2,
};

struct Inode {
  std::uint64_t ino = 0;  ///< local inode number (unique per image)
  InodeType type = InodeType::kRegular;
  bool in_use = false;

  // ---- extended attributes ----
  Fid lma_fid;                          ///< LMA: the object's own FID
  std::vector<LinkEaEntry> link_ea;     ///< MDT objects: parent links
  std::optional<LovEa> lov_ea;          ///< MDT regular files: layout
  std::optional<FilterFid> filter_fid;  ///< OST objects: owner pointer

  // ---- directory payload (data blocks, not EA) ----
  std::vector<DirentEntry> dirents;     ///< directories only

  // ---- plain attributes (realism for the namespace generator) ----
  std::uint64_t size_bytes = 0;
  std::uint64_t mtime = 0;
  std::uint32_t uid = 0;
  std::uint32_t gid = 0;

  /// Approximate on-disk footprint of the inode + inline EAs (ext4
  /// "large" inode). The scanner's disk model charges this per inode.
  [[nodiscard]] std::uint64_t on_disk_bytes() const noexcept {
    return 512;
  }

  /// Approximate size of the directory data blocks holding `dirents`.
  [[nodiscard]] std::uint64_t dirent_bytes() const noexcept {
    std::uint64_t total = 0;
    for (const auto& entry : dirents) total += 48 + entry.name.size();
    return total;
  }
};

}  // namespace faultyrank
