#include "pfs/persistence.h"

#include <cstdio>
#include <memory>

#include "common/serdes.h"

namespace faultyrank {

namespace {

constexpr std::uint32_t kMagic = 0x46524c43;  // "FRLC"
constexpr std::uint32_t kVersion = 2;         // v2: multiple MDTs (DNE)

struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void put_fid(ByteWriter& w, const Fid& fid) {
  w.put(fid.seq);
  w.put(fid.oid);
  w.put(fid.ver);
}

Fid get_fid(ByteReader& r) {
  Fid fid;
  fid.seq = r.get<std::uint64_t>();
  fid.oid = r.get<std::uint32_t>();
  fid.ver = r.get<std::uint32_t>();
  return fid;
}

}  // namespace

std::vector<std::uint8_t> serialize_cluster(const LustreCluster& cluster) {
  ByteWriter w;
  w.put(kMagic);
  w.put(kVersion);
  w.put(cluster.policy_.stripe_size);
  w.put(cluster.policy_.stripe_count);
  w.put(cluster.next_ost_);
  w.put(cluster.next_mdt_);
  put_fid(w, cluster.lost_found_fid_);

  // MDTs: allocator cursors, roots, images.
  w.put(static_cast<std::uint32_t>(cluster.mdts_.size()));
  for (const auto& mdt : cluster.mdts_) {
    w.put(mdt->index);
    w.put(mdt->fids.seq());
    w.put(mdt->fids.allocated());
    put_fid(w, mdt->root_fid);
    mdt->image.serialize(w);
  }

  w.put(static_cast<std::uint32_t>(cluster.osts_.size()));
  for (const OstServer& ost : cluster.osts_) {
    w.put(ost.index);
    w.put(ost.fids.seq());
    w.put(ost.fids.allocated());
    ost.image.serialize(w);
  }

  return w.take();
}

LustreCluster deserialize_cluster(const std::vector<std::uint8_t>& bytes) {
  try {
    ByteReader r(bytes);
    if (r.get<std::uint32_t>() != kMagic) {
      throw PersistenceError("not a cluster snapshot");
    }
    if (r.get<std::uint32_t>() != kVersion) {
      throw PersistenceError("unsupported snapshot version");
    }

    LustreCluster cluster;
    cluster.policy_.stripe_size = r.get<std::uint32_t>();
    cluster.policy_.stripe_count = r.get<std::int32_t>();
    cluster.next_ost_ = r.get<std::uint64_t>();
    cluster.next_mdt_ = r.get<std::uint64_t>();
    cluster.lost_found_fid_ = get_fid(r);

    // Per-server records carry at least index + allocator + root/label
    // bytes; bounding the counts keeps a flipped length byte from
    // driving a multi-gigabyte reserve (see ByteReader::bounded_count).
    const auto mdt_count = r.bounded_count(r.get<std::uint32_t>(), 30);
    cluster.mdts_.reserve(mdt_count);
    for (std::uint32_t i = 0; i < mdt_count; ++i) {
      const auto index = r.get<std::uint32_t>();
      const auto seq = r.get<std::uint64_t>();
      const auto allocated = r.get<std::uint32_t>();
      const Fid root = get_fid(r);
      LdiskfsImage image = LdiskfsImage::deserialize(r);
      auto mdt = std::make_unique<MdtServer>(image.label(), index);
      mdt->image = std::move(image);
      mdt->fids = FidAllocator(seq, allocated);
      mdt->root_fid = root;
      cluster.mdts_.push_back(std::move(mdt));
    }

    const auto ost_count = r.bounded_count(r.get<std::uint32_t>(), 30);
    cluster.osts_.reserve(ost_count);
    for (std::uint32_t i = 0; i < ost_count; ++i) {
      const auto index = r.get<std::uint32_t>();
      const auto seq = r.get<std::uint64_t>();
      const auto allocated = r.get<std::uint32_t>();
      LdiskfsImage image = LdiskfsImage::deserialize(r);
      OstServer ost(image.label(), index);
      ost.image = std::move(image);
      ost.fids = FidAllocator(seq, allocated);
      cluster.osts_.push_back(std::move(ost));
    }
    if (!r.exhausted()) {
      throw PersistenceError("trailing bytes in snapshot");
    }
    return cluster;
  } catch (const SerdesError& error) {
    throw PersistenceError(std::string("corrupt snapshot: ") + error.what());
  }
}

std::vector<std::uint8_t> serialize_image(const LdiskfsImage& image) {
  ByteWriter w;
  image.serialize(w);
  return w.take();
}

LdiskfsImage deserialize_image(const std::vector<std::uint8_t>& bytes) {
  try {
    ByteReader r(bytes);
    LdiskfsImage image = LdiskfsImage::deserialize(r);
    if (!r.exhausted()) {
      throw PersistenceError("trailing bytes in image");
    }
    return image;
  } catch (const SerdesError& error) {
    throw PersistenceError(std::string("corrupt image: ") + error.what());
  }
}

void atomic_write_file(const std::vector<std::uint8_t>& bytes,
                       const std::string& path) {
  // Same directory as the target, so the rename is a metadata-only
  // operation on every POSIX filesystem (rename across mounts fails).
  const std::string tmp = path + ".tmp";
  {
    FilePtr f(std::fopen(tmp.c_str(), "wb"));
    if (!f) throw PersistenceError("cannot open for write: " + tmp);
    if (std::fwrite(bytes.data(), 1, bytes.size(), f.get()) != bytes.size()) {
      f.reset();
      std::remove(tmp.c_str());
      throw PersistenceError("short write: " + tmp);
    }
    if (std::fflush(f.get()) != 0) {
      f.reset();
      std::remove(tmp.c_str());
      throw PersistenceError("flush failed: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw PersistenceError("rename failed: " + tmp + " -> " + path);
  }
}

std::vector<std::uint8_t> read_file_bytes(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) throw PersistenceError("cannot open for read: " + path);
  std::fseek(f.get(), 0, SEEK_END);
  const long size = std::ftell(f.get());
  if (size < 0) throw PersistenceError("cannot size: " + path);
  std::fseek(f.get(), 0, SEEK_SET);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  if (std::fread(bytes.data(), 1, bytes.size(), f.get()) != bytes.size()) {
    throw PersistenceError("short read: " + path);
  }
  return bytes;
}

void save_cluster(const LustreCluster& cluster, const std::string& path) {
  atomic_write_file(serialize_cluster(cluster), path);
}

LustreCluster load_cluster(const std::string& path) {
  try {
    return deserialize_cluster(read_file_bytes(path));
  } catch (const PersistenceError& error) {
    throw PersistenceError(std::string(error.what()) + " (" + path + ")");
  }
}

}  // namespace faultyrank
