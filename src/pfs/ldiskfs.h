// A user-space stand-in for an ldiskfs (ext4) volume.
//
// Inodes live in fixed-size block groups, allocated first-fit; the raw
// scan API iterates the inode table in block-group order — exactly the
// traversal the FaultyRank scanner performs on a real disk image
// (superblock → block group → inode table, paper §IV-A). A separate
// Object Index (OI) maps FID → inode number for logical lookups, and —
// deliberately — goes stale when the fault injector corrupts an LMA fid
// behind its back, just like the on-disk OI files would.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/fid.h"
#include "common/serdes.h"
#include "pfs/inode.h"

namespace faultyrank {

class LdiskfsImage {
 public:
  explicit LdiskfsImage(std::string label,
                        std::uint32_t inodes_per_group = 8192);

  [[nodiscard]] const std::string& label() const noexcept { return label_; }

  /// Allocates a fresh in-use inode of the given type. Never reuses a
  /// live ino; freed slots are recycled first-fit within their group.
  Inode& allocate(InodeType type);

  /// Marks the inode free and drops it from the OI.
  void release(std::uint64_t ino);

  /// Local lookup by inode number; nullptr if out of range or free.
  [[nodiscard]] Inode* find(std::uint64_t ino);
  [[nodiscard]] const Inode* find(std::uint64_t ino) const;

  /// Logical lookup through the Object Index. Unaware of raw EA edits.
  [[nodiscard]] Inode* find_by_fid(const Fid& fid);
  [[nodiscard]] const Inode* find_by_fid(const Fid& fid) const;

  /// Records fid → ino in the OI (called by namespace ops after they
  /// set an inode's LMA).
  void oi_insert(const Fid& fid, std::uint64_t ino);
  void oi_erase(const Fid& fid);

  /// Full-table scan comparing live LMA fids (what a repair tool must
  /// do when the OI may be stale). O(#inodes).
  [[nodiscard]] Inode* find_by_fid_raw(const Fid& fid);
  [[nodiscard]] const Inode* find_by_fid_raw(const Fid& fid) const;

  /// Raw scan: visits every in-use inode in block-group order.
  void for_each_inode(const std::function<void(const Inode&)>& visit) const;
  void for_each_inode_mut(const std::function<void(Inode&)>& visit);

  /// Raw read of one inode-table slot (0-based, in block-group order);
  /// nullptr when the slot is free. The resilient scanner iterates
  /// slots itself so a faulted read can be retried or quarantined
  /// without abandoning the whole table walk (op_faults hook).
  [[nodiscard]] const Inode* inode_at(std::uint64_t slot) const noexcept {
    if (slot >= slots_.size() || !slots_[slot].in_use) return nullptr;
    return &slots_[slot];
  }

  [[nodiscard]] std::uint64_t inodes_in_use() const noexcept {
    return in_use_count_;
  }
  [[nodiscard]] std::uint64_t inode_slots() const noexcept {
    return slots_.size();
  }
  [[nodiscard]] std::uint32_t block_groups() const noexcept {
    return static_cast<std::uint32_t>(
        (slots_.size() + inodes_per_group_ - 1) / inodes_per_group_);
  }

  /// Total bytes of inode tables the raw scanner must stream (all
  /// slots, used or not — a raw scan reads whole tables).
  [[nodiscard]] std::uint64_t inode_table_bytes() const noexcept {
    return slots_.size() * 512;
  }

  /// Bit-exact snapshot of the whole image (every slot, the free list,
  /// and the OI — including any stale OI entries).
  void serialize(ByteWriter& writer) const;
  [[nodiscard]] static LdiskfsImage deserialize(ByteReader& reader);

 private:
  std::string label_;
  std::uint32_t inodes_per_group_;
  std::vector<Inode> slots_;            // index = ino - 1 (ino 0 invalid)
  std::vector<std::uint64_t> free_list_;
  std::uint64_t in_use_count_ = 0;
  std::unordered_map<Fid, std::uint64_t, FidHash> oi_;
};

}  // namespace faultyrank
