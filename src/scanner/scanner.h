// Metadata scanners (paper §IV-A).
//
// One scanner per server walks the local image raw — inode table in
// block-group order, descending into directory data blocks for DIRENT
// entries — and emits a partial graph of FID-keyed vertices and edges:
//
//   MDT directory  → vertex(kDirectory); DIRENT edge per entry;
//                    LinkEA edge per parent link
//   MDT file       → vertex(kFile); LinkEA edges; LOVEA edge per stripe
//   OST object     → vertex(kStripeObject); ObjLinkEA edge to its owner
//
// Scanners never consult the OI or resolve paths: they read exactly the
// bytes a raw disk walk sees, so corrupted EAs flow into the graph
// unfiltered — that is the whole point.
//
// Disk cost: one streaming read of the inode table plus one random read
// per directory's entry blocks, charged to the server's DiskModel.
#pragma once

#include <cstdint>
#include <vector>

#include "common/sim_clock.h"
#include "common/thread_pool.h"
#include "graph/partial_graph.h"
#include "pfs/cluster.h"

namespace faultyrank {

struct ScanResult {
  PartialGraph graph;
  bool local_to_mds = false;   ///< MDS partial graphs skip the network
  double sim_seconds = 0.0;    ///< virtual disk time
  double wall_seconds = 0.0;   ///< measured CPU time
  std::uint64_t inodes_scanned = 0;
  std::uint64_t directories_visited = 0;
};

/// Scans one MDT image (paper: the MDS holds namespace + layout
/// metadata on a local SSD).
[[nodiscard]] ScanResult scan_mdt(const MdtServer& mdt,
                                  const DiskModel& disk = DiskModel::ssd());

/// Scans one OST image (paper: OSTs are HDD-backed).
[[nodiscard]] ScanResult scan_ost(const OstServer& ost,
                                  const DiskModel& disk = DiskModel::hdd());

struct ClusterScan {
  std::vector<ScanResult> results;  ///< MDTs first (in index order), then OSTs
  /// Virtual elapsed time: scanners run in parallel on their own
  /// servers, so the cluster-level scan time is the slowest scanner.
  double sim_seconds = 0.0;
  double wall_seconds = 0.0;
  std::uint64_t inodes_scanned = 0;
};

/// Runs every per-server scanner, on `pool` if provided (one task per
/// server, mirroring the paper's concurrent scanners).
[[nodiscard]] ClusterScan scan_cluster(const LustreCluster& cluster,
                                       ThreadPool* pool = nullptr,
                                       const DiskModel& mdt_disk = DiskModel::ssd(),
                                       const DiskModel& ost_disk = DiskModel::hdd());

}  // namespace faultyrank
