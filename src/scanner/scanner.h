// Metadata scanners (paper §IV-A).
//
// One scanner per server walks the local image raw — inode table in
// block-group order, descending into directory data blocks for DIRENT
// entries — and emits a partial graph of FID-keyed vertices and edges:
//
//   MDT directory  → vertex(kDirectory); DIRENT edge per entry;
//                    LinkEA edge per parent link
//   MDT file       → vertex(kFile); LinkEA edges; LOVEA edge per stripe
//   OST object     → vertex(kStripeObject); ObjLinkEA edge to its owner
//
// Scanners never consult the OI or resolve paths: they read exactly the
// bytes a raw disk walk sees, so corrupted EAs flow into the graph
// unfiltered — that is the whole point.
//
// Disk cost: one streaming read of the inode table plus one random read
// per directory's entry blocks, charged to the server's DiskModel.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/sim_clock.h"
#include "common/thread_pool.h"
#include "faults/op_faults.h"
#include "graph/partial_graph.h"
#include "pfs/cluster.h"

namespace faultyrank {

/// How a per-server scan ended.
enum class ScanStatus : std::uint8_t {
  kComplete = 0,  ///< every in-use inode read successfully
  kDegraded = 1,  ///< finished, but some inodes were quarantined
  kFailed = 2,    ///< server crashed or deadline hit; graph discarded
};

[[nodiscard]] const char* to_string(ScanStatus status) noexcept;

/// Bounded retry with exponential backoff for faulted inode reads.
/// Every knob is a virtual-time quantity charged to the scan's
/// DiskModel clock; nothing here sleeps real threads.
struct RetryPolicy {
  std::uint32_t max_attempts = 4;          ///< reads per inode, total
  double initial_backoff_seconds = 1e-3;   ///< pause before 1st retry
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 100e-3;     ///< cap per pause
  double jitter_fraction = 0.1;            ///< +[0, frac)·pause, seeded
  /// Abort the scan (status kFailed) once its virtual clock passes
  /// this. Defaults to no deadline.
  double deadline_seconds = std::numeric_limits<double>::infinity();
};

struct ScanResult {
  PartialGraph graph;
  bool local_to_mds = false;   ///< MDS partial graphs skip the network
  double sim_seconds = 0.0;    ///< virtual disk time
  double wall_seconds = 0.0;   ///< measured CPU time
  std::uint64_t inodes_scanned = 0;
  std::uint64_t directories_visited = 0;
  ScanStatus status = ScanStatus::kComplete;
  std::uint64_t read_attempts = 0;  ///< physical reads incl. retries
  std::uint64_t retries = 0;        ///< re-reads after a faulted read
  std::vector<Fid> quarantined;     ///< unreadable inodes, skipped
  std::string error;                ///< why, when status == kFailed
};

/// Scans one MDT image (paper: the MDS holds namespace + layout
/// metadata on a local SSD). With a fault schedule the scan walks the
/// inode table slot-by-slot, retrying faulted reads under `retry` and
/// quarantining inodes whose reads never clear; a server crash or a
/// blown deadline yields status kFailed with an empty graph instead of
/// an exception. Without a schedule the walk is identical and the extra
/// machinery is bypassed.
[[nodiscard]] ScanResult scan_mdt(const MdtServer& mdt,
                                  const DiskModel& disk = DiskModel::ssd(),
                                  ServerFaultSchedule* faults = nullptr,
                                  const RetryPolicy& retry = {});

/// Scans one OST image (paper: OSTs are HDD-backed). Fault semantics
/// match scan_mdt.
[[nodiscard]] ScanResult scan_ost(const OstServer& ost,
                                  const DiskModel& disk = DiskModel::hdd(),
                                  ServerFaultSchedule* faults = nullptr,
                                  const RetryPolicy& retry = {});

struct ClusterScan {
  std::vector<ScanResult> results;  ///< MDTs first (in index order), then OSTs
  /// Virtual elapsed time: scanners run in parallel on their own
  /// servers, so the cluster-level scan time is the slowest scanner.
  double sim_seconds = 0.0;
  double wall_seconds = 0.0;
  std::uint64_t inodes_scanned = 0;
};

/// Runs every per-server scanner, on `pool` if provided (one task per
/// server, mirroring the paper's concurrent scanners). Never throws on
/// operational faults: a crashed server is reported as a kFailed slot
/// in `results`, and the surviving scans are kept.
[[nodiscard]] ClusterScan scan_cluster(const LustreCluster& cluster,
                                       ThreadPool* pool = nullptr,
                                       const DiskModel& mdt_disk = DiskModel::ssd(),
                                       const DiskModel& ost_disk = DiskModel::hdd(),
                                       OpFaultSchedule* op_faults = nullptr,
                                       const RetryPolicy& retry = {});

}  // namespace faultyrank
