#include "scanner/scanner.h"

#include <algorithm>

#include "common/timer.h"

namespace faultyrank {

const char* to_string(ScanStatus status) noexcept {
  switch (status) {
    case ScanStatus::kComplete: return "complete";
    case ScanStatus::kDegraded: return "degraded";
    case ScanStatus::kFailed: return "failed";
  }
  return "unknown";
}

namespace {

// The inode-table slot size charged per raw read (matches
// LdiskfsImage::inode_table_bytes()).
constexpr std::uint64_t kSlotBytes = 512;

// Aggregate disk-cost inputs the MDT walk accumulates; the final
// sim-time formula consumes them so the resilient and plain walks
// charge byte-identical virtual time when no faults fire.
struct MdtAccum {
  std::uint64_t dirent_bytes = 0;
  std::uint64_t external_ea_blocks = 0;
};

// One MDT inode → graph vertices/edges. Shared by the plain
// for_each_inode walk and the resilient slot walk so both emit
// identical graphs.
void visit_mdt_inode(const Inode& inode, ScanResult& result, MdtAccum& acc) {
  ++result.inodes_scanned;
  // Ext4 keeps ~100-200 B of EA space inline; a wide LOVEA or a
  // multi-entry LinkEA spills to an external xattr block, which costs
  // the scan one extra random read (directories are charged for
  // their data-block excursion separately below).
  if (inode.type != InodeType::kDirectory &&
      (inode.link_ea.size() > 1 ||
       (inode.lov_ea.has_value() && inode.lov_ea->stripes.size() > 2))) {
    ++acc.external_ea_blocks;
  }
  switch (inode.type) {
    case InodeType::kDirectory: {
      result.graph.add_vertex(inode.lma_fid, ObjectKind::kDirectory);
      ++result.directories_visited;
      // Reading DIRENT entries means leaving the inode table for the
      // directory's data blocks — the one random excursion of the
      // scan (paper §IV-A).
      acc.dirent_bytes += std::max<std::uint64_t>(inode.dirent_bytes(), 4096);
      for (const auto& entry : inode.dirents) {
        result.graph.add_edge(inode.lma_fid, entry.fid, EdgeKind::kDirent);
      }
      for (const auto& link : inode.link_ea) {
        result.graph.add_edge(inode.lma_fid, link.parent, EdgeKind::kLinkEa);
      }
      break;
    }
    case InodeType::kRegular: {
      result.graph.add_vertex(inode.lma_fid, ObjectKind::kFile);
      for (const auto& link : inode.link_ea) {
        result.graph.add_edge(inode.lma_fid, link.parent, EdgeKind::kLinkEa);
      }
      if (inode.lov_ea.has_value()) {
        for (const auto& slot : inode.lov_ea->stripes) {
          result.graph.add_edge(inode.lma_fid, slot.stripe, EdgeKind::kLovEa);
        }
      }
      break;
    }
    case InodeType::kOstObject:
      // An OST object on the MDT would itself be corruption; surface
      // it as a bare vertex so the graph sees an isolated object.
      result.graph.add_vertex(inode.lma_fid, ObjectKind::kStripeObject);
      break;
  }
}

void visit_ost_inode(const Inode& inode, ScanResult& result) {
  ++result.inodes_scanned;
  result.graph.add_vertex(inode.lma_fid, ObjectKind::kStripeObject);
  if (inode.filter_fid.has_value()) {
    result.graph.add_edge(inode.lma_fid, inode.filter_fid->parent,
                          EdgeKind::kObjParent);
  }
}

double mdt_sim_seconds(const DiskModel& disk, std::uint64_t table_bytes,
                       const ScanResult& result, const MdtAccum& acc) {
  return disk.sequential_read(table_bytes) +
         disk.random_reads(result.directories_visited, 0) +
         disk.random_reads(acc.external_ea_blocks, 512) +
         static_cast<double>(acc.dirent_bytes) / disk.bandwidth_bytes_per_s;
}

// A torn-EA fault only bites when the inode actually has an external
// attribute to read.
bool inode_has_ea(const Inode& inode) {
  return !inode.link_ea.empty() || inode.lov_ea.has_value() ||
         inode.filter_fid.has_value();
}

// Reads one in-use inode slot under the fault schedule with bounded
// exponential backoff. Returns true on success, false when the retry
// budget is exhausted (caller quarantines the inode). Propagates
// ServerCrashError from the schedule. Backoff pauses, latency spikes
// and the seek cost of each re-read are charged to `fault_clock`.
bool read_with_retries(ServerFaultSchedule& faults, const RetryPolicy& retry,
                       const DiskModel& disk, std::uint64_t slot, bool has_ea,
                       ScanResult& result, SimClock& fault_clock) {
  double backoff = retry.initial_backoff_seconds;
  for (std::uint32_t attempt = 1; attempt <= retry.max_attempts; ++attempt) {
    faults.on_read();
    ++result.read_attempts;
    const ReadFault fault = faults.probe(slot, attempt);
    fault_clock.advance(fault.extra_latency_seconds);
    const bool faulted = fault.transient_eio || (fault.torn_ea && has_ea);
    if (!faulted) return true;
    if (attempt == retry.max_attempts) break;
    ++result.retries;
    double pause = std::min(backoff, retry.max_backoff_seconds);
    pause *= 1.0 + retry.jitter_fraction * faults.jitter_unit(slot, attempt);
    // The re-read leaves the streaming position: fresh seek + transfer.
    fault_clock.advance(pause + disk.random_read(kSlotBytes));
    backoff *= retry.backoff_multiplier;
  }
  return false;
}

// Collapses a crashed or timed-out scan: the partial graph cannot be
// trusted (and must not leak half a server into aggregation), so only
// the label, the failure reason and the diagnostic counters survive.
void fail_scan(ScanResult& result, std::string error, double sim_seconds) {
  PartialGraph empty;
  empty.server = result.graph.server;
  result.graph = std::move(empty);
  result.status = ScanStatus::kFailed;
  result.error = std::move(error);
  result.sim_seconds = sim_seconds;
  result.inodes_scanned = 0;
  result.directories_visited = 0;
  result.quarantined.clear();
}

}  // namespace

ScanResult scan_mdt(const MdtServer& mdt, const DiskModel& disk,
                    ServerFaultSchedule* faults, const RetryPolicy& retry) {
  WallTimer timer;
  ScanResult result;
  result.graph.server = mdt.image.label();
  // Only MDT0 hosts the aggregator; partial graphs from other metadata
  // servers (DNE) cross the wire like the OSS ones.
  result.local_to_mds = mdt.index == 0;
  MdtAccum acc;

  if (faults == nullptr) {
    mdt.image.for_each_inode(
        [&](const Inode& inode) { visit_mdt_inode(inode, result, acc); });
    result.sim_seconds =
        mdt_sim_seconds(disk, mdt.image.inode_table_bytes(), result, acc);
    result.wall_seconds = timer.seconds();
    return result;
  }

  faults->begin_scan();
  SimClock fault_clock;
  std::uint64_t slots_read = 0;
  try {
    const std::uint64_t slots = mdt.image.inode_slots();
    for (std::uint64_t slot = 0; slot < slots; ++slot) {
      slots_read = slot + 1;
      const Inode* inode = mdt.image.inode_at(slot);
      if (inode == nullptr) continue;
      if (!read_with_retries(*faults, retry, disk, slot, inode_has_ea(*inode),
                             result, fault_clock)) {
        result.quarantined.push_back(inode->lma_fid);
        result.status = ScanStatus::kDegraded;
        continue;
      }
      visit_mdt_inode(*inode, result, acc);
      const double sim_so_far =
          mdt_sim_seconds(disk, slots_read * kSlotBytes, result, acc) +
          fault_clock.now();
      if (sim_so_far > retry.deadline_seconds) {
        fail_scan(result, "scan deadline exceeded", sim_so_far);
        result.wall_seconds = timer.seconds();
        return result;
      }
    }
  } catch (const ServerCrashError& crash) {
    fail_scan(result, crash.what(),
              mdt_sim_seconds(disk, slots_read * kSlotBytes, result, acc) +
                  fault_clock.now());
    result.wall_seconds = timer.seconds();
    return result;
  }

  result.sim_seconds =
      mdt_sim_seconds(disk, mdt.image.inode_table_bytes(), result, acc) +
      fault_clock.now();
  result.wall_seconds = timer.seconds();
  return result;
}

ScanResult scan_ost(const OstServer& ost, const DiskModel& disk,
                    ServerFaultSchedule* faults, const RetryPolicy& retry) {
  WallTimer timer;
  ScanResult result;
  result.graph.server = ost.image.label();

  if (faults == nullptr) {
    ost.image.for_each_inode(
        [&](const Inode& inode) { visit_ost_inode(inode, result); });
    // OST scans are a pure inode-table stream: objects carry no DIRENTs.
    result.sim_seconds = disk.sequential_read(ost.image.inode_table_bytes());
    result.wall_seconds = timer.seconds();
    return result;
  }

  faults->begin_scan();
  SimClock fault_clock;
  std::uint64_t slots_read = 0;
  try {
    const std::uint64_t slots = ost.image.inode_slots();
    for (std::uint64_t slot = 0; slot < slots; ++slot) {
      slots_read = slot + 1;
      const Inode* inode = ost.image.inode_at(slot);
      if (inode == nullptr) continue;
      if (!read_with_retries(*faults, retry, disk, slot, inode_has_ea(*inode),
                             result, fault_clock)) {
        result.quarantined.push_back(inode->lma_fid);
        result.status = ScanStatus::kDegraded;
        continue;
      }
      visit_ost_inode(*inode, result);
      const double sim_so_far =
          disk.sequential_read(slots_read * kSlotBytes) + fault_clock.now();
      if (sim_so_far > retry.deadline_seconds) {
        fail_scan(result, "scan deadline exceeded", sim_so_far);
        result.wall_seconds = timer.seconds();
        return result;
      }
    }
  } catch (const ServerCrashError& crash) {
    fail_scan(result, crash.what(),
              disk.sequential_read(slots_read * kSlotBytes) +
                  fault_clock.now());
    result.wall_seconds = timer.seconds();
    return result;
  }

  result.sim_seconds = disk.sequential_read(ost.image.inode_table_bytes()) +
                       fault_clock.now();
  result.wall_seconds = timer.seconds();
  return result;
}

ClusterScan scan_cluster(const LustreCluster& cluster, ThreadPool* pool,
                         const DiskModel& mdt_disk, const DiskModel& ost_disk,
                         OpFaultSchedule* op_faults, const RetryPolicy& retry) {
  WallTimer timer;
  ClusterScan scan;
  const std::size_t mdt_count = cluster.mdt_count();
  scan.results.resize(mdt_count + cluster.osts().size());

  // Resolve every server's schedule up front, on this thread: the scan
  // tasks then touch only their own ServerFaultSchedule, which is
  // single-writer by construction.
  std::vector<ServerFaultSchedule*> schedules(scan.results.size(), nullptr);
  if (op_faults != nullptr) {
    for (std::size_t m = 0; m < mdt_count; ++m) {
      schedules[m] = &op_faults->server(cluster.mdt_server(m).image.label());
    }
    for (std::size_t i = 0; i < cluster.osts().size(); ++i) {
      schedules[mdt_count + i] =
          &op_faults->server(cluster.osts()[i].image.label());
    }
  }

  if (pool != nullptr && pool->size() > 1) {
    // Own task group: waiting here does not observe unrelated work
    // other submitters may have in flight on a shared pool.
    TaskGroup group(*pool);
    for (std::size_t m = 0; m < mdt_count; ++m) {
      group.submit([&, m] {
        scan.results[m] =
            scan_mdt(cluster.mdt_server(m), mdt_disk, schedules[m], retry);
      });
    }
    for (std::size_t i = 0; i < cluster.osts().size(); ++i) {
      group.submit([&, i, mdt_count] {
        scan.results[mdt_count + i] = scan_ost(
            cluster.osts()[i], ost_disk, schedules[mdt_count + i], retry);
      });
    }
    group.wait();
  } else {
    for (std::size_t m = 0; m < mdt_count; ++m) {
      scan.results[m] =
          scan_mdt(cluster.mdt_server(m), mdt_disk, schedules[m], retry);
    }
    for (std::size_t i = 0; i < cluster.osts().size(); ++i) {
      scan.results[mdt_count + i] =
          scan_ost(cluster.osts()[i], ost_disk, schedules[mdt_count + i], retry);
    }
  }

  for (const auto& result : scan.results) {
    // Each server scans its own disks concurrently; the cluster-level
    // virtual scan time is the slowest server.
    scan.sim_seconds = std::max(scan.sim_seconds, result.sim_seconds);
    scan.inodes_scanned += result.inodes_scanned;
  }
  scan.wall_seconds = timer.seconds();
  return scan;
}

}  // namespace faultyrank
