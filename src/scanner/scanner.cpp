#include "scanner/scanner.h"

#include <algorithm>

#include "common/timer.h"

namespace faultyrank {

ScanResult scan_mdt(const MdtServer& mdt, const DiskModel& disk) {
  WallTimer timer;
  ScanResult result;
  result.graph.server = mdt.image.label();
  // Only MDT0 hosts the aggregator; partial graphs from other metadata
  // servers (DNE) cross the wire like the OSS ones.
  result.local_to_mds = mdt.index == 0;

  std::uint64_t dirent_bytes = 0;
  std::uint64_t external_ea_blocks = 0;
  mdt.image.for_each_inode([&](const Inode& inode) {
    ++result.inodes_scanned;
    // Ext4 keeps ~100-200 B of EA space inline; a wide LOVEA or a
    // multi-entry LinkEA spills to an external xattr block, which costs
    // the scan one extra random read (directories are charged for
    // their data-block excursion separately below).
    if (inode.type != InodeType::kDirectory &&
        (inode.link_ea.size() > 1 ||
         (inode.lov_ea.has_value() && inode.lov_ea->stripes.size() > 2))) {
      ++external_ea_blocks;
    }
    switch (inode.type) {
      case InodeType::kDirectory: {
        result.graph.add_vertex(inode.lma_fid, ObjectKind::kDirectory);
        ++result.directories_visited;
        // Reading DIRENT entries means leaving the inode table for the
        // directory's data blocks — the one random excursion of the
        // scan (paper §IV-A).
        dirent_bytes += std::max<std::uint64_t>(inode.dirent_bytes(), 4096);
        for (const auto& entry : inode.dirents) {
          result.graph.add_edge(inode.lma_fid, entry.fid, EdgeKind::kDirent);
        }
        for (const auto& link : inode.link_ea) {
          result.graph.add_edge(inode.lma_fid, link.parent, EdgeKind::kLinkEa);
        }
        break;
      }
      case InodeType::kRegular: {
        result.graph.add_vertex(inode.lma_fid, ObjectKind::kFile);
        for (const auto& link : inode.link_ea) {
          result.graph.add_edge(inode.lma_fid, link.parent, EdgeKind::kLinkEa);
        }
        if (inode.lov_ea.has_value()) {
          for (const auto& slot : inode.lov_ea->stripes) {
            result.graph.add_edge(inode.lma_fid, slot.stripe,
                                  EdgeKind::kLovEa);
          }
        }
        break;
      }
      case InodeType::kOstObject:
        // An OST object on the MDT would itself be corruption; surface
        // it as a bare vertex so the graph sees an isolated object.
        result.graph.add_vertex(inode.lma_fid, ObjectKind::kStripeObject);
        break;
    }
  });

  result.sim_seconds =
      disk.sequential_read(mdt.image.inode_table_bytes()) +
      disk.random_reads(result.directories_visited, 0) +
      disk.random_reads(external_ea_blocks, 512) +
      static_cast<double>(dirent_bytes) / disk.bandwidth_bytes_per_s;
  result.wall_seconds = timer.seconds();
  return result;
}

ScanResult scan_ost(const OstServer& ost, const DiskModel& disk) {
  WallTimer timer;
  ScanResult result;
  result.graph.server = ost.image.label();

  ost.image.for_each_inode([&](const Inode& inode) {
    ++result.inodes_scanned;
    result.graph.add_vertex(inode.lma_fid, ObjectKind::kStripeObject);
    if (inode.filter_fid.has_value()) {
      result.graph.add_edge(inode.lma_fid, inode.filter_fid->parent,
                            EdgeKind::kObjParent);
    }
  });

  // OST scans are a pure inode-table stream: objects carry no DIRENTs.
  result.sim_seconds = disk.sequential_read(ost.image.inode_table_bytes());
  result.wall_seconds = timer.seconds();
  return result;
}

ClusterScan scan_cluster(const LustreCluster& cluster, ThreadPool* pool,
                         const DiskModel& mdt_disk, const DiskModel& ost_disk) {
  WallTimer timer;
  ClusterScan scan;
  const std::size_t mdt_count = cluster.mdt_count();
  scan.results.resize(mdt_count + cluster.osts().size());

  if (pool != nullptr && pool->size() > 1) {
    // Own task group: waiting here does not observe unrelated work
    // other submitters may have in flight on a shared pool.
    TaskGroup group(*pool);
    for (std::size_t m = 0; m < mdt_count; ++m) {
      group.submit([&, m] {
        scan.results[m] = scan_mdt(cluster.mdt_server(m), mdt_disk);
      });
    }
    for (std::size_t i = 0; i < cluster.osts().size(); ++i) {
      group.submit([&, i, mdt_count] {
        scan.results[mdt_count + i] = scan_ost(cluster.osts()[i], ost_disk);
      });
    }
    group.wait();
  } else {
    for (std::size_t m = 0; m < mdt_count; ++m) {
      scan.results[m] = scan_mdt(cluster.mdt_server(m), mdt_disk);
    }
    for (std::size_t i = 0; i < cluster.osts().size(); ++i) {
      scan.results[mdt_count + i] = scan_ost(cluster.osts()[i], ost_disk);
    }
  }

  for (const auto& result : scan.results) {
    // Each server scans its own disks concurrently; the cluster-level
    // virtual scan time is the slowest server.
    scan.sim_seconds = std::max(scan.sim_seconds, result.sim_seconds);
    scan.inodes_scanned += result.inodes_scanned;
  }
  scan.wall_seconds = timer.seconds();
  return scan;
}

}  // namespace faultyrank
