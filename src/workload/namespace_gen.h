// LANL-like namespace synthesizer (substitution for the USRC "Archive
// and NFS Metadata" trace — see DESIGN.md §1).
//
// Reproduces the aggregate shape the paper's evaluation depends on:
//   * a multi-level directory tree (projects / users / nested dirs),
//   * a log-normal file-size distribution calibrated to the published
//     PFS statistics the paper cites (≈86 % of files < 1 MB, ≈95 %
//     < 2 MB — Carns et al.),
//   * the paper's striping setup: stripe_size 64 KB, stripe_count −1,
//     so any file ≥ 512 KB spreads over all 8 OSTs and a smaller file
//     creates ⌈size / 64 KB⌉ stripe objects.
#pragma once

#include <cstdint>

#include "common/random.h"
#include "pfs/cluster.h"

namespace faultyrank {

struct NamespaceConfig {
  /// Regular files to create. Total MDS inodes ≈ files · (1 + dir_ratio).
  std::uint64_t file_count = 10000;
  /// Directories created per file (the tree grows as files arrive).
  double dir_ratio = 0.12;
  /// Maximum tree depth.
  std::uint32_t max_depth = 10;
  /// Log-normal size parameters (defaults calibrated to 86 % < 1 MB,
  /// 95 % < 2 MB; median ≈ 280 KB).
  double log_size_mu = 12.54;
  double log_size_sigma = 1.22;
  /// Striping applied to every created file (paper evaluation setup).
  StripePolicy stripe{64 * 1024, -1};
  /// Fraction of files that also receive a hard link from another
  /// directory (archive trees deduplicate this way).
  double hardlink_ratio = 0.01;
  std::uint64_t seed = 0x1a171;
};

struct NamespaceStats {
  std::uint64_t files = 0;
  std::uint64_t hard_links = 0;
  std::uint64_t directories = 0;
  std::uint64_t stripe_objects = 0;
  std::uint64_t logical_bytes = 0;
  std::uint64_t files_under_1mb = 0;
  std::uint64_t files_under_2mb = 0;
};

/// Populates `cluster` with a synthetic namespace; returns what was
/// created. Deterministic in (config.seed, prior cluster state).
NamespaceStats populate_namespace(LustreCluster& cluster,
                                  const NamespaceConfig& config);

/// Ages a populated cluster with delete/create churn: `cycles` rounds,
/// each deleting `churn_fraction` of the files and re-creating as many.
/// Fragments the inode tables the way a production file system ages.
struct AgingStats {
  std::uint64_t deleted = 0;
  std::uint64_t created = 0;
};
AgingStats age_cluster(LustreCluster& cluster, const NamespaceConfig& config,
                       std::uint32_t cycles, double churn_fraction);

}  // namespace faultyrank
