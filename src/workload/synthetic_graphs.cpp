#include "workload/synthetic_graphs.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"

namespace faultyrank {

namespace {
constexpr std::uint64_t kAmazonVertices = 403393;
constexpr std::uint64_t kAmazonEdges = 4886816;
constexpr std::uint64_t kRoadNetVertices = 1971281;
constexpr std::uint64_t kRoadNetEdges = 5533214;
}  // namespace

GeneratedGraph make_amazon_like(double scale, std::uint64_t seed) {
  GeneratedGraph graph;
  graph.vertex_count = std::max<std::uint64_t>(
      16, static_cast<std::uint64_t>(std::llround(kAmazonVertices * scale)));
  const std::uint64_t edge_count = std::max<std::uint64_t>(
      graph.vertex_count,
      static_cast<std::uint64_t>(std::llround(kAmazonEdges * scale)));
  graph.edges.reserve(edge_count);

  Rng rng(seed);
  // Copy model: with probability p, the destination copies the
  // destination of an earlier edge (preferential attachment → the
  // heavy-tailed in-degree of co-purchase graphs); otherwise uniform.
  constexpr double kCopyProbability = 0.5;
  for (std::uint64_t i = 0; i < edge_count; ++i) {
    const auto src = static_cast<Gid>(rng.below(graph.vertex_count));
    Gid dst;
    if (!graph.edges.empty() && rng.chance(kCopyProbability)) {
      dst = graph.edges[rng.below(graph.edges.size())].dst;
    } else {
      dst = static_cast<Gid>(rng.below(graph.vertex_count));
    }
    graph.edges.push_back({src, dst, EdgeKind::kGeneric});
  }
  return graph;
}

GeneratedGraph make_roadnet_like(double scale, std::uint64_t seed) {
  GeneratedGraph graph;
  const auto target_vertices = std::max<std::uint64_t>(
      16, static_cast<std::uint64_t>(std::llround(kRoadNetVertices * scale)));
  // Lay the vertices on a near-square lattice.
  const auto width = static_cast<std::uint64_t>(
      std::llround(std::sqrt(static_cast<double>(target_vertices))));
  const std::uint64_t height = (target_vertices + width - 1) / width;
  graph.vertex_count = width * height;
  const std::uint64_t target_edges = static_cast<std::uint64_t>(
      std::llround(kRoadNetEdges * scale));

  // A full lattice has ~2·V undirected adjacencies = 4·V directed
  // edges; thin it to the road-network average degree (~2.8).
  const double keep = std::min(
      1.0, static_cast<double>(target_edges) /
               (4.0 * static_cast<double>(graph.vertex_count)));

  Rng rng(seed);
  graph.edges.reserve(target_edges + graph.vertex_count / 8);
  for (std::uint64_t y = 0; y < height; ++y) {
    for (std::uint64_t x = 0; x < width; ++x) {
      const auto v = static_cast<Gid>(y * width + x);
      if (x + 1 < width && rng.chance(keep)) {
        const auto r = static_cast<Gid>(v + 1);
        graph.edges.push_back({v, r, EdgeKind::kGeneric});
        graph.edges.push_back({r, v, EdgeKind::kGeneric});
      }
      if (y + 1 < height && rng.chance(keep)) {
        const auto below = static_cast<Gid>(v + width);
        graph.edges.push_back({v, below, EdgeKind::kGeneric});
        graph.edges.push_back({below, v, EdgeKind::kGeneric});
      }
    }
  }
  return graph;
}

}  // namespace faultyrank
