// Sustained-operation traffic driver for the cluster-life soak harness.
//
// namespace_gen populates a cluster once; this module keeps it *alive*:
// a fixed crew of simulated users issues a seeded stream of logical
// namespace operations (mkdir / create / hard-link / unlink) through
// the cluster API, so every op lands in the ChangeLog exactly as a
// mounted client's would. Ops that hit corrupted or repaired state may
// fail with ClusterError — the driver counts those as failed (the
// EIO a real application would see) and keeps going, because a soak
// run's whole point is traffic continuing while the checker works.
//
// Determinism: all randomness flows through one Rng seeded from
// TrafficConfig::seed, so a (seed, op-count) pair replays the exact
// same op sequence against the same starting cluster.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "pfs/cluster.h"

namespace faultyrank {

struct TrafficConfig {
  std::uint64_t seed = 0x50a7ULL;
  /// Concurrent simulated users; each owns a home tree under /soak.
  std::size_t users = 8;
  /// Relative op-mix weights (normalized internally).
  double mkdir_weight = 0.08;
  double create_weight = 0.55;
  double link_weight = 0.07;
  double unlink_weight = 0.30;
  /// Virtual seconds charged per issued op (client RPC + MDS service);
  /// sets the sustained ops/sec baseline the checker competes with.
  double per_op_seconds = 2e-3;
  /// Log-normal file-size parameters (same calibration as
  /// NamespaceConfig).
  double log_size_mu = 12.54;
  double log_size_sigma = 1.22;
  /// Striping for created files.
  StripePolicy stripe{64 * 1024, -1};
};

struct TrafficStats {
  std::uint64_t attempted = 0;
  std::uint64_t succeeded = 0;
  /// Ops rejected by the filesystem (ClusterError — the simulated
  /// EIO/ENOENT an application would see against corrupted state).
  std::uint64_t failed = 0;
  std::uint64_t mkdirs = 0;
  std::uint64_t creates = 0;
  std::uint64_t links = 0;
  std::uint64_t unlinks = 0;
  /// Virtual seconds consumed by the stream so far.
  double sim_seconds = 0.0;
};

class TrafficDriver {
 public:
  /// Creates each user's home directory immediately (counted in stats).
  TrafficDriver(LustreCluster& cluster, TrafficConfig config);

  /// Issues `ops` operations round-robin-ish over the users (the acting
  /// user is drawn per op). Returns ops attempted (== `ops`).
  std::size_t step(std::size_t ops);

  [[nodiscard]] const TrafficStats& stats() const noexcept { return stats_; }

 private:
  struct FileEntry {
    Fid parent;
    std::string name;
    Fid fid;
  };
  struct User {
    Fid home;
    std::vector<Fid> dirs;         ///< candidate parents (home included)
    std::vector<FileEntry> files;  ///< live names this user created
    std::uint64_t next_id = 0;     ///< monotonically unique name suffix
  };

  void run_one();
  std::uint64_t sample_size();

  LustreCluster& cluster_;
  TrafficConfig config_;
  Rng rng_;
  std::vector<User> users_;
  TrafficStats stats_;
};

}  // namespace faultyrank
