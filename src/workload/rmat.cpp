#include "workload/rmat.h"

#include <stdexcept>

#include "common/random.h"

namespace faultyrank {

GeneratedGraph generate_rmat(const RmatConfig& config) {
  if (config.scale == 0 || config.scale > 31) {
    throw std::invalid_argument("rmat: scale must be in [1, 31]");
  }
  const double d = 1.0 - config.a - config.b - config.c;
  if (config.a <= 0 || config.b < 0 || config.c < 0 || d < 0) {
    throw std::invalid_argument("rmat: invalid quadrant probabilities");
  }

  GeneratedGraph graph;
  graph.vertex_count = 1ULL << config.scale;
  const std::uint64_t edge_count = graph.vertex_count * config.avg_degree;
  graph.edges.reserve(edge_count);

  Rng rng(config.seed);
  const double ab = config.a + config.b;
  const double abc = ab + config.c;
  for (std::uint64_t i = 0; i < edge_count; ++i) {
    std::uint64_t src = 0;
    std::uint64_t dst = 0;
    for (std::uint32_t level = 0; level < config.scale; ++level) {
      const double roll = rng.uniform();
      src <<= 1;
      dst <<= 1;
      if (roll < config.a) {
        // top-left: no bits set
      } else if (roll < ab) {
        dst |= 1;
      } else if (roll < abc) {
        src |= 1;
      } else {
        src |= 1;
        dst |= 1;
      }
    }
    graph.edges.push_back({static_cast<Gid>(src), static_cast<Gid>(dst),
                           EdgeKind::kGeneric});
  }
  return graph;
}

}  // namespace faultyrank
