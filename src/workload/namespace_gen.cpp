#include "workload/namespace_gen.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

namespace faultyrank {

namespace {

/// Standard-normal sample (Box–Muller).
double sample_normal(Rng& rng) {
  double u1 = rng.uniform();
  if (u1 < 1e-12) u1 = 1e-12;
  const double u2 = rng.uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

std::uint64_t sample_file_size(Rng& rng, const NamespaceConfig& config) {
  const double log_size =
      config.log_size_mu + config.log_size_sigma * sample_normal(rng);
  const double size = std::exp(log_size);
  // Clamp to sane bounds: 1 byte … 1 TB.
  return static_cast<std::uint64_t>(
      std::clamp(size, 1.0, 1024.0 * 1024 * 1024 * 1024));
}

struct DirSlot {
  Fid fid;
  std::uint32_t depth = 0;
};

}  // namespace

NamespaceStats populate_namespace(LustreCluster& cluster,
                                  const NamespaceConfig& config) {
  NamespaceStats stats;
  Rng rng(config.seed);

  std::vector<DirSlot> dirs;
  dirs.push_back({cluster.root(), 0});

  // Unique-name counters survive across calls by keying on current
  // inode usage, so repeated population rounds never collide.
  std::uint64_t name_salt = cluster.mdt_inodes_used();

  double dir_budget = 1.0;  // create dirs ahead of the first files
  for (std::uint64_t i = 0; i < config.file_count; ++i) {
    dir_budget += config.dir_ratio;
    while (dir_budget >= 1.0) {
      dir_budget -= 1.0;
      // Attach the new directory to a random existing one (biased to
      // recent dirs → depth grows like real project trees).
      const std::size_t base =
          dirs.size() > 8 && rng.chance(0.7) ? dirs.size() / 2 : 0;
      const DirSlot parent =
          dirs[base + rng.below(dirs.size() - base)];
      if (parent.depth + 1 >= config.max_depth) continue;
      const std::string name = "d" + std::to_string(name_salt++);
      const Fid fid = cluster.mkdir(parent.fid, name);
      dirs.push_back({fid, parent.depth + 1});
      ++stats.directories;
    }

    const DirSlot& parent = dirs[rng.below(dirs.size())];
    const std::uint64_t size = sample_file_size(rng, config);
    const std::string name = "f" + std::to_string(name_salt++);
    const Fid fid =
        cluster.create_file(parent.fid, name, size, config.stripe);
    ++stats.files;
    stats.logical_bytes += size;
    if (size < (1u << 20)) ++stats.files_under_1mb;
    if (size < (2u << 20)) ++stats.files_under_2mb;
    const Inode* inode = cluster.stat(fid);
    stats.stripe_objects += inode->lov_ea->stripes.size();

    if (rng.chance(config.hardlink_ratio)) {
      const DirSlot& link_dir = dirs[rng.below(dirs.size())];
      try {
        cluster.link(fid, link_dir.fid, "l" + std::to_string(name_salt++));
        ++stats.hard_links;
      } catch (const ClusterError&) {
        // name collision with an earlier round — skip
      }
    }
  }
  return stats;
}

AgingStats age_cluster(LustreCluster& cluster, const NamespaceConfig& config,
                       std::uint32_t cycles, double churn_fraction) {
  AgingStats stats;
  Rng rng(config.seed ^ 0xa9e5ULL);

  for (std::uint32_t cycle = 0; cycle < cycles; ++cycle) {
    // Enumerate live files with their (parent, name) link.
    struct Victim {
      Fid parent;
      std::string name;
    };
    std::vector<Victim> files;
    std::vector<Fid> dirs;
    for (std::size_t m = 0; m < cluster.mdt_count(); ++m) {
      cluster.mdt_server(m).image.for_each_inode([&](const Inode& inode) {
        if (inode.type == InodeType::kRegular && !inode.link_ea.empty()) {
          files.push_back({inode.link_ea.front().parent,
                           inode.link_ea.front().name});
        } else if (inode.type == InodeType::kDirectory) {
          dirs.push_back(inode.lma_fid);
        }
      });
    }
    if (files.empty() || dirs.empty()) break;

    const auto to_delete = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(files.size()) * churn_fraction));
    for (std::uint64_t k = 0; k < to_delete; ++k) {
      const std::size_t pick = rng.below(files.size());
      cluster.unlink(files[pick].parent, files[pick].name);
      files[pick] = files.back();
      files.pop_back();
      ++stats.deleted;
    }
    for (std::uint64_t k = 0; k < to_delete; ++k) {
      const Fid parent = dirs[rng.below(dirs.size())];
      const std::string name =
          "a" + std::to_string(cycle) + "_" + std::to_string(k);
      try {
        cluster.create_file(parent, name,
                            sample_file_size(rng, config), config.stripe);
        ++stats.created;
      } catch (const ClusterError&) {
        // Name collision with a survivor of a previous cycle: skip.
      }
    }
  }
  return stats;
}

}  // namespace faultyrank
