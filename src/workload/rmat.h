// R-MAT graph generator (Chakrabarti et al.), configured like the
// paper: a=0.57, b=0.19, c=0.19 (Graph500 parameters), scale S giving
// 2^S vertices, and a chosen average degree (Tables III–V use 8 and a
// 4…32 sweep).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.h"

namespace faultyrank {

struct RmatConfig {
  std::uint32_t scale = 16;        ///< 2^scale vertices
  std::uint32_t avg_degree = 8;    ///< edges = vertices * avg_degree
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;                 ///< d = 1 - a - b - c
  std::uint64_t seed = 0x524d4154; ///< "RMAT"
};

struct GeneratedGraph {
  std::uint64_t vertex_count = 0;
  std::vector<GidEdge> edges;
};

[[nodiscard]] GeneratedGraph generate_rmat(const RmatConfig& config);

}  // namespace faultyrank
