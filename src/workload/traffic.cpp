#include "workload/traffic.h"

#include <algorithm>
#include <cmath>

namespace faultyrank {

namespace {

/// Standard-normal sample (Box–Muller), same idiom as namespace_gen.
double sample_normal(Rng& rng) {
  double u1 = rng.uniform();
  if (u1 < 1e-12) u1 = 1e-12;
  const double u2 = rng.uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

}  // namespace

TrafficDriver::TrafficDriver(LustreCluster& cluster, TrafficConfig config)
    : cluster_(cluster), config_(config), rng_(config.seed) {
  users_.resize(config_.users);
  for (std::size_t u = 0; u < users_.size(); ++u) {
    User& user = users_[u];
    user.home = cluster_.mkdir_p("/soak/u" + std::to_string(u));
    user.dirs.push_back(user.home);
    stats_.attempted += 1;
    stats_.succeeded += 1;
    stats_.mkdirs += 1;
    stats_.sim_seconds += config_.per_op_seconds;
  }
}

std::uint64_t TrafficDriver::sample_size() {
  const double log_size =
      config_.log_size_mu + config_.log_size_sigma * sample_normal(rng_);
  const double size = std::exp(log_size);
  return static_cast<std::uint64_t>(
      std::clamp(size, 1.0, 1024.0 * 1024 * 1024 * 1024));
}

void TrafficDriver::run_one() {
  User& user = users_[rng_.below(users_.size())];
  const double total = config_.mkdir_weight + config_.create_weight +
                       config_.link_weight + config_.unlink_weight;
  double draw = rng_.uniform() * total;
  stats_.attempted += 1;
  stats_.sim_seconds += config_.per_op_seconds;
  try {
    if ((draw -= config_.mkdir_weight) < 0) {
      const Fid parent = user.dirs[rng_.below(user.dirs.size())];
      const Fid dir =
          cluster_.mkdir(parent, "d" + std::to_string(user.next_id++));
      user.dirs.push_back(dir);
      stats_.mkdirs += 1;
    } else if ((draw -= config_.create_weight) < 0) {
      const Fid parent = user.dirs[rng_.below(user.dirs.size())];
      const std::string name = "f" + std::to_string(user.next_id++);
      const Fid fid =
          cluster_.create_file(parent, name, sample_size(), config_.stripe);
      user.files.push_back({parent, name, fid});
      stats_.creates += 1;
    } else if ((draw -= config_.link_weight) < 0) {
      if (user.files.empty()) {
        stats_.failed += 1;  // nothing to link yet — counts as a miss
        return;
      }
      const FileEntry& target = user.files[rng_.below(user.files.size())];
      const Fid parent = user.dirs[rng_.below(user.dirs.size())];
      const std::string name = "l" + std::to_string(user.next_id++);
      cluster_.link(target.fid, parent, name);
      user.files.push_back({parent, name, target.fid});
      stats_.links += 1;
    } else {
      if (user.files.empty()) {
        stats_.failed += 1;
        return;
      }
      const std::size_t pick = rng_.below(user.files.size());
      const FileEntry entry = user.files[pick];
      user.files.erase(user.files.begin() +
                       static_cast<std::ptrdiff_t>(pick));
      cluster_.unlink(entry.parent, entry.name);
      stats_.unlinks += 1;
    }
    stats_.succeeded += 1;
  } catch (const ClusterError&) {
    // Corrupted / repaired state under this path: the app sees EIO and
    // moves on. The name bookkeeping above may now be stale for this
    // entry; later ops on it fail the same harmless way.
    stats_.failed += 1;
  }
}

std::size_t TrafficDriver::step(std::size_t ops) {
  for (std::size_t i = 0; i < ops; ++i) run_one();
  return ops;
}

}  // namespace faultyrank
