// Synthetic stand-ins for the two SNAP datasets of Table III
// (offline substitution — see DESIGN.md §1):
//
//   Amazon   403 393 v / 4 886 816 e — heavy-tailed co-purchase graph,
//            approximated with a preferential-attachment copy model.
//   Road-Net 1 971 281 v / 5 533 214 e — near-planar low-degree mesh,
//            approximated with a randomly-thinned 2-D lattice.
//
// `scale` shrinks both proportionally (scale=1 reproduces the paper's
// sizes; benches default lower to fit the container).
#pragma once

#include <cstdint>

#include "workload/rmat.h"

namespace faultyrank {

[[nodiscard]] GeneratedGraph make_amazon_like(double scale = 1.0,
                                              std::uint64_t seed = 0xa9a901);

[[nodiscard]] GeneratedGraph make_roadnet_like(double scale = 1.0,
                                               std::uint64_t seed = 0x70ad);

}  // namespace faultyrank
