// Structured EA/DIRENT corruption fuzzer (ROADMAP item 4).
//
// Where the FaultInjector builds the paper's eight curated
// inconsistencies, the fuzzer *generates* them: deterministic seeded
// mutations of the serialized metadata web — bit-flips in reference
// and identity FIDs, truncations of DIRENT/LinkEA/LOVEA arrays, FIDs
// duplicated across DNE shards, and DIRENT records cloned between
// directories. Every mutation reports the FID set it disturbed so a
// campaign can score checker findings for false positives exactly as
// bench/fault_campaign does: a verifiable finding must involve a
// touched FID.
//
// Candidate selection walks servers in index order and inode tables in
// block-group order, so the same (cluster, seed) always produces the
// same mutation sequence — fuzzed images are bit-reproducible.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/random.h"
#include "pfs/cluster.h"

namespace faultyrank {

enum class FuzzKind : std::uint8_t {
  kReferenceBitFlip = 0,  ///< flip a bit in a DIRENT/LinkEA/LOVEA/filter_fid reference
  kIdentityBitFlip = 1,   ///< flip a bit in an inode's LMA fid (OI follows)
  kTruncateDirents = 2,   ///< drop a suffix of a directory's entries
  kTruncateLinkEa = 3,    ///< drop a suffix of an object's LinkEA records
  kTruncateLovEa = 4,     ///< drop a suffix of a file's stripe slots
  kDuplicateFid = 5,      ///< clone one object's fid onto another shard's object
  kDuplicateDirent = 6,   ///< clone a DIRENT record into another directory
};

inline constexpr FuzzKind kAllFuzzKinds[] = {
    FuzzKind::kReferenceBitFlip, FuzzKind::kIdentityBitFlip,
    FuzzKind::kTruncateDirents,  FuzzKind::kTruncateLinkEa,
    FuzzKind::kTruncateLovEa,    FuzzKind::kDuplicateFid,
    FuzzKind::kDuplicateDirent,
};

[[nodiscard]] const char* to_string(FuzzKind kind) noexcept;

/// One applied mutation: what happened and which FIDs it disturbed
/// (victims, destroyed references, duplicated identities). Any finding
/// that involves none of them is a false positive.
struct FuzzRecord {
  FuzzKind kind = FuzzKind::kReferenceBitFlip;
  std::string description;
  std::vector<Fid> touched;
};

class MetaFuzzer {
 public:
  MetaFuzzer(LustreCluster& cluster, std::uint64_t seed)
      : cluster_(cluster), rng_(seed) {}

  /// Applies one mutation of `kind`; nullopt when the cluster holds no
  /// eligible victim (e.g. kDuplicateFid on a single-shard cluster
  /// with one OST).
  std::optional<FuzzRecord> mutate(FuzzKind kind);

  /// Applies `count` mutations cycling through every kind, skipping
  /// infeasible ones. Returns the records actually applied.
  std::vector<FuzzRecord> campaign(std::size_t count);

 private:
  LustreCluster& cluster_;
  Rng rng_;
};

}  // namespace faultyrank
