// Operational (environmental) fault injection.
//
// The injector in injector.h corrupts *metadata* — it plants the
// inconsistencies FaultyRank exists to find. This module injects
// *operational* faults instead: the reads themselves misbehave while
// the metadata underneath is fine. Four shapes, all seeded and
// deterministic per (server, inode slot, attempt):
//
//   - transient EIO: an inode-table read fails, succeeds on retry
//   - torn EA read: an external xattr block comes back truncated;
//     retryable like EIO, but only fires on inodes that carry EAs
//   - latency spike: the read succeeds but takes an extra fixed delay
//   - server crash: after N inode reads the server goes down hard and
//     stays down — every later read throws ServerCrashError
//
// Determinism contract: probe(slot, attempt) is a pure function of
// (seed, server label, slot, attempt). Rescanning a server replays the
// exact same fault sequence, which is what makes checkpoint/resume
// bit-reproducible. The only latched state is the crash: a server that
// died stays dead across rescans until the schedule is destroyed.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>

#include "common/mutex.h"

namespace faultyrank {

/// Thrown by ServerFaultSchedule::on_read when the server's crash point
/// is reached (and on every read after — the crash latches).
class ServerCrashError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One read's fault decision.
struct ReadFault {
  bool transient_eio = false;        ///< read failed; retry may succeed
  bool torn_ea = false;              ///< EA block truncated (EA inodes only)
  double extra_latency_seconds = 0;  ///< latency spike on this attempt
};

/// Campaign-level knobs. Rates are per-inode probabilities; a faulted
/// inode fails its first 1..max_fault_attempts attempts and then reads
/// clean, so any retry budget > max_fault_attempts always converges.
struct OpFaultConfig {
  std::uint64_t seed = 1;
  double transient_eio_rate = 0.0;
  double torn_ea_rate = 0.0;
  double latency_spike_rate = 0.0;
  double latency_spike_seconds = 50e-3;
  std::uint32_t max_fault_attempts = 2;
  /// label → crash after this many in-use inode reads. Servers absent
  /// from the map never crash.
  std::map<std::string, std::uint64_t> crash_after_reads;
};

/// Per-server fault stream. Not thread-safe across calls — exactly one
/// scan task drives a given server's schedule at a time (the pipeline
/// resolves schedules on the submitting thread; see OpFaultSchedule).
class ServerFaultSchedule {
 public:
  ServerFaultSchedule(const OpFaultConfig& config, std::string label);

  /// Resets the read counter for a fresh scan of this server. Does NOT
  /// clear the crash latch: a dead server stays dead when rescanned.
  void begin_scan() noexcept { reads_ = 0; }

  /// Models the operator bringing a crashed server back: clears the
  /// crash latch AND consumes the crash point, so the revived server
  /// scans clean until a new schedule arms another crash. Transient
  /// EIO/torn-EA/latency streams are untouched (they are pure in
  /// (seed, label, slot, attempt) and keep replaying identically).
  void revive() noexcept {
    down_ = false;
    crash_after_ = 0;
    reads_ = 0;
  }

  /// Accounts one physical read of an in-use inode. Throws
  /// ServerCrashError at the crash point and forever after.
  void on_read();

  /// Fault decision for reading inode-table slot `slot` on attempt
  /// `attempt` (1-based). Pure function of (seed, label, slot, attempt).
  [[nodiscard]] ReadFault probe(std::uint64_t slot,
                                std::uint32_t attempt) const;

  /// Deterministic uniform in [0, 1) for backoff jitter, again pure in
  /// (seed, label, slot, attempt) — retries cost the same virtual time
  /// on every replay.
  [[nodiscard]] double jitter_unit(std::uint64_t slot,
                                   std::uint32_t attempt) const;

  [[nodiscard]] bool down() const noexcept { return down_; }
  [[nodiscard]] const std::string& label() const noexcept { return label_; }

 private:
  const OpFaultConfig* config_;
  std::string label_;
  std::uint64_t base_;             ///< hash of (seed, label)
  std::uint64_t crash_after_ = 0;  ///< 0 = never crashes
  std::uint64_t reads_ = 0;
  bool down_ = false;
};

/// Cluster-wide schedule: hands out one ServerFaultSchedule per server
/// label, created lazily. server() is mutex-guarded so the pipeline may
/// resolve schedules from any thread; the returned reference stays
/// valid for the schedule's lifetime (node-stable map).
class OpFaultSchedule {
 public:
  explicit OpFaultSchedule(OpFaultConfig config) : config_(std::move(config)) {}

  [[nodiscard]] ServerFaultSchedule& server(const std::string& label);
  [[nodiscard]] const OpFaultConfig& config() const noexcept {
    return config_;
  }

 private:
  OpFaultConfig config_;
  Mutex mutex_{"OpFaultSchedule::mutex_"};
  std::map<std::string, std::unique_ptr<ServerFaultSchedule>> servers_
      FR_GUARDED_BY(mutex_);
};

}  // namespace faultyrank
