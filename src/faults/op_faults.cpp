#include "faults/op_faults.h"

#include "common/random.h"

namespace faultyrank {

namespace {

// Distinct streams per decision kind so adding one never perturbs the
// others (a latency-rate change must not move the EIO schedule).
constexpr std::uint64_t kSlotStream = 0x736c6f74ULL;     // "slot"
constexpr std::uint64_t kAttemptStream = 0x61747470ULL;  // "attp"
constexpr std::uint64_t kJitterStream = 0x6a697474ULL;   // "jitt"

std::uint64_t hash_label(std::uint64_t seed, const std::string& label) {
  std::uint64_t state = seed;
  std::uint64_t h = splitmix64(state);
  for (const char c : label) {
    state ^= static_cast<unsigned char>(c);
    h ^= splitmix64(state);
  }
  return h;
}

std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t state = a ^ (b * 0x9e3779b97f4a7c15ULL);
  return splitmix64(state);
}

}  // namespace

ServerFaultSchedule::ServerFaultSchedule(const OpFaultConfig& config,
                                         std::string label)
    : config_(&config),
      label_(std::move(label)),
      base_(hash_label(config.seed, label_)) {
  const auto it = config.crash_after_reads.find(label_);
  if (it != config.crash_after_reads.end()) crash_after_ = it->second;
}

void ServerFaultSchedule::on_read() {
  if (down_) {
    throw ServerCrashError(label_ + ": server is down");
  }
  ++reads_;
  if (crash_after_ != 0 && reads_ > crash_after_) {
    down_ = true;
    throw ServerCrashError(label_ + ": crashed after " +
                           std::to_string(crash_after_) + " reads");
  }
}

ReadFault ServerFaultSchedule::probe(std::uint64_t slot,
                                     std::uint32_t attempt) const {
  ReadFault fault;
  // Per-slot stream: decides whether this inode's read is faulted at
  // all and for how many attempts. A faulted inode clears after
  // 1..max_fault_attempts failures, so bounded retries always converge.
  Rng rng(mix(base_ ^ kSlotStream, slot));
  const std::uint32_t budget =
      config_->max_fault_attempts == 0 ? 1 : config_->max_fault_attempts;
  if (config_->transient_eio_rate > 0.0 &&
      rng.chance(config_->transient_eio_rate)) {
    const std::uint32_t fail_attempts =
        1 + static_cast<std::uint32_t>(rng.below(budget));
    fault.transient_eio = attempt <= fail_attempts;
  }
  if (config_->torn_ea_rate > 0.0 && rng.chance(config_->torn_ea_rate)) {
    const std::uint32_t fail_attempts =
        1 + static_cast<std::uint32_t>(rng.below(budget));
    fault.torn_ea = attempt <= fail_attempts;
  }
  // Per-attempt stream: latency spikes hit individual reads, retries
  // included.
  if (config_->latency_spike_rate > 0.0) {
    Rng attempt_rng(mix(mix(base_ ^ kAttemptStream, slot), attempt));
    if (attempt_rng.chance(config_->latency_spike_rate)) {
      fault.extra_latency_seconds = config_->latency_spike_seconds;
    }
  }
  return fault;
}

double ServerFaultSchedule::jitter_unit(std::uint64_t slot,
                                        std::uint32_t attempt) const {
  Rng rng(mix(mix(base_ ^ kJitterStream, slot), attempt));
  return rng.uniform();
}

ServerFaultSchedule& OpFaultSchedule::server(const std::string& label) {
  const MutexLock lock(mutex_);
  auto& slot = servers_[label];
  if (!slot) {
    slot = std::make_unique<ServerFaultSchedule>(config_, label);
  }
  return *slot;
}

}  // namespace faultyrank
