#include "faults/injector.h"

#include <algorithm>

namespace faultyrank {

const char* to_string(Scenario scenario) noexcept {
  switch (scenario) {
    case Scenario::kDanglingSourceProperty:
      return "dangling/source-property";
    case Scenario::kDanglingTargetId:
      return "dangling/target-id";
    case Scenario::kUnreferencedNeighborProps:
      return "unreferenced/neighbor-properties";
    case Scenario::kUnreferencedTargetId:
      return "unreferenced/target-id";
    case Scenario::kDoubleRefDuplicateProperty:
      return "double-ref/duplicate-property";
    case Scenario::kDoubleRefDuplicateId:
      return "double-ref/duplicate-id";
    case Scenario::kMismatchTargetProperty:
      return "mismatch/target-property";
    case Scenario::kMismatchSourceId:
      return "mismatch/source-id";
  }
  return "?";
}

InconsistencyCategory category_of(Scenario scenario) noexcept {
  switch (scenario) {
    case Scenario::kDanglingSourceProperty:
    case Scenario::kDanglingTargetId:
      return InconsistencyCategory::kDanglingReference;
    case Scenario::kUnreferencedNeighborProps:
    case Scenario::kUnreferencedTargetId:
      return InconsistencyCategory::kUnreferencedObject;
    case Scenario::kDoubleRefDuplicateProperty:
    case Scenario::kDoubleRefDuplicateId:
      return InconsistencyCategory::kDoubleReference;
    case Scenario::kMismatchTargetProperty:
    case Scenario::kMismatchSourceId:
      return InconsistencyCategory::kMismatch;
  }
  return InconsistencyCategory::kMismatch;
}

namespace {

/// True if `fid` sits under the administrative .lustre subtree (we
/// never victimize lost+found plumbing), walking LinkEA parents.
bool under_special_tree(const LustreCluster& cluster, Fid fid) {
  for (int depth = 0; depth < 64; ++depth) {
    const Inode* inode = cluster.find_mdt_inode(fid);
    if (inode == nullptr || inode->link_ea.empty()) return false;
    if (inode->link_ea.front().name == ".lustre") return true;
    fid = inode->link_ea.front().parent;
    if (fid == cluster.root()) return false;
  }
  return true;  // pathological depth: treat as special, skip it
}

/// Finds the OST image + inode of a stripe object.
std::pair<LdiskfsImage*, Inode*> find_object(LustreCluster& cluster,
                                             const LovEaEntry& slot) {
  if (slot.ost_index >= cluster.osts().size()) return {nullptr, nullptr};
  LdiskfsImage& image = cluster.ost(slot.ost_index).image;
  return {&image, image.find_by_fid(slot.stripe)};
}

}  // namespace

Fid FaultInjector::make_bogus_fid() {
  // A sequence no server owns, so the fid can never resolve.
  return Fid{0xdeadbeefULL, ++bogus_counter_, 0};
}

bool FaultInjector::is_used(const Fid& fid) const {
  return std::find(used_.begin(), used_.end(), fid) != used_.end();
}

std::vector<Fid> FaultInjector::candidate_files(std::size_t min_stripes) {
  std::vector<Fid> out;
  for (std::size_t m = 0; m < cluster_.mdt_count(); ++m) {
  cluster_.mdt_server(m).image.for_each_inode([&](const Inode& inode) {
    if (inode.type != InodeType::kRegular) return;
    if (!inode.lov_ea.has_value() ||
        inode.lov_ea->stripes.size() < min_stripes) {
      return;
    }
    if (is_used(inode.lma_fid)) return;
    if (inode.link_ea.empty()) return;
    if (under_special_tree(cluster_, inode.lma_fid)) return;
    out.push_back(inode.lma_fid);
  });
  }
  return out;
}

std::vector<Fid> FaultInjector::candidate_dirs(std::size_t min_children) {
  std::vector<Fid> out;
  for (std::size_t m = 0; m < cluster_.mdt_count(); ++m) {
  cluster_.mdt_server(m).image.for_each_inode([&](const Inode& inode) {
    if (inode.type != InodeType::kDirectory) return;
    if (inode.lma_fid == cluster_.root()) return;
    if (inode.dirents.size() < min_children) return;
    if (is_used(inode.lma_fid)) return;
    if (inode.link_ea.empty()) return;
    if (inode.link_ea.front().name == ".lustre" ||
        under_special_tree(cluster_, inode.lma_fid)) {
      return;
    }
    out.push_back(inode.lma_fid);
  });
  }
  return out;
}

Fid FaultInjector::pick(std::vector<Fid> candidates, const char* what) {
  if (candidates.empty()) {
    throw InjectionError(std::string("no eligible victim: ") + what);
  }
  return candidates[rng_.below(candidates.size())];
}

void FaultInjector::corrupt_id(LdiskfsImage& image, Inode& inode,
                               const Fid& to) {
  image.oi_erase(inode.lma_fid);
  inode.lma_fid = to;
  if (!to.is_null() && image.find_by_fid(to) == nullptr) {
    image.oi_insert(to, inode.ino);
  }
}

GroundTruth FaultInjector::inject(Scenario scenario) {
  GroundTruth truth;
  truth.scenario = scenario;

  switch (scenario) {
    case Scenario::kDanglingSourceProperty: {
      // Corrupt every LOVEA slot of one file: the property is garbage,
      // all its references dangle, the real stripes are stranded.
      const Fid file_fid = pick(candidate_files(2), "file with >=2 stripes");
      Inode* file = cluster_.find_mdt_inode(file_fid);
      truth.victim = truth.current = file_fid;
      truth.id_field = false;
      truth.original_value = file->lov_ea->stripes.front().stripe;
      truth.victim_size = file->size_bytes;
      for (auto& slot : file->lov_ea->stripes) {
        slot.stripe = make_bogus_fid();
      }
      truth.description = "file LOVEA slots overwritten with bogus ids";
      break;
    }
    case Scenario::kDanglingTargetId: {
      // Corrupt one stripe object's id: the file's LOVEA slot dangles
      // and the object becomes a mis-identified orphan.
      const Fid file_fid = pick(candidate_files(2), "file with >=2 stripes");
      Inode* file = cluster_.find_mdt_inode(file_fid);
      const LovEaEntry slot = file->lov_ea->stripes.front();
      auto [image, object] = find_object(cluster_, slot);
      if (object == nullptr) {
        throw InjectionError("stripe object missing before injection");
      }
      truth.victim = object->lma_fid;
      truth.current = make_bogus_fid();
      truth.id_field = true;
      truth.original_value = truth.victim;
      truth.victim_size = object->size_bytes;
      corrupt_id(*image, *object, truth.current);
      truth.description = "OST object id corrupted";
      break;
    }
    case Scenario::kUnreferencedNeighborProps: {
      // Wipe a directory's DIRENT entries: every child is unreferenced
      // while the children's metadata is untouched.
      const Fid dir_fid = pick(candidate_dirs(2), "dir with >=2 children");
      Inode* dir = cluster_.find_mdt_inode(dir_fid);
      truth.victim = truth.current = dir_fid;
      truth.id_field = false;
      truth.original_value = dir->dirents.front().fid;
      dir->dirents.clear();
      truth.description = "directory DIRENT entries wiped";
      break;
    }
    case Scenario::kUnreferencedTargetId: {
      // Corrupt a directory's own id: nothing can refer to it any more.
      const Fid dir_fid = pick(candidate_dirs(1), "dir with >=1 child");
      Inode* dir = cluster_.find_mdt_inode(dir_fid);
      truth.victim = dir_fid;
      truth.current = make_bogus_fid();
      truth.id_field = true;
      truth.original_value = dir_fid;
      corrupt_id(cluster_.mdt_for(dir_fid)->image, *dir, truth.current);
      truth.description = "directory id corrupted";
      break;
    }
    case Scenario::kDoubleRefDuplicateProperty: {
      // a's LOVEA slot duplicates c's: both files claim c's stripe;
      // a's own stripe is stranded.
      auto files = candidate_files(1);
      if (files.size() < 2) {
        throw InjectionError("need two files with stripes");
      }
      const std::size_t ai = rng_.below(files.size());
      std::size_t ci = rng_.below(files.size() - 1);
      if (ci >= ai) ++ci;
      Inode* a = cluster_.find_mdt_inode(files[ai]);
      const Inode* c = cluster_.find_mdt_inode(files[ci]);
      truth.victim = truth.current = files[ai];
      truth.id_field = false;
      truth.original_value = a->lov_ea->stripes.front().stripe;
      truth.victim_size = a->size_bytes;
      a->lov_ea->stripes.front() = c->lov_ea->stripes.front();
      mark_used(files[ci]);
      truth.description = "file LOVEA slot duplicated from another file";
      break;
    }
    case Scenario::kDoubleRefDuplicateId: {
      // b's id duplicates c's: two physical objects share one fid while
      // b's owner still references the vanished id.
      auto files = candidate_files(1);
      if (files.size() < 2) {
        throw InjectionError("need two files with stripes");
      }
      const std::size_t bi = rng_.below(files.size());
      std::size_t ci = rng_.below(files.size() - 1);
      if (ci >= bi) ++ci;
      const Inode* owner_b = cluster_.find_mdt_inode(files[bi]);
      const Inode* owner_c = cluster_.find_mdt_inode(files[ci]);
      const LovEaEntry slot_b = owner_b->lov_ea->stripes.front();
      const LovEaEntry slot_c = owner_c->lov_ea->stripes.front();
      auto [image_b, object_b] = find_object(cluster_, slot_b);
      if (object_b == nullptr) {
        throw InjectionError("stripe object missing before injection");
      }
      truth.victim = object_b->lma_fid;
      truth.current = slot_c.stripe;
      truth.id_field = true;
      truth.original_value = truth.victim;
      truth.victim_size = object_b->size_bytes;
      // Take the duplicate id; never steal c's OI slot.
      image_b->oi_erase(object_b->lma_fid);
      object_b->lma_fid = slot_c.stripe;
      mark_used(files[ci]);
      mark_used(slot_c.stripe);
      truth.description = "OST object id duplicated from another object";
      break;
    }
    case Scenario::kMismatchTargetProperty: {
      // Corrupt a stripe object's point-back: the file still claims it
      // but the object answers to a bogus owner.
      const Fid file_fid = pick(candidate_files(1), "file with >=1 stripe");
      const Inode* file = cluster_.find_mdt_inode(file_fid);
      const LovEaEntry slot = file->lov_ea->stripes.front();
      auto [image, object] = find_object(cluster_, slot);
      if (object == nullptr) {
        throw InjectionError("stripe object missing before injection");
      }
      truth.victim = truth.current = object->lma_fid;
      truth.id_field = false;
      truth.original_value = file_fid;
      truth.victim_size = object->size_bytes;
      object->filter_fid = FilterFid{make_bogus_fid(), 0};
      truth.description = "OST object filter_fid corrupted";
      break;
    }
    case Scenario::kMismatchSourceId: {
      // Corrupt a file's own id: its stripes and its parent still point
      // at the old id.
      const Fid file_fid = pick(candidate_files(2), "file with >=2 stripes");
      Inode* file = cluster_.find_mdt_inode(file_fid);
      truth.victim = file_fid;
      truth.current = make_bogus_fid();
      truth.id_field = true;
      truth.original_value = file_fid;
      truth.victim_size = file->size_bytes;
      corrupt_id(cluster_.mdt_for(file_fid)->image, *file, truth.current);
      truth.description = "file id corrupted";
      break;
    }
  }

  mark_used(truth.victim);
  mark_used(truth.current);
  return truth;
}

GroundTruth FaultInjector::inject_namespace_cycle() {
  // Find a (B, A) pair: directory B outside the special trees with a
  // child directory A.
  std::vector<std::pair<Fid, Fid>> candidates;
  for (std::size_t m = 0; m < cluster_.mdt_count(); ++m) {
    cluster_.mdt_server(m).image.for_each_inode([&](const Inode& inode) {
      if (inode.type != InodeType::kDirectory) return;
      if (inode.lma_fid == cluster_.root()) return;
      if (is_used(inode.lma_fid) || inode.link_ea.empty()) return;
      if (inode.link_ea.front().name == ".lustre" ||
          under_special_tree(cluster_, inode.lma_fid)) {
        return;
      }
      for (const DirentEntry& entry : inode.dirents) {
        const Inode* child = cluster_.find_mdt_inode(entry.fid);
        if (child != nullptr && child->type == InodeType::kDirectory &&
            !is_used(entry.fid)) {
          candidates.emplace_back(inode.lma_fid, entry.fid);
          return;
        }
      }
    });
  }
  if (candidates.empty()) {
    throw InjectionError("no eligible victim: dir with a child directory");
  }
  const auto [b_fid, a_fid] = candidates[rng_.below(candidates.size())];

  Inode* b = cluster_.find_mdt_inode(b_fid);
  const Fid original_parent = b->link_ea.front().parent;
  const std::string b_name = b->link_ea.front().name;

  // Detach B from its real parent...
  Inode* parent = cluster_.find_mdt_inode(original_parent);
  if (parent != nullptr) {
    std::erase_if(parent->dirents,
                  [&](const DirentEntry& e) { return e.fid == b_fid; });
  }
  // ...and close the loop: B claims its own child A as its parent, and
  // A gains a dirent naming B. Every edge in the cycle now pairs.
  b = cluster_.find_mdt_inode(b_fid);
  b->link_ea = {{a_fid, b_name}};
  Inode* a = cluster_.find_mdt_inode(a_fid);
  a->dirents.push_back({b_name, b_fid, b->ino});

  GroundTruth truth;
  // Reuses the dangling/source-property slot: the cycle is a
  // beyond-the-eight extension and is scored by reachability, not by
  // the per-field evaluator.
  truth.scenario = Scenario::kDanglingSourceProperty;
  truth.victim = truth.current = b_fid;
  truth.id_field = false;
  truth.original_value = original_parent;
  truth.description =
      "directory detached from its parent and closed into a paired cycle "
      "with its child";
  mark_used(b_fid);
  mark_used(a_fid);
  return truth;
}

std::vector<GroundTruth> FaultInjector::inject_campaign(std::size_t count) {
  std::vector<GroundTruth> truths;
  truths.reserve(count);
  const std::span<const Scenario> scenarios = scenario_list();
  for (std::size_t i = 0; i < count; ++i) {
    // Round-robin through scenarios with random victims so campaigns
    // cover every category even at small counts.
    const Scenario scenario = scenarios[i % scenarios.size()];
    truths.push_back(inject(scenario));
  }
  return truths;
}

EvalOutcome evaluate_report(const DetectionReport& report,
                            const GroundTruth& truth) {
  EvalOutcome outcome;
  const auto involves = [&](const Finding& f, const Fid& fid) {
    return f.source == fid || f.target == fid || f.convicted_object == fid ||
           f.repair.target == fid || f.repair.value == fid ||
           f.repair.stale == fid;
  };
  const Fid convict_as = truth.id_field ? truth.current : truth.victim;
  for (const Finding& f : report.findings) {
    if (involves(f, truth.victim) || involves(f, truth.current)) {
      outcome.detected = true;
    }
    if (f.convicted_object == convict_as &&
        f.convicted_id_field == truth.id_field) {
      outcome.root_cause_identified = true;
      if (f.repair.kind != RepairKind::kNone) {
        outcome.repair_recommended = true;
      }
    }
  }
  return outcome;
}

bool verify_restored(const LustreCluster& cluster, const GroundTruth& truth) {
  if (truth.id_field) {
    // Some object must carry the original id again — *with* the
    // original data, not an empty re-created stub.
    const Inode* carrier = nullptr;
    for (std::size_t m = 0; carrier == nullptr && m < cluster.mdt_count();
         ++m) {
      carrier = cluster.mdt_server(m).image.find_by_fid_raw(truth.victim);
    }
    for (std::size_t i = 0; carrier == nullptr && i < cluster.osts().size();
         ++i) {
      carrier = cluster.osts()[i].image.find_by_fid_raw(truth.victim);
    }
    return carrier != nullptr && carrier->size_bytes == truth.victim_size;
  }
  // Property fault: the victim must reference original_value again.
  const Inode* victim = nullptr;
  for (std::size_t m = 0; victim == nullptr && m < cluster.mdt_count(); ++m) {
    victim = cluster.mdt_server(m).image.find_by_fid_raw(truth.victim);
  }
  if (victim == nullptr) {
    for (const auto& ost : cluster.osts()) {
      victim = ost.image.find_by_fid_raw(truth.victim);
      if (victim != nullptr) break;
    }
  }
  if (victim == nullptr) return false;
  const Fid& want = truth.original_value;
  if (victim->filter_fid.has_value() && victim->filter_fid->parent == want) {
    return true;
  }
  if (victim->lov_ea.has_value()) {
    for (const auto& slot : victim->lov_ea->stripes) {
      if (slot.stripe == want) return true;
    }
  }
  for (const auto& entry : victim->dirents) {
    if (entry.fid == want) return true;
  }
  for (const auto& link : victim->link_ea) {
    if (link.parent == want) return true;
  }
  return false;
}

}  // namespace faultyrank
